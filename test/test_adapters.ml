(* Tests for the Treiber stack and Michael-Scott queue (shared-memory), the
   §3.4 broadcast adapters that run them over DPS, and the §4.4 dedicated
   pollers. *)

module Machine = Dps_machine.Machine
module Sthread = Dps_sthread.Sthread
module Alloc = Dps_sthread.Alloc
module Prng = Dps_simcore.Prng
module Stack = Dps_ds.Stack_treiber
module Queue = Dps_ds.Queue_ms

let fresh () =
  let m = Machine.create Machine.config_default in
  (Sthread.create m, Alloc.create m ~cold:Alloc.Spread)

(* --- shared-memory stack --- *)

let test_stack_sequential () =
  let _, alloc = fresh () in
  let s = Stack.create alloc in
  Alcotest.(check (option int)) "empty pop" None (Stack.pop s);
  List.iter (Stack.push s) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "peek" (Some 3) (Stack.peek s);
  Alcotest.(check (list int)) "LIFO order" [ 3; 2; 1 ]
    (List.filter_map (fun _ -> Stack.pop s) [ (); (); () ]);
  Alcotest.(check (option int)) "drained" None (Stack.pop s)

let test_stack_concurrent_conservation () =
  let sched, alloc = fresh () in
  let s = Stack.create alloc in
  let popped = ref [] in
  let threads = 12 and per = 40 in
  for t = 0 to threads - 1 do
    Sthread.spawn sched ~hw:(t * 6 mod 80) (fun () ->
        for i = 1 to per do
          Stack.push s ((t * 1000) + i);
          if i mod 2 = 0 then
            match Stack.pop s with Some v -> popped := v :: !popped | None -> ()
        done)
  done;
  Sthread.run sched;
  Stack.check_invariants s;
  let remaining = Stack.to_list s in
  Alcotest.(check int) "conservation" (threads * per) (List.length !popped + List.length remaining);
  (* no duplicates *)
  let all = List.sort compare (!popped @ remaining) in
  let rec nodup = function a :: (b :: _ as r) -> a <> b && nodup r | _ -> true in
  Alcotest.(check bool) "no duplicates" true (nodup all)

(* --- shared-memory queue --- *)

let test_queue_sequential () =
  let _, alloc = fresh () in
  let q = Queue.create alloc in
  Alcotest.(check (option int)) "empty dequeue" None (Queue.dequeue q);
  List.iter (Queue.enqueue q) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "peek" (Some 1) (Queue.peek q);
  Alcotest.(check (list int)) "FIFO order" [ 1; 2; 3 ]
    (List.filter_map (fun _ -> Queue.dequeue q) [ (); (); () ]);
  Alcotest.(check int) "size" 0 (Queue.size q)

let test_queue_concurrent_conservation () =
  let sched, alloc = fresh () in
  let q = Queue.create alloc in
  let dequeued = ref [] in
  let threads = 12 and per = 40 in
  for t = 0 to threads - 1 do
    Sthread.spawn sched ~hw:(t * 6 mod 80) (fun () ->
        for i = 1 to per do
          Queue.enqueue q ((t * 1000) + i);
          if i mod 2 = 0 then
            match Queue.dequeue q with Some v -> dequeued := v :: !dequeued | None -> ()
        done)
  done;
  Sthread.run sched;
  Queue.check_invariants q;
  let remaining = Queue.to_list q in
  Alcotest.(check int) "conservation" (threads * per)
    (List.length !dequeued + List.length remaining);
  let all = List.sort compare (!dequeued @ remaining) in
  let rec nodup = function a :: (b :: _ as r) -> a <> b && nodup r | _ -> true in
  Alcotest.(check bool) "no duplicates" true (nodup all)

let test_queue_per_thread_fifo () =
  (* FIFO per producer: a single producer's values dequeue in order *)
  let sched, alloc = fresh () in
  let q = Queue.create alloc in
  let out = ref [] in
  Sthread.spawn sched ~hw:0 (fun () ->
      for i = 1 to 50 do
        Queue.enqueue q i
      done);
  Sthread.spawn sched ~hw:40 (fun () ->
      Sthread.work 50_000;
      let rec drain () =
        match Queue.dequeue q with
        | Some v ->
            out := v :: !out;
            drain ()
        | None -> ()
      in
      drain ());
  Sthread.run sched;
  Alcotest.(check (list int)) "producer order preserved" (List.init 50 (fun i -> i + 1))
    (List.rev !out)

(* --- DPS broadcast adapters --- *)

let with_dps_clients ?(dedicated_pollers = false) ~mk_data ~nclients body after =
  let m = Machine.create Machine.config_default in
  let sched = Sthread.create m in
  let dps =
    Dps.create sched ~nclients ~locality_size:10 ~hash:Fun.id ~dedicated_pollers ~mk_data ()
  in
  for c = 0 to nclients - 1 do
    Sthread.spawn sched ~hw:(Dps.client_hw dps c) (fun () ->
        Dps.attach dps ~client:c;
        body dps c;
        Dps.client_done dps;
        Dps.drain dps)
  done;
  Sthread.run sched;
  after dps

let test_dps_stack () =
  let pushed = 20 * 10 in
  let popped = ref 0 in
  with_dps_clients
    ~mk_data:(fun (info : Dps.partition_info) -> Dps_ds.Stack_treiber.create info.Dps.alloc)
    ~nclients:20
    (fun dps c ->
      for i = 1 to 10 do
        Dps_adapters.Stack.push dps ((c * 100) + i)
      done;
      for _ = 1 to 4 do
        match Dps_adapters.Stack.pop dps with Some _ -> incr popped | None -> ()
      done)
    (fun dps ->
      let remaining = Dps_adapters.Stack.total_size dps in
      Alcotest.(check int) "conservation across partitions" pushed (!popped + remaining);
      Alcotest.(check bool) "pops happened" true (!popped > 0))

let test_dps_queue () =
  let enqueued = 20 * 10 in
  let dequeued = ref [] in
  with_dps_clients
    ~mk_data:(fun (info : Dps.partition_info) -> Dps_ds.Queue_ms.create info.Dps.alloc)
    ~nclients:20
    (fun dps c ->
      for i = 1 to 10 do
        Dps_adapters.Queue.enqueue dps ((c * 100) + i)
      done;
      for _ = 1 to 4 do
        match Dps_adapters.Queue.dequeue dps with
        | Some v -> dequeued := v :: !dequeued
        | None -> ()
      done)
    (fun dps ->
      let remaining = Dps_adapters.Queue.total_size dps in
      Alcotest.(check int) "conservation across partitions" enqueued
        (List.length !dequeued + remaining))

let test_dps_pq_adapter () =
  let removed = ref [] in
  with_dps_clients
    ~mk_data:(fun (info : Dps.partition_info) -> Dps_ds.Pq_shavit.create info.Dps.alloc)
    ~nclients:20
    (fun dps c ->
      for i = 0 to 9 do
        ignore (Dps_adapters.Pq.insert dps ~key:(1 + (c * 10) + i) ~value:c)
      done;
      if c = 0 then begin
        (* after own inserts, drain a few global minima *)
        Dps_sthread.Sthread.work 30_000;
        for _ = 1 to 5 do
          match Dps_adapters.Pq.remove_min dps with
          | Some (k, _) -> removed := k :: !removed
          | None -> ()
        done
      end)
    (fun _ ->
      Alcotest.(check int) "removed 5 minima" 5 (List.length !removed);
      (* broadcast findMin drains in roughly ascending order when no
         concurrent inserts race it; here inserts mostly finished *)
      Alcotest.(check bool) "small keys came out" true (List.for_all (fun k -> k <= 250) !removed))

(* --- event-driven integration (§4.4 future work) --- *)

let test_event_loop_callbacks () =
  let fired = ref [] in
  with_dps_clients
    ~mk_data:(fun (info : Dps.partition_info) -> Dps_ds.Hashtable.create info.Dps.alloc)
    ~nclients:20
    (fun dps c ->
      let loop = Dps_adapters.Events.create dps in
      for i = 0 to 9 do
        let key = (c * 100) + i in
        Dps_adapters.Events.submit loop ~key
          (fun h -> if Dps_ds.Hashtable.insert h ~key ~value:key then key else -1)
          (fun v -> fired := v :: !fired)
      done;
      Alcotest.(check bool) "in flight" true (Dps_adapters.Events.pending loop > 0);
      Dps_adapters.Events.drain_loop loop;
      Alcotest.(check int) "drained" 0 (Dps_adapters.Events.pending loop))
    (fun _ ->
      Alcotest.(check int) "all callbacks fired" 200 (List.length !fired);
      Alcotest.(check bool) "no failed inserts" true (List.for_all (fun v -> v >= 0) !fired))

let test_event_loop_pipelines () =
  (* 16 in-flight remote operations complete in far fewer cycles than 16
     sequential synchronous calls *)
  let sync_cycles = ref 0 and event_cycles = ref 0 in
  with_dps_clients
    ~mk_data:(fun _ -> ())
    ~nclients:20
    (fun dps c ->
      if c = 0 then begin
        let t0 = Sthread.time () in
        for i = 0 to 15 do
          ignore (Dps.call dps ~key:(11 + (i mod 7)) (fun () -> 0))
        done;
        sync_cycles := Sthread.time () - t0;
        let loop = Dps_adapters.Events.create dps in
        let t1 = Sthread.time () in
        for i = 0 to 15 do
          Dps_adapters.Events.submit loop ~key:(11 + (i mod 7)) (fun () -> 0) (fun _ -> ())
        done;
        Dps_adapters.Events.drain_loop loop;
        event_cycles := Sthread.time () - t1
      end)
    (fun _ ->
      Alcotest.(check bool)
        (Printf.sprintf "pipelining helps (%d vs %d)" !event_cycles !sync_cycles)
        true
        (!event_cycles < !sync_cycles))

(* --- partition-wide variables (§4.5) --- *)

let test_pvar () =
  let m = Machine.create Machine.config_default in
  let sched = Sthread.create m in
  let dps =
    Dps.create sched ~nclients:20 ~locality_size:10 ~hash:Fun.id ~mk_data:(fun _ -> ()) ()
  in
  let counters =
    Dps_adapters.Pvar.create_on m dps
      ~node_of:(fun pid -> pid mod 4)
      ~init:(fun _ -> 0)
  in
  for c = 0 to 19 do
    Sthread.spawn sched ~hw:(Dps.client_hw dps c) (fun () ->
        Dps.attach dps ~client:c;
        (* each client bumps its own partition's counter 5 times; the
           variable is per-partition so clients of one locality share it *)
        for _ = 1 to 5 do
          let v = Dps_adapters.Pvar.get dps counters in
          Dps_adapters.Pvar.set dps counters (v + 1)
        done;
        Dps.client_done dps;
        Dps.drain dps)
  done;
  Sthread.run sched;
  (* Without synchronization increments may race (they are per-partition,
     not per-thread), but each copy must be touched and the total bounded. *)
  let total = Dps_adapters.Pvar.fold ( + ) 0 counters in
  Alcotest.(check bool) "all partition copies used" true
    (Dps_adapters.Pvar.get_at counters 0 > 0 && Dps_adapters.Pvar.get_at counters 1 > 0);
  Alcotest.(check bool) (Printf.sprintf "total bounded (%d)" total) true (total > 0 && total <= 100)

(* --- dedicated pollers (§4.4) --- *)

let test_dedicated_poller_responsiveness () =
  (* Locality 1's clients never serve (busy in non-DPS work); without a
     poller a delegation to them would stall until they finish. *)
  let run_with ~poller =
    let m = Machine.create Machine.config_default in
    let sched = Sthread.create m in
    let dps =
      Dps.create sched ~nclients:20 ~locality_size:10 ~hash:Fun.id ~dedicated_pollers:poller
        ~mk_data:(fun _ -> ref 0)
        ()
    in
    if poller then
      (* a spare hardware thread in locality 1's socket runs the poller *)
      Sthread.spawn sched ~hw:21 (fun () -> Dps.run_poller dps ~pid:1);
    let latency = ref 0 in
    for c = 0 to 19 do
      Sthread.spawn sched ~hw:(Dps.client_hw dps c) (fun () ->
          Dps.attach dps ~client:c;
          if c < 10 then begin
            (* locality 0: one client delegates to locality 1 early *)
            if c = 0 then begin
              let t0 = Sthread.time () in
              ignore (Dps.call dps ~key:1 (fun r -> incr r; !r));
              latency := Sthread.time () - t0
            end
          end
          else (* locality 1: busy outside DPS for a long time *)
            Sthread.work 300_000;
          Dps.client_done dps;
          Dps.drain dps)
    done;
    Sthread.run sched;
    !latency
  in
  let without = run_with ~poller:false in
  let with_p = run_with ~poller:true in
  Alcotest.(check bool)
    (Printf.sprintf "poller cuts latency (%d -> %d)" without with_p)
    true
    (with_p * 10 < without)

let test_poller_requires_flag () =
  let m = Machine.create Machine.config_default in
  let sched = Sthread.create m in
  let dps =
    Dps.create sched ~nclients:10 ~locality_size:10 ~hash:Fun.id ~mk_data:(fun _ -> ()) ()
  in
  Sthread.spawn sched ~hw:2 (fun () -> Dps.run_poller dps ~pid:0);
  Alcotest.check_raises "flag required"
    (Failure "Dps: create with ~dedicated_pollers:true to run pollers") (fun () ->
      Sthread.run sched)

let suite =
  [
    ("stack sequential", `Quick, test_stack_sequential);
    ("stack concurrent conservation", `Quick, test_stack_concurrent_conservation);
    ("queue sequential", `Quick, test_queue_sequential);
    ("queue concurrent conservation", `Quick, test_queue_concurrent_conservation);
    ("queue per-thread FIFO", `Quick, test_queue_per_thread_fifo);
    ("dps stack adapter", `Quick, test_dps_stack);
    ("dps queue adapter", `Quick, test_dps_queue);
    ("dps pq adapter", `Quick, test_dps_pq_adapter);
    ("event loop callbacks", `Quick, test_event_loop_callbacks);
    ("event loop pipelines", `Quick, test_event_loop_pipelines);
    ("partition-wide variables", `Quick, test_pvar);
    ("dedicated poller responsiveness", `Quick, test_dedicated_poller_responsiveness);
    ("poller requires flag", `Quick, test_poller_requires_flag);
  ]

(* Tests for simulated locks: mutual exclusion under genuine interleaving,
   fairness, OPTIK validation semantics, barrier rendezvous. *)

module Machine = Dps_machine.Machine
module Sthread = Dps_sthread.Sthread
module Alloc = Dps_sthread.Alloc
module Simops = Dps_sthread.Simops
module Spinlock = Dps_sync.Spinlock
module Ticket = Dps_sync.Ticket
module Mcs = Dps_sync.Mcs
module Optik = Dps_sync.Optik
module Barrier = Dps_sync.Barrier

let mk () =
  let m = Machine.create Machine.config_default in
  let s = Sthread.create m in
  let alloc = Alloc.create m ~cold:(Alloc.Node 0) in
  (s, alloc)

(* Hammer a critical section from many threads; the increment is split
   across scheduling points so unprotected counting would lose updates. *)
let exercise_lock mk_lock =
  let s, alloc = mk () in
  let acquire, release = mk_lock alloc in
  let data_addr = Alloc.line alloc in
  let counter = ref 0 in
  let in_cs = ref 0 in
  let max_in_cs = ref 0 in
  let threads = 16 and iters = 25 in
  for t = 0 to threads - 1 do
    Sthread.spawn s ~hw:(t * 4 mod 80) (fun () ->
        for _ = 1 to iters do
          acquire ();
          incr in_cs;
          if !in_cs > !max_in_cs then max_in_cs := !in_cs;
          let v = !counter in
          Simops.read data_addr;
          Simops.work 50;
          counter := v + 1;
          Simops.write data_addr;
          decr in_cs;
          release ()
        done)
  done;
  Sthread.run s;
  Alcotest.(check int) "mutual exclusion held" 1 !max_in_cs;
  Alcotest.(check int) "no lost updates" (threads * iters) !counter

let test_spinlock_mutex () =
  exercise_lock (fun alloc ->
      let l = Spinlock.create alloc in
      ((fun () -> Spinlock.acquire l), fun () -> Spinlock.release l))

let test_ticket_mutex () =
  exercise_lock (fun alloc ->
      let l = Ticket.create alloc in
      ((fun () -> Ticket.acquire l), fun () -> Ticket.release l))

let test_mcs_mutex () =
  exercise_lock (fun alloc ->
      let l = Mcs.create alloc in
      ((fun () -> Mcs.acquire l), fun () -> Mcs.release l))

let test_optik_mutex () =
  exercise_lock (fun alloc ->
      let l = Optik.create alloc in
      ((fun () -> Optik.lock l), fun () -> Optik.unlock l))

let test_spinlock_try () =
  let s, alloc = mk () in
  let l = Spinlock.create alloc in
  let got = ref [] in
  Sthread.spawn s ~hw:0 (fun () ->
      Alcotest.(check bool) "first try succeeds" true (Spinlock.try_acquire l);
      got := Spinlock.held l :: !got;
      Alcotest.(check bool) "second try fails" false (Spinlock.try_acquire l);
      Spinlock.release l;
      Alcotest.(check bool) "after release" true (Spinlock.try_acquire l);
      Spinlock.release l);
  Sthread.run s;
  Alcotest.(check (list bool)) "held inside" [ true ] !got

let test_ticket_fifo () =
  (* Threads staggered in time must acquire in arrival order. *)
  let s, alloc = mk () in
  let l = Ticket.create alloc in
  let order = ref [] in
  for t = 0 to 7 do
    Sthread.spawn s ~hw:(t * 2) (fun () ->
        Sthread.work (1 + (t * 2000));
        Ticket.acquire l;
        order := t :: !order;
        Sthread.work 5000;
        Ticket.release l)
  done;
  Sthread.run s;
  Alcotest.(check (list int)) "FIFO order" [ 0; 1; 2; 3; 4; 5; 6; 7 ] (List.rev !order)

let test_mcs_fifo () =
  let s, alloc = mk () in
  let l = Mcs.create alloc in
  let order = ref [] in
  for t = 0 to 7 do
    Sthread.spawn s ~hw:(t * 2) (fun () ->
        Sthread.work (1 + (t * 2000));
        Mcs.acquire l;
        order := t :: !order;
        Sthread.work 5000;
        Mcs.release l)
  done;
  Sthread.run s;
  Alcotest.(check (list int)) "FIFO order" [ 0; 1; 2; 3; 4; 5; 6; 7 ] (List.rev !order)

let test_optik_validation () =
  let s, alloc = mk () in
  let l = Optik.create alloc in
  Sthread.spawn s ~hw:0 (fun () ->
      let v = Optik.get_version l in
      Alcotest.(check bool) "unlocked version" false (Optik.is_locked v);
      Alcotest.(check bool) "lock at current version" true (Optik.try_lock_at l v);
      Alcotest.(check bool) "stale lock fails" false (Optik.try_lock_at l v);
      Optik.unlock l;
      Alcotest.(check bool) "old version now stale" false (Optik.try_lock_at l v);
      let v' = Optik.get_version l in
      Alcotest.(check bool) "new version works" true (Optik.try_lock_at l v');
      Optik.unlock l);
  Sthread.run s

let test_optik_conflict_detected () =
  (* A writer bumping the version invalidates a concurrent optimistic read. *)
  let s, alloc = mk () in
  let l = Optik.create alloc in
  let observed_stale = ref false in
  Sthread.spawn s ~hw:0 (fun () ->
      let v = Optik.get_version l in
      Sthread.work 10_000;
      (* other thread updates meanwhile *)
      if not (Optik.try_lock_at l v) then observed_stale := true
      else Optik.unlock l);
  Sthread.spawn s ~hw:2 (fun () ->
      Sthread.work 100;
      Optik.lock l;
      Sthread.work 50;
      Optik.unlock l);
  Sthread.run s;
  Alcotest.(check bool) "conflict detected" true !observed_stale

let test_barrier () =
  let s, alloc = mk () in
  let b = Barrier.create alloc ~parties:8 in
  let before = ref 0 and after_min = ref max_int in
  for t = 0 to 7 do
    Sthread.spawn s ~hw:(t * 2) (fun () ->
        Sthread.work (100 * (t + 1));
        incr before;
        Barrier.await b;
        (* everyone must have arrived *)
        if !before < 8 then Alcotest.fail "barrier released early";
        after_min := min !after_min !before)
  done;
  Sthread.run s;
  Alcotest.(check int) "all arrived before release" 8 !after_min

let test_barrier_reusable () =
  let s, alloc = mk () in
  let b = Barrier.create alloc ~parties:4 in
  let rounds = Array.make 4 0 in
  for t = 0 to 3 do
    Sthread.spawn s ~hw:(t * 2) (fun () ->
        for _ = 1 to 5 do
          Sthread.work (50 + (t * 77));
          Barrier.await b;
          rounds.(t) <- rounds.(t) + 1
        done)
  done;
  Sthread.run s;
  Array.iter (fun r -> Alcotest.(check int) "5 rounds" 5 r) rounds

let test_cohort_mutex () =
  exercise_lock (fun alloc ->
      let m = Alloc.machine alloc in
      let l = Dps_sync.Cohort.create alloc m in
      ((fun () -> Dps_sync.Cohort.acquire l), fun () -> Dps_sync.Cohort.release l))

let test_cohort_prefers_local_handoff () =
  (* heavy contention from two sockets: cross-socket transfers must be far
     rarer than acquisitions *)
  let s, alloc = mk () in
  let m = Alloc.machine alloc in
  let l = Dps_sync.Cohort.create alloc m in
  let acquisitions = 16 * 25 in
  for t = 0 to 15 do
    (* sockets 0 and 2 *)
    let hw = if t < 8 then t * 2 else 40 + ((t - 8) * 2) in
    Sthread.spawn s ~hw (fun () ->
        for _ = 1 to 25 do
          Dps_sync.Cohort.acquire l;
          Simops.work 100;
          Dps_sync.Cohort.release l
        done)
  done;
  Sthread.run s;
  let transfers = Dps_sync.Cohort.global_handoffs l in
  Alcotest.(check bool)
    (Printf.sprintf "few cross-socket transfers (%d of %d)" transfers acquisitions)
    true
    (transfers * 4 < acquisitions)

let test_cna_mutex () =
  exercise_lock (fun alloc ->
      let m = Alloc.machine alloc in
      let l = Dps_sync.Cna.create alloc m in
      ((fun () -> Dps_sync.Cna.acquire l), fun () -> Dps_sync.Cna.release l))

let test_cna_prefers_local_handoff () =
  (* heavy contention from two sockets: the releaser's scan must keep the
     lock on-socket, so cross-socket transfers are far rarer than
     hand-offs *)
  let s, alloc = mk () in
  let m = Alloc.machine alloc in
  let l = Dps_sync.Cna.create alloc m in
  let acquisitions = 16 * 25 in
  for t = 0 to 15 do
    (* sockets 0 and 2 *)
    let hw = if t < 8 then t * 2 else 40 + ((t - 8) * 2) in
    Sthread.spawn s ~hw (fun () ->
        for _ = 1 to 25 do
          Dps_sync.Cna.acquire l;
          Simops.work 100;
          Dps_sync.Cna.release l
        done)
  done;
  Sthread.run s;
  let transfers = Dps_sync.Cna.remote_transfers l in
  Alcotest.(check bool)
    (Printf.sprintf "few cross-socket transfers (%d of %d)" transfers acquisitions)
    true
    (transfers * 4 < acquisitions);
  Alcotest.(check bool) "lock released at the end" false (Dps_sync.Cna.held l)

let test_cna_fairness_budget () =
  (* a remote waiter parked on the secondary queue must still get the lock
     once the local streak exhausts the fairness budget *)
  let s, alloc = mk () in
  let m = Alloc.machine alloc in
  let l = Dps_sync.Cna.create ~fairness:8 alloc m in
  let remote_got = ref 0 in
  (* one waiter on socket 2 against a stream of socket-0 acquirers *)
  Sthread.spawn s ~hw:40 (fun () ->
      Sthread.work 500;
      for _ = 1 to 3 do
        Dps_sync.Cna.acquire l;
        incr remote_got;
        Simops.work 50;
        Dps_sync.Cna.release l
      done);
  for t = 0 to 7 do
    Sthread.spawn s ~hw:(t * 2) (fun () ->
        for _ = 1 to 40 do
          Dps_sync.Cna.acquire l;
          Simops.work 50;
          Dps_sync.Cna.release l
        done)
  done;
  Sthread.run s;
  Alcotest.(check int) "remote waiter served all its acquisitions" 3 !remote_got

let test_lock_cold_path () =
  (* Outside the simulation locks are uncontended and free. *)
  let _, alloc = mk () in
  let l = Spinlock.create alloc in
  Spinlock.acquire l;
  Alcotest.(check bool) "held" true (Spinlock.held l);
  Spinlock.release l;
  let t = Ticket.create alloc in
  Ticket.acquire t;
  Ticket.release t;
  let m = Mcs.create alloc in
  Mcs.acquire m;
  Mcs.release m;
  Alcotest.(check bool) "mcs released" false (Mcs.held m)

let suite =
  [
    ("spinlock mutual exclusion", `Quick, test_spinlock_mutex);
    ("ticket mutual exclusion", `Quick, test_ticket_mutex);
    ("mcs mutual exclusion", `Quick, test_mcs_mutex);
    ("optik mutual exclusion", `Quick, test_optik_mutex);
    ("spinlock try_acquire", `Quick, test_spinlock_try);
    ("ticket FIFO", `Quick, test_ticket_fifo);
    ("mcs FIFO", `Quick, test_mcs_fifo);
    ("optik validation", `Quick, test_optik_validation);
    ("optik conflict detected", `Quick, test_optik_conflict_detected);
    ("barrier", `Quick, test_barrier);
    ("barrier reusable", `Quick, test_barrier_reusable);
    ("cohort mutual exclusion", `Quick, test_cohort_mutex);
    ("cohort prefers local handoff", `Quick, test_cohort_prefers_local_handoff);
    ("cna mutual exclusion", `Quick, test_cna_mutex);
    ("cna prefers local handoff", `Quick, test_cna_prefers_local_handoff);
    ("cna fairness budget", `Quick, test_cna_fairness_budget);
    ("locks cold path", `Quick, test_lock_cold_path);
  ]

(* Deterministic checking of batched delegation: the coalesced request
   path (Dps.create ~batch) under explored schedules. Exactly-once must
   survive batching — sender-side staging, multi-op slots, batched
   completion publishing, and self-healing takeover of a partially
   flushed batch — and the planted drop-a-flushed-entry mutation must be
   caught by exact element accounting and replay bit-for-bit. *)

module Sthread = Dps_sthread.Sthread
module Schedule = Dps_check.Schedule
module Lin = Dps_check.Lin
module Check = Dps_check.Check
module Faults = Dps_faults

let batch = 4

type counters = { cells : int array }

let mk_counter_dps ?self_healing ?await_timeout ?batch sim ~nclients ~locality_size =
  Dps.create sim.Check.sched ~nclients ~locality_size
    ~hash:(fun k -> k)
    ?self_healing ?await_timeout ?batch
    ~mk_data:(fun (_ : Dps.partition_info) -> { cells = Array.make 32 0 })
    ()

let applied dps c =
  let total = ref 0 in
  for pid = 0 to Dps.npartitions dps - 1 do
    total := !total + (Dps.partition_data dps pid).cells.(c)
  done;
  !total

(* Synchronous calls interleaved with asynchronous increments to the same
   partitions: the stage coalesces the async ops, the sync await forces
   flushes mid-stream, and every ack/issue must land exactly once. *)
let dps_batched_exactly_once_scenario ctl =
  Check.with_sim ctl (fun sim ->
      let nclients = 6 and per = 6 in
      let dps = mk_counter_dps sim ~nclients ~locality_size:3 ~batch in
      let nparts = Dps.npartitions dps in
      let sent = Array.make nclients 0 in
      for c = 0 to nclients - 1 do
        Sthread.spawn sim.Check.sched ~hw:(Dps.client_hw dps c) (fun () ->
            Dps.attach dps ~client:c;
            for i = 1 to per do
              Dps.execute_async dps ~key:(i mod nparts) (fun d ->
                  d.cells.(c) <- d.cells.(c) + 1;
                  0);
              sent.(c) <- sent.(c) + 1;
              ignore
                (Dps.call dps ~key:(i mod nparts) (fun d ->
                     d.cells.(c) <- d.cells.(c) + 1;
                     d.cells.(c)));
              sent.(c) <- sent.(c) + 1
            done;
            Dps.client_done dps;
            Dps.drain dps)
      done;
      Sthread.run sim.Check.sched;
      let bad = ref None in
      for c = 0 to nclients - 1 do
        let a = applied dps c in
        if a <> sent.(c) && !bad = None then
          bad := Some (Printf.sprintf "client %d: %d sent but %d applied" c sent.(c) a)
      done;
      !bad)

(* Pure asynchronous flood: nothing awaits, so a dropped flushed entry
   cannot hang the run — it can only break the accounting below. This is
   the scenario the drop-batch-flush mutation must fail. *)
let dps_async_accounting_scenario ctl =
  Check.with_sim ctl (fun sim ->
      let nclients = 6 and per = 8 in
      let dps = mk_counter_dps sim ~nclients ~locality_size:3 ~batch in
      let nparts = Dps.npartitions dps in
      let sent = Array.make nclients 0 in
      for c = 0 to nclients - 1 do
        Sthread.spawn sim.Check.sched ~hw:(Dps.client_hw dps c) (fun () ->
            Dps.attach dps ~client:c;
            for i = 1 to per do
              Dps.execute_async dps ~key:(i mod nparts) (fun d ->
                  d.cells.(c) <- d.cells.(c) + 1;
                  0);
              sent.(c) <- sent.(c) + 1
            done;
            Dps.client_done dps;
            Dps.drain dps)
      done;
      Sthread.run sim.Check.sched;
      let bad = ref None in
      for c = 0 to nclients - 1 do
        let a = applied dps c in
        if a <> sent.(c) && !bad = None then
          bad := Some (Printf.sprintf "client %d: %d sent but %d applied" c sent.(c) a)
      done;
      (match !bad with
      | None when Dps.batch_flushes dps = 0 -> bad := Some "batching never engaged"
      | _ -> ());
      !bad)

(* Self-healing under batching: a client crashes mid-run; a surviving
   awaiter must take over its partially dispatched multi-op slot and every
   survivor's operations still apply exactly once. The victim issues only
   synchronous calls so its exposure is the usual at-most-one in-flight. *)
let dps_batched_takeover_scenario ctl =
  Check.with_sim ctl (fun sim ->
      let nclients = 6 and per = 6 and victim = 1 in
      let dps =
        mk_counter_dps sim ~nclients ~locality_size:3 ~batch ~self_healing:true
          ~await_timeout:15_000
      in
      let nparts = Dps.npartitions dps in
      let plan = Faults.install sim.Check.sched ~seed:5L (Faults.spec ()) in
      Faults.schedule_crash plan ~tid:victim ~at:5_000;
      let sent = Array.make nclients 0 in
      for c = 0 to nclients - 1 do
        Sthread.spawn sim.Check.sched ~hw:(Dps.client_hw dps c) (fun () ->
            Dps.attach dps ~client:c;
            for i = 1 to per do
              if c <> victim then begin
                Dps.execute_async dps ~key:(i mod nparts) (fun d ->
                    d.cells.(c) <- d.cells.(c) + 1;
                    0);
                sent.(c) <- sent.(c) + 1
              end;
              ignore
                (Dps.call dps ~key:(i mod nparts) (fun d ->
                     d.cells.(c) <- d.cells.(c) + 1;
                     d.cells.(c)));
              sent.(c) <- sent.(c) + 1
            done;
            Dps.client_done dps;
            Dps.drain dps)
      done;
      Sthread.run sim.Check.sched;
      let bad = ref None in
      for c = 0 to nclients - 1 do
        let a = applied dps c in
        if c = victim then begin
          if a < sent.(c) || a > sent.(c) + 1 then
            bad := Some (Printf.sprintf "victim: %d sent but %d applied" sent.(c) a)
        end
        else if a <> sent.(c) && !bad = None then
          bad := Some (Printf.sprintf "client %d: %d sent but %d applied" c sent.(c) a)
      done;
      !bad)

(* --- batched DPS adapters: relaxed-bag semantics + exact accounting --- *)

let multiset l = List.sort compare l

let adapter_scenario ~mk ~remaining body ctl =
  Check.with_sim ctl (fun sim ->
      let nclients = 6 in
      let dps, push, pop = mk sim in
      let r = Lin.recorder () in
      let pushed = ref [] in
      for c = 0 to nclients - 1 do
        Sthread.spawn sim.Check.sched ~hw:(Dps.client_hw dps c) (fun () ->
            Dps.attach dps ~client:c;
            body c
              (fun v ->
                pushed := v :: !pushed;
                ignore (Lin.record r (Lin.Push v) (fun () -> push v; 0)))
              (fun () ->
                ignore
                  (Lin.record r Lin.Pop (fun () ->
                       match pop () with Some x -> x | None -> Lin.absent)));
            Dps.client_done dps;
            Dps.drain dps)
      done;
      Sthread.run sim.Check.sched;
      let popped =
        List.filter_map
          (fun (e : Lin.seq_op Lin.event) ->
            match e.Lin.op with Lin.Pop when e.Lin.res <> Lin.absent -> Some e.Lin.res | _ -> None)
          (Lin.events r)
      in
      let rem = remaining dps in
      if multiset !pushed <> multiset (popped @ rem) then
        Some
          (Printf.sprintf "element accounting broken: %d pushed, %d popped, %d remaining"
             (List.length !pushed) (List.length popped) (List.length rem))
      else
        match Lin.check (module Lin.Bag_relaxed_spec) (Lin.events r) with
        | Lin.Linearizable _ -> None
        | Lin.Nonlinearizable m -> Some m
        | Lin.Exhausted -> None (* accounting above is the binding check *))

let adapter_body c push pop =
  for i = 0 to 2 do
    push ((100 * (c + 1)) + i);
    if i = 1 then pop ()
  done

let dps_batched_stack_scenario =
  adapter_scenario
    ~mk:(fun sim ->
      let dps =
        Dps.create sim.Check.sched ~nclients:6 ~locality_size:3 ~batch
          ~hash:(fun k -> k)
          ~mk_data:(fun (info : Dps.partition_info) -> Dps_ds.Stack_treiber.create info.Dps.alloc)
          ()
      in
      (dps, Dps_adapters.Stack.push dps, fun () -> Dps_adapters.Stack.pop dps))
    ~remaining:(fun dps ->
      List.concat
        (List.init (Dps.npartitions dps) (fun pid ->
             Dps_ds.Stack_treiber.to_list (Dps.partition_data dps pid))))
    adapter_body

let dps_batched_queue_scenario =
  adapter_scenario
    ~mk:(fun sim ->
      let dps =
        Dps.create sim.Check.sched ~nclients:6 ~locality_size:3 ~batch
          ~hash:(fun k -> k)
          ~mk_data:(fun (info : Dps.partition_info) -> Dps_ds.Queue_ms.create info.Dps.alloc)
          ()
      in
      (dps, Dps_adapters.Queue.enqueue dps, fun () -> Dps_adapters.Queue.dequeue dps))
    ~remaining:(fun dps ->
      List.concat
        (List.init (Dps.npartitions dps) (fun pid ->
             Dps_ds.Queue_ms.to_list (Dps.partition_data dps pid))))
    adapter_body

(* --- exploration entry points and the mutation self-test --- *)

let sweep name scenario () =
  match Check.explore ~name ~budget:30 scenario with
  | Ok () -> ()
  | Error f -> Alcotest.fail f.Check.message

let with_flag flag f =
  flag := true;
  Fun.protect ~finally:(fun () -> flag := false) f

let assert_caught_and_replays name scenario =
  match Check.explore ~name ~budget:150 scenario with
  | Ok () -> Alcotest.failf "%s: planted bug survived the schedule budget" name
  | Error f ->
      Alcotest.(check bool)
        (name ^ " minimized no larger than full") true
        (List.length f.Check.trace <= List.length f.Check.full_trace);
      let replay () = scenario (Schedule.make ~seed:0L (Schedule.Replay f.Check.trace)) in
      (match (replay (), replay ()) with
      | Some m1, Some m2 -> Alcotest.(check string) (name ^ " bit-for-bit replay") m1 m2
      | _ -> Alcotest.failf "%s: minimized trace did not replay the failure" name)

let test_mutation_dropped_batch_flush () =
  with_flag Dps.failpoint_drop_batch_flush (fun () ->
      assert_caught_and_replays "dps dropped batch flush" dps_async_accounting_scenario)

let suite =
  [
    ( "batched exactly-once delegation",
      `Quick,
      sweep "dps_batched_exactly_once" dps_batched_exactly_once_scenario );
    ( "batched async accounting",
      `Quick,
      sweep "dps_async_accounting" dps_async_accounting_scenario );
    ( "batched takeover after crash",
      `Quick,
      sweep "dps_batched_takeover" dps_batched_takeover_scenario );
    ( "batched stack adapter relaxed bag",
      `Quick,
      sweep "dps_batched_stack" dps_batched_stack_scenario );
    ( "batched queue adapter relaxed bag",
      `Quick,
      sweep "dps_batched_queue" dps_batched_queue_scenario );
    ("mutation: dropped batch flush caught", `Quick, test_mutation_dropped_batch_flush);
  ]

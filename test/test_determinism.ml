(** The determinism regime guarding the raw-speed refactor and the
    domain-parallel runner:

    - the machine fast paths (dense line directory, open-addressing cache
      indexes) must charge bit-for-bit what the original functional-map
      implementation charged, pinned by a golden digest of a recorded
      access trace;
    - the parallel experiment runner must produce byte-identical
      [BENCH_*.json] to the sequential driver;
    - schedule exploration must find the same schedules regardless of the
      worker count. *)

module Machine = Dps_machine.Machine
module Topology = Dps_machine.Topology
module Prng = Dps_simcore.Prng
module Stats = Dps_simcore.Stats
module Itbl = Dps_simcore.Itbl
module Par = Dps_simcore.Par

(* --- (b) machine charge digest ------------------------------------- *)

(* FNV-1a over the stream of charged costs, stats and coherence metadata.
   The golden constant below was recorded against the pre-refactor
   implementation (Hashtbl line directory, Hashtbl cache-box indexes); the
   dense-array machine must reproduce it exactly. *)

let fnv_mix h v = (h lxor v) * 0x100000001b3 land max_int

let machine_trace_digest () =
  let cfg = Machine.config_scaled () in
  let m = Machine.create ~seed:0xD5EEDL cfg in
  let topo = Machine.topology m in
  let nthreads = Topology.nthreads topo in
  (* three regions across policies, including a deliberately hot prefix so
     the trace exercises sharing, invalidation, write serialization,
     eviction and TLB pressure *)
  let r1 = Machine.alloc m (Machine.On_node 0) ~lines:2048 in
  let r2 = Machine.alloc m Machine.Interleave ~lines:4096 in
  let r3 = Machine.alloc m (Machine.On_node 3) ~lines:512 in
  let regions = [| (r1, 2048); (r2, 4096); (r3, 512) |] in
  let p = Prng.create 0xACCE55L in
  let h = ref (Int64.to_int 0xcbf29ce484222325L land max_int) in
  for i = 0 to 59_999 do
    let thread = Prng.int p nthreads in
    let base, len = regions.(Prng.int p 3) in
    let addr = base + if Prng.bool p then Prng.int p 64 else Prng.int p len in
    let kind =
      match Prng.int p 4 with 0 | 1 -> Machine.Read | 2 -> Machine.Write | _ -> Machine.Rmw
    in
    let cost = Machine.access m ~now:(i * 3) ~thread ~addr ~kind in
    h := fnv_mix !h cost;
    if i mod 97 = 0 then Machine.set_active m ~thread (i land 1 = 0);
    if i mod 13 = 0 then h := fnv_mix !h (Machine.work_cost m ~thread 100)
  done;
  (* final stats pin the counter accounting, home_of pins placement *)
  List.iter
    (fun (k, v) ->
      String.iter (fun c -> h := fnv_mix !h (Char.code c)) k;
      h := fnv_mix !h v)
    (Stats.to_list (Machine.stats m));
  for a = 0 to 63 do
    h := fnv_mix !h (Machine.home_of m (r2 + (a * 61)))
  done;
  !h

let golden_machine_digest = 3313435576912635050

let test_machine_digest () =
  Alcotest.(check int) "charge-for-charge identical to the recorded directory trace"
    golden_machine_digest (machine_trace_digest ())

(* --- (a) parallel runner: byte-identical output for every -j --------- *)

module Bench = Dps_bench_figures.Bench_common

let with_jobs n f =
  Bench.set_jobs n;
  Fun.protect ~finally:(fun () -> Bench.set_jobs 1) f

(* A miniature two-series figure through the real printing/JSON path:
   run_series fan-out, print_header/print_series on the main domain,
   json_begin/json_end around it — exactly what bench/main.ml does. *)
let tiny_figure ~jobs =
  with_jobs jobs (fun () ->
      let w size =
        Bench.workload ~threads:8 ~size ~update_pct:20 ~skewed:false ~duration:20_000 ()
      in
      let series (module S : Dps_ds.Set_intf.SET) =
        ( S.name,
          List.map
            (fun size ->
              ( string_of_int size,
                fun () -> Bench.run_shared (module S) ~config:Machine.config_default (w size) ))
            [ 128; 256 ] )
      in
      Bench.json_begin ();
      Bench.print_header "determinism: tiny figure";
      let rows =
        Bench.run_series [ series (module Dps_ds.Ll_lazy); series (module Dps_ds.Bst_tk) ]
      in
      List.iter (fun (label, pts) -> Bench.print_series ~label pts) rows;
      let file = Printf.sprintf "BENCH_det_j%d.json" jobs in
      Bench.json_end ~name:(Printf.sprintf "det_j%d" jobs);
      let ic = open_in_bin file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Sys.remove file;
      (rows, s))

let test_runner_json_identical () =
  let rows1, json1 = tiny_figure ~jobs:1 in
  let rows4, json4 = tiny_figure ~jobs:4 in
  Alcotest.(check bool) "results identical -j1 vs -j4" true (rows1 = rows4);
  Alcotest.(check string) "BENCH_*.json byte-identical -j1 vs -j4" json1 json4

(* The leak detector: an experiment point that tries to print or record
   from inside the fan-out must fail fast, not interleave output. *)
let test_worker_print_rejected () =
  let res =
    with_jobs 2 (fun () ->
        Bench.run_all
          [|
            (fun () ->
              if Par.in_worker () then
                match Bench.json_record ~series:"x" ~x:"y" [] with
                | () -> `Recorded
                | exception Invalid_argument _ -> `Rejected
              else `Not_in_worker);
            (fun () -> `Other);
          |])
  in
  (* one of the two thunks runs on a spawned worker domain whatever the
     schedule; accept `Not_in_worker only for the main-domain one *)
  Alcotest.(check bool) "json_record from a worker rejected" true
    (Array.exists (fun r -> r = `Rejected) res
    && not (Array.exists (fun r -> r = `Recorded) res))

(* --- (b) isolation: points back-to-back vs alone --------------------- *)

(* Two differently-configured points; running one must not perturb the
   other (shared toplevel state would), and a point computes the same
   thing on a worker domain as on the main domain. *)
let test_point_isolation () =
  let point_a () =
    Bench.run_shared
      (module Dps_ds.Sl_herlihy)
      ~config:Machine.config_default
      (Bench.workload ~threads:10 ~size:256 ~update_pct:50 ~skewed:true ~duration:20_000 ())
  in
  let point_b () =
    Bench.run_dps
      (module Dps_ds.Bst_tk)
      ~config:(Machine.config_scaled ())
      (Bench.workload ~threads:20 ~size:512 ~update_pct:10 ~skewed:false ~duration:20_000 ())
  in
  let a1 = point_a () in
  let b1 = point_b () in
  let a2 = point_a () in
  let b2 = point_b () in
  Alcotest.(check bool) "point A unaffected by running B in between" true (a1 = a2);
  Alcotest.(check bool) "point B replays identically" true (b1 = b2);
  let on_workers = with_jobs 2 (fun () -> Bench.run_all [| point_a; point_b |]) in
  Alcotest.(check bool) "worker-domain run identical to main-domain run" true
    (on_workers.(0) = a1 && on_workers.(1) = b1)

(* --- (c) schedule exploration: jobs-invariant ------------------------ *)

module Check = Dps_check.Check
module Schedule = Dps_check.Schedule

let explore_with_jobs jobs scenario =
  Unix.putenv "DPS_CHECK_JOBS" (string_of_int jobs);
  Fun.protect
    ~finally:(fun () -> Unix.putenv "DPS_CHECK_JOBS" "1")
    (fun () -> Check.explore ~name:"det_explore" ~budget:60 scenario)

(* A schedule-sensitive synthetic failure (the end time of a contended
   run is a fingerprint of the interleaving; a residue class of it fails):
   deterministic per schedule, so the parallel scan must report the same
   failing index, strategy, message and minimized trace as the sequential
   one — later indices in the failing window are explored and discarded. *)
let test_explore_jobs_invariant () =
  let scenario ctl =
    Check.with_sim ctl (fun sim ->
        let lines = Array.init 4 (fun _ -> Dps_sthread.Alloc.line sim.Check.alloc) in
        for tid = 0 to 3 do
          Dps_sthread.Sthread.spawn sim.Check.sched ~hw:(tid * 16) (fun () ->
              for i = 0 to 19 do
                Dps_sthread.Simops.rmw lines.((tid + i) mod 4)
              done)
        done;
        Dps_sthread.Sthread.run sim.Check.sched;
        let t = Dps_sthread.Sthread.now sim.Check.sched in
        if t mod 5 = 0 then Some (Printf.sprintf "planted: end time %d mod 5 = 0" t) else None)
  in
  match (explore_with_jobs 1 scenario, explore_with_jobs 4 scenario) with
  | Ok (), Ok () -> Alcotest.fail "planted bug not found at all"
  | Error f1, Error f4 ->
      Alcotest.(check int) "same failing schedule index" f1.Check.index f4.Check.index;
      Alcotest.(check string) "same strategy" f1.Check.strategy f4.Check.strategy;
      Alcotest.(check string) "same message" f1.Check.message f4.Check.message;
      Alcotest.(check bool) "same minimized trace" true (f1.Check.trace = f4.Check.trace)
  | Ok (), Error f | Error f, Ok () ->
      Alcotest.failf "found only under one worker count (index %d)" f.Check.index

(* A clean scenario passes under both worker counts. *)
let test_explore_clean_jobs_invariant () =
  let scenario ctl =
    Check.with_sim ctl (fun sim ->
        let lines = Array.init 4 (fun _ -> Dps_sthread.Alloc.line sim.Check.alloc) in
        for tid = 0 to 3 do
          Dps_sthread.Sthread.spawn sim.Check.sched ~hw:(tid * 16) (fun () ->
              for i = 0 to 9 do
                Dps_sthread.Simops.rmw lines.((tid + i) mod 4)
              done)
        done;
        Dps_sthread.Sthread.run sim.Check.sched;
        None)
  in
  (match explore_with_jobs 1 scenario with
  | Ok () -> ()
  | Error f -> Alcotest.fail f.Check.message);
  match explore_with_jobs 4 scenario with
  | Ok () -> ()
  | Error f -> Alcotest.fail f.Check.message

(* --- (d) Itbl vs Hashtbl model --------------------------------------- *)

let qcheck_itbl_model =
  QCheck.Test.make ~name:"itbl agrees with Hashtbl model" ~count:300
    QCheck.(list (pair (int_bound 2) (int_bound 63)))
    (fun ops ->
      let t = Itbl.create ~capacity:4 () in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (op, key) ->
          match op with
          | 0 ->
              Itbl.set t key (key * 7);
              Hashtbl.replace model key (key * 7);
              true
          | 1 ->
              Itbl.remove t key;
              Hashtbl.remove model key;
              true
          | _ ->
              Itbl.find_opt t key = Hashtbl.find_opt model key
              && Itbl.mem t key = Hashtbl.mem model key)
        ops
      && Itbl.length t = Hashtbl.length model
      && Hashtbl.fold (fun k v acc -> acc && Itbl.find_opt t k = Some v) model true)

let suite =
  [
    ("machine trace digest", `Quick, test_machine_digest);
    ("runner: -j1 vs -j4 byte-identical JSON", `Quick, test_runner_json_identical);
    ("runner: worker-side printing rejected", `Quick, test_worker_print_rejected);
    ("runner: point isolation back-to-back and cross-domain", `Quick, test_point_isolation);
    ("explore: planted bug found at same index for any -j", `Quick, test_explore_jobs_invariant);
    ("explore: clean pass for any -j", `Quick, test_explore_clean_jobs_invariant);
    QCheck_alcotest.to_alcotest qcheck_itbl_model;
  ]

(* Tests for the simulation support kit: PRNG, bitsets, event heap,
   histograms, counters. *)

module Prng = Dps_simcore.Prng
module Bitset = Dps_simcore.Bitset
module Heap = Dps_simcore.Heap
module Histogram = Dps_simcore.Histogram
module Stats = Dps_simcore.Stats

let test_prng_deterministic () =
  let a = Prng.create 1L and b = Prng.create 1L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next64 a) (Prng.next64 b)
  done

let test_prng_seeds_differ () =
  let a = Prng.create 1L and b = Prng.create 2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next64 a = Prng.next64 b then incr same
  done;
  Alcotest.(check bool) "streams diverge" true (!same < 4)

let test_prng_split_independent () =
  let a = Prng.create 5L in
  let c = Prng.split a in
  let xs = List.init 32 (fun _ -> Prng.next64 a) in
  let ys = List.init 32 (fun _ -> Prng.next64 c) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_prng_int_bounds () =
  let p = Prng.create 9L in
  for _ = 1 to 10_000 do
    let v = Prng.int p 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done

let test_prng_float_bounds () =
  let p = Prng.create 11L in
  for _ = 1 to 10_000 do
    let v = Prng.float p 3.0 in
    if v < 0.0 || v >= 3.0 then Alcotest.failf "out of bounds: %f" v
  done

let test_prng_below_probability () =
  let p = Prng.create 13L in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Prng.below p 0.3 then incr hits
  done;
  let frac = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "~30%" true (frac > 0.28 && frac < 0.32)

let test_bitset_basics () =
  let b = Bitset.create 100 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty b);
  Bitset.add b 0;
  Bitset.add b 63;
  Bitset.add b 64;
  Bitset.add b 99;
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal b);
  Alcotest.(check bool) "mem 63" true (Bitset.mem b 63);
  Alcotest.(check bool) "not mem 42" false (Bitset.mem b 42);
  Bitset.remove b 63;
  Alcotest.(check bool) "removed" false (Bitset.mem b 63);
  Alcotest.(check int) "cardinal after remove" 3 (Bitset.cardinal b)

let test_bitset_iter_order () =
  let b = Bitset.create 200 in
  List.iter (Bitset.add b) [ 150; 3; 77; 0; 199 ];
  let got = Bitset.fold (fun acc i -> i :: acc) [] b |> List.rev in
  Alcotest.(check (list int)) "sorted member order" [ 0; 3; 77; 150; 199 ] got

let test_bitset_clear () =
  let b = Bitset.create 70 in
  List.iter (Bitset.add b) [ 1; 2; 3; 69 ];
  Bitset.clear b;
  Alcotest.(check bool) "empty after clear" true (Bitset.is_empty b)

let test_bitset_singleton () =
  let b = Bitset.create 10 in
  Alcotest.(check (option int)) "empty" None (Bitset.singleton_or_empty b);
  Bitset.add b 7;
  Alcotest.(check (option int)) "single" (Some 7) (Bitset.singleton_or_empty b);
  Bitset.add b 2;
  Alcotest.(check (option int)) "two" None (Bitset.singleton_or_empty b)

let test_bitset_exists () =
  let b = Bitset.create 64 in
  Bitset.add b 10;
  Bitset.add b 20;
  Alcotest.(check bool) "exists even" true (Bitset.exists (fun i -> i mod 2 = 0) b);
  Alcotest.(check bool) "exists >30" false (Bitset.exists (fun i -> i > 30) b)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter
    (fun (t, v) -> Heap.push h ~time:t v)
    [ (5, "e"); (1, "a"); (3, "c"); (2, "b"); (4, "d") ];
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (_, v) ->
        out := v :: !out;
        drain ()
  in
  drain ();
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c"; "d"; "e" ] (List.rev !out)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h ~time:7 v) [ 1; 2; 3; 4; 5 ];
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some (_, v) -> drain (v :: acc)
  in
  Alcotest.(check (list int)) "ties pop in push order" [ 1; 2; 3; 4; 5 ] (drain [])

let test_heap_grow () =
  let h = Heap.create () in
  for i = 999 downto 0 do
    Heap.push h ~time:i i
  done;
  Alcotest.(check int) "size" 1000 (Heap.size h);
  let prev = ref (-1) in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (t, v) ->
        Alcotest.(check int) "payload = time" t v;
        if t < !prev then Alcotest.failf "out of order: %d after %d" t !prev;
        prev := t;
        drain ()
  in
  drain ();
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let test_heap_min_time () =
  let h = Heap.create () in
  Alcotest.(check (option int)) "empty" None (Heap.min_time h);
  Heap.push h ~time:42 ();
  Alcotest.(check (option int)) "min" (Some 42) (Heap.min_time h)

let test_histogram_percentiles () =
  let h = Histogram.create () in
  for v = 1 to 1000 do
    Histogram.add h v
  done;
  Alcotest.(check int) "count" 1000 (Histogram.count h);
  let p50 = Histogram.percentile h 0.5 in
  let p99 = Histogram.percentile h 0.99 in
  Alcotest.(check bool)
    (Printf.sprintf "p50 near 500 (got %d)" p50)
    true
    (p50 >= 450 && p50 <= 550);
  Alcotest.(check bool)
    (Printf.sprintf "p99 near 990 (got %d)" p99)
    true
    (p99 >= 950 && p99 <= 1000);
  Alcotest.(check int) "max" 1000 (Histogram.max_value h)

let test_histogram_mean () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 10; 20; 30 ];
  Alcotest.(check (float 0.001)) "mean" 20.0 (Histogram.mean h)

let test_histogram_empty () =
  let h = Histogram.create () in
  Alcotest.(check int) "p99 of empty" 0 (Histogram.percentile h 0.99);
  Alcotest.(check (float 0.0)) "mean of empty" 0.0 (Histogram.mean h)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.add a) [ 1; 2; 3 ];
  List.iter (Histogram.add b) [ 1000; 2000 ];
  Histogram.merge_into ~dst:a b;
  Alcotest.(check int) "count" 5 (Histogram.count a);
  Alcotest.(check int) "max" 2000 (Histogram.max_value a)

let test_histogram_large_values () =
  let h = Histogram.create () in
  Histogram.add h 1_000_000_000;
  Histogram.add h 5;
  let p99 = Histogram.percentile h 0.99 in
  Alcotest.(check bool) "p99 covers large sample" true (p99 >= 900_000_000)

let test_stats () =
  let s = Stats.create () in
  Stats.incr s "a";
  Stats.incr s "a";
  Stats.add s "b" 10;
  Alcotest.(check int) "a" 2 (Stats.get s "a");
  Alcotest.(check int) "b" 10 (Stats.get s "b");
  Alcotest.(check int) "missing" 0 (Stats.get s "zzz");
  Alcotest.(check (list (pair string int))) "to_list" [ ("a", 2); ("b", 10) ] (Stats.to_list s);
  Stats.reset s;
  Alcotest.(check int) "after reset" 0 (Stats.get s "a")

let qcheck_histogram_percentile_bounds =
  QCheck.Test.make ~name:"histogram percentile bounded by max" ~count:200
    QCheck.(list_of_size Gen.(1 -- 100) (int_bound 100_000))
    (fun samples ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) samples;
      let p v = Histogram.percentile h v in
      p 0.5 <= p 0.99 && p 0.99 <= Histogram.max_value h && p 1.0 = Histogram.max_value h)

let qcheck_bitset_model =
  QCheck.Test.make ~name:"bitset agrees with list model" ~count:200
    QCheck.(list (pair bool (int_bound 99)))
    (fun ops ->
      let b = Bitset.create 100 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (add, i) ->
          if add then begin
            Bitset.add b i;
            Hashtbl.replace model i ()
          end
          else begin
            Bitset.remove b i;
            Hashtbl.remove model i
          end)
        ops;
      Bitset.cardinal b = Hashtbl.length model
      && List.for_all (fun i -> Bitset.mem b i = Hashtbl.mem model i) (List.init 100 Fun.id))

let suite =
  [
    ("prng deterministic", `Quick, test_prng_deterministic);
    ("prng seeds differ", `Quick, test_prng_seeds_differ);
    ("prng split independent", `Quick, test_prng_split_independent);
    ("prng int bounds", `Quick, test_prng_int_bounds);
    ("prng float bounds", `Quick, test_prng_float_bounds);
    ("prng below probability", `Quick, test_prng_below_probability);
    ("bitset basics", `Quick, test_bitset_basics);
    ("bitset iter order", `Quick, test_bitset_iter_order);
    ("bitset clear", `Quick, test_bitset_clear);
    ("bitset singleton", `Quick, test_bitset_singleton);
    ("bitset exists", `Quick, test_bitset_exists);
    ("heap ordering", `Quick, test_heap_ordering);
    ("heap fifo ties", `Quick, test_heap_fifo_ties);
    ("heap grow", `Quick, test_heap_grow);
    ("heap min_time", `Quick, test_heap_min_time);
    ("histogram percentiles", `Quick, test_histogram_percentiles);
    ("histogram mean", `Quick, test_histogram_mean);
    ("histogram empty", `Quick, test_histogram_empty);
    ("histogram merge", `Quick, test_histogram_merge);
    ("histogram large values", `Quick, test_histogram_large_values);
    ("stats counters", `Quick, test_stats);
    QCheck_alcotest.to_alcotest qcheck_histogram_percentile_bounds;
    QCheck_alcotest.to_alcotest qcheck_bitset_model;
  ]

let () =
  Alcotest.run "dps-repro"
    [
      ("simcore", Test_simcore.suite);
      ("machine", Test_machine.suite);
      ("sthread", Test_sthread.suite);
      ("sync", Test_sync.suite);
      ("ds", Test_ds.suite);
      ("dps", Test_dps.suite);
      ("faults", Test_faults.suite);
      ("ffwd", Test_ffwd.suite);
      ("workload", Test_workload.suite);
      ("memcached", Test_memcached.suite);
      ("integration", Test_integration.suite);
      ("adapters", Test_adapters.suite);
      ("parsec", Test_parsec.suite);
      ("btree", Test_btree.suite);
      ("net", Test_net.suite);
      ("check", Test_check.suite);
      ("cluster", Test_cluster.suite);
      ("frontcache", Test_frontcache.suite);
      ("batch", Test_batch.suite);
      ("obs", Test_obs.suite);
      ("adapt", Test_adapt.suite);
      ("bw", Test_bw.suite);
      ("determinism", Test_determinism.suite);
    ]

(* Front cache: host-side model tests of the version-validated presence
   cache (Simops charges are no-ops outside simulated threads, so the
   protocol runs bare), then end-to-end coherence through a real server —
   set→get on one connection must never see a stale read, including
   across a poller kill and self-healing partition takeover. *)

module Machine = Dps_machine.Machine
module Sthread = Dps_sthread.Sthread
module Net = Dps_net.Net
module Wire = Dps_net.Wire
module Variants = Dps_memcached.Variants
module Server = Dps_server.Server
module Frontcache = Dps_server.Frontcache
module Faults = Dps_faults

(* --- host-side model ----------------------------------------------------- *)

(* Reference backend: a presence map plus the per-key version table the
   real backend maintains — every applied write bumps before anyone can
   observe the new state, like Variants.dps_mc with ~versions. *)
type model = { mpresent : bool array; mvers : int array }

let model n = { mpresent = Array.make n false; mvers = Array.make n 0 }

let m_set m k =
  m.mvers.(k) <- m.mvers.(k) + 1;
  m.mpresent.(k) <- true

let m_del m k =
  if m.mpresent.(k) then m.mvers.(k) <- m.mvers.(k) + 1;
  m.mpresent.(k) <- false

let mk_fc ?(entries = 8) m =
  Frontcache.create ~entries ~alloc:(fun ~lines:_ -> 0)
    ~version_of:(fun k -> m.mvers.(k))
    ()

let test_hit_skips_fetch () =
  let m = model 32 in
  let fc = mk_fc m in
  m_set m 5;
  let fetches = ref 0 in
  let fetch () =
    incr fetches;
    m.mpresent.(5)
  in
  Alcotest.(check bool) "first lookup present" true (Frontcache.lookup fc 5 ~fetch);
  Alcotest.(check int) "first lookup fetched" 1 !fetches;
  Alcotest.(check bool) "second lookup present" true (Frontcache.lookup fc 5 ~fetch);
  Alcotest.(check bool) "third lookup present" true (Frontcache.lookup fc 5 ~fetch);
  Alcotest.(check int) "hits served without fetch" 1 !fetches;
  Alcotest.(check int) "two hits counted" 2 (Frontcache.stats fc).Frontcache.hits

let test_write_invalidates () =
  let m = model 32 in
  let fc = mk_fc m in
  m_set m 7;
  ignore (Frontcache.lookup fc 7 ~fetch:(fun () -> m.mpresent.(7)));
  (* a backend write bumps the version: the resident entry must refetch,
     and a delete must become visible immediately *)
  m_del m 7;
  Alcotest.(check bool) "delete visible through cache" false
    (Frontcache.lookup fc 7 ~fetch:(fun () -> m.mpresent.(7)));
  m_set m 7;
  Alcotest.(check bool) "re-set visible through cache" true
    (Frontcache.lookup fc 7 ~fetch:(fun () -> m.mpresent.(7)));
  Alcotest.(check bool) "stale refetches counted" true
    ((Frontcache.stats fc).Frontcache.stale >= 2)

let test_invalidate_drops_entry () =
  let m = model 32 in
  let fc = mk_fc m in
  m_set m 3;
  let fetches = ref 0 in
  let fetch () =
    incr fetches;
    m.mpresent.(3)
  in
  ignore (Frontcache.lookup fc 3 ~fetch);
  Frontcache.invalidate fc 3;
  ignore (Frontcache.lookup fc 3 ~fetch);
  Alcotest.(check int) "invalidate forced a refetch" 2 !fetches;
  Alcotest.(check int) "invalidation counted" 1 (Frontcache.stats fc).Frontcache.invals

let test_admission_duel () =
  (* one slot: every key collides. A hot resident must survive one-shot
     misses; a persistent challenger must eventually out-count it. *)
  let m = model 32 in
  let fc = mk_fc ~entries:1 m in
  m_set m 1;
  m_set m 2;
  let fetches_a = ref 0 and fetches_b = ref 0 in
  let look_a () = Frontcache.lookup fc 1 ~fetch:(fun () -> incr fetches_a; m.mpresent.(1)) in
  let look_b () = Frontcache.lookup fc 2 ~fetch:(fun () -> incr fetches_b; m.mpresent.(2)) in
  ignore (look_a ());
  for _ = 1 to 3 do
    ignore (look_a ())
  done;
  (* resident freq is now 4; one challenger miss must not evict *)
  ignore (look_b ());
  ignore (look_a ());
  Alcotest.(check int) "one-shot miss did not evict the hot resident" 1 !fetches_a;
  (* the challenger keeps coming: candidate counter rises while the
     resident's decays, so it must win within a few rounds *)
  for _ = 1 to 3 do
    ignore (look_b ())
  done;
  ignore (look_b ());
  let b_fetches_at_admit = !fetches_b in
  ignore (look_b ());
  Alcotest.(check int) "challenger admitted, now served from cache"
    b_fetches_at_admit !fetches_b;
  ignore (look_a ());
  Alcotest.(check int) "old resident was evicted" 2 !fetches_a

let qcheck_model_equivalence =
  (* Random op mix against the reference model, on a 4-slot cache over 32
     keys (heavy collision pressure). Kind 4 is the race the fill
     protocol exists for: a write lands in the middle of the backend
     fetch, after the version was read — the lookup may legitimately
     return the pre-write presence (the fetch linearized first), but no
     LATER lookup may: the final sweep proves no stale entry survives. *)
  QCheck.Test.make ~name:"frontcache: model equivalence under random ops incl. racing writes"
    ~count:300
    QCheck.(list (pair (int_bound 4) (int_bound 31)))
    (fun ops ->
      let m = model 32 in
      let fc = mk_fc ~entries:4 m in
      let ok = ref true in
      List.iter
        (fun (kind, k) ->
          match kind with
          | 0 ->
              let r = Frontcache.lookup fc k ~fetch:(fun () -> m.mpresent.(k)) in
              if r <> m.mpresent.(k) then ok := false
          | 1 -> m_set m k
          | 2 -> m_del m k
          | 3 -> Frontcache.invalidate fc k
          | _ ->
              let pre = m.mpresent.(k) in
              let r =
                Frontcache.lookup fc k
                  ~fetch:(fun () ->
                    let p = m.mpresent.(k) in
                    m_set m k;
                    p)
              in
              if r <> pre then ok := false)
        ops;
      for k = 0 to 31 do
        let r = Frontcache.lookup fc k ~fetch:(fun () -> m.mpresent.(k)) in
        if r <> m.mpresent.(k) then ok := false
      done;
      let st = Frontcache.stats fc in
      !ok
      && st.Frontcache.hits + st.Frontcache.misses + st.Frontcache.stale
         = List.length (List.filter (fun (kind, _) -> kind = 0 || kind = 4) ops) + 32)

(* --- end-to-end: server with the cache on -------------------------------- *)

(* Four connections through a front-cached server over a DPS backend.
   Each connection writes a disjoint key range (so its expected responses
   are computable locally) and reads both its own keys and a static
   pre-populated shared range; responses are FIFO per connection, so the
   received shape sequence must equal the reference exactly — any stale
   read (a get served from a poller's cache after the same connection's
   set or delete) shows up as a shape mismatch. *)

type op = S of int | D of int | G of int list

let shape_of_response = function
  | Wire.Values vs -> Printf.sprintf "values:%d" (List.length vs)
  | Wire.Stored -> "stored"
  | Wire.Not_stored -> "not_stored"
  | Wire.Deleted -> "deleted"
  | Wire.Not_found -> "not_found"
  | Wire.Error -> "error"
  | Wire.Client_error _ -> "client_error"
  | Wire.Server_error _ -> "server_error"

(* reference evaluation over a private presence map (own keys disjoint
   per connection; shared keys are never written by anyone) *)
let expected_shapes ~present ops =
  List.map
    (function
      | S k ->
          present.(k) <- true;
          "stored"
      | D k ->
          let was = present.(k) in
          present.(k) <- false;
          if was then "deleted" else "not_found"
      | G ks -> Printf.sprintf "values:%d" (List.length (List.filter (fun k -> present.(k)) ks)))
    ops

let encode_ops ops =
  let b = Buffer.create 256 in
  List.iter
    (fun o ->
      Wire.encode_request b
        (match o with
        | S k ->
            Wire.Set { key = string_of_int k; flags = 0; exptime = 0; data = "v"; noreply = false }
        | D k -> Wire.Delete { key = string_of_int k; noreply = false }
        | G ks -> Wire.Get (List.map string_of_int ks)))
    ops;
  Buffer.contents b

let nconns = 4
let own_base c = c * 8
let shared_base = 32
let nkeys = 64

(* own-key traffic interleaved with repeated shared-key reads (the
   repeats are the cache's hit fodder) and a multiget that crosses both *)
let script c phase =
  List.concat_map
    (fun i ->
      let k = own_base c + ((i + (4 * phase)) mod 8) in
      let sh = shared_base + ((c + i) mod 16) in
      [ S k; G [ k ]; G [ sh ]; G [ sh ]; G [ k; sh ]; D k; G [ k ]; S k; G [ k; sh ] ])
    [ 0; 1; 2; 3 ]

let mk_sim () = Sthread.create (Machine.create (Machine.config_scaled ()))

let start_server ?(self_healing = false) s =
  let net = Net.create s () in
  let backend =
    Variants.dps_mc s ~self_healing ~versions:(4 * 256) ~nclients:4 ~locality_size:4
      ~buckets:256 ~capacity:1024 ()
  in
  backend.Variants.populate
    ~keys:(Array.init 16 (fun i -> shared_base + i))
    ~val_lines:1;
  let srv =
    Server.start s net ~backend { Server.default_config with npollers = 4; front_cache = 8 }
  in
  (net, srv)

let mk_conn s net =
  let dec = Wire.decoder () in
  let shapes = ref [] in
  let c =
    Net.connect net ~nic:0
      ~rx:(fun data ->
        Wire.feed dec data;
        let rec drain () =
          match Wire.next_response dec with
          | Wire.Need_more -> ()
          | Wire.Bad { msg; _ } -> Alcotest.failf "client got unparsable response: %s" msg
          | Wire.Item r ->
              shapes := shape_of_response r :: !shapes;
              drain ()
        in
        drain ())
      ()
  in
  (ignore s; (c, shapes))

let test_read_your_writes_same_conn () =
  let s = mk_sim () in
  let net, srv = start_server s in
  let conns = Array.init nconns (fun _ -> mk_conn s net) in
  let expected =
    Array.init nconns (fun c ->
        let present = Array.make nkeys false in
        Array.iteri
          (fun i _ -> if i >= shared_base && i < shared_base + 16 then present.(i) <- true)
          present;
        expected_shapes ~present (script c 0))
  in
  Array.iteri (fun c (conn, _) -> Net.send net conn (encode_ops (script c 0))) conns;
  Sthread.at s ~time:2_000_000 (fun () -> Server.stop srv);
  Sthread.run s;
  Alcotest.(check bool) "front cache is on" true (Server.front_cache_on srv);
  Array.iteri
    (fun c (_, shapes) ->
      Alcotest.(check (list string))
        (Printf.sprintf "conn %d response sequence" c)
        expected.(c)
        (List.rev !shapes))
    conns;
  let fc = Server.fc_stats srv in
  Alcotest.(check bool) "cache actually served hits" true (fc.Frontcache.hits > 0);
  Alcotest.(check bool) "writes invalidated poller entries" true (fc.Frontcache.invals > 0)

let test_no_stale_read_across_takeover () =
  (* Same contract with a poller killed mid-run: its partition is healed
     by surviving pollers (self-healing DPS), the version table is global
     to the backend and survives the takeover, so every response that
     does arrive must still match the reference prefix — connections
     parked on the dead poller just stop answering. *)
  let s = mk_sim () in
  let net, srv = start_server ~self_healing:true s in
  let faults = Faults.install s ~seed:11L (Faults.spec ()) in
  let conns = Array.init nconns (fun _ -> mk_conn s net) in
  let expected =
    Array.init nconns (fun c ->
        let present = Array.make nkeys false in
        Array.iteri
          (fun i _ -> if i >= shared_base && i < shared_base + 16 then present.(i) <- true)
          present;
        expected_shapes ~present (script c 0 @ script c 1))
  in
  Array.iteri (fun c (conn, _) -> Net.send net conn (encode_ops (script c 0))) conns;
  Faults.schedule_kill faults ~at:300_000 ~tids:(fun () ->
      match Server.poller_tids srv with [] -> [] | t :: _ -> [ t ]);
  Sthread.at s ~time:600_000 (fun () ->
      Array.iteri (fun c (conn, _) -> Net.send net conn (encode_ops (script c 1))) conns);
  Sthread.at s ~time:6_000_000 (fun () -> Server.stop srv);
  Sthread.run s;
  let complete = ref 0 in
  Array.iteri
    (fun c (_, shapes) ->
      let got = List.rev !shapes in
      let ngot = List.length got in
      let want = expected.(c) in
      if ngot = List.length want then incr complete;
      Alcotest.(check bool)
        (Printf.sprintf "conn %d: every received response matches the reference prefix" c)
        true
        (got = List.filteri (fun i _ -> i < ngot) want))
    conns;
  Alcotest.(check bool)
    (Printf.sprintf "at least %d connections ran to completion" (nconns - 1))
    true
    (!complete >= nconns - 1)

let suite =
  [
    Alcotest.test_case "hit serves without fetch" `Quick test_hit_skips_fetch;
    Alcotest.test_case "backend write invalidates via version" `Quick test_write_invalidates;
    Alcotest.test_case "explicit invalidate drops entry" `Quick test_invalidate_drops_entry;
    Alcotest.test_case "LFU-lite admission duel" `Quick test_admission_duel;
    QCheck_alcotest.to_alcotest qcheck_model_equivalence;
    Alcotest.test_case "e2e: read-your-writes per connection" `Quick
      test_read_your_writes_same_conn;
    Alcotest.test_case "e2e: no stale read across poller kill/takeover" `Quick
      test_no_stale_read_across_takeover;
  ]

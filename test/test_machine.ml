(* Tests for the NUMA machine model: topology placement, cache boxes,
   coherence cost behaviour, NUMA policies. *)

module Topology = Dps_machine.Topology
module Machine = Dps_machine.Machine
module Cachebox = Dps_machine.Cachebox
module Costs = Dps_machine.Costs
module Prng = Dps_simcore.Prng
module Stats = Dps_simcore.Stats

let topo = Topology.default

let test_topology_counts () =
  Alcotest.(check int) "threads" 80 (Topology.nthreads topo);
  Alcotest.(check int) "cores" 40 (Topology.ncores topo)

let test_topology_mapping () =
  (* hw 0 and 1 are the two hyperthreads of core 0 on socket 0 *)
  Alcotest.(check int) "core of hw0" 0 (Topology.core_of_thread topo 0);
  Alcotest.(check int) "core of hw1" 0 (Topology.core_of_thread topo 1);
  Alcotest.(check (option int)) "sibling of hw0" (Some 1) (Topology.sibling_of_thread topo 0);
  Alcotest.(check (option int)) "sibling of hw1" (Some 0) (Topology.sibling_of_thread topo 1);
  (* hw 79 is the last hyperthread of core 39 on socket 3 *)
  Alcotest.(check int) "socket of hw79" 3 (Topology.socket_of_thread topo 79)

let sockets_used placed =
  placed |> Array.to_list
  |> List.map (Topology.socket_of_thread topo)
  |> List.sort_uniq compare

let test_placement_minimal_sockets () =
  (* paper rule: n <= 10 uses one socket, one hyperthread per core *)
  let p10 = Topology.placement topo ~n:10 in
  Alcotest.(check (list int)) "10 threads on socket 0" [ 0 ] (sockets_used p10);
  let cores =
    Array.to_list p10 |> List.map (Topology.core_of_thread topo) |> List.sort_uniq compare
  in
  Alcotest.(check int) "10 distinct cores" 10 (List.length cores)

let test_placement_spreads_then_hyperthreads () =
  let p40 = Topology.placement topo ~n:40 in
  Alcotest.(check (list int)) "40 threads over all sockets" [ 0; 1; 2; 3 ] (sockets_used p40);
  let distinct = Array.to_list p40 |> List.sort_uniq compare in
  Alcotest.(check int) "40 distinct hw threads" 40 (List.length distinct);
  (* all first hyperthreads *)
  Array.iter (fun hw -> Alcotest.(check int) "ht 0" 0 (hw mod 2)) p40;
  let p50 = Topology.placement topo ~n:50 in
  (* threads 40..49 are second hyperthreads confined to socket 0 *)
  for i = 40 to 49 do
    Alcotest.(check int) "second ht" 1 (p50.(i) mod 2);
    Alcotest.(check int) "on socket 0" 0 (Topology.socket_of_thread topo p50.(i))
  done

let test_placement_full () =
  let p80 = Topology.placement topo ~n:80 in
  let distinct = Array.to_list p80 |> List.sort_uniq compare in
  Alcotest.(check int) "80 distinct" 80 (List.length distinct)

let test_localities () =
  let placed = Topology.placement topo ~n:80 in
  let locs = Topology.localities topo ~placed ~size:10 in
  Alcotest.(check int) "8 localities" 8 (Array.length locs);
  Array.iter
    (fun loc ->
      let socks =
        loc |> Array.to_list |> List.map (Topology.socket_of_thread topo) |> List.sort_uniq compare
      in
      Alcotest.(check int) "locality within one socket" 1 (List.length socks))
    locs

let test_cachebox_basic () =
  let cb = Cachebox.create ~capacity:4 (Prng.create 3L) in
  List.iter (fun a -> ignore (Cachebox.add cb a)) [ 1; 2; 3; 4 ];
  Alcotest.(check int) "full" 4 (Cachebox.size cb);
  Alcotest.(check bool) "mem" true (Cachebox.mem cb 3);
  let victim = Cachebox.add cb 5 in
  Alcotest.(check bool) "eviction happened" true (victim <> None);
  Alcotest.(check int) "still full" 4 (Cachebox.size cb);
  Alcotest.(check bool) "new member present" true (Cachebox.mem cb 5);
  (match victim with
  | Some v -> Alcotest.(check bool) "victim gone" false (Cachebox.mem cb v)
  | None -> ());
  Cachebox.remove cb 5;
  Alcotest.(check bool) "removed" false (Cachebox.mem cb 5);
  Alcotest.(check int) "size after remove" 3 (Cachebox.size cb)

let test_cachebox_no_duplicate () =
  let cb = Cachebox.create ~capacity:4 (Prng.create 3L) in
  ignore (Cachebox.add cb 9);
  ignore (Cachebox.add cb 9);
  Alcotest.(check int) "no duplicates" 1 (Cachebox.size cb)

let qcheck_cachebox_capacity =
  QCheck.Test.make ~name:"cachebox never exceeds capacity" ~count:100
    QCheck.(list (int_bound 50))
    (fun addrs ->
      let cb = Cachebox.create ~capacity:8 (Prng.create 17L) in
      List.iter (fun a -> ignore (Cachebox.add cb a)) addrs;
      Cachebox.size cb <= 8
      && List.length (List.filter (Cachebox.mem cb) (List.sort_uniq compare addrs))
         = Cachebox.size cb)

let mk_machine () = Machine.create Machine.config_default

let test_alloc_homes () =
  let m = mk_machine () in
  let a = Machine.alloc m (Machine.On_node 2) ~lines:10 in
  for i = 0 to 9 do
    Alcotest.(check int) "homed on node 2" 2 (Machine.home_of m (a + i))
  done;
  let b = Machine.alloc m Machine.Interleave ~lines:8 in
  let homes = List.init 8 (fun i -> Machine.home_of m (b + i)) in
  Alcotest.(check (list int)) "interleaved" [ 0; 1; 2; 3; 0; 1; 2; 3 ] homes

let test_access_costs_ordering () =
  let m = mk_machine () in
  let costs = (Machine.config m).Machine.costs in
  let a = Machine.alloc m (Machine.On_node 0) ~lines:1 in
  (* First access by a socket-0 thread: page walk + local DRAM. *)
  let c1 = Machine.access m ~now:0 ~thread:0 ~addr:a ~kind:Machine.Read in
  Alcotest.(check int) "cold read = walk + local DRAM"
    (costs.Costs.walk_local + costs.Costs.dram_local)
    c1;
  (* Second access: TLB and private cache hit. *)
  let c2 = Machine.access m ~now:0 ~thread:0 ~addr:a ~kind:Machine.Read in
  Alcotest.(check int) "warm read = private hit" costs.Costs.priv_hit c2;
  (* Read by another thread on the same socket (different core): its own
     TLB is cold, the data comes from the shared LLC. *)
  let c3 = Machine.access m ~now:0 ~thread:4 ~addr:a ~kind:Machine.Read in
  Alcotest.(check int) "same-socket read = walk + LLC hit"
    (costs.Costs.walk_local + costs.Costs.llc_hit)
    c3;
  (* Read by a remote-socket thread: remote transfer, dearer than local LLC. *)
  let remote_thread = 2 * Topology.default.Topology.cores_per_socket * 2 in
  let c4 = Machine.access m ~now:0 ~thread:remote_thread ~addr:a ~kind:Machine.Read in
  Alcotest.(check bool) "remote read dearer than local LLC" true (c4 > c3)

let test_write_invalidates_readers () =
  let m = mk_machine () in
  let a = Machine.alloc m (Machine.On_node 0) ~lines:1 in
  ignore (Machine.access m ~now:0 ~thread:0 ~addr:a ~kind:Machine.Read);
  ignore (Machine.access m ~now:0 ~thread:40 ~addr:a ~kind:Machine.Read);
  (* thread 40 = socket 2 core 20 *)
  let inv_before = Stats.get (Machine.stats m) "invalidations" in
  ignore (Machine.access m ~now:0 ~thread:0 ~addr:a ~kind:Machine.Write);
  let inv_after = Stats.get (Machine.stats m) "invalidations" in
  Alcotest.(check bool) "write caused invalidation" true (inv_after > inv_before);
  (* The remote reader now misses again. *)
  let costs = (Machine.config m).Machine.costs in
  let c = Machine.access m ~now:0 ~thread:40 ~addr:a ~kind:Machine.Read in
  Alcotest.(check bool) "reader must re-fetch" true (c > costs.Costs.priv_hit)

let test_write_upgrade_cheaper_than_remote () =
  let m = mk_machine () in
  let a = Machine.alloc m (Machine.On_node 0) ~lines:1 in
  ignore (Machine.access m ~now:0 ~thread:0 ~addr:a ~kind:Machine.Read);
  (* Upgrade in place: have the line shared, then write it. *)
  let up = Machine.access m ~now:0 ~thread:0 ~addr:a ~kind:Machine.Write in
  let m2 = mk_machine () in
  let b = Machine.alloc m2 (Machine.On_node 0) ~lines:1 in
  ignore (Machine.access m2 ~now:0 ~thread:0 ~addr:b ~kind:Machine.Write);
  let remote_write = Machine.access m2 ~now:0 ~thread:40 ~addr:b ~kind:Machine.Write in
  Alcotest.(check bool) "upgrade cheaper than remote write" true (up < remote_write)

let test_rmw_dearer_than_write () =
  let m = mk_machine () in
  let a = Machine.alloc m (Machine.On_node 0) ~lines:2 in
  ignore (Machine.access m ~now:0 ~thread:0 ~addr:a ~kind:Machine.Write);
  ignore (Machine.access m ~now:0 ~thread:0 ~addr:(a + 1) ~kind:Machine.Write);
  let w = Machine.access m ~now:0 ~thread:0 ~addr:a ~kind:Machine.Write in
  let r = Machine.access m ~now:0 ~thread:0 ~addr:(a + 1) ~kind:Machine.Rmw in
  Alcotest.(check bool) "rmw adds cost" true (r > w)

let test_capacity_misses () =
  (* Touch far more lines than the private cache holds: later re-touches miss. *)
  let cfg = { Machine.config_default with Machine.priv_lines = 64; llc_lines = 128 } in
  let m = Machine.create cfg in
  let a = Machine.alloc m (Machine.On_node 0) ~lines:1024 in
  for i = 0 to 1023 do
    ignore (Machine.access m ~now:0 ~thread:0 ~addr:(a + i) ~kind:Machine.Read)
  done;
  let misses0 = Stats.get (Machine.stats m) "llc_misses" in
  (* Second sweep: working set exceeds LLC, so misses keep accruing. *)
  for i = 0 to 1023 do
    ignore (Machine.access m ~now:0 ~thread:0 ~addr:(a + i) ~kind:Machine.Read)
  done;
  let misses1 = Stats.get (Machine.stats m) "llc_misses" in
  Alcotest.(check bool) "capacity misses on re-sweep" true (misses1 - misses0 > 512)

let test_small_working_set_hits () =
  let m = mk_machine () in
  let a = Machine.alloc m (Machine.On_node 0) ~lines:16 in
  for i = 0 to 15 do
    ignore (Machine.access m ~now:0 ~thread:0 ~addr:(a + i) ~kind:Machine.Read)
  done;
  let before = Stats.get (Machine.stats m) "priv_hits" in
  for _ = 1 to 10 do
    for i = 0 to 15 do
      ignore (Machine.access m ~now:0 ~thread:0 ~addr:(a + i) ~kind:Machine.Read)
    done
  done;
  let after = Stats.get (Machine.stats m) "priv_hits" in
  Alcotest.(check int) "all re-touches are private hits" 160 (after - before)

let test_tlb_miss_and_reach () =
  let cfg = { Machine.config_default with Machine.tlb_entries = 2 } in
  let m = Machine.create cfg in
  (* 4 pages = 256 lines; only 2 TLB entries -> cyclic sweep keeps missing *)
  let a = Machine.alloc m (Machine.On_node 0) ~lines:256 in
  for sweep = 1 to 3 do
    ignore sweep;
    for page = 0 to 3 do
      ignore (Machine.access m ~now:0 ~thread:0 ~addr:(a + (64 * page)) ~kind:Machine.Read)
    done
  done;
  let misses = Dps_simcore.Stats.get (Machine.stats m) "tlb_misses" in
  Alcotest.(check bool) (Printf.sprintf "TLB thrashes (%d misses)" misses) true (misses >= 8)

let test_tlb_remote_walk_dearer () =
  let m = mk_machine () in
  let costs = (Machine.config m).Machine.costs in
  let local = Machine.alloc m (Machine.On_node 0) ~lines:64 in
  let remote = Machine.alloc m (Machine.On_node 3) ~lines:64 in
  let c_local = Machine.access m ~now:0 ~thread:0 ~addr:local ~kind:Machine.Read in
  let c_remote = Machine.access m ~now:0 ~thread:0 ~addr:remote ~kind:Machine.Read in
  Alcotest.(check int) "local walk + local dram"
    (costs.Costs.walk_local + costs.Costs.dram_local)
    c_local;
  Alcotest.(check int) "remote walk + remote dram"
    (costs.Costs.walk_remote + costs.Costs.dram_remote)
    c_remote

let test_write_queueing () =
  let m = mk_machine () in
  let a = Machine.alloc m (Machine.On_node 0) ~lines:1 in
  (* two writers from different sockets at the same instant: the second
     queues behind the first ownership transfer *)
  let c1 = Machine.access m ~now:0 ~thread:0 ~addr:a ~kind:Machine.Write in
  let c2 = Machine.access m ~now:0 ~thread:40 ~addr:a ~kind:Machine.Write in
  Alcotest.(check bool) "second write queues" true (c2 > c1);
  Alcotest.(check bool) "queueing counted" true
    (Dps_simcore.Stats.get (Machine.stats m) "write_queueing" >= 1);
  (* much later, no queueing *)
  let c3 = Machine.access m ~now:1_000_000 ~thread:0 ~addr:a ~kind:Machine.Write in
  Alcotest.(check bool) "no queue when idle" true (c3 < c2)

let test_reads_do_not_queue () =
  let m = mk_machine () in
  let a = Machine.alloc m (Machine.On_node 0) ~lines:1 in
  ignore (Machine.access m ~now:0 ~thread:0 ~addr:a ~kind:Machine.Write);
  (* concurrent readers on distinct cores serve in parallel: same cost *)
  let r1 = Machine.access m ~now:0 ~thread:8 ~addr:a ~kind:Machine.Read in
  let r2 = Machine.access m ~now:0 ~thread:12 ~addr:a ~kind:Machine.Read in
  Alcotest.(check int) "parallel reads" r1 r2

let test_work_cost_dilation () =
  let m = mk_machine () in
  Alcotest.(check int) "solo" 100 (Machine.work_cost m ~thread:0 100);
  Machine.set_active m ~thread:1 true;
  Alcotest.(check bool) "dilated with sibling" true (Machine.work_cost m ~thread:0 100 > 100);
  Machine.set_active m ~thread:1 false;
  Alcotest.(check int) "solo again" 100 (Machine.work_cost m ~thread:0 100)

let test_many_regions_lookup () =
  let m = mk_machine () in
  let bases =
    Array.init 200 (fun i -> Machine.alloc m (Machine.On_node (i mod 4)) ~lines:(1 + (i mod 7)))
  in
  Array.iteri
    (fun i base ->
      Alcotest.(check int) "first line homed right" (i mod 4) (Machine.home_of m base);
      let last = base + (i mod 7) in
      Alcotest.(check int) "last line homed right" (i mod 4) (Machine.home_of m last))
    bases

let test_unallocated_access_rejected () =
  let m = mk_machine () in
  Alcotest.check_raises "unallocated address"
    (Invalid_argument "Machine: access to unallocated address 999")
    (fun () -> ignore (Machine.access m ~now:0 ~thread:0 ~addr:999 ~kind:Machine.Read))

let test_cycles_to_seconds () =
  let m = mk_machine () in
  Alcotest.(check (float 1e-12)) "2 GHz" 1e-9 (Machine.cycles_to_seconds m 2)

let suite =
  [
    ("topology counts", `Quick, test_topology_counts);
    ("topology mapping", `Quick, test_topology_mapping);
    ("placement minimal sockets", `Quick, test_placement_minimal_sockets);
    ("placement hyperthreads", `Quick, test_placement_spreads_then_hyperthreads);
    ("placement full", `Quick, test_placement_full);
    ("localities", `Quick, test_localities);
    ("cachebox basic", `Quick, test_cachebox_basic);
    ("cachebox no duplicate", `Quick, test_cachebox_no_duplicate);
    QCheck_alcotest.to_alcotest qcheck_cachebox_capacity;
    ("alloc homes", `Quick, test_alloc_homes);
    ("access cost ordering", `Quick, test_access_costs_ordering);
    ("write invalidates readers", `Quick, test_write_invalidates_readers);
    ("write upgrade cheap", `Quick, test_write_upgrade_cheaper_than_remote);
    ("rmw dearer than write", `Quick, test_rmw_dearer_than_write);
    ("capacity misses", `Quick, test_capacity_misses);
    ("small working set hits", `Quick, test_small_working_set_hits);
    ("tlb miss and reach", `Quick, test_tlb_miss_and_reach);
    ("tlb remote walk dearer", `Quick, test_tlb_remote_walk_dearer);
    ("write queueing", `Quick, test_write_queueing);
    ("reads do not queue", `Quick, test_reads_do_not_queue);
    ("work cost dilation", `Quick, test_work_cost_dilation);
    ("many regions lookup", `Quick, test_many_regions_lookup);
    ("unallocated access rejected", `Quick, test_unallocated_access_rejected);
    ("cycles to seconds", `Quick, test_cycles_to_seconds);
  ]

(* Cluster layer: consistent-hash ring properties, sharded end-to-end
   serving, node-kill failover with the exactly-once oracle, and load
   shedding under overload. *)

module Machine = Dps_machine.Machine
module Sthread = Dps_sthread.Sthread
module Netload = Dps_workload.Netload
module Cluster = Dps_cluster.Cluster
module Ring = Dps_cluster.Ring
module Eo = Dps_check.Eo

let mk () = Sthread.create (Machine.create (Machine.config_scaled ()))

(* --- ring properties (pure) --- *)

let test_ring_coverage () =
  let r = Ring.create ~nnodes:4 () in
  let nkeys = 10_000 in
  let owned = Array.make 4 0 in
  for k = 0 to nkeys - 1 do
    let n = Ring.lookup r k in
    Alcotest.(check bool) "owner in range" true (n >= 0 && n < 4);
    owned.(n) <- owned.(n) + 1
  done;
  Array.iteri
    (fun n c ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d owns >= 5%% (got %d)" n c)
        true
        (c * 20 >= nkeys))
    owned;
  (* the layout is seedless: a second ring agrees on every owner *)
  let r' = Ring.create ~nnodes:4 () in
  for k = 0 to 999 do
    Alcotest.(check int) "deterministic layout" (Ring.lookup r k) (Ring.lookup r' k)
  done

let test_ring_remove_stability () =
  let r = Ring.create ~nnodes:4 () in
  let nkeys = 10_000 in
  let before = Array.init nkeys (Ring.lookup r) in
  Ring.remove r 1;
  Alcotest.(check bool) "node 1 no longer live" false (Ring.is_live r 1);
  let remapped = ref 0 in
  for k = 0 to nkeys - 1 do
    let now = Ring.lookup r k in
    if before.(k) = 1 then begin
      incr remapped;
      Alcotest.(check bool) "orphan lands on a survivor" true (now <> 1)
    end
    else Alcotest.(check int) "survivor keys keep their owner" before.(k) now
  done;
  Alcotest.(check bool) "some keys actually remapped" true (!remapped > 0);
  (* idempotent *)
  Ring.remove r 1;
  Alcotest.(check int) "still 3 nodes" 3 (Ring.size r)

let test_ring_successor () =
  let r = Ring.create ~nnodes:4 () in
  List.iter
    (fun n ->
      let s = Ring.successor r n in
      Alcotest.(check bool) "successor is live" true (Ring.is_live r s);
      Alcotest.(check bool) "successor is another node" true (s <> n))
    (Ring.nodes r);
  Ring.remove r 2;
  Ring.remove r 3;
  Alcotest.(check int) "successor with 2 live" 1 (Ring.successor r 0);
  Ring.remove r 1;
  Alcotest.(check int) "sole survivor is its own successor" 0 (Ring.successor r 0);
  Alcotest.check_raises "removing the last node raises"
    (Invalid_argument "Ring.remove: removing the last node") (fun () -> Ring.remove r 0)

(* --- qcheck ring properties --- *)

(* Replay an add/remove script; removals that would empty the ring are
   skipped (both copies skip them identically). *)
let apply_ops r ops =
  List.iter
    (fun (add, node) ->
      if add then Ring.add r node else if Ring.size r > 1 then Ring.remove r node)
    ops

let qcheck_ring_replay =
  QCheck.Test.make ~name:"ring: membership script replays to identical owners" ~count:100
    QCheck.(list (pair bool (int_bound 7)))
    (fun ops ->
      let a = Ring.create ~nnodes:4 () and b = Ring.create ~nnodes:4 () in
      apply_ops a ops;
      apply_ops b ops;
      Ring.nodes a = Ring.nodes b
      && List.for_all (fun k -> Ring.lookup a k = Ring.lookup b k) (List.init 512 Fun.id))

let qcheck_ring_add_movement =
  QCheck.Test.make ~name:"ring: add moves a bounded key share, all of it to the newcomer"
    ~count:60
    QCheck.(pair (int_range 1 7) (int_range 8 15))
    (fun (nnodes, newcomer) ->
      let r = Ring.create ~nnodes () in
      let nkeys = 4096 in
      let before = Array.init nkeys (Ring.lookup r) in
      Ring.add r newcomer;
      let moved = ref 0 and misdirected = ref 0 in
      for k = 0 to nkeys - 1 do
        let now = Ring.lookup r k in
        if now <> before.(k) then begin
          incr moved;
          if now <> newcomer then incr misdirected
        end
      done;
      (* the newcomer's fair share is 1/(nnodes+1); 64 vnodes keeps the
         realized share well inside 3x of it *)
      let expect = nkeys / (nnodes + 1) in
      !misdirected = 0 && !moved > 0 && !moved < 3 * expect)

let qcheck_ring_remove_add_roundtrip =
  QCheck.Test.make ~name:"ring: remove then re-add restores every owner" ~count:60
    QCheck.(pair (int_range 2 8) (int_bound 7))
    (fun (nnodes, victim) ->
      QCheck.assume (victim < nnodes);
      let r = Ring.create ~nnodes () in
      let nkeys = 2048 in
      let before = Array.init nkeys (Ring.lookup r) in
      Ring.remove r victim;
      Ring.add r victim;
      Ring.nodes r = List.init nnodes Fun.id && Array.init nkeys (Ring.lookup r) = before)

(* --- cluster end-to-end --- *)

let items = 2048

let mk_cluster ?(nnodes = 4) ?(shed_threshold = 0) sched eo =
  let cfg =
    {
      Cluster.default_config with
      Cluster.nnodes;
      buckets = items;
      capacity = 2 * items;
      server =
        { Cluster.default_config.Cluster.server with Dps_server.Server.shed_threshold };
    }
  in
  let c =
    Cluster.create sched
      ~on_set_applied:(fun ~node ~tag -> if tag <> 0 then Eo.apply eo ~opid:tag ~node)
      cfg
  in
  Cluster.populate c ~keys:(Array.init items Fun.id) ~val_lines:1;
  Cluster.start_probe c;
  c

let run_fleet sched cluster eo ~nclients ~duration =
  let base = Netload.spec ~nclients ~nconns:4 ~set_pct:20 ~key_range:items () in
  let rs = Netload.rspec ~base ~on_acked:(fun ~opid ~node -> Eo.ack eo ~opid ~node) () in
  Netload.run_routed sched (Cluster.router cluster) rs ~duration
    ~stop:(fun () -> Cluster.stop cluster)
    ()

let test_cluster_end_to_end () =
  let s = mk () in
  let eo = Eo.create () in
  let c = mk_cluster s eo in
  let rr = run_fleet s c eo ~nclients:128 ~duration:80_000 in
  Alcotest.(check bool) "completed some ops" true (rr.Netload.agg.Netload.completed > 500);
  Alcotest.(check int) "nothing abandoned" 0 rr.Netload.abandoned;
  Alcotest.(check int) "all nodes stayed up" 4 (Cluster.nodes_up c);
  Array.iteri
    (fun n done_ ->
      Alcotest.(check bool) (Printf.sprintf "node %d served" n) true (done_ > 0))
    rr.Netload.per_node_completed;
  let v = Eo.check eo ~node_dead:(Cluster.node_dead c) in
  Alcotest.(check bool) (Format.asprintf "exactly-once: %a" Eo.pp_verdict v) true (Eo.ok v);
  Alcotest.(check bool) "sets were acked" true (v.Eo.acked > 0)

let test_cluster_deterministic () =
  let run () =
    let s = mk () in
    let eo = Eo.create () in
    let c = mk_cluster s eo in
    let rr = run_fleet s c eo ~nclients:64 ~duration:60_000 in
    [
      rr.Netload.agg.Netload.issued;
      rr.Netload.agg.Netload.completed;
      rr.Netload.agg.Netload.p99;
      rr.Netload.retries;
    ]
  in
  Alcotest.(check (list int)) "identical replay" (run ()) (run ())

let test_cluster_kill_failover () =
  let s = mk () in
  let eo = Eo.create () in
  let c = mk_cluster s eo in
  let faults = Dps_faults.install s ~seed:5L (Dps_faults.spec ()) in
  let kill_at = 90_000 in
  Cluster.schedule_kill c faults ~node:1 ~at:kill_at;
  let rr = run_fleet s c eo ~nclients:128 ~duration:240_000 in
  Alcotest.(check bool) "node 1 declared dead" true (Cluster.node_dead c 1);
  Alcotest.(check int) "three survivors" 3 (Cluster.nodes_up c);
  (match Cluster.failover_log c with
  | [ (node, t) ] ->
      Alcotest.(check int) "the dead node is node 1" 1 node;
      let bound = (2 * Cluster.default_config.Cluster.probe_interval) + 40_000 in
      Alcotest.(check bool)
        (Printf.sprintf "declared within %d cycles (took %d)" bound (t - kill_at))
        true
        (t - kill_at <= bound)
  | l -> Alcotest.failf "expected exactly one failover, got %d" (List.length l));
  Alcotest.(check bool) "ring dropped the dead node" false (Ring.is_live (Cluster.ring c) 1);
  Alcotest.(check bool) "ops rerouted to survivors" true (rr.Netload.rerouted > 0);
  Alcotest.(check bool) "fleet kept completing after the kill" true
    (rr.Netload.agg.Netload.completed > 1000);
  let v = Eo.check eo ~node_dead:(Cluster.node_dead c) in
  Alcotest.(check bool) (Format.asprintf "exactly-once: %a" Eo.pp_verdict v) true (Eo.ok v)

let test_cluster_shed_busy () =
  let s = mk () in
  let eo = Eo.create () in
  let c = mk_cluster s eo ~shed_threshold:1 in
  (* several connections per poller, so a poller mid-service sees other
     ready connections queued and the threshold trips *)
  let base = Netload.spec ~nclients:512 ~nconns:32 ~set_pct:20 ~key_range:items () in
  let rs = Netload.rspec ~base ~on_acked:(fun ~opid ~node -> Eo.ack eo ~opid ~node) () in
  let rr =
    Netload.run_routed s (Cluster.router c) rs ~duration:60_000
      ~stop:(fun () -> Cluster.stop c)
      ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "overload shed some requests (busy=%d)" rr.Netload.busy)
    true (rr.Netload.busy > 0);
  Alcotest.(check bool) "shed ops were retried to completion" true
    (rr.Netload.agg.Netload.completed > 500);
  let v = Eo.check eo ~node_dead:(Cluster.node_dead c) in
  Alcotest.(check bool)
    (Format.asprintf "no double-apply through busy retries: %a" Eo.pp_verdict v)
    true (Eo.ok v)

let suite =
  [
    ("ring coverage and determinism", `Quick, test_ring_coverage);
    ("ring remove stability", `Quick, test_ring_remove_stability);
    ("ring successor", `Quick, test_ring_successor);
    QCheck_alcotest.to_alcotest qcheck_ring_replay;
    QCheck_alcotest.to_alcotest qcheck_ring_add_movement;
    QCheck_alcotest.to_alcotest qcheck_ring_remove_add_roundtrip;
    ("cluster end to end", `Quick, test_cluster_end_to_end);
    ("cluster deterministic replay", `Quick, test_cluster_deterministic);
    ("node kill -> failover, exactly-once", `Quick, test_cluster_kill_failover);
    ("overload sheds busy, retries safe", `Quick, test_cluster_shed_busy);
  ]

(* Chaos tests: fault injection (Dps_faults) against the self-healing DPS
   runtime. The properties under test are the robustness acceptance
   criteria: no hang within a bounded simulated-cycle budget, no lost (or
   duplicated) acknowledged operation, deterministic replay of the healing
   counters, and liveness after client_done-without-drain. *)

module Machine = Dps_machine.Machine
module Sthread = Dps_sthread.Sthread
module Faults = Dps_faults

type part_data = { cells : int array; mutable ops_run : int }

let budget = 50_000_000
let mk_sched () = Sthread.create (Machine.create Machine.config_default)

let mk_dps ?(self_healing = false) ?await_timeout sched =
  Dps.create sched ~nclients:20 ~locality_size:10
    ~hash:(fun k -> k)
    ~self_healing ?await_timeout
    ~mk_data:(fun (_ : Dps.partition_info) -> { cells = Array.make 64 0; ops_run = 0 })
    ()

let bump cell (d : part_data) =
  d.cells.(cell) <- d.cells.(cell) + 1;
  d.ops_run <- d.ops_run + 1;
  d.cells.(cell)

let applied_total dps =
  let t = ref 0 in
  for pid = 0 to Dps.npartitions dps - 1 do
    t := !t + Array.fold_left ( + ) 0 (Dps.partition_data dps pid).cells
  done;
  !t

let acked_total = Array.fold_left ( + ) 0

let check_no_hang sched =
  Alcotest.(check int) "no hang: all threads finished" 0 (Sthread.live_threads sched);
  Alcotest.(check bool) "finished within cycle budget" true (Sthread.now sched < budget)

(* One chaos run: every client issues [per] synchronous delegated-or-local
   ops; one client of each locality is crashed mid-run at a scheduled,
   deterministic time. Returns everything a replay must reproduce. *)
let chaos_run ~seed () =
  let sched = mk_sched () in
  let dps = mk_dps ~self_healing:true ~await_timeout:15_000 sched in
  let plan = Faults.install sched ~seed (Faults.spec ()) in
  (* one victim per locality: client 3 (partition 0), client 17 (partition 1) *)
  Faults.schedule_crash plan ~tid:3 ~at:5_000;
  Faults.schedule_crash plan ~tid:17 ~at:9_000;
  let per = 60 in
  let acked = Array.make 20 0 in
  for c = 0 to 19 do
    Sthread.spawn sched ~hw:(Dps.client_hw dps c) (fun () ->
        Dps.attach dps ~client:c;
        for i = 1 to per do
          ignore (Dps.call dps ~key:(i mod 4) (bump (i mod 4)));
          acked.(c) <- acked.(c) + 1
        done;
        Dps.client_done dps;
        Dps.drain dps)
  done;
  Sthread.run ~until:budget sched;
  (sched, dps, plan, acked)

let test_chaos_crash_every_locality () =
  let sched, dps, plan, acked = chaos_run ~seed:42L () in
  check_no_hang sched;
  Alcotest.(check int) "both scheduled crashes fired" 2 (Faults.crashes_injected plan);
  Alcotest.(check (list int)) "victims in order" [ 3; 17 ] (Faults.crashed plan);
  let h = Dps.health dps in
  Alcotest.(check int) "runtime saw both crashes" 2 h.Dps.crashes;
  (* Exactly-once for acknowledged ops: a crashed client may have had at
     most one unacknowledged operation in flight, which is allowed to have
     been applied (at-most-once) — nothing else may be lost or doubled. *)
  let acked = acked_total acked and applied = applied_total dps in
  Alcotest.(check bool) "no acked op lost" true (applied >= acked);
  Alcotest.(check bool) "no op doubled" true (applied <= acked + 2);
  (* survivors all finished their full quota *)
  Alcotest.(check bool) "survivors acked full quota" true (acked >= 18 * 60)

let test_chaos_deterministic_replay () =
  let fingerprint ~seed =
    let sched, dps, plan, acked = chaos_run ~seed () in
    let h = Dps.health dps in
    ( Sthread.now sched,
      applied_total dps,
      acked_total acked,
      ( h.Dps.takeovers,
        h.Dps.adoptions,
        h.Dps.retries,
        h.Dps.failovers,
        h.Dps.crashes,
        h.Dps.lock_breaks ),
      (Array.to_list h.Dps.pending_depth, Array.to_list h.Dps.dead_partitions),
      (Faults.crashes_injected plan, Faults.stalls_injected plan, Faults.delays_injected plan) )
  in
  let a = fingerprint ~seed:7L and b = fingerprint ~seed:7L in
  Alcotest.(check bool) "same seed, identical end time, totals and health" true (a = b)

let test_stall_and_delay_chaos_is_lossless () =
  let run () =
    let sched = mk_sched () in
    let dps = mk_dps ~self_healing:true ~await_timeout:15_000 sched in
    let plan =
      Faults.install sched ~seed:11L
        (Faults.spec ~stall_prob:0.002 ~stall_cycles:3_000 ~delay_prob:0.01 ~delay_cycles:500 ())
    in
    let per = 30 in
    for c = 0 to 19 do
      Sthread.spawn sched ~hw:(Dps.client_hw dps c) (fun () ->
          Dps.attach dps ~client:c;
          for i = 1 to per do
            ignore (Dps.call dps ~key:(i mod 4) (bump (i mod 4)))
          done;
          Dps.client_done dps;
          Dps.drain dps)
    done;
    Sthread.run ~until:budget sched;
    check_no_hang sched;
    Alcotest.(check int) "no crashes injected" 0 (Faults.crashes_injected plan);
    Alcotest.(check bool) "chaos actually happened" true
      (Faults.stalls_injected plan + Faults.delays_injected plan > 0);
    (* no crash => exactly-once, bit for bit *)
    Alcotest.(check int) "every op applied exactly once" (20 * per) (applied_total dps);
    (Sthread.now sched, Dps.health dps)
  in
  let t1, h1 = run () and t2, h2 = run () in
  Alcotest.(check int) "replay: same end time" t1 t2;
  Alcotest.(check int) "replay: same takeover count" h1.Dps.takeovers h2.Dps.takeovers;
  Alcotest.(check int) "replay: same retries" h1.Dps.retries h2.Dps.retries

let test_whole_locality_crash_fails_over () =
  let sched = mk_sched () in
  let dps = mk_dps ~self_healing:true ~await_timeout:10_000 sched in
  let plan = Faults.install sched ~seed:3L (Faults.spec ()) in
  (* kill every client of locality 1, staggered early in the run *)
  for c = 10 to 19 do
    Faults.schedule_crash plan ~tid:c ~at:(4_000 + (400 * (c - 10)))
  done;
  let per = 40 in
  let acked = Array.make 20 0 in
  for c = 0 to 19 do
    Sthread.spawn sched ~hw:(Dps.client_hw dps c) (fun () ->
        Dps.attach dps ~client:c;
        (* locality 0 targets partition 1 (soon dead); locality 1 targets
           partition 0, so its crashes also abandon in-flight delegations *)
        let key = 1 - (c / 10) in
        for _ = 1 to per do
          ignore (Dps.call dps ~key (bump key));
          acked.(c) <- acked.(c) + 1
        done;
        Dps.client_done dps;
        Dps.drain dps)
  done;
  Sthread.run ~until:budget sched;
  check_no_hang sched;
  let h = Dps.health dps in
  Alcotest.(check int) "all ten victims crashed" 10 h.Dps.crashes;
  Alcotest.(check int) "one partition failed over" 1 h.Dps.failovers;
  Alcotest.(check bool) "partition 1 marked dead" true h.Dps.dead_partitions.(1);
  Alcotest.(check bool) "partition 0 alive" false h.Dps.dead_partitions.(0);
  (* after failover the dead partition's buckets resolve to a live one *)
  Alcotest.(check int) "key 1 retargeted to partition 0" 0 (Dps.partition_of_key dps 1);
  (* ops applied pre-failover live in partition 1's structure, later ones in
     partition 0's — conservation holds across both *)
  let acked = acked_total acked and applied = applied_total dps in
  Alcotest.(check bool) "no acked op lost" true (applied >= acked);
  Alcotest.(check bool) "no op doubled" true (applied <= acked + 10);
  Alcotest.(check bool) "survivors finished their quota" true (acked >= 10 * per)

let test_client_done_without_drain_is_adopted () =
  (* Regression: a client that calls client_done and returns without
     draining used to orphan its serving share — senders delegating into
     those rings hung forever. Share adoption is always on (independent of
     self_healing), so the default runtime must pass. *)
  let sched = mk_sched () in
  let dps = mk_dps sched in
  for c = 0 to 19 do
    Sthread.spawn sched ~hw:(Dps.client_hw dps c) (fun () ->
        Dps.attach dps ~client:c;
        if c = 15 then begin
          (* a few local ops so peers are attached, then leave abruptly *)
          for _ = 1 to 5 do
            ignore (Dps.call dps ~key:1 (bump 1))
          done;
          Dps.client_done dps
          (* no drain: this thread's serving share must be adopted *)
        end
        else begin
          let key = if c < 10 then 1 else 0 in
          for _ = 1 to 20 do
            ignore (Dps.call dps ~key (bump key))
          done;
          Dps.client_done dps;
          Dps.drain dps
        end)
  done;
  Sthread.run ~until:budget sched;
  check_no_hang sched;
  let h = Dps.health dps in
  Alcotest.(check bool) "share was adopted" true (h.Dps.adoptions >= 1);
  Alcotest.(check int) "no crash recorded for a clean exit" 0 h.Dps.crashes;
  Alcotest.(check int) "every op applied exactly once" ((19 * 20) + 5) (applied_total dps)

let test_double_attach_rejected () =
  let sched = mk_sched () in
  let dps = mk_dps sched in
  let got = ref "" in
  Sthread.spawn sched
    ~hw:(Dps.client_hw dps 0)
    (fun () ->
      Dps.attach dps ~client:0;
      (try Dps.attach dps ~client:1 with Failure m -> got := m);
      Dps.client_done dps);
  Sthread.run sched;
  Alcotest.(check string) "second attach fails" "Dps: thread already attached" !got

let test_detach_hands_share () =
  let sched = mk_sched () in
  let dps = mk_dps ~self_healing:true sched in
  for c = 0 to 19 do
    Sthread.spawn sched ~hw:(Dps.client_hw dps c) (fun () ->
        Dps.attach dps ~client:c;
        if c = 15 then begin
          for _ = 1 to 5 do
            ignore (Dps.call dps ~key:1 (bump 1))
          done;
          Dps.client_done dps;
          Dps.detach dps
        end
        else begin
          let key = if c < 10 then 1 else 0 in
          for _ = 1 to 20 do
            ignore (Dps.call dps ~key (bump key))
          done;
          Dps.client_done dps;
          Dps.drain dps
        end)
  done;
  Sthread.run ~until:budget sched;
  check_no_hang sched;
  let h = Dps.health dps in
  Alcotest.(check bool) "detach handed the share over" true (h.Dps.adoptions >= 1);
  Alcotest.(check int) "detach is not a crash" 0 h.Dps.crashes;
  Alcotest.(check int) "every op applied exactly once" ((19 * 20) + 5) (applied_total dps)

let test_health_idle_snapshot () =
  let sched = mk_sched () in
  let dps = mk_dps sched in
  let h = Dps.health dps in
  Alcotest.(check int) "two partitions tracked" 2 (Array.length h.Dps.pending_depth);
  Alcotest.(check (list int)) "nothing pending" [ 0; 0 ] (Array.to_list h.Dps.pending_depth);
  Alcotest.(check bool) "no partition dead" true
    (Array.for_all not h.Dps.dead_partitions);
  List.iter
    (fun (name, v) -> Alcotest.(check int) name 0 v)
    [
      ("takeovers", h.Dps.takeovers);
      ("adoptions", h.Dps.adoptions);
      ("retries", h.Dps.retries);
      ("failovers", h.Dps.failovers);
      ("crashes", h.Dps.crashes);
      ("lock breaks", h.Dps.lock_breaks);
    ]

let suite =
  [
    ("chaos: crash one client per locality", `Quick, test_chaos_crash_every_locality);
    ("chaos: deterministic replay", `Quick, test_chaos_deterministic_replay);
    ("chaos: stalls and delays are lossless", `Quick, test_stall_and_delay_chaos_is_lossless);
    ("whole-locality crash fails over", `Quick, test_whole_locality_crash_fails_over);
    ("client_done without drain is adopted", `Quick, test_client_done_without_drain_is_adopted);
    ("double attach rejected", `Quick, test_double_attach_rejected);
    ("detach hands share to a peer", `Quick, test_detach_hands_share);
    ("health: idle snapshot", `Quick, test_health_idle_snapshot);
  ]

(* Tests for the unified observability layer: the zero-perturbation
   invariant (bit-identical simulation with observability off or on), span
   nesting and trace well-formedness (including under schedule
   exploration), the metrics registry, the JSON codec, the bench
   regression policy, and the planted span-close mutation. *)

module Machine = Dps_machine.Machine
module Sthread = Dps_sthread.Sthread
module Stats = Dps_simcore.Stats
module Hashtable = Dps_ds.Hashtable
module Schedule = Dps_check.Schedule
module Obs = Dps_obs.Obs
module Registry = Dps_obs.Registry
module Json = Dps_obs.Json
module Regress = Dps_obs.Regress

(* A small delegated workload: 20 clients over 2 partitions inserting into
   a DPS hash table — exercises issue/flush/dispatch/await spans and the
   machine's stall reporting. *)
let run_workload ?ctl () =
  let m = Machine.create Machine.config_default in
  let sched = Sthread.create m in
  (match ctl with Some c -> Schedule.attach c sched | None -> ());
  let dps =
    Dps.create sched ~nclients:20 ~locality_size:10 ~hash:Fun.id
      ~mk_data:(fun (info : Dps.partition_info) -> Hashtable.create info.Dps.alloc)
      ()
  in
  for client = 0 to 19 do
    Sthread.spawn sched ~hw:(Dps.client_hw dps client) (fun () ->
        Dps.attach dps ~client;
        for i = 0 to 19 do
          let key = (client * 20) + i in
          ignore
            (Dps.call dps ~key (fun ht -> if Hashtable.insert ht ~key ~value:key then 1 else 0))
        done;
        Dps.client_done dps;
        Dps.drain dps)
  done;
  Sthread.run sched;
  (m, sched, dps)

(* Everything the simulation computes, as one comparable value. *)
let fingerprint (m, sched, dps) =
  ( Sthread.now sched,
    Dps.delegated_ops dps,
    Dps.local_ops dps,
    Stats.to_list (Machine.stats m) )

let cleanup () =
  Obs.stop ();
  Obs.reset ()

(* --- the tentpole invariant: observation never perturbs ----------------- *)

let test_zero_perturbation () =
  cleanup ();
  let off = fingerprint (run_workload ()) in
  Obs.start ~tracing:true ~profiling:true ();
  let on = fingerprint (run_workload ()) in
  Obs.stop ();
  Alcotest.(check bool) "events were collected" true (Obs.event_count () > 0);
  Alcotest.(check bool) "bit-identical with observability on" true (off = on);
  Obs.start ~tracing:false ~profiling:true ();
  let prof = fingerprint (run_workload ()) in
  cleanup ();
  Alcotest.(check bool) "bit-identical with profiling only" true (off = prof)

(* --- span nesting and cycle attribution --------------------------------- *)

let test_profile_attribution () =
  cleanup ();
  Obs.start ~tracing:false ~profiling:true ();
  let _ = run_workload () in
  Obs.stop ();
  (match Obs.validate () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "profiled run invalid: %s" e);
  let rows = Obs.profile () in
  let phases = List.map (fun (r : Obs.prof_row) -> r.phase) rows in
  List.iter
    (fun p ->
      Alcotest.(check bool) (p ^ " attributed") true (List.mem p phases))
    [ "dps.issue"; "dps.dispatch"; "dps.await" ];
  List.iter
    (fun (r : Obs.prof_row) ->
      let self = r.self_work + r.self_mem + r.self_stall + r.self_park in
      Alcotest.(check bool)
        (r.phase ^ ": inclusive total covers self")
        true (r.total >= self))
    rows;
  let cores = Obs.core_cycles () in
  Alcotest.(check bool) "cycles attributed to cores" true
    (cores <> [] && List.for_all (fun (_, c) -> c > 0) cores);
  cleanup ()

(* --- trace well-formedness ---------------------------------------------- *)

let test_trace_wellformed () =
  cleanup ();
  Obs.start ~tracing:true ~profiling:false ();
  let _ = run_workload () in
  Obs.stop ();
  (match Obs.validate () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "trace invalid: %s" e);
  let j =
    match Json.parse (Obs.chrome_json ()) with
    | Ok j -> j
    | Error e -> Alcotest.failf "chrome trace is not valid JSON: %s" e
  in
  let events =
    match Json.member "traceEvents" j with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check bool) "trace has events" true (List.length events > 0);
  let ph e = match Json.member "ph" e with Some (Json.Str s) -> s | _ -> "?" in
  let count p = List.length (List.filter (fun e -> ph e = p) events) in
  List.iter
    (fun e ->
      Alcotest.(check bool) "every event has a phase" true (ph e <> "?");
      match Json.member "pid" e with
      | Some (Json.Num _) -> ()
      | _ -> Alcotest.fail "event missing pid")
    events;
  Alcotest.(check int) "span opens match closes" (count "B") (count "E");
  Alcotest.(check int) "async begins match ends" (count "b") (count "e");
  cleanup ()

(* --- determinism under schedule exploration ------------------------------ *)

let test_trace_replay_identical () =
  cleanup ();
  let traced ctl =
    Obs.start ~tracing:true ~profiling:true ();
    let _ = run_workload ~ctl () in
    Obs.stop ();
    let j = Obs.chrome_json () in
    Obs.reset ();
    j
  in
  let ctl = Schedule.make ~seed:5L (Schedule.Random_preempt { prob = 0.05; max_delay = 400 }) in
  let j1 = traced ctl in
  let tr = Schedule.trace ctl in
  Alcotest.(check bool) "schedule was perturbed" true (tr <> []);
  let j2 = traced (Schedule.make ~seed:0L (Schedule.Replay tr)) in
  Alcotest.(check bool) "replayed trace is byte-identical" true (String.equal j1 j2)

(* --- metrics registry ---------------------------------------------------- *)

let test_registry () =
  let reg = Registry.create () in
  let c = Registry.counter reg "test.ops" in
  Registry.Counter.incr c;
  Registry.Counter.add c 41;
  let g = Registry.gauge reg ~labels:[ ("socket", "1") ] "test.depth" in
  Registry.Gauge.set g 2.5;
  Registry.gauge_fn reg ~labels:[ ("socket", "0") ] "test.depth" (fun () -> 7.0);
  let h = Registry.histo reg "test.latency" in
  List.iter (Registry.Histo.observe h) [ 10; 20; 30; 40 ];
  let snap = Registry.snapshot reg in
  Alcotest.(check int) "four instruments" 4 (List.length snap);
  let names = List.map (fun s -> s.Registry.name) snap in
  Alcotest.(check bool) "sorted by name" true (names = List.sort compare names);
  (match
     List.find_opt (fun s -> s.Registry.name = "test.ops") snap
   with
  | Some { Registry.value = Registry.Counter_v 42; _ } -> ()
  | _ -> Alcotest.fail "counter value lost");
  (match
     List.find_opt
       (fun s -> s.Registry.name = "test.depth" && s.Registry.labels = [ ("socket", "0") ])
       snap
   with
  | Some { Registry.value = Registry.Gauge_v 7.0; _ } -> ()
  | _ -> Alcotest.fail "callback gauge not sampled");
  (match List.find_opt (fun s -> s.Registry.name = "test.latency") snap with
  | Some { Registry.value = Registry.Histo_v { count = 4; _ }; _ } -> ()
  | _ -> Alcotest.fail "histogram count lost")

let test_registry_label_uniqueness () =
  let reg = Registry.create () in
  ignore (Registry.counter reg ~labels:[ ("a", "1"); ("b", "2") ] "dup.metric");
  (* same name, same labels in a different order: normalization collides *)
  Alcotest.check_raises "duplicate registration rejected"
    (Invalid_argument "Registry: duplicate metric dup.metric{a=1,b=2}") (fun () ->
      ignore (Registry.counter reg ~labels:[ ("b", "2"); ("a", "1") ] "dup.metric"));
  (* same name, different labels: a distinct series, accepted *)
  ignore (Registry.counter reg ~labels:[ ("a", "9") ] "dup.metric")

(* --- JSON codec ----------------------------------------------------------- *)

let test_json_codec () =
  let src = {|{"s":"a\"b\\cA😀","n":[1,2.5,-3e2,0],"b":true,"z":null}|} in
  let j = Json.parse_exn src in
  (match Json.member "s" j with
  | Some (Json.Str s) -> Alcotest.(check string) "escapes" "a\"b\\cA\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "string member lost");
  (match Json.member "n" j with
  | Some (Json.List [ a; b; c; d ]) ->
      Alcotest.(check bool) "numbers" true
        (Json.to_float a = Some 1.0 && Json.to_float b = Some 2.5 && Json.to_float c = Some (-300.0)
       && Json.to_float d = Some 0.0)
  | _ -> Alcotest.fail "number array lost");
  (* print/parse round-trip is the identity on the tree *)
  Alcotest.(check bool) "roundtrip" true (Json.parse_exn (Json.to_string j) = j);
  List.iter
    (fun bad ->
      match Json.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed %S" bad)
    [ "[1,"; "{\"a\":}"; "{} trailing"; "\"unterminated"; "nul"; "[01]" ]

(* --- bench regression policy --------------------------------------------- *)

let test_regress_policy () =
  let recs s = Result.get_ok (Regress.records_of_json (Json.parse_exn s)) in
  let baseline =
    recs
      {|[{"section":"f","series":"DPS","x":"10","throughput_mops":100.0,"p99":5000},
         {"section":"f","series":"DPS","x":"80","throughput_mops":50.0,"p99":9000}]|}
  in
  let v = Regress.compare ~tolerance:0.10 ~baseline ~fresh:baseline in
  Alcotest.(check int) "identical run compares all points" 2 v.Regress.compared;
  Alcotest.(check bool) "identical run passes clean" true
    (v.Regress.failures = [] && v.Regress.warnings = []);
  (* a planted 15% throughput regression hard-fails *)
  let slow =
    recs
      {|[{"section":"f","series":"DPS","x":"10","throughput_mops":85.0,"p99":5000},
         {"section":"f","series":"DPS","x":"80","throughput_mops":50.0,"p99":9000}]|}
  in
  let v = Regress.compare ~tolerance:0.10 ~baseline ~fresh:slow in
  Alcotest.(check int) "regression hard-fails" 1 (List.length v.Regress.failures);
  (* an improvement and non-throughput drift only warn *)
  let better =
    recs
      {|[{"section":"f","series":"DPS","x":"10","throughput_mops":120.0,"p99":4000},
         {"section":"f","series":"DPS","x":"80","throughput_mops":50.0,"p99":9000}]|}
  in
  let v = Regress.compare ~tolerance:0.10 ~baseline ~fresh:better in
  Alcotest.(check bool) "improvement does not fail" true (v.Regress.failures = []);
  Alcotest.(check int) "improvement and drift warn" 2 (List.length v.Regress.warnings);
  (* a vanished or new point is a determinism mismatch: hard failure *)
  let missing = [ List.hd baseline ] in
  let v = Regress.compare ~tolerance:0.10 ~baseline ~fresh:missing in
  Alcotest.(check bool) "missing point fails" true (v.Regress.failures <> []);
  let v = Regress.compare ~tolerance:0.10 ~baseline:missing ~fresh:baseline in
  Alcotest.(check bool) "new point fails" true (v.Regress.failures <> [])

(* --- planted mutation ----------------------------------------------------- *)

let test_failpoint_drop_span_close () =
  cleanup ();
  Obs.start ~tracing:true ~profiling:true ();
  let m = Machine.create Machine.config_default in
  let sched = Sthread.create m in
  Sthread.spawn sched ~hw:0 (fun () ->
      Obs.failpoint_drop_span_close := true;
      Sthread.obs_span "mutated" (fun () -> Dps_sthread.Simops.work 100));
  Sthread.run sched;
  Obs.stop ();
  Alcotest.(check bool) "flag self-cleared" false !Obs.failpoint_drop_span_close;
  (match Obs.validate () with
  | Ok () -> Alcotest.fail "dropped span close not caught"
  | Error _ -> ());
  cleanup ();
  (* same run without the mutation validates *)
  Obs.start ~tracing:true ~profiling:true ();
  let m = Machine.create Machine.config_default in
  let sched = Sthread.create m in
  Sthread.spawn sched ~hw:0 (fun () ->
      Sthread.obs_span "clean" (fun () -> Dps_sthread.Simops.work 100));
  Sthread.run sched;
  Obs.stop ();
  (match Obs.validate () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "clean run invalid: %s" e);
  cleanup ()

let suite =
  [
    ("zero perturbation: off/on bit-identical", `Quick, test_zero_perturbation);
    ("profile cycle attribution", `Quick, test_profile_attribution);
    ("chrome trace well-formed", `Quick, test_trace_wellformed);
    ("trace identical across replayed schedules", `Quick, test_trace_replay_identical);
    ("metrics registry", `Quick, test_registry);
    ("registry label uniqueness", `Quick, test_registry_label_uniqueness);
    ("json codec", `Quick, test_json_codec);
    ("bench regression policy", `Quick, test_regress_policy);
    ("mutation: dropped span close caught", `Quick, test_failpoint_drop_span_close);
  ]

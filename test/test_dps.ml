(* Tests for the DPS runtime: partition mapping, local vs delegated
   execution, peer serving, async mode, range operations, consistency. *)

module Machine = Dps_machine.Machine
module Topology = Dps_machine.Topology
module Sthread = Dps_sthread.Sthread
module Alloc = Dps_sthread.Alloc

(* Per-partition toy structure: a plain counter array plus a record of which
   hardware thread executed each operation. *)
type part_data = {
  node : int;
  cells : int array;
  mutable ops_run : int;
  mutable hw_seen : int list;
}

let mk_sched () = Sthread.create (Machine.create Machine.config_default)

let mk_dps ?(nclients = 20) ?(locality_size = 10) ?ring_slots sched =
  Dps.create sched ~nclients ~locality_size
    ~hash:(fun k -> k)
    ?ring_slots
    ~mk_data:(fun (info : Dps.partition_info) ->
      { node = info.Dps.node; cells = Array.make 64 0; ops_run = 0; hw_seen = [] })
    ()

(* Spawn [nclients] client threads running [body tid]; every client attaches
   first and drains at the end, so delegations always complete. *)
let run_clients sched dps nclients body =
  for c = 0 to nclients - 1 do
    Sthread.spawn sched ~hw:(Dps.client_hw dps c) (fun () ->
        Dps.attach dps ~client:c;
        body c;
        Dps.client_done dps;
        Dps.drain dps)
  done;
  Sthread.run sched

let bump cell (d : part_data) =
  d.cells.(cell) <- d.cells.(cell) + 1;
  d.ops_run <- d.ops_run + 1;
  d.hw_seen <- Sthread.self_hw () :: d.hw_seen;
  d.cells.(cell)

let test_partition_mapping () =
  let sched = mk_sched () in
  let dps = mk_dps sched in
  Alcotest.(check int) "2 partitions for 20 clients" 2 (Dps.npartitions dps);
  Alcotest.(check int) "key 0 -> p0" 0 (Dps.partition_of_key dps 0);
  Alcotest.(check int) "key 1 -> p1" 1 (Dps.partition_of_key dps 1);
  Alcotest.(check int) "key 7 -> p1" 1 (Dps.partition_of_key dps 7);
  (* partitions bound to distinct sockets, matching placement *)
  let d0 = Dps.partition_data dps 0 and d1 = Dps.partition_data dps 1 in
  Alcotest.(check int) "p0 on socket 0" 0 d0.node;
  Alcotest.(check int) "p1 on socket 1" 1 d1.node

let test_local_execution () =
  let sched = mk_sched () in
  let dps = mk_dps sched in
  run_clients sched dps 20 (fun tid ->
      (* client tid's own partition is tid/10; pick a key mapping there *)
      let key = tid / 10 in
      let v = Dps.call dps ~key (bump 3) in
      Alcotest.(check bool) "counter grew" true (v >= 1));
  Alcotest.(check int) "all ops local" 20 (Dps.local_ops dps);
  Alcotest.(check int) "no delegation" 0 (Dps.delegated_ops dps);
  let d0 = Dps.partition_data dps 0 and d1 = Dps.partition_data dps 1 in
  Alcotest.(check int) "p0 ops" 10 d0.ops_run;
  Alcotest.(check int) "p1 ops" 10 d1.ops_run

let test_delegated_execution_runs_remotely () =
  let sched = mk_sched () in
  let dps = mk_dps sched in
  let topo = Topology.default in
  run_clients sched dps 20 (fun tid ->
      (* every client targets the *other* partition *)
      let key = 1 - (tid / 10) in
      ignore (Dps.call dps ~key (bump 1)));
  Alcotest.(check int) "all ops delegated" 20 (Dps.delegated_ops dps);
  let d0 = Dps.partition_data dps 0 and d1 = Dps.partition_data dps 1 in
  Alcotest.(check int) "p0 served 10" 10 d0.ops_run;
  Alcotest.(check int) "p1 served 10" 10 d1.ops_run;
  (* computation moved to the data: ops on partition p ran on p's socket *)
  List.iter
    (fun hw -> Alcotest.(check int) "p0 op on socket 0" 0 (Topology.socket_of_thread topo hw))
    d0.hw_seen;
  List.iter
    (fun hw -> Alcotest.(check int) "p1 op on socket 1" 1 (Topology.socket_of_thread topo hw))
    d1.hw_seen

let test_call_returns_value () =
  let sched = mk_sched () in
  let dps = mk_dps sched in
  let results = Array.make 20 0 in
  run_clients sched dps 20 (fun tid ->
      results.(tid) <- Dps.call dps ~key:1 (fun d -> 1000 + d.node));
  Array.iter (fun v -> Alcotest.(check int) "value from partition 1" 1001 v) results

let test_no_lost_updates_under_delegation () =
  let sched = mk_sched () in
  let dps = mk_dps sched in
  let per = 30 in
  run_clients sched dps 20 (fun _tid ->
      for i = 1 to per do
        ignore (Dps.call dps ~key:(i mod 4) (bump (i mod 4)))
      done);
  let total =
    Array.fold_left ( + ) 0 (Dps.partition_data dps 0).cells
    + Array.fold_left ( + ) 0 (Dps.partition_data dps 1).cells
  in
  Alcotest.(check int) "every op applied exactly once" (20 * per) total

let test_async_applied_after_drain () =
  let sched = mk_sched () in
  let dps = mk_dps ~ring_slots:4 sched in
  let per = 25 in
  run_clients sched dps 20 (fun _tid ->
      (* flood a small ring to exercise the full-ring path *)
      for i = 1 to per do
        Dps.execute_async dps ~key:(i mod 8) (fun d ->
            d.ops_run <- d.ops_run + 1;
            0)
      done);
  let total = (Dps.partition_data dps 0).ops_run + (Dps.partition_data dps 1).ops_run in
  Alcotest.(check int) "every async applied" (20 * per) total

let test_async_then_sync_ordering () =
  (* Read-your-writes through a ring: an async write followed by a sync read
     on the same partition must observe the write (FIFO rings). *)
  let sched = mk_sched () in
  let dps = mk_dps sched in
  let ok = ref true in
  run_clients sched dps 20 (fun tid ->
      let key = 1 - (tid / 10) in
      (* a remote partition *)
      Dps.execute_async dps ~key (fun d ->
          d.cells.(tid) <- tid + 100;
          0);
      let v = Dps.call dps ~key (fun d -> d.cells.(tid)) in
      if v <> tid + 100 then ok := false);
  Alcotest.(check bool) "read your writes" true !ok

let test_execute_local () =
  let sched = mk_sched () in
  let dps = mk_dps sched in
  let topo = Topology.default in
  run_clients sched dps 20 (fun tid ->
      let key = 1 - (tid / 10) in
      let my_hw = Sthread.self_hw () in
      let hw_ran =
        Dps.execute_local dps ~key (fun _ -> Sthread.self_hw ())
      in
      Alcotest.(check int) "ran on caller core" my_hw hw_ran;
      ignore (Topology.socket_of_thread topo my_hw));
  Alcotest.(check int) "no delegations" 0 (Dps.delegated_ops dps)

let test_range_operation () =
  let sched = mk_sched () in
  let dps = mk_dps sched in
  (Dps.partition_data dps 0).cells.(0) <- 7;
  (Dps.partition_data dps 1).cells.(0) <- 3;
  let mins = Array.make 20 max_int in
  run_clients sched dps 20 (fun tid ->
      mins.(tid) <- Dps.range dps (fun d -> d.cells.(0)) ~merge:min);
  Array.iter (fun v -> Alcotest.(check int) "min across partitions" 3 v) mins

let test_try_await_eventually_completes () =
  let sched = mk_sched () in
  let dps = mk_dps sched in
  run_clients sched dps 20 (fun tid ->
      let key = 1 - (tid / 10) in
      let c = Dps.execute dps ~key (fun d -> d.node) in
      let rec spin n =
        match Dps.try_await dps c with
        | Some v -> (n, v)
        | None -> spin (n + 1)
      in
      let _, v = spin 0 in
      Alcotest.(check int) "right partition answered" (1 - (tid / 10)) v)

let test_serve_counts () =
  let sched = mk_sched () in
  let dps = mk_dps sched in
  run_clients sched dps 20 (fun tid ->
      if tid < 10 then ignore (Dps.call dps ~key:1 (bump 0))
      else begin
        Sthread.work 5_000;
        (* explicitly serve whatever remains pending for my partition *)
        ignore (Dps.serve dps ~max:100)
      end);
  Alcotest.(check int) "10 delegations" 10 (Dps.delegated_ops dps);
  Alcotest.(check int) "all executed" 10 (Dps.partition_data dps 1).ops_run

let test_unattached_rejected () =
  let sched = mk_sched () in
  let dps = mk_dps sched in
  Sthread.spawn sched ~hw:0 (fun () -> ignore (Dps.call dps ~key:0 (fun _ -> 0)));
  Alcotest.check_raises "unattached" (Failure "Dps: thread not attached") (fun () ->
      Sthread.run sched)

let test_deterministic () =
  let run_once () =
    let sched = mk_sched () in
    let dps = mk_dps sched in
    run_clients sched dps 20 (fun tid ->
        for i = 1 to 10 do
          ignore (Dps.call dps ~key:((tid + i) mod 8) (bump ((tid + i) mod 16)))
        done);
    Sthread.now sched
  in
  Alcotest.(check int) "same end time" (run_once ()) (run_once ())

let test_four_partitions () =
  let sched = mk_sched () in
  let dps = mk_dps ~nclients:40 sched in
  Alcotest.(check int) "4 partitions" 4 (Dps.npartitions dps);
  run_clients sched dps 40 (fun tid ->
      for i = 0 to 7 do
        ignore (Dps.call dps ~key:i (bump (tid mod 64)))
      done);
  let total = ref 0 in
  for p = 0 to 3 do
    total := !total + (Dps.partition_data dps p).ops_run
  done;
  Alcotest.(check int) "all ops applied" (40 * 8) !total

let test_rebalance_moves_bucket () =
  let module H = Dps_ds.Hashtable in
  let sched = mk_sched () in
  let dps =
    Dps.create sched ~nclients:20 ~locality_size:10 ~hash:Fun.id ~ns_sz:32
      ~mk_data:(fun (info : Dps.partition_info) -> H.create info.Dps.alloc)
      ()
  in
  let keys = [ 3; 35; 67; 99 ] in
  (* all in bucket 3 (key mod 32) *)
  let bucket = 3 in
  let moved_ok = ref false in
  for c = 0 to 19 do
    Sthread.spawn sched ~hw:(Dps.client_hw dps c) (fun () ->
        Dps.attach dps ~client:c;
        if c = 0 then begin
          let from = Dps.bucket_owner dps ~bucket in
          let to_ = 1 - from in
          List.iter
            (fun key ->
              ignore
                (Dps.call dps ~key (fun h -> if H.insert h ~key ~value:(key * 3) then 1 else 0)))
            keys;
          Dps.rebalance dps ~bucket ~to_
            ~extract:(fun h b ->
              List.filter_map
                (fun key ->
                  if Dps.bucket_of_key dps key = b then
                    match H.lookup h key with
                    | Some v ->
                        ignore (H.remove h key);
                        Some (key, v)
                    | None -> None
                  else None)
                keys)
            ~insert:(fun h ~key ~value -> ignore (H.insert h ~key ~value));
          (* the bucket's keys survive the move and route to the new owner *)
          let all_found =
            List.for_all
              (fun key ->
                Dps.call dps ~key (fun h ->
                    match H.lookup h key with Some v -> v | None -> -1)
                = key * 3)
              keys
          in
          moved_ok := all_found && Dps.bucket_owner dps ~bucket = to_
        end;
        Dps.client_done dps;
        Dps.drain dps)
  done;
  Sthread.run sched;
  Alcotest.(check bool) "bucket moved with its keys" true !moved_ok

(* §3.3: "a thread that writes two values will see (read) those writes in
   order" — monotonic writes through one FIFO ring. *)
let test_monotonic_writes () =
  let sched = mk_sched () in
  let dps = mk_dps sched in
  let violations = ref 0 in
  run_clients sched dps 20 (fun tid ->
      let key = 1 - (tid / 10) in
      (* remote partition *)
      for v = 1 to 10 do
        Dps.execute_async dps ~key (fun d ->
            d.cells.(tid) <- (tid * 1000) + v;
            0)
      done;
      (* a synchronous read behind the ten async writes must see the last *)
      let got = Dps.call dps ~key (fun d -> d.cells.(tid)) in
      if got <> (tid * 1000) + 10 then incr violations);
  Alcotest.(check int) "writes observed in order" 0 !violations

let suite =
  [
    ("partition mapping", `Quick, test_partition_mapping);
    ("monotonic writes", `Quick, test_monotonic_writes);
    ("rebalance moves bucket", `Quick, test_rebalance_moves_bucket);
    ("local execution", `Quick, test_local_execution);
    ("delegation runs remotely", `Quick, test_delegated_execution_runs_remotely);
    ("call returns value", `Quick, test_call_returns_value);
    ("no lost updates", `Quick, test_no_lost_updates_under_delegation);
    ("async applied after drain", `Quick, test_async_applied_after_drain);
    ("async then sync ordering", `Quick, test_async_then_sync_ordering);
    ("execute_local", `Quick, test_execute_local);
    ("range operation", `Quick, test_range_operation);
    ("try_await completes", `Quick, test_try_await_eventually_completes);
    ("serve counts", `Quick, test_serve_counts);
    ("unattached rejected", `Quick, test_unattached_rejected);
    ("deterministic", `Quick, test_deterministic);
    ("four partitions", `Quick, test_four_partitions);
  ]

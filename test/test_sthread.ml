(* Tests for the discrete-event simulated-thread scheduler. *)

module Machine = Dps_machine.Machine
module Topology = Dps_machine.Topology
module Sthread = Dps_sthread.Sthread

let mk () = Sthread.create (Machine.create Machine.config_default)

let test_single_thread_runs () =
  let s = mk () in
  let ran = ref false in
  Sthread.spawn s ~hw:0 (fun () ->
      Sthread.work 100;
      ran := true);
  Sthread.run s;
  Alcotest.(check bool) "ran" true !ran;
  Alcotest.(check int) "time advanced by work" 100 (Sthread.now s)

let test_threads_interleave () =
  let s = mk () in
  let log = ref [] in
  let worker name =
    Sthread.spawn s ~hw:(if name = "a" then 0 else 2) (fun () ->
        for i = 1 to 3 do
          Sthread.work 10;
          log := (name, i) :: !log
        done)
  in
  worker "a";
  worker "b";
  Sthread.run s;
  let log = List.rev !log in
  (* Equal costs: steps alternate deterministically. *)
  Alcotest.(check int) "6 steps" 6 (List.length log);
  let a_steps = List.filteri (fun i _ -> i mod 2 = 0) log in
  Alcotest.(check bool) "interleaved" true
    (List.for_all (fun (n, _) -> n = "a") a_steps
    || List.for_all (fun (n, _) -> n = "b") a_steps)

let test_memory_access_charges_time () =
  let s = mk () in
  let m = Sthread.machine s in
  let a = Machine.alloc m (Machine.On_node 0) ~lines:1 in
  Sthread.spawn s ~hw:0 (fun () ->
      Sthread.read a;
      Sthread.read a);
  Sthread.run s;
  let costs = (Machine.config m).Machine.costs in
  Alcotest.(check int) "walk + dram, then hit"
    (costs.Dps_machine.Costs.walk_local + costs.Dps_machine.Costs.dram_local
   + costs.Dps_machine.Costs.priv_hit)
    (Sthread.now s)

let test_deterministic_schedule () =
  let run_once () =
    let s = mk () in
    let m = Sthread.machine s in
    let a = Machine.alloc m Machine.Interleave ~lines:64 in
    let trace = Buffer.create 256 in
    for t = 0 to 7 do
      Sthread.spawn s ~hw:(t * 2) (fun () ->
          let p = Sthread.self_prng () in
          for _ = 1 to 20 do
            let addr = a + Dps_simcore.Prng.int p 64 in
            if Dps_simcore.Prng.bool p then Sthread.write addr else Sthread.read addr;
            Buffer.add_string trace (Printf.sprintf "%d@%d;" (Sthread.self_id ()) (Sthread.time ()))
          done)
    done;
    Sthread.run s;
    (Buffer.contents trace, Sthread.now s)
  in
  let t1, n1 = run_once () and t2, n2 = run_once () in
  Alcotest.(check string) "identical traces" t1 t2;
  Alcotest.(check int) "identical end time" n1 n2

let test_run_until () =
  let s = mk () in
  let steps = ref 0 in
  Sthread.spawn s ~hw:0 (fun () ->
      while Sthread.time () < 10_000 do
        Sthread.work 100;
        incr steps
      done);
  Sthread.run ~until:500 s;
  let at_500 = !steps in
  Alcotest.(check bool) "paused early" true (at_500 <= 6);
  Sthread.run s;
  Alcotest.(check int) "completed" 100 !steps

let test_self_identifiers () =
  let s = mk () in
  let seen = ref [] in
  Sthread.spawn s ~hw:6 (fun () -> seen := (Sthread.self_id (), Sthread.self_hw ()) :: !seen);
  Sthread.spawn s ~hw:8 (fun () -> seen := (Sthread.self_id (), Sthread.self_hw ()) :: !seen);
  Sthread.run s;
  Alcotest.(check (list (pair int int))) "ids and pins" [ (1, 8); (0, 6) ] !seen

let test_live_threads () =
  let s = mk () in
  Sthread.spawn s ~hw:0 (fun () -> Sthread.work 10);
  Sthread.spawn s ~hw:2 (fun () -> Sthread.work 20);
  Alcotest.(check int) "two live" 2 (Sthread.live_threads s);
  Sthread.run s;
  Alcotest.(check int) "none live" 0 (Sthread.live_threads s)

let test_charge_and_flush () =
  let s = mk () in
  let m = Sthread.machine s in
  let a = Machine.alloc m (Machine.On_node 0) ~lines:8 in
  let t_after_charges = ref (-1) in
  Sthread.spawn s ~hw:0 (fun () ->
      for i = 0 to 7 do
        Sthread.charge_read (a + i)
      done;
      t_after_charges := Sthread.time ();
      Sthread.flush ());
  Sthread.run s;
  Alcotest.(check int) "charges do not advance time" 0 !t_after_charges;
  let costs = (Machine.config m).Machine.costs in
  let pages = List.sort_uniq compare (List.init 8 (fun i -> (a + i) lsr 6)) in
  (* eight cold DRAM fetches, one page walk per page, plus the memory
     controller's per-line service (6 cycles) queueing the burst *)
  let dram_queue = 6 * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7) in
  Alcotest.(check int) "flush advances by total"
    ((8 * costs.Dps_machine.Costs.dram_local)
    + (List.length pages * costs.Dps_machine.Costs.walk_local)
    + dram_queue)
    (Sthread.now s)

let test_spawn_from_inside () =
  let s = mk () in
  let child_ran = ref false in
  Sthread.spawn s ~hw:0 (fun () ->
      Sthread.work 50;
      Sthread.spawn s ~hw:2 (fun () -> child_ran := true));
  Sthread.run s;
  Alcotest.(check bool) "child ran" true !child_ran

let test_exception_propagates () =
  let s = mk () in
  Sthread.spawn s ~hw:0 (fun () -> failwith "boom");
  Alcotest.check_raises "propagates" (Failure "boom") (fun () -> Sthread.run s)

let test_outside_context_rejected () =
  Alcotest.check_raises "no context" (Failure "Sthread: called from outside a simulated thread")
    (fun () -> ignore (Sthread.self_hw ()))

let test_access_pipelined () =
  (* pipelined accesses charge a fraction of the latency but keep the full
     coherence transition *)
  let serial =
    let s = mk () in
    let m = Sthread.machine s in
    let a = Machine.alloc m (Machine.On_node 0) ~lines:64 in
    Sthread.spawn s ~hw:0 (fun () ->
        for i = 0 to 63 do
          Sthread.read (a + i)
        done);
    Sthread.run s;
    Sthread.now s
  in
  let pipelined =
    let s = mk () in
    let m = Sthread.machine s in
    let a = Machine.alloc m (Machine.On_node 0) ~lines:64 in
    Sthread.spawn s ~hw:0 (fun () ->
        for i = 0 to 63 do
          Sthread.access_pipelined ~factor:8 ~kind:Machine.Read (a + i)
        done);
    Sthread.run s;
    Sthread.now s
  in
  Alcotest.(check bool)
    (Printf.sprintf "pipelined faster (%d vs %d)" pipelined serial)
    true
    (pipelined * 4 < serial)

let test_hyperthread_dilation_in_sim () =
  (* A thread running with its sibling active takes longer per work unit. *)
  let solo =
    let s = mk () in
    Sthread.spawn s ~hw:0 (fun () -> Sthread.work 1000);
    Sthread.run s;
    Sthread.now s
  in
  let shared =
    let s = mk () in
    Sthread.spawn s ~hw:0 (fun () -> Sthread.work 1000);
    Sthread.spawn s ~hw:1 (fun () -> Sthread.work 1000);
    Sthread.run s;
    Sthread.now s
  in
  Alcotest.(check int) "solo time" 1000 solo;
  Alcotest.(check bool) "sibling dilates" true (shared > 1000)

let test_alloc_policies () =
  let s = mk () in
  let m = Sthread.machine s in
  (* cold Spread: round-robin over sockets *)
  let spread = Dps_sthread.Alloc.create m ~cold:Dps_sthread.Alloc.Spread in
  let homes = List.init 8 (fun _ -> Machine.home_of m (Dps_sthread.Alloc.line spread)) in
  Alcotest.(check (list int)) "spread round-robin" [ 0; 1; 2; 3; 0; 1; 2; 3 ] homes;
  (* cold Node n: pinned *)
  let pinned = Dps_sthread.Alloc.create m ~cold:(Dps_sthread.Alloc.Node 2) in
  Alcotest.(check int) "pinned" 2 (Machine.home_of m (Dps_sthread.Alloc.line pinned));
  (* in simulation: homed on the allocating thread's socket *)
  let seen = ref (-1) in
  Sthread.spawn s ~hw:60 (fun () -> seen := Machine.home_of m (Dps_sthread.Alloc.line spread));
  Sthread.run s;
  Alcotest.(check int) "sim alloc node-local" 3 !seen

let test_kill_drops_thread () =
  let s = mk () in
  let m = Sthread.machine s in
  let steps = ref 0 in
  let exited = ref [] in
  Sthread.on_exit s (fun tid -> exited := tid :: !exited);
  Sthread.spawn s ~hw:0 (fun () ->
      for _ = 1 to 100 do
        Sthread.work 100;
        incr steps
      done);
  Sthread.run ~until:2_000 s;
  Alcotest.(check bool) "killed while live" true (Sthread.kill s ~tid:0);
  Sthread.run s;
  Alcotest.(check bool) "stopped early" true (!steps < 100);
  Alcotest.(check int) "none live" 0 (Sthread.live_threads s);
  Alcotest.(check (list int)) "exit hook fired" [ 0 ] !exited;
  Alcotest.(check bool) "kill dead thread" false (Sthread.kill s ~tid:0);
  (* hardware thread released: solo work is undilated again *)
  Alcotest.(check int) "hw released" 100 (Machine.work_cost m ~thread:1 100)

let test_exit_terminates () =
  let s = mk () in
  let after = ref false in
  let exited = ref [] in
  Sthread.on_exit s (fun tid -> exited := tid :: !exited);
  Sthread.spawn s ~hw:0 (fun () ->
      Sthread.work 10;
      if not !after then Sthread.exit ();
      after := true);
  Sthread.spawn s ~hw:2 (fun () -> Sthread.work 50);
  Sthread.run s;
  Alcotest.(check bool) "code after exit skipped" false !after;
  Alcotest.(check int) "none live" 0 (Sthread.live_threads s);
  Alcotest.(check (list int)) "both exits hooked" [ 1; 0 ] !exited

let test_kill_runs_protect_finalizers () =
  let s = mk () in
  let finalized = ref false in
  Sthread.spawn s ~hw:0 (fun () ->
      Fun.protect
        ~finally:(fun () -> finalized := true)
        (fun () ->
          while true do
            Sthread.work 100
          done));
  Sthread.run ~until:1_000 s;
  ignore (Sthread.kill s ~tid:0);
  Sthread.run s;
  Alcotest.(check bool) "finalizer ran" true !finalized

let test_fault_hook_stall_and_crash () =
  let s = mk () in
  (* stall thread 0's first suspension by 5000 cycles; crash thread 1 at
     its first memory access *)
  Sthread.set_fault_hook s
    (Some
       (fun ~tid ~now:_ ~tag ~cycles:_ ->
         match (tid, tag) with
         | 0, _ -> Some (Sthread.Stall 5_000)
         | 1, Sthread.Access_op (_, _) -> Some Sthread.Crash
         | _ -> None));
  let t0_done = ref (-1) in
  let t1_accesses = ref 0 in
  Sthread.spawn s ~hw:0 (fun () ->
      Sthread.work 100;
      t0_done := Sthread.time ());
  let m = Sthread.machine s in
  let a = Machine.alloc m (Machine.On_node 0) ~lines:4 in
  Sthread.spawn s ~hw:2 (fun () ->
      Sthread.read a;
      incr t1_accesses;
      Sthread.read (a + 1);
      incr t1_accesses);
  Sthread.run s;
  Alcotest.(check int) "stall added to cost" 5_100 !t0_done;
  Alcotest.(check int) "crashed at first access" 0 !t1_accesses;
  Alcotest.(check int) "none live" 0 (Sthread.live_threads s)

(* --- blocking, wakeups, timers ----------------------------------------- *)

let test_park_unpark () =
  let s = mk () in
  let resumed_at = ref (-1) in
  Sthread.spawn s ~hw:0 (fun () ->
      Sthread.park ();
      resumed_at := Sthread.time ());
  Sthread.at s ~time:500 (fun () -> ignore (Sthread.unpark s ~tid:0));
  Sthread.run s;
  Alcotest.(check int) "resumed at the unpark" 500 !resumed_at;
  Alcotest.(check bool) "unpark of dead thread" false (Sthread.unpark s ~tid:0)

let test_no_lost_wakeup () =
  (* the unpark lands while the target is still running: the permit is
     remembered and the next park returns without blocking *)
  let s = mk () in
  let resumed_at = ref (-1) in
  Sthread.spawn s ~hw:0 (fun () ->
      Sthread.work 100;
      Sthread.park ();
      resumed_at := Sthread.time ());
  Sthread.at s ~time:10 (fun () -> ignore (Sthread.unpark s ~tid:0));
  Sthread.run s;
  Alcotest.(check int) "permit consumed, no block" 100 !resumed_at

let test_waitq_fifo () =
  let s = mk () in
  let q = Sthread.Waitq.create () in
  let order = ref [] in
  for i = 0 to 2 do
    Sthread.spawn s ~hw:(i * 2) (fun () ->
        (* distinct arrival times force the queue order 0, 1, 2 *)
        Sthread.work (10 * (i + 1));
        Sthread.Waitq.wait q;
        order := i :: !order)
  done;
  List.iter
    (fun tm -> Sthread.at s ~time:tm (fun () -> ignore (Sthread.Waitq.signal s q)))
    [ 1_000; 2_000; 3_000 ];
  Sthread.run s;
  Alcotest.(check (list int)) "FIFO wakeup order" [ 0; 1; 2 ] (List.rev !order)

let test_waitq_broadcast_and_dead_waiters () =
  let s = mk () in
  let q = Sthread.Waitq.create () in
  let woken = ref [] in
  for i = 0 to 2 do
    Sthread.spawn s ~hw:(i * 2) (fun () ->
        Sthread.work (10 * (i + 1));
        Sthread.Waitq.wait q;
        woken := i :: !woken)
  done;
  Sthread.run s;
  Alcotest.(check int) "three queued" 3 (Sthread.Waitq.waiters q);
  (* kill the oldest waiter: a signal must skip it and wake the next *)
  ignore (Sthread.kill s ~tid:0);
  Sthread.run s;
  Alcotest.(check bool) "signal skips the dead waiter" true (Sthread.Waitq.signal s q);
  Sthread.run s;
  Alcotest.(check (list int)) "thread 1 woken" [ 1 ] !woken;
  Alcotest.(check int) "broadcast wakes the rest" 1 (Sthread.Waitq.broadcast s q);
  Sthread.run s;
  Alcotest.(check (list int)) "all live waiters woken" [ 2; 1 ] !woken

let test_kill_parked_runs_finalizers () =
  let s = mk () in
  let finalized = ref false in
  Sthread.spawn s ~hw:0 (fun () ->
      Fun.protect ~finally:(fun () -> finalized := true) (fun () -> Sthread.park ()));
  Sthread.run s;
  ignore (Sthread.kill s ~tid:0);
  Sthread.run s;
  Alcotest.(check bool) "finalizer ran" true !finalized;
  Alcotest.(check int) "none live" 0 (Sthread.live_threads s)

let test_park_releases_hardware_thread () =
  (* a parked thread's hyperthread sibling runs undilated *)
  let s = mk () in
  let sibling_done = ref (-1) in
  Sthread.spawn s ~hw:0 (fun () -> Sthread.park ());
  Sthread.spawn s ~hw:1 (fun () ->
      Sthread.work 1000;
      sibling_done := Sthread.time ());
  Sthread.run s;
  Alcotest.(check int) "sibling undilated" 1000 !sibling_done;
  ignore (Sthread.unpark s ~tid:0);
  Sthread.run s;
  Alcotest.(check int) "parked thread drains" 0 (Sthread.live_threads s)

let test_park_for () =
  let s = mk () in
  let first = ref (false, -1) in
  Sthread.spawn s ~hw:0 (fun () ->
      (* no unpark in sight: the timeout fires *)
      let timed = Sthread.park_for 300 in
      first := (timed, Sthread.time ());
      (* an unpark beats the next timeout; the stale timeout of the first
         park must not wake this one early *)
      let timed2 = Sthread.park_for 10_000 in
      Alcotest.(check bool) "woken by unpark" false timed2;
      Alcotest.(check int) "at the unpark's time" 400 (Sthread.time ());
      (* and a third sleep times out again, undisturbed by leftovers *)
      let timed3 = Sthread.park_for 100 in
      Alcotest.(check bool) "timeout again" true timed3);
  Sthread.at s ~time:400 (fun () -> ignore (Sthread.unpark s ~tid:0));
  Sthread.run s;
  Alcotest.(check (pair bool int)) "first sleep timed out at 300" (true, 300) !first

let test_at_events () =
  let s = mk () in
  let log = ref [] in
  Sthread.at s ~time:200 (fun () -> log := 2 :: !log);
  Sthread.at s ~time:100 (fun () ->
      log := 1 :: !log;
      (* events may schedule further events *)
      Sthread.at s ~time:150 (fun () -> log := 3 :: !log));
  Sthread.run s;
  Alcotest.(check (list int)) "time order" [ 1; 3; 2 ] (List.rev !log);
  Alcotest.check_raises "past time rejected" (Invalid_argument "Sthread.at: time in the past")
    (fun () -> Sthread.at s ~time:(Sthread.now s - 1) (fun () -> ()))

let suite =
  [
    ("park and unpark", `Quick, test_park_unpark);
    ("no lost wakeup", `Quick, test_no_lost_wakeup);
    ("waitq FIFO order", `Quick, test_waitq_fifo);
    ("waitq broadcast and dead waiters", `Quick, test_waitq_broadcast_and_dead_waiters);
    ("kill parked thread", `Quick, test_kill_parked_runs_finalizers);
    ("park releases hardware thread", `Quick, test_park_releases_hardware_thread);
    ("park_for timeout", `Quick, test_park_for);
    ("at events", `Quick, test_at_events);
    ("single thread runs", `Quick, test_single_thread_runs);
    ("kill drops thread", `Quick, test_kill_drops_thread);
    ("exit terminates", `Quick, test_exit_terminates);
    ("kill runs finalizers", `Quick, test_kill_runs_protect_finalizers);
    ("fault hook stall and crash", `Quick, test_fault_hook_stall_and_crash);
    ("alloc policies", `Quick, test_alloc_policies);
    ("threads interleave", `Quick, test_threads_interleave);
    ("memory access charges time", `Quick, test_memory_access_charges_time);
    ("deterministic schedule", `Quick, test_deterministic_schedule);
    ("run until", `Quick, test_run_until);
    ("self identifiers", `Quick, test_self_identifiers);
    ("live threads", `Quick, test_live_threads);
    ("charge and flush", `Quick, test_charge_and_flush);
    ("spawn from inside", `Quick, test_spawn_from_inside);
    ("exception propagates", `Quick, test_exception_propagates);
    ("outside context rejected", `Quick, test_outside_context_rejected);
    ("access pipelined", `Quick, test_access_pipelined);
    ("hyperthread dilation", `Quick, test_hyperthread_dilation_in_sim);
  ]

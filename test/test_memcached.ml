(* Tests for the memcached substrate (slab, LRU, hash, core) and the five
   paper variants. *)

module Machine = Dps_machine.Machine
module Sthread = Dps_sthread.Sthread
module Alloc = Dps_sthread.Alloc
module Prng = Dps_simcore.Prng
module Slab = Dps_memcached.Slab
module Lru = Dps_memcached.Lru
module Item = Dps_memcached.Item
module Mc_hash = Dps_memcached.Mc_hash
module Mc_core = Dps_memcached.Mc_core
module Variants = Dps_memcached.Variants

let fresh () =
  let m = Machine.create Machine.config_default in
  (Sthread.create m, Alloc.create m ~cold:Alloc.Spread)

let test_slab_reuse () =
  let _, alloc = fresh () in
  let s = Slab.create alloc in
  let a = Slab.allocate s ~lines:3 in
  Slab.free s ~base:a ~lines:3;
  Alcotest.(check int) "one free chunk" 1 (Slab.free_chunks s);
  let b = Slab.allocate s ~lines:3 in
  Alcotest.(check int) "chunk reused" a b;
  Alcotest.(check int) "free list drained" 0 (Slab.free_chunks s)

let test_slab_size_classes () =
  let _, alloc = fresh () in
  let s = Slab.create alloc in
  let a = Slab.allocate s ~lines:3 in
  Slab.free s ~base:a ~lines:3;
  (* a request of 5 lines is a different class; must not reuse the chunk *)
  let b = Slab.allocate s ~lines:5 in
  Alcotest.(check bool) "different class" true (a <> b);
  Alcotest.(check int) "class-3 chunk still free" 1 (Slab.free_chunks s)

let mk_item alloc key =
  Item.make ~key ~haddr:(Alloc.line alloc) ~val_base:(Alloc.lines alloc 2) ~val_lines:2

let test_lru_order () =
  let _, alloc = fresh () in
  let l = Lru.create alloc in
  let items = Array.init 4 (fun i -> mk_item alloc i) in
  Array.iter (Lru.insert l) items;
  Alcotest.(check int) "count" 4 (Lru.count l);
  (* 0 is oldest *)
  (match Lru.pop_tail l with
  | Some it -> Alcotest.(check int) "tail is first inserted" 0 it.Item.key
  | None -> Alcotest.fail "empty");
  (* touch 1 so 2 becomes the victim *)
  Lru.touch l items.(1);
  (match Lru.pop_tail l with
  | Some it -> Alcotest.(check int) "tail after touch" 2 it.Item.key
  | None -> Alcotest.fail "empty");
  Lru.remove l items.(3);
  Alcotest.(check int) "count after remove" 1 (Lru.count l)

let test_mc_hash () =
  let _, alloc = fresh () in
  let h = Mc_hash.create alloc ~buckets:64 in
  let items = List.init 200 (fun i -> mk_item alloc i) in
  List.iter (Mc_hash.insert h) items;
  for i = 0 to 199 do
    match Mc_hash.find h i with
    | Some it -> Alcotest.(check int) "found" i it.Item.key
    | None -> Alcotest.failf "missing key %d" i
  done;
  Alcotest.(check bool) "absent key" true (Mc_hash.find h 999 = None);
  (match Mc_hash.remove h 77 with
  | Some it -> Alcotest.(check int) "removed key" 77 it.Item.key
  | None -> Alcotest.fail "remove failed");
  Alcotest.(check bool) "gone" true (Mc_hash.find h 77 = None);
  Alcotest.(check bool) "nolock find" true (Mc_hash.find_nolock h 42 <> None)

let test_core_get_set () =
  let _, alloc = fresh () in
  let c = Mc_core.create alloc ~buckets:64 ~capacity:100 ~recency:Mc_core.Lru_list in
  Alcotest.(check bool) "miss" false (Mc_core.get c 1);
  Mc_core.set c ~key:1 ~val_lines:2;
  Alcotest.(check bool) "hit" true (Mc_core.get c 1);
  Alcotest.(check int) "size" 1 (Mc_core.size c);
  Mc_core.set c ~key:1 ~val_lines:2;
  Alcotest.(check int) "update keeps size" 1 (Mc_core.size c);
  Alcotest.(check bool) "delete" true (Mc_core.delete c 1);
  Alcotest.(check bool) "after delete" false (Mc_core.get c 1);
  Alcotest.(check bool) "double delete" false (Mc_core.delete c 1)

let test_core_eviction_lru () =
  let _, alloc = fresh () in
  let c = Mc_core.create alloc ~buckets:64 ~capacity:10 ~recency:Mc_core.Lru_list in
  for k = 1 to 15 do
    Mc_core.set c ~key:k ~val_lines:2
  done;
  Alcotest.(check int) "bounded" 10 (Mc_core.size c);
  Alcotest.(check int) "evictions counted" 5 (Mc_core.evictions c);
  (* oldest keys evicted *)
  Alcotest.(check bool) "key 1 gone" false (Mc_core.get c 1);
  Alcotest.(check bool) "key 15 present" true (Mc_core.get c 15)

let test_core_eviction_clock () =
  let _, alloc = fresh () in
  let c = Mc_core.create alloc ~buckets:64 ~capacity:10 ~recency:Mc_core.Clock in
  for k = 1 to 25 do
    Mc_core.set c ~key:k ~val_lines:2
  done;
  Alcotest.(check int) "bounded" 10 (Mc_core.size c);
  Alcotest.(check bool) "recent key present" true (Mc_core.get c 25)

let test_core_hit_rate () =
  let _, alloc = fresh () in
  let c = Mc_core.create alloc ~buckets:64 ~capacity:100 ~recency:Mc_core.Clock in
  Mc_core.set c ~key:5 ~val_lines:1;
  ignore (Mc_core.get c 5);
  ignore (Mc_core.get c 6);
  Alcotest.(check (float 0.001)) "hit rate" 0.5 (Mc_core.hit_rate c)

(* Each variant must behave like a cache: populated keys hit, sets visible
   after a barrier, concurrent clients don't corrupt it. *)
let exercise_variant name mk =
  let m = Machine.create Machine.config_default in
  let sched = Sthread.create m in
  let nclients = 20 in
  let v : Variants.t = mk sched nclients in
  Alcotest.(check string) "variant name" name v.Variants.name;
  let keys = Array.init 200 (fun i -> i) in
  v.Variants.populate ~keys ~val_lines:2;
  let hits = ref 0 and total = ref 0 in
  for c = 0 to nclients - 1 do
    Sthread.spawn sched ~hw:(v.Variants.client_hw c) (fun () ->
        v.Variants.attach c;
        let p = Sthread.self_prng () in
        for _ = 1 to 25 do
          let key = Prng.int p 200 in
          if Prng.below p 0.2 then v.Variants.set ~key ~val_lines:2
          else begin
            incr total;
            if v.Variants.get key then incr hits
          end
        done;
        v.Variants.finish ())
  done;
  Sthread.run sched;
  (* all 200 keys stay resident (capacity 1000): everything hits *)
  Alcotest.(check int) (name ^ " all gets hit") !total !hits

let variant_case name mk = (name ^ " variant", `Quick, fun () -> exercise_variant name mk)

(* Partitioned eviction: a DPS cache at tiny capacity must evict per
   partition, keep its size bounded, and still answer hot gets. *)
let test_dps_eviction () =
  let m = Machine.create Machine.config_default in
  let sched = Sthread.create m in
  let nclients = 20 in
  let capacity = 64 in
  let v = Variants.dps_mc sched ~nclients ~locality_size:10 ~buckets:64 ~capacity () in
  v.Variants.populate ~keys:(Array.init 256 Fun.id) ~val_lines:1;
  let hits = ref 0 and gets = ref 0 in
  for c = 0 to nclients - 1 do
    Sthread.spawn sched ~hw:(v.Variants.client_hw c) (fun () ->
        v.Variants.attach c;
        let p = Prng.create (Int64.of_int (100 + c)) in
        for _ = 1 to 30 do
          let key = Prng.int p 512 in
          if Prng.below p 0.5 then v.Variants.set ~key ~val_lines:1
          else begin
            incr gets;
            if v.Variants.get key then incr hits
          end
        done;
        v.Variants.finish ())
  done;
  Sthread.run sched;
  Alcotest.(check bool) "some hits" true (!hits > 0);
  Alcotest.(check bool) "some misses (evictions happened)" true (!hits < !gets)

let suite =
  [
    ("slab reuse", `Quick, test_slab_reuse);
    ("slab size classes", `Quick, test_slab_size_classes);
    ("lru order", `Quick, test_lru_order);
    ("mc hash", `Quick, test_mc_hash);
    ("core get/set", `Quick, test_core_get_set);
    ("core eviction lru", `Quick, test_core_eviction_lru);
    ("core eviction clock", `Quick, test_core_eviction_clock);
    ("core hit rate", `Quick, test_core_hit_rate);
    ("dps eviction bounded", `Quick, test_dps_eviction);
    variant_case "stock" (fun sched n ->
        Variants.stock sched ~nclients:n ~buckets:256 ~capacity:1000);
    variant_case "parsec" (fun sched n ->
        Variants.parsec sched ~nclients:n ~buckets:256 ~capacity:1000);
    variant_case "ffwd" (fun sched n ->
        Variants.ffwd_mc sched ~nclients:n ~buckets:256 ~capacity:1000);
    variant_case "dps" (fun sched n ->
        Variants.dps_mc sched ~nclients:n ~locality_size:10 ~buckets:256 ~capacity:1000 ());
    variant_case "dps-parsec" (fun sched n ->
        Variants.dps_parsec sched ~nclients:n ~locality_size:10 ~buckets:256 ~capacity:1000 ());
  ]

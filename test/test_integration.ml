(* Integration tests: full stacks, as the benchmarks use them — a concurrent
   set partitioned behind DPS, and sharded behind ffwd — checked with the
   same per-key accounting as the plain structures. *)

module Machine = Dps_machine.Machine
module Sthread = Dps_sthread.Sthread
module Prng = Dps_simcore.Prng
module Ffwd = Dps_ffwd.Ffwd

module type SET = Dps_ds.Set_intf.SET

let dps_structures : (module SET) list =
  [
    (module Dps_ds.Ll_lazy);
    (module Dps_ds.Bst_tk);
    (module Dps_ds.Sl_fraser);
    (module Dps_ds.Hashtable);
  ]

let dps_set_conflict (module S : SET) () =
  let m = Machine.create Machine.config_default in
  let sched = Sthread.create m in
  let nclients = 20 in
  let dps =
    Dps.create sched ~nclients ~locality_size:10 ~hash:Fun.id
      ~mk_data:(fun (info : Dps.partition_info) -> S.create info.Dps.alloc)
      ()
  in
  let key_range = 32 in
  let ins = Array.make (key_range + 1) 0 and rem = Array.make (key_range + 1) 0 in
  for c = 0 to nclients - 1 do
    Sthread.spawn sched ~hw:(Dps.client_hw dps c) (fun () ->
        Dps.attach dps ~client:c;
        let p = Sthread.self_prng () in
        for _ = 1 to 40 do
          let key = 1 + Prng.int p key_range in
          if Prng.bool p then begin
            if Dps.call dps ~key (fun s -> if S.insert s ~key ~value:key then 1 else 0) = 1 then
              ins.(key) <- ins.(key) + 1
          end
          else if Dps.call dps ~key (fun s -> if S.remove s key then 1 else 0) = 1 then
            rem.(key) <- rem.(key) + 1
        done;
        Dps.client_done dps;
        Dps.drain dps)
  done;
  Sthread.run sched;
  (* merge partitions and check per-key balance *)
  let contents = ref [] in
  for pid = 0 to Dps.npartitions dps - 1 do
    let part = Dps.partition_data dps pid in
    S.check_invariants part;
    contents := S.to_list part @ !contents
  done;
  for key = 1 to key_range do
    let present = List.mem_assoc key !contents in
    let balance = ins.(key) - rem.(key) in
    if balance < 0 || balance > 1 then
      Alcotest.failf "%s/dps: key %d balance %d" S.name key balance;
    if (balance = 1) <> present then
      Alcotest.failf "%s/dps: key %d balance %d but present=%b" S.name key balance present
  done;
  (* partitioning respected: key k only ever in partition k mod n *)
  for pid = 0 to Dps.npartitions dps - 1 do
    List.iter
      (fun (k, _) ->
        if Dps.partition_of_key dps k <> pid then
          Alcotest.failf "%s/dps: key %d leaked into partition %d" S.name k pid)
      (S.to_list (Dps.partition_data dps pid))
  done

let ffwd_set_conflict () =
  let module S = Dps_ds.Ll_lazy in
  let m = Machine.create Machine.config_default in
  let sched = Sthread.create m in
  let nclients = 12 and servers = 4 in
  let topo = Machine.topology m in
  let server_hw = Array.init servers (fun i -> i * 20) in
  let shards =
    Array.map
      (fun hw ->
        S.create
          (Dps_sthread.Alloc.create m
             ~cold:(Dps_sthread.Alloc.Node (Dps_machine.Topology.socket_of_thread topo hw))))
      server_hw
  in
  let f = Ffwd.create sched ~server_hw ~clients:nclients in
  let key_range = 32 in
  let ins = Array.make (key_range + 1) 0 and rem = Array.make (key_range + 1) 0 in
  for c = 0 to nclients - 1 do
    Sthread.spawn sched ~hw:(2 + (c * 6 mod 78)) (fun () ->
        Ffwd.attach f ~client:c;
        let p = Sthread.self_prng () in
        for _ = 1 to 30 do
          let key = 1 + Prng.int p key_range in
          let shard = key mod servers in
          if Prng.bool p then begin
            if
              Ffwd.call f ~server:shard (fun () ->
                  if S.insert shards.(shard) ~key ~value:key then 1 else 0)
              = 1
            then ins.(key) <- ins.(key) + 1
          end
          else if
            Ffwd.call f ~server:shard (fun () -> if S.remove shards.(shard) key then 1 else 0)
            = 1
          then rem.(key) <- rem.(key) + 1
        done;
        Ffwd.client_done f)
  done;
  Sthread.run sched;
  let contents = Array.to_list shards |> List.concat_map S.to_list in
  Array.iter S.check_invariants shards;
  for key = 1 to key_range do
    let present = List.mem_assoc key contents in
    let balance = ins.(key) - rem.(key) in
    if balance < 0 || balance > 1 then Alcotest.failf "ffwd: key %d balance %d" key balance;
    if (balance = 1) <> present then Alcotest.failf "ffwd: key %d presence mismatch" key
  done

(* DPS-wrapped priority queue with range-based findMin, as in §3.4/§5.2. *)
let dps_priority_queue () =
  let module Pq = Dps_ds.Pq_shavit in
  let m = Machine.create Machine.config_default in
  let sched = Sthread.create m in
  let nclients = 20 in
  let dps =
    Dps.create sched ~nclients ~locality_size:10 ~hash:Fun.id
      ~mk_data:(fun (info : Dps.partition_info) -> Pq.create info.Dps.alloc)
      ()
  in
  let inserted = ref 0 and popped = ref [] in
  for c = 0 to nclients - 1 do
    Sthread.spawn sched ~hw:(Dps.client_hw dps c) (fun () ->
        Dps.attach dps ~client:c;
        for i = 0 to 9 do
          let key = 1 + (c * 10) + i in
          ignore (Dps.call dps ~key (fun pq -> if Pq.insert pq ~key ~value:key then 1 else 0));
          incr inserted;
          if i mod 2 = 1 then begin
            (* findMin across partitions, then removeMin from the winner *)
            let k =
              Dps.range dps
                (fun pq -> match Pq.find_min pq with Some (k, _) -> k | None -> max_int)
                ~merge:min
            in
            if k < max_int then begin
              let got =
                Dps.call dps ~key:k (fun pq ->
                    match Pq.remove_min pq with Some (k', _) -> k' | None -> -1)
              in
              if got >= 0 then popped := got :: !popped
            end
          end
        done;
        Dps.client_done dps;
        Dps.drain dps)
  done;
  Sthread.run sched;
  let remaining = ref [] in
  for pid = 0 to Dps.npartitions dps - 1 do
    remaining := List.map fst (Pq.to_list (Dps.partition_data dps pid)) @ !remaining
  done;
  let all = List.sort compare (!popped @ !remaining) in
  Alcotest.(check (list int)) "popped + remaining = inserted"
    (List.init !inserted (fun i -> i + 1))
    all

(* Consistency: §3.3 read-your-writes through DPS with one partition per
   key — a client's own write is visible to its immediate read. *)
let dps_read_your_writes () =
  let m = Machine.create Machine.config_default in
  let sched = Sthread.create m in
  let nclients = 20 in
  let module H = Dps_ds.Hashtable in
  let dps =
    Dps.create sched ~nclients ~locality_size:10 ~hash:Fun.id
      ~mk_data:(fun (info : Dps.partition_info) -> H.create info.Dps.alloc)
      ()
  in
  let violations = ref 0 in
  for c = 0 to nclients - 1 do
    Sthread.spawn sched ~hw:(Dps.client_hw dps c) (fun () ->
        Dps.attach dps ~client:c;
        for i = 1 to 20 do
          let key = (c * 100) + i in
          let v = i * 7 in
          ignore
            (Dps.call dps ~key (fun h ->
                 if not (H.insert h ~key ~value:v) then ignore (H.update h ~key ~value:v);
                 0));
          let got = Dps.call dps ~key (fun h -> Option.value ~default:(-1) (H.lookup h key)) in
          if got <> v then incr violations
        done;
        Dps.client_done dps;
        Dps.drain dps)
  done;
  Sthread.run sched;
  Alcotest.(check int) "read your writes" 0 !violations

let suite =
  List.map
    (fun (module S : SET) ->
      (S.name ^ " behind DPS, conflicting ops", `Quick, dps_set_conflict (module S)))
    dps_structures
  @ [
      ("lazy list behind ffwd-s4", `Quick, ffwd_set_conflict);
      ("priority queue behind DPS range ops", `Quick, dps_priority_queue);
      ("read-your-writes through DPS", `Quick, dps_read_your_writes);
    ]

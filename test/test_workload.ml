(* Tests for key distributions and the benchmark driver. *)

module Machine = Dps_machine.Machine
module Sthread = Dps_sthread.Sthread
module Prng = Dps_simcore.Prng
module Keydist = Dps_workload.Keydist
module Driver = Dps_workload.Driver

let test_uniform_bounds () =
  let d = Keydist.uniform ~range:100 in
  let p = Prng.create 1L in
  Alcotest.(check int) "range" 100 (Keydist.range d);
  for _ = 1 to 10_000 do
    let k = Keydist.sample d p in
    if k < 0 || k >= 100 then Alcotest.failf "out of range: %d" k
  done

let test_uniform_covers () =
  let d = Keydist.uniform ~range:16 in
  let p = Prng.create 2L in
  let seen = Array.make 16 false in
  for _ = 1 to 2_000 do
    seen.(Keydist.sample d p) <- true
  done;
  Array.iteri (fun i s -> if not s then Alcotest.failf "key %d never drawn" i) seen

let test_zipf_skew () =
  (* Unscrambled zipf: rank 0 must dominate. *)
  let d = Keydist.zipf ~theta:0.99 ~scrambled:false ~range:1000 () in
  let p = Prng.create 3L in
  let counts = Array.make 1000 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let k = Keydist.sample d p in
    counts.(k) <- counts.(k) + 1
  done;
  let f0 = float_of_int counts.(0) /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "rank 0 hot (%.3f)" f0) true (f0 > 0.05);
  Alcotest.(check bool) "rank 0 > rank 100" true (counts.(0) > counts.(100));
  Alcotest.(check bool) "rank 1 > rank 500" true (counts.(1) > counts.(500))

let test_zipf_scrambled_spreads () =
  let d = Keydist.zipf ~theta:0.99 ~scrambled:true ~range:1000 () in
  let p = Prng.create 4L in
  let counts = Array.make 1000 0 in
  for _ = 1 to 50_000 do
    let k = Keydist.sample d p in
    counts.(k) <- counts.(k) + 1
  done;
  (* hottest key should not be key 0 specifically (hash spreads ranks) but
     skew must survive: max count far above the mean of 100 *)
  let mx = Array.fold_left max 0 counts in
  Alcotest.(check bool) "still skewed" true (mx > 1000)

let test_zipf_bounds () =
  let d = Keydist.zipf ~range:37 () in
  let p = Prng.create 5L in
  for _ = 1 to 10_000 do
    let k = Keydist.sample d p in
    if k < 0 || k >= 37 then Alcotest.failf "out of range: %d" k
  done

let test_ycsb_mixes () =
  let module Ycsb = Dps_workload.Ycsb in
  let count kind =
    let g = Ycsb.make kind ~items:1000 in
    let p = Prng.create 3L in
    let reads = ref 0 and updates = ref 0 and inserts = ref 0 and rmws = ref 0 in
    for _ = 1 to 10_000 do
      match fst (Ycsb.next g p) with
      | Ycsb.Read -> incr reads
      | Ycsb.Update -> incr updates
      | Ycsb.Insert -> incr inserts
      | Ycsb.Read_modify_write -> incr rmws
    done;
    (!reads, !updates, !inserts, !rmws)
  in
  let r, u, _, _ = count Ycsb.A in
  Alcotest.(check bool) "A is 50/50" true (abs (r - u) < 600);
  let r, u, _, _ = count Ycsb.B in
  Alcotest.(check bool) "B is 95/5" true (r > 9200 && u < 800);
  let r, _, _, _ = count Ycsb.C in
  Alcotest.(check int) "C is read-only" 10_000 r;
  let r, _, _, w = count Ycsb.F in
  Alcotest.(check bool) "F mixes reads and RMW" true (r > 4000 && w > 4000)

let test_ycsb_d_grows_and_reads_latest () =
  let module Ycsb = Dps_workload.Ycsb in
  let g = Ycsb.make Ycsb.D ~items:1000 in
  let p = Prng.create 5L in
  let recent_reads = ref 0 and reads = ref 0 in
  for _ = 1 to 10_000 do
    match Ycsb.next g p with
    | Ycsb.Insert, key -> Alcotest.(check int) "insert extends key space" key (Ycsb.key_space g - 1)
    | Ycsb.Read, key ->
        incr reads;
        if key >= Ycsb.key_space g - 100 then incr recent_reads
    | (Ycsb.Update | Ycsb.Read_modify_write), _ -> Alcotest.fail "no updates in D"
  done;
  Alcotest.(check bool) "key space grew" true (Ycsb.key_space g > 1300);
  let frac = float_of_int !recent_reads /. float_of_int !reads in
  Alcotest.(check bool) (Printf.sprintf "reads favour latest (%.2f)" frac) true (frac > 0.5)

let test_driver_measures () =
  let m = Machine.create Machine.config_default in
  let sched = Sthread.create m in
  let a = Machine.alloc m (Machine.On_node 0) ~lines:64 in
  let r =
    Driver.measure ~sched ~threads:4 ~duration:100_000
      ~op:(fun ~tid ~step ->
        Dps_sthread.Simops.read (a + ((tid + step) mod 64));
        Dps_sthread.Simops.work 100)
      ()
  in
  Alcotest.(check int) "threads" 4 r.Driver.threads;
  Alcotest.(check bool) "ops happened" true (r.Driver.ops > 100);
  Alcotest.(check bool) "throughput positive" true (r.Driver.throughput_mops > 0.0);
  Alcotest.(check bool) "latency sane" true (r.Driver.p50 > 0 && r.Driver.p50 <= r.Driver.p99)

let test_driver_min_ops () =
  let m = Machine.create Machine.config_default in
  let sched = Sthread.create m in
  let r =
    Driver.measure ~sched ~threads:2 ~duration:10 ~min_ops:5
      ~op:(fun ~tid:_ ~step:_ -> Dps_sthread.Simops.work 1_000)
      ()
  in
  Alcotest.(check bool) "min ops respected" true (r.Driver.ops >= 10)

let test_driver_prologue_epilogue () =
  let m = Machine.create Machine.config_default in
  let sched = Sthread.create m in
  let pro = ref 0 and epi = ref 0 in
  let _ =
    Driver.measure ~sched ~threads:3 ~duration:1_000
      ~prologue:(fun ~tid:_ -> incr pro)
      ~epilogue:(fun ~tid:_ -> incr epi)
      ~op:(fun ~tid:_ ~step:_ -> Dps_sthread.Simops.work 100)
      ()
  in
  Alcotest.(check int) "prologues" 3 !pro;
  Alcotest.(check int) "epilogues" 3 !epi

let test_zipf_deterministic () =
  let draw () =
    let d = Keydist.zipf ~range:512 () in
    let p = Prng.create 7L in
    List.init 100 (fun _ -> Keydist.sample d p)
  in
  Alcotest.(check (list int)) "same seed, same trace" (draw ()) (draw ())

let test_driver_reproducible () =
  (* the README claims every benchmark number is exactly reproducible *)
  let run_once () =
    let m = Machine.create ~seed:7L Machine.config_default in
    let sched = Sthread.create m in
    let a = Machine.alloc m Machine.Interleave ~lines:256 in
    let dist = Keydist.zipf ~range:256 () in
    Driver.measure ~sched ~threads:16 ~duration:50_000
      ~op:(fun ~tid:_ ~step:_ ->
        let p = Sthread.self_prng () in
        let k = Keydist.sample dist p in
        if Prng.bool p then Dps_sthread.Simops.write (a + k)
        else Dps_sthread.Simops.read (a + k))
      ()
  in
  let r1 = run_once () and r2 = run_once () in
  Alcotest.(check int) "same ops" r1.Driver.ops r2.Driver.ops;
  Alcotest.(check (float 0.0)) "same throughput" r1.Driver.throughput_mops
    r2.Driver.throughput_mops;
  Alcotest.(check int) "same p99" r1.Driver.p99 r2.Driver.p99;
  Alcotest.(check (float 0.0)) "same misses/op" r1.Driver.llc_misses_per_op
    r2.Driver.llc_misses_per_op

let suite =
  [
    ("uniform bounds", `Quick, test_uniform_bounds);
    ("driver reproducible", `Quick, test_driver_reproducible);
    ("zipf deterministic", `Quick, test_zipf_deterministic);
    ("uniform covers", `Quick, test_uniform_covers);
    ("zipf skew", `Quick, test_zipf_skew);
    ("zipf scrambled spreads", `Quick, test_zipf_scrambled_spreads);
    ("zipf bounds", `Quick, test_zipf_bounds);
    ("driver measures", `Quick, test_driver_measures);
    ("driver min_ops", `Quick, test_driver_min_ops);
    ("driver prologue/epilogue", `Quick, test_driver_prologue_epilogue);
    ("ycsb mixes", `Quick, test_ycsb_mixes);
    ("ycsb D grows and reads latest", `Quick, test_ycsb_d_grows_and_reads_latest);
  ]

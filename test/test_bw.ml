(* Tests for the bandwidth model: token-bucket semantics, the
   bytes-never-exceed-capacity invariant, charge-for-charge identity of
   the bw:0 path, and the STREAM saturation-knee shape. *)

module Machine = Dps_machine.Machine
module Costs = Dps_machine.Costs
module Bwbucket = Dps_machine.Bwbucket
module Driver = Dps_workload.Driver
module Fig_deleg = Dps_bench_figures.Fig_deleg
module Fig_stream = Dps_bench_figures.Fig_stream

(* --- token-bucket units --- *)

let test_bucket_charge_within_burst () =
  let b = Bwbucket.create ~rate:10 ~burst:100 in
  Alcotest.(check int) "starts full" 100 (Bwbucket.tokens b);
  Alcotest.(check int) "no delay within burst" 0 (Bwbucket.charge b ~now:0 ~bytes:50);
  Alcotest.(check int) "tokens drained" 50 (Bwbucket.tokens b);
  Alcotest.(check int) "no delay to zero" 0 (Bwbucket.charge b ~now:0 ~bytes:50);
  Alcotest.(check int) "bytes accounted" 100 (Bwbucket.bytes b);
  Alcotest.(check int) "no queueing yet" 0 (Bwbucket.queue_cycles b)

let test_bucket_queueing_delay () =
  let b = Bwbucket.create ~rate:7 ~burst:10 in
  Alcotest.(check int) "burst admitted" 0 (Bwbucket.charge b ~now:0 ~bytes:10);
  (* 15 bytes of debt at 7 B/cycle: ceil(15/7) = 3 cycles *)
  Alcotest.(check int) "debt delay is ceil(debt/rate)" 3 (Bwbucket.charge b ~now:0 ~bytes:15);
  Alcotest.(check int) "queue cycles accumulate" 3 (Bwbucket.queue_cycles b);
  Alcotest.(check int) "queue events counted" 1 (Bwbucket.queue_events b)

let test_bucket_refill_caps_at_burst () =
  let b = Bwbucket.create ~rate:10 ~burst:100 in
  ignore (Bwbucket.charge b ~now:0 ~bytes:100);
  ignore (Bwbucket.charge b ~now:5 ~bytes:0);
  Alcotest.(check int) "partial refill" 50 (Bwbucket.tokens b);
  ignore (Bwbucket.charge b ~now:1000 ~bytes:0);
  Alcotest.(check int) "refill capped at burst" 100 (Bwbucket.tokens b)

let test_bucket_deep_debt_refill_exact () =
  let b = Bwbucket.create ~rate:3 ~burst:5 in
  (* 50 bytes against 5 tokens: 45 of debt, ceil(45/3) = 15 cycles *)
  Alcotest.(check int) "deep debt delay" 15 (Bwbucket.charge b ~now:0 ~bytes:50);
  (* 10 cycles later only 30 tokens accrue: still 15 in debt, not capped
     to anything else *)
  ignore (Bwbucket.charge b ~now:10 ~bytes:0);
  Alcotest.(check int) "debt refills exactly" (-15) (Bwbucket.tokens b);
  Alcotest.(check int) "next charge pays remaining debt" 6 (Bwbucket.charge b ~now:10 ~bytes:3)

(* --- qcheck: admitted bytes never exceed burst + rate * elapsed ---

   A caller that waits out every returned delay can never move more bytes
   through a bucket than its capacity over the window: after each charge
   plus its delay, total bytes <= burst + rate * now. *)

let qcheck_capacity_window =
  QCheck.Test.make ~name:"bucket: bytes <= burst + rate * elapsed" ~count:300
    QCheck.(
      triple (int_range 1 50) (int_range 1 1000)
        (list_of_size Gen.(int_range 1 60) (pair (int_bound 20) (int_range 1 500))))
    (fun (rate, burst, steps) ->
      let b = Bwbucket.create ~rate ~burst in
      let now = ref 0 in
      List.for_all
        (fun (dt, bytes) ->
          now := !now + dt;
          let d = Bwbucket.charge b ~now:!now ~bytes in
          now := !now + d;
          Bwbucket.bytes b <= burst + (rate * !now))
        steps)

(* --- bw:0 bit-identity ---

   With bandwidth modeling off (the default: [Costs.bw_off]) the machine
   must charge exactly what it charged before the model existed. The
   golden values below are fig6a-style points recorded when the model
   landed, cross-checked against the pre-model machine by the
   determinism suite's charge-trace digest: if a future change leaks
   bucket behaviour into the bw:0 path, these trip. The same run is also
   repeated with a fresh machine to pin per-instance determinism. *)

let result_eq = Alcotest.testable Driver.pp_result ( = )

let identity_config =
  {
    Dps_bench_figures.Bench_common.full_config with
    Machine.costs = { Costs.default with Costs.bw = Costs.bw_unlimited };
  }

let test_bw0_identity_deleg () =
  let run ?config ?on_machine mode =
    Fig_deleg.run ?config ?on_machine ~mode ~threads:20 ~op_len:0 ~delay:0 ~duration:50_000 ()
  in
  List.iter
    (fun (name, mode, ops, dur, p50, p99, p999) ->
      let r = run mode in
      Alcotest.(check int) (name ^ " ops") ops r.Driver.ops;
      Alcotest.(check int) (name ^ " duration") dur r.Driver.duration_cycles;
      Alcotest.(check int) (name ^ " p50") p50 r.Driver.p50;
      Alcotest.(check int) (name ^ " p99") p99 r.Driver.p99;
      Alcotest.(check int) (name ^ " p999") p999 r.Driver.p999;
      Alcotest.check result_eq (name ^ " rerun identical") r (run mode))
    [
      ("dps", Fig_deleg.Dps_sync, 1375, 53534, 287, 2239, 2751);
      ("ffwd4", Fig_deleg.Ffwd_servers 4, 1102, 51462, 703, 4735, 8447);
    ]

(* [bw_unlimited] buckets admit everything with zero delay: throughput
   stays within a whisker of bw:0 (the buckets replace the DRAM
   service-queue seam, so the runs are close, not bit-identical) while
   the byte counters observe the run. *)
let test_bw_unlimited_close () =
  let run ?config ?on_machine () =
    Fig_deleg.run ?config ?on_machine ~mode:Fig_deleg.Dps_sync ~threads:20 ~op_len:0 ~delay:0
      ~duration:50_000 ()
  in
  let off = run () in
  let seen_bytes = ref (-1) in
  let unl =
    run ~config:identity_config
      ~on_machine:(fun m ->
        Alcotest.(check bool) "buckets exist" true (Machine.bw_enabled m);
        seen_bytes := Machine.interconnect_bytes m)
      ()
  in
  Alcotest.(check bool) "byte counters ran" true (!seen_bytes > 0);
  let ratio = unl.Driver.throughput_mops /. off.Driver.throughput_mops in
  Alcotest.(check bool) "unlimited buckets do not throttle" true (ratio > 0.97 && ratio < 1.03)

let test_bw0_no_buckets () =
  let m = Machine.create Machine.config_default in
  Alcotest.(check bool) "bw off by default" false (Machine.bw_enabled m);
  Alcotest.(check bool) "no snapshot" true (Machine.bw_snapshot m = None);
  Alcotest.(check int) "dma charge free" 0 (Machine.bw_charge_dma m ~now:0 ~socket:0 ~bytes:4096);
  Alcotest.(check int) "no interconnect accounting" 0 (Machine.interconnect_bytes m)

let test_bw_snapshot_accounts () =
  let cfg =
    { Machine.config_default with Machine.costs = { Costs.default with Costs.bw = Costs.bw_default } }
  in
  let m = Machine.create cfg in
  let base = Machine.alloc m (Machine.On_node 1) ~lines:64 in
  (* thread 0 lives on socket 0; lines homed on node 1: every miss is a
     remote-DRAM fill crossing link 1 -> 0 *)
  for i = 0 to 63 do
    ignore (Machine.access m ~now:(i * 10) ~thread:0 ~addr:(base + i) ~kind:Machine.Read)
  done;
  match Machine.bw_snapshot m with
  | None -> Alcotest.fail "snapshot expected with bw on"
  | Some s ->
      Alcotest.(check int) "fills drain home memory controller" (64 * 64) s.Machine.mc_bytes.(1);
      let l10 = s.Machine.link_bytes.(1).(0) in
      Alcotest.(check int) "fills cross the home->reader link" (64 * 64) l10;
      Alcotest.(check int) "reverse direction idle" 0 s.Machine.link_bytes.(0).(1);
      Alcotest.(check int) "interconnect total matches" l10 (Machine.interconnect_bytes m)

(* --- deterministic saturation knee ---

   The STREAM sweep's shape on the full machine: local throughput scales
   then flattens (the knee), the remote plateau sits well below the local
   one (link narrower than a memory controller), and the remote sweep is
   already saturated at a core count where local still scales. Everything
   is simulated, so the floats are exactly reproducible — run one point
   twice and demand equality. *)

let stream_point ~place ~cores =
  Fig_stream.run_stream ~kernel:Fig_stream.Copy ~place ~cores ~duration:150_000

let test_stream_knee () =
  let l1 = stream_point ~place:Fig_stream.Local ~cores:1 in
  let l2 = stream_point ~place:Fig_stream.Local ~cores:2 in
  let l4 = stream_point ~place:Fig_stream.Local ~cores:4 in
  let r1 = stream_point ~place:Fig_stream.Remote ~cores:1 in
  let r2 = stream_point ~place:Fig_stream.Remote ~cores:2 in
  let r4 = stream_point ~place:Fig_stream.Remote ~cores:4 in
  Alcotest.(check bool) "local scales 1->2" true (l2 > 1.8 *. l1);
  Alcotest.(check bool) "local knees by 4" true (l4 < 3.8 *. l1);
  Alcotest.(check bool) "local 4 above 2" true (l4 > l2);
  Alcotest.(check bool) "remote plateau below local" true (r4 < 0.5 *. l4);
  (* remote saturates earlier: by 2 cores it is within 15% of its
     4-core plateau, while local at 2 is still far from its plateau *)
  Alcotest.(check bool) "remote saturated at 2" true (r2 >= 0.85 *. r4);
  Alcotest.(check bool) "local still scaling at 2" true (l2 < 0.85 *. l4);
  Alcotest.(check bool) "remote scales 1->2" true (r2 > 1.5 *. r1);
  let l4' = stream_point ~place:Fig_stream.Local ~cores:4 in
  Alcotest.(check (float 0.0)) "bit-deterministic" l4 l4'

let suite =
  [
    Alcotest.test_case "bucket: charge within burst" `Quick test_bucket_charge_within_burst;
    Alcotest.test_case "bucket: queueing delay" `Quick test_bucket_queueing_delay;
    Alcotest.test_case "bucket: refill caps at burst" `Quick test_bucket_refill_caps_at_burst;
    Alcotest.test_case "bucket: deep debt refill" `Quick test_bucket_deep_debt_refill_exact;
    QCheck_alcotest.to_alcotest qcheck_capacity_window;
    Alcotest.test_case "bw:0 bit-identity (fig6a-style)" `Quick test_bw0_identity_deleg;
    Alcotest.test_case "bw_unlimited does not throttle" `Quick test_bw_unlimited_close;
    Alcotest.test_case "bw:0 creates no buckets" `Quick test_bw0_no_buckets;
    Alcotest.test_case "bw snapshot accounting" `Quick test_bw_snapshot_accounts;
    Alcotest.test_case "stream saturation knee" `Quick test_stream_knee;
  ]

(** Explored-schedule coverage for adaptive delegation (lib/adapt +
    Dps.set_mode) and the CNA lock behind its direct mode: exactly-once
    must survive mode flips racing in-flight operations, crashes during
    a transition, and the planted stuck-transition mutation must be
    caught and replay bit-for-bit. *)

module Sthread = Dps_sthread.Sthread
module Simops = Dps_sthread.Simops
module Schedule = Dps_check.Schedule
module Check = Dps_check.Check
module Faults = Dps_faults
module Cna = Dps_sync.Cna

let sweep_simple name scenario () =
  match Check.explore ~name ~budget:30 scenario with
  | Ok () -> ()
  | Error f -> Alcotest.fail f.Check.message

(* --- counter DPS (the accounting oracle of test_check, adaptive) --- *)

type counters = { cells : int array }

let mk_counter_dps ?self_healing ?await_timeout sim ~nclients ~locality_size =
  Dps.create sim.Check.sched ~nclients ~locality_size
    ~hash:(fun k -> k)
    ?self_healing ?await_timeout ~adaptive:true
    ~mk_data:(fun (_ : Dps.partition_info) -> { cells = Array.make 32 0 })
    ()

let applied dps c =
  let total = ref 0 in
  for pid = 0 to Dps.npartitions dps - 1 do
    total := !total + (Dps.partition_data dps pid).cells.(c)
  done;
  !total

(* The controller stand-in: cycle every partition direct and back a fixed
   number of times, paced so flips land in the middle of the clients'
   issue windows. Runs unattached on a spare hardware thread, exactly
   like Adapt.run. *)
let flipper dps ~rounds ~period () =
  for round = 1 to rounds do
    ignore (Sthread.park_for period);
    let target = if round land 1 = 1 then `Direct else `Delegated in
    for pid = 0 to Dps.npartitions dps - 1 do
      Dps.set_mode dps ~pid target
    done
  done

let flipper_hw = 79 (* last hw thread of the default topology; no client lands there *)

(* Exactly-once across flips: every synchronous call must apply exactly
   once no matter where the Delegated -> Draining -> Direct transitions
   cut into its issue/serve/complete window. *)
let adaptive_flip_scenario ctl =
  Check.with_sim ctl (fun sim ->
      let nclients = 6 and per = 8 in
      let dps = mk_counter_dps sim ~nclients ~locality_size:3 in
      let nparts = Dps.npartitions dps in
      let acked = Array.make nclients 0 in
      for c = 0 to nclients - 1 do
        Sthread.spawn sim.Check.sched ~hw:(Dps.client_hw dps c) (fun () ->
            Dps.attach dps ~client:c;
            for i = 1 to per do
              ignore
                (Dps.call dps ~key:(i mod nparts) (fun d ->
                     d.cells.(c) <- d.cells.(c) + 1;
                     d.cells.(c)));
              acked.(c) <- acked.(c) + 1
            done;
            Dps.client_done dps;
            Dps.drain dps)
      done;
      Sthread.spawn sim.Check.sched ~hw:flipper_hw (flipper dps ~rounds:8 ~period:1_500);
      Sthread.run sim.Check.sched;
      let bad = ref None in
      for c = 0 to nclients - 1 do
        let a = applied dps c in
        if a <> acked.(c) && !bad = None then
          bad := Some (Printf.sprintf "client %d: %d acked but %d applied" c acked.(c) a)
      done;
      !bad)

(* Fire-and-forget accounting across flips: asynchronous operations have
   no awaiting sender to re-issue them, so a transition that strands a
   published ring entry loses the update outright — this is the oracle
   the stuck-transition mutation must trip. *)
let adaptive_async_scenario ctl =
  Check.with_sim ctl (fun sim ->
      let nclients = 6 and per = 8 in
      let dps = mk_counter_dps sim ~nclients ~locality_size:3 in
      let nparts = Dps.npartitions dps in
      let sent = Array.make nclients 0 in
      for c = 0 to nclients - 1 do
        Sthread.spawn sim.Check.sched ~hw:(Dps.client_hw dps c) (fun () ->
            Dps.attach dps ~client:c;
            for i = 1 to per do
              Dps.execute_async dps ~key:(i mod nparts) (fun d ->
                  d.cells.(c) <- d.cells.(c) + 1;
                  d.cells.(c));
              sent.(c) <- sent.(c) + 1
            done;
            Dps.client_done dps;
            Dps.drain dps)
      done;
      Sthread.spawn sim.Check.sched ~hw:flipper_hw (flipper dps ~rounds:8 ~period:1_200);
      Sthread.run sim.Check.sched;
      let bad = ref None in
      for c = 0 to nclients - 1 do
        let a = applied dps c in
        if a <> sent.(c) && !bad = None then
          bad := Some (Printf.sprintf "client %d: %d sent but %d applied" c sent.(c) a)
      done;
      !bad)

(* A client dies mid-issue while the flipper keeps migrating modes: the
   self-healing paths (takeover, lock break, re-issue) must compose with
   draining. Survivors stay exactly-once; the victim's last operation may
   land after its crash, so it is allowed one extra. *)
let adaptive_kill_scenario ctl =
  Check.with_sim ctl (fun sim ->
      let nclients = 6 and per = 6 and victim = 1 in
      let dps =
        mk_counter_dps sim ~nclients ~locality_size:3 ~self_healing:true ~await_timeout:15_000
      in
      let nparts = Dps.npartitions dps in
      let plan = Faults.install sim.Check.sched ~seed:5L (Faults.spec ()) in
      Faults.schedule_crash plan ~tid:victim ~at:5_000;
      let acked = Array.make nclients 0 in
      for c = 0 to nclients - 1 do
        Sthread.spawn sim.Check.sched ~hw:(Dps.client_hw dps c) (fun () ->
            Dps.attach dps ~client:c;
            for i = 1 to per do
              ignore
                (Dps.call dps ~key:(i mod nparts) (fun d ->
                     d.cells.(c) <- d.cells.(c) + 1;
                     d.cells.(c)));
              acked.(c) <- acked.(c) + 1
            done;
            Dps.client_done dps;
            Dps.drain dps)
      done;
      Sthread.spawn sim.Check.sched ~hw:flipper_hw (flipper dps ~rounds:8 ~period:1_500);
      Sthread.run sim.Check.sched;
      let bad = ref None in
      for c = 0 to nclients - 1 do
        let a = applied dps c in
        if c = victim then begin
          if a < acked.(c) || a > acked.(c) + 1 then
            bad := Some (Printf.sprintf "victim: %d acked but %d applied" acked.(c) a)
        end
        else if a <> acked.(c) && !bad = None then
          bad := Some (Printf.sprintf "client %d: %d acked but %d applied" c acked.(c) a)
      done;
      !bad)

(* --- mutation self-test: the planted drain bug must be caught --- *)

let with_flag flag f =
  flag := true;
  Fun.protect ~finally:(fun () -> flag := false) f

let assert_caught_and_replays name scenario =
  match Check.explore ~name ~budget:150 scenario with
  | Ok () -> Alcotest.failf "%s: planted bug survived the schedule budget" name
  | Error f ->
      Alcotest.(check bool)
        (name ^ " minimized no larger than full") true
        (List.length f.Check.trace <= List.length f.Check.full_trace);
      let replay () = scenario (Schedule.make ~seed:0L (Schedule.Replay f.Check.trace)) in
      (match (replay (), replay ()) with
      | Some m1, Some m2 -> Alcotest.(check string) (name ^ " bit-for-bit replay") m1 m2
      | _ -> Alcotest.failf "%s: minimized trace did not replay the failure" name)

let test_mutation_stuck_transition () =
  with_flag Dps.failpoint_stuck_transition (fun () ->
      assert_caught_and_replays "dps stuck transition" adaptive_async_scenario)

(* --- the real controller, in-sim: Adapt.run must flip and stay safe --- *)

(* Skewed load with the actual controller thread attached: partition 0 is
   hammered, the rest are idle, so a policy with short epochs must send
   the idle partitions direct — and exactly-once must hold throughout. *)
let adapt_controller_scenario ctl =
  Check.with_sim ctl (fun sim ->
      let nclients = 6 and per = 16 in
      let dps = mk_counter_dps sim ~nclients ~locality_size:3 in
      let policy =
        {
          Dps_adapt.Adapt.default_policy with
          Dps_adapt.Adapt.epoch = 800;
          warmup_epochs = 1;
          hot_ops = 6;
          cool_ops = 1;
          hot_epochs = 1;
          cool_epochs = 2;
        }
      in
      let acked = Array.make nclients 0 in
      for c = 0 to nclients - 1 do
        Sthread.spawn sim.Check.sched ~hw:(Dps.client_hw dps c) (fun () ->
            Dps.attach dps ~client:c;
            for _ = 1 to per do
              ignore
                (Dps.call dps ~key:0 (fun d ->
                     d.cells.(c) <- d.cells.(c) + 1;
                     d.cells.(c)));
              acked.(c) <- acked.(c) + 1;
              Sthread.work 600
            done;
            Dps.client_done dps;
            Dps.drain dps)
      done;
      Sthread.spawn sim.Check.sched ~hw:flipper_hw (fun () ->
          Dps_adapt.Adapt.run ~policy dps);
      Sthread.run sim.Check.sched;
      let bad = ref None in
      for c = 0 to nclients - 1 do
        let a = applied dps c in
        if a <> acked.(c) && !bad = None then
          bad := Some (Printf.sprintf "client %d: %d acked but %d applied" c acked.(c) a)
      done;
      if !bad <> None then !bad
      else
        let to_direct, _ = Dps.mode_flips dps in
        if to_direct = 0 then Some "controller never sent an idle partition direct"
        else None)

(* --- CNA: the direct mode's lock, under explored schedules --- *)

(* Mutual exclusion with the race detector armed: the critical section
   touches a shared simulated line (Race must see the lock's RMW edges
   order those accesses) and a host-side occupancy flag (atomic between
   charges) that directly witnesses any overlap. *)
let cna_mutex_scenario ctl =
  Check.with_sim ctl (fun sim ->
      let l = Cna.create sim.Check.alloc sim.Check.machine in
      let line = Dps_sthread.Alloc.line sim.Check.alloc in
      let threads = 6 and per = 4 in
      let in_cs = ref false in
      let count = ref 0 in
      let bad = ref None in
      let fail m = if !bad = None then bad := Some m in
      for t = 0 to threads - 1 do
        Sthread.spawn sim.Check.sched ~hw:(13 * t) (fun () ->
            for _ = 1 to per do
              Cna.acquire l;
              if !in_cs then fail "two threads inside the critical section";
              in_cs := true;
              Simops.read line;
              Sthread.work 40;
              Simops.write line;
              incr count;
              in_cs := false;
              Cna.release l
            done)
      done;
      Sthread.run sim.Check.sched;
      if !bad <> None then !bad
      else if !count <> threads * per then
        Some (Printf.sprintf "lost updates under the lock: %d of %d" !count (threads * per))
      else if Cna.held l then Some "lock still held after all threads exited"
      else None)

(* try_acquire's contract: it wins only an empty queue, never enqueues,
   and the winner still excludes everyone — checked against a thread
   using the blocking path concurrently. *)
let cna_try_scenario ctl =
  Check.with_sim ctl (fun sim ->
      let l = Cna.create sim.Check.alloc sim.Check.machine in
      let in_cs = ref false in
      let wins = ref 0 in
      let bad = ref None in
      let fail m = if !bad = None then bad := Some m in
      let go = ref false in
      Sthread.spawn sim.Check.sched ~hw:0 (fun () ->
          (* solo phase: the contender is gated on [go], so the lock is
             provably free (and then provably held) for the contract
             checks regardless of the explored schedule *)
          if not (Cna.try_acquire l) then fail "free lock refused try_acquire"
          else begin
            if Cna.try_acquire l then fail "held lock granted try_acquire";
            Cna.release l
          end;
          go := true;
          for _ = 1 to 6 do
            if Cna.try_acquire l then begin
              if !in_cs then fail "try_acquire broke mutual exclusion";
              in_cs := true;
              incr wins;
              Sthread.work 30;
              in_cs := false;
              Cna.release l
            end
            else Sthread.work 50
          done);
      Sthread.spawn sim.Check.sched ~hw:21 (fun () ->
          while not !go do
            Sthread.work 20
          done;
          for _ = 1 to 6 do
            Cna.acquire l;
            if !in_cs then fail "acquire broke mutual exclusion";
            in_cs := true;
            Sthread.work 30;
            in_cs := false;
            Cna.release l
          done);
      Sthread.run sim.Check.sched;
      if !bad <> None then !bad
      else if Cna.held l then Some "lock still held after all threads exited"
      else None)

(* --- suite --- *)

let suite =
  [
    ("adaptive exactly-once under mode flips", `Quick,
     sweep_simple "adapt_flips" adaptive_flip_scenario);
    ("adaptive async accounting across drains", `Quick,
     sweep_simple "adapt_async" adaptive_async_scenario);
    ("adaptive crash during transition", `Quick,
     sweep_simple "adapt_kill" adaptive_kill_scenario);
    ("mutation: stuck transition caught", `Quick, test_mutation_stuck_transition);
    ("controller flips idle partitions direct", `Quick,
     sweep_simple "adapt_controller" adapt_controller_scenario);
    ("cna mutual exclusion under schedules", `Quick,
     sweep_simple "cna_mutex" cna_mutex_scenario);
    ("cna try_acquire contract", `Quick, sweep_simple "cna_try" cna_try_scenario);
  ]

(* Tests for the simulated network front-end: wire codec (round-trip under
   arbitrary packetization, malformed-input rejection), NIC/link/DMA model
   (timing, backpressure, locality tallies), the server event loop, and
   fleet determinism. *)

module Machine = Dps_machine.Machine
module Topology = Dps_machine.Topology
module Sthread = Dps_sthread.Sthread
module Prng = Dps_simcore.Prng
module Byteq = Dps_net.Byteq
module Wire = Dps_net.Wire
module Net = Dps_net.Net
module Server = Dps_server.Server
module Netload = Dps_workload.Netload
module Variants = Dps_memcached.Variants

let mk () = Sthread.create (Machine.create (Machine.config_scaled ()))

(* --- codec ------------------------------------------------------------- *)

let gen_key p = Printf.sprintf "k%d" (Prng.int p 100000)

let gen_data p =
  (* arbitrary bytes, CRLF included: data blocks are length-framed *)
  String.init (Prng.int p 200) (fun _ -> Char.chr (Prng.int p 256))

let gen_request p =
  match Prng.int p 3 with
  | 0 -> Wire.Get (List.init (1 + Prng.int p 4) (fun _ -> gen_key p))
  | 1 ->
      Wire.Set
        {
          key = gen_key p;
          flags = Prng.int p 1024;
          exptime = Prng.int p 10000;
          data = gen_data p;
          noreply = Prng.bool p;
        }
  | _ -> Wire.Delete { key = gen_key p; noreply = Prng.bool p }

let gen_response p =
  match Prng.int p 6 with
  | 0 ->
      Wire.Values
        (List.init (Prng.int p 4) (fun _ ->
             { Wire.vkey = gen_key p; vflags = Prng.int p 1024; vdata = gen_data p }))
  | 1 -> Wire.Stored
  | 2 -> Wire.Deleted
  | 3 -> Wire.Not_found
  | 4 -> Wire.Error
  | _ -> Wire.Client_error "object too large for cache"

(* Encode [items], split the byte stream at arbitrary boundaries, feed the
   chunks one by one, and require the decoded sequence to match exactly —
   with [Need_more] (never [Bad]) at every intermediate point. *)
let roundtrip (type a) ~(encode : Buffer.t -> a -> unit)
    ~(next : Wire.decoder -> a Wire.parse) p items =
  let b = Buffer.create 1024 in
  List.iter (fun it -> encode b it) items;
  let stream = Buffer.contents b in
  let d = Wire.decoder () in
  let decoded = ref [] in
  let rec drain () =
    match next d with
    | Wire.Need_more -> ()
    | Wire.Bad { msg; _ } -> Alcotest.failf "Bad on valid stream: %s" msg
    | Wire.Item it ->
        decoded := it :: !decoded;
        drain ()
  in
  let pos = ref 0 in
  while !pos < String.length stream do
    let n = min (1 + Prng.int p 40) (String.length stream - !pos) in
    Wire.feed d (String.sub stream !pos n);
    pos := !pos + n;
    drain ()
  done;
  Alcotest.(check int) "no partial frame left" 0 (Wire.buffered d);
  List.rev !decoded

let test_request_roundtrip () =
  let p = Prng.create 101L in
  for _ = 1 to 50 do
    let items = List.init (1 + Prng.int p 10) (fun _ -> gen_request p) in
    let got = roundtrip ~encode:Wire.encode_request ~next:Wire.next_request p items in
    Alcotest.(check bool) "requests round-trip" true (got = items)
  done

let test_response_roundtrip () =
  let p = Prng.create 202L in
  for _ = 1 to 50 do
    let items = List.init (1 + Prng.int p 10) (fun _ -> gen_response p) in
    let got = roundtrip ~encode:Wire.encode_response ~next:Wire.next_response p items in
    Alcotest.(check bool) "responses round-trip" true (got = items)
  done

let test_truncation_safe () =
  (* Every prefix of a valid stream parses to a prefix of its frames; a cut
     mid-frame is Need_more, never Bad. *)
  let p = Prng.create 303L in
  let items = List.init 6 (fun _ -> gen_request p) in
  let b = Buffer.create 512 in
  List.iter (fun it -> Wire.encode_request b it) items;
  let stream = Buffer.contents b in
  for cut = 0 to String.length stream do
    let d = Wire.decoder () in
    Wire.feed d (String.sub stream 0 cut);
    let rec drain acc =
      match Wire.next_request d with
      | Wire.Need_more -> List.rev acc
      | Wire.Bad { msg; _ } -> Alcotest.failf "Bad at prefix %d: %s" cut msg
      | Wire.Item it -> drain (it :: acc)
    in
    let got = drain [] in
    let rec is_prefix xs ys =
      match (xs, ys) with
      | [], _ -> true
      | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
      | _ :: _, [] -> false
    in
    Alcotest.(check bool)
      (Printf.sprintf "prefix %d decodes a frame prefix" cut)
      true (is_prefix got items)
  done

let expect_bad what d next =
  match next d with
  | Wire.Bad _ -> ()
  | Wire.Item _ -> Alcotest.failf "%s: parsed instead of rejected" what
  | Wire.Need_more -> Alcotest.failf "%s: Need_more instead of Bad" what

let test_malformed_rejected () =
  let cases =
    [
      ("unknown verb", "bogus 1 2 3\r\n");
      ("get without keys", "get\r\n");
      ("set with junk length", "set k 0 0 abc\r\n");
      ("set over-long length", "set k 0 0 9999999\r\n");
      ("set bad terminator", "set k 0 0 4\r\nabcdXY");
      ("delete arity", "delete\r\n");
    ]
  in
  List.iter
    (fun (what, input) ->
      let d = Wire.decoder () in
      Wire.feed d input;
      expect_bad what d Wire.next_request)
    cases;
  (* an over-long line with no CRLF in sight is dropped wholesale *)
  let d = Wire.decoder ~max_line:64 () in
  Wire.feed d (String.make 200 'a');
  expect_bad "line too long" d Wire.next_request;
  Alcotest.(check int) "garbage dropped" 0 (Wire.buffered d);
  (* responses reject too *)
  let d = Wire.decoder () in
  Wire.feed d "WHAT 1 2\r\n";
  expect_bad "unknown response" d Wire.next_response;
  (* a malformed frame poisons only itself: the next frame still parses *)
  let d = Wire.decoder () in
  Wire.feed d "bogus\r\nget alive\r\n";
  expect_bad "first frame" d Wire.next_request;
  (match Wire.next_request d with
  | Wire.Item (Wire.Get [ "alive" ]) -> ()
  | _ -> Alcotest.fail "frame after Bad did not parse")

let test_oversized_set_resync () =
  (* A set announcing a payload over the codec limit answers SERVER_ERROR,
     and the decoder swallows exactly the announced bytes — the stream
     resynchronizes on the next command even when the payload arrives in
     dribs and drabs. *)
  let d = Wire.decoder () in
  let n = (1 lsl 20) + 5 in
  Wire.feed d (Printf.sprintf "set big 0 0 %d\r\n" n);
  (match Wire.next_request d with
  | Wire.Bad { reply = Wire.Server_error _; _ } -> ()
  | Wire.Bad { reply = _; _ } -> Alcotest.fail "oversized set: wrong canned reply"
  | _ -> Alcotest.fail "oversized set not rejected");
  let remaining = ref (n + 2) in
  while !remaining > 0 do
    let chunk = min 65_536 !remaining in
    Wire.feed d (String.make chunk 'x');
    remaining := !remaining - chunk;
    if !remaining > 0 then
      match Wire.next_request d with
      | Wire.Need_more -> ()
      | _ -> Alcotest.fail "decoder produced a frame from skipped payload"
  done;
  Wire.feed d "get after\r\n";
  (match Wire.next_request d with
  | Wire.Item (Wire.Get [ "after" ]) -> ()
  | _ -> Alcotest.fail "stream did not resynchronize after skipped payload");
  Alcotest.(check int) "payload fully consumed" 0 (Wire.buffered d)

let test_garbage_resync () =
  (* Seeded garbage lines never raise, each answers Bad, and a valid frame
     after the last CRLF still parses. *)
  let p = Prng.create 909L in
  for _round = 0 to 19 do
    let d = Wire.decoder () in
    let nlines = 1 + Prng.int p 4 in
    for _ = 1 to nlines do
      let len = 1 + Prng.int p 40 in
      let line =
        String.init len (fun _ ->
            (* printable junk, no CR/LF inside the line *)
            Char.chr (33 + Prng.int p 94))
      in
      Wire.feed d (line ^ "\r\n")
    done;
    let rec drain bads =
      match Wire.next_request d with
      | Wire.Need_more -> bads
      | Wire.Bad _ -> drain (bads + 1)
      | Wire.Item _ -> drain bads (* junk can collide with a verb; fine *)
    in
    ignore (drain 0);
    Wire.feed d "get alive\r\n";
    let rec settle () =
      match Wire.next_request d with
      | Wire.Item (Wire.Get [ "alive" ]) -> ()
      | Wire.Bad _ -> settle ()
      | _ -> Alcotest.fail "valid frame lost after garbage"
    in
    settle ()
  done

let test_truncated_multiget_response () =
  (* A VALUE/END response cut anywhere is Need_more, never Bad, and the
     reassembled stream parses to the original values. *)
  let b = Buffer.create 256 in
  Wire.encode_response b
    (Wire.Values
       [
         { Wire.vkey = "a"; vflags = 0; vdata = "xxxx" };
         { Wire.vkey = "bb"; vflags = 7; vdata = String.make 64 'y' };
       ]);
  let stream = Buffer.contents b in
  for cut = 0 to String.length stream - 1 do
    let d = Wire.decoder () in
    Wire.feed d (String.sub stream 0 cut);
    (match Wire.next_response d with
    | Wire.Need_more -> ()
    | Wire.Bad { msg; _ } -> Alcotest.failf "cut %d: Bad (%s)" cut msg
    | Wire.Item _ -> Alcotest.failf "cut %d: full frame from a prefix" cut);
    Wire.feed d (String.sub stream cut (String.length stream - cut));
    match Wire.next_response d with
    | Wire.Item
        (Wire.Values
          [
            { Wire.vkey = "a"; vflags = 0; vdata = "xxxx" };
            { Wire.vkey = "bb"; vflags = 7; vdata = v };
          ])
      ->
        Alcotest.(check int) "second value intact" 64 (String.length v)
    | _ -> Alcotest.failf "cut %d: reassembled frame did not parse" cut
  done

let test_byteq () =
  let q = Byteq.create () in
  Byteq.push q "hello ";
  Byteq.push q "world";
  Alcotest.(check int) "length" 11 (Byteq.length q);
  Alcotest.(check char) "get" 'w' (Byteq.get q 6);
  Alcotest.(check string) "sub" "lo wo" (Byteq.sub q ~pos:3 ~len:5);
  Byteq.drop q 6;
  Alcotest.(check string) "take after drop" "wor" (Byteq.take q ~max:3);
  Alcotest.(check string) "take rest" "ld" (Byteq.take q ~max:100);
  Alcotest.(check int) "empty" 0 (Byteq.length q);
  (* interleaved push/drop exercises compaction *)
  for i = 0 to 999 do
    Byteq.push q (string_of_int i);
    Byteq.drop q (min 2 (Byteq.length q))
  done;
  ignore (Byteq.take q ~max:max_int);
  Alcotest.(check int) "drained" 0 (Byteq.length q)

(* --- NIC / link / DMA model -------------------------------------------- *)

let test_link_timing () =
  let s = mk () in
  let net = Net.create s () in
  let cfg = Net.config net in
  let readable_at = ref (-1) in
  let c = Net.connect net ~nic:0 ~rx:(fun _ -> ()) () in
  Net.set_on_readable c (fun () -> if !readable_at < 0 then readable_at := Sthread.now s);
  Net.send net c (String.make 64 'x');
  Sthread.run s;
  (* SYN serializes (1 line), then the data line behind it, plus one
     propagation delay each; both must have crossed before delivery *)
  let min_arrival = cfg.Net.link_latency + (2 * cfg.Net.cycles_per_line) in
  Alcotest.(check bool)
    (Printf.sprintf "delivery after link crossing (%d >= %d)" !readable_at min_arrival)
    true
    (!readable_at >= min_arrival);
  Alcotest.(check bool) "but within the same microsecond order" true
    (!readable_at < 2 * cfg.Net.link_latency);
  let st = Net.stats net in
  Alcotest.(check int) "one packet" 1 st.Net.pkts_rx;
  Alcotest.(check int) "64 bytes" 64 st.Net.bytes_rx;
  Alcotest.(check bool) "DMA lines charged" true (st.Net.dma_lines >= 1)

let test_backpressure () =
  let s = mk () in
  (* a small window and a slow consumer: the link outruns the drain *)
  let net = Net.create s ~config:{ Net.default_config with Net.rx_window = 2048 } () in
  let total = 16384 in
  let c = Net.connect net ~nic:0 ~rx:(fun _ -> ()) () in
  let got = ref 0 in
  Sthread.spawn s ~hw:2 (fun () ->
      (* accept-less raw drain: poll the connection until all bytes arrive *)
      while !got < total do
        let data = Net.recv net c ~max:1024 in
        if data = "" then ignore (Sthread.park_for 1000) else got := !got + String.length data
      done);
  Net.send net c (String.make total 'x');
  Sthread.run s;
  Alcotest.(check int) "all bytes eventually delivered" total !got;
  Alcotest.(check bool) "window held packets at the NIC" true
    ((Net.stats net).Net.backpressured > 0)

let test_locality_tally () =
  let s = mk () in
  let topo = Machine.topology (Sthread.machine s) in
  let net = Net.create s () in
  let c0 = Net.connect net ~nic:0 ~rx:(fun _ -> ()) () in
  let c1 = Net.connect net ~nic:1 ~rx:(fun _ -> ()) () in
  Net.send net c0 (String.make 256 'a');
  Net.send net c1 (String.make 256 'b');
  (* one server thread on socket 0: local for c0's NIC, remote for c1's *)
  Sthread.spawn s ~hw:2 (fun () ->
      let drain c =
        let got = ref 0 in
        while !got < 256 do
          let data = Net.recv net c ~max:4096 in
          if data = "" then ignore (Sthread.park_for 500) else got := !got + String.length data
        done
      in
      drain c0;
      drain c1;
      Net.reply net c0 (String.make 128 'r'));
  Sthread.run s;
  let st = Net.stats net in
  Alcotest.(check bool) "sockets >= 2 in this topology" true (topo.Topology.sockets >= 2);
  (* c0: 4 rx lines + 2 tx lines local; c1: 4 rx lines remote *)
  Alcotest.(check int) "local lines" 6 st.Net.local_lines;
  Alcotest.(check int) "remote lines" 4 st.Net.remote_lines;
  Alcotest.(check bool) "fraction in between" true
    (Net.local_fraction net > 0.5 && Net.local_fraction net < 1.0)

let test_refusal () =
  let s = mk () in
  let net = Net.create s () in
  let refused = ref 0 in
  let _c = Net.connect net ~nic:0 ~rx:(fun _ -> ()) ~on_refused:(fun () -> incr refused) () in
  let accepted = ref [] in
  Sthread.spawn s ~hw:0 (fun () ->
      let rec loop () =
        match Net.accept net with
        | Some c -> accepted := c :: !accepted; loop ()
        | None -> ()
      in
      loop ());
  (* close the listener before the SYN lands: the connection is refused and
     the blocked acceptor unblocks with None *)
  Sthread.at s ~time:100 (fun () -> Net.unlisten net);
  let _late = Net.connect net ~nic:0 ~rx:(fun _ -> ()) ~on_refused:(fun () -> incr refused) () in
  Sthread.run s;
  Alcotest.(check int) "none accepted" 0 (List.length !accepted);
  Alcotest.(check int) "both refused" 2 !refused;
  Alcotest.(check int) "stat counted" 2 (Net.stats net).Net.refused

(* --- server event loop -------------------------------------------------- *)

let test_server_end_to_end () =
  let s = mk () in
  let net = Net.create s () in
  let backend = Variants.stock s ~nclients:4 ~buckets:128 ~capacity:256 in
  backend.Variants.populate ~keys:[| 7; 8 |] ~val_lines:1;
  let srv = Server.start s net ~backend { Server.default_config with npollers = 4 } in
  let dec = Wire.decoder () in
  let responses = ref [] in
  let c =
    Net.connect net ~nic:0
      ~rx:(fun data ->
        Wire.feed dec data;
        let rec drain () =
          match Wire.next_response dec with
          | Wire.Need_more -> ()
          | Wire.Bad { msg; _ } -> Alcotest.failf "client got unparsable response: %s" msg
          | Wire.Item r ->
              responses := r :: !responses;
              drain ()
        in
        drain ())
      ()
  in
  let req r =
    let b = Buffer.create 64 in
    Wire.encode_request b r;
    Net.send net c (Buffer.contents b)
  in
  req (Wire.Get [ "7"; "8"; "9" ]);
  req (Wire.Set { key = "9"; flags = 0; exptime = 0; data = String.make 64 'v'; noreply = false });
  req (Wire.Get [ "9" ]);
  req (Wire.Delete { key = "7"; noreply = false });
  req (Wire.Delete { key = "7"; noreply = false });
  Net.send net c "gibberish\r\n";
  req (Wire.Get [ "8" ]);
  Sthread.at s ~time:200_000 (fun () -> Server.stop srv);
  Sthread.run s;
  let rs = List.rev !responses in
  let shape =
    List.map
      (function
        | Wire.Values vs -> Printf.sprintf "values:%d" (List.length vs)
        | Wire.Stored -> "stored"
        | Wire.Deleted -> "deleted"
        | Wire.Not_found -> "not_found"
        | Wire.Client_error _ -> "client_error"
        | Wire.Error -> "error"
        | _ -> "other")
      rs
  in
  Alcotest.(check (list string)) "response sequence"
    [ "values:2"; "stored"; "values:1"; "deleted"; "not_found"; "error"; "values:1" ]
    shape;
  let st = Server.stats srv in
  Alcotest.(check int) "requests" 6 st.Server.requests;
  Alcotest.(check int) "bad requests" 1 st.Server.bad_requests;
  Alcotest.(check int) "connections" 1 st.Server.conns;
  Alcotest.(check int) "hits" 4 st.Server.hits;
  Alcotest.(check bool) "pollers parked while idle" true (st.Server.parks > 0)

let test_server_connection_limit () =
  let s = mk () in
  let net = Net.create s () in
  let backend = Variants.stock s ~nclients:2 ~buckets:64 ~capacity:128 in
  let srv =
    Server.start s net ~backend { Server.default_config with npollers = 2; max_conns = 2 }
  in
  let refused = ref 0 in
  for _ = 1 to 4 do
    ignore (Net.connect net ~nic:0 ~rx:(fun _ -> ()) ~on_refused:(fun () -> incr refused) ())
  done;
  Sthread.at s ~time:100_000 (fun () -> Server.stop srv);
  Sthread.run s;
  Alcotest.(check int) "beyond the limit refused" 2 !refused;
  Alcotest.(check int) "under the limit kept" 2 (Server.stats srv).Server.conns

(* --- fleet: DPS backend, determinism ------------------------------------ *)

let fleet_once ~seed ~self_healing =
  let s = mk () in
  let net = Net.create s () in
  let backend =
    Variants.dps_parsec s ~self_healing ~nclients:40 ~locality_size:10 ~buckets:1024
      ~capacity:2048 ()
  in
  backend.Variants.populate ~keys:(Array.init 1024 Fun.id) ~val_lines:2;
  let srv = Server.start s net ~backend { Server.default_config with npollers = 40 } in
  let sp =
    Netload.spec ~nclients:200 ~nconns:16 ~set_pct:20 ~mget:2 ~key_range:1024 ~seed ()
  in
  let r = Netload.run s net sp ~duration:60_000 ~stop:(fun () -> Server.stop srv) () in
  (r, (Server.stats srv).Server.requests, Sthread.now s, Net.local_fraction net)

let test_connection_churn_soak () =
  (* Thousands of connect/request/disconnect cycles through a tiny
     connection limit: any leaked connection slot, ready-queue entry or
     poller registration shows up as a refusal, a non-zero pending count,
     or a hang (the scheduler would never quiesce). *)
  let s = mk () in
  let net = Net.create s () in
  let backend = Variants.stock s ~nclients:4 ~buckets:128 ~capacity:256 in
  backend.Variants.populate ~keys:[| 1 |] ~val_lines:1;
  (* headroom over the loop count: a client close is processed by the
     server one link delay later, so up to 2x[loops] can be counted at
     once — but a real leak accumulates over the 2000 cycles and blows
     through any fixed limit *)
  let max_conns = 32 in
  let srv =
    Server.start s net ~backend { Server.default_config with npollers = 4; max_conns }
  in
  let loops = 8 in
  let per_loop = 250 in
  let completed = ref 0 and finished_loops = ref 0 in
  let rec cycle loop k =
    if k >= per_loop then begin
      incr finished_loops;
      (* grace before stop, so the final closes are serviced too *)
      if !finished_loops = loops then
        Sthread.at s ~time:(Sthread.now s + 20_000) (fun () -> Server.stop srv)
    end
    else begin
      let dec = Wire.decoder () in
      let conn = ref None in
      let c =
        Net.connect net
          ~nic:(loop mod Net.nic_count net)
          ~rx:(fun data ->
            Wire.feed dec data;
            match Wire.next_response dec with
            | Wire.Item _ ->
                incr completed;
                (match !conn with
                | Some c ->
                    conn := None;
                    Net.close net c;
                    cycle loop (k + 1)
                | None -> ())
            | Wire.Need_more -> ()
            | Wire.Bad { msg; _ } -> Alcotest.failf "soak: bad response: %s" msg)
          ~on_refused:(fun () -> Alcotest.fail "soak: connection refused (slot leak?)")
          ()
      in
      conn := Some c;
      let b = Buffer.create 32 in
      Wire.encode_request b (Wire.Get [ "1" ]);
      Net.send net c (Buffer.contents b)
    end
  in
  for loop = 0 to loops - 1 do
    cycle loop 0
  done;
  Sthread.run s;
  Alcotest.(check int) "every cycle completed" (loops * per_loop) !completed;
  Alcotest.(check int) "accepted = churned connections" (loops * per_loop)
    (Server.stats srv).Server.conns;
  Alcotest.(check int) "no refusals through the churn" 0 (Net.stats net).Net.refused;
  Alcotest.(check int) "every close released its slot" (loops * per_loop)
    (Server.stats srv).Server.closed;
  Alcotest.(check int) "no pending ready-queue entries" 0 (Server.pending_conns srv)

let test_fleet_dps_deterministic () =
  let (r1, reqs1, end1, loc1) = fleet_once ~seed:7L ~self_healing:false in
  let (r2, reqs2, end2, loc2) = fleet_once ~seed:7L ~self_healing:false in
  Alcotest.(check bool) "fleet made progress" true (r1.Netload.completed > 100);
  Alcotest.(check int) "no client-visible errors" 0 r1.Netload.errors;
  Alcotest.(check bool) "placement keeps traffic local" true (loc1 >= 0.9);
  Alcotest.(check bool) "identical results" true (r1 = r2);
  Alcotest.(check int) "identical server requests" reqs1 reqs2;
  Alcotest.(check int) "identical end of time" end1 end2;
  Alcotest.(check bool) "identical locality" true (loc1 = loc2)

let test_fleet_self_healing_path () =
  (* PR 1's self-healing delegation stays live under the event-loop server *)
  let r, reqs, _, _ = fleet_once ~seed:9L ~self_healing:true in
  Alcotest.(check bool) "progress with self-healing on" true (r.Netload.completed > 100);
  Alcotest.(check int) "no errors" 0 r.Netload.errors;
  Alcotest.(check bool) "server agrees" true (reqs >= r.Netload.completed)

let test_fleet_open_loop () =
  let s = mk () in
  let net = Net.create s () in
  let backend = Variants.stock s ~nclients:8 ~buckets:512 ~capacity:1024 in
  backend.Variants.populate ~keys:(Array.init 512 Fun.id) ~val_lines:1;
  let srv = Server.start s net ~backend { Server.default_config with npollers = 8 } in
  let sp =
    Netload.spec ~nclients:100 ~nconns:8 ~set_pct:10 ~key_range:512
      ~mode:(Netload.Open { rate_mops = 5.0 }) ~seed:3L ()
  in
  let r = Netload.run s net sp ~duration:60_000 ~stop:(fun () -> Server.stop srv) () in
  Alcotest.(check bool) "poisson arrivals served" true (r.Netload.completed > 20);
  Alcotest.(check int) "no errors" 0 r.Netload.errors

let suite =
  [
    ("request round-trip under packetization", `Quick, test_request_roundtrip);
    ("response round-trip under packetization", `Quick, test_response_roundtrip);
    ("truncation never misparses", `Quick, test_truncation_safe);
    ("malformed input rejected", `Quick, test_malformed_rejected);
    ("oversized set resynchronizes", `Quick, test_oversized_set_resync);
    ("garbage bytes resynchronize", `Quick, test_garbage_resync);
    ("truncated multiget response", `Quick, test_truncated_multiget_response);
    ("byte queue", `Quick, test_byteq);
    ("link timing", `Quick, test_link_timing);
    ("backpressure", `Quick, test_backpressure);
    ("locality tally", `Quick, test_locality_tally);
    ("refusal and unlisten", `Quick, test_refusal);
    ("server end to end", `Quick, test_server_end_to_end);
    ("server connection limit", `Quick, test_server_connection_limit);
    ("connection churn soak", `Quick, test_connection_churn_soak);
    ("DPS fleet deterministic", `Quick, test_fleet_dps_deterministic);
    ("self-healing fleet", `Quick, test_fleet_self_healing_path);
    ("open-loop fleet", `Quick, test_fleet_open_loop);
  ]

(* Tests for lib/check, and — through it — for everything else: schedule
   exploration with seeded replay and shrinking, the WGL linearizability
   oracle against sequential reference models, and the happens-before race
   detector, swept over every lib/ds implementation and the DPS runtime.

   The mutation self-tests flip the test-only failpoints in ll_michael and
   dps and assert the checkers catch the planted bugs within a bounded
   schedule budget, with bit-for-bit replay of the minimized schedule. *)

module Machine = Dps_machine.Machine
module Sthread = Dps_sthread.Sthread
module Alloc = Dps_sthread.Alloc
module Prng = Dps_simcore.Prng
module Schedule = Dps_check.Schedule
module Lin = Dps_check.Lin
module Race = Dps_check.Race
module Check = Dps_check.Check
module Faults = Dps_faults

module type SET = Dps_ds.Set_intf.SET

let sets : (module SET) list =
  [
    (module Dps_ds.Ll_coarse);
    (module Dps_ds.Ll_lazy);
    (module Dps_ds.Ll_michael);
    (module Dps_ds.Ll_optik);
    (module Dps_ds.Rlu_list);
    (module Dps_ds.Bst_tk);
    (module Dps_ds.Bst_ellen);
    (module Dps_ds.Bst_internal_lf);
    (module Dps_ds.Bst_bronson);
    (module Dps_ds.Sl_herlihy);
    (module Dps_ds.Sl_fraser);
    (module Dps_ds.Hashtable);
    (module Dps_ds.Btree_blink);
    (module Dps_parsec.Parsec_list);
  ]

(* --- linearizability oracle: hand-built histories --- *)

let ev id tid key op res inv ret = { Lin.id; tid; key; op; res; inv; ret }

let test_wgl_accepts_reordering () =
  (* lookup=absent overlapping an insert: legal iff the lookup linearizes
     first, which WGL must find *)
  let h =
    [ ev 0 0 7 Lin.Lookup Lin.absent 0 5; ev 1 1 7 (Lin.Insert 70) 1 1 6 ]
  in
  match Lin.check (module Lin.Set_spec) h with
  | Lin.Linearizable (Some 70) -> ()
  | Lin.Linearizable _ -> Alcotest.fail "wrong witness state"
  | Lin.Nonlinearizable m -> Alcotest.fail m
  | Lin.Exhausted -> Alcotest.fail "exhausted"

let test_wgl_rejects_lost_update () =
  (* two non-overlapping successful inserts of the same key: the second
     must have returned false *)
  let h = [ ev 0 0 7 (Lin.Insert 70) 1 0 1; ev 1 1 7 (Lin.Insert 71) 1 2 3 ] in
  match Lin.check (module Lin.Set_spec) h with
  | Lin.Nonlinearizable _ -> ()
  | Lin.Linearizable _ -> Alcotest.fail "accepted a lost update"
  | Lin.Exhausted -> Alcotest.fail "exhausted"

let test_wgl_queue_order () =
  let enq id v inv ret = ev id 0 0 (Lin.Push v) 0 inv ret in
  let deq id v inv ret = ev id 0 0 Lin.Pop v inv ret in
  (match Lin.check (module Lin.Queue_spec) [ enq 0 1 0 1; enq 1 2 2 3; deq 2 1 4 5 ] with
  | Lin.Linearizable _ -> ()
  | _ -> Alcotest.fail "rejected FIFO order");
  match Lin.check (module Lin.Queue_spec) [ enq 0 1 0 1; enq 1 2 2 3; deq 2 2 4 5 ] with
  | Lin.Nonlinearizable _ -> ()
  | _ -> Alcotest.fail "accepted LIFO behaviour from a queue"

let test_wgl_budget_exhaustion () =
  let h = [ ev 0 0 0 (Lin.Push 1) 0 0 3; ev 1 1 0 (Lin.Push 2) 0 1 4 ] in
  match Lin.check (module Lin.Queue_spec) ~budget:0 h with
  | Lin.Exhausted -> ()
  | _ -> Alcotest.fail "budget not enforced"

let test_wgl_partitioned () =
  (* a violation on one key is found even among many other clean keys *)
  let h =
    List.concat_map
      (fun k -> [ ev (2 * k) 0 k (Lin.Insert k) 1 (4 * k) ((4 * k) + 1) ])
      [ 1; 2; 3; 4 ]
    @ [ ev 100 1 3 (Lin.Insert 3) 1 100 101 ]
  in
  match Lin.check_partitioned (module Lin.Set_spec) h with
  | `Violation m ->
      let contains s sub =
        let n = String.length s and k = String.length sub in
        let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "names the key" true (contains m "key 3")
  | `Ok _ -> Alcotest.fail "missed the per-key violation"
  | `Exhausted _ -> Alcotest.fail "exhausted"

(* --- race detector: synthetic event streams --- *)

let feed evs =
  let r = Race.create () in
  List.iter (Race.on_event r) evs;
  r

let acc tid cls addr = Sthread.T_access { tid; cls; addr }

let test_race_unsynchronized () =
  let r = feed [ acc 0 Sthread.Store 100; acc 1 Sthread.Store 100 ] in
  Alcotest.(check int) "write/write race" 1 (Race.race_count r);
  let r = feed [ acc 0 Sthread.Store 100; acc 1 Sthread.Load 100 ] in
  Alcotest.(check int) "read/write race" 1 (Race.race_count r)

let test_race_message_passing () =
  (* data store, releasing flag store || flag load, data load: the
     reads-from edge on the flag line orders the data accesses *)
  let r =
    feed
      [
        acc 0 Sthread.Store 100;
        acc 0 Sthread.Release_store 200;
        acc 1 Sthread.Load 200;
        acc 1 Sthread.Load 100;
        acc 1 Sthread.Store 100;
      ]
  in
  Alcotest.(check int) "publication orders data" 0 (Race.race_count r)

let test_race_rmw_is_sync () =
  (* lines maintained only by rmw never race, and rmw carries edges *)
  let r =
    feed
      [
        acc 0 Sthread.Store 100;
        acc 0 Sthread.Atomic 200;
        acc 1 Sthread.Atomic 200;
        acc 1 Sthread.Store 100;
      ]
  in
  Alcotest.(check int) "rmw chain orders data" 0 (Race.race_count r)

let test_race_racy_read_suppressed () =
  let r = feed [ acc 0 Sthread.Store 100; acc 1 Sthread.Racy_load 100 ] in
  Alcotest.(check int) "annotated read not reported" 0 (Race.race_count r);
  Alcotest.(check int) "but counted" 1 (Race.racy_reads r)

let test_race_spawn_and_unpark_edges () =
  let r =
    feed
      [
        acc 0 Sthread.Store 100;
        Sthread.T_spawn { parent = Some 0; child = 1 };
        acc 1 Sthread.Store 100;
      ]
  in
  Alcotest.(check int) "spawn edge" 0 (Race.race_count r);
  let r =
    feed
      [
        acc 0 Sthread.Store 100;
        Sthread.T_unpark { src = Some 0; dst = 1 };
        Sthread.T_wake { tid = 1 };
        acc 1 Sthread.Store 100;
      ]
  in
  Alcotest.(check int) "unpark edge" 0 (Race.race_count r);
  let r =
    feed
      [
        acc 0 Sthread.Store 100;
        Sthread.T_wake { tid = 1 };  (* no matching unpark: no edge *)
        acc 1 Sthread.Store 100;
      ]
  in
  Alcotest.(check int) "wake without unpark is not an edge" 1 (Race.race_count r)

(* --- schedule: traces, replay, shrinking --- *)

let test_trace_round_trip () =
  let tr = [ { Schedule.point = 3; delay = 40 }; { Schedule.point = 17; delay = 999 } ] in
  Alcotest.(check bool) "round trip" true
    (Schedule.trace_of_string (Schedule.trace_to_string tr) = tr);
  Alcotest.(check bool) "empty" true (Schedule.trace_of_string "" = [])

let test_shrink_to_culprit () =
  let tr = List.init 8 (fun i -> { Schedule.point = i * 5; delay = 10 }) in
  let still_fails tr = List.exists (fun (d : Schedule.decision) -> d.point = 15) tr in
  let min = Schedule.shrink ~max_tries:200 ~still_fails tr in
  Alcotest.(check int) "single culprit survives" 1 (List.length min);
  Alcotest.(check int) "the right one" 15 (List.hd min).Schedule.point

(* A small real scenario: end time is a fingerprint of the interleaving. *)
let fingerprint ctl =
  let m = Machine.create ~seed:7L Machine.config_default in
  let s = Sthread.create m in
  Schedule.attach ctl s;
  let alloc = Alloc.create m ~cold:Alloc.Spread in
  let lines = Array.init 4 (fun _ -> Alloc.line alloc) in
  for tid = 0 to 3 do
    Sthread.spawn s ~hw:(tid * 16) (fun () ->
        for i = 0 to 19 do
          Dps_sthread.Simops.rmw lines.((tid + i) mod 4)
        done)
  done;
  Sthread.run s;
  Sthread.now s

let test_replay_bit_for_bit () =
  let ctl = Schedule.make ~seed:99L (Schedule.Random_preempt { prob = 0.2; max_delay = 500 }) in
  let t1 = fingerprint ctl in
  let tr = Schedule.trace ctl in
  Alcotest.(check bool) "perturbations recorded" true (tr <> []);
  let ctl2 = Schedule.make ~seed:0L (Schedule.Replay tr) in
  let t2 = fingerprint ctl2 in
  Alcotest.(check int) "replayed end time identical" t1 t2;
  Alcotest.(check bool) "replay re-records the same trace" true (Schedule.trace ctl2 = tr)

(* --- differential sweeps: every set vs the sequential model --- *)

(* Concurrent keyed ops through the history recorder, then at quiescence a
   recorded audit lookup per key — sealing the final state so the witness
   linearization must agree with the structure's actual contents. *)
let set_scenario ?(threads = 4) ?(per = 6) ?(key_range = 4) (module S : SET) ctl =
  Check.with_sim ctl (fun sim ->
      let t = S.create sim.Check.alloc in
      let r = Lin.recorder () in
      for tid = 0 to threads - 1 do
        Sthread.spawn sim.Check.sched ~hw:(tid * 8 mod 80) (fun () ->
            let p = Sthread.self_prng () in
            for _ = 1 to per do
              let key = 1 + Prng.int p key_range in
              match Prng.int p 3 with
              | 0 ->
                  ignore
                    (Lin.record r ~key (Lin.Insert key) (fun () ->
                         if S.insert t ~key ~value:key then 1 else 0))
              | 1 ->
                  ignore (Lin.record r ~key Lin.Remove (fun () -> if S.remove t key then 1 else 0))
              | _ ->
                  ignore
                    (Lin.record r ~key Lin.Lookup (fun () ->
                         match S.lookup t key with Some v -> v | None -> Lin.absent))
            done)
      done;
      Sthread.run sim.Check.sched;
      match S.check_invariants t with
      | exception Failure m -> Some ("invariant: " ^ m)
      | () -> (
          for key = 1 to key_range do
            ignore
              (Lin.record r ~key Lin.Lookup (fun () ->
                   match S.lookup t key with Some v -> v | None -> Lin.absent))
          done;
          match Lin.check_partitioned (module Lin.Set_spec) (Lin.events r) with
          | `Violation m -> Some m
          | `Exhausted key -> Some (Printf.sprintf "WGL budget exhausted on key %d" key)
          | `Ok _ -> None))

let sweep_set (module S : SET) () =
  match Check.explore ~name:S.name ~budget:30 (set_scenario (module S)) with
  | Ok () -> ()
  | Error f -> Alcotest.fail f.Check.message

(* --- queue / stack: strict FIFO / LIFO specs --- *)

let seq_scenario ~name:_ ~(push : int -> unit) ~(pop : unit -> int option) record_ops sim_sched r
    =
  let threads = 3 and per = 4 in
  for tid = 0 to threads - 1 do
    Sthread.spawn sim_sched ~hw:(tid * 16 mod 80) (fun () ->
        for i = 0 to per - 1 do
          let v = (100 * (tid + 1)) + i in
          ignore (Lin.record r (Lin.Push v) (fun () -> push v; 0));
          if i mod 2 = 1 then
            ignore
              (Lin.record r Lin.Pop (fun () ->
                   match pop () with Some x -> x | None -> Lin.absent))
        done)
  done;
  Sthread.run sim_sched;
  (* drain at quiescence: seals the final state into the history *)
  let rec drain () =
    let got = Lin.record r Lin.Pop (fun () -> match pop () with Some x -> x | None -> Lin.absent) in
    if got <> Lin.absent then drain ()
  in
  drain ();
  record_ops ()

let queue_scenario ctl =
  Check.with_sim ctl (fun sim ->
      let q = Dps_ds.Queue_ms.create sim.Check.alloc in
      let r = Lin.recorder () in
      seq_scenario ~name:"queue"
        ~push:(fun v -> Dps_ds.Queue_ms.enqueue q v)
        ~pop:(fun () -> Dps_ds.Queue_ms.dequeue q)
        (fun () -> Dps_ds.Queue_ms.check_invariants q)
        sim.Check.sched r;
      match Lin.check (module Lin.Queue_spec) (Lin.events r) with
      | Lin.Linearizable _ -> None
      | Lin.Nonlinearizable m -> Some m
      | Lin.Exhausted -> Some "WGL budget exhausted")

let stack_scenario ctl =
  Check.with_sim ctl (fun sim ->
      let s = Dps_ds.Stack_treiber.create sim.Check.alloc in
      let r = Lin.recorder () in
      seq_scenario ~name:"stack"
        ~push:(fun v -> Dps_ds.Stack_treiber.push s v)
        ~pop:(fun () -> Dps_ds.Stack_treiber.pop s)
        (fun () -> Dps_ds.Stack_treiber.check_invariants s)
        sim.Check.sched r;
      match Lin.check (module Lin.Stack_spec) (Lin.events r) with
      | Lin.Linearizable _ -> None
      | Lin.Nonlinearizable m -> Some m
      | Lin.Exhausted -> Some "WGL budget exhausted")

(* Lotan–Shavit remove_min is not linearizable as a priority queue (the
   paper's lf-s is quiescently consistent): check it as a bag — exact
   element accounting, any-element removal. *)
let pq_scenario ctl =
  Check.with_sim ctl (fun sim ->
      let pq = Dps_ds.Pq_shavit.create sim.Check.alloc in
      let r = Lin.recorder () in
      seq_scenario ~name:"pq"
        ~push:(fun v -> ignore (Dps_ds.Pq_shavit.insert pq ~key:v ~value:v))
        ~pop:(fun () ->
          match Dps_ds.Pq_shavit.remove_min pq with Some (k, _) -> Some k | None -> None)
        (fun () -> Dps_ds.Pq_shavit.check_invariants pq)
        sim.Check.sched r;
      match Lin.check (module Lin.Bag_spec) (Lin.events r) with
      | Lin.Linearizable _ -> None
      | Lin.Nonlinearizable m -> Some m
      | Lin.Exhausted -> Some "WGL budget exhausted")

let sweep_simple name scenario () =
  match Check.explore ~name ~budget:30 scenario with
  | Ok () -> ()
  | Error f -> Alcotest.fail f.Check.message

(* --- DPS-wrapped adapters: relaxed-bag semantics + exact accounting --- *)

let multiset l = List.sort compare l

(* Run [body c push pop] on [nclients] attached DPS clients; afterwards
   check (a) the recorded history against the relaxed bag spec and (b)
   exact accounting: pushed = popped + remaining, as multisets. *)
let adapter_scenario ~mk ~remaining body ctl =
  Check.with_sim ctl (fun sim ->
      let nclients = 6 in
      let dps, push, pop = mk sim in
      let r = Lin.recorder () in
      let pushed = ref [] in
      for c = 0 to nclients - 1 do
        Sthread.spawn sim.Check.sched ~hw:(Dps.client_hw dps c) (fun () ->
            Dps.attach dps ~client:c;
            body c
              (fun v ->
                pushed := v :: !pushed;
                ignore (Lin.record r (Lin.Push v) (fun () -> push v; 0)))
              (fun () ->
                ignore
                  (Lin.record r Lin.Pop (fun () ->
                       match pop () with Some x -> x | None -> Lin.absent)));
            Dps.client_done dps;
            Dps.drain dps)
      done;
      Sthread.run sim.Check.sched;
      let popped =
        List.filter_map
          (fun (e : Lin.seq_op Lin.event) ->
            match e.Lin.op with Lin.Pop when e.Lin.res <> Lin.absent -> Some e.Lin.res | _ -> None)
          (Lin.events r)
      in
      let rem = remaining dps in
      if multiset !pushed <> multiset (popped @ rem) then
        Some
          (Printf.sprintf "element accounting broken: %d pushed, %d popped, %d remaining"
             (List.length !pushed) (List.length popped) (List.length rem))
      else
        match Lin.check (module Lin.Bag_relaxed_spec) (Lin.events r) with
        | Lin.Linearizable _ -> None
        | Lin.Nonlinearizable m -> Some m
        | Lin.Exhausted -> None (* accounting above is the binding check *))

let adapter_body c push pop =
  for i = 0 to 2 do
    push ((100 * (c + 1)) + i);
    if i = 1 then pop ()
  done

let dps_stack_scenario =
  adapter_scenario
    ~mk:(fun sim ->
      let dps =
        Dps.create sim.Check.sched ~nclients:6 ~locality_size:3
          ~hash:(fun k -> k)
          ~mk_data:(fun (info : Dps.partition_info) -> Dps_ds.Stack_treiber.create info.Dps.alloc)
          ()
      in
      (dps, Dps_adapters.Stack.push dps, fun () -> Dps_adapters.Stack.pop dps))
    ~remaining:(fun dps ->
      List.concat
        (List.init (Dps.npartitions dps) (fun pid ->
             Dps_ds.Stack_treiber.to_list (Dps.partition_data dps pid))))
    adapter_body

let dps_queue_scenario =
  adapter_scenario
    ~mk:(fun sim ->
      let dps =
        Dps.create sim.Check.sched ~nclients:6 ~locality_size:3
          ~hash:(fun k -> k)
          ~mk_data:(fun (info : Dps.partition_info) -> Dps_ds.Queue_ms.create info.Dps.alloc)
          ()
      in
      (dps, Dps_adapters.Queue.enqueue dps, fun () -> Dps_adapters.Queue.dequeue dps))
    ~remaining:(fun dps ->
      List.concat
        (List.init (Dps.npartitions dps) (fun pid ->
             Dps_ds.Queue_ms.to_list (Dps.partition_data dps pid))))
    adapter_body

let dps_pq_scenario =
  adapter_scenario
    ~mk:(fun sim ->
      let dps =
        Dps.create sim.Check.sched ~nclients:6 ~locality_size:3
          ~hash:(fun k -> k)
          ~mk_data:(fun (info : Dps.partition_info) -> Dps_ds.Pq_shavit.create info.Dps.alloc)
          ()
      in
      ( dps,
        (fun v -> ignore (Dps_adapters.Pq.insert dps ~key:v ~value:v)),
        fun () ->
          match Dps_adapters.Pq.remove_min dps with Some (k, _) -> Some k | None -> None ))
    ~remaining:(fun dps ->
      List.concat
        (List.init (Dps.npartitions dps) (fun pid ->
             List.map fst (Dps_ds.Pq_shavit.to_list (Dps.partition_data dps pid)))))
    adapter_body

(* --- DPS delegation: exactly-once under explored schedules --- *)

type counters = { cells : int array }

let mk_counter_dps ?self_healing ?await_timeout sim ~nclients ~locality_size =
  Dps.create sim.Check.sched ~nclients ~locality_size
    ~hash:(fun k -> k)
    ?self_healing ?await_timeout
    ~mk_data:(fun (_ : Dps.partition_info) -> { cells = Array.make 32 0 })
    ()

let applied dps c =
  let total = ref 0 in
  for pid = 0 to Dps.npartitions dps - 1 do
    total := !total + (Dps.partition_data dps pid).cells.(c)
  done;
  !total

let dps_exactly_once_scenario ctl =
  Check.with_sim ctl (fun sim ->
      let nclients = 6 and per = 8 in
      let dps = mk_counter_dps sim ~nclients ~locality_size:3 in
      let nparts = Dps.npartitions dps in
      let acked = Array.make nclients 0 in
      for c = 0 to nclients - 1 do
        Sthread.spawn sim.Check.sched ~hw:(Dps.client_hw dps c) (fun () ->
            Dps.attach dps ~client:c;
            for i = 1 to per do
              ignore
                (Dps.call dps ~key:(i mod nparts) (fun d ->
                     d.cells.(c) <- d.cells.(c) + 1;
                     d.cells.(c)));
              acked.(c) <- acked.(c) + 1
            done;
            Dps.client_done dps;
            Dps.drain dps)
      done;
      Sthread.run sim.Check.sched;
      let bad = ref None in
      for c = 0 to nclients - 1 do
        let a = applied dps c in
        if a <> acked.(c) && !bad = None then
          bad := Some (Printf.sprintf "client %d: %d acked but %d applied" c acked.(c) a)
      done;
      !bad)

(* Self-healing: one client crashes mid-issue; survivors' operations must
   still apply exactly once, and the victim's at most once extra. *)
let dps_takeover_scenario ctl =
  Check.with_sim ctl (fun sim ->
      let nclients = 6 and per = 6 and victim = 1 in
      let dps = mk_counter_dps sim ~nclients ~locality_size:3 ~self_healing:true
          ~await_timeout:15_000 in
      let nparts = Dps.npartitions dps in
      let plan = Faults.install sim.Check.sched ~seed:5L (Faults.spec ()) in
      Faults.schedule_crash plan ~tid:victim ~at:5_000;
      let acked = Array.make nclients 0 in
      for c = 0 to nclients - 1 do
        Sthread.spawn sim.Check.sched ~hw:(Dps.client_hw dps c) (fun () ->
            Dps.attach dps ~client:c;
            for i = 1 to per do
              ignore
                (Dps.call dps ~key:(i mod nparts) (fun d ->
                     d.cells.(c) <- d.cells.(c) + 1;
                     d.cells.(c)));
              acked.(c) <- acked.(c) + 1
            done;
            Dps.client_done dps;
            Dps.drain dps)
      done;
      Sthread.run sim.Check.sched;
      let bad = ref None in
      for c = 0 to nclients - 1 do
        let a = applied dps c in
        if c = victim then begin
          if a < acked.(c) || a > acked.(c) + 1 then
            bad :=
              Some (Printf.sprintf "victim: %d acked but %d applied" acked.(c) a)
        end
        else if a <> acked.(c) && !bad = None then
          bad := Some (Printf.sprintf "client %d: %d acked but %d applied" c acked.(c) a)
      done;
      !bad)

(* --- mutation self-tests: the planted bugs must be caught and replay --- *)

let with_flag flag f =
  flag := true;
  Fun.protect ~finally:(fun () -> flag := false) f

let assert_caught_and_replays name scenario =
  match Check.explore ~name ~budget:150 scenario with
  | Ok () -> Alcotest.failf "%s: planted bug survived the schedule budget" name
  | Error f ->
      Alcotest.(check bool)
        (name ^ " minimized no larger than full") true
        (List.length f.Check.trace <= List.length f.Check.full_trace);
      let replay () = scenario (Schedule.make ~seed:0L (Schedule.Replay f.Check.trace)) in
      (match (replay (), replay ()) with
      | Some m1, Some m2 ->
          Alcotest.(check string) (name ^ " bit-for-bit replay") m1 m2
      | _ -> Alcotest.failf "%s: minimized trace did not replay the failure" name)

let test_mutation_dropped_cas_retry () =
  with_flag Dps_ds.Ll_michael.failpoint_drop_cas_retry (fun () ->
      assert_caught_and_replays "lf-m dropped CAS retry"
        (set_scenario ~threads:6 ~per:8 ~key_range:3 (module Dps_ds.Ll_michael)))

let test_mutation_skipped_completion_fence () =
  with_flag Dps.failpoint_skip_completion_fence (fun () ->
      assert_caught_and_replays "dps skipped completion fence" dps_exactly_once_scenario)

(* --- suite --- *)

let set_cases =
  List.map
    (fun (module S : SET) ->
      (S.name ^ " linearizable under explored schedules", `Quick, sweep_set (module S)))
    sets

let suite =
  [
    ("wgl accepts reordering", `Quick, test_wgl_accepts_reordering);
    ("wgl rejects lost update", `Quick, test_wgl_rejects_lost_update);
    ("wgl queue order", `Quick, test_wgl_queue_order);
    ("wgl budget exhaustion", `Quick, test_wgl_budget_exhaustion);
    ("wgl per-key partitioning", `Quick, test_wgl_partitioned);
    ("race: unsynchronized accesses", `Quick, test_race_unsynchronized);
    ("race: message passing is ordered", `Quick, test_race_message_passing);
    ("race: rmw chains are sync", `Quick, test_race_rmw_is_sync);
    ("race: read_racy suppressed", `Quick, test_race_racy_read_suppressed);
    ("race: spawn and unpark edges", `Quick, test_race_spawn_and_unpark_edges);
    ("schedule trace round trip", `Quick, test_trace_round_trip);
    ("schedule shrink to culprit", `Quick, test_shrink_to_culprit);
    ("schedule replay bit-for-bit", `Quick, test_replay_bit_for_bit);
  ]
  @ set_cases
  @ [
      ("ms queue strict FIFO under schedules", `Quick, sweep_simple "queue_ms" queue_scenario);
      ( "treiber stack strict LIFO under schedules",
        `Quick,
        sweep_simple "stack_treiber" stack_scenario );
      ("shavit pq bag semantics under schedules", `Quick, sweep_simple "pq_shavit" pq_scenario);
      ("dps stack adapter relaxed bag", `Quick, sweep_simple "dps_stack" dps_stack_scenario);
      ("dps queue adapter relaxed bag", `Quick, sweep_simple "dps_queue" dps_queue_scenario);
      ("dps pq adapter relaxed bag", `Quick, sweep_simple "dps_pq" dps_pq_scenario);
      ( "dps exactly-once delegation",
        `Quick,
        sweep_simple "dps_exactly_once" dps_exactly_once_scenario );
      ("dps takeover after crash", `Quick, sweep_simple "dps_takeover" dps_takeover_scenario);
      ("mutation: dropped CAS retry caught", `Quick, test_mutation_dropped_cas_retry);
      ("mutation: skipped completion fence caught", `Quick, test_mutation_skipped_completion_fence);
    ]

(* Compare fresh bench JSON output against committed baselines.

   The CI bench-regress job runs the quick bench suite, then:

     bench_diff --baseline-dir bench/baselines --fresh-dir . \
       --names fig6a,table1,batch --tolerance 0.10 --report diff.md

   Exit status 1 when any compared file has a hard failure (throughput
   drop beyond tolerance, or a determinism mismatch in the point set);
   warnings (improvements, non-throughput drift) never fail the job but
   land in the report. See Dps_obs.Regress for the policy. *)

module Regress = Dps_obs.Regress

let () =
  let baseline_dir = ref "bench/baselines" in
  let fresh_dir = ref "." in
  let names = ref [] in
  let tolerance = ref 0.10 in
  let report_path = ref "" in
  let specs =
    [
      ( "--baseline-dir",
        Arg.Set_string baseline_dir,
        "DIR committed baselines (default bench/baselines)" );
      ("--fresh-dir", Arg.Set_string fresh_dir, "DIR freshly generated BENCH_*.json (default .)");
      ( "--names",
        Arg.String (fun s -> names := String.split_on_char ',' s),
        "a,b,c bench names to compare (required)" );
      ("--tolerance", Arg.Set_float tolerance, "T relative throughput tolerance (default 0.10)");
      ("--report", Arg.Set_string report_path, "FILE write a markdown report here");
    ]
  in
  let usage = "bench_diff --names fig6a,table1 [options]" in
  Arg.parse specs (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  if !names = [] then begin
    prerr_endline "bench_diff: --names is required";
    Arg.usage specs usage;
    exit 2
  end;
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Format.fprintf ppf "# Bench regression report@.@.";
  let failed = ref false in
  List.iter
    (fun name ->
      let file d = Filename.concat d (Printf.sprintf "BENCH_%s.json" name) in
      match (Regress.load_file (file !baseline_dir), Regress.load_file (file !fresh_dir)) with
      | Error _, Ok _ when not (Sys.file_exists (file !baseline_dir)) ->
          (* A brand-new figure has no committed baseline yet; that is a
             bootstrap step, not a regression. *)
          Format.fprintf ppf "## %s@.- warn: no committed baseline yet@.@." name;
          Printf.printf
            "[%s] warn: no committed baseline; commit this baseline:\n\
            \  cp %s %s\n\
             %!"
            name (file !fresh_dir) (file !baseline_dir)
      | Error e, _ | _, Error e ->
          failed := true;
          Format.fprintf ppf "## %s@.- FAIL: %s@.@." name e;
          Printf.eprintf "[%s] FAIL: %s\n%!" name e
      | Ok baseline, Ok fresh ->
          let v = Regress.compare ~tolerance:!tolerance ~baseline ~fresh in
          if v.Regress.failures <> [] then failed := true;
          Regress.report ppf ~name ~tolerance:!tolerance v;
          Printf.printf "[%s] %d points, %d failures, %d warnings\n%!" name v.Regress.compared
            (List.length v.Regress.failures)
            (List.length v.Regress.warnings);
          (match Regress.summary fresh with
          | Some line ->
              Format.fprintf ppf "- summary: %s@.@." line;
              Printf.printf "[%s] %s\n%!" name line
          | None -> ());
          List.iter (fun f -> Printf.eprintf "[%s] FAIL: %s\n%!" name f) v.Regress.failures;
          List.iter (fun w -> Printf.printf "[%s] warn: %s\n%!" name w) v.Regress.warnings)
    !names;
  Format.pp_print_flush ppf ();
  if !report_path <> "" then
    Out_channel.with_open_text !report_path (fun oc -> output_string oc (Buffer.contents buf));
  if !failed then begin
    print_endline "bench_diff: REGRESSION DETECTED";
    exit 1
  end
  else print_endline "bench_diff: all benches within tolerance"

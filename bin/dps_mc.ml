(* dps-mc: run one memcached benchmark point from the command line.

     dune exec bin/dps_mc.exe -- --variant dps-parsec --ycsb b \
       --threads 80 --items 65536 --value-bytes 128

   Drives any of the five §5.3 memcached variants with a YCSB workload
   preset (A/B/C/D/F) or an explicit set ratio, printing throughput, hit
   behaviour and tail latency. *)

open Cmdliner
module Machine = Dps_machine.Machine
module Sthread = Dps_sthread.Sthread
module Prng = Dps_simcore.Prng
module Keydist = Dps_workload.Keydist
module Ycsb = Dps_workload.Ycsb
module Driver = Dps_workload.Driver
module Variants = Dps_memcached.Variants

type which = Stock | Parsec | Ffwd | Dps_v | Dps_parsec

let run_mc variant ycsb threads items value_bytes set_pct duration scaled seed =
  let config = if scaled then Machine.config_scaled () else Machine.config_default in
  let m = Machine.create ~seed config in
  let sched = Sthread.create m in
  let buckets = max 256 items and capacity = 2 * items in
  let v =
    match variant with
    | Stock -> Variants.stock sched ~nclients:threads ~buckets ~capacity
    | Parsec -> Variants.parsec sched ~nclients:threads ~buckets ~capacity
    | Ffwd -> Variants.ffwd_mc sched ~nclients:threads ~buckets ~capacity
    | Dps_v -> Variants.dps_mc sched ~nclients:threads ~locality_size:10 ~buckets ~capacity ()
    | Dps_parsec ->
        Variants.dps_parsec sched ~nclients:threads ~locality_size:10 ~buckets ~capacity ()
  in
  let val_lines = max 1 ((value_bytes + 63) / 64) in
  v.Variants.populate ~keys:(Array.init items Fun.id) ~val_lines;
  let gen =
    match ycsb with
    | Some w -> `Ycsb (Ycsb.make w ~items)
    | None -> `Ratio (Keydist.zipf ~range:items ())
  in
  let hits = ref 0 and gets = ref 0 in
  let op ~tid:_ ~step:_ =
    let p = Sthread.self_prng () in
    match gen with
    | `Ycsb g -> (
        match Ycsb.next g p with
        | Ycsb.Read, key ->
            incr gets;
            if v.Variants.get key then incr hits
        | (Ycsb.Update | Ycsb.Insert), key -> v.Variants.set ~key ~val_lines
        | Ycsb.Read_modify_write, key ->
            incr gets;
            if v.Variants.get key then incr hits;
            v.Variants.set ~key ~val_lines)
    | `Ratio dist ->
        let key = Keydist.sample dist p in
        if Prng.int p 100 < set_pct then v.Variants.set ~key ~val_lines
        else begin
          incr gets;
          if v.Variants.get key then incr hits
        end
  in
  let r =
    Driver.measure ~sched ~threads
      ~placement:(Array.init threads v.Variants.client_hw)
      ~duration
      ~prologue:(fun ~tid -> v.Variants.attach tid)
      ~epilogue:(fun ~tid:_ -> v.Variants.finish ())
      ~op ()
  in
  Format.printf "%a@." Driver.pp_result r;
  if !gets > 0 then
    Printf.printf "hit rate: %.3f (%d hits / %d gets)\n"
      (float_of_int !hits /. float_of_int !gets)
      !hits !gets

let variant =
  let alts =
    [
      ("stock", Stock);
      ("parsec", Parsec);
      ("ffwd", Ffwd);
      ("dps", Dps_v);
      ("dps-parsec", Dps_parsec);
    ]
  in
  Arg.(
    value
    & opt (enum alts) Dps_v
    & info [ "variant"; "v" ] ~doc:"Variant: stock, parsec, ffwd, dps, dps-parsec.")

let ycsb =
  let parse s =
    match Ycsb.of_string s with
    | Some w -> Ok (Some w)
    | None -> Error (`Msg "YCSB workload must be one of a, b, c, d, f")
  in
  let print ppf = function
    | Some w -> Format.pp_print_string ppf (Ycsb.to_string w)
    | None -> Format.pp_print_string ppf "none"
  in
  Arg.(
    value
    & opt (conv (parse, print)) None
    & info [ "ycsb" ] ~doc:"YCSB preset (a/b/c/d/f); overrides --set.")

let threads = Arg.(value & opt int 80 & info [ "threads"; "t" ] ~doc:"Simulated client threads.")
let items = Arg.(value & opt int 65536 & info [ "items"; "n" ] ~doc:"Pre-populated items.")
let value_bytes = Arg.(value & opt int 128 & info [ "value-bytes" ] ~doc:"Value size in bytes.")
let set_pct = Arg.(value & opt int 1 & info [ "set" ] ~doc:"Set percentage (ignored with --ycsb).")
let duration = Arg.(value & opt int 300_000 & info [ "duration" ] ~doc:"Simulated cycles.")
let scaled =
  Arg.(
    value & opt bool true
    & info [ "scaled" ] ~doc:"Use the /16-scaled cache hierarchy (default true).")
let seed = Arg.(value & opt int64 42L & info [ "seed" ] ~doc:"Simulation seed.")

let cmd =
  let doc = "run one memcached benchmark point on the simulated NUMA machine" in
  Cmd.v (Cmd.info "dps-mc" ~doc)
    Term.(
      const run_mc $ variant $ ycsb $ threads $ items $ value_bytes $ set_pct $ duration
      $ scaled $ seed)

let () = exit (Cmd.eval cmd)

(* dps-bench: run one set-structure benchmark point from the command line.

     dune exec bin/dps_bench.exe -- --structure lf-f --harness dps \
       --threads 80 --size 4096 --update 50 --skewed

   Prints throughput, LLC misses per operation and latency percentiles for
   any of the paper's structures under the shared-memory, ffwd or DPS
   harness — the building block the figures in bench/ are made of. *)

open Cmdliner
module Machine = Dps_machine.Machine
module Topology = Dps_machine.Topology
module Sthread = Dps_sthread.Sthread
module Alloc = Dps_sthread.Alloc
module Prng = Dps_simcore.Prng
module Keydist = Dps_workload.Keydist
module Driver = Dps_workload.Driver

module type SET = Dps_ds.Set_intf.SET

let structures : (string * (module SET)) list =
  [
    ("gl-m", (module Dps_ds.Ll_coarse));
    ("lb-l", (module Dps_ds.Ll_lazy));
    ("lf-m", (module Dps_ds.Ll_michael));
    ("optik", (module Dps_ds.Ll_optik));
    ("rlu", (module Dps_ds.Rlu_list));
    ("bst-tk", (module Dps_ds.Bst_tk));
    ("lf-n", (module Dps_ds.Bst_ellen));
    ("lf-h", (module Dps_ds.Bst_internal_lf));
    ("lb-b", (module Dps_ds.Bst_bronson));
    ("lb-h", (module Dps_ds.Sl_herlihy));
    ("lf-f", (module Dps_ds.Sl_fraser));
    ("hash", (module Dps_ds.Hashtable));
    ("blink", (module Dps_ds.Btree_blink));
    ("parsec-ll", (module Dps_parsec.Parsec_list));
  ]

type harness = Shared | Dps_h | Ffwd_h

let run_point structure (module S : SET) harness threads size update skewed duration servers
    scaled seed =
  let config = if scaled then Machine.config_scaled () else Machine.config_default in
  let m = Machine.create ~seed config in
  let sched = Sthread.create m in
  let dist =
    if skewed then Keydist.zipf ~range:(2 * size) () else Keydist.uniform ~range:(2 * size)
  in
  let population =
    let prng = Prng.create seed in
    let keys = Array.init size (fun i -> (2 * i) + 1) in
    for i = size - 1 downto 1 do
      let j = Prng.int prng (i + 1) in
      let t = keys.(i) in
      keys.(i) <- keys.(j);
      keys.(j) <- t
    done;
    keys
  in
  (* lists need descending insertion (O(1) at the head); trees get a
     balanced median-first order *)
  let order_keys =
    let sorted = Array.copy population in
    if
      String.length structure >= 2
      && (structure.[0] = 'l' && structure.[1] = 'f' || structure.[0] = 'b' || structure = "lb-b")
    then begin
      Array.sort compare sorted;
      let out = Array.make (Array.length sorted) 0 in
      let idx = ref 0 in
      let rec go lo hi =
        if lo <= hi then begin
          let mid = (lo + hi) / 2 in
          out.(!idx) <- sorted.(mid);
          incr idx;
          go lo (mid - 1);
          go (mid + 1) hi
        end
      in
      go 0 (Array.length sorted - 1);
      out
    end
    else begin
      Array.sort (fun a b -> compare b a) sorted;
      sorted
    end
  in
  let sorted_desc = order_keys in
  let populate set keys =
    Array.iter (fun key -> ignore (S.insert set ~key ~value:key)) keys;
    S.maintenance set
  in
  let mk_op insert remove lookup ~tid:_ ~step:_ =
    let p = Sthread.self_prng () in
    let key = Keydist.sample dist p in
    if Prng.int p 100 < update then if Prng.bool p then insert key else remove key
    else lookup key
  in
  let result =
    match harness with
    | Shared ->
        let set = S.create (Alloc.create m ~cold:Alloc.Spread) in
        populate set sorted_desc;
        Driver.measure ~sched ~threads ~duration
          ~op:
            (mk_op
               (fun key -> ignore (S.insert set ~key ~value:key))
               (fun key -> ignore (S.remove set key))
               (fun key -> ignore (S.lookup set key)))
          ()
    | Dps_h ->
        let dps =
          Dps.create sched ~nclients:threads ~locality_size:10
            ~hash:(fun k -> (k * 0x9E3779B1) lsr 8)
            ~mk_data:(fun (info : Dps.partition_info) -> S.create info.Dps.alloc)
            ()
        in
        for p = 0 to Dps.npartitions dps - 1 do
          let keys =
            Array.of_seq
              (Seq.filter (fun k -> Dps.partition_of_key dps k = p) (Array.to_seq sorted_desc))
          in
          populate (Dps.partition_data dps p) keys
        done;
        Driver.measure ~sched ~threads
          ~placement:(Array.init threads (Dps.client_hw dps))
          ~duration
          ~prologue:(fun ~tid -> Dps.attach dps ~client:tid)
          ~epilogue:(fun ~tid:_ ->
            Dps.client_done dps;
            Dps.drain dps)
          ~op:
            (mk_op
               (fun key ->
                 ignore (Dps.call dps ~key (fun s -> if S.insert s ~key ~value:key then 1 else 0)))
               (fun key -> ignore (Dps.call dps ~key (fun s -> if S.remove s key then 1 else 0)))
               (fun key ->
                 ignore (Dps.call dps ~key (fun s -> if S.lookup s key = None then 0 else 1))))
          ()
    | Ffwd_h ->
        let topo = Machine.topology m in
        let server_hw =
          Array.init servers (fun i ->
              i * topo.Topology.cores_per_socket * topo.Topology.threads_per_core)
        in
        let shards =
          Array.map
            (fun hw ->
              let set =
                S.create (Alloc.create m ~cold:(Alloc.Node (Topology.socket_of_thread topo hw)))
              in
              set)
            server_hw
        in
        Array.iteri
          (fun s shard ->
            let keys =
              Array.of_seq (Seq.filter (fun k -> k mod servers = s) (Array.to_seq sorted_desc))
            in
            populate shard keys)
          shards;
        let f = Dps_ffwd.Ffwd.create sched ~server_hw ~clients:threads in
        let all = Topology.placement topo ~n:(min (Topology.nthreads topo) (threads + servers)) in
        let skip = Array.to_list server_hw in
        let client_hws =
          Array.of_list (List.filter (fun hw -> not (List.mem hw skip)) (Array.to_list all))
        in
        let call key op =
          Dps_ffwd.Ffwd.call f ~server:(key mod servers) (fun () -> op shards.(key mod servers))
        in
        Driver.measure ~sched ~threads
          ~placement:(Array.init threads (fun i -> client_hws.(i mod Array.length client_hws)))
          ~duration
          ~prologue:(fun ~tid -> Dps_ffwd.Ffwd.attach f ~client:tid)
          ~epilogue:(fun ~tid:_ -> Dps_ffwd.Ffwd.client_done f)
          ~op:
            (mk_op
               (fun key -> ignore (call key (fun s -> if S.insert s ~key ~value:key then 1 else 0)))
               (fun key -> ignore (call key (fun s -> if S.remove s key then 1 else 0)))
               (fun key -> ignore (call key (fun s -> if S.lookup s key = None then 0 else 1))))
          ()
  in
  result

(* Fan independent seeds out across domains (bin-level mirror of the
   bench/ runner): results print in seed order whatever the job count. *)
let run_bench structure harness threads size update skewed duration servers scaled seed seeds
    jobs =
  let (module S : SET) =
    match List.assoc_opt structure structures with
    | Some s -> s
    | None ->
        Printf.eprintf "unknown structure %S; pick from: %s\n" structure
          (String.concat ", " (List.map fst structures));
        exit 2
  in
  let seed_of i = Int64.add seed (Int64.of_int i) in
  let results =
    Dps_simcore.Par.map ~jobs
      (Array.init (max 1 seeds) (fun i () ->
           run_point structure
             (module S : SET)
             harness threads size update skewed duration servers scaled (seed_of i)))
  in
  if Array.length results = 1 then Format.printf "%a@." Driver.pp_result results.(0)
  else
    Array.iteri
      (fun i r -> Format.printf "seed %Ld: %a@." (seed_of i) Driver.pp_result r)
      results

(* --- command line --- *)

let structure =
  let doc =
    "Structure: gl-m, lb-l, lf-m, optik, rlu, bst-tk, lf-n, lf-h, lb-b, lb-h, lf-f, hash, blink."
  in
  Arg.(value & opt string "lf-f" & info [ "structure"; "s" ] ~doc)

let harness =
  let hconv = Arg.enum [ ("shared", Shared); ("dps", Dps_h); ("ffwd", Ffwd_h) ] in
  Arg.(value & opt hconv Shared & info [ "harness" ] ~doc:"Harness: shared, dps or ffwd.")

let threads = Arg.(value & opt int 80 & info [ "threads"; "t" ] ~doc:"Simulated threads.")
let size = Arg.(value & opt int 4096 & info [ "size"; "n" ] ~doc:"Initial structure size.")
let update = Arg.(value & opt int 20 & info [ "update"; "u" ] ~doc:"Update percentage (0-100).")
let skewed = Arg.(value & flag & info [ "skewed" ] ~doc:"Zipfian keys instead of uniform.")
let duration = Arg.(value & opt int 300_000 & info [ "duration" ] ~doc:"Simulated cycles to run.")
let servers = Arg.(value & opt int 1 & info [ "servers" ] ~doc:"ffwd server count (1-4).")
let scaled = Arg.(value & flag & info [ "scaled" ] ~doc:"Use the /16-scaled cache hierarchy.")
let seed = Arg.(value & opt int64 42L & info [ "seed" ] ~doc:"Simulation seed.")

let seeds =
  Arg.(
    value & opt int 1
    & info [ "seeds" ] ~doc:"Run this many points with consecutive seeds (seed, seed+1, ...).")

let jobs =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ]
        ~doc:"Worker domains for multi-seed runs; output is identical for any job count.")

let cmd =
  let doc = "run one data-structure benchmark point on the simulated NUMA machine" in
  Cmd.v
    (Cmd.info "dps-bench" ~doc)
    Term.(
      const run_bench $ structure $ harness $ threads $ size $ update $ skewed $ duration
      $ servers $ scaled $ seed $ seeds $ jobs)

let () = exit (Cmd.eval cmd)

(* Tests for the ParSec runtime (quiescence) and the ParSec list's
   reclamation-safety property. *)

module Machine = Dps_machine.Machine
module Sthread = Dps_sthread.Sthread
module Alloc = Dps_sthread.Alloc
module Parsec = Dps_parsec.Parsec

let fresh () =
  let m = Machine.create Machine.config_default in
  (Sthread.create m, Alloc.create m ~cold:Alloc.Spread)

let test_quiesce_waits_for_readers () =
  let sched, alloc = fresh () in
  let rt = Parsec.create alloc in
  let reader_exit_at = ref 0 and quiesce_done_at = ref 0 in
  Sthread.spawn sched ~hw:0 (fun () ->
      Parsec.enter rt;
      Sthread.work 20_000;
      Parsec.exit rt;
      reader_exit_at := Sthread.time ());
  Sthread.spawn sched ~hw:20 (fun () ->
      Sthread.work 100;
      Parsec.quiesce rt;
      quiesce_done_at := Sthread.time ());
  Sthread.run sched;
  Alcotest.(check bool) "grace period covers the reader" true
    (!quiesce_done_at >= !reader_exit_at)

let test_quiesce_ignores_later_readers () =
  (* a reader that enters *after* quiesce starts must not block it *)
  let sched, alloc = fresh () in
  let rt = Parsec.create alloc in
  let done_at = ref 0 in
  Sthread.spawn sched ~hw:0 (fun () ->
      Parsec.quiesce rt;
      done_at := Sthread.time ());
  Sthread.spawn sched ~hw:20 (fun () ->
      Sthread.work 500;
      Parsec.enter rt;
      Sthread.work 100_000;
      Parsec.exit rt);
  Sthread.run sched;
  Alcotest.(check bool) "did not wait for the late reader" true (!done_at < 50_000)

let test_active_readers () =
  let sched, alloc = fresh () in
  let rt = Parsec.create alloc in
  let seen = ref (-1) in
  Sthread.spawn sched ~hw:0 (fun () ->
      Parsec.enter rt;
      seen := Parsec.active_readers rt;
      Parsec.exit rt);
  Sthread.run sched;
  Alcotest.(check int) "one active inside" 1 !seen;
  Alcotest.(check int) "none after" 0 (Parsec.active_readers rt)

let test_concurrent_sections_progress () =
  let sched, alloc = fresh () in
  let rt = Parsec.create alloc in
  let finished = ref 0 in
  for t = 0 to 15 do
    Sthread.spawn sched ~hw:(t * 4 mod 80) (fun () ->
        for _ = 1 to 10 do
          Parsec.enter rt;
          Sthread.work 200;
          Parsec.exit rt;
          if t mod 4 = 0 then Parsec.quiesce rt
        done;
        incr finished)
  done;
  Sthread.run sched;
  Alcotest.(check int) "all threads finished" 16 !finished

let suite =
  [
    ("quiesce waits for readers", `Quick, test_quiesce_waits_for_readers);
    ("quiesce ignores later readers", `Quick, test_quiesce_ignores_later_readers);
    ("active readers", `Quick, test_active_readers);
    ("concurrent sections progress", `Quick, test_concurrent_sections_progress);
  ]

(* Focused tests for the B-link tree beyond the generic SET battery:
   multi-level splits, link-chasing under concurrent splits, range order. *)

module Machine = Dps_machine.Machine
module Sthread = Dps_sthread.Sthread
module Alloc = Dps_sthread.Alloc
module Prng = Dps_simcore.Prng
module B = Dps_ds.Btree_blink

let fresh () =
  let m = Machine.create Machine.config_default in
  (Sthread.create m, Alloc.create m ~cold:Alloc.Spread)

let test_multi_level_growth () =
  let _, alloc = fresh () in
  let t = B.create alloc in
  (* force several levels of splits (order = 16) *)
  for k = 1 to 5000 do
    if not (B.insert t ~key:k ~value:(k * 2)) then Alcotest.failf "insert %d failed" k
  done;
  B.check_invariants t;
  Alcotest.(check int) "all present" 5000 (List.length (B.to_list t));
  for k = 1 to 5000 do
    match B.lookup t k with
    | Some v when v = 2 * k -> ()
    | Some _ | None -> Alcotest.failf "lookup %d wrong" k
  done

let test_interleaved_insert_remove () =
  let _, alloc = fresh () in
  let t = B.create alloc in
  let prng = Prng.create 21L in
  let module M = Map.Make (Int) in
  let model = ref M.empty in
  for _ = 1 to 8000 do
    let k = 1 + Prng.int prng 600 in
    if Prng.bool prng then begin
      let expected = not (M.mem k !model) in
      if B.insert t ~key:k ~value:k <> expected then Alcotest.failf "insert %d" k;
      if expected then model := M.add k k !model
    end
    else begin
      let expected = M.mem k !model in
      if B.remove t k <> expected then Alcotest.failf "remove %d" k;
      if expected then model := M.remove k !model
    end
  done;
  B.check_invariants t;
  Alcotest.(check (list (pair int int))) "matches model" (M.bindings !model) (B.to_list t)

let test_sorted_scan () =
  let _, alloc = fresh () in
  let t = B.create alloc in
  let keys = [ 512; 3; 99; 1024; 47; 7; 2048; 300 ] in
  List.iter (fun k -> ignore (B.insert t ~key:k ~value:k)) keys;
  Alcotest.(check (list int)) "sorted leaf chain" (List.sort compare keys)
    (List.map fst (B.to_list t))

let test_concurrent_splits () =
  (* many threads inserting dense ranges concurrently forces racing splits
     and link-chasing *)
  let sched, alloc = fresh () in
  let t = B.create alloc in
  let threads = 10 and per = 120 in
  for tid = 0 to threads - 1 do
    Sthread.spawn sched ~hw:(tid * 8 mod 80) (fun () ->
        for i = 0 to per - 1 do
          let key = 1 + (i * threads) + tid in
          if not (B.insert t ~key ~value:key) then Alcotest.failf "concurrent insert %d" key
        done)
  done;
  Sthread.run sched;
  B.check_invariants t;
  Alcotest.(check int) "all present after racing splits" (threads * per)
    (List.length (B.to_list t))

let suite =
  [
    ("multi-level growth", `Quick, test_multi_level_growth);
    ("interleaved insert/remove", `Quick, test_interleaved_insert_remove);
    ("sorted scan", `Quick, test_sorted_scan);
    ("concurrent splits", `Quick, test_concurrent_splits);
  ]

(* Tests for every concurrent set implementation: sequential equivalence
   with a model, concurrent disjoint and conflicting workloads with per-key
   consistency accounting, and structural invariants at quiescence. *)

module Machine = Dps_machine.Machine
module Sthread = Dps_sthread.Sthread
module Alloc = Dps_sthread.Alloc
module Prng = Dps_simcore.Prng

module type SET = Dps_ds.Set_intf.SET

let sets : (module SET) list =
  [
    (module Dps_ds.Ll_coarse);
    (module Dps_ds.Ll_lazy);
    (module Dps_ds.Ll_michael);
    (module Dps_ds.Ll_optik);
    (module Dps_ds.Rlu_list);
    (module Dps_ds.Bst_tk);
    (module Dps_ds.Bst_ellen);
    (module Dps_ds.Bst_internal_lf);
    (module Dps_ds.Bst_bronson);
    (module Dps_ds.Sl_herlihy);
    (module Dps_ds.Sl_fraser);
    (module Dps_ds.Hashtable);
    (module Dps_ds.Btree_blink);
    (module Dps_parsec.Parsec_list);
  ]

let fresh_alloc () =
  let m = Machine.create Machine.config_default in
  (Sthread.create m, Alloc.create m ~cold:Alloc.Spread)

(* --- sequential equivalence with a Map model (cold path) --- *)

let sequential_ops (module S : SET) () =
  let _, alloc = fresh_alloc () in
  let t = S.create alloc in
  let model = ref [] in
  let prng = Prng.create 99L in
  for _ = 1 to 2000 do
    let key = 1 + Prng.int prng 50 in
    match Prng.int prng 3 with
    | 0 ->
        let expected = not (List.mem_assoc key !model) in
        let got = S.insert t ~key ~value:(key * 10) in
        if got <> expected then Alcotest.failf "%s: insert %d -> %b" S.name key got;
        if got then model := (key, key * 10) :: !model
    | 1 ->
        let expected = List.mem_assoc key !model in
        let got = S.remove t key in
        if got <> expected then Alcotest.failf "%s: remove %d -> %b" S.name key got;
        if got then model := List.remove_assoc key !model
    | _ ->
        let expected = List.assoc_opt key !model in
        let got = S.lookup t key in
        if got <> expected then Alcotest.failf "%s: lookup %d mismatch" S.name key
  done;
  S.check_invariants t;
  let final = List.sort compare !model in
  Alcotest.(check (list (pair int int))) (S.name ^ " final contents") final (S.to_list t)

(* --- concurrent inserts over disjoint ranges: nothing may be lost --- *)

let concurrent_disjoint (module S : SET) () =
  let s, alloc = fresh_alloc () in
  let t = S.create alloc in
  let threads = 8 and per = 30 in
  for tid = 0 to threads - 1 do
    Sthread.spawn s ~hw:(tid * 8 mod 80) (fun () ->
        let p = Sthread.self_prng () in
        for i = 0 to per - 1 do
          let key = 1 + (tid * per) + i in
          if not (S.insert t ~key ~value:key) then
            Alcotest.failf "%s: disjoint insert %d failed" S.name key;
          if Prng.bool p then Sthread.work 50
        done)
  done;
  Sthread.run s;
  S.check_invariants t;
  let expected = List.init (threads * per) (fun i -> (i + 1, i + 1)) in
  Alcotest.(check (list (pair int int))) (S.name ^ " all present") expected (S.to_list t)

(* --- concurrent conflicting ops: per-key linearizable accounting ---
   For every key: successful inserts minus successful removes must equal
   final membership (0 or 1). Lost updates or double removes break this.
   The machine seed varies cache evictions and so the interleaving. *)

let run_conflict (module S : SET) ~seed ~threads ~ops ~key_range =
  let m = Machine.create ~seed Machine.config_default in
  let s = Sthread.create m in
  let alloc = Alloc.create m ~cold:Alloc.Spread in
  let t = S.create alloc in
  let ins = Array.make (key_range + 1) 0 and rem = Array.make (key_range + 1) 0 in
  for tid = 0 to threads - 1 do
    Sthread.spawn s ~hw:(tid * 8 mod 80) (fun () ->
        let p = Sthread.self_prng () in
        for _ = 1 to ops do
          let key = 1 + Prng.int p key_range in
          if Prng.bool p then begin
            if S.insert t ~key ~value:key then ins.(key) <- ins.(key) + 1
          end
          else if S.remove t key then rem.(key) <- rem.(key) + 1
        done)
  done;
  Sthread.run s;
  S.check_invariants t;
  let contents = S.to_list t in
  let violation = ref None in
  for key = 1 to key_range do
    let present = List.mem_assoc key contents in
    let balance = ins.(key) - rem.(key) in
    if balance < 0 || balance > 1 then
      violation := Some (Printf.sprintf "key %d balance %d" key balance)
    else if (balance = 1) <> present then
      violation := Some (Printf.sprintf "key %d balance %d but present=%b" key balance present)
  done;
  !violation

let concurrent_conflict (module S : SET) () =
  match run_conflict (module S) ~seed:42L ~threads:10 ~ops:60 ~key_range:24 with
  | None -> ()
  | Some msg -> Alcotest.failf "%s: %s" S.name msg

let qcheck_conflict_seeds (module S : SET) =
  QCheck.Test.make
    ~name:(S.name ^ " per-key balance over random interleavings")
    ~count:8 QCheck.small_nat
    (fun seed ->
      match
        run_conflict (module S) ~seed:(Int64.of_int (seed + 1)) ~threads:8 ~ops:30 ~key_range:12
      with
      | None -> true
      | Some _ -> false)

(* --- concurrent lookups while updating must terminate and not crash --- *)

let concurrent_readers (module S : SET) () =
  let s, alloc = fresh_alloc () in
  let t = S.create alloc in
  for k = 1 to 40 do
    ignore (S.insert t ~key:k ~value:k)
  done;
  let hits = ref 0 in
  for tid = 0 to 7 do
    Sthread.spawn s ~hw:(tid * 10 mod 80) (fun () ->
        let p = Sthread.self_prng () in
        for _ = 1 to 50 do
          let key = 1 + Prng.int p 60 in
          match Prng.int p 4 with
          | 0 -> ignore (S.insert t ~key ~value:key)
          | 1 -> ignore (S.remove t key)
          | _ -> if S.lookup t key <> None then incr hits
        done)
  done;
  Sthread.run s;
  S.check_invariants t;
  Alcotest.(check bool) (S.name ^ " lookups saw data") true (!hits > 0)

let qcheck_sequential (module S : SET) =
  let op_gen =
    QCheck.Gen.(
      pair (int_range 0 2) (int_range 1 30) |> list_size (int_range 1 200))
  in
  QCheck.Test.make
    ~name:(S.name ^ " matches model (random programs)")
    ~count:30
    (QCheck.make op_gen)
    (fun ops ->
      let _, alloc = fresh_alloc () in
      let t = S.create alloc in
      let module M = Map.Make (Int) in
      let model = ref M.empty in
      List.for_all
        (fun (op, key) ->
          match op with
          | 0 ->
              let expected = not (M.mem key !model) in
              let got = S.insert t ~key ~value:key in
              if got then model := M.add key key !model;
              got = expected
          | 1 ->
              let expected = M.mem key !model in
              let got = S.remove t key in
              if got then model := M.remove key !model;
              got = expected
          | _ -> S.lookup t key = M.find_opt key !model)
        ops
      && S.to_list t = M.bindings !model)

(* --- priority queue --- *)

let test_pq_sequential () =
  let _, alloc = fresh_alloc () in
  let pq = Dps_ds.Pq_shavit.create alloc in
  List.iter
    (fun k -> ignore (Dps_ds.Pq_shavit.insert pq ~key:k ~value:(2 * k)))
    [ 5; 1; 9; 3; 7 ];
  Alcotest.(check (option (pair int int))) "min" (Some (1, 2)) (Dps_ds.Pq_shavit.find_min pq);
  let order = ref [] in
  let rec drain () =
    match Dps_ds.Pq_shavit.remove_min pq with
    | None -> ()
    | Some (k, _) ->
        order := k :: !order;
        drain ()
  in
  drain ();
  Alcotest.(check (list int)) "ascending drain" [ 1; 3; 5; 7; 9 ] (List.rev !order)

let test_pq_concurrent () =
  let s, alloc = fresh_alloc () in
  let pq = Dps_ds.Pq_shavit.create alloc in
  let removed = ref [] in
  let threads = 8 and per = 25 in
  for tid = 0 to threads - 1 do
    Sthread.spawn s ~hw:(tid * 10 mod 80) (fun () ->
        for i = 0 to per - 1 do
          let key = 1 + (tid * per) + i in
          ignore (Dps_ds.Pq_shavit.insert pq ~key ~value:key);
          if i mod 2 = 1 then
            match Dps_ds.Pq_shavit.remove_min pq with
            | Some (k, _) -> removed := k :: !removed
            | None -> Alcotest.fail "remove_min on non-empty pq"
        done)
  done;
  Sthread.run s;
  Dps_ds.Pq_shavit.check_invariants pq;
  let remaining = List.map fst (Dps_ds.Pq_shavit.to_list pq) in
  let all = List.sort compare (!removed @ remaining) in
  let expected = List.init (threads * per) (fun i -> i + 1) in
  Alcotest.(check (list int)) "removed + remaining = inserted" expected all;
  (* no duplicates in removed *)
  let sorted = List.sort compare !removed in
  let rec nodup = function
    | a :: (b :: _ as rest) -> a <> b && nodup rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "no double remove_min" true (nodup sorted)

(* --- read/write object --- *)

let test_rw_object () =
  let m = Machine.create Machine.config_default in
  let s = Sthread.create m in
  let o = Dps_ds.Rw_object.create m Machine.Interleave ~objects:8 ~lines:4 ~write_lines:2 in
  Alcotest.(check int) "object count" 8 (Dps_ds.Rw_object.nobjects o);
  Sthread.spawn s ~hw:0 (fun () ->
      for i = 0 to 7 do
        Dps_ds.Rw_object.operate o i;
        Dps_ds.Rw_object.scan o i
      done);
  Sthread.run s;
  let accesses = Dps_simcore.Stats.get (Machine.stats m) "accesses" in
  (* operate: 2 reads+writes + 2 reads; scan: 4 reads -> 10 accesses/object *)
  Alcotest.(check int) "charged accesses" 80 accesses

let test_rw_object_partitioned () =
  let m = Machine.create Machine.config_default in
  let o =
    Dps_ds.Rw_object.create_partitioned m ~node_of:(fun i -> i mod 4) ~objects:8 ~lines:2
      ~write_lines:1
  in
  for i = 0 to 7 do
    Dps_ds.Rw_object.home_hint o i (fun base ->
        Alcotest.(check int) "homed per partition" (i mod 4) (Machine.home_of m base))
  done

(* --- RLU runtime --- *)

let test_rlu_synchronize_waits () =
  let s, alloc = fresh_alloc () in
  let rlu = Dps_ds.Rlu.create alloc in
  let reader_done_at = ref 0 and writer_done_at = ref 0 in
  Sthread.spawn s ~hw:0 (fun () ->
      Dps_ds.Rlu.reader_lock rlu;
      Sthread.work 20_000;
      Dps_ds.Rlu.reader_unlock rlu;
      reader_done_at := Sthread.time ());
  Sthread.spawn s ~hw:20 (fun () ->
      Sthread.work 100;
      (* a writer that must wait for the reader's grace period *)
      Dps_ds.Rlu.reader_lock rlu;
      Dps_ds.Rlu.writer_end_and_synchronize rlu;
      writer_done_at := Sthread.time ());
  Sthread.run s;
  Alcotest.(check bool) "synchronize outlived reader" true (!writer_done_at >= !reader_done_at)

let test_rlu_writers_no_deadlock () =
  let s, alloc = fresh_alloc () in
  let rlu = Dps_ds.Rlu.create alloc in
  let finished = ref 0 in
  for tid = 0 to 7 do
    Sthread.spawn s ~hw:(tid * 10 mod 80) (fun () ->
        for _ = 1 to 5 do
          Dps_ds.Rlu.reader_lock rlu;
          Sthread.work 200;
          Dps_ds.Rlu.writer_end_and_synchronize rlu
        done;
        incr finished)
  done;
  Sthread.run s;
  Alcotest.(check int) "all writers finished" 8 !finished

let set_cases =
  List.concat_map
    (fun (module S : SET) ->
      [
        (S.name ^ " sequential vs model", `Quick, sequential_ops (module S));
        (S.name ^ " concurrent disjoint", `Quick, concurrent_disjoint (module S));
        (S.name ^ " concurrent conflict", `Quick, concurrent_conflict (module S));
        QCheck_alcotest.to_alcotest (qcheck_conflict_seeds (module S));
        (S.name ^ " concurrent readers", `Quick, concurrent_readers (module S));
        QCheck_alcotest.to_alcotest (qcheck_sequential (module S));
      ])
    sets

let suite =
  set_cases
  @ [
      ("pq sequential", `Quick, test_pq_sequential);
      ("pq concurrent", `Quick, test_pq_concurrent);
      ("rw_object", `Quick, test_rw_object);
      ("rw_object partitioned", `Quick, test_rw_object_partitioned);
      ("rlu synchronize waits", `Quick, test_rlu_synchronize_waits);
      ("rlu writers no deadlock", `Quick, test_rlu_writers_no_deadlock);
    ]

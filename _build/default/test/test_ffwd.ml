(* Tests for the ffwd delegation baseline. *)

module Machine = Dps_machine.Machine
module Topology = Dps_machine.Topology
module Sthread = Dps_sthread.Sthread
module Ffwd = Dps_ffwd.Ffwd

let mk_sched () = Sthread.create (Machine.create Machine.config_default)

(* Clients on sockets 1..3; the server owns hw 0 (socket 0). *)
let client_hw i = 20 + (2 * i mod 60)

let test_ops_run_on_server () =
  let sched = mk_sched () in
  let nclients = 8 in
  let f = Ffwd.create sched ~server_hw:[| 0 |] ~clients:nclients in
  let hw_seen = ref [] in
  for c = 0 to nclients - 1 do
    Sthread.spawn sched ~hw:(client_hw c) (fun () ->
        Ffwd.attach f ~client:c;
        let v =
          Ffwd.call f ~server:0 (fun () ->
              hw_seen := Sthread.self_hw () :: !hw_seen;
              42)
        in
        Alcotest.(check int) "reply value" 42 v;
        Ffwd.client_done f)
  done;
  Sthread.run sched;
  Alcotest.(check int) "every op executed" nclients (List.length !hw_seen);
  List.iter (fun hw -> Alcotest.(check int) "on server hw" 0 hw) !hw_seen

let test_serialization_no_lost_updates () =
  let sched = mk_sched () in
  let nclients = 12 and per = 40 in
  let f = Ffwd.create sched ~server_hw:[| 0 |] ~clients:nclients in
  (* deliberately unsynchronized counter: only server serialization protects it *)
  let counter = ref 0 in
  for c = 0 to nclients - 1 do
    Sthread.spawn sched ~hw:(client_hw c) (fun () ->
        Ffwd.attach f ~client:c;
        for _ = 1 to per do
          ignore
            (Ffwd.call f ~server:0 (fun () ->
                 let v = !counter in
                 Sthread.work 20;
                 counter := v + 1;
                 v))
        done;
        Ffwd.client_done f)
  done;
  Sthread.run sched;
  Alcotest.(check int) "server serialized all updates" (nclients * per) !counter

let test_multiple_servers_shard () =
  let sched = mk_sched () in
  let nclients = 8 in
  (* four servers, one per socket, as the paper's ffwd-s4 *)
  let server_hw = [| 0; 20; 40; 60 |] in
  let f = Ffwd.create sched ~server_hw ~clients:nclients in
  Alcotest.(check int) "4 servers" 4 (Ffwd.nservers f);
  let per_server = Array.make 4 0 in
  for c = 0 to nclients - 1 do
    Sthread.spawn sched ~hw:(client_hw c) (fun () ->
        Ffwd.attach f ~client:c;
        for k = 0 to 11 do
          let shard = k mod 4 in
          ignore
            (Ffwd.call f ~server:shard (fun () ->
                 per_server.(shard) <- per_server.(shard) + 1;
                 Topology.socket_of_thread Topology.default (Sthread.self_hw ())))
        done;
        Ffwd.client_done f)
  done;
  Sthread.run sched;
  Array.iteri
    (fun i n -> Alcotest.(check int) (Printf.sprintf "server %d ops" i) (nclients * 3) n)
    per_server

let test_response_batching () =
  let sched = mk_sched () in
  let nclients = 10 in
  let f = Ffwd.create sched ~server_hw:[| 0 |] ~clients:nclients in
  for c = 0 to nclients - 1 do
    Sthread.spawn sched ~hw:(client_hw c) (fun () ->
        Ffwd.attach f ~client:c;
        for _ = 1 to 10 do
          ignore (Ffwd.call f ~server:0 (fun () -> 0))
        done;
        Ffwd.client_done f)
  done;
  Sthread.run sched;
  let batches = Ffwd.server_batches f in
  Alcotest.(check bool) "batching active" true (batches > 0);
  (* 100 ops in <= 100 batches; with 10 concurrent clients in one group it
     must batch at least sometimes *)
  Alcotest.(check bool)
    (Printf.sprintf "fewer batches than ops (%d)" batches)
    true (batches < 100)

let test_servers_terminate () =
  let sched = mk_sched () in
  let f = Ffwd.create sched ~server_hw:[| 0; 20 |] ~clients:2 in
  for c = 0 to 1 do
    Sthread.spawn sched ~hw:(client_hw c) (fun () ->
        Ffwd.attach f ~client:c;
        ignore (Ffwd.call f ~server:c (fun () -> c));
        Ffwd.client_done f)
  done;
  Sthread.run sched;
  Alcotest.(check int) "all threads exited" 0 (Sthread.live_threads sched)

let suite =
  [
    ("ops run on server", `Quick, test_ops_run_on_server);
    ("serialization, no lost updates", `Quick, test_serialization_no_lost_updates);
    ("multiple servers shard", `Quick, test_multiple_servers_shard);
    ("response batching", `Quick, test_response_batching);
    ("servers terminate", `Quick, test_servers_terminate);
  ]

test/test_adapters.ml: Alcotest Dps Dps_adapters Dps_ds Dps_machine Dps_simcore Dps_sthread Fun List Printf

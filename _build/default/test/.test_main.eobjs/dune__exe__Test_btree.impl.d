test/test_btree.ml: Alcotest Dps_ds Dps_machine Dps_simcore Dps_sthread Int List Map

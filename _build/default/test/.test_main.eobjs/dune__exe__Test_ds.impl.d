test/test_ds.ml: Alcotest Array Dps_ds Dps_machine Dps_parsec Dps_simcore Dps_sthread Int Int64 List Map Printf QCheck QCheck_alcotest

test/test_machine.ml: Alcotest Array Dps_machine Dps_simcore List Printf QCheck QCheck_alcotest

test/test_parsec.ml: Alcotest Dps_machine Dps_parsec Dps_sthread

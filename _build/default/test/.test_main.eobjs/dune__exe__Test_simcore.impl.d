test/test_simcore.ml: Alcotest Dps_simcore Fun Gen Hashtbl List Printf QCheck QCheck_alcotest

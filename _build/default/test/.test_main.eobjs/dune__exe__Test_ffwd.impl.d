test/test_ffwd.ml: Alcotest Array Dps_ffwd Dps_machine Dps_sthread List Printf

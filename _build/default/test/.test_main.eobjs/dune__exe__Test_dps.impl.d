test/test_dps.ml: Alcotest Array Dps Dps_ds Dps_machine Dps_sthread Fun List

test/test_sync.ml: Alcotest Array Dps_machine Dps_sthread Dps_sync List Printf

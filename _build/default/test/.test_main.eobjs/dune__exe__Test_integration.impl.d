test/test_integration.ml: Alcotest Array Dps Dps_ds Dps_ffwd Dps_machine Dps_simcore Dps_sthread Fun List Option

test/test_sthread.ml: Alcotest Buffer Dps_machine Dps_simcore Dps_sthread List Printf

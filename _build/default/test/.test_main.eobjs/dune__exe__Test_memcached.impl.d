test/test_memcached.ml: Alcotest Array Dps_machine Dps_memcached Dps_simcore Dps_sthread Fun Int64 List

test/test_workload.ml: Alcotest Array Dps_machine Dps_simcore Dps_sthread Dps_workload List Printf

(* A NUMA-partitioned priority scheduler built on DPS range operations.

   Tasks (key = deadline) are inserted into a Shavit-Lotan priority queue
   partitioned across localities. [find_min]/dispatch uses the §4.4
   broadcast/range API: peek every partition's head, take the global
   minimum, then pop from the winning partition — exactly how the paper
   supports priority queues on DPS.

   Run with: dune exec examples/priority_scheduler.exe *)

module Machine = Dps_machine.Machine
module Sthread = Dps_sthread.Sthread
module Prng = Dps_simcore.Prng
module Pq = Dps_ds.Pq_shavit

let () =
  let machine = Machine.create Machine.config_default in
  let sched = Sthread.create machine in
  let nclients = 40 in
  let dps =
    Dps.create sched ~nclients ~locality_size:10
      ~hash:(fun deadline -> deadline)
      ~mk_data:(fun (info : Dps.partition_info) -> Pq.create info.Dps.alloc)
      ()
  in
  let nparts = Dps.npartitions dps in
  Printf.printf "scheduler with %d partitions over %d sockets\n" nparts
    (Machine.topology machine).Dps_machine.Topology.sockets;

  (* findMin across the whole namespace: broadcast a peek, merge by min. *)
  let global_min () =
    Dps.range dps
      (fun pq -> match Pq.find_min pq with Some (k, _) -> k | None -> max_int)
      ~merge:min
  in
  (* dispatch: find the winning partition, then pop from it (two-phase, not
     linearizable across partitions — as the paper notes for range ops). *)
  let dispatch () =
    let k = global_min () in
    if k = max_int then None
    else
      let popped =
        Dps.call dps ~key:k (fun pq ->
            match Pq.remove_min pq with Some (k', _) -> k' | None -> -1)
      in
      if popped >= 0 then Some popped else None
  in

  let submitted = ref 0 and dispatched = ref [] in
  for client = 0 to nclients - 1 do
    Sthread.spawn sched ~hw:(Dps.client_hw dps client) (fun () ->
        Dps.attach dps ~client;
        let p = Sthread.self_prng () in
        (* submit 20 tasks with random deadlines, dispatching every 4th *)
        for i = 0 to 19 do
          let deadline = 1 + Prng.int p 100_000 in
          ignore (Dps.call dps ~key:deadline (fun pq ->
              if Pq.insert pq ~key:deadline ~value:client then 1 else 0));
          incr submitted;
          if i mod 4 = 3 then
            match dispatch () with
            | Some d -> dispatched := d :: !dispatched
            | None -> ()
        done;
        Dps.client_done dps;
        Dps.drain dps)
  done;
  Sthread.run sched;

  (* drain the rest cold to show what was left *)
  let remaining = ref 0 in
  for pid = 0 to nparts - 1 do
    remaining := !remaining + List.length (Pq.to_list (Dps.partition_data dps pid))
  done;
  Printf.printf "submitted %d tasks; dispatched %d; %d still queued\n" !submitted
    (List.length !dispatched) !remaining;
  (* dispatch order trends toward ascending deadlines; report inversions *)
  let order = List.rev !dispatched in
  let inversions =
    let rec go acc = function
      | a :: (b :: _ as rest) -> go (if a > b then acc + 1 else acc) rest
      | [ _ ] | [] -> acc
    in
    go 0 order
  in
  Printf.printf "dispatch inversions (concurrency-induced): %d of %d\n" inversions
    (max 0 (List.length order - 1))

(* NUMA machine explorer: watch the cost model that drives every result in
   this reproduction.

   Measures, on the simulated 4-socket Xeon, the cycle costs of: cold DRAM
   reads (local vs remote node), warm private-cache hits, same-socket LLC
   sharing, cross-socket transfers, and the invalidation cost a writer pays
   when readers on other sockets share its line — the effects §2 of the
   paper blames for shared-memory collapse.

   Run with: dune exec examples/numa_explorer.exe *)

module Machine = Dps_machine.Machine
module Sthread = Dps_sthread.Sthread

let () =
  let m = Machine.create Machine.config_default in
  let sched = Sthread.create m in
  let line_on node = Machine.alloc m (Machine.On_node node) ~lines:1 in

  let measure name ~hw f =
    let cost = ref 0 in
    Sthread.spawn sched ~hw (fun () ->
        let t0 = Sthread.time () in
        f ();
        cost := Sthread.time () - t0);
    Sthread.run sched;
    Printf.printf "  %-46s %5d cycles\n" name !cost
  in

  print_endline "single-access costs (hardware thread 0 lives on socket 0):";
  let local = line_on 0 and remote = line_on 3 in
  measure "cold read, line homed on local node" ~hw:0 (fun () -> Sthread.read local);
  measure "re-read (private cache hit)" ~hw:0 (fun () -> Sthread.read local);
  measure "cold read, line homed on remote node" ~hw:0 (fun () -> Sthread.read remote);

  let shared = line_on 0 in
  measure "first read by socket-0 thread" ~hw:0 (fun () -> Sthread.read shared);
  measure "read by another socket-0 core (LLC hit)" ~hw:4 (fun () -> Sthread.read shared);
  measure "read by a socket-2 core (cross-socket)" ~hw:42 (fun () -> Sthread.read shared);
  measure "write by socket-0 owner (invalidates both)" ~hw:0 (fun () -> Sthread.write shared);
  measure "re-read by socket-2 core (must re-fetch)" ~hw:42 (fun () -> Sthread.read shared);

  print_endline "\nping-pong: two threads alternately writing one line";
  let pp = line_on 0 in
  let total = ref 0 in
  let rounds = 1000 in
  Sthread.spawn sched ~hw:0 (fun () ->
      let t0 = Sthread.time () in
      for _ = 1 to rounds do
        Sthread.write pp
      done;
      total := !total + (Sthread.time () - t0));
  Sthread.spawn sched ~hw:42 (fun () ->
      for _ = 1 to rounds do
        Sthread.write pp
      done);
  Sthread.run sched;
  Printf.printf "  socket-0 writer average: %.1f cycles/write (vs ~6 uncontended)\n"
    (float_of_int !total /. float_of_int rounds);

  print_endline "\ncapacity: stream 2x the private cache, then re-read";
  let cfg = Machine.config m in
  let n = 2 * cfg.Machine.priv_lines in
  let big = Machine.alloc m (Machine.On_node 0) ~lines:n in
  let misses0 = Dps_simcore.Stats.get (Machine.stats m) "llc_misses" in
  Sthread.spawn sched ~hw:0 (fun () ->
      for i = 0 to n - 1 do
        Sthread.charge_read (big + i)
      done;
      Sthread.flush ();
      for i = 0 to n - 1 do
        Sthread.charge_read (big + i)
      done;
      Sthread.flush ());
  Sthread.run sched;
  Printf.printf "  LLC misses for %d accesses over %d lines: %d (first sweep only)\n" (2 * n) n
    (Dps_simcore.Stats.get (Machine.stats m) "llc_misses" - misses0)

(* Event-driven DPS — the §4.4 future-work extension, runnable.

   Each client is an event loop: it submits get/set operations on a
   DPS-partitioned hash table with completion callbacks, then pumps — firing
   callbacks whose replies arrived and serving its locality's delegations in
   the same turn. No thread ever blocks on a single reply, so a client keeps
   many operations in flight across sockets at once.

   Run with: dune exec examples/event_driven.exe *)

module Machine = Dps_machine.Machine
module Sthread = Dps_sthread.Sthread
module Prng = Dps_simcore.Prng
module H = Dps_ds.Hashtable
module Events = Dps_adapters.Events

let () =
  let machine = Machine.create Machine.config_default in
  let sched = Sthread.create machine in
  let nclients = 40 in
  let dps =
    Dps.create sched ~nclients ~locality_size:10
      ~hash:(fun k -> (k * 0x9E3779B1) lsr 8)
      ~mk_data:(fun (info : Dps.partition_info) -> H.create info.Dps.alloc)
      ()
  in
  let callbacks_fired = ref 0 in
  let wrong = ref 0 in
  let sync_time = ref 0 and async_time = ref 0 in
  for c = 0 to nclients - 1 do
    Sthread.spawn sched ~hw:(Dps.client_hw dps c) (fun () ->
        Dps.attach dps ~client:c;
        (* first, the synchronous style for comparison: 50 round trips *)
        let t0 = Sthread.time () in
        for i = 0 to 49 do
          let key = (c * 1000) + i in
          ignore (Dps.call dps ~key (fun h -> if H.insert h ~key ~value:(2 * key) then 1 else 0))
        done;
        if c = 0 then sync_time := Sthread.time () - t0;
        (* then the event-driven style: 50 reads in flight at once *)
        let t1 = Sthread.time () in
        let loop = Events.create dps in
        for i = 0 to 49 do
          let key = (c * 1000) + i in
          Events.submit loop ~key
            (fun h -> match H.lookup h key with Some v -> v | None -> -1)
            (fun v ->
              incr callbacks_fired;
              if v <> 2 * key then incr wrong)
        done;
        Events.drain_loop loop;
        if c = 0 then async_time := Sthread.time () - t1;
        Dps.client_done dps;
        Dps.drain dps)
  done;
  Sthread.run sched;
  Printf.printf "callbacks fired: %d (expected %d), wrong values: %d\n" !callbacks_fired
    (nclients * 50) !wrong;
  Printf.printf "client 0: 50 sync round trips took %d cycles; 50 pipelined events took %d\n"
    !sync_time !async_time;
  Printf.printf "event-driven speedup for this client: %.1fx\n"
    (float_of_int !sync_time /. float_of_int (max 1 !async_time))

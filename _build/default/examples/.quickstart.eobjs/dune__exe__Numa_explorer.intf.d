examples/numa_explorer.mli:

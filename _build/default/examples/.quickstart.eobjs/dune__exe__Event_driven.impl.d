examples/event_driven.ml: Dps Dps_adapters Dps_ds Dps_machine Dps_simcore Dps_sthread Printf

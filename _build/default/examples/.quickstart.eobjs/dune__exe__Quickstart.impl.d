examples/quickstart.ml: Dps Dps_ds Dps_machine Dps_sthread Printf

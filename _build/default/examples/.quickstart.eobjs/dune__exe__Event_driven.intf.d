examples/event_driven.mli:

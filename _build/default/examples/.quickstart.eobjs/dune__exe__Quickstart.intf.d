examples/quickstart.mli:

examples/kv_cache.ml: Array Dps_machine Dps_memcached Dps_simcore Dps_sthread Dps_workload Fun List Printf

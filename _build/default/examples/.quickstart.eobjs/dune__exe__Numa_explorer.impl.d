examples/numa_explorer.ml: Dps_machine Dps_simcore Dps_sthread Printf

examples/priority_scheduler.ml: Dps Dps_ds Dps_machine Dps_simcore Dps_sthread List Printf

bench/fig_sets.ml: Bench_common Dps_ds Dps_machine Dps_parsec Dps_workload List Printf String

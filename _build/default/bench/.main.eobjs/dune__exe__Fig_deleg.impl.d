bench/fig_deleg.ml: Array Bench_common Dps Dps_ffwd Dps_machine Dps_simcore Dps_sthread Dps_workload List Printf

bench/main.mli:

bench/fig_ablation.ml: Array Bench_common Dps Dps_ds Dps_machine Dps_simcore Dps_sthread Dps_sync Dps_workload Fun List Printf

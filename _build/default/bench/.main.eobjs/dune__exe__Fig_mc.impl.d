bench/fig_mc.ml: Array Bench_common Dps_machine Dps_memcached Dps_simcore Dps_sthread Dps_workload Fun List Printf

bench/bechamel_suite.ml: Analyze Bechamel Benchmark Dps Dps_ds Dps_machine Dps_memcached Dps_simcore Dps_sthread Fun Hashtbl Instance List Measure Printf Staged Test Time Toolkit

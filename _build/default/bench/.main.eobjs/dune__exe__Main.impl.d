bench/main.ml: Array Bechamel_suite Bench_common Fig_ablation Fig_deleg Fig_mc Fig_rw Fig_sets List Printf Sys Unix

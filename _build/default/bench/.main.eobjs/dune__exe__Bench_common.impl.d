bench/bench_common.ml: Array Dps Dps_ds Dps_ffwd Dps_machine Dps_simcore Dps_sthread Dps_workload List Printf String Sys

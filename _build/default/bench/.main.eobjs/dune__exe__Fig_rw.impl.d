bench/fig_rw.ml: Array Bench_common Dps Dps_ds Dps_ffwd Dps_machine Dps_simcore Dps_sthread Dps_sync Dps_workload List Printf

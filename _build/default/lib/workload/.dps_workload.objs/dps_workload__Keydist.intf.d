lib/workload/keydist.mli: Dps_simcore

lib/workload/ycsb.mli: Dps_simcore

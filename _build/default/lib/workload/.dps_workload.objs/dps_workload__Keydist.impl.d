lib/workload/keydist.ml: Dps_simcore Float

lib/workload/driver.ml: Array Dps_machine Dps_simcore Dps_sthread Format

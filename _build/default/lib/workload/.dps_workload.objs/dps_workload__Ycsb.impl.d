lib/workload/ycsb.ml: Dps_simcore Keydist

lib/workload/driver.mli: Dps_sthread Format

module Machine = Dps_machine.Machine
module Topology = Dps_machine.Topology
module Sthread = Dps_sthread.Sthread
module Stats = Dps_simcore.Stats
module Histogram = Dps_simcore.Histogram

type result = {
  threads : int;
  ops : int;
  duration_cycles : int;
  throughput_mops : float;
  llc_misses_per_op : float;
  remote_misses_per_op : float;
  mean_latency : float;
  p50 : int;
  p99 : int;
  p999 : int;
}

let pp_result ppf r =
  Format.fprintf ppf
    "%2d threads: %8.3f Mops/s  (%d ops, %.2f LLC miss/op, %.2f remote/op, p50 %d p99 %d)"
    r.threads r.throughput_mops r.ops r.llc_misses_per_op r.remote_misses_per_op r.p50 r.p99

let measure ~sched ~threads ?placement ~duration ?min_ops ?(prologue = fun ~tid:_ -> ())
    ?(epilogue = fun ~tid:_ -> ()) ~op () =
  let m = Sthread.machine sched in
  let topo = Machine.topology m in
  let placement =
    match placement with Some p -> p | None -> Topology.placement topo ~n:threads
  in
  let stats = Machine.stats m in
  let misses0 = Stats.get stats "llc_misses" and remote0 = Stats.get stats "remote_misses" in
  let hist = Histogram.create () in
  let start_time = Sthread.now sched in
  let horizon = start_time + duration in
  let total_ops = ref 0 in
  for tid = 0 to threads - 1 do
    Sthread.spawn sched ~hw:placement.(tid) (fun () ->
        prologue ~tid;
        let steps = ref 0 in
        let continue_loop () =
          Sthread.time () < horizon
          || match min_ops with Some k -> !steps < k | None -> false
        in
        while continue_loop () do
          let t0 = Sthread.time () in
          op ~tid ~step:!steps;
          Histogram.add hist (Sthread.time () - t0);
          incr steps;
          incr total_ops
        done;
        epilogue ~tid)
  done;
  Sthread.run sched;
  let ops = !total_ops in
  let elapsed = max duration (Sthread.now sched - start_time) in
  let seconds = Machine.cycles_to_seconds m elapsed in
  let per_op c = if ops = 0 then 0.0 else float_of_int c /. float_of_int ops in
  {
    threads;
    ops;
    duration_cycles = elapsed;
    throughput_mops = (if ops = 0 then 0.0 else float_of_int ops /. seconds /. 1e6);
    llc_misses_per_op = per_op (Stats.get stats "llc_misses" - misses0);
    remote_misses_per_op = per_op (Stats.get stats "remote_misses" - remote0);
    mean_latency = Histogram.mean hist;
    p50 = Histogram.percentile hist 0.50;
    p99 = Histogram.percentile hist 0.99;
    p999 = Histogram.percentile hist 0.999;
  }

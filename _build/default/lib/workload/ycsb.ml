module Prng = Dps_simcore.Prng

type t = A | B | C | D | F
type op = Read | Update | Insert | Read_modify_write

let of_string = function
  | "a" | "A" -> Some A
  | "b" | "B" -> Some B
  | "c" | "C" -> Some C
  | "d" | "D" -> Some D
  | "f" | "F" -> Some F
  | _ -> None

let to_string = function A -> "A" | B -> "B" | C -> "C" | D -> "D" | F -> "F"

type gen = { kind : t; zipf : Keydist.t; latest : Keydist.t; mutable items : int }

let make kind ~items =
  assert (items > 0);
  {
    kind;
    zipf = Keydist.zipf ~range:items ();
    latest = Keydist.zipf ~scrambled:false ~range:(min items 4096) ();
    items;
  }

let key_space g = g.items

(* Workload D's "latest" distribution: zipfian over recency rank, so the
   most recently inserted keys are the hottest. *)
let latest_key g prng =
  let rank = Keydist.sample g.latest prng in
  g.items - 1 - rank

let next g prng =
  match g.kind with
  | A -> ((if Prng.below prng 0.5 then Read else Update), Keydist.sample g.zipf prng)
  | B -> ((if Prng.below prng 0.95 then Read else Update), Keydist.sample g.zipf prng)
  | C -> (Read, Keydist.sample g.zipf prng)
  | F ->
      ((if Prng.below prng 0.5 then Read else Read_modify_write), Keydist.sample g.zipf prng)
  | D ->
      if Prng.below prng 0.05 then begin
        let key = g.items in
        g.items <- g.items + 1;
        (Insert, key)
      end
      else (Read, max 0 (latest_key g prng))

(** Benchmark driver: spawns measured client threads under the paper's
    placement rule, runs them for a fixed window of simulated time, and
    reports throughput, LLC misses per operation and latency percentiles —
    the quantities on every figure's axes. *)

type result = {
  threads : int;
  ops : int;
  duration_cycles : int;
  throughput_mops : float;  (** million operations per simulated second *)
  llc_misses_per_op : float;
  remote_misses_per_op : float;
  mean_latency : float;  (** cycles *)
  p50 : int;
  p99 : int;
  p999 : int;
}

val pp_result : Format.formatter -> result -> unit

val measure :
  sched:Dps_sthread.Sthread.t ->
  threads:int ->
  ?placement:int array ->
  duration:int ->
  ?min_ops:int ->
  ?prologue:(tid:int -> unit) ->
  ?epilogue:(tid:int -> unit) ->
  op:(tid:int -> step:int -> unit) ->
  unit ->
  result
(** Spawn [threads] clients (placed by {!Dps_machine.Topology.placement}
    unless [placement] is given). Each runs [prologue], then repeats [op]
    while the simulated clock is below [duration] (and, if [min_ops] is
    given, at least that many times — used when single operations are very
    long), then [epilogue] (e.g. DPS drain). Latency is measured per [op]
    call; machine counters are read as a delta around the run. *)

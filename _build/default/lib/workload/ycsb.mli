(** YCSB core workload presets (Cooper et al., SoCC'10 — the paper's trace
    generator for the memcached study). Each preset fixes the operation mix
    and the request distribution of the standard workloads A–D and F
    (E is a scan workload, out of scope for a KV cache). *)

type t = A  (** update heavy: 50% reads / 50% updates, zipfian *)
       | B  (** read mostly: 95/5, zipfian *)
       | C  (** read only, zipfian *)
       | D  (** read latest: 95% reads / 5% inserts, recency-skewed *)
       | F  (** read-modify-write: 50% reads / 50% RMW, zipfian *)

type op = Read | Update | Insert | Read_modify_write

val of_string : string -> t option
val to_string : t -> string

type gen

val make : t -> items:int -> gen
(** [items] is the initially loaded record count. *)

val next : gen -> Dps_simcore.Prng.t -> op * int
(** Draw one operation and its key. Inserts (workload D) extend the key
    space; reads in D favour recently inserted keys. *)

val key_space : gen -> int
(** Current number of records (grows under workload D). *)

(** Key distributions for benchmark workloads.

    [zipf] is YCSB's Zipfian generator (Gray et al.'s algorithm, the one the
    paper uses via YCSB for the memcached study and for "skewed" data-
    structure workloads); [scrambled] hashes the rank so hot keys spread
    over the key space, as YCSB's ScrambledZipfian does. *)

type t

val uniform : range:int -> t
val zipf : ?theta:float -> ?scrambled:bool -> range:int -> unit -> t
(** [theta] defaults to YCSB's 0.99; [scrambled] defaults to [true]. *)

val range : t -> int

val sample : t -> Dps_simcore.Prng.t -> int
(** A key in [0, range). *)

module Prng = Dps_simcore.Prng

type zipf_state = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  scrambled : bool;
}

type t = Uniform of int | Zipf of zipf_state

let uniform ~range =
  assert (range > 0);
  Uniform range

let zeta n theta =
  let sum = ref 0.0 in
  for i = 1 to n do
    sum := !sum +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !sum

let zipf ?(theta = 0.99) ?(scrambled = true) ~range () =
  assert (range > 0);
  let zetan = zeta range theta in
  let zeta2 = zeta 2 theta in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. Float.pow (2.0 /. float_of_int range) (1.0 -. theta)) /. (1.0 -. (zeta2 /. zetan))
  in
  Zipf { n = range; theta; alpha; zetan; eta; scrambled }

let range = function Uniform n -> n | Zipf z -> z.n

(* FNV-style scramble so the hottest ranks are not adjacent keys. *)
let scramble n rank =
  let h = (rank * 0x100000001B3) lxor 0x3BF29CE484222325 in
  let h = (h lxor (h lsr 29)) * 0xBF58476D1CE4E5B in
  abs (h lxor (h lsr 32)) mod n

let sample t prng =
  match t with
  | Uniform n -> Prng.int prng n
  | Zipf z ->
      let u = Prng.float prng 1.0 in
      let uz = u *. z.zetan in
      let rank =
        if uz < 1.0 then 0
        else if uz < 1.0 +. Float.pow 0.5 z.theta then 1
        else
          let r =
            float_of_int z.n *. Float.pow ((z.eta *. u) -. z.eta +. 1.0) z.alpha
          in
          min (z.n - 1) (int_of_float r)
      in
      if z.scrambled then scramble z.n rank else rank

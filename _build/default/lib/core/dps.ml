module Machine = Dps_machine.Machine
module Topology = Dps_machine.Topology
module Sthread = Dps_sthread.Sthread
module Simops = Dps_sthread.Simops
module Alloc = Dps_sthread.Alloc

type partition_info = { pid : int; node : int; alloc : Alloc.t }

(* One single-cache-line message, as in §4.2: toggle bit, operation,
   return value. The toggle is set by the sender and cleared by the
   partition when the reply (in [ret]) is ready. *)
type msg = {
  maddr : int;
  mutable toggle : bool;
  mutable op : (unit -> int) option;
  mutable ret : int;
}

type completion = Local of int | Remote of msg

(* A ring of messages for one (client, partition) pair, allocated on the
   partition's NUMA node. The client owns [send_idx], the serving peer owns
   [recv_idx]; the toggle bit replaces head/tail comparison. [lock] is only
   used when a dedicated poller runs (S4.4 liveness): the poller and the
   ring's peer serializes through it, "rarely contended" as the paper
   notes. *)
type ring = {
  slots : msg array;
  mutable send_idx : int;
  mutable recv_idx : int;
  rlock : Dps_sync.Spinlock.t option;
}

type 'a partition = { info : partition_info; data : 'a; rings : ring array (* per client *) }

type client = {
  tid : int;
  hw : int;
  my_pid : int;
  served : (int * int) array;  (* (partition never <> my_pid, ring index) — my serving share *)
  mutable cursor : int;  (* round-robin scan position, for serving fairness *)
}

type 'a t = {
  sched : Sthread.t;
  partitions : 'a partition array;
  nclients : int;
  locality_size : int;
  hash : int -> int;
  check_budget : int;
  marshal_cost : int;
  dispatch_cost : int;
  placement : int array;
  clients : (int, client) Hashtbl.t;  (* simulated thread id -> client *)
  (* the flat namespace of the paper's create(): hash(key) mod ns_sz
     selects a bucket, whose entry names the owning partition. One charged
     line per 8 entries; rebalancing rewrites entries. *)
  ns_table : int array;
  ns_base : int;
  mutable remaining : int;
  mutable n_delegated : int;
  mutable n_local : int;
}

let npartitions t = Array.length t.partitions

let bucket_of_key t key = abs (t.hash key) mod Array.length t.ns_table

let partition_of_key t key =
  let b = bucket_of_key t key in
  Simops.charge_read (t.ns_base + (b / 8));
  t.ns_table.(b)
let partition_data t pid = t.partitions.(pid).data
let client_hw t i = t.placement.(i)
let delegated_ops t = t.n_delegated
let local_ops t = t.n_local

let create sched ~nclients ~locality_size ~hash ?ns_sz ?(ring_slots = 16) ?(check_budget = 4)
    ?(marshal_cost = 100) ?(dispatch_cost = 250) ?(dedicated_pollers = false) ~mk_data () =
  assert (nclients > 0 && locality_size > 0);
  let m = Sthread.machine sched in
  let topo = Machine.topology m in
  let placement = Topology.placement topo ~n:nclients in
  let nparts = (nclients + locality_size - 1) / locality_size in
  let ns_sz = match ns_sz with Some n -> max n nparts | None -> 64 * nparts in
  let mk_partition pid =
    let node = Topology.socket_of_thread topo placement.(pid * locality_size) in
    let info = { pid; node; alloc = Alloc.create m ~cold:(Alloc.Node node) } in
    let mk_ring _client =
      let mk_slot _ =
        { maddr = Machine.alloc m (Machine.On_node node) ~lines:1; toggle = false; op = None; ret = 0 }
      in
      let rlock =
        if dedicated_pollers then
          Some (Dps_sync.Spinlock.embed ~addr:(Machine.alloc m (Machine.On_node node) ~lines:1))
        else None
      in
      { slots = Array.init ring_slots mk_slot; send_idx = 0; recv_idx = 0; rlock }
    in
    { info; data = mk_data info; rings = Array.init nclients mk_ring }
  in
  {
    sched;
    partitions = Array.init nparts mk_partition;
    nclients;
    locality_size;
    hash;
    check_budget;
    marshal_cost;
    dispatch_cost;
    placement;
    clients = Hashtbl.create (2 * nclients);
    ns_table = Array.init ns_sz (fun b -> b mod nparts);
    ns_base = Machine.alloc m Machine.Interleave ~lines:((ns_sz + 7) / 8);
    remaining = nclients;
    n_delegated = 0;
    n_local = 0;
  }

let attach t ~client =
  assert (client >= 0 && client < t.nclients);
  let my_pid = client / t.locality_size in
  let my_index = client mod t.locality_size in
  (* §4.3: the flat array of a partition's rings is divided across the
     cores of that locality, so peers serve disjoint rings without
     synchronization. *)
  let served =
    Array.of_list
      (List.filter_map
         (fun c -> if c mod t.locality_size = my_index then Some (my_pid, c) else None)
         (List.init t.nclients Fun.id))
  in
  Hashtbl.replace t.clients (Sthread.self_id ())
    { tid = client; hw = Sthread.self_hw (); my_pid; served; cursor = 0 }

let me t =
  match Hashtbl.find_opt t.clients (Sthread.self_id ()) with
  | Some c -> c
  | None -> failwith "Dps: thread not attached"

let cursor_advance cl scanned n = if n > 0 then cl.cursor <- (cl.cursor + max 1 scanned) mod n

(* Drain up to [budget] pending requests from one ring. When dedicated
   pollers are active, the ring lock serializes us with them; on contention
   we simply skip the ring. *)
let serve_ring t ring ~budget =
  let proceed =
    match ring.rlock with None -> true | Some l -> Dps_sync.Spinlock.try_acquire l
  in
  if not proceed then 0
  else begin
    let served = ref 0 in
    let continue_ring = ref true in
    while !continue_ring && !served < budget do
      let slot = ring.slots.(ring.recv_idx mod Array.length ring.slots) in
      Simops.read slot.maddr;
      match slot.op with
      | Some op when slot.toggle ->
          (* request unmarshalling and dispatch *)
          Simops.work t.dispatch_cost;
          let v = op () in
          slot.op <- None;
          slot.ret <- v;
          slot.toggle <- false;
          Simops.write slot.maddr;
          ring.recv_idx <- ring.recv_idx + 1;
          incr served
      | Some _ | None -> continue_ring := false
    done;
    (match ring.rlock with None -> () | Some l -> Dps_sync.Spinlock.release l);
    !served
  end

(* Serve at most [budget] pending requests from this client's share of its
   partition's rings, scanning round-robin from a persistent cursor so no
   ring starves under load; returns the number served. *)
let serve_as t cl ~max:budget =
  let p = t.partitions.(cl.my_pid) in
  let served = ref 0 in
  let i = ref 0 in
  let n = Array.length cl.served in
  while !served < budget && !i < n do
    let _, ring_idx = cl.served.((cl.cursor + !i) mod n) in
    served := !served + serve_ring t p.rings.(ring_idx) ~budget:(budget - !served);
    incr i
  done;
  cursor_advance cl !i n;
  !served

let serve t ~max = serve_as t (me t) ~max

let run_local t pid op =
  t.n_local <- t.n_local + 1;
  (* the runtime still interposes on local operations (§5.2 notes the
     overhead this causes for small update ratios) *)
  Simops.work (t.dispatch_cost / 4);
  op t.partitions.(pid).data

(* Claim a free slot in this client's ring to [pid], serving own duties
   while the ring is full. *)
let claim_slot t cl pid =
  let ring = t.partitions.(pid).rings.(cl.tid) in
  let rec try_claim () =
    let slot = ring.slots.(ring.send_idx mod Array.length ring.slots) in
    Simops.read slot.maddr;
    if slot.toggle then begin
      (* ring full: overlap with serving (§4.3) *)
      if serve_as t cl ~max:t.check_budget = 0 then Simops.work 64;
      try_claim ()
    end
    else begin
      ring.send_idx <- ring.send_idx + 1;
      slot
    end
  in
  try_claim ()

let send t cl pid op =
  let slot = claim_slot t cl pid in
  let p = t.partitions.(pid) in
  (* argument marshalling into the message line *)
  Simops.work t.marshal_cost;
  slot.op <- Some (fun () -> op p.data);
  slot.toggle <- true;
  Simops.write slot.maddr;
  t.n_delegated <- t.n_delegated + 1;
  slot

let execute t ~key op =
  let cl = me t in
  let pid = partition_of_key t key in
  if pid = cl.my_pid then Local (run_local t pid op) else Remote (send t cl pid op)

let try_await t completion =
  match completion with
  | Local v -> Some v
  | Remote slot ->
      Simops.read slot.maddr;
      if not slot.toggle then Some slot.ret
      else begin
        ignore (serve t ~max:t.check_budget);
        None
      end

let await t completion =
  match completion with
  | Local v -> v
  | Remote _ ->
      (* escalate the pause while the locality has nothing to serve, so a
         long-running remote operation does not turn into a polling storm *)
      let pause = ref 32 in
      let rec spin () =
        match completion with
        | Local v -> v
        | Remote slot -> (
            Simops.read slot.maddr;
            if not slot.toggle then slot.ret
            else begin
              if serve t ~max:t.check_budget > 0 then pause := 32
              else begin
                Simops.work !pause;
                pause := min 4096 (2 * !pause)
              end;
              spin ()
            end)
      in
      spin ()

let call t ~key op = await t (execute t ~key op)

let execute_async t ~key op =
  let cl = me t in
  let pid = partition_of_key t key in
  if pid = cl.my_pid then ignore (run_local t pid op) else ignore (send t cl pid op)

let execute_local t ~key op =
  let pid = partition_of_key t key in
  t.n_local <- t.n_local + 1;
  op t.partitions.(pid).data

let range t op ~merge =
  let cl = me t in
  let pending =
    Array.to_list
      (Array.mapi
         (fun pid _ ->
           if pid = cl.my_pid then Local (run_local t pid op) else Remote (send t cl pid op))
         t.partitions)
  in
  match List.map (await t) pending with
  | [] -> invalid_arg "Dps.range: no partitions"
  | v :: rest -> List.fold_left merge v rest

let my_partition t = (me t).my_pid

let execute_on t ~pid op =
  assert (pid >= 0 && pid < npartitions t);
  let cl = me t in
  if pid = cl.my_pid then Local (run_local t pid op) else Remote (send t cl pid op)

let call_on t ~pid op = await t (execute_on t ~pid op)

let execute_async_on t ~pid op =
  let cl = me t in
  if pid = cl.my_pid then ignore (run_local t pid op) else ignore (send t cl pid op)

(* S4.4 liveness: a dedicated polling thread for one locality. It checks
   every ring of the partition (not just one peer's share), so delegations
   make progress even when all the locality's clients are busy outside
   DPS. Requires [~dedicated_pollers:true] at creation. *)
let run_poller t ~pid =
  let p = t.partitions.(pid) in
  (match p.rings.(0).rlock with
  | Some _ -> ()
  | None -> failwith "Dps: create with ~dedicated_pollers:true to run pollers");
  while t.remaining > 0 do
    let served = ref 0 in
    Array.iter (fun ring -> served := !served + serve_ring t ring ~budget:max_int) p.rings;
    if !served = 0 then Simops.work 128
  done

(* Dynamic repartitioning (the paper assumes static partitioning and notes
   the dynamic variant is possible; S3.3). Moving a bucket is two phases:
   extract the bucket's items from the old owner, then retarget the bucket
   and insert the items at the new owner. Operations racing the window see
   the bucket's keys as absent — the same relaxed, non-linearizable
   contract as range operations. *)
let rebalance t ~bucket ~to_ ~extract ~insert =
  assert (bucket >= 0 && bucket < Array.length t.ns_table);
  assert (to_ >= 0 && to_ < npartitions t);
  let from = t.ns_table.(bucket) in
  if from <> to_ then begin
    let moved = ref [] in
    ignore
      (call_on t ~pid:from (fun data ->
           moved := extract data bucket;
           List.length !moved));
    t.ns_table.(bucket) <- to_;
    Simops.write (t.ns_base + (bucket / 8));
    List.iter
      (fun (key, value) -> ignore (call_on t ~pid:to_ (fun data -> insert data ~key ~value; 0)))
      !moved
  end

let bucket_owner t ~bucket = t.ns_table.(bucket)

let client_done t = t.remaining <- t.remaining - 1

let drain t =
  let cl = me t in
  while t.remaining > 0 do
    if serve_as t cl ~max:t.check_budget = 0 then Simops.work 128
  done;
  (* No client will issue again; flush leftover (e.g. asynchronous)
     requests still sitting in this peer's share of the rings. *)
  while serve_as t cl ~max:max_int > 0 do
    ()
  done

module Machine = Dps_machine.Machine
module Topology = Dps_machine.Topology
module Sthread = Dps_sthread.Sthread
module Simops = Dps_sthread.Simops
module Alloc = Dps_sthread.Alloc

(* May the current socket keep the global lock and hand off locally? *)
let handoff_budget = 16

type cohort = {
  local_lock : Mcs.t;
  state_addr : int;
  (* Has this socket's cohort been handed the global lock by a peer? *)
  mutable owns_global : bool;
  mutable handoffs : int;  (* consecutive local hand-offs *)
  mutable waiting : int;  (* local threads queued on the cohort *)
}

type t = {
  global : Ticket.t;
  cohorts : cohort array;  (* per socket *)
  topo : Topology.t;
  mutable global_transfers : int;
}

let create alloc m =
  let topo = Machine.topology m in
  let mk_cohort node =
    {
      local_lock = Mcs.create alloc;
      state_addr = Machine.alloc m (Machine.On_node node) ~lines:1;
      owns_global = false;
      handoffs = 0;
      waiting = 0;
    }
  in
  {
    global = Ticket.create alloc;
    cohorts = Array.init topo.Topology.sockets mk_cohort;
    topo;
    global_transfers = 0;
  }

let my_cohort t = t.cohorts.(Topology.socket_of_thread t.topo (Sthread.self_hw ()))

let acquire t =
  let c = my_cohort t in
  (* announce interest so a releasing peer prefers a local hand-off *)
  Simops.rmw c.state_addr;
  c.waiting <- c.waiting + 1;
  Mcs.acquire c.local_lock;
  Simops.rmw c.state_addr;
  c.waiting <- c.waiting - 1;
  if not c.owns_global then begin
    Ticket.acquire t.global;
    t.global_transfers <- t.global_transfers + 1;
    c.owns_global <- true;
    c.handoffs <- 0;
    Simops.write c.state_addr
  end

let release t =
  let c = my_cohort t in
  Simops.read c.state_addr;
  let keep_local = c.waiting > 0 && c.handoffs < handoff_budget in
  if keep_local then begin
    (* hand the global lock off within the socket: just release the local
       MCS lock; [owns_global] stays set *)
    c.handoffs <- c.handoffs + 1;
    Mcs.release c.local_lock
  end
  else begin
    c.owns_global <- false;
    Simops.write c.state_addr;
    Ticket.release t.global;
    Mcs.release c.local_lock
  end

let global_handoffs t = t.global_transfers

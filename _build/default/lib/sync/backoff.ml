type t = { initial : int; cap : int; mutable cur : int }

let create ?(initial = 32) ?(cap = 512) () = { initial; cap; cur = initial }

let once t =
  Dps_sthread.Simops.work t.cur;
  t.cur <- min t.cap (2 * t.cur)

let reset t = t.cur <- t.initial

(** OPTIK version lock (Guerraoui & Trigonakis, PPoPP'16).

    A counter that doubles as a lock: even = free, odd = held. Optimistic
    sections read the version, run without locks, then [try_lock_at] both
    validates that nothing changed and acquires in a single atomic step. *)

type t

val create : Dps_sthread.Alloc.t -> t
val embed : addr:int -> t

val get_version : t -> int
(** Charged read of the current version (may be odd = locked). *)

val is_locked : int -> bool

val try_lock_at : t -> int -> bool
(** [try_lock_at t v] atomically acquires iff the version still equals [v]
    and is even. Failure means a conflicting update: restart the section. *)

val lock : t -> unit
(** Pessimistic acquisition (spin). *)

val unlock : t -> unit

(** Ticket lock (FIFO). One cache line holds both counters, as in the
    classic implementation, so waiters share a line with the releaser. *)

type t

val create : Dps_sthread.Alloc.t -> t
val embed : addr:int -> t
val acquire : t -> unit
val release : t -> unit
val held : t -> bool

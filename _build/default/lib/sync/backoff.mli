(** Exponential backoff for spin loops (charged compute cycles). *)

type t

val create : ?initial:int -> ?cap:int -> unit -> t
val once : t -> unit
(** Spin for the current delay and double it (up to the cap). *)

val reset : t -> unit

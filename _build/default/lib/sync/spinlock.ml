module Simops = Dps_sthread.Simops

type t = { addr : int; mutable locked : bool }

let create alloc = { addr = Dps_sthread.Alloc.line alloc; locked = false }
let embed ~addr = { addr; locked = false }

let try_acquire t =
  Simops.rmw t.addr;
  if t.locked then false
  else begin
    t.locked <- true;
    true
  end

let acquire t =
  let b = Backoff.create () in
  let rec loop () =
    Simops.read t.addr;
    if t.locked then begin
      Backoff.once b;
      loop ()
    end
    else if not (try_acquire t) then begin
      Backoff.once b;
      loop ()
    end
  in
  loop ()

let release t =
  assert t.locked;
  t.locked <- false;
  Simops.write t.addr

let held t = t.locked

(** Cohort lock (Dice, Marathe & Shavit, PPoPP'12) — the NUMA-aware lock
    the paper's related work contrasts with DPS's approach. A global ticket
    lock is held by a *socket*; threads of that socket pass the lock
    through a per-socket MCS queue (up to a hand-off budget) before
    releasing it globally, so the lock's hot line migrates between sockets
    rarely instead of on every acquisition. *)

type t

val create : Dps_sthread.Alloc.t -> Dps_machine.Machine.t -> t
val acquire : t -> unit
val release : t -> unit

val global_handoffs : t -> int
(** Cross-socket lock transfers performed (tests/ablation). *)

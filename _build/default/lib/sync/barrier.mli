(** Sense-reversing centralized barrier for simulated threads. *)

type t

val create : Dps_sthread.Alloc.t -> parties:int -> t
val await : t -> unit

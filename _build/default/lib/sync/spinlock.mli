(** Test-and-test-and-set spinlock with exponential backoff.

    The lock word occupies (or is embedded in) a simulated cache line, so
    contended acquisition generates the coherence traffic the paper blames
    for shared-memory scalability collapse. *)

type t

val create : Dps_sthread.Alloc.t -> t
val embed : addr:int -> t
(** Share a cache line with other data (e.g. a list node's line). *)

val acquire : t -> unit
val try_acquire : t -> bool
val release : t -> unit
val held : t -> bool

lib/sync/barrier.ml: Backoff Dps_sthread

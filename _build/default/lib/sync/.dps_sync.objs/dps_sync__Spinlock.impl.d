lib/sync/spinlock.ml: Backoff Dps_sthread

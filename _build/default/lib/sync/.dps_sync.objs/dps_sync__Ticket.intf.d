lib/sync/ticket.mli: Dps_sthread

lib/sync/cohort.ml: Array Dps_machine Dps_sthread Mcs Ticket

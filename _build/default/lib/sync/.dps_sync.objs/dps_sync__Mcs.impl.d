lib/sync/mcs.ml: Backoff Dps_sthread Hashtbl Option

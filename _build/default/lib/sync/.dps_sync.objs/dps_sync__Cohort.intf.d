lib/sync/cohort.mli: Dps_machine Dps_sthread

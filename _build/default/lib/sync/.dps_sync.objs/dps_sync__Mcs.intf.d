lib/sync/mcs.mli: Dps_sthread

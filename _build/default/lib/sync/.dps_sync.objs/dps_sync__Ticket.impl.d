lib/sync/ticket.ml: Backoff Dps_sthread

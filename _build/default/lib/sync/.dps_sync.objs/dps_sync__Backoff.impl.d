lib/sync/backoff.ml: Dps_sthread

lib/sync/barrier.mli: Dps_sthread

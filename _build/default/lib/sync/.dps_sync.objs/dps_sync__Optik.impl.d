lib/sync/optik.ml: Backoff Dps_sthread

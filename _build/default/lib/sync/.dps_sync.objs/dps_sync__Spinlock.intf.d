lib/sync/spinlock.mli: Dps_sthread

lib/sync/optik.mli: Dps_sthread

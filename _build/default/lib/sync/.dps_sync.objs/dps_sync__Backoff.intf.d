lib/sync/backoff.mli:

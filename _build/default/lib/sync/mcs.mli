(** MCS queue lock (Mellor-Crummey & Scott).

    Waiters enqueue a node allocated on their own NUMA node and spin on it
    locally; the releaser writes exactly one remote line to hand the lock
    over. This is the lock used by the paper's microbenchmarks and by the
    ParSec linked list inside DPS localities. *)

type t

val create : Dps_sthread.Alloc.t -> t
val acquire : t -> unit
val release : t -> unit
val held : t -> bool

module Simops = Dps_sthread.Simops

type t = { addr : int; mutable next : int; mutable owner : int }

let create alloc = { addr = Dps_sthread.Alloc.line alloc; next = 0; owner = 0 }
let embed ~addr = { addr; next = 0; owner = 0 }

let acquire t =
  Simops.rmw t.addr;
  let my = t.next in
  t.next <- my + 1;
  let b = Backoff.create ~initial:16 ~cap:256 () in
  while t.owner <> my do
    Simops.read t.addr;
    if t.owner <> my then Backoff.once b
  done

let release t =
  t.owner <- t.owner + 1;
  Simops.write t.addr

let held t = t.owner < t.next

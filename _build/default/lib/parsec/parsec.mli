(** ParSec (Wang, Stamler & Parmer, EuroSys'16) — the runtime the paper
    builds DPS on, reproduced at the fidelity DPS needs: time-based
    quiescence for memory reclamation and wait-free read sections.

    A reader enters a section by publishing the current global time to its
    own slot (one local store); a writer that has unlinked a node calls
    {!quiesce}, which waits until every thread's published time passes the
    unlink time — after which no reader can still hold the node. OCaml's GC
    makes the actual free a no-op, so the *cost* of quiescence (the store
    on the read path is avoided... the read path's only cost is one local
    line write, and the write path blocks) is what this module charges —
    the same trade the paper measures through the ParSec list and
    memcached. *)

type t

val create : Dps_sthread.Alloc.t -> t

val enter : t -> unit
(** Begin a read section: publish the simulated time to the caller's slot
    (a write to the caller's own, node-local line). *)

val exit : t -> unit
(** End the read section (publishes "quiescent"). *)

val quiesce : t -> unit
(** Block until every thread that was inside a read section when this call
    started has left it — the grace period a writer pays after unlinking. *)

val active_readers : t -> int
(** Threads currently inside read sections (tests). *)

(** The ParSec sorted linked list of §5.2: wait-free reads inside ParSec
    quiescence sections, writers serialized by a single MCS lock, unlinked
    nodes reclaimed only after a grace period. This is the list the paper
    integrates with DPS for the Figure 10 experiments.

    Implements {!Dps_ds.Set_intf.SET}. *)

type t

val name : string
val create : Dps_sthread.Alloc.t -> t
val insert : t -> key:int -> value:int -> bool
val remove : t -> int -> bool
val lookup : t -> int -> int option
val to_list : t -> (int * int) list
val check_invariants : t -> unit
val maintenance : t -> unit

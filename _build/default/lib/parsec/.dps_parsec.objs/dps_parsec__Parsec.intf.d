lib/parsec/parsec.mli: Dps_sthread

lib/parsec/parsec_list.ml: Dps_sthread Dps_sync List Option Parsec

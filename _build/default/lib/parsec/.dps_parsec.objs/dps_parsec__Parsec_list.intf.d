lib/parsec/parsec_list.mli: Dps_sthread

lib/parsec/parsec.ml: Dps_sthread Dps_sync Hashtbl List

(** Named counters for simulation statistics. *)

type t

val create : unit -> t
val incr : t -> string -> unit
val add : t -> string -> int -> unit
val get : t -> string -> int
val reset : t -> unit
val to_list : t -> (string * int) list
(** Sorted by name. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = next64 t in
  { state = mix64 (Int64.logxor s 0xA5A5A5A5A5A5A5A5L) }

let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  v /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next64 t) 1L = 1L

let below t p = float t 1.0 < p

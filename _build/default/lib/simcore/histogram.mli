(** Log-scale latency histograms with percentile queries.

    Samples are non-negative integers (cycles). Buckets grow geometrically,
    giving ~2% relative resolution over [0, 2^62] at a fixed, small memory
    cost — good enough for p50/p99/p99.9 tail-latency reporting. *)

type t

val create : unit -> t
val add : t -> int -> unit
val count : t -> int
val mean : t -> float

val percentile : t -> float -> int
(** [percentile t 0.99] is an upper bound on the p99 sample (bucket upper
    edge). Returns 0 on an empty histogram. *)

val max_value : t -> int
val merge_into : dst:t -> t -> unit

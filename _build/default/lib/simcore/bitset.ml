type t = { words : int array; cap : int }

let create n =
  assert (n >= 0);
  { words = Array.make ((n + 62) / 63) 0; cap = n }

let capacity t = t.cap

let check t i = assert (i >= 0 && i < t.cap)

let add t i =
  check t i;
  let w = i / 63 in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod 63))

let remove t i =
  check t i;
  let w = i / 63 in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod 63))

let mem t i =
  check t i;
  t.words.(i / 63) land (1 lsl (i mod 63)) <> 0

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t =
  let rec go i = i >= Array.length t.words || (t.words.(i) = 0 && go (i + 1)) in
  go 0

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let bits = ref t.words.(w) in
    while !bits <> 0 do
      let low = !bits land - !bits in
      let rec log2 n acc = if n = 1 then acc else log2 (n lsr 1) (acc + 1) in
      f ((w * 63) + log2 low 0);
      bits := !bits land lnot low
    done
  done

let fold f init t =
  let acc = ref init in
  iter (fun i -> acc := f !acc i) t;
  !acc

exception Found

let exists p t =
  try
    iter (fun i -> if p i then raise Found) t;
    false
  with Found -> true

let singleton_or_empty t =
  match fold (fun acc i -> i :: acc) [] t with
  | [ i ] -> Some i
  | _ -> None

(** Fixed-capacity mutable bitsets.

    Used for cache-coherence sharer sets (one bit per core). Capacity is
    fixed at creation; indices outside [0, capacity) are programming errors
    and trip an assertion. *)

type t

val create : int -> t
(** [create n] is an empty set over universe [0..n-1]. *)

val capacity : t -> int
val add : t -> int -> unit
val remove : t -> int -> unit
val mem : t -> int -> bool
val clear : t -> unit
val cardinal : t -> int
val is_empty : t -> bool

val iter : (int -> unit) -> t -> unit
(** Iterate set members in increasing order. *)

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

val exists : (int -> bool) -> t -> bool

val singleton_or_empty : t -> int option
(** [Some i] if the set is exactly [{i}]; [None] otherwise (empty or >1). *)

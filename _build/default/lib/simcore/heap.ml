type 'a entry = { time : int; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let dummy = Obj.magic 0

let create () = { data = Array.make 64 dummy; len = 0; next_seq = 0 }

let is_empty t = t.len = 0
let size t = t.len

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let bigger = Array.make (2 * Array.length t.data) dummy in
  Array.blit t.data 0 bigger 0 t.len;
  t.data <- bigger

let push t ~time payload =
  if t.len = Array.length t.data then grow t;
  let e = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  let i = ref t.len in
  t.len <- t.len + 1;
  t.data.(!i) <- e;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less e t.data.(parent) then begin
      t.data.(!i) <- t.data.(parent);
      t.data.(parent) <- e;
      i := parent
    end
    else continue := false
  done

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    let last = t.data.(t.len) in
    t.data.(t.len) <- dummy;
    if t.len > 0 then begin
      t.data.(0) <- last;
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && less t.data.(l) t.data.(!smallest) then smallest := l;
        if r < t.len && less t.data.(r) t.data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.data.(!i) in
          t.data.(!i) <- t.data.(!smallest);
          t.data.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.time, top.payload)
  end

let min_time t = if t.len = 0 then None else Some t.data.(0).time

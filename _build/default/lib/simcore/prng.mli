(** Deterministic pseudo-random number generation for the simulator.

    Every simulated thread and every model component that needs randomness
    owns its own [t], derived from an experiment seed, so simulation results
    are reproducible regardless of scheduling order. The generator is
    splitmix64, which is fast and has a convenient [split] operation for
    deriving independent streams. *)

type t

val create : int64 -> t
(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent stream and advances [t]. *)

val next64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val below : t -> float -> bool
(** [below t p] is true with probability [p]. *)

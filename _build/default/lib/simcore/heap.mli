(** Binary min-heap keyed by [(time, seq)].

    This is the simulator's event queue. Ties on [time] are broken by an
    insertion sequence number so the simulation is deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:int -> 'a -> unit
(** Sequence numbers are assigned internally in push order. *)

val pop : 'a t -> (int * 'a) option
(** Pop the minimum [(time, payload)], or [None] if empty. *)

val min_time : 'a t -> int option

lib/simcore/bitset.mli:

lib/simcore/histogram.mli:

lib/simcore/heap.mli:

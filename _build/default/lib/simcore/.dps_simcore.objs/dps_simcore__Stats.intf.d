lib/simcore/stats.mli:

lib/simcore/prng.mli:

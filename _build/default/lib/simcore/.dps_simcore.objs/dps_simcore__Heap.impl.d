lib/simcore/heap.ml: Array Obj

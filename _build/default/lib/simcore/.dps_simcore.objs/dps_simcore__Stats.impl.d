lib/simcore/stats.ml: Hashtbl List String

lib/simcore/histogram.ml: Array

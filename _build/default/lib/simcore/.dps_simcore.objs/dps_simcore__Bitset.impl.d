lib/simcore/bitset.ml: Array

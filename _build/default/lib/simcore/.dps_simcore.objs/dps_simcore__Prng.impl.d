lib/simcore/prng.ml: Int64

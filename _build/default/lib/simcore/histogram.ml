(* Buckets: value v >= 0 maps to bucket (msb * sub + subindex) where the top
   [sub_bits] bits below the most significant bit index sub-buckets. *)

let sub_bits = 5
let sub = 1 lsl sub_bits

type t = {
  buckets : int array;
  mutable total : int;
  mutable sum : float;
  mutable maxv : int;
}

let nbuckets = 63 * sub

let create () = { buckets = Array.make nbuckets 0; total = 0; sum = 0.0; maxv = 0 }

let msb_index v =
  (* index of the most significant set bit; v > 0 *)
  let rec go v acc = if v = 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let bucket_of v =
  if v < sub then v
  else
    let m = msb_index v in
    let low = (v lsr (m - sub_bits)) land (sub - 1) in
    ((m - sub_bits + 1) * sub) + low

let upper_edge b =
  if b < sub then b
  else
    let m = (b / sub) + sub_bits - 1 in
    let low = b mod sub in
    ((sub + low + 1) lsl (m - sub_bits)) - 1

let add t v =
  let v = if v < 0 then 0 else v in
  let b = bucket_of v in
  t.buckets.(b) <- t.buckets.(b) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum +. float_of_int v;
  if v > t.maxv then t.maxv <- v

let count t = t.total
let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total
let max_value t = t.maxv

let percentile t p =
  if t.total = 0 then 0
  else begin
    let target = int_of_float (ceil (p *. float_of_int t.total)) in
    let target = if target < 1 then 1 else target in
    let acc = ref 0 in
    let result = ref t.maxv in
    (try
       for b = 0 to nbuckets - 1 do
         acc := !acc + t.buckets.(b);
         if !acc >= target then begin
           result := min (upper_edge b) t.maxv;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let merge_into ~dst src =
  for b = 0 to nbuckets - 1 do
    dst.buckets.(b) <- dst.buckets.(b) + src.buckets.(b)
  done;
  dst.total <- dst.total + src.total;
  dst.sum <- dst.sum +. src.sum;
  if src.maxv > dst.maxv then dst.maxv <- src.maxv

lib/machine/cachebox.mli: Dps_simcore

lib/machine/topology.mli:

lib/machine/costs.ml:

lib/machine/topology.ml: Array

lib/machine/cachebox.ml: Array Dps_simcore Hashtbl

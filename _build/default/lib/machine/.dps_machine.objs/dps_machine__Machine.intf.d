lib/machine/machine.mli: Costs Dps_simcore Topology

lib/machine/costs.mli:

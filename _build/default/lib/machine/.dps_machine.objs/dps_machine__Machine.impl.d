lib/machine/machine.ml: Array Cachebox Costs Dps_simcore Hashtbl Printf Topology

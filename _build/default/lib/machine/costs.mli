(** Cycle costs of the memory system.

    The defaults approximate the paper's Xeon E7-4850: cheap private-cache
    hits, a local-LLC hit an order of magnitude dearer, and cross-socket
    transfers / remote DRAM several times dearer again. The relative order
    (priv < llc < dram_local < llc_remote ~ dram_remote) is what produces
    the paper's scalability shapes. *)

type t = {
  priv_hit : int;  (** L1/L2 blend *)
  llc_hit : int;  (** local-socket LLC hit *)
  llc_remote : int;  (** cache-to-cache transfer from a remote socket *)
  dram_local : int;
  dram_remote : int;
  inval_local : int;  (** invalidating sharers confined to this socket *)
  inval_remote : int;  (** invalidating at least one remote-socket sharer *)
  rmw_extra : int;  (** added by atomic read-modify-writes *)
  walk_local : int;  (** TLB-miss page walk, page homed locally *)
  walk_remote : int;  (** page walk against a remote node's page tables *)
}

val default : t

(** A capacity-bounded set of cache-line addresses with O(1) random
    eviction — the container behind each private cache and each LLC.

    Random replacement approximates LRU well enough to reproduce capacity
    misses (the property the paper's figures depend on) at a fraction of the
    bookkeeping cost. *)

type t

val create : capacity:int -> Dps_simcore.Prng.t -> t
val capacity : t -> int
val size : t -> int
val mem : t -> int -> bool

val add : t -> int -> int option
(** Insert an address. If the box was full, returns [Some victim] — the
    evicted address (never the one just inserted). No-op if present. *)

val remove : t -> int -> unit

type t = {
  priv_hit : int;
  llc_hit : int;
  llc_remote : int;
  dram_local : int;
  dram_remote : int;
  inval_local : int;
  inval_remote : int;
  rmw_extra : int;
  walk_local : int;
  walk_remote : int;
}

let default =
  {
    priv_hit = 6;
    llc_hit = 44;
    llc_remote = 220;
    dram_local = 150;
    dram_remote = 320;
    inval_local = 44;
    inval_remote = 180;
    rmw_extra = 18;
    walk_local = 90;
    walk_remote = 200;
  }

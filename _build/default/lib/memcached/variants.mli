(** The five memcached configurations compared in §5.3, behind one
    client-facing record so benchmarks and examples drive them identically. *)

type t = {
  name : string;
  attach : int -> unit;  (** call once per client thread, with its index *)
  get : int -> bool;
  set : key:int -> val_lines:int -> unit;
  finish : unit -> unit;  (** call when the client stops issuing *)
  populate : keys:int array -> val_lines:int -> unit;  (** cold pre-load *)
  client_hw : int -> int;  (** where to pin client [i] *)
}

val stock :
  Dps_sthread.Sthread.t -> nclients:int -> buckets:int -> capacity:int -> t
(** One shared instance; locked-LRU read path. *)

val parsec :
  Dps_sthread.Sthread.t -> nclients:int -> buckets:int -> capacity:int -> t
(** One shared instance; store-free (CLOCK) read path. *)

val ffwd_mc :
  Dps_sthread.Sthread.t -> nclients:int -> buckets:int -> capacity:int -> t
(** Everything delegated to a single ffwd server on hardware thread 0;
    clients are placed to avoid it. *)

val dps_mc :
  Dps_sthread.Sthread.t ->
  nclients:int ->
  locality_size:int ->
  buckets:int ->
  capacity:int ->
  t
(** Hash, LRU and slab all partitioned with DPS; sets delegated
    asynchronously, gets synchronously. *)

val dps_parsec :
  Dps_sthread.Sthread.t ->
  nclients:int ->
  locality_size:int ->
  buckets:int ->
  capacity:int ->
  t
(** DPS partitioning over the ParSec-style core; store-free gets run
    locally (§4.4 local execution), sets delegated asynchronously. *)

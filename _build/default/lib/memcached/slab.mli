(** Slab allocator in the spirit of memcached's: power-of-two size classes,
    one free list per class, one metadata cache line per class charged on
    every allocate/free. *)

type t

val create : Dps_sthread.Alloc.t -> t

val allocate : t -> lines:int -> int
(** Allocate a chunk of at least [lines] cache lines; returns its base
    address. Reuses freed chunks of the same class first. *)

val free : t -> base:int -> lines:int -> unit
val free_chunks : t -> int

lib/memcached/variants.ml: Array Dps Dps_ffwd Dps_machine Dps_sthread Mc_core

lib/memcached/mc_core.ml: Dps_sthread Item Lru Mc_hash Slab

lib/memcached/variants.mli: Dps_sthread

lib/memcached/lru.mli: Dps_sthread Item

lib/memcached/mc_core.mli: Dps_sthread

lib/memcached/lru.ml: Dps_sthread Dps_sync Item

lib/memcached/slab.mli: Dps_sthread

lib/memcached/slab.ml: Array Dps_sthread List

lib/memcached/mc_hash.mli: Dps_sthread Item

lib/memcached/item.ml:

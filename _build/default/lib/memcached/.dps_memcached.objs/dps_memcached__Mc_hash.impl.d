lib/memcached/mc_hash.ml: Array Dps_sthread Dps_sync Item

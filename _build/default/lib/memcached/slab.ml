(** Slab allocator in the spirit of memcached's: power-of-two size classes,
    one free list per class, and one metadata cache line per class whose
    lock is taken (one charged atomic) on every allocate/free — the slab
    lock traffic stock memcached pays. *)

module Simops = Dps_sthread.Simops
module Alloc = Dps_sthread.Alloc

type klass = { meta_addr : int; chunk_lines : int; mutable free : int list }

type t = { alloc : Alloc.t; classes : klass array }

let nclasses = 12 (* chunk sizes 1 .. 2048 lines *)

let create alloc =
  let mk i = { meta_addr = Alloc.line alloc; chunk_lines = 1 lsl i; free = [] } in
  { alloc; classes = Array.init nclasses mk }

let class_for t lines =
  let rec go i =
    if i >= nclasses - 1 || t.classes.(i).chunk_lines >= lines then i else go (i + 1)
  in
  go 0

(** Allocate a chunk of at least [lines] cache lines; returns its base
    address. Reuses freed chunks of the same class first. *)
let allocate t ~lines =
  let k = t.classes.(class_for t lines) in
  Simops.rmw k.meta_addr;
  match k.free with
  | base :: rest ->
      k.free <- rest;
      base
  | [] -> Alloc.lines t.alloc k.chunk_lines

let free t ~base ~lines =
  let k = t.classes.(class_for t lines) in
  Simops.rmw k.meta_addr;
  k.free <- base :: k.free

let free_chunks t = Array.fold_left (fun acc k -> acc + List.length k.free) 0 t.classes

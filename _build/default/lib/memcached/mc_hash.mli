(** memcached's item hash table: chained buckets, a spinlock embedded in
    each bucket's cache line. *)

type t

val create : Dps_sthread.Alloc.t -> buckets:int -> t

val find : t -> int -> Item.t option
(** Locked lookup. *)

val find_nolock : t -> int -> Item.t option
(** Store-free read path (ParSec-style gets): reads the bucket without
    taking its lock; may miss an item being concurrently inserted. *)

val insert : t -> Item.t -> unit
val remove : t -> int -> Item.t option

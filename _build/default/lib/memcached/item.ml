(** A cache item: one header cache line plus a value block of [val_lines]
    lines. Items are threaded through both the hash chain and the LRU
    list / CLOCK ring, as in memcached. *)

type t = {
  key : int;
  haddr : int;  (* header line *)
  mutable val_base : int;  (* value block (from the slab allocator) *)
  mutable val_lines : int;
  mutable stamp : int;  (* version; bumped by sets *)
  (* hash chain *)
  mutable hnext : t option;
  (* LRU links *)
  mutable lprev : t option;
  mutable lnext : t option;
  mutable in_lru : bool;
  (* CLOCK reference bit (ParSec-style read path sets nothing; the sweep
     clears this, and sets mark it) *)
  mutable referenced : bool;
}

let make ~key ~haddr ~val_base ~val_lines =
  {
    key;
    haddr;
    val_base;
    val_lines;
    stamp = 0;
    hnext = None;
    lprev = None;
    lnext = None;
    in_lru = false;
    referenced = true;
  }

(** Intrusive doubly-linked LRU list over items, guarded by one lock — the
    structure whose bump-on-every-get makes stock memcached's read path
    store-heavy and contended. *)

type t

val create : Dps_sthread.Alloc.t -> t
val count : t -> int

val insert : t -> Item.t -> unit
(** Push a (non-resident) item to the front. *)

val touch : t -> Item.t -> unit
(** The get-path bump: move a resident item to the front. *)

val remove : t -> Item.t -> unit

val pop_tail : t -> Item.t option
(** Remove and return the least-recently-used item. *)

(** memcached's item hash table: chained buckets, a spinlock embedded in
    each bucket's cache line. *)

module Simops = Dps_sthread.Simops
module Alloc = Dps_sthread.Alloc
module Spinlock = Dps_sync.Spinlock

type bucket = { baddr : int; lock : Spinlock.t; mutable chain : Item.t option }

type t = { buckets : bucket array; mask : int }

let rec pow2 n = if n <= 1 then 1 else 2 * pow2 ((n + 1) / 2)

let create alloc ~buckets:n =
  let n = pow2 n in
  let base = Alloc.lines alloc n in
  let mk i =
    let baddr = base + i in
    { baddr; lock = Spinlock.embed ~addr:baddr; chain = None }
  in
  { buckets = Array.init n mk; mask = n - 1 }

let bucket_of t key = (key * 0x9E3779B1) lsr 7 land t.mask

let with_bucket t key f =
  let b = t.buckets.(bucket_of t key) in
  Spinlock.acquire b.lock;
  let r = f b in
  Spinlock.release b.lock;
  r

(* Chain walk, one charged read per item header. *)
let find_in_chain key chain =
  let rec go = function
    | None -> None
    | Some (it : Item.t) ->
        Simops.charge_read it.Item.haddr;
        if it.Item.key = key then Some it else go it.Item.hnext
  in
  let r = go chain in
  Simops.flush ();
  r

(** Lock-free read path (bucket line is read, not locked): used by
    ParSec-style gets. A concurrent insert may be missed; that is the
    documented optimistic-read trade. *)
let find_nolock t key =
  let b = t.buckets.(bucket_of t key) in
  Simops.charge_read b.baddr;
  find_in_chain key b.chain

let find t key = with_bucket t key (fun b -> find_in_chain key b.chain)

let insert t (it : Item.t) =
  with_bucket t it.Item.key (fun b ->
      it.Item.hnext <- b.chain;
      Simops.write it.Item.haddr;
      b.chain <- Some it;
      Simops.write b.baddr)

let remove t key =
  with_bucket t key (fun b ->
      let rec unlink prev = function
        | None -> None
        | Some (it : Item.t) ->
            Simops.charge_read it.Item.haddr;
            if it.Item.key = key then begin
              Simops.flush ();
              (match prev with
              | None ->
                  b.chain <- it.Item.hnext;
                  Simops.write b.baddr
              | Some (p : Item.t) ->
                  p.Item.hnext <- it.Item.hnext;
                  Simops.write p.Item.haddr);
              Some it
            end
            else unlink (Some it) it.Item.hnext
      in
      let r = unlink None b.chain in
      Simops.flush ();
      r)

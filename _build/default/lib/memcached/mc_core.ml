(** One memcached shard: item hash + recency structure + slab allocator,
    with capacity-triggered eviction.

    [recency] selects the read path the paper contrasts:
    - [Lru_list]: stock memcached — every get bumps the item to the front
      of a locked LRU list (stores + a shared lock on the read path);
    - [Clock]: ParSec-style — gets are store-free; sets mark a reference
      bit and eviction gives referenced items a second chance (CLOCK). *)

module Simops = Dps_sthread.Simops
module Alloc = Dps_sthread.Alloc

type recency = Lru_list | Clock

type t = {
  alloc : Alloc.t;
  hash : Mc_hash.t;
  lru : Lru.t;  (* in Clock mode this is the second-chance FIFO *)
  slab : Slab.t;
  recency : recency;
  capacity : int;
  mutable evictions : int;
  mutable gets : int;
  mutable sets : int;
  mutable hits : int;
}

let create alloc ~buckets ~capacity ~recency =
  assert (capacity > 0);
  {
    alloc;
    hash = Mc_hash.create alloc ~buckets;
    lru = Lru.create alloc;
    slab = Slab.create alloc;
    recency;
    capacity;
    evictions = 0;
    gets = 0;
    sets = 0;
    hits = 0;
  }

let size t = Lru.count t.lru
let evictions t = t.evictions
let hit_rate t = if t.gets = 0 then 0.0 else float_of_int t.hits /. float_of_int t.gets

let touch_value it =
  for l = 0 to it.Item.val_lines - 1 do
    Simops.charge_read (it.Item.val_base + l)
  done;
  Simops.flush ()

let write_value it =
  for l = 0 to it.Item.val_lines - 1 do
    Simops.write (it.Item.val_base + l)
  done

(* memcached rate-limits LRU reordering (an item is bumped at most once
   per minute); approximate with one bump per [bump_interval] hits of the
   same item, which keeps the recency order while shedding most of the
   LRU-lock traffic. *)
let bump_interval = 8

let should_bump (it : Item.t) =
  it.Item.stamp <- it.Item.stamp + 1;
  it.Item.stamp mod bump_interval = 0

(** [get t key] returns [true] on a hit and touches the value lines. *)
let get t key =
  t.gets <- t.gets + 1;
  match t.recency with
  | Lru_list -> (
      match Mc_hash.find t.hash key with
      | None -> false
      | Some it ->
          touch_value it;
          if should_bump it then Lru.touch t.lru it;
          t.hits <- t.hits + 1;
          true)
  | Clock -> (
      (* store-free read path *)
      match Mc_hash.find_nolock t.hash key with
      | None -> false
      | Some it ->
          touch_value it;
          t.hits <- t.hits + 1;
          true)

(* CLOCK as second-chance FIFO: referenced tail items get their bit cleared
   and go back to the front. *)
let rec clock_victim t guard =
  match Lru.pop_tail t.lru with
  | None -> None
  | Some it ->
      Simops.read it.Item.haddr;
      if it.Item.referenced && guard > 0 then begin
        it.Item.referenced <- false;
        Simops.write it.Item.haddr;
        Lru.insert t.lru it;
        clock_victim t (guard - 1)
      end
      else Some it

let evict_one t =
  let victim =
    match t.recency with
    | Lru_list -> Lru.pop_tail t.lru
    | Clock -> clock_victim t (2 * Lru.count t.lru)
  in
  match victim with
  | None -> ()
  | Some it ->
      t.evictions <- t.evictions + 1;
      (match Mc_hash.remove t.hash it.Item.key with Some _ | None -> ());
      Slab.free t.slab ~base:it.Item.val_base ~lines:it.Item.val_lines

(** [set t ~key ~val_lines] inserts or updates (evicting at capacity). *)
let set t ~key ~val_lines =
  t.sets <- t.sets + 1;
  match Mc_hash.find t.hash key with
  | Some it ->
      (* in-place update when the size class still fits; else reallocate *)
      if it.Item.val_lines <> val_lines then begin
        Slab.free t.slab ~base:it.Item.val_base ~lines:it.Item.val_lines;
        it.Item.val_base <- Slab.allocate t.slab ~lines:val_lines;
        it.Item.val_lines <- val_lines
      end;
      it.Item.stamp <- it.Item.stamp + 1;
      it.Item.referenced <- true;
      Simops.write it.Item.haddr;
      write_value it;
      (match t.recency with Lru_list -> Lru.touch t.lru it | Clock -> ())
  | None ->
      if size t >= t.capacity then evict_one t;
      let base = Slab.allocate t.slab ~lines:val_lines in
      let it = Item.make ~key ~haddr:(Alloc.line t.alloc) ~val_base:base ~val_lines in
      Simops.write it.Item.haddr;
      write_value it;
      Mc_hash.insert t.hash it;
      Lru.insert t.lru it

let delete t key =
  match Mc_hash.remove t.hash key with
  | None -> false
  | Some it ->
      Lru.remove t.lru it;
      Slab.free t.slab ~base:it.Item.val_base ~lines:it.Item.val_lines;
      true

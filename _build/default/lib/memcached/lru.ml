(** Intrusive doubly-linked LRU list over items, guarded by one lock — the
    structure whose bump-on-every-get makes stock memcached's read path
    store-heavy and contended. *)

module Simops = Dps_sthread.Simops
module Alloc = Dps_sthread.Alloc
module Spinlock = Dps_sync.Spinlock

type t = {
  lock : Spinlock.t;
  mutable head : Item.t option;  (* most recent *)
  mutable tail : Item.t option;  (* eviction victim *)
  mutable count : int;
}

let create alloc = { lock = Spinlock.create alloc; head = None; tail = None; count = 0 }

let count t = t.count

(* Callers hold [t.lock]. Unlink writes the neighbours' header lines. *)
let unlink t (it : Item.t) =
  assert it.Item.in_lru;
  (match it.Item.lprev with
  | Some p ->
      p.Item.lnext <- it.Item.lnext;
      Simops.write p.Item.haddr
  | None -> t.head <- it.Item.lnext);
  (match it.Item.lnext with
  | Some n ->
      n.Item.lprev <- it.Item.lprev;
      Simops.write n.Item.haddr
  | None -> t.tail <- it.Item.lprev);
  it.Item.lprev <- None;
  it.Item.lnext <- None;
  it.Item.in_lru <- false;
  t.count <- t.count - 1

let push_front_locked t (it : Item.t) =
  assert (not it.Item.in_lru);
  it.Item.lnext <- t.head;
  it.Item.lprev <- None;
  Simops.write it.Item.haddr;
  (match t.head with
  | Some h ->
      h.Item.lprev <- Some it;
      Simops.write h.Item.haddr
  | None -> t.tail <- Some it);
  t.head <- Some it;
  it.Item.in_lru <- true;
  t.count <- t.count + 1

let insert t it =
  Spinlock.acquire t.lock;
  push_front_locked t it;
  Spinlock.release t.lock

(** The get-path bump: move an item to the front. *)
let touch t it =
  Spinlock.acquire t.lock;
  if it.Item.in_lru then begin
    unlink t it;
    push_front_locked t it
  end;
  Spinlock.release t.lock

let remove t it =
  Spinlock.acquire t.lock;
  if it.Item.in_lru then unlink t it;
  Spinlock.release t.lock

(** Pop the least-recently-used item (eviction victim). *)
let pop_tail t =
  Spinlock.acquire t.lock;
  let victim = t.tail in
  (match victim with Some it -> unlink t it | None -> ());
  Spinlock.release t.lock;
  victim

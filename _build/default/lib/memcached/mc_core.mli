(** One memcached shard: item hash + recency structure + slab allocator,
    with capacity-triggered eviction.

    [recency] selects the read path the paper contrasts: [Lru_list] is
    stock memcached (rate-limited bumps of a locked LRU list on gets);
    [Clock] is ParSec-style (store-free gets, second-chance eviction). *)

type recency = Lru_list | Clock

type t

val create : Dps_sthread.Alloc.t -> buckets:int -> capacity:int -> recency:recency -> t

val get : t -> int -> bool
(** [true] on a hit; touches the value lines. *)

val set : t -> key:int -> val_lines:int -> unit
(** Insert or update, evicting at capacity. *)

val delete : t -> int -> bool
val size : t -> int
val evictions : t -> int
val hit_rate : t -> float

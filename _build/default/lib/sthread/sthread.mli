(** Simulated threads on a deterministic discrete-event scheduler.

    Each simulated thread is an OCaml 5 fiber pinned to a hardware thread of
    the simulated {!Dps_machine.Machine.t}. Charged operations ({!work},
    {!read}, {!write}, {!rmw}) suspend the fiber and resume it once the
    simulated clock has advanced by the operation's cost, so fibers
    interleave at memory-access granularity — lock-free retry loops, CAS
    races and delegation hand-offs genuinely happen.

    The scheduler is driven by {!run}; all other functions in this interface
    must be called from inside a simulated thread. *)

type t

val create : Dps_machine.Machine.t -> t
val machine : t -> Dps_machine.Machine.t

val spawn : t -> hw:int -> (unit -> unit) -> unit
(** Create a thread pinned to hardware thread [hw], runnable at the current
    simulated time. May be called from outside or inside the simulation. *)

val run : ?until:int -> t -> unit
(** Execute events in time order until the queue drains (all threads
    finished) or the next event lies past [until]. Re-entrant calls are not
    allowed. Exceptions raised by threads propagate. *)

val now : t -> int
(** Current simulated time in cycles (last dispatched event). *)

val live_threads : t -> int

(** {1 Operations available inside a simulated thread} *)

val in_sim : unit -> bool
(** Whether the caller is executing inside a simulated thread. Library code
    uses this to run the same logic charged (in simulation) or cold (setup
    and verification outside the simulation). *)

val self_hw : unit -> int
(** Hardware thread the calling fiber is pinned to. *)

val self_id : unit -> int
(** Dense per-scheduler thread index, in spawn order. *)

val self_prng : unit -> Dps_simcore.Prng.t
(** Deterministic per-thread random stream. *)

val time : unit -> int

val work : int -> unit
(** Spend [n] compute cycles (dilated if the hyperthread sibling is active). *)

val read : int -> unit
(** Charged load of one cache line; a scheduling point. *)

val write : int -> unit
(** Charged store; a scheduling point. *)

val rmw : int -> unit
(** Charged atomic read-modify-write; a scheduling point. *)

val access_pipelined : factor:int -> kind:Dps_machine.Machine.kind -> int -> unit
(** Charged access whose latency is divided by [factor] (at least one
    cycle): models memory-level parallelism when a thread streams many
    independent accesses — e.g. the ffwd server sweeping its request lines,
    which the paper credits for ffwd's batching advantage. The coherence
    state transition is applied in full; only the charged latency shrinks. *)

val charge_read : int -> unit
(** Account a load without suspending — used by long read-only traversals to
    batch up to a handful of hops per scheduling point. Pair with {!flush}. *)

val flush : unit -> unit
(** Suspend for all cycles accumulated by {!charge_read} (no-op if none). *)

val yield : unit -> unit
(** Give up the processor for one cycle. *)

module Machine = Dps_machine.Machine
module Topology = Dps_machine.Topology

type cold = Spread | Node of int

type t = { m : Machine.t; cold : cold; mutable rr : int }

let create m ~cold = { m; cold; rr = 0 }
let machine t = t.m

let policy t =
  if Sthread.in_sim () then
    Machine.On_node (Topology.socket_of_thread (Machine.topology t.m) (Sthread.self_hw ()))
  else
    match t.cold with
    | Node n -> Machine.On_node n
    | Spread ->
        let n = t.rr in
        t.rr <- (t.rr + 1) mod (Machine.topology t.m).Topology.sockets;
        Machine.On_node n

let lines t n = Machine.alloc t.m (policy t) ~lines:n
let line t = lines t 1

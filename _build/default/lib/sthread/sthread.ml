module Heap = Dps_simcore.Heap
module Prng = Dps_simcore.Prng
module Machine = Dps_machine.Machine

type tstate = { tid : int; hw : int; prng : Prng.t; mutable pending : int }

type t = {
  m : Machine.t;
  events : (unit -> unit) Heap.t;
  mutable time : int;
  mutable live : int;
  mutable next_tid : int;
  root_prng : Prng.t;
}

(* The scheduler runs on a single OS thread, so "the thread currently
   executing" is a plain module-level slot set before each resumption. *)
let current : (t * tstate) option ref = ref None

let ctx () =
  match !current with
  | Some c -> c
  | None -> failwith "Sthread: called from outside a simulated thread"

let create m =
  { m; events = Heap.create (); time = 0; live = 0; next_tid = 0; root_prng = Prng.create 7L }

let machine t = t.m
let now t = t.time
let live_threads t = t.live

type _ Effect.t += Suspend : int -> unit Effect.t

let suspend cycles = Effect.perform (Suspend cycles)

let rec exec t state f =
  let open Effect.Deep in
  match_with f ()
    {
      retc =
        (fun () ->
          Machine.set_active t.m ~thread:state.hw false;
          t.live <- t.live - 1);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend n ->
              Some
                (fun (k : (a, unit) continuation) ->
                  Heap.push t.events ~time:(t.time + max 0 n) (fun () ->
                      current := Some (t, state);
                      continue k ()))
          | _ -> None);
    }

and spawn t ~hw f =
  let state = { tid = t.next_tid; hw; prng = Prng.split t.root_prng; pending = 0 } in
  t.next_tid <- t.next_tid + 1;
  t.live <- t.live + 1;
  Machine.set_active t.m ~thread:hw true;
  Heap.push t.events ~time:t.time (fun () ->
      current := Some (t, state);
      exec t state f)

let run ?until t =
  let saved = !current in
  Fun.protect
    ~finally:(fun () -> current := saved)
    (fun () ->
      let keep_going = ref true in
      while !keep_going do
        match Heap.min_time t.events with
        | None -> keep_going := false
        | Some tm when (match until with Some u -> tm > u | None -> false) ->
            keep_going := false
        | Some _ -> (
            match Heap.pop t.events with
            | None -> keep_going := false
            | Some (tm, thunk) ->
                t.time <- tm;
                thunk ())
      done)

let in_sim () = !current <> None
let self_hw () = (snd (ctx ())).hw
let self_id () = (snd (ctx ())).tid
let self_prng () = (snd (ctx ())).prng
let time () = (fst (ctx ())).time

(* Any suspending operation first drains charges accumulated by
   [charge_read], so batched traversal costs land before the operation. *)
let take_pending state =
  let p = state.pending in
  state.pending <- 0;
  p

let work n =
  let t, state = ctx () in
  let cost = Machine.work_cost t.m ~thread:state.hw n in
  suspend (cost + take_pending state)

let access kind addr =
  let t, state = ctx () in
  let cost = Machine.access t.m ~now:t.time ~thread:state.hw ~addr ~kind in
  suspend (cost + take_pending state)

let read addr = access Machine.Read addr
let write addr = access Machine.Write addr
let rmw addr = access Machine.Rmw addr

let access_pipelined ~factor ~kind addr =
  assert (factor >= 1);
  let t, state = ctx () in
  let cost = Machine.access t.m ~now:t.time ~thread:state.hw ~addr ~kind in
  suspend (max 1 (cost / factor) + take_pending state)

let charge_read addr =
  let t, state = ctx () in
  state.pending <- state.pending + Machine.access t.m ~now:t.time ~thread:state.hw ~addr ~kind:Machine.Read

let flush () =
  let _, state = ctx () in
  if state.pending > 0 then begin
    let n = state.pending in
    state.pending <- 0;
    suspend n
  end

let yield () =
  let _, state = ctx () in
  suspend (1 + take_pending state)

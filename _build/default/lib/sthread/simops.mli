(** Cold-aware charged operations.

    Thin wrappers over {!Sthread} that become no-ops outside a simulated
    thread. Data-structure code uses these exclusively, so the same
    insert/lookup/remove paths serve both cold setup (population, test
    verification) and charged simulation. *)

val read : int -> unit
val write : int -> unit
val rmw : int -> unit
val charge_read : int -> unit
val flush : unit -> unit
val work : int -> unit

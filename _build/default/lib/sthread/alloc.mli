(** NUMA-aware cache-line allocator for simulated data structures.

    Inside a simulated thread, allocations follow the paper's default
    node-local policy: lines are homed on the allocating thread's socket.
    Outside the simulation (cold population) the [cold] placement applies. *)

type cold = Spread  (** round-robin sockets, like steady-state first-touch *)
          | Node of int  (** everything on one NUMA node *)

type t

val create : Dps_machine.Machine.t -> cold:cold -> t
val machine : t -> Dps_machine.Machine.t

val line : t -> int
(** Allocate one cache line; returns its address. *)

val lines : t -> int -> int
(** Allocate a contiguous run of lines; returns the base address. *)

lib/sthread/alloc.ml: Dps_machine Sthread

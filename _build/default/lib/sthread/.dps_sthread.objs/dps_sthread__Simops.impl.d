lib/sthread/simops.ml: Sthread

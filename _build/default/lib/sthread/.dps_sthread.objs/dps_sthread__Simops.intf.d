lib/sthread/simops.mli:

lib/sthread/alloc.mli: Dps_machine

lib/sthread/sthread.mli: Dps_machine Dps_simcore

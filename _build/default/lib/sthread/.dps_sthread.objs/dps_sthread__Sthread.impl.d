lib/sthread/sthread.ml: Dps_machine Dps_simcore Effect Fun

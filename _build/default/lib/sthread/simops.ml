let read addr = if Sthread.in_sim () then Sthread.read addr
let write addr = if Sthread.in_sim () then Sthread.write addr
let rmw addr = if Sthread.in_sim () then Sthread.rmw addr
let charge_read addr = if Sthread.in_sim () then Sthread.charge_read addr
let flush () = if Sthread.in_sim () then Sthread.flush ()
let work n = if Sthread.in_sim () then Sthread.work n

(** ffwd-style delegation (Roghanchi, Eriksson & Basu, SOSP'17) — the
    baseline the paper compares DPS against.

    Dedicated server threads own the data and execute every operation on
    behalf of clients. Each (client, server) pair has a private request
    cache line; responses are written in groups of up to 15 clients per
    response line, so a server pays one coherence transaction per batch of
    replies — ffwd's signature optimisation.

    A server's work is serialized: that is both ffwd's strength (no
    synchronization, perfect locality) and the weakness Figure 3 shows
    (throughput collapses as operation length grows). *)

type t

val create :
  Dps_sthread.Sthread.t ->
  server_hw:int array ->
  clients:int ->
  t
(** [create sched ~server_hw ~clients] spawns one server thread per element
    of [server_hw] (each pinned to that hardware thread) and sizes the
    request/response slots for [clients] client threads. Servers run until
    every client has called {!client_done}. *)

val nservers : t -> int

val attach : t -> client:int -> unit
(** Bind the calling simulated thread to client slot [client] (in
    [0, clients)). Must be called once before {!call}. *)

val call : t -> server:int -> (unit -> int) -> int
(** Delegate a closure to server [server] and spin until its reply arrives.
    Must be called from a simulated client thread. The closure runs on the
    server's hardware thread, so its memory accesses are charged there. *)

val client_done : t -> unit
(** Each client must call this exactly once when it finishes; servers shut
    down when all clients are done. *)

val server_batches : t -> int
(** Number of batched response-line writes performed (for tests). *)

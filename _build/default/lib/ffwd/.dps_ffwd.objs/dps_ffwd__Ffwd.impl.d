lib/ffwd/ffwd.ml: Array Dps_machine Dps_sthread Dps_sync Hashtbl

lib/ffwd/ffwd.mli: Dps_sthread

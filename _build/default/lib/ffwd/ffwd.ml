module Machine = Dps_machine.Machine
module Topology = Dps_machine.Topology
module Sthread = Dps_sthread.Sthread
module Simops = Dps_sthread.Simops

let group_size = 15

type slot = {
  raddr : int;  (* the (client, server) request line *)
  mutable seq : int;  (* bumped by the client per request *)
  mutable op : (unit -> int) option;
  mutable resp_seq : int;  (* published via the group's response line *)
  mutable resp : int;
}

type group = { gaddr : int; slots : slot array }

type server = { hw : int; groups : group array; mutable mlp : int (* see below *) }

type t = {
  sched : Sthread.t;
  servers : server array;
  clients : int;
  ids : (int, int) Hashtbl.t;  (* simulated thread id -> client slot *)
  mutable remaining : int;
  mutable batches : int;
}

let nservers t = Array.length t.servers
let server_batches t = t.batches

(* The server streams independent request-line reads, so their miss
   latencies overlap — ffwd's documented pipelining, without which its
   batched replies would buy nothing. The achievable memory-level
   parallelism tracks how many pending requests the last sweep actually
   found: a saturated server overlaps ~8 misses, an idle one none. *)
let max_pipeline = 8

(* Dispatch on the server is a hand-tuned indirect call — almost free. *)
let server_dispatch_cycles = 16

let server_access srv ~kind addr =
  if Sthread.in_sim () then
    Sthread.access_pipelined ~factor:(max 1 (min max_pipeline srv.mlp)) ~kind addr

(* Scan one group: execute every pending request, then publish all replies
   with a single response-line write (ffwd's reply batching). *)
let serve_group t srv g =
  let found = ref 0 in
  Array.iter
    (fun s ->
      server_access srv ~kind:Dps_machine.Machine.Read s.raddr;
      match s.op with
      | Some op when s.seq > s.resp_seq ->
          incr found;
          s.op <- None;
          Simops.work server_dispatch_cycles;
          let v = op () in
          s.resp <- v;
          s.resp_seq <- s.seq
      | Some _ | None -> ())
    g.slots;
  if !found > 0 then begin
    server_access srv ~kind:Dps_machine.Machine.Write g.gaddr;
    t.batches <- t.batches + 1
  end;
  !found

let server_loop t srv () =
  while t.remaining > 0 do
    let found = ref 0 in
    Array.iter (fun g -> found := !found + serve_group t srv g) srv.groups;
    srv.mlp <- !found;
    if !found = 0 then Sthread.work 64 (* idle poll pause *)
  done

let create sched ~server_hw ~clients =
  assert (Array.length server_hw > 0 && clients > 0);
  let m = Sthread.machine sched in
  let topo = Machine.topology m in
  let ngroups = (clients + group_size - 1) / group_size in
  let mk_server hw =
    let node = Topology.socket_of_thread topo hw in
    let mk_group _ =
      let gaddr = Machine.alloc m (Machine.On_node node) ~lines:1 in
      let mk_slot _ =
        {
          raddr = Machine.alloc m (Machine.On_node node) ~lines:1;
          seq = 0;
          op = None;
          resp_seq = 0;
          resp = 0;
        }
      in
      { gaddr; slots = Array.init group_size mk_slot }
    in
    { hw; groups = Array.init ngroups mk_group; mlp = 1 }
  in
  let t =
    {
      sched;
      servers = Array.map mk_server server_hw;
      clients;
      ids = Hashtbl.create (2 * clients);
      remaining = clients;
      batches = 0;
    }
  in
  Array.iter (fun srv -> Sthread.spawn sched ~hw:srv.hw (server_loop t srv)) t.servers;
  t

let attach t ~client =
  assert (client >= 0 && client < t.clients);
  Hashtbl.replace t.ids (Sthread.self_id ()) client

let client_id t =
  match Hashtbl.find_opt t.ids (Sthread.self_id ()) with
  | Some c -> c
  | None -> failwith "Ffwd: thread not attached"

let call t ~server op =
  let srv_count = Array.length t.servers in
  assert (server >= 0 && server < srv_count);
  let cid = client_id t in
  let g = t.servers.(server).groups.(cid / group_size) in
  let slot = g.slots.(cid mod group_size) in
  (* marshal the call into the request line *)
  Simops.work 100;
  slot.seq <- slot.seq + 1;
  slot.op <- Some op;
  Simops.write slot.raddr;
  let want = slot.seq in
  (* replies can be millions of cycles away behind a serialized server;
     back off deeply rather than hammering the response line *)
  let b = Dps_sync.Backoff.create ~initial:32 ~cap:8192 () in
  while slot.resp_seq < want do
    Simops.read g.gaddr;
    if slot.resp_seq < want then Dps_sync.Backoff.once b
  done;
  slot.resp

let client_done t = t.remaining <- t.remaining - 1

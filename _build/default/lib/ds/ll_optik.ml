(** Linked list built with the OPTIK pattern (Guerraoui & Trigonakis,
    PPoPP'16): optimistic unsynchronized traversal, then a version-validating
    try-lock on the predecessor replaces the usual lock-then-validate dance. *)

module Simops = Dps_sthread.Simops
module Alloc = Dps_sthread.Alloc
module Optik = Dps_sync.Optik

type node = {
  key : int;
  mutable value : int;
  addr : int;
  lock : Optik.t;
  mutable removed : bool;
  mutable next : node option;
}

type t = { alloc : Alloc.t; head : node }

let name = "optik"

let mk_node alloc key value next =
  let addr = Alloc.line alloc in
  { key; value; addr; lock = Optik.embed ~addr; removed = false; next }

let create alloc =
  let tail = mk_node alloc max_int 0 None in
  { alloc; head = mk_node alloc min_int 0 (Some tail) }

(* Traverse reading each pred's version *before* its next pointer, so an
   unchanged version at lock time proves the link we followed still holds. *)
let search t key =
  let rec go pred vpred =
    let curr = Option.get pred.next in
    Simops.charge_read curr.addr;
    if curr.key >= key then begin
      Simops.flush ();
      (pred, vpred, curr)
    end
    else go curr (Optik.get_version curr.lock)
  in
  go t.head (Optik.get_version t.head.lock)

(* A version-validated lock does not prove the predecessor is still in the
   list: a traversal may reach a node after it was unlinked and its remover
   already released the lock (the version is stable again). Re-checking
   [removed] *after* acquiring is sound — a held lock blocks any remover. *)
let rec insert t ~key ~value =
  let pred, vpred, curr = search t key in
  if curr.key = key && not curr.removed then false
  else if curr.key = key then (* concurrently removed; wait out the unlink *)
    insert t ~key ~value
  else if Optik.try_lock_at pred.lock vpred then
    if pred.removed then begin
      Optik.unlock pred.lock;
      insert t ~key ~value
    end
    else begin
      let n = mk_node t.alloc key value (Some curr) in
      Simops.write n.addr;
      pred.next <- Some n;
      (* the unlock's version bump publishes the change *)
      Optik.unlock pred.lock;
      true
    end
  else insert t ~key ~value

let rec remove t key =
  let pred, vpred, curr = search t key in
  if curr.key <> key then false
  else begin
    let vcurr = Optik.get_version curr.lock in
    if curr.removed then false
    else if Optik.try_lock_at pred.lock vpred then
      if Optik.try_lock_at curr.lock vcurr then begin
        if pred.removed || curr.removed then begin
          Optik.unlock curr.lock;
          Optik.unlock pred.lock;
          remove t key
        end
        else begin
          curr.removed <- true;
          pred.next <- curr.next;
          Optik.unlock curr.lock;
          Optik.unlock pred.lock;
          true
        end
      end
      else begin
        Optik.unlock pred.lock;
        remove t key
      end
    else remove t key
  end

let lookup t key =
  let _, _, curr = search t key in
  if curr.key = key && not curr.removed then Some curr.value else None

let to_list t =
  let rec go acc n =
    match n.next with
    | None -> List.rev acc
    | Some c -> if c.key = max_int then List.rev acc else go ((c.key, c.value) :: acc) c
  in
  go [] t.head

let check_invariants t =
  let rec go prev n =
    match n.next with
    | None -> if n.key <> max_int then failwith "ll_optik: missing tail sentinel"
    | Some c ->
        if c.key <= prev then failwith "ll_optik: keys not strictly increasing";
        if c.removed then failwith "ll_optik: reachable removed node";
        go c.key c
  in
  go min_int t.head

(* Offline maintenance hook (SET signature); nothing to do here. *)
let maintenance _ = ()

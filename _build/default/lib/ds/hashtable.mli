(** Chained hash table with a spinlock per bucket — memcached's structure
    and a natural fit for DPS partitions.

    Implements {!Set_intf.SET}. All operations are charged against the
    simulated machine when called from a simulated thread and are free
    (single-threaded) otherwise. *)

type t

val name : string
val create : Dps_sthread.Alloc.t -> t
val insert : t -> key:int -> value:int -> bool
val remove : t -> int -> bool
val lookup : t -> int -> int option
val to_list : t -> (int * int) list
val check_invariants : t -> unit
val maintenance : t -> unit

val create_sized : Dps_sthread.Alloc.t -> buckets:int -> t
(** [create] with an explicit bucket count (rounded up to a power of two). *)

val update : t -> key:int -> value:int -> bool
(** Overwrite an existing key's value; [false] if absent. *)

lib/ds/sl_herlihy.mli: Dps_sthread

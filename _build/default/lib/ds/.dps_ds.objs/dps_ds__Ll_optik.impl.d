lib/ds/ll_optik.ml: Dps_sthread Dps_sync List Option

lib/ds/ll_optik.mli: Dps_sthread

lib/ds/bst_internal_lf.ml: Dps_sthread List

lib/ds/btree_blink.ml: Array Dps_sthread Dps_sync List

lib/ds/ll_michael.mli: Dps_sthread

lib/ds/rlu_list.mli: Dps_sthread

lib/ds/ll_lazy.mli: Dps_sthread

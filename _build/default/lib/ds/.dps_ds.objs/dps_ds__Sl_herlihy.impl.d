lib/ds/sl_herlihy.ml: Array Dps_simcore Dps_sthread Dps_sync List Option Printf

lib/ds/ll_coarse.mli: Dps_sthread

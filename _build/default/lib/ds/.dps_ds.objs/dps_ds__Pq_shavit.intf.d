lib/ds/pq_shavit.mli: Dps_sthread

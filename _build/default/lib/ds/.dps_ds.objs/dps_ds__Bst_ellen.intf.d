lib/ds/bst_ellen.mli: Dps_sthread

lib/ds/hashtable.ml: Array Dps_sthread Dps_sync List

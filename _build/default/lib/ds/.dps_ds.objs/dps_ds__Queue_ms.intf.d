lib/ds/queue_ms.mli: Dps_sthread

lib/ds/bst_internal_lf.mli: Dps_sthread

lib/ds/rlu.ml: Dps_sthread Dps_sync Hashtbl List

lib/ds/stack_treiber.mli: Dps_sthread

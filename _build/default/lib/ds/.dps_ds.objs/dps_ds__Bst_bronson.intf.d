lib/ds/bst_bronson.mli: Dps_sthread

lib/ds/set_intf.ml: Dps_sthread

lib/ds/ll_coarse.ml: Dps_sthread Dps_sync List

lib/ds/sl_fraser.ml: Array Dps_simcore Dps_sthread Hashtbl List Option Printf

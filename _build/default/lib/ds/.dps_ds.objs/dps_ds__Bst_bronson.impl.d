lib/ds/bst_bronson.ml: Array Dps_sthread Dps_sync List

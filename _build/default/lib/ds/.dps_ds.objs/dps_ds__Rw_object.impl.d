lib/ds/rw_object.ml: Array Dps_machine Dps_simcore Dps_sthread

lib/ds/bst_tk.mli: Dps_sthread

lib/ds/hashtable.mli: Dps_sthread

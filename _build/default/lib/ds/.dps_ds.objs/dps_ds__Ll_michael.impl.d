lib/ds/ll_michael.ml: Dps_sthread List Option

lib/ds/rlu_list.ml: Dps_sthread Dps_sync List Option Rlu

lib/ds/btree_blink.mli: Dps_sthread

lib/ds/bst_ellen.ml: Dps_sthread

lib/ds/pq_shavit.ml: Sl_fraser

lib/ds/rlu.mli: Dps_sthread

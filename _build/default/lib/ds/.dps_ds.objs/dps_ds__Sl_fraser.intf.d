lib/ds/sl_fraser.mli: Dps_sthread

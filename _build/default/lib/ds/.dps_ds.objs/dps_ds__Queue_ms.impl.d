lib/ds/queue_ms.ml: Dps_sthread List

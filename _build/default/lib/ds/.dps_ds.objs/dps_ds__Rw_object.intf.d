lib/ds/rw_object.mli: Dps_machine

lib/ds/ll_lazy.ml: Dps_sthread Dps_sync List Option

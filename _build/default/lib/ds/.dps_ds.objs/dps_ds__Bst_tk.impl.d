lib/ds/bst_tk.ml: Dps_sthread Dps_sync

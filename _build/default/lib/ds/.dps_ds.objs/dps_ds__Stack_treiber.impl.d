lib/ds/stack_treiber.ml: Dps_sthread List

(** Michael & Scott's lock-free FIFO queue; see {!Dps_adapters.Queue} for
    the §3.4 broadcast adaptation. Values carry enqueue timestamps so the
    DPS adapter can pick the oldest front across partitions. *)

type t

val create : Dps_sthread.Alloc.t -> t
val enqueue : t -> int -> unit
val dequeue : t -> int option
val peek : t -> int option
val peek_stamp : t -> int option
val size : t -> int
val to_list : t -> int list
val check_invariants : t -> unit

(** The microbenchmark object of §5.1: an array of objects, each spanning a
    configurable number of cache lines. An operation reads and writes a
    given number of the object's lines — the knobs behind Figures 7 and 8
    (working-set size and coherence traffic). *)

module Simops = Dps_sthread.Simops
module Alloc = Dps_sthread.Alloc
module Machine = Dps_machine.Machine

type obj = { base : int; nlines : int }

type t = { objects : obj array; write_lines : int }

(** [create m policy ~objects ~lines ~write_lines] allocates [objects]
    objects of [lines] cache lines each under the given NUMA [policy].
    Operations touch [write_lines] of each object's lines. *)
let create m policy ~objects ~lines ~write_lines =
  assert (objects > 0 && lines > 0 && write_lines >= 0 && write_lines <= lines);
  let mk _ = { base = Machine.alloc m policy ~lines; nlines = lines } in
  { objects = Array.init objects mk; write_lines }

(** Same, but each object homed on the NUMA node chosen by [node_of]. *)
let create_partitioned m ~node_of ~objects ~lines ~write_lines =
  assert (objects > 0 && lines > 0 && write_lines >= 0 && write_lines <= lines);
  let mk i = { base = Machine.alloc m (Machine.On_node (node_of i)) ~lines; nlines = lines } in
  { objects = Array.init objects mk; write_lines }

let nobjects t = Array.length t.objects
let home_hint t i f = f t.objects.(i).base

(** Read-modify-write of object [i]: read then write [write_lines] lines,
    read the rest. *)
let operate t i =
  let o = t.objects.(i) in
  for l = 0 to o.nlines - 1 do
    if l < t.write_lines then begin
      Simops.read (o.base + l);
      Simops.write (o.base + l)
    end
    else Simops.charge_read (o.base + l)
  done;
  Simops.flush ()

(** Read-modify-write of a random [window] of object [i]'s lines — the
    Table 2 access pattern: a huge resident object of which each operation
    touches a slice. *)
let operate_window t i ~window =
  let o = t.objects.(i) in
  let window = min window o.nlines in
  let start =
    if Dps_sthread.Sthread.in_sim () then
      let p = Dps_sthread.Sthread.self_prng () in
      Dps_simcore.Prng.int p (max 1 (o.nlines - window + 1))
    else 0
  in
  for l = start to start + window - 1 do
    if l - start < t.write_lines then begin
      Simops.read (o.base + l);
      Simops.write (o.base + l)
    end
    else Simops.charge_read (o.base + l)
  done;
  Simops.flush ()

(** Read-only scan of object [i]. *)
let scan t i =
  let o = t.objects.(i) in
  for l = 0 to o.nlines - 1 do
    Simops.charge_read (o.base + l)
  done;
  Simops.flush ()

(** Optimistic lock-based internal BST in the style of Bronson et al.
    (PPoPP'10) — the paper's [lb-b]; see DESIGN.md for the stand-in level.

    Implements {!Set_intf.SET}. All operations are charged against the
    simulated machine when called from a simulated thread and are free
    (single-threaded) otherwise. *)

type t

val name : string
val create : Dps_sthread.Alloc.t -> t
val insert : t -> key:int -> value:int -> bool
val remove : t -> int -> bool
val lookup : t -> int -> int option
val to_list : t -> (int * int) list
val check_invariants : t -> unit
val maintenance : t -> unit

val rebalance : t -> unit
(** Cold-only: rebuild perfectly balanced (also exposed as [maintenance]). *)

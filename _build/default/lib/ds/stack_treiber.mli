(** Treiber's lock-free stack; see DESIGN.md and {!Dps_adapters.Stack} for
    the §3.4 broadcast adaptation. Values carry push timestamps so the DPS
    adapter can pick the youngest top across partitions. *)

type t

val create : Dps_sthread.Alloc.t -> t
val push : t -> int -> unit
val pop : t -> int option
val peek : t -> int option
val peek_stamp : t -> int option
val size : t -> int
val to_list : t -> int list
val check_invariants : t -> unit

(** Skiplist-based concurrent priority queue (Shavit & Lotan, IPDPS'00) —
    the paper's [lf-s]. [remove_min] logically deletes the first unmarked
    bottom-level node with one CAS. *)

type t

val name : string
val create : Dps_sthread.Alloc.t -> t
val insert : t -> key:int -> value:int -> bool
val remove : t -> int -> bool
val lookup : t -> int -> int option

val find_min : t -> (int * int) option
val remove_min : t -> (int * int) option

val to_list : t -> (int * int) list
val check_invariants : t -> unit

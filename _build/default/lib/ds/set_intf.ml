(** The common shape of the key/value set structures evaluated in the paper
    (§5.2): linked lists, binary search trees and skip lists all represent a
    set of nodes with unique integer keys and three operations. *)

module type SET = sig
  type t

  val name : string
  (** Short tag matching the paper's legends (e.g. ["lf-m"]). *)

  val create : Dps_sthread.Alloc.t -> t

  val insert : t -> key:int -> value:int -> bool
  (** [true] if the key was absent and has been added. *)

  val remove : t -> int -> bool
  (** [true] if the key was present and has been removed. *)

  val lookup : t -> int -> int option

  val to_list : t -> (int * int) list
  (** Sorted contents; for cold verification only. *)

  val check_invariants : t -> unit
  (** Raise [Failure] on a broken structural invariant; cold use only. *)

  val maintenance : t -> unit
  (** Offline maintenance after cold population (cold use only). A no-op
      for most structures; the Bronson-style tree rebalances here, standing
      in for the rebalancing its real counterpart performs continuously. *)
end

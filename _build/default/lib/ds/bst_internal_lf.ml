(** Lock-free internal binary search tree with logical deletion.

    Reproduction stand-in for the paper's [lf-h] (Howley & Jones, SPAA'12),
    which is also an internal non-blocking tree: values live in internal
    nodes, removal tombstones the node in place with a CAS and leaves it as
    a routing node, and insertion either revives a tombstone or CAS-links a
    fresh node under its parent. This keeps Howley's characteristic cost
    profile — cheap in-place updates, read-only lookups, trees that only
    grow structurally. *)

module Simops = Dps_sthread.Simops
module Alloc = Dps_sthread.Alloc

type node = {
  key : int;
  mutable value : int;
  addr : int;
  mutable present : bool;
  mutable left : node option;
  mutable right : node option;
}

type t = { alloc : Alloc.t; root : node }

let name = "lf-h"

let mk_node alloc key value present =
  { key; value; addr = Alloc.line alloc; present; left = None; right = None }

let create alloc = { alloc; root = mk_node alloc min_int 0 false }

(* Descend to the node holding [key], or to the parent under which it
   belongs. Pure charged reads. *)
let rec descend_from n key =
  Simops.charge_read n.addr;
  if key = n.key then begin
    Simops.flush ();
    `Found n
  end
  else
    let child = if key < n.key then n.left else n.right in
    match child with
    | Some c -> descend_from c key
    | None ->
        Simops.flush ();
        `Slot n

let rec insert t ~key ~value =
  match descend_from t.root key with
  | `Found n ->
      if n.present then false
      else begin
        (* revive the tombstone *)
        Simops.rmw n.addr;
        if n.present then false
        else begin
          n.value <- value;
          n.present <- true;
          true
        end
      end
  | `Slot p ->
      let n = mk_node t.alloc key value true in
      Simops.write n.addr;
      Simops.rmw p.addr;
      let slot_free = if key < p.key then p.left = None else p.right = None in
      if slot_free then begin
        if key < p.key then p.left <- Some n else p.right <- Some n;
        true
      end
      else (* lost the race: retry from the parent's new child *)
        insert t ~key ~value

let remove t key =
  match descend_from t.root key with
  | `Slot _ -> false
  | `Found n ->
      if not n.present then false
      else begin
        Simops.rmw n.addr;
        if n.present then begin
          n.present <- false;
          true
        end
        else false
      end

let lookup t key =
  match descend_from t.root key with
  | `Slot _ -> None
  | `Found n -> if n.present then Some n.value else None

let to_list t =
  let rec go acc n =
    let acc = match n.left with Some l -> go acc l | None -> acc in
    let acc = if n.present then (n.key, n.value) :: acc else acc in
    match n.right with Some r -> go acc r | None -> acc
  in
  List.rev (go [] t.root)

let check_invariants t =
  let rec go lo hi n =
    if not (n.key >= lo && n.key < hi) then failwith "bst_internal_lf: key out of range";
    (match n.left with Some l -> go lo n.key l | None -> ());
    match n.right with Some r -> go n.key hi r | None -> ()
  in
  (match t.root.left with Some l -> go min_int t.root.key l | None -> ());
  match t.root.right with Some r -> go t.root.key max_int r | None -> ()

(* Offline maintenance hook (SET signature); nothing to do here. *)
let maintenance _ = ()

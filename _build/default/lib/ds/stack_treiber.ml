(** Treiber's lock-free stack — the classic top-pointer CAS structure. §3.4
    of the paper discusses stacks as data structures with insertion-time
    ordering constraints that DPS supports through broadcast operations
    (see {!Dps_adapters.Stack}); this is the per-partition implementation,
    and also a shared-memory baseline whose single hot top line collapses
    under cross-socket contention. *)

module Simops = Dps_sthread.Simops
module Alloc = Dps_sthread.Alloc

type node = { value : int; stamp : int; addr : int; next : node option }

type t = { alloc : Alloc.t; top_addr : int; mutable top : node option; mutable pushes : int }

let create alloc = { alloc; top_addr = Alloc.line alloc; top = None; pushes = 0 }

let now_stamp () = if Dps_sthread.Sthread.in_sim () then Dps_sthread.Sthread.time () else 0

let rec push t value =
  Simops.read t.top_addr;
  let seen = t.top in
  let n = { value; stamp = now_stamp (); addr = Alloc.line t.alloc; next = seen } in
  Simops.write n.addr;
  (* CAS top: compare-and-swing at a single charged atomic *)
  Simops.rmw t.top_addr;
  if t.top == seen then begin
    t.top <- Some n;
    t.pushes <- t.pushes + 1
  end
  else push t value

let rec pop t =
  Simops.read t.top_addr;
  match t.top with
  | None -> None
  | Some n ->
      Simops.charge_read n.addr;
      Simops.rmw t.top_addr;
      if (match t.top with Some m -> m == n | None -> false) then begin
        t.top <- n.next;
        Some n.value
      end
      else pop t

let peek t =
  Simops.read t.top_addr;
  match t.top with
  | None -> None
  | Some n ->
      Simops.charge_read n.addr;
      Simops.flush ();
      Some n.value

(** Push time of the current top (for the DPS broadcast pop). *)
let peek_stamp t =
  Simops.read t.top_addr;
  match t.top with
  | None -> None
  | Some n ->
      Simops.charge_read n.addr;
      Simops.flush ();
      Some n.stamp

let size t =
  let rec go acc = function None -> acc | Some n -> go (acc + 1) n.next in
  go 0 t.top

let to_list t =
  let rec go acc = function None -> List.rev acc | Some n -> go (n.value :: acc) n.next in
  go [] t.top

let check_invariants t =
  (* the chain must be acyclic and its length finite *)
  let rec go seen = function
    | None -> ()
    | Some n ->
        if List.memq n seen then failwith "stack_treiber: cycle in chain";
        go (n :: seen) n.next
  in
  go [] t.top

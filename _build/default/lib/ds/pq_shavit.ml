(** Skiplist-based concurrent priority queue (Shavit & Lotan, IPDPS'00) —
    the paper's [lf-s]. Built directly on the lock-free skip list:
    [remove_min] scans the bottom level for the first unmarked node and
    logically deletes it with one CAS; physical removal reuses the
    skiplist's search cleanup. *)

module Sl = Sl_fraser

type t = Sl.t

let name = "lf-s"
let create = Sl.create

let insert t ~key ~value = Sl.insert t ~key ~value
let remove t key = Sl.remove t key
let lookup t key = Sl.lookup t key

let find_min = Sl.peek_min
let remove_min = Sl.remove_min

let to_list = Sl.to_list
let check_invariants = Sl.check_invariants

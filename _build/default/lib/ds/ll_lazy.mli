(** Lazy concurrent list-based set (Heller et al., OPODIS'05) — the paper's
    [lb-l]: wait-free traversal, per-node locks, logical marking.

    Implements {!Set_intf.SET}. All operations are charged against the
    simulated machine when called from a simulated thread and are free
    (single-threaded) otherwise. *)

type t

val name : string
val create : Dps_sthread.Alloc.t -> t
val insert : t -> key:int -> value:int -> bool
val remove : t -> int -> bool
val lookup : t -> int -> int option
val to_list : t -> (int * int) list
val check_invariants : t -> unit
val maintenance : t -> unit

(** Read-Log-Update runtime (Matveev et al., SOSP'15), simplified to the
    level documented in DESIGN.md: store-free read sections; writers bump a
    global clock and block until readers under the old clock finish. *)

type t

val create : Dps_sthread.Alloc.t -> t

val reader_lock : t -> unit
(** Begin a read section (one global-clock read + a write to the caller's
    own slot line). *)

val reader_unlock : t -> unit

val synchronize : t -> unit
(** Writer-side grace period: advance the clock, wait for old readers. The
    caller must not be inside a read section (see
    {!writer_end_and_synchronize}). *)

val writer_end_and_synchronize : t -> unit
(** End the calling writer's read section, then {!synchronize} — the safe
    commit path (two writers never wait on each other's sections). *)

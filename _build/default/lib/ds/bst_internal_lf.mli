(** Lock-free internal BST with logical deletion — stand-in for the
    paper's [lf-h]; see DESIGN.md.

    Implements {!Set_intf.SET}. All operations are charged against the
    simulated machine when called from a simulated thread and are free
    (single-threaded) otherwise. *)

type t

val name : string
val create : Dps_sthread.Alloc.t -> t
val insert : t -> key:int -> value:int -> bool
val remove : t -> int -> bool
val lookup : t -> int -> int option
val to_list : t -> (int * int) list
val check_invariants : t -> unit
val maintenance : t -> unit

(** The microbenchmark object of §5.1: an array of objects, each spanning a
    configurable number of cache lines; an operation reads and writes a
    subset of an object's lines. The knobs behind Figures 7/8 and Table 2. *)

type t

val create :
  Dps_machine.Machine.t ->
  Dps_machine.Machine.policy ->
  objects:int ->
  lines:int ->
  write_lines:int ->
  t

val create_partitioned :
  Dps_machine.Machine.t ->
  node_of:(int -> int) ->
  objects:int ->
  lines:int ->
  write_lines:int ->
  t
(** Each object homed on the NUMA node chosen by [node_of] (ffwd shards,
    DPS partitions). *)

val nobjects : t -> int
val home_hint : t -> int -> (int -> 'a) -> 'a
(** Apply a function to object [i]'s base address (tests). *)

val operate : t -> int -> unit
(** Read-modify-write: writes [write_lines] lines, reads the rest. *)

val operate_window : t -> int -> window:int -> unit
(** Touch a random [window]-line slice of one object (writes the first
    [write_lines] of the slice) — Table 2's pattern of small operations on
    a huge resident working set. *)

val scan : t -> int -> unit
(** Read-only sweep of one object. *)

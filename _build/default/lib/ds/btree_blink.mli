(** Lehman-Yao B-link tree — the classic concurrent B+-tree (§3.3's
    range-optimised example). Lock-free descent with split recovery via
    right-sibling links; one spinlock per node for writers.

    Implements {!Set_intf.SET}. *)

type t

val name : string
val create : Dps_sthread.Alloc.t -> t
val insert : t -> key:int -> value:int -> bool
val remove : t -> int -> bool
val lookup : t -> int -> int option
val to_list : t -> (int * int) list
val check_invariants : t -> unit
val maintenance : t -> unit

(** Open-addressing [int -> int] hash table for simulator hot paths.

    Linear probing with backward-shift deletion — no per-binding
    allocation, no tombstones. Keys must be non-negative. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] is rounded up to a power of two (default 64). *)

val length : t -> int
val mem : t -> int -> bool
val find_opt : t -> int -> int option

val find : t -> int -> default:int -> int
(** Allocation-free lookup. *)

val set : t -> int -> int -> unit
(** Insert or overwrite. Raises [Invalid_argument] on a negative key. *)

val remove : t -> int -> unit
(** Idempotent. *)

val iter : (int -> int -> unit) -> t -> unit
(** Unspecified order. *)

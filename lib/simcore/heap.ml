(* Structure-of-arrays binary min-heap. The event queue is the hottest
   allocation site in the simulator: the previous representation boxed a
   {time; seq; payload} record per push. Splitting times/seqs into int
   arrays makes push/pop allocation-free (ints are unboxed) and keeps the
   comparison data in two dense arrays the host prefetches well. *)

type 'a t = {
  mutable times : int array;
  mutable seqs : int array;
  mutable payloads : 'a array;
  mutable len : int;
  mutable next_seq : int;
}

let dummy = Obj.magic 0

let create () =
  {
    times = Array.make 64 0;
    seqs = Array.make 64 0;
    payloads = Array.make 64 dummy;
    len = 0;
    next_seq = 0;
  }

let is_empty t = t.len = 0
let size t = t.len

let grow t =
  let cap = 2 * Array.length t.times in
  let times = Array.make cap 0 and seqs = Array.make cap 0 and payloads = Array.make cap dummy in
  Array.blit t.times 0 times 0 t.len;
  Array.blit t.seqs 0 seqs 0 t.len;
  Array.blit t.payloads 0 payloads 0 t.len;
  t.times <- times;
  t.seqs <- seqs;
  t.payloads <- payloads

(* Ties on [time] break by insertion sequence, as before: determinism. *)
let push t ~time payload =
  if t.len = Array.length t.times then grow t;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let i = ref t.len in
  t.len <- t.len + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pt = t.times.(parent) in
    if time < pt || (time = pt && seq < t.seqs.(parent)) then begin
      t.times.(!i) <- pt;
      t.seqs.(!i) <- t.seqs.(parent);
      t.payloads.(!i) <- t.payloads.(parent);
      i := parent
    end
    else continue := false
  done;
  t.times.(!i) <- time;
  t.seqs.(!i) <- seq;
  t.payloads.(!i) <- payload

let less t a b =
  t.times.(a) < t.times.(b) || (t.times.(a) = t.times.(b) && t.seqs.(a) < t.seqs.(b))

let sift_down t =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.len && less t l !smallest then smallest := l;
    if r < t.len && less t r !smallest then smallest := r;
    if !smallest <> !i then begin
      let s = !smallest in
      let tm = t.times.(!i) and sq = t.seqs.(!i) and pl = t.payloads.(!i) in
      t.times.(!i) <- t.times.(s);
      t.seqs.(!i) <- t.seqs.(s);
      t.payloads.(!i) <- t.payloads.(s);
      t.times.(s) <- tm;
      t.seqs.(s) <- sq;
      t.payloads.(s) <- pl;
      i := s
    end
    else continue := false
  done

let remove_min t =
  t.len <- t.len - 1;
  let last = t.len in
  if last > 0 then begin
    t.times.(0) <- t.times.(last);
    t.seqs.(0) <- t.seqs.(last);
    t.payloads.(0) <- t.payloads.(last);
    t.payloads.(last) <- dummy;
    sift_down t
  end
  else t.payloads.(0) <- dummy

let next_time t = if t.len = 0 then max_int else t.times.(0)

let take t =
  if t.len = 0 then invalid_arg "Heap.take: empty heap";
  let payload = t.payloads.(0) in
  remove_min t;
  payload

let pop t =
  if t.len = 0 then None
  else begin
    let time = t.times.(0) and payload = t.payloads.(0) in
    remove_min t;
    Some (time, payload)
  end

let min_time t = if t.len = 0 then None else Some t.times.(0)

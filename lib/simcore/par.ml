(* Deterministic fan-out of independent jobs over OCaml 5 domains.

   Each thunk is an isolated single-threaded simulation (its own machine,
   scheduler, PRNGs); the only sharing is the work-index counter and the
   per-index result slots, each written by exactly one domain and read
   after [Domain.join] — so results are data-race free and, crucially,
   *identical* to running the thunks sequentially. Callers merge in index
   order, which is what makes parallel output byte-identical to [jobs:1].

   A thunk that raises does not abort the others: every job still runs,
   then the exception of the lowest failing index is re-raised — the same
   exception a sequential left-to-right loop would have surfaced first. *)

let in_worker_key = Domain.DLS.new_key (fun () -> false)

let in_worker () = Domain.DLS.get in_worker_key

let map ~jobs thunks =
  let n = Array.length thunks in
  if jobs <= 1 || n <= 1 then Array.map (fun f -> f ()) thunks
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      Domain.DLS.set in_worker_key true;
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          match thunks.(i) () with
          | v -> results.(i) <- Some v
          | exception e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ())
      done;
      Domain.DLS.set in_worker_key false
    in
    let spawned = Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    (* the calling domain participates instead of idling *)
    worker ();
    Array.iter Domain.join spawned;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors;
    Array.map (function Some v -> v | None -> assert false) results
  end

(** Deterministic fan-out of independent jobs over OCaml 5 domains. *)

val map : jobs:int -> (unit -> 'a) array -> 'a array
(** [map ~jobs thunks] runs every thunk and returns results in thunk
    order. [jobs <= 1] runs sequentially in the calling domain; otherwise
    up to [jobs] domains (the caller included) drain the jobs. Thunks must
    not share mutable state. If any thunk raises, all jobs still run, then
    the exception of the lowest failing index is re-raised — matching what
    a sequential loop would have surfaced first. *)

val in_worker : unit -> bool
(** True while the calling domain is executing a thunk inside a parallel
    [map] — including the caller's own share. Used by the bench layer to
    flag accidental writes to driver-global state from inside a point. *)

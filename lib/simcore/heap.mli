(** Binary min-heap keyed by [(time, seq)], structure-of-arrays.

    This is the simulator's event queue. Ties on [time] are broken by an
    insertion sequence number so the simulation is deterministic. The
    [next_time]/[take] pair is the hot-loop API: neither allocates. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:int -> 'a -> unit
(** Sequence numbers are assigned internally in push order. *)

val next_time : 'a t -> int
(** Time of the minimum entry, or [max_int] when empty. Never allocates. *)

val take : 'a t -> 'a
(** Remove and return the minimum entry's payload. Never allocates.
    Raises [Invalid_argument] on an empty heap — pair with {!next_time}. *)

val pop : 'a t -> (int * 'a) option
(** Pop the minimum [(time, payload)], or [None] if empty. *)

val min_time : 'a t -> int option

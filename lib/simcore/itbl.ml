(* Open-addressing int -> int hash table: linear probing over a flat int
   array pair, with backward-shift deletion (no tombstones). Replaces
   stdlib [Hashtbl] on simulator hot paths (cache-box address indexes),
   where the per-binding bucket allocation and polymorphic hashing of
   [Hashtbl] dominate the profile.

   Keys must be non-negative (cache-line addresses and page numbers are).
   The empty slot sentinel is -1. *)

type t = {
  mutable keys : int array;
  mutable vals : int array;
  mutable mask : int;  (* capacity - 1; capacity is a power of two *)
  mutable count : int;
}

let initial_capacity = 64

let create ?(capacity = initial_capacity) () =
  let cap = ref 8 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  { keys = Array.make !cap (-1); vals = Array.make !cap 0; mask = !cap - 1; count = 0 }

let length t = t.count

(* Fibonacci multiplicative hash: spreads dense line addresses (which are
   allocated sequentially from 0) across the table. *)
let slot_of t key = (key * 0x9E3779B1) lsr 8 land t.mask

let rec find_slot t key i =
  let k = t.keys.(i) in
  if k = key || k = -1 then i else find_slot t key ((i + 1) land t.mask)

let mem t key = t.keys.(find_slot t key (slot_of t key)) = key

let find_opt t key =
  let i = find_slot t key (slot_of t key) in
  if t.keys.(i) = key then Some t.vals.(i) else None

let find t key ~default =
  let i = find_slot t key (slot_of t key) in
  if t.keys.(i) = key then t.vals.(i) else default

let grow t =
  let okeys = t.keys and ovals = t.vals in
  let cap = 2 * Array.length okeys in
  t.keys <- Array.make cap (-1);
  t.vals <- Array.make cap 0;
  t.mask <- cap - 1;
  t.count <- 0;
  for i = 0 to Array.length okeys - 1 do
    if okeys.(i) >= 0 then begin
      let j = find_slot t okeys.(i) (slot_of t okeys.(i)) in
      t.keys.(j) <- okeys.(i);
      t.vals.(j) <- ovals.(i);
      t.count <- t.count + 1
    end
  done

let set t key v =
  if key < 0 then invalid_arg "Itbl.set: negative key";
  let i = find_slot t key (slot_of t key) in
  if t.keys.(i) = key then t.vals.(i) <- v
  else begin
    t.keys.(i) <- key;
    t.vals.(i) <- v;
    t.count <- t.count + 1;
    (* keep load factor under 2/3 so probe chains stay short *)
    if 3 * t.count > 2 * (t.mask + 1) then grow t
  end

(* Backward-shift deletion: close the hole by moving any later entry of
   the same probe chain into it, so lookups never need tombstones. An
   entry at [j] (home slot [h]) may fill hole [i] iff walking forward
   from [h] reaches [i] no later than [j]. *)
let remove t key =
  let i = ref (find_slot t key (slot_of t key)) in
  if t.keys.(!i) = key then begin
    t.count <- t.count - 1;
    let j = ref !i in
    let continue = ref true in
    while !continue do
      j := (!j + 1) land t.mask;
      let k = t.keys.(!j) in
      if k = -1 then begin
        t.keys.(!i) <- -1;
        continue := false
      end
      else begin
        let h = slot_of t k in
        if (!j - h) land t.mask >= (!j - !i) land t.mask then begin
          t.keys.(!i) <- k;
          t.vals.(!i) <- t.vals.(!j);
          i := !j
        end
      end
    done
  end

let iter f t =
  for i = 0 to t.mask do
    if t.keys.(i) >= 0 then f t.keys.(i) t.vals.(i)
  done

(** Distributed, Delegated Parallel Sections (DPS) — the paper's runtime.

    DPS partitions a data structure's key namespace across localities
    (groups of hardware threads sharing a socket), binds one partition of
    the structure to each locality's NUMA memory, and moves *computation*
    to the partition that owns the key: local keys run as plain function
    calls, remote keys are delegated over per-(client, partition) message
    rings of single cache-line messages. Every client is also a peer
    server — while it waits for its own completions (or has nothing else to
    do) it executes operations that other localities delegated to it, so no
    core is ever dedicated to serving (§3–§4 of the paper).

    ['a] is the per-partition slice of the user's data structure; DPS never
    synchronizes access to it — within a locality the user supplies a
    concurrent implementation, exactly as in the paper. *)

type 'a t

val failpoint_skip_completion_fence : bool ref
(** Test-only mutation for the lib/check self-test: when set, the server's
    completion publish is a plain store instead of a releasing one, so the
    race detector must flag the reply hand-off. Default [false]. *)

val failpoint_drop_batch_flush : bool ref
(** Test-only mutation for the lib/check self-test: when set, flushing a
    staged batch silently drops its last asynchronous operation, so the
    checker's accounting oracle must catch the lost update. Default
    [false]. *)

val failpoint_stuck_transition : bool ref
(** Test-only mutation for the lib/check self-test: when set, a mode
    transition's drain phase abandons the partition's in-flight ring slots
    instead of serving them (awaited entries are declared lost,
    fire-and-forget entries vanish), so the checker's accounting oracle
    must catch the lost updates. Default [false]. *)

type partition_info = {
  pid : int;  (** partition index *)
  node : int;  (** NUMA node the partition is bound to *)
  alloc : Dps_sthread.Alloc.t;  (** allocator homing cold data on [node] *)
}

val create :
  Dps_sthread.Sthread.t ->
  nclients:int ->
  locality_size:int ->
  hash:(int -> int) ->
  ?ns_sz:int ->
  ?ring_slots:int ->
  ?check_budget:int ->
  ?marshal_cost:int ->
  ?dispatch_cost:int ->
  ?dedicated_pollers:bool ->
  ?self_healing:bool ->
  ?await_timeout:int ->
  ?batch:int ->
  ?batch_age:int ->
  ?adaptive:bool ->
  ?direct:bool ->
  ?versions:int ->
  ?placement:int array ->
  mk_data:(partition_info -> 'a) ->
  unit ->
  'a t
(** [create sched ~nclients ~locality_size ~hash ~mk_data ()] builds a DPS
    instance for [nclients] client threads placed by the paper's rule and
    grouped into localities of [locality_size] hardware threads. One
    partition is created per locality via [mk_data]; [hash] maps keys into
    the flat namespace of [ns_sz] buckets (default 64 per partition), each
    bucket owned by a partition — the paper's [create(ds_init_fn, ds_args,
    partition_cnt, ns_sz, hash_fn)].
    [ring_slots] sizes each message ring (default 16); [check_budget] is
    the §4.3 knob: how many delegated requests a thread serves per check of
    its own pending completion (default 4). [marshal_cost] (default 100)
    and [dispatch_cost] (default 250) are the runtime's per-delegation
    sender-side marshalling and server-side dispatch work in cycles —
    calibration constants documented in EXPERIMENTS.md (local calls pay a
    quarter of [dispatch_cost], matching the §5.2 remark about
    interposition overhead on local operations). [dedicated_pollers]
    (default false) adds the per-ring locks required to run {!run_poller}
    threads (§4.4 liveness).

    [self_healing] (default false) arms the fault-tolerant delegation
    paths (and implies the per-ring locks): a sender whose delegation
    stalls longer than [await_timeout] cycles (default 50_000) serves the
    target partition's entire ring set itself — taking over a dead peer's
    share, breaking ring locks abandoned by crashed holders — and
    re-issues operations lost with a crashed server; a ring wedged full
    past the timeout is drained the same way. Independent of
    [self_healing], exiting or crashed clients always hand their serving
    share to a live peer, and a partition whose last member dies is
    failed over (its namespace buckets retarget onto live partitions with
    {!rebalance}'s relaxed contract — data is not migrated
    automatically).

    [batch] (default 1, clamped to 7 — the descriptors must share the
    message cache line with the header) turns on sender-side coalescing:
    operations bound for one remote partition accumulate in a staging line
    on the sender's socket and cross the interconnect as one multi-op
    message, acked by a single releasing store. A batch publishes when it
    fills or when its oldest operation is [batch_age] cycles old (default
    1500) — and always before the sender blocks on one of its own staged
    operations, at {!client_done}/{!detach}/{!drain}, or explicitly via
    {!flush_pending} — so coalescing bounds, never breaks, latency and
    ordering. With [batch = 1] the protocol is byte-identical to the
    unbatched one-op-per-line scheme.

    [adaptive] (default false) arms per-partition mode switching (and
    implies the per-ring locks): each partition carries a mode word that
    remote issues re-read, and {!set_mode} migrates it online between
    delegated mode (the ring protocol above) and {e direct} mode, where
    remote clients bypass the rings and serialize on a per-partition
    CNA lock ({!Dps_sync.Cna}) — the trade the paper freezes at create
    time, made dynamic. With [adaptive = false] the protocol, address
    layout and cycle accounting are bit-identical to previous behaviour.
    [direct] (default false, implies [adaptive]) starts every partition in
    direct mode — the static direct-locking baseline.

    [versions] (default 0) allocates a global table of that many per-key
    version slots (8 per charged line, interleaved across the machine's
    nodes like the namespace table). Writers call {!bump_version} from
    inside their apply closures; read-side caches validate entries with
    {!read_version}. With [versions = 0] nothing is allocated and the
    address layout stays bit-identical. *)

val npartitions : 'a t -> int

val partition_of_key : 'a t -> int -> int
(** Charged namespace lookup: hash, bucket, owning partition. *)

val bucket_of_key : 'a t -> int -> int
val bucket_owner : 'a t -> bucket:int -> int

(** {1 Per-key versions (requires [~versions] > 0 at {!create})} *)

val versioned : 'a t -> bool
(** [true] when the instance carries a version table. *)

val bump_version : 'a t -> key:int -> unit
(** Increment [key]'s version slot with a charged releasing store. Call
    from inside the closure that applies a write, so the charge lands on
    whichever thread actually serves it (the owning partition's server
    under delegation, the CNA holder in direct mode) and the bump is
    ordered after the write it publishes. Monotonic, so the duplicate bump
    of an exactly-once re-issue is benign. Slots are keyed by a second hash
    mix; a collision only over-invalidates. No-op when versions are off. *)

val read_version : 'a t -> key:int -> int
(** Current version of [key]'s slot — one charged racy-by-design read
    (excluded from the race detector; see DESIGN.md §10: a reader that
    caches a value with a version observed {e before} fetching it can only
    err toward a false invalidation). [0] when versions are off. *)

val version_bumps : 'a t -> int
(** Total {!bump_version} calls that hit an armed table. *)

val rebalance :
  'a t ->
  bucket:int ->
  to_:int ->
  extract:('a -> int -> (int * int) list) ->
  insert:('a -> key:int -> value:int -> unit) ->
  unit
(** Dynamic repartitioning (§3.3 notes the paper's prototype is static):
    move one namespace bucket to partition [to_]. [extract] must remove and
    return the bucket's (key, value) pairs from the old owner's structure;
    [insert] adds one pair to the new owner's. Must be called from an
    attached client. Relaxed: operations racing the move may briefly see
    the bucket's keys as absent (same contract as range operations). *)

val partition_data : 'a t -> int -> 'a

val client_hw : 'a t -> int -> int
(** Hardware thread that client [i] must be spawned on. *)

val attach : 'a t -> client:int -> unit
(** Bind the calling simulated thread to client slot [client] (in
    [0, nclients)). Must be called once, before any operation; a second
    attach from the same thread fails ([Failure "Dps: thread already
    attached"]). Re-attaching a slot abandoned via {!detach} (e.g. a
    respawned replacement thread) is supported with [~self_healing:true],
    whose ring locks serialize the duplicate servers. *)

val detach : 'a t -> unit
(** Unbind the calling thread from its client slot, handing its serving
    share to a live peer of its locality so no ring is orphaned. Does not
    count as {!client_done} — call that first if this client is done
    issuing for good. *)

(** {1 Operations (from attached client threads)} *)

type completion

val execute : 'a t -> key:int -> ('a -> int) -> completion
(** Route an operation to [key]'s partition: run it immediately if the
    partition is local, otherwise delegate it. While waiting for a free
    ring slot the client serves requests delegated to its own partition. *)

val try_await : 'a t -> completion -> int option
(** Non-blocking check of a completion record (the paper's
    [await_completion]); serves one batch of delegated requests when the
    result is not yet available. *)

val await : 'a t -> completion -> int
(** Spin on {!try_await} until the result arrives. *)

val call : 'a t -> key:int -> ('a -> int) -> int
(** Synchronous convenience: [execute] then [await]. *)

val execute_async : 'a t -> key:int -> ('a -> int) -> unit
(** §4.4 asynchronous execution: deliver and return immediately. Replies
    are discarded. Ordering with later dependent operations must be
    enforced by the caller (issue a synchronous barrier operation). *)

val execute_local : 'a t -> key:int -> ('a -> int) -> int
(** §4.4 local execution: run the operation on the calling core even if the
    partition is remote (remote memory traffic is paid instead of
    delegation). Only safe for operations the underlying structure already
    synchronizes — typically reads. *)

val range : 'a t -> ('a -> int) -> merge:(int -> int -> int) -> int
(** §4.4 range/broadcast operation: run the closure on every partition
    (local call or delegation) and fold the results with [merge]. Not
    linearizable, as in the paper. *)

val serve : 'a t -> max:int -> int
(** Serve up to [max] requests pending on the caller's partition rings;
    returns the number served ([max] is approximate — a batch is never
    split). Also publishes any of the caller's staged batches that have
    aged out. Exposed for §4.4 liveness (dedicated pollers) and for idle
    loops. *)

val flush_pending : 'a t -> unit
(** Publish every batch the calling client still has staged, regardless of
    age. A no-op when the instance was created with [batch = 1] (or
    nothing is staged). *)

val my_partition : 'a t -> int
(** The calling client's own partition. *)

val execute_on : 'a t -> pid:int -> ('a -> int) -> completion
(** Like {!execute}, but targeting a partition directly (used by broadcast
    patterns that pick a partition from peeked state, e.g. §3.4 stacks and
    queues). *)

val call_on : 'a t -> pid:int -> ('a -> int) -> int
val execute_async_on : 'a t -> pid:int -> ('a -> int) -> unit

val run_poller : 'a t -> pid:int -> unit
(** §4.4 liveness: body for a dedicated polling thread devoted to locality
    [pid]. Serves every ring of the partition (serializing with peers
    through the per-ring locks) until all clients are done. The instance
    must have been created with [~dedicated_pollers:true]. *)

val client_done : 'a t -> unit
(** Signal that this client has finished issuing operations. *)

val drain : 'a t -> unit
(** Keep serving delegated requests until every client is done — call after
    {!client_done} so in-flight delegations to this locality still make
    progress. *)

val delegated_ops : 'a t -> int
val local_ops : 'a t -> int

val batch_flushes : 'a t -> int
(** Number of batched messages published so far; [delegated_ops /
    batch_flushes] is the achieved coalescing factor. Always 0 with
    [batch = 1] (the unbatched path does not count). *)

(** {1 Adaptive delegation (requires [~adaptive:true])} *)

(** Per-partition access mode. [Draining] is the transition window of a
    [Delegated -> Direct] flip: clients already route direct while the
    controller retires the published ring backlog. *)
type mode = Delegated | Draining | Direct

val mode : 'a t -> pid:int -> mode
(** Current mode of partition [pid] (host-side; charges nothing). Always
    [Delegated] when the instance is not adaptive. *)

val set_mode : 'a t -> pid:int -> [ `Delegated | `Direct ] -> unit
(** Migrate partition [pid] online. Single-writer: only one thread (the
    controller) may call this, though any simulated thread will do.
    [`Direct] first marks the partition [Draining] — remote issues that
    re-read the mode word switch to the CNA path immediately — then
    serves every published delegation out of the rings before completing
    the flip, so exactly-once survives and no ring entry is stranded
    (batches still staged on a sender's socket publish later and are
    drained by the next direct holder, an awaiting sender, or {!drain}).
    [`Delegated] flips back without draining: direct holders finish under
    the lock while new work queues in the rings again. No-op when the
    partition is already in the requested mode; raises [Invalid_argument]
    when the instance is not adaptive. *)

type signal = {
  s_mode : mode;
  s_pending : int;  (** delegations queued in the rings right now *)
  s_remote_ops : int;  (** remote ops issued at this partition, cumulative *)
  s_direct_ops : int;  (** ops run via the direct path, cumulative *)
  s_lat_sum : int;  (** summed issue->done latency, cumulative *)
  s_lat_cnt : int;  (** remote completions measured, cumulative *)
}

val signals : 'a t -> pid:int -> signal
(** Controller inputs for partition [pid], sampled host-side (charges
    nothing, like {!health}); cumulative fields are meant to be diffed
    across controller epochs. *)

val active : 'a t -> bool
(** [true] while any client is still issuing — the controller's loop
    condition. *)

val direct_ops : 'a t -> int
(** Operations run via the direct CNA path (all partitions). *)

val mode_flips : 'a t -> int * int
(** [(to_direct, to_delegated)] completed transitions. *)

(** {1 Watchdog and self-healing report} *)

type health = {
  pending_depth : int array;  (** per partition: delegations queued, unserved *)
  time_since_served : int array;  (** per partition: now - last served op *)
  dead_partitions : bool array;
  takeovers : int;  (** foreign serves of a stuck partition's rings *)
  adoptions : int;  (** serving shares handed to a live peer *)
  retries : int;  (** operations re-issued after loss *)
  failovers : int;  (** partitions retired and retargeted *)
  crashes : int;  (** clients that vanished without [client_done] *)
  lock_breaks : int;  (** ring locks reclaimed from dead holders *)
  takeovers_by_partition : int array;
      (** per partition: foreign serves of its rings (where the healing
          landed, not who performed it) *)
  lock_breaks_by_partition : int array;
      (** per partition: ring locks reclaimed from dead holders *)
}

val health : 'a t -> health
(** Snapshot of the runtime's liveness counters — per-partition pending
    depth and staleness plus the cumulative self-healing event counts.
    Deterministic: the same seed and fault plan reproduce identical
    values. Callable from inside or outside the simulation; charges
    nothing. *)

val register_obs : ?labels:(string * string) list -> 'a t -> Dps_obs.Registry.t -> unit
(** Publish the runtime's counters into an observability registry:
    cumulative totals as [dps.<counter>] plus per-partition
    [dps.pending_depth] / [dps.time_since_served] / [dps.dead] /
    [dps.takeovers_p] / [dps.lock_breaks_p] gauges labelled
    [{partition,socket}] — the same watchdog fields {!health} snapshots,
    so the cluster health probe and exported metrics share one source of
    truth. [labels] (e.g. [("node", "2")]) prefix every metric's label set
    so several runtimes can share a registry. *)

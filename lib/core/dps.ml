module Machine = Dps_machine.Machine
module Topology = Dps_machine.Topology
module Sthread = Dps_sthread.Sthread
module Simops = Dps_sthread.Simops
module Alloc = Dps_sthread.Alloc
module Spinlock = Dps_sync.Spinlock
module Cna = Dps_sync.Cna
module Obs = Dps_obs.Obs

let obs_span = Sthread.obs_span

type partition_info = { pid : int; node : int; alloc : Alloc.t }

(* Test-only mutation (lib/check self-test): when set, the server's
   completion publish is a plain store instead of a releasing one, so the
   reply hand-off loses its happens-before edge. *)
let failpoint_skip_completion_fence = ref false

(* Test-only mutation (lib/check self-test): when set, flushing a staged
   batch silently drops its last asynchronous operation — the accounting
   oracle must catch the lost update. *)
let failpoint_drop_batch_flush = ref false

(* Test-only mutation (lib/check self-test): when set, a mode transition's
   drain phase abandons the in-flight ring slots instead of serving them —
   awaited entries are declared lost, fire-and-forget entries silently
   vanish. The accounting oracle must catch the lost updates. *)
let failpoint_stuck_transition = ref false

(* A message line carries the header word (toggle, count, claim) plus up to
   seven 8-byte operation descriptors, so a batch still moves as exactly one
   cache line — larger batches would reintroduce the per-line coherence
   cost batching exists to amortize. *)
let max_batch = 7

(* One operation inside a multi-op message. An entry is *claimed* (its op
   taken) before the dispatch work is charged, so a second server never
   double-executes and a crash mid-dispatch leaves a recognisably lost
   entry. [eret]/[edone] buffer the reply until the whole batch publishes;
   [ecancelled] marks an entry whose sender gave up (a tombstone, discarded
   with the batch); [ecell] points back at the sender's completion record. *)
type entry = {
  mutable eop : (unit -> int) option;
  mutable eret : int;
  mutable edone : bool;
  mutable ecancelled : bool;
  mutable ecell : remote option;
}

(* One single-cache-line message, as in §4.2, generalised to [count]
   operations: toggle bit, per-entry descriptors, return values. The toggle
   is set by the sender when the batch is published and cleared by the
   partition when every reply is ready — one releasing store acks the whole
   batch. [claim] is the serving thread's id while the batch is in flight,
   so recovery code can tell "in progress" from "lost with its server". *)
and msg = {
  maddr : int;
  mutable toggle : bool;
  mutable count : int;
  mutable claim : int;
  entries : entry array;
}

(* Sender-side life cycle of one delegated operation. [Staged]: coalescing
   in the sender's per-partition staging buffer, not yet visible to the
   partition. [Flushed]: published as entry [i] of a ring message.
   [Done]/[Lost]: the server filled the cell at batch publish (or a
   recovery path declared the operation lost and the sender must
   re-issue). *)
and rstate = Staged of stage | Flushed of msg * int | Done of int | Lost

and remote = {
  mutable state : rstate;
  mutable pid : int;
  mutable fresh : msg option;
      (* the message line holding a completion the sender has not read yet:
         the server fills the cell when it publishes (its stores are
         visible at issue), but the *sender* still pays the line transfer
         that fetches the reply — the pickup read — on its next
         observation. Cleared by every charged poll of the line. *)
  mutable reissue : unit -> unit;
      (* re-route and re-send the same operation into this same record;
         used after partition failover or a crashed server. Recomputes the
         namespace lookup, so a retargeted bucket lands on its new owner. *)
  mutable obs_id : int;
      (* async trace-span id following this delegation across threads
         (issue -> sent -> dispatch -> completion pickup); 0 when tracing
         was off at issue, and cleared once the completion is observed *)
  mutable issued_at : int;
      (* issue time, the adaptive controller's issue->done latency signal;
         -1 when adaptation is off or once the latency has been recorded *)
}

(* Hierarchical aggregation (the batching analogue of the paper's §4.2
   single-line messages): operations bound for one remote partition
   accumulate in a staging line allocated on the *sender's* socket, and
   cross the interconnect as a group when the batch fills or ages out.
   The stage is strictly thread-private — owner = flusher = awaiter — so
   it needs no synchronization and no recovery protocol of its own. *)
and stage = {
  spid : int;
  saddr : int;
  sops : (unit -> int) option array;
  scells : remote option array;
  mutable sn : int;
  mutable sopened : int;  (* time the oldest staged op arrived *)
}

type completion = Local of int | Remote of remote

(* A ring of messages for one (client, partition) pair, allocated on the
   partition's NUMA node. The client owns [send_idx], the serving peer owns
   [recv_idx]; the toggle bit replaces head/tail comparison. [lock] is only
   used when a dedicated poller runs (S4.4 liveness) or self-healing is on:
   the poller and the ring's peer serializes through it, "rarely contended"
   as the paper notes. [last_served] is the ring-granularity liveness
   timestamp behind the sender-side timeouts. *)
type ring = {
  slots : msg array;
  mutable send_idx : int;
  mutable recv_idx : int;
  mutable last_served : int;
  rlock : Spinlock.t option;
  (* published-but-unserved count: an occupancy hint (host metadata, like
     [pending]) that lets mode transitions and direct holders skip the
     charged lock probe on rings that are empty anyway — the analogue of a
     per-ring occupancy byte a real implementation would co-locate with
     the partition's metadata *)
  mutable rpending : int;
}

type 'a partition = { info : partition_info; data : 'a; rings : ring array (* per client *) }

type cstate = Issuing | Done_issuing | Gone

type client = {
  sid : int;  (* simulated thread id *)
  tid : int;  (* client slot, in [0, nclients) *)
  hw : int;
  my_pid : int;
  mutable served : (int * int) array;
      (* (partition never <> my_pid, ring index) — my serving share; grows
         when this client adopts an exiting peer's share *)
  mutable cursor : int;  (* round-robin scan position, for serving fairness *)
  mutable cstate : cstate;
  mutable flushing : bool;  (* re-entrancy guard: flush → serve → flush *)
}

(* Per-partition access mode (adaptive delegation). [Delegated] is the
   paper's ring protocol; [Direct] has remote clients bypass the rings and
   serialize on the partition's CNA lock; [Draining] is the transition
   window — clients already route direct (and help drain) while the
   controller retires the published ring backlog. The host-side [modes]
   array is the truth (single writer: the controller); the charged
   [mode_addr] line models the read-mostly mode word clients re-check on
   every remote issue. *)
type mode = Delegated | Draining | Direct

type health = {
  pending_depth : int array;  (** per partition: delegations queued, unserved *)
  time_since_served : int array;  (** per partition: now - last served op *)
  dead_partitions : bool array;
  takeovers : int;  (** foreign serves of a stuck partition's rings *)
  adoptions : int;  (** serving shares handed to a live peer *)
  retries : int;  (** operations re-issued after loss *)
  failovers : int;  (** partitions retired and retargeted *)
  crashes : int;  (** clients that vanished without [client_done] *)
  lock_breaks : int;  (** ring locks reclaimed from dead holders *)
  takeovers_by_partition : int array;
  lock_breaks_by_partition : int array;
}

type 'a t = {
  sched : Sthread.t;
  partitions : 'a partition array;
  nclients : int;
  locality_size : int;
  hash : int -> int;
  check_budget : int;
  marshal_cost : int;
  dispatch_cost : int;
  self_healing : bool;
  await_timeout : int;
  batch : int;
  batch_age : int;
  stages : stage array array;  (* [tid].(pid); empty when batch = 1 *)
  placement : int array;
  clients : (int, client) Hashtbl.t;  (* simulated thread id -> client *)
  members : client list array;  (* per partition: clients ever attached *)
  dead_tids : (int, unit) Hashtbl.t;  (* every retired simulated thread *)
  dead : bool array;  (* partitions with no live member left *)
  last_served : int array;  (* per partition *)
  pending : int array;  (* per partition: sent - (served + discarded) *)
  (* the flat namespace of the paper's create(): hash(key) mod ns_sz
     selects a bucket, whose entry names the owning partition. One charged
     line per 8 entries; rebalancing rewrites entries. *)
  ns_table : int array;
  ns_base : int;
  mutable remaining : int;
  mutable n_delegated : int;
  mutable n_local : int;
  mutable n_flushes : int;
  mutable n_takeovers : int;
  mutable n_adoptions : int;
  mutable n_retries : int;
  mutable n_failovers : int;
  mutable n_crashes : int;
  mutable n_lock_breaks : int;
  takeovers_pid : int array;  (* per partition: foreign serves of its rings *)
  lock_breaks_pid : int array;  (* per partition: locks reclaimed from dead holders *)
  (* adaptive delegation (all unused — and unallocated — when [adaptive]
     is false, so the static protocol stays bit-identical) *)
  adaptive : bool;
  modes : mode array;
  mode_addr : int array;  (* per partition: the charged mode word *)
  mutable dlocks : Cna.t array;  (* per partition: the direct-mode CNA lock *)
  mutable n_direct : int;
  mutable n_to_direct : int;
  mutable n_to_delegated : int;
  direct_pid : int array;  (* per partition: ops run via the direct path *)
  remote_pid : int array;  (* per partition: remote ops issued (any mode) *)
  flips_pid : int array;  (* per partition: mode transitions *)
  lat_sum_pid : int array;  (* per partition: sum of issue->done latencies *)
  lat_cnt_pid : int array;  (* per partition: completed remote ops measured *)
  (* per-key version table for delegation-coherent front caches. Slots are
     global (not per partition) so a version survives partition failover and
     re-issue: the counter only ever grows, wherever the write re-applies.
     Both fields stay unallocated when [versions] = 0, so the default keeps
     the address layout — and thus cycle accounting — bit-identical. *)
  mutable vers : int array;
  mutable vers_base : int;  (* charged base line, 8 slots per line; -1 = off *)
  mutable n_bumps : int;
}

let npartitions t = Array.length t.partitions

let bucket_of_key t key = abs (t.hash key) mod Array.length t.ns_table

let partition_of_key t key =
  let b = bucket_of_key t key in
  Simops.charge_read (t.ns_base + (b / 8));
  t.ns_table.(b)
let partition_data t pid = t.partitions.(pid).data
let client_hw t i = t.placement.(i)

(* --- per-key versions (delegation-coherent front-cache invalidation) --- *)

let versioned t = t.vers_base >= 0

(* A second mix on top of the user hash: the memcached variants use the
   identity hash, and strided keys must not alias systematically. *)
let vslot t key =
  let h = t.hash key * 0x9E3779B1 in
  let h = h lxor (h lsr 15) in
  (h land max_int) mod Array.length t.vers

let bump_version t ~key =
  if t.vers_base >= 0 then begin
    let s = vslot t key in
    t.vers.(s) <- t.vers.(s) + 1;
    t.n_bumps <- t.n_bumps + 1;
    (* a publishing store, charged to whichever thread applies the write:
       the serving thread under delegation, the lock holder in direct mode *)
    Simops.write_release (t.vers_base + (s / 8))
  end

let read_version t ~key =
  if t.vers_base < 0 then 0
  else begin
    let s = vslot t key in
    (* racy by design: a cached entry validated against a torn-stale value
       only fails conservatively (false invalidation), never serves stale *)
    Simops.read_racy (t.vers_base + (s / 8));
    t.vers.(s)
  end

let version_bumps t = t.n_bumps
let delegated_ops t = t.n_delegated
let local_ops t = t.n_local
let batch_flushes t = t.n_flushes
let direct_ops t = t.n_direct
let mode t ~pid = t.modes.(pid)
let mode_flips t = (t.n_to_direct, t.n_to_delegated)
let active t = t.remaining > 0

(* Host-side controller inputs, uncharged (like [health]): the controller
   samples them at its epoch and diffs against the previous sample. *)
type signal = {
  s_mode : mode;
  s_pending : int;  (** delegations queued in the rings right now *)
  s_remote_ops : int;  (** remote ops issued at this partition, cumulative *)
  s_direct_ops : int;  (** ops run via the direct path, cumulative *)
  s_lat_sum : int;  (** summed issue->done latency, cumulative *)
  s_lat_cnt : int;  (** remote completions measured, cumulative *)
}

let signals t ~pid =
  {
    s_mode = t.modes.(pid);
    s_pending = t.pending.(pid);
    s_remote_ops = t.remote_pid.(pid);
    s_direct_ops = t.direct_pid.(pid);
    s_lat_sum = t.lat_sum_pid.(pid);
    s_lat_cnt = t.lat_cnt_pid.(pid);
  }

(* The charged re-read of the mode word on a remote issue. Only reached
   when [t.adaptive]: the line is read-mostly and stays shared until a
   controller flip invalidates it, so steady state costs one hot read. *)
let current_mode t pid =
  Simops.read t.mode_addr.(pid);
  t.modes.(pid)

(* Close a delegation's async span exactly once, at the observation that
   hands the completion value back to the caller; feed the issue->done
   latency into the controller's per-partition signal. *)
let obs_op_done t (r : remote) =
  if r.obs_id <> 0 then begin
    Obs.async_end ~id:r.obs_id ~now:(Sthread.time ()) "dps.op";
    r.obs_id <- 0
  end;
  if r.issued_at >= 0 then begin
    t.lat_sum_pid.(r.pid) <- t.lat_sum_pid.(r.pid) + (Sthread.time () - r.issued_at);
    t.lat_cnt_pid.(r.pid) <- t.lat_cnt_pid.(r.pid) + 1;
    r.issued_at <- -1
  end

let health t =
  let now = Sthread.now t.sched in
  {
    pending_depth = Array.copy t.pending;
    time_since_served = Array.map (fun ls -> now - ls) t.last_served;
    dead_partitions = Array.copy t.dead;
    takeovers = t.n_takeovers;
    adoptions = t.n_adoptions;
    retries = t.n_retries;
    failovers = t.n_failovers;
    crashes = t.n_crashes;
    lock_breaks = t.n_lock_breaks;
    takeovers_by_partition = Array.copy t.takeovers_pid;
    lock_breaks_by_partition = Array.copy t.lock_breaks_pid;
  }

(* Hand [cl]'s serving share to a peer of its locality, so an exiting or
   crashed client does not orphan its rings (the §4.4 liveness argument
   needs *some* thread of the locality to keep serving them). Prefer a peer
   still issuing — it scans its rings anyway; fall back to any peer whose
   thread is still alive (a drainer). With no candidate the share stays,
   and either our own [drain] or partition failover covers it. *)
let adopt_share t cl =
  if Array.length cl.served > 0 then begin
    let peers = List.filter (fun p -> p != cl && p.cstate <> Gone) t.members.(cl.my_pid) in
    let target =
      match List.find_opt (fun p -> p.cstate = Issuing) peers with
      | Some p -> Some p
      | None -> ( match peers with p :: _ -> Some p | [] -> None)
    in
    match target with
    | Some peer ->
        peer.served <- Array.append peer.served cl.served;
        cl.served <- [||];
        t.n_adoptions <- t.n_adoptions + 1
    | None -> ()
  end

(* A partition with no live member can never serve again: retarget its
   namespace buckets onto live partitions round-robin — the same bucket
   rewrite [rebalance] performs, minus the data move (a dying thread's exit
   hook may not run charged operations, and the dead locality cannot answer
   an extract). The retarget has rebalance's relaxed contract: the dead
   partition's keys read as absent until recovered; [partition_data] still
   reaches the old slice for offline migration. *)
let fail_over t pid =
  if not t.dead.(pid) then begin
    t.dead.(pid) <- true;
    t.n_failovers <- t.n_failovers + 1;
    let live =
      Array.of_list
        (List.filter (fun p -> not t.dead.(p)) (List.init (npartitions t) Fun.id))
    in
    if Array.length live > 0 then begin
      let j = ref 0 in
      Array.iteri
        (fun b owner ->
          if owner = pid then begin
            t.ns_table.(b) <- live.(!j mod Array.length live);
            incr j
          end)
        t.ns_table
    end
  end

let partition_has_live_member t pid =
  List.exists (fun p -> p.cstate <> Gone) t.members.(pid)

(* Exit hook: every retired thread lands in [dead_tids] (so abandoned ring
   locks and claims can be recognised); a thread that dies while attached
   is a crash — account for its unfinished [client_done], hand its serving
   share to a peer, and fail the partition over if it was the last one.
   Runs in the dying thread's context: bookkeeping only, nothing charged.
   Operations still staged (never published) die with the client — they
   were never acked, so exactly-once is preserved. *)
let handle_exit t sid =
  Hashtbl.replace t.dead_tids sid ();
  match Hashtbl.find_opt t.clients sid with
  | None -> ()
  | Some cl ->
      Hashtbl.remove t.clients sid;
      if cl.cstate = Issuing then begin
        t.n_crashes <- t.n_crashes + 1;
        t.remaining <- t.remaining - 1
      end;
      cl.cstate <- Gone;
      adopt_share t cl;
      (* fail over only while someone is still issuing: a locality whose
         members all exited after the run wound down ([remaining] = 0) is
         finished, not dead *)
      if t.remaining > 0 && not (partition_has_live_member t cl.my_pid) then
        fail_over t cl.my_pid

let create sched ~nclients ~locality_size ~hash ?ns_sz ?(ring_slots = 16) ?(check_budget = 4)
    ?(marshal_cost = 100) ?(dispatch_cost = 250) ?(dedicated_pollers = false)
    ?(self_healing = false) ?(await_timeout = 50_000) ?(batch = 1) ?(batch_age = 1500)
    ?(adaptive = false) ?(direct = false) ?(versions = 0) ?placement ~mk_data () =
  assert (nclients > 0 && locality_size > 0);
  (* [direct] starts every partition in direct mode (the static-CNA
     baseline); it needs the adaptive machinery even with no controller *)
  let adaptive = adaptive || direct in
  let batch = max 1 (min batch max_batch) in
  let m = Sthread.machine sched in
  let topo = Machine.topology m in
  let placement =
    match placement with
    | None -> Topology.placement topo ~n:nclients
    | Some p ->
        if Array.length p < nclients then
          invalid_arg "Dps.create: placement shorter than nclients";
        p
  in
  let nparts = (nclients + locality_size - 1) / locality_size in
  let ns_sz = match ns_sz with Some n -> max n nparts | None -> 64 * nparts in
  let mk_partition pid =
    let node = Topology.socket_of_thread topo placement.(pid * locality_size) in
    let info = { pid; node; alloc = Alloc.create m ~cold:(Alloc.Node node) } in
    let mk_ring _client =
      let mk_slot _ =
        {
          maddr = Machine.alloc m (Machine.On_node node) ~lines:1;
          toggle = false;
          count = 0;
          claim = -1;
          entries =
            Array.init batch (fun _ ->
                { eop = None; eret = 0; edone = false; ecancelled = false; ecell = None });
        }
      in
      let rlock =
        if dedicated_pollers || self_healing || adaptive then
          Some (Spinlock.embed ~addr:(Machine.alloc m (Machine.On_node node) ~lines:1))
        else None
      in
      {
        slots = Array.init ring_slots mk_slot;
        send_idx = 0;
        recv_idx = 0;
        last_served = 0;
        rlock;
        rpending = 0;
      }
    in
    { info; data = mk_data info; rings = Array.init nclients mk_ring }
  in
  let stages =
    if batch <= 1 then [||]
    else
      Array.init nclients (fun c ->
          let node = Topology.socket_of_thread topo placement.(c) in
          Array.init nparts (fun spid ->
              {
                spid;
                saddr = Machine.alloc m (Machine.On_node node) ~lines:1;
                sops = Array.make batch None;
                scells = Array.make batch None;
                sn = 0;
                sopened = 0;
              }))
  in
  let t =
    {
      sched;
      partitions = Array.init nparts mk_partition;
      nclients;
      locality_size;
      hash;
      check_budget;
      marshal_cost;
      dispatch_cost;
      self_healing;
      await_timeout;
      batch;
      batch_age;
      stages;
      placement;
      clients = Hashtbl.create (2 * nclients);
      members = Array.make nparts [];
      dead_tids = Hashtbl.create 64;
      dead = Array.make nparts false;
      last_served = Array.make nparts 0;
      pending = Array.make nparts 0;
      ns_table = Array.init ns_sz (fun b -> b mod nparts);
      ns_base = Machine.alloc m Machine.Interleave ~lines:((ns_sz + 7) / 8);
      remaining = nclients;
      n_delegated = 0;
      n_local = 0;
      n_flushes = 0;
      n_takeovers = 0;
      n_adoptions = 0;
      n_retries = 0;
      n_failovers = 0;
      n_crashes = 0;
      n_lock_breaks = 0;
      takeovers_pid = Array.make nparts 0;
      lock_breaks_pid = Array.make nparts 0;
      adaptive;
      modes = Array.make nparts (if direct then Direct else Delegated);
      mode_addr = Array.make nparts 0;
      dlocks = [||];
      n_direct = 0;
      n_to_direct = 0;
      n_to_delegated = 0;
      direct_pid = Array.make nparts 0;
      remote_pid = Array.make nparts 0;
      flips_pid = Array.make nparts 0;
      lat_sum_pid = Array.make nparts 0;
      lat_cnt_pid = Array.make nparts 0;
      vers = [||];
      vers_base = -1;
      n_bumps = 0;
    }
  in
  (* adaptive-only allocations come strictly last, after every static
     structure, so the static address layout (and thus cycle accounting)
     is bit-identical with adaptation off *)
  if adaptive then begin
    Array.iteri
      (fun pid p ->
        t.mode_addr.(pid) <- Machine.alloc m (Machine.On_node p.info.node) ~lines:1)
      t.partitions;
    t.dlocks <- Array.map (fun p -> Cna.create p.info.alloc m) t.partitions
  end;
  (* the version table follows the same allocate-last rule *)
  if versions > 0 then begin
    t.vers <- Array.make versions 0;
    t.vers_base <- Machine.alloc m Machine.Interleave ~lines:((versions + 7) / 8)
  end;
  Sthread.on_exit sched (handle_exit t);
  t

let attach t ~client =
  assert (client >= 0 && client < t.nclients);
  let sid = Sthread.self_id () in
  if Hashtbl.mem t.clients sid then failwith "Dps: thread already attached";
  let my_pid = client / t.locality_size in
  let my_index = client mod t.locality_size in
  (* §4.3: the flat array of a partition's rings is divided across the
     cores of that locality, so peers serve disjoint rings without
     synchronization. A tail locality (nclients not a multiple of
     locality_size) has fewer members than ring indices, so the division
     folds onto the members that exist — without the fold, rings at the
     missing indices are served by nobody and every delegation into them
     waits out the awaiter's full escalation timeout. For full localities
     the fold is the identity, so the ring-to-server map (and the charge
     stream) is unchanged. *)
  let nmembers = min t.locality_size (t.nclients - (my_pid * t.locality_size)) in
  let served =
    Array.of_list
      (List.filter_map
         (fun c ->
           if c mod t.locality_size mod nmembers = my_index then Some (my_pid, c)
           else None)
         (List.init t.nclients Fun.id))
  in
  let cl =
    {
      sid;
      tid = client;
      hw = Sthread.self_hw ();
      my_pid;
      served;
      cursor = 0;
      cstate = Issuing;
      flushing = false;
    }
  in
  Hashtbl.replace t.clients sid cl;
  t.members.(my_pid) <- cl :: t.members.(my_pid)

let me t =
  match Hashtbl.find_opt t.clients (Sthread.self_id ()) with
  | Some c -> c
  | None -> failwith "Dps: thread not attached"

let cursor_advance cl scanned n = if n > 0 then cl.cursor <- (cl.cursor + max 1 scanned) mod n

(* Serve the requests pending in one ring, assuming exclusive access (the
   ring lock, if any, is held by the caller). The batch is the unit of
   service: each entry is claimed (op taken) before its dispatch work is
   charged, so a second server never double-executes and a crash
   mid-dispatch leaves a claim that recovery can recognise as lost —
   entries the dead server already finished keep their buffered reply and
   are *not* re-dispatched, so a takeover of a partially served batch stays
   exactly-once. All replies then publish with one releasing store.
   [budget] is approximate: a batch is never split across budgets. *)
let serve_slots t ~pid ring ~budget =
  let self = Sthread.self_id () in
  let served = ref 0 in
  let continue_ring = ref true in
  while !continue_ring && !served < budget do
    let slot = ring.slots.(ring.recv_idx mod Array.length ring.slots) in
    Simops.read slot.maddr;
    if not slot.toggle then continue_ring := false
    else if slot.claim >= 0 && not (Hashtbl.mem t.dead_tids slot.claim) then
      (* a live server is mid-dispatch (reachable only through a broken
         ring lock); leave the batch to it *)
      continue_ring := false
    else begin
      let n = slot.count in
      slot.claim <- self;
      obs_span ~args:[ ("count", Obs.A_int n) ] "dps.dispatch" (fun () ->
          for i = 0 to n - 1 do
            let e = slot.entries.(i) in
            match e.eop with
            | Some op when e.ecell = None ->
                (* fire-and-forget: no awaiter could ever re-issue this, so
                   keep the descriptor armed until the operation has run — a
                   takeover of this slot after we crash mid-dispatch re-runs
                   it. Safe against double dispatch because only a dead
                   claimer's slot can be re-claimed. *)
                Simops.work t.dispatch_cost;
                e.eret <- op ();
                e.edone <- true;
                e.eop <- None;
                incr served
            | Some op ->
                (* awaited: disarm before dispatching, so an escalating
                   awaiter that still sees the descriptor can cancel and
                   re-issue without racing our execution *)
                e.eop <- None;
                (match e.ecell with
                | Some r when r.obs_id <> 0 ->
                    Obs.async_step ~id:r.obs_id ~now:(Sthread.time ()) "dispatch"
                | _ -> ());
                (* request unmarshalling and dispatch, per operation *)
                Simops.work t.dispatch_cost;
                e.eret <- op ();
                e.edone <- true;
                incr served
            | None -> ()
          done;
          (* one releasing store acks the whole batch: fill every completion
             cell, clear the toggle, then a single line transfer *)
          for i = 0 to n - 1 do
            let e = slot.entries.(i) in
            (match e.ecell with
            | Some r ->
                r.state <- (if e.edone then Done e.eret else Lost);
                r.fresh <- Some slot
            | None -> ());
            e.ecell <- None;
            e.ecancelled <- false
          done;
          slot.claim <- -1;
          slot.toggle <- false;
          (* retire bookkeeping lands in the same atomic block as the
             toggle clear, before the ack's charge: a server killed at the
             store must not leave a cleared slot still counted — that
             count would never drain *)
          ring.recv_idx <- ring.recv_idx + 1;
          ring.last_served <- Sthread.time ();
          t.last_served.(pid) <- ring.last_served;
          ring.rpending <- ring.rpending - n;
          t.pending.(pid) <- t.pending.(pid) - n;
          if !failpoint_skip_completion_fence then Simops.write slot.maddr
          else Simops.write_release slot.maddr)
    end
  done;
  !served

(* Drain up to [budget] pending requests from one ring. When the ring has
   a lock (dedicated pollers or self-healing), it serializes us with other
   servers; on contention we simply skip the ring. *)
let serve_ring t ~pid ring ~budget =
  let proceed =
    match ring.rlock with None -> true | Some l -> Spinlock.try_acquire l
  in
  if not proceed then 0
  else begin
    let served = serve_slots t ~pid ring ~budget in
    (match ring.rlock with None -> () | Some l -> Spinlock.release l);
    served
  end

(* Forcibly serve one ring: wait out a live lock holder up to [patience],
   break the lock of a dead one. The per-ring step behind takeover. *)
let takeover_ring t pid ring =
  match ring.rlock with
  | None -> 0
  | Some l ->
      let patience = max 512 (t.await_timeout / 16) in
      let got =
        Spinlock.acquire_for l ~budget:patience
        ||
        match Spinlock.owner l with
        | Some holder when holder >= 0 && Hashtbl.mem t.dead_tids holder ->
            Spinlock.break_lock l;
            t.n_lock_breaks <- t.n_lock_breaks + 1;
            t.lock_breaks_pid.(pid) <- t.lock_breaks_pid.(pid) + 1;
            Spinlock.try_acquire l
        | _ -> false
      in
      if got then begin
        let served = serve_slots t ~pid ring ~budget:max_int in
        Spinlock.release l;
        served
      end
      else 0

(* Takeover (§4.4 under faults): serve *every* ring of partition [pid]
   ourselves, like a dedicated poller would — used by a sender whose
   delegation has stalled past its timeout, so a dead peer's share (or a
   whole dead locality) still makes progress. Ring locks abandoned by
   crashed holders are broken and reclaimed. *)
let takeover_serve t pid =
  obs_span ~args:[ ("pid", Obs.A_int pid) ] "dps.takeover" (fun () ->
  let p = t.partitions.(pid) in
  let served = ref 0 in
  Array.iter (fun ring -> served := !served + takeover_ring t pid ring) p.rings;
  if !served > 0 then begin
    t.n_takeovers <- t.n_takeovers + 1;
    t.takeovers_pid.(pid) <- t.takeovers_pid.(pid) + 1
  end;
  !served)

let run_local t pid op =
  t.n_local <- t.n_local + 1;
  obs_span "dps.local" (fun () ->
      (* the runtime still interposes on local operations (§5.2 notes the
         overhead this causes for small update ratios) *)
      Simops.work (t.dispatch_cost / 4);
      op t.partitions.(pid).data)

(* Direct mode: bypass the rings and serialize on the partition's CNA
   lock. The holder first drains any delegated remnants still queued in
   the rings (ops published before — or racing — a mode flip, and staged
   batches that aged out after it), so no delegation is ever stranded
   behind the flip.

   Acquisition is bounded-patience, never blocking: a client probes the
   lock a few times with backoff and, if it stays busy, returns [None].
   Committing to an unbounded queue wait would be unsafe across a mode
   flip — waiters stranded in the lock queue when the partition turns
   delegated again would serialize a convoy no flip can dissolve. On
   [None], synchronous callers spin-retry with a mode re-read between
   attempts (so a flip redirects them at once), while fire-and-forget
   callers fall back to the ring path, which stays live in direct mode:
   holders combine the ring backlog before their own op, and the flip
   protocol / final drain sweep retire whatever remains. *)
let direct_attempts = 4

let try_run_direct t pid op =
  obs_span ~args:[ ("pid", Obs.A_int pid) ] "dps.direct" (fun () ->
      let rec attempt n =
        if Cna.try_acquire t.dlocks.(pid) then begin
          if t.pending.(pid) > 0 then
            Array.iter
              (fun ring ->
                if ring.rpending > 0 then ignore (serve_ring t ~pid ring ~budget:max_int))
              t.partitions.(pid).rings;
          Simops.work (t.dispatch_cost / 4);
          let v = op t.partitions.(pid).data in
          t.n_direct <- t.n_direct + 1;
          t.direct_pid.(pid) <- t.direct_pid.(pid) + 1;
          Cna.release t.dlocks.(pid);
          Some v
        end
        else begin
          (* a holder that crashed inside its critical section would
             otherwise wedge the partition in direct mode forever:
             try_acquire only ever wins an empty queue *)
          (match Cna.owner t.dlocks.(pid) with
          | Some h when h >= 0 && Hashtbl.mem t.dead_tids h ->
              Cna.break_lock t.dlocks.(pid);
              t.n_lock_breaks <- t.n_lock_breaks + 1;
              t.lock_breaks_pid.(pid) <- t.lock_breaks_pid.(pid) + 1
          | _ -> ());
          if n >= direct_attempts then None
          else begin
            Simops.work (64 * n);
            attempt (n + 1)
          end
        end
      in
      attempt 1)

(* Discard instead of drain (the [failpoint_stuck_transition] mutation):
   abandon the in-flight ring slots. Awaited entries are declared lost so
   their senders re-issue; fire-and-forget entries simply vanish — the
   accounting oracle must catch the lost updates. *)
let discard_rings t pid =
  Array.iter
    (fun ring ->
      Array.iter
        (fun slot ->
          if slot.toggle then begin
            let n = slot.count in
            for i = 0 to n - 1 do
              let e = slot.entries.(i) in
              (match e.ecell with
              | Some r ->
                  r.state <- Lost;
                  r.fresh <- Some slot
              | None -> ());
              e.eop <- None;
              e.ecell <- None;
              e.edone <- false;
              e.ecancelled <- false
            done;
            slot.claim <- -1;
            slot.toggle <- false;
            ring.recv_idx <- ring.recv_idx + 1;
            ring.rpending <- ring.rpending - n;
            t.pending.(pid) <- t.pending.(pid) - n;
            Simops.write_release slot.maddr
          end)
        ring.slots)
    t.partitions.(pid).rings

(* Retire every published delegation from [pid]'s rings. Runs with the
   partition already marked [Draining], so clients that re-read the mode
   word route new work through the CNA lock (and help drain) while the
   controller clears the backlog. Slots claimed by a live server are left
   to it; rings wedged behind a dead holder's lock fall back to takeover,
   which breaks the lock. *)
let quiesce t pid =
  if !failpoint_stuck_transition then discard_rings t pid
  else begin
    let stalls = ref 0 in
    while t.pending.(pid) > 0 do
      let served = ref 0 in
      (* the occupancy hint keeps the drain proportional to the rings that
         actually hold work — probing all N ring locks with charged RMWs
         would cost more than the backlog itself on a sparse partition *)
      Array.iter
        (fun ring ->
          if ring.rpending > 0 then
            served := !served + serve_ring t ~pid ring ~budget:max_int)
        t.partitions.(pid).rings;
      if !served > 0 then stalls := 0
      else begin
        incr stalls;
        if !stalls >= 8 then begin
          (* force the occupied rings only: waiting out (or breaking) all
             N ring locks would stall the controller for tens of thousands
             of cycles per pass *)
          Array.iter
            (fun ring -> if ring.rpending > 0 then ignore (takeover_ring t pid ring))
            t.partitions.(pid).rings;
          stalls := 0
        end
        else Simops.work 128
      end
    done
  end

let note_flip t pid m =
  t.flips_pid.(pid) <- t.flips_pid.(pid) + 1;
  (match m with
  | Direct -> t.n_to_direct <- t.n_to_direct + 1
  | Delegated | Draining -> t.n_to_delegated <- t.n_to_delegated + 1);
  if Obs.tracing_on () then
    Obs.instant ~tid:(Sthread.self_id ())
      ~now:(Sthread.time ())
      ~args:
        [
          ("pid", Obs.A_int pid);
          ("mode", Obs.A_str (match m with Direct -> "direct" | _ -> "delegated"));
        ]
      "dps.mode_flip"

(* Online mode transition, controller side. The mode word has a single
   writer (the controller); clients re-read it on every remote issue.
   Delegated -> Direct goes through [Draining]: clients switch to the CNA
   path at once while the controller retires the published backlog, so
   exactly-once and ring order survive the flip. Direct -> Delegated
   needs no drain: a direct holder finishes its op under the lock and new
   work simply queues in the rings again. *)
let set_mode t ~pid target =
  if not t.adaptive then invalid_arg "Dps.set_mode: create with ~adaptive:true";
  match (t.modes.(pid), target) with
  | (Delegated | Draining), `Direct ->
      t.modes.(pid) <- Draining;
      Simops.write_release t.mode_addr.(pid);
      quiesce t pid;
      t.modes.(pid) <- Direct;
      Simops.write_release t.mode_addr.(pid);
      note_flip t pid Direct
  | (Direct | Draining), `Delegated ->
      t.modes.(pid) <- Delegated;
      Simops.write_release t.mode_addr.(pid);
      note_flip t pid Delegated
  | Direct, `Direct | Delegated, `Delegated -> ()

(* Claim a free slot in this client's ring to [pid], serving own duties
   while the ring is full. Under self-healing, a ring stuck full past the
   timeout (its servers died) is drained by takeover so the sender is
   never wedged in claim. Mutually recursive with the serving path: serving
   flushes aged batches, which claims slots. *)
let rec claim_slot t cl pid =
  let ring = t.partitions.(pid).rings.(cl.tid) in
  let deadline = ref (if t.self_healing then Sthread.time () + t.await_timeout else max_int) in
  let rec try_claim () =
    let slot = ring.slots.(ring.send_idx mod Array.length ring.slots) in
    Simops.read slot.maddr;
    if slot.toggle then begin
      (* ring full: overlap with serving (§4.3) *)
      if serve_as t cl ~max:t.check_budget = 0 then Simops.work 64;
      (* a full ring on a partition that flipped to direct mode may have
         nobody left serving it — it is our own ring, so drain it ourselves *)
      if t.adaptive && t.modes.(pid) <> Delegated then
        ignore (serve_ring t ~pid ring ~budget:max_int);
      if t.self_healing && Sthread.time () > !deadline then begin
        ignore (takeover_serve t pid);
        deadline := Sthread.time () + t.await_timeout
      end;
      try_claim ()
    end
    else begin
      ring.send_idx <- ring.send_idx + 1;
      slot
    end
  in
  try_claim ()

(* Publish one staged batch into a ring slot: claim, copy the descriptor
   group out of the staging line, one releasing store. The whole batch
   crosses to the partition's socket as a single message-line transfer.
   Under [failpoint_drop_batch_flush] the last staged *asynchronous*
   operation is silently dropped (an op with a waiter would hang the
   mutant instead of corrupting state, which is the bug we want the
   accounting oracle to catch). *)
and flush_stage t cl stage =
  if stage.sn > 0 then
    obs_span ~args:[ ("n", Obs.A_int stage.sn) ] "dps.flush" (fun () ->
        cl.flushing <- true;
        let pid = stage.spid in
        let n0 = stage.sn in
        let n =
          if !failpoint_drop_batch_flush && n0 > 1 && stage.scells.(n0 - 1) = None then n0 - 1
          else n0
        in
        let slot = claim_slot t cl pid in
        (* gather the staged descriptors for the group copy *)
        Simops.charge_read stage.saddr;
        for i = 0 to n - 1 do
          let e = slot.entries.(i) in
          e.eop <- stage.sops.(i);
          e.eret <- 0;
          e.edone <- false;
          e.ecancelled <- false;
          e.ecell <- stage.scells.(i);
          match stage.scells.(i) with
          | Some r ->
              r.state <- Flushed (slot, i);
              r.pid <- pid;
              if r.obs_id <> 0 then
                Obs.async_step ~id:r.obs_id ~now:(Sthread.time ()) "sent"
          | None -> ()
        done;
        for i = 0 to n0 - 1 do
          stage.sops.(i) <- None;
          stage.scells.(i) <- None
        done;
        stage.sn <- 0;
        slot.count <- n;
        slot.toggle <- true;
        (* as in [send_direct]: count the publish atomically with the
           toggle, so a sender killed at the store leaves no uncounted
           published slot behind *)
        t.n_delegated <- t.n_delegated + n;
        t.n_flushes <- t.n_flushes + 1;
        t.partitions.(pid).rings.(cl.tid).rpending <-
          t.partitions.(pid).rings.(cl.tid).rpending + n;
        t.pending.(pid) <- t.pending.(pid) + n;
        Simops.write_release slot.maddr;
        cl.flushing <- false)

(* Flush every staged batch whose oldest operation is older than
   [batch_age] — the bound that keeps coalescing from turning into
   unbounded latency. Runs at every serve, so a client that is busy
   serving still pushes its own aged batches out. *)
and flush_aged t cl =
  if Array.length t.stages > 0 && not cl.flushing then begin
    let now = Sthread.time () in
    Array.iter
      (fun st -> if st.sn > 0 && now - st.sopened >= t.batch_age then flush_stage t cl st)
      t.stages.(cl.tid)
  end

(* Serve at most [budget] pending requests from this client's share of its
   partition's rings, scanning round-robin from a persistent cursor so no
   ring starves under load; returns the number served. *)
and serve_as t cl ~max:budget =
  flush_aged t cl;
  let p = t.partitions.(cl.my_pid) in
  let served = ref 0 in
  let i = ref 0 in
  let n = Array.length cl.served in
  while !served < budget && !i < n do
    let _, ring_idx = cl.served.((cl.cursor + !i) mod n) in
    served := !served + serve_ring t ~pid:cl.my_pid p.rings.(ring_idx) ~budget:(budget - !served);
    incr i
  done;
  cursor_advance cl !i n;
  !served

let serve t ~max = serve_as t (me t) ~max

let flush_all t cl =
  if Array.length t.stages > 0 && not cl.flushing then
    Array.iter (fun st -> if st.sn > 0 then flush_stage t cl st) t.stages.(cl.tid)

let flush_pending t = flush_all t (me t)

(* Direct, unbatched send — the [batch = 1] fast path, identical to the
   paper's one-op-per-line protocol. *)
let send_direct t cl pid fop cell =
  let slot = claim_slot t cl pid in
  (* argument marshalling into the message line *)
  Simops.work t.marshal_cost;
  let e = slot.entries.(0) in
  e.eop <- Some fop;
  e.eret <- 0;
  e.edone <- false;
  e.ecancelled <- false;
  e.ecell <- cell;
  (match cell with
  | Some r ->
      r.state <- Flushed (slot, 0);
      r.pid <- pid;
      if r.obs_id <> 0 then Obs.async_step ~id:r.obs_id ~now:(Sthread.time ()) "sent"
  | None -> ());
  slot.count <- 1;
  slot.toggle <- true;
  (* publish bookkeeping in the same atomic block as the toggle, before
     the charge: a sender killed at the store must not leave a published
     slot uncounted — its retire would drive the counts negative *)
  t.n_delegated <- t.n_delegated + 1;
  t.partitions.(pid).rings.(cl.tid).rpending <-
    t.partitions.(pid).rings.(cl.tid).rpending + 1;
  t.pending.(pid) <- t.pending.(pid) + 1;
  Simops.write_release slot.maddr

(* Coalescing send: marshal into the thread-private staging line; the
   batch publishes when full or aged. *)
let stage_op t cl pid fop cell =
  let stage = t.stages.(cl.tid).(pid) in
  (* argument marshalling into the staging line (socket-local) *)
  Simops.work t.marshal_cost;
  Simops.write stage.saddr;
  if stage.sn = 0 then stage.sopened <- Sthread.time ();
  stage.sops.(stage.sn) <- Some fop;
  stage.scells.(stage.sn) <- cell;
  (match cell with
  | Some r ->
      r.state <- Staged stage;
      r.pid <- pid
  | None -> ());
  stage.sn <- stage.sn + 1;
  if stage.sn >= t.batch || Sthread.time () - stage.sopened >= t.batch_age then
    flush_stage t cl stage

let issue t cl pid fop cell =
  obs_span "dps.issue" (fun () ->
      if t.batch > 1 then stage_op t cl pid fop cell else send_direct t cl pid fop cell)

(* Build the completion record for a remote operation and issue it.
   [route] recomputes the target partition on re-issue (a failed-over
   bucket lands on its new owner); the record re-binds itself in place, so
   every handle to it observes the retry. *)
let remote_issue t op ~pid0 ~route =
  let r =
    {
      state = Lost;
      pid = pid0;
      fresh = None;
      reissue = (fun () -> ());
      obs_id = Obs.next_id ();
      issued_at = (if t.adaptive then Sthread.time () else -1);
    }
  in
  if r.obs_id <> 0 then
    Obs.async_begin ~id:r.obs_id
      ~now:(Sthread.time ())
      ~args:[ ("pid", Obs.A_int pid0) ]
      "dps.op";
  let go pid =
    r.pid <- pid;
    let cl = me t in
    if pid = cl.my_pid then r.state <- Done (run_local t pid op)
    else if t.adaptive then begin
      t.remote_pid.(pid) <- t.remote_pid.(pid) + 1;
      let rec direct_or_delegate backoff =
        if current_mode t pid <> Delegated then
          match try_run_direct t pid op with
          | Some v -> r.state <- Done v
          | None ->
              (* lock busy past patience: back off and re-read the mode —
                 an uncommitted spin a concurrent flip can always redirect,
                 unlike a position in the lock's waiter queue *)
              Simops.work backoff;
              direct_or_delegate (min 1024 (backoff * 2))
        else issue t cl pid (fun () -> op t.partitions.(pid).data) (Some r)
      in
      direct_or_delegate 128
    end
    else issue t cl pid (fun () -> op t.partitions.(pid).data) (Some r)
  in
  r.reissue <- (fun () -> go (route ()));
  go pid0;
  r

let execute t ~key op =
  let cl = me t in
  let pid = partition_of_key t key in
  if pid = cl.my_pid then Local (run_local t pid op)
  else Remote (remote_issue t op ~pid0:pid ~route:(fun () -> partition_of_key t key))

(* Escalation of a delegation stuck past the timeout: serve the target
   partition's whole ring set ourselves (most stalls resolve right there —
   including our own entry), then decide from the entry's state whether to
   keep waiting (a live server is mid-dispatch, or our entry already
   executed and only awaits the batch publish), or cancel and re-issue
   (lost with a dead server, or wedged behind a lock we could not break).
   A cancelled entry's cell is detached so a later recovery of the batch
   cannot complete the superseded attempt. *)
let escalate t (r : remote) slot i =
  ignore (takeover_serve t r.pid);
  Simops.read slot.maddr;
  match r.state with
  | Flushed (s, j) when s == slot && j = i && slot.toggle ->
      let e = slot.entries.(i) in
      if e.eop <> None then begin
        e.eop <- None;
        e.ecancelled <- true;
        e.ecell <- None;
        `Reissue
      end
      else if (not e.edone) && slot.claim >= 0 && Hashtbl.mem t.dead_tids slot.claim then begin
        (* lost with a server that died mid-dispatch *)
        e.ecancelled <- true;
        e.ecell <- None;
        `Reissue
      end
      else begin
        if not (partition_has_live_member t r.pid) then fail_over t r.pid;
        `Wait
      end
  | _ -> `Check

let try_await t completion =
  match completion with
  | Local v -> Some v
  | Remote r -> (
      (* charge the pickup read if the server published the completion and
         we have not yet paid the line transfer that fetches the reply *)
      let pickup () =
        match r.fresh with
        | Some s ->
            r.fresh <- None;
            Simops.read s.maddr
        | None -> ()
      in
      let reissue () =
        t.n_retries <- t.n_retries + 1;
        if r.obs_id <> 0 then Obs.async_step ~id:r.obs_id ~now:(Sthread.time ()) "reissue";
        r.reissue ()
      in
      match r.state with
      | Done v ->
          pickup ();
          obs_op_done t r;
          Some v
      | Lost ->
          (* the server crashed with our operation: re-route and re-send *)
          pickup ();
          reissue ();
          (match r.state with
          | Done v ->
              obs_op_done t r;
              Some v
          | _ -> None)
      | Staged stage ->
          (* our own unflushed batch: force it out, then keep waiting *)
          flush_stage t (me t) stage;
          None
      | Flushed (slot, _) -> (
          Simops.read slot.maddr;
          r.fresh <- None;
          match r.state with
          | Done v ->
              obs_op_done t r;
              Some v
          | Lost ->
              reissue ();
              (match r.state with
              | Done v ->
                  obs_op_done t r;
                  Some v
              | _ -> None)
          | _ ->
              if t.adaptive && t.modes.(r.pid) <> Delegated then
                (* the partition flipped under our published op: nobody may
                   serve its rings any more — drain our own ring, the one
                   that holds it (contention means the controller or a
                   direct holder is already on it) *)
                ignore
                  (serve_ring t ~pid:r.pid
                     t.partitions.(r.pid).rings.((me t).tid)
                     ~budget:max_int)
              else ignore (serve t ~max:t.check_budget);
              None))

let await t completion =
  match completion with
  | Local v -> v
  | Remote r ->
      let cl = me t in
      (* escalate the pause while the locality has nothing to serve, so a
         long-running remote operation does not turn into a polling storm *)
      let pause = ref 32 in
      let deadline = ref (if t.self_healing then Sthread.time () + t.await_timeout else max_int) in
      let reissue_now () =
        t.n_retries <- t.n_retries + 1;
        if r.obs_id <> 0 then Obs.async_step ~id:r.obs_id ~now:(Sthread.time ()) "reissue";
        r.reissue ();
        deadline := Sthread.time () + t.await_timeout;
        pause := 32
      in
      (* charge the pickup read if the server published the completion and
         we have not yet paid the line transfer that fetches the reply *)
      let pickup () =
        match r.fresh with
        | Some s ->
            r.fresh <- None;
            Simops.read s.maddr
        | None -> ()
      in
      let rec spin () =
        match r.state with
        | Done v ->
            pickup ();
            obs_op_done t r;
            v
        | Lost ->
            pickup ();
            reissue_now ();
            spin ()
        | Staged stage ->
            flush_stage t cl stage;
            spin ()
        | Flushed (slot, i) -> poll slot i
      (* every observation of the reply goes through a charged read of the
         message line — a completion discovered while serving is still
         only *returned* after the poll that would fetch it *)
      and poll slot i =
        Simops.read slot.maddr;
        r.fresh <- None;
        match r.state with
        | Done v ->
            obs_op_done t r;
            v
        | Lost ->
            reissue_now ();
            spin ()
        | Staged _ -> spin ()
        | Flushed _ ->
            if serve_as t cl ~max:t.check_budget > 0 then begin
              pause := 32;
              poll slot i
            end
            else if
              t.adaptive
              && t.modes.(r.pid) <> Delegated
              && serve_ring t ~pid:r.pid t.partitions.(r.pid).rings.(cl.tid) ~budget:max_int
                 > 0
            then begin
              (* the partition flipped under our published op: nobody may
                 serve its rings any more — drain our own ring, the one that
                 holds it; zero served means the controller or a direct
                 holder has it, so fall through and back off *)
              pause := 32;
              poll slot i
            end
            else if t.self_healing && Sthread.time () > !deadline then begin
              match escalate t r slot i with
              | `Check | `Wait ->
                  deadline := Sthread.time () + t.await_timeout;
                  pause := 32;
                  poll slot i
              | `Reissue ->
                  reissue_now ();
                  pause := 32;
                  spin ()
            end
            else begin
              Simops.work !pause;
              pause := min 4096 (2 * !pause);
              poll slot i
            end
      in
      obs_span "dps.await" spin

let call t ~key op = await t (execute t ~key op)

let execute_async t ~key op =
  let cl = me t in
  let pid = partition_of_key t key in
  if pid = cl.my_pid then ignore (run_local t pid op)
  else if t.adaptive then begin
    t.remote_pid.(pid) <- t.remote_pid.(pid) + 1;
    if current_mode t pid <> Delegated then begin
      match try_run_direct t pid op with
      | Some _ -> ()
      | None -> issue t cl pid (fun () -> op t.partitions.(pid).data) None
    end
    else issue t cl pid (fun () -> op t.partitions.(pid).data) None
  end
  else issue t cl pid (fun () -> op t.partitions.(pid).data) None

let execute_local t ~key op =
  let pid = partition_of_key t key in
  t.n_local <- t.n_local + 1;
  op t.partitions.(pid).data

let my_partition t = (me t).my_pid

let first_live_pid t ~fallback =
  let n = npartitions t in
  let rec scan i = if i >= n then fallback else if not t.dead.(i) then i else scan (i + 1) in
  scan 0

let execute_on t ~pid op =
  assert (pid >= 0 && pid < npartitions t);
  let cl = me t in
  if pid = cl.my_pid then Local (run_local t pid op)
  else
    Remote
      (remote_issue t op ~pid0:pid
         ~route:(fun () ->
           (* a directly-targeted partition that died is re-routed to a
              live one — best-effort, same relaxed contract as failover *)
           if t.dead.(pid) then first_live_pid t ~fallback:pid else pid))

let call_on t ~pid op = await t (execute_on t ~pid op)

let execute_async_on t ~pid op =
  let cl = me t in
  if pid = cl.my_pid then ignore (run_local t pid op)
  else if t.adaptive then begin
    t.remote_pid.(pid) <- t.remote_pid.(pid) + 1;
    if current_mode t pid <> Delegated then begin
      match try_run_direct t pid op with
      | Some _ -> ()
      | None -> issue t cl pid (fun () -> op t.partitions.(pid).data) None
    end
    else issue t cl pid (fun () -> op t.partitions.(pid).data) None
  end
  else issue t cl pid (fun () -> op t.partitions.(pid).data) None

let range t op ~merge =
  let pending =
    Array.to_list (Array.mapi (fun pid _ -> execute_on t ~pid op) t.partitions)
  in
  match List.map (await t) pending with
  | [] -> invalid_arg "Dps.range: no partitions"
  | v :: rest -> List.fold_left merge v rest

let detach t =
  let sid = Sthread.self_id () in
  match Hashtbl.find_opt t.clients sid with
  | None -> failwith "Dps: thread not attached"
  | Some cl ->
      flush_all t cl;
      Hashtbl.remove t.clients sid;
      cl.cstate <- Gone;
      adopt_share t cl;
      t.members.(cl.my_pid) <- List.filter (fun p -> p != cl) t.members.(cl.my_pid)

(* S4.4 liveness: a dedicated polling thread for one locality. It checks
   every ring of the partition (not just one peer's share), so delegations
   make progress even when all the locality's clients are busy outside
   DPS. Requires [~dedicated_pollers:true] at creation.

   Polling is adaptive: a handful of empty scans spin (a request landing
   while the poller is hot is served within ~128 cycles), after which the
   poller backs off into exponentially longer timed parks capped at 8192
   cycles — an idle locality stops burning its core without giving up the
   bounded-latency guarantee. *)
let run_poller t ~pid =
  let p = t.partitions.(pid) in
  (match p.rings.(0).rlock with
  | Some _ -> ()
  | None -> failwith "Dps: create with ~dedicated_pollers:true to run pollers");
  if Obs.tracing_on () then
    Obs.thread_name ~tid:(Sthread.self_id ()) (Printf.sprintf "dps-poller p%d" pid);
  obs_span ~args:[ ("pid", Obs.A_int pid) ] "dps.poll" (fun () ->
      let idle_rounds = ref 0 in
      while t.remaining > 0 do
        let served = ref 0 in
        Array.iter
          (fun ring -> served := !served + serve_ring t ~pid ring ~budget:max_int)
          p.rings;
        if !served > 0 then idle_rounds := 0
        else begin
          incr idle_rounds;
          if !idle_rounds <= 4 then Simops.work 128
          else ignore (Sthread.park_for (min 8192 (128 lsl min 6 (!idle_rounds - 4))))
        end
      done)

(* Dynamic repartitioning (the paper assumes static partitioning and notes
   the dynamic variant is possible; S3.3). Moving a bucket is two phases:
   extract the bucket's items from the old owner, then retarget the bucket
   and insert the items at the new owner. Operations racing the window see
   the bucket's keys as absent — the same relaxed, non-linearizable
   contract as range operations. *)
let rebalance t ~bucket ~to_ ~extract ~insert =
  assert (bucket >= 0 && bucket < Array.length t.ns_table);
  assert (to_ >= 0 && to_ < npartitions t);
  if Obs.tracing_on () then
    Obs.instant ~tid:(Sthread.self_id ())
      ~now:(Sthread.time ())
      ~args:[ ("bucket", Obs.A_int bucket); ("to", Obs.A_int to_) ]
      "dps.rebalance";
  Simops.charge_read (t.ns_base + (bucket / 8));
  let from = t.ns_table.(bucket) in
  if from <> to_ then begin
    let moved = ref [] in
    ignore
      (call_on t ~pid:from (fun data ->
           moved := extract data bucket;
           List.length !moved));
    t.ns_table.(bucket) <- to_;
    Simops.write_release (t.ns_base + (bucket / 8));
    List.iter
      (fun (key, value) -> ignore (call_on t ~pid:to_ (fun data -> insert data ~key ~value; 0)))
      !moved
  end

let bucket_owner t ~bucket =
  Simops.charge_read (t.ns_base + (bucket / 8));
  t.ns_table.(bucket)

let client_done t =
  (match Hashtbl.find_opt t.clients (Sthread.self_id ()) with
  | Some cl ->
      (* publish anything still coalescing — a finished client must leave
         no staged work behind *)
      flush_all t cl;
      if cl.cstate = Issuing then begin
        cl.cstate <- Done_issuing;
        (* hand the serving share to a peer still issuing; with none, keep
           it — our own [drain] (or exit-time adoption) covers it *)
        if List.exists (fun p -> p != cl && p.cstate = Issuing) t.members.(cl.my_pid) then
          adopt_share t cl
      end
  | None -> ());
  t.remaining <- t.remaining - 1

let drain t =
  let cl = me t in
  flush_all t cl;
  while t.remaining > 0 do
    if serve_as t cl ~max:t.check_budget = 0 then Simops.work 128
  done;
  (* No client will issue again; flush leftover (e.g. asynchronous)
     requests still sitting in this peer's share of the rings. *)
  while serve_as t cl ~max:max_int > 0 do
    ()
  done;
  (* partitions that ended the run in direct mode may hold remnants no
     regular server will ever visit *)
  if t.adaptive then
    for pid = 0 to npartitions t - 1 do
      while t.pending.(pid) > 0 && not t.dead.(pid) do
        if takeover_serve t pid = 0 then Simops.work 128
      done
    done

let register_obs ?(labels = []) t reg =
  let module R = Dps_obs.Registry in
  let g name help f = R.gauge_fn reg ~labels ~help ("dps." ^ name) f in
  g "delegated_ops" "operations sent to a remote partition" (fun () ->
      float_of_int t.n_delegated);
  g "local_ops" "operations run on the caller's own partition" (fun () ->
      float_of_int t.n_local);
  g "batch_flushes" "staged batches published to a ring" (fun () -> float_of_int t.n_flushes);
  g "takeovers" "foreign serves of a stuck partition's rings" (fun () ->
      float_of_int t.n_takeovers);
  g "adoptions" "serving shares handed to a live peer" (fun () -> float_of_int t.n_adoptions);
  g "retries" "operations re-issued after loss" (fun () -> float_of_int t.n_retries);
  g "failovers" "partitions retired and retargeted" (fun () -> float_of_int t.n_failovers);
  g "crashes" "clients that vanished without client_done" (fun () ->
      float_of_int t.n_crashes);
  g "lock_breaks" "ring locks reclaimed from dead holders" (fun () ->
      float_of_int t.n_lock_breaks);
  if t.adaptive then begin
    g "direct_ops" "operations run via the direct CNA path" (fun () ->
        float_of_int t.n_direct);
    g "mode_flips_to_direct" "partitions migrated delegated -> direct" (fun () ->
        float_of_int t.n_to_direct);
    g "mode_flips_to_delegated" "partitions migrated direct -> delegated" (fun () ->
        float_of_int t.n_to_delegated)
  end;
  if versioned t then
    g "version_bumps" "per-key version increments by applied writes" (fun () ->
        float_of_int t.n_bumps);
  Array.iter
    (fun p ->
      let pid = p.info.pid in
      let labels =
        labels
        @ [ ("partition", string_of_int pid); ("socket", string_of_int p.info.node) ]
      in
      R.gauge_fn reg ~labels ~help:"delegations queued, unserved" "dps.pending_depth"
        (fun () -> float_of_int t.pending.(pid));
      R.gauge_fn reg ~labels ~help:"cycles since this partition last served"
        "dps.time_since_served" (fun () ->
          float_of_int (Sthread.now t.sched - t.last_served.(pid)));
      R.gauge_fn reg ~labels ~help:"1 when the partition has failed over" "dps.dead"
        (fun () -> if t.dead.(pid) then 1.0 else 0.0);
      R.gauge_fn reg ~labels ~help:"foreign serves of this partition's rings"
        "dps.takeovers_p" (fun () -> float_of_int t.takeovers_pid.(pid));
      R.gauge_fn reg ~labels ~help:"ring locks of this partition reclaimed from dead holders"
        "dps.lock_breaks_p" (fun () -> float_of_int t.lock_breaks_pid.(pid));
      if t.adaptive then begin
        R.gauge_fn reg ~labels ~help:"partition mode (0 delegated, 1 draining, 2 direct)"
          "dps.mode" (fun () ->
            match t.modes.(pid) with Delegated -> 0.0 | Draining -> 1.0 | Direct -> 2.0);
        R.gauge_fn reg ~labels ~help:"mode transitions of this partition" "dps.mode_flips_p"
          (fun () -> float_of_int t.flips_pid.(pid));
        R.gauge_fn reg ~labels ~help:"operations run via the direct path on this partition"
          "dps.direct_ops_p" (fun () -> float_of_int t.direct_pid.(pid))
      end)
    t.partitions

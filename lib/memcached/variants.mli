(** The five memcached configurations compared in §5.3, behind one
    client-facing record so benchmarks and examples drive them identically. *)

type t = {
  name : string;
  attach : int -> unit;  (** call once per client thread, with its index *)
  get : int -> bool;
  set : key:int -> val_lines:int -> unit;
  set_tagged : (key:int -> val_lines:int -> tag:int -> unit) option;
      (** like [set] but carrying a client-chosen operation tag delivered
          to the variant's [on_set_applied] hook at the moment the write
          actually lands on the partition (under delegation: in the serving
          thread, possibly long after the issuer was acked). [None] for
          variants without apply tracking. Cluster mode uses this as the
          exactly-once ledger's apply record. *)
  del : int -> bool;  (** delete; [true] if the key was present *)
  finish : unit -> unit;  (** call when the client stops issuing *)
  populate : keys:int array -> val_lines:int -> unit;  (** cold pre-load *)
  client_hw : int -> int;  (** where to pin client [i] *)
  idle : (unit -> int) option;
      (** background duty for an idle client, if the variant has one: DPS
          clients must keep draining delegation rings even when they have
          no requests of their own (an event-loop poller otherwise blocks
          with peers' operations queued on its partition), and must flush
          any staged request batch of their own. Bounded work per call;
          returns the number of operations served so callers can adapt
          their polling (spin while busy, park when repeatedly empty). *)
  version_of : (int -> int) option;
      (** charged read of a key's current write-version — the validation
          side of a delegation-coherent front cache (see DESIGN.md §10).
          [None] unless the variant was built with [~versions] > 0. *)
  health : (unit -> Dps.health) option;
      (** watchdog snapshot for variants with a self-healing runtime (DPS):
          the cluster health probe reads this to detect node death without
          any gossip protocol *)
  register_obs : (labels:(string * string) list -> Dps_obs.Registry.t -> unit) option;
      (** publish the backend runtime's metrics (the [dps.*] family) under
          instance [labels] such as [("node", "2")], so several backends
          can share one registry without name collisions *)
}

val stock :
  Dps_sthread.Sthread.t -> nclients:int -> buckets:int -> capacity:int -> t
(** One shared instance; locked-LRU read path. *)

val parsec :
  Dps_sthread.Sthread.t -> nclients:int -> buckets:int -> capacity:int -> t
(** One shared instance; store-free (CLOCK) read path. *)

val ffwd_mc :
  Dps_sthread.Sthread.t -> nclients:int -> buckets:int -> capacity:int -> t
(** Everything delegated to a single ffwd server on hardware thread 0;
    clients are placed to avoid it. *)

val dps_mc :
  Dps_sthread.Sthread.t ->
  ?self_healing:bool ->
  ?batch:int ->
  ?batch_age:int ->
  ?versions:int ->
  ?placement:int array ->
  ?on_set_applied:(int -> unit) ->
  nclients:int ->
  locality_size:int ->
  buckets:int ->
  capacity:int ->
  unit ->
  t
(** Hash, LRU and slab all partitioned with DPS; sets delegated
    asynchronously, gets synchronously. [self_healing] (default false)
    arms the fault-tolerant delegation paths of {!Dps.create}; [batch] and
    [batch_age] (defaults 1 and 1500) pass through to {!Dps.create}'s
    request coalescing. [placement] overrides the default whole-machine
    client placement (cluster mode confines each node's backend to its own
    socket); [on_set_applied] receives the [set_tagged] tag when the write
    lands. [versions] > 0 (default 0) allocates a per-key version table of
    that many slots in {!Dps.create} and enables [version_of]; every
    applied set or successful delete bumps the key's version {e before}
    the [on_set_applied] hook fires, so an exactly-once ledger never
    records an apply whose front-cache entries are still fresh. *)

val dps_parsec :
  Dps_sthread.Sthread.t ->
  ?self_healing:bool ->
  ?batch:int ->
  ?batch_age:int ->
  ?versions:int ->
  ?placement:int array ->
  ?on_set_applied:(int -> unit) ->
  nclients:int ->
  locality_size:int ->
  buckets:int ->
  capacity:int ->
  unit ->
  t
(** DPS partitioning over the ParSec-style core; store-free gets run
    locally (§4.4 local execution), sets delegated asynchronously. *)

val dps_direct :
  Dps_sthread.Sthread.t ->
  ?self_healing:bool ->
  ?batch:int ->
  ?batch_age:int ->
  ?versions:int ->
  ?placement:int array ->
  ?on_set_applied:(int -> unit) ->
  nclients:int ->
  locality_size:int ->
  buckets:int ->
  capacity:int ->
  unit ->
  t
(** The static direct-locking baseline: same partitioned store as
    {!dps_mc}, but every partition starts — and stays — in direct mode,
    so remote clients bypass the rings and serialize on the partition's
    CNA lock. No controller runs. *)

val adaptive :
  Dps_sthread.Sthread.t ->
  ?self_healing:bool ->
  ?batch:int ->
  ?batch_age:int ->
  ?policy:Dps_adapt.Adapt.policy ->
  ?versions:int ->
  ?placement:int array ->
  ?on_set_applied:(int -> unit) ->
  nclients:int ->
  locality_size:int ->
  buckets:int ->
  capacity:int ->
  unit ->
  t
(** {!dps_mc} plus a {!Dps_adapt.Adapt} controller thread (spawned on the
    machine's last hardware thread) that migrates individual partitions
    between delegated and direct mode at runtime, following [policy]
    (default {!Dps_adapt.Adapt.default_policy}). *)

(** The five memcached configurations compared in §5.3, behind one
    client-facing record so benchmarks and examples drive them identically. *)

type t = {
  name : string;
  attach : int -> unit;  (** call once per client thread, with its index *)
  get : int -> bool;
  set : key:int -> val_lines:int -> unit;
  del : int -> bool;  (** delete; [true] if the key was present *)
  finish : unit -> unit;  (** call when the client stops issuing *)
  populate : keys:int array -> val_lines:int -> unit;  (** cold pre-load *)
  client_hw : int -> int;  (** where to pin client [i] *)
  idle : (unit -> int) option;
      (** background duty for an idle client, if the variant has one: DPS
          clients must keep draining delegation rings even when they have
          no requests of their own (an event-loop poller otherwise blocks
          with peers' operations queued on its partition), and must flush
          any staged request batch of their own. Bounded work per call;
          returns the number of operations served so callers can adapt
          their polling (spin while busy, park when repeatedly empty). *)
}

val stock :
  Dps_sthread.Sthread.t -> nclients:int -> buckets:int -> capacity:int -> t
(** One shared instance; locked-LRU read path. *)

val parsec :
  Dps_sthread.Sthread.t -> nclients:int -> buckets:int -> capacity:int -> t
(** One shared instance; store-free (CLOCK) read path. *)

val ffwd_mc :
  Dps_sthread.Sthread.t -> nclients:int -> buckets:int -> capacity:int -> t
(** Everything delegated to a single ffwd server on hardware thread 0;
    clients are placed to avoid it. *)

val dps_mc :
  Dps_sthread.Sthread.t ->
  ?self_healing:bool ->
  ?batch:int ->
  ?batch_age:int ->
  nclients:int ->
  locality_size:int ->
  buckets:int ->
  capacity:int ->
  unit ->
  t
(** Hash, LRU and slab all partitioned with DPS; sets delegated
    asynchronously, gets synchronously. [self_healing] (default false)
    arms the fault-tolerant delegation paths of {!Dps.create}; [batch] and
    [batch_age] (defaults 1 and 1500) pass through to {!Dps.create}'s
    request coalescing. *)

val dps_parsec :
  Dps_sthread.Sthread.t ->
  ?self_healing:bool ->
  ?batch:int ->
  ?batch_age:int ->
  nclients:int ->
  locality_size:int ->
  buckets:int ->
  capacity:int ->
  unit ->
  t
(** DPS partitioning over the ParSec-style core; store-free gets run
    locally (§4.4 local execution), sets delegated asynchronously. *)

(** The five memcached configurations of §5.3, behind one client-facing
    record so benchmarks and examples drive them identically:

    - [stock]: one shared instance; locked-LRU read path.
    - [parsec]: one shared instance; store-free (CLOCK) read path.
    - [ffwd_mc]: everything delegated to a single ffwd server.
    - [dps_mc]: hash table, LRU and slab all partitioned with DPS;
      sets delegated asynchronously, gets synchronously.
    - [dps_parsec]: DPS partitioning over the ParSec-style core; gets run
      locally (§4.4 local execution) since they are store-free. *)

module Sthread = Dps_sthread.Sthread
module Alloc = Dps_sthread.Alloc
module Machine = Dps_machine.Machine
module Topology = Dps_machine.Topology

type t = {
  name : string;
  attach : int -> unit;  (** call once per client thread, with its index *)
  get : int -> bool;
  set : key:int -> val_lines:int -> unit;
  set_tagged : (key:int -> val_lines:int -> tag:int -> unit) option;
      (** like [set] but carrying a client-chosen tag delivered to the
          variant's [on_set_applied] hook when the write actually lands *)
  del : int -> bool;  (** delete; [true] if the key was present *)
  finish : unit -> unit;  (** call when the client stops issuing *)
  populate : keys:int array -> val_lines:int -> unit;  (** cold pre-load *)
  client_hw : int -> int;  (** where to pin client [i] *)
  idle : (unit -> int) option;
      (** bounded background duty for an idle client (DPS ring draining);
          returns the number of operations served so the caller can tell a
          useful round from an empty one *)
  version_of : (int -> int) option;
      (** charged read of a key's write-version — the validation side of a
          delegation-coherent front cache; [None] unless the variant was
          built with [~versions] > 0 *)
  health : (unit -> Dps.health) option;
      (** watchdog snapshot for variants with a self-healing runtime *)
  register_obs : (labels:(string * string) list -> Dps_obs.Registry.t -> unit) option;
      (** publish the backend runtime's metrics under instance [labels] *)
}

let shared_core sched ~recency ~buckets ~capacity =
  let m = Sthread.machine sched in
  let alloc = Alloc.create m ~cold:Alloc.Spread in
  Mc_core.create alloc ~buckets ~capacity ~recency

let default_placement sched n =
  let topo = Machine.topology (Sthread.machine sched) in
  let placement = Topology.placement topo ~n in
  fun i -> placement.(i)

let shared sched ~name ~recency ~nclients ~buckets ~capacity =
  let core = shared_core sched ~recency ~buckets ~capacity in
  {
    name;
    attach = (fun _ -> ());
    get = (fun key -> Mc_core.get core key);
    set = (fun ~key ~val_lines -> Mc_core.set core ~key ~val_lines);
    set_tagged = None;
    del = (fun key -> Mc_core.delete core key);
    finish = (fun () -> ());
    populate =
      (fun ~keys ~val_lines -> Array.iter (fun key -> Mc_core.set core ~key ~val_lines) keys);
    client_hw = default_placement sched nclients;
    idle = None;
    version_of = None;
    health = None;
    register_obs = None;
  }

let stock sched ~nclients ~buckets ~capacity =
  shared sched ~name:"stock" ~recency:Mc_core.Lru_list ~nclients ~buckets ~capacity

let parsec sched ~nclients ~buckets ~capacity =
  shared sched ~name:"parsec" ~recency:Mc_core.Clock ~nclients ~buckets ~capacity

let ffwd_mc sched ~nclients ~buckets ~capacity =
  let m = Sthread.machine sched in
  (* server owns socket 0's first hardware thread; clients avoid it *)
  let alloc = Alloc.create m ~cold:(Alloc.Node 0) in
  let core = Mc_core.create alloc ~buckets ~capacity ~recency:Mc_core.Lru_list in
  let f = Dps_ffwd.Ffwd.create sched ~server_hw:[| 0 |] ~clients:nclients in
  let topo = Machine.topology m in
  let placement = Topology.placement topo ~n:(min (Topology.nthreads topo) (nclients + 1)) in
  let nplaced = Array.length placement in
  {
    name = "ffwd";
    attach = (fun c -> Dps_ffwd.Ffwd.attach f ~client:c);
    set_tagged = None;
    get =
      (fun key ->
        Dps_ffwd.Ffwd.call f ~server:0 (fun () -> if Mc_core.get core key then 1 else 0) = 1);
    del =
      (fun key ->
        Dps_ffwd.Ffwd.call f ~server:0 (fun () -> if Mc_core.delete core key then 1 else 0) = 1);
    set =
      (fun ~key ~val_lines ->
        ignore
          (Dps_ffwd.Ffwd.call f ~server:0 (fun () ->
               Mc_core.set core ~key ~val_lines;
               0)));
    finish = (fun () -> Dps_ffwd.Ffwd.client_done f);
    populate =
      (fun ~keys ~val_lines -> Array.iter (fun key -> Mc_core.set core ~key ~val_lines) keys);
    client_hw = (fun i -> placement.(1 + (i mod (nplaced - 1))) (* skip the server's slot *));
    idle = None;
    version_of = None;
    health = None;
    register_obs = None;
  }

let dps_generic sched ~name ~recency ~get_mode ?(self_healing = false) ?(batch = 1)
    ?(batch_age = 1500) ?(adaptive = false) ?(direct = false) ?(versions = 0) ?on_created
    ?placement ?on_set_applied ~nclients ~locality_size ~buckets ~capacity () =
  let nparts = (nclients + locality_size - 1) / locality_size in
  let dps =
    Dps.create sched ~nclients ~locality_size ~self_healing ~batch ~batch_age ~adaptive
      ~direct ~versions ?placement
      ~hash:(fun k -> k)
      ~mk_data:(fun (info : Dps.partition_info) ->
        Mc_core.create info.Dps.alloc
          ~buckets:(max 64 (buckets / nparts))
          ~capacity:(max 1 (capacity / nparts))
          ~recency)
      ()
  in
  (match on_created with Some f -> f dps | None -> ());
  let do_set ~key ~val_lines ~tag =
    Dps.execute_async dps ~key (fun core ->
        Mc_core.set core ~key ~val_lines;
        (* version first, hook second: when the exactly-once ledger records
           the apply, every front cache entry for [key] is already stale *)
        Dps.bump_version dps ~key;
        (* the hook fires when the write lands on the partition — under
           delegation that is inside the serving thread, not the issuer *)
        (match on_set_applied with Some f -> f tag | None -> ());
        0)
  in
  {
    name;
    attach = (fun c -> Dps.attach dps ~client:c);
    get =
      (fun key ->
        let op core = if Mc_core.get core key then 1 else 0 in
        (match get_mode with
        | `Delegate -> Dps.call dps ~key op
        | `Local -> Dps.execute_local dps ~key op)
        = 1);
    del =
      (fun key ->
        Dps.call dps ~key (fun core ->
            let found = Mc_core.delete core key in
            if found then Dps.bump_version dps ~key;
            if found then 1 else 0)
        = 1);
    set = (fun ~key ~val_lines -> do_set ~key ~val_lines ~tag:0);
    set_tagged = Some do_set;
    finish =
      (fun () ->
        Dps.client_done dps;
        Dps.drain dps);
    populate =
      (fun ~keys ~val_lines ->
        Array.iter
          (fun key ->
            let core = Dps.partition_data dps (Dps.partition_of_key dps key) in
            Mc_core.set core ~key ~val_lines)
          keys);
    client_hw = (fun i -> Dps.client_hw dps i);
    idle =
      Some
        (fun () ->
          (* flush this poller's own staged delegations before serving:
             an idle event loop must not sit on a partial batch *)
          Dps.flush_pending dps;
          Dps.serve dps ~max:16);
    version_of =
      (if Dps.versioned dps then Some (fun key -> Dps.read_version dps ~key) else None);
    health = Some (fun () -> Dps.health dps);
    register_obs = Some (fun ~labels reg -> Dps.register_obs ~labels dps reg);
  }

let dps_mc sched ?self_healing ?batch ?batch_age ?versions ?placement ?on_set_applied
    ~nclients ~locality_size ~buckets ~capacity () =
  dps_generic sched ~name:"dps" ~recency:Mc_core.Lru_list ~get_mode:`Delegate ?self_healing
    ?batch ?batch_age ?versions ?placement ?on_set_applied ~nclients ~locality_size ~buckets
    ~capacity ()

let dps_parsec sched ?self_healing ?batch ?batch_age ?versions ?placement ?on_set_applied
    ~nclients ~locality_size ~buckets ~capacity () =
  dps_generic sched ~name:"dps-parsec" ~recency:Mc_core.Clock ~get_mode:`Local ?self_healing
    ?batch ?batch_age ?versions ?placement ?on_set_applied ~nclients ~locality_size ~buckets
    ~capacity ()

let dps_direct sched ?self_healing ?batch ?batch_age ?versions ?placement ?on_set_applied
    ~nclients ~locality_size ~buckets ~capacity () =
  dps_generic sched ~name:"direct-cna" ~recency:Mc_core.Lru_list ~get_mode:`Delegate
    ?self_healing ?batch ?batch_age ~direct:true ?versions ?placement ?on_set_applied
    ~nclients ~locality_size ~buckets ~capacity ()

let adaptive sched ?self_healing ?batch ?batch_age ?policy ?versions ?placement
    ?on_set_applied ~nclients ~locality_size ~buckets ~capacity () =
  let m = Sthread.machine sched in
  let ctrl_hw = Topology.nthreads (Machine.topology m) - 1 in
  dps_generic sched ~name:"adaptive" ~recency:Mc_core.Lru_list ~get_mode:`Delegate
    ?self_healing ?batch ?batch_age ~adaptive:true
    ~on_created:(fun dps ->
      (* the controller shares the last hardware thread; it parks through
         most of its life, so the co-resident client barely notices *)
      Sthread.spawn sched ~hw:ctrl_hw (fun () -> Dps_adapt.Adapt.run ?policy dps))
    ?versions ?placement ?on_set_applied ~nclients ~locality_size ~buckets ~capacity ()

module Sthread = Dps_sthread.Sthread
module Prng = Dps_simcore.Prng
module Obs = Dps_obs.Obs

type spec = {
  crash_prob : float;
  stall_prob : float;
  stall_cycles : int;
  delay_prob : float;
  delay_cycles : int;
  after : int;
  max_crashes : int;
  eligible : int -> bool;
}

let spec ?(crash_prob = 0.0) ?(stall_prob = 0.0) ?(stall_cycles = 1000) ?(delay_prob = 0.0)
    ?(delay_cycles = 1000) ?(after = 0) ?(max_crashes = max_int) ?(eligible = fun _ -> true) () =
  { crash_prob; stall_prob; stall_cycles; delay_prob; delay_cycles; after; max_crashes; eligible }

type event = Ev_crash | Ev_stall of int

type t = {
  sched : Sthread.t;
  spec : spec;
  prng : Prng.t;
  (* per-tid scheduled events, kept sorted by due time *)
  scheduled : (int, (int * event) list ref) Hashtbl.t;
  mutable n_crashes : int;
  mutable n_prob_crashes : int;
  mutable n_stalls : int;
  mutable n_delays : int;
  mutable crashed_rev : int list;
}

let add_event t ~tid ~at ev =
  let q =
    match Hashtbl.find_opt t.scheduled tid with
    | Some q -> q
    | None ->
        let q = ref [] in
        Hashtbl.replace t.scheduled tid q;
        q
  in
  q := List.merge (fun (a, _) (b, _) -> compare a b) !q [ (at, ev) ]

let schedule_crash t ~tid ~at = add_event t ~tid ~at Ev_crash
let schedule_stall t ~tid ~at ~cycles = add_event t ~tid ~at (Ev_stall (max 1 cycles))

(* Whole-node kill: the victim tids are resolved at fire time (threads may
   not have run — hence have no tid — when the kill is planned), each gets
   an immediately-due crash event, and parked victims are woken so they
   reach a decision point instead of dying only at their next natural
   wake-up. *)
let schedule_kill t ~at ~tids =
  Sthread.at t.sched ~time:at (fun () ->
      List.iter
        (fun tid ->
          add_event t ~tid ~at Ev_crash;
          ignore (Sthread.unpark t.sched ~tid))
        (tids ()))

let record_crash t tid =
  t.n_crashes <- t.n_crashes + 1;
  t.crashed_rev <- tid :: t.crashed_rev

(* Pop the first scheduled event for [tid] that is due at [now]. *)
let due_event t ~tid ~now =
  match Hashtbl.find_opt t.scheduled tid with
  | None -> None
  | Some q -> (
      match !q with
      | (at, ev) :: rest when now >= at ->
          q := rest;
          Some ev
      | _ -> None)

let decide_raw t ~tid ~now ~tag ~cycles:_ =
  match due_event t ~tid ~now with
  | Some Ev_crash ->
      record_crash t tid;
      Some Sthread.Crash
  | Some (Ev_stall n) ->
      t.n_stalls <- t.n_stalls + 1;
      Some (Sthread.Stall n)
  | None ->
      let s = t.spec in
      if now < s.after || not (s.eligible tid) then None
      else if
        s.crash_prob > 0.0 && t.n_prob_crashes < s.max_crashes && Prng.below t.prng s.crash_prob
      then begin
        t.n_prob_crashes <- t.n_prob_crashes + 1;
        record_crash t tid;
        Some Sthread.Crash
      end
      else if s.stall_prob > 0.0 && Prng.below t.prng s.stall_prob then begin
        t.n_stalls <- t.n_stalls + 1;
        Some (Sthread.Stall (1 + Prng.int t.prng s.stall_cycles))
      end
      else
        match tag with
        | Sthread.Access_op _ when s.delay_prob > 0.0 && Prng.below t.prng s.delay_prob ->
            t.n_delays <- t.n_delays + 1;
            Some (Sthread.Stall (1 + Prng.int t.prng s.delay_cycles))
        | _ -> None

let decide t ~tid ~now ~tag ~cycles =
  let d = decide_raw t ~tid ~now ~tag ~cycles in
  (if Obs.tracing_on () then
     match d with
     | Some Sthread.Crash -> Obs.instant ~tid ~now ~cat:"fault" "fault.crash"
     | Some (Sthread.Stall n) -> Obs.complete ~tid ~now ~dur:n ~cat:"fault" "fault.stall"
     | None -> ());
  d

let install sched ~seed spec =
  let t =
    {
      sched;
      spec;
      prng = Prng.create seed;
      scheduled = Hashtbl.create 16;
      n_crashes = 0;
      n_prob_crashes = 0;
      n_stalls = 0;
      n_delays = 0;
      crashed_rev = [];
    }
  in
  Sthread.set_fault_hook sched
    (Some (fun ~tid ~now ~tag ~cycles -> decide t ~tid ~now ~tag ~cycles));
  t

let uninstall t = Sthread.set_fault_hook t.sched None

let register_obs t reg =
  let module R = Dps_obs.Registry in
  let g name f = R.gauge_fn reg name (fun () -> float_of_int (f t)) in
  g "fault.crashes" (fun t -> t.n_crashes);
  g "fault.stalls" (fun t -> t.n_stalls);
  g "fault.delays" (fun t -> t.n_delays)
let crashes_injected t = t.n_crashes
let stalls_injected t = t.n_stalls
let delays_injected t = t.n_delays
let crashed t = List.rev t.crashed_rev

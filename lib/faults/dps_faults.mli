(** Deterministic fault injection for the simulator — the chaos harness.

    A fault plan is installed on a scheduler and consulted at every
    scheduling point of every simulated thread (see
    {!Dps_sthread.Sthread.set_fault_hook}). It can {e crash} a thread (its
    continuation is dropped and the hardware thread deactivated), {e
    stall} it for extra cycles, or {e delay} specific memory accesses —
    so any workload runs under chaos with no changes.

    Two sources of faults compose:
    - a {e schedule} of explicit events ({!schedule_crash},
      {!schedule_stall}) — "kill client 7 at t=80_000";
    - a {e spec} of per-scheduling-point probabilities drawn from a
      PRNG seeded at {!install} — background chaos.

    Everything is deterministic: the simulation is single-threaded and
    event-ordered, so the same seed, spec and schedule reproduce the same
    crashes at the same cycle, and (with the self-healing runtime) the
    same recovery — chaos runs are replayable bit-for-bit. *)

type spec = {
  crash_prob : float;  (** P(crash) per eligible scheduling point *)
  stall_prob : float;  (** P(stall) per eligible scheduling point *)
  stall_cycles : int;  (** stall length, drawn uniformly in [1, stall_cycles] *)
  delay_prob : float;  (** P(extra latency) per charged memory access *)
  delay_cycles : int;  (** delay length, drawn uniformly in [1, delay_cycles] *)
  after : int;  (** quiet period: no faults before this simulated time *)
  max_crashes : int;  (** cap on probabilistic crashes (scheduled ones don't count) *)
  eligible : int -> bool;  (** which simulated thread ids may be faulted *)
}

val spec :
  ?crash_prob:float ->
  ?stall_prob:float ->
  ?stall_cycles:int ->
  ?delay_prob:float ->
  ?delay_cycles:int ->
  ?after:int ->
  ?max_crashes:int ->
  ?eligible:(int -> bool) ->
  unit ->
  spec
(** All probabilities default to 0 (no background chaos), [stall_cycles]
    and [delay_cycles] to 1000, [after] to 0, [max_crashes] to [max_int],
    [eligible] to every thread. *)

type t

val install : Dps_sthread.Sthread.t -> seed:int64 -> spec -> t
(** Install the plan as the scheduler's fault hook (replacing any previous
    hook). The plan draws from its own PRNG stream seeded with [seed]. *)

val uninstall : t -> unit
(** Clear the scheduler's fault hook (faults stop; counters survive). *)

val schedule_crash : t -> tid:int -> at:int -> unit
(** Kill thread [tid] at its first scheduling point at or after simulated
    time [at]. Exact and deterministic regardless of the spec. *)

val schedule_kill : t -> at:int -> tids:(unit -> int list) -> unit
(** Whole-node kill: at time [at], crash every thread in [tids ()] —
    resolved at fire time, so victims that acquire their tid only once
    they first run (server pollers) can still be targeted at plan time.
    Parked victims are woken so they die promptly rather than at their
    next natural wake-up. Deterministic. *)

val schedule_stall : t -> tid:int -> at:int -> cycles:int -> unit
(** Stall thread [tid] by [cycles] at its first scheduling point at or
    after [at]. *)

(** {1 Report} *)

val crashes_injected : t -> int
val stalls_injected : t -> int
val delays_injected : t -> int

val crashed : t -> int list
(** Simulated thread ids crashed by this plan, in injection order. *)

val register_obs : t -> Dps_obs.Registry.t -> unit
(** Publish the plan's injection counters ([fault.crashes],
    [fault.stalls], [fault.delays]) as callback gauges. When tracing is
    enabled, injected faults also appear on the trace timeline as
    [fault.crash] instants and [fault.stall] intervals. *)

module Stack = struct
  module S = Dps_ds.Stack_treiber

  type t = S.t Dps.t

  let push (d : t) v =
    ignore (Dps.call_on d ~pid:(Dps.my_partition d) (fun s -> S.push s v; 0))

  (* Broadcast the peek to every partition (the partition count is tiny),
     then direct the pop at the winner — §3.4's recipe. *)
  let rec pop_attempts d attempts =
    if attempts = 0 then None
    else begin
      let nparts = Dps.npartitions d in
      let winner = ref None in
      for pid = 0 to nparts - 1 do
        let stamp =
          Dps.call_on d ~pid (fun s -> match S.peek_stamp s with Some x -> x | None -> -1)
        in
        match !winner with
        | Some (best_stamp, _) when stamp <= best_stamp -> ()
        | _ -> if stamp >= 0 then winner := Some (stamp, pid)
      done;
      match !winner with
      | None -> None
      | Some (_, pid) -> (
          match Dps.call_on d ~pid (fun s -> match S.pop s with Some v -> v | None -> min_int) with
          | v when v <> min_int -> Some v
          | _ -> pop_attempts d (attempts - 1))
    end

  let pop d = pop_attempts d 3

  let total_size (d : t) =
    let total = ref 0 in
    for pid = 0 to Dps.npartitions d - 1 do
      total := !total + S.size (Dps.partition_data d pid)
    done;
    !total
end

module Queue = struct
  module Q = Dps_ds.Queue_ms

  type t = Q.t Dps.t

  let enqueue (d : t) v =
    ignore (Dps.call_on d ~pid:(Dps.my_partition d) (fun q -> Q.enqueue q v; 0))

  let rec dequeue_attempts d attempts =
    if attempts = 0 then None
    else begin
      let nparts = Dps.npartitions d in
      let winner = ref None in
      for pid = 0 to nparts - 1 do
        let stamp =
          Dps.call_on d ~pid (fun q -> match Q.peek_stamp q with Some x -> x | None -> max_int)
        in
        match !winner with
        | Some (best_stamp, _) when stamp >= best_stamp -> ()
        | _ -> if stamp < max_int then winner := Some (stamp, pid)
      done;
      match !winner with
      | None -> None
      | Some (_, pid) -> (
          match
            Dps.call_on d ~pid (fun q -> match Q.dequeue q with Some v -> v | None -> min_int)
          with
          | v when v <> min_int -> Some v
          | _ -> dequeue_attempts d (attempts - 1))
    end

  let dequeue d = dequeue_attempts d 3

  let total_size (d : t) =
    let total = ref 0 in
    for pid = 0 to Dps.npartitions d - 1 do
      total := !total + Q.size (Dps.partition_data d pid)
    done;
    !total
end

module Pq = struct
  module P = Dps_ds.Pq_shavit

  type t = P.t Dps.t

  let insert (d : t) ~key ~value =
    Dps.call d ~key (fun pq -> if P.insert pq ~key ~value then 1 else 0) = 1

  let find_min (d : t) =
    let best =
      Dps.range d
        (fun pq -> match P.find_min pq with Some (k, _) -> k | None -> max_int)
        ~merge:min
    in
    if best = max_int then None
    else
      (* the key determines its partition, so fetch the value there *)
      Some
        (best, Dps.call d ~key:best (fun pq -> match P.lookup pq best with Some v -> v | None -> 0))

  let rec remove_min_attempts d attempts =
    if attempts = 0 then None
    else begin
      let best =
        Dps.range d
          (fun pq -> match P.find_min pq with Some (k, _) -> k | None -> max_int)
          ~merge:min
      in
      if best = max_int then None
      else begin
        match
          Dps.call d ~key:best (fun pq ->
              match P.remove_min pq with Some (k, _) -> k | None -> min_int)
        with
        | k when k <> min_int -> Some (k, k)
        | _ -> remove_min_attempts d (attempts - 1)
      end
    end

  let remove_min d = remove_min_attempts d 3
end

(* Event-driven integration; interface documented in the .mli. *)
module Events = struct
  type pending_op = { completion : Dps.completion; callback : int -> unit }

  type 'a t = { dps : 'a Dps.t; mutable queue : pending_op list }

  let create dps = { dps; queue = [] }

  let submit t ~key op callback =
    let completion = Dps.execute t.dps ~key op in
    t.queue <- { completion; callback } :: t.queue

  let pending t = List.length t.queue

  let pump t =
    (* push out any staged request batch first: an event loop that only
       pumps occasionally must not leave submissions parked in the
       staging line past their flush age *)
    Dps.flush_pending t.dps;
    let fired = ref 0 in
    let still_pending =
      List.filter
        (fun p ->
          match Dps.try_await t.dps p.completion with
          | Some v ->
              p.callback v;
              incr fired;
              false
          | None -> true)
        t.queue
    in
    t.queue <- still_pending;
    (* serve peers even when nothing completed, so the loop stays a good
       citizen of its locality *)
    if !fired = 0 then ignore (Dps.serve t.dps ~max:4);
    !fired

  let drain_loop t =
    while t.queue <> [] do
      if pump t = 0 then Dps_sthread.Simops.work 64
    done

end

(* Partition-wide variables; interface documented in the .mli. *)
module Pvar = struct
  type 'b slot = { addr : int; mutable value : 'b }
  type 'b t = 'b slot array

  let create (type a) (dps : a Dps.t) ~init =
    Array.init (Dps.npartitions dps) (fun pid -> { addr = -1; value = init pid })

  let create_on (type a) machine (dps : a Dps.t) ~node_of ~init : 'b t =
    Array.init (Dps.npartitions dps) (fun pid ->
        {
          addr =
            Dps_machine.Machine.alloc machine (Dps_machine.Machine.On_node (node_of pid)) ~lines:1;
          value = init pid;
        })

  let get (type a) (dps : a Dps.t) (t : 'b t) =
    let slot = t.(Dps.my_partition dps) in
    if slot.addr >= 0 then Dps_sthread.Simops.read slot.addr;
    slot.value

  let set (type a) (dps : a Dps.t) (t : 'b t) v =
    let slot = t.(Dps.my_partition dps) in
    if slot.addr >= 0 then Dps_sthread.Simops.write slot.addr;
    slot.value <- v

  let get_at (t : 'b t) pid = t.(pid).value
  let fold f init (t : 'b t) = Array.fold_left (fun acc s -> f acc s.value) init t
end

(** §3.4 of the paper: structures whose operations need context across the
    whole data structure — stacks, queues, priority queues — run on DPS by
    *broadcasting* a peek to every partition, merging, and then directing
    the mutating operation at the chosen partition.

    All three adapters follow that recipe over the per-partition
    implementations in [dps_ds]. As the paper notes for range operations,
    the broadcast + act-on-winner pair is not linearizable: these are
    relaxed structures in the spirit of the quantitative-relaxation line of
    work the paper cites. *)

module Stack : sig
  type t = Dps_ds.Stack_treiber.t Dps.t

  val push : t -> int -> unit
  (** Push onto the caller's own partition (always local, as insertions
      carry no cross-partition constraint). *)

  val pop : t -> int option
  (** Broadcast-peek every partition's top timestamp, pop from the
      partition holding the *youngest* top (relaxed LIFO). *)

  val total_size : t -> int
  (** Cold: summed sizes over partitions. *)
end

module Queue : sig
  type t = Dps_ds.Queue_ms.t Dps.t

  val enqueue : t -> int -> unit
  (** Enqueue on the caller's own partition. *)

  val dequeue : t -> int option
  (** Broadcast-peek every partition's front timestamp, dequeue from the
      partition holding the *oldest* front (relaxed FIFO). *)

  val total_size : t -> int
end

module Pq : sig
  type t = Dps_ds.Pq_shavit.t Dps.t

  val insert : t -> key:int -> value:int -> bool
  (** Routed by key, as for any keyed structure. *)

  val find_min : t -> (int * int) option
  (** The paper's example: an aggregation function returning the smallest
      key among all localities' heads. *)

  val remove_min : t -> (int * int) option
  (** findMin broadcast, then removeMin on the winning partition. *)
end

module Events : sig
(** Event-driven integration of DPS's asynchronous execution — the
    extension §4.4 names as future work ("DPS with asynchronous execution
    can be easily integrated into an event-driven programming model").

    A client submits operations with completion callbacks and periodically
    {!pump}s its loop: pending completions whose replies have arrived fire
    their callbacks, and the client serves its locality's delegations in
    the same turn — keeping the §4.3 peer property inside an event loop. *)

  type 'a t

  val create : 'a Dps.t -> 'a t
(** One loop per client thread; create after [Dps.attach]. *)

  val submit : 'a t -> key:int -> ('a -> int) -> (int -> unit) -> unit
(** Route the operation like [Dps.execute]; the callback fires from a later
    {!pump} (immediately at the next pump for local execution). *)

  val pump : 'a t -> int
(** One loop turn: flush any staged request batch, collect arrived
    completions, fire their callbacks, serve delegated requests. Returns
    the number of callbacks fired. *)

  val pending : 'a t -> int
(** Submitted operations whose callbacks have not fired yet. *)

  val drain_loop : 'a t -> unit
(** Pump until no submissions are pending. *)

end

module Pvar : sig
  (** Partition-wide variables — the §4.5 porting aid ("DPS provides macros
      to define and use partition-wide variables, similar to per-cpu
      variables in the Linux kernel"). Each partition owns one copy, homed
      on its NUMA node; accessors read/write the caller's own partition's
      copy with local traffic. *)

  type 'b t

  val create : 'a Dps.t -> init:(int -> 'b) -> 'b t
  (** Uncharged copies (no cache-line accounting); fine for metadata. *)

  val create_on :
    Dps_machine.Machine.t -> 'a Dps.t -> node_of:(int -> int) -> init:(int -> 'b) -> 'b t
  (** Copies backed by one cache line each, homed by [node_of pid]. *)

  val get : 'a Dps.t -> 'b t -> 'b
  (** The calling client's partition's copy (charged if line-backed). *)

  val set : 'a Dps.t -> 'b t -> 'b -> unit

  val get_at : 'b t -> int -> 'b
  (** Cold read of partition [pid]'s copy. *)

  val fold : ('acc -> 'b -> 'acc) -> 'acc -> 'b t -> 'acc
  (** Cold fold over all copies (e.g. summing per-partition counters). *)
end

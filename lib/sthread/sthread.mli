(** Simulated threads on a deterministic discrete-event scheduler.

    Each simulated thread is an OCaml 5 fiber pinned to a hardware thread of
    the simulated {!Dps_machine.Machine.t}. Charged operations ({!work},
    {!read}, {!write}, {!rmw}) suspend the fiber and resume it once the
    simulated clock has advanced by the operation's cost, so fibers
    interleave at memory-access granularity — lock-free retry loops, CAS
    races and delegation hand-offs genuinely happen.

    The scheduler is driven by {!run}; all other functions in this interface
    must be called from inside a simulated thread. *)

type t

exception Killed
(** Raised inside a thread terminated by {!exit} or {!kill}. Escapes no
    further than the scheduler: the thread is retired (hardware thread
    deactivated, exit hooks run) and the simulation continues. *)

type op_tag = Work_op | Access_op of Dps_machine.Machine.kind * int | Yield_op
(** What a suspension is for — lets fault hooks target specific operation
    classes (e.g. delay only memory accesses to some address range). *)

type fault = Crash | Stall of int
(** A fault decision for one scheduling point: [Crash] kills the thread at
    its next resumption; [Stall n] delays the resumption by [n] extra
    cycles (thread stall, interrupt, frequency dip, delayed memory). *)

val create : Dps_machine.Machine.t -> t
val machine : t -> Dps_machine.Machine.t

val spawn : t -> hw:int -> (unit -> unit) -> unit
(** Create a thread pinned to hardware thread [hw], runnable at the current
    simulated time. May be called from outside or inside the simulation. *)

val run : ?until:int -> t -> unit
(** Execute events in time order until the queue drains (all threads
    finished) or the next event lies past [until]. Re-entrant calls are not
    allowed. Exceptions raised by threads propagate. *)

val now : t -> int
(** Current simulated time in cycles (last dispatched event). *)

val live_threads : t -> int

(** {1 Thread lifecycle and fault injection} *)

val kill : t -> tid:int -> bool
(** Mark thread [tid] for death. The thread is destroyed at its next
    scheduling point: its continuation is discarded (via {!Killed}, so
    [Fun.protect] finalizers still run), the hardware thread is
    deactivated and exit hooks fire. Returns [false] if no live thread
    has that id. May be called from inside or outside the simulation. *)

val exit : unit -> 'a
(** Terminate the calling simulated thread immediately (raises {!Killed},
    which the scheduler absorbs). *)

val on_exit : t -> (int -> unit) -> unit
(** Register a hook called with the thread id whenever a simulated thread
    retires — normal return, {!exit}, or {!kill}. Hooks run in
    registration order, inside the dying thread's context, and must not
    perform charged operations. Runtimes use this to detect crashed
    clients and reassign their duties. *)

val set_fault_hook :
  t -> (tid:int -> now:int -> tag:op_tag -> cycles:int -> fault option) option -> unit
(** Install (or clear) the fault hook consulted at every scheduling point,
    before the suspension is enqueued: [cycles] is the charge about to be
    paid and [tag] what it pays for. Returning [Some Crash] kills the
    thread at that point; [Some (Stall d)] adds [d] cycles. The hook sees
    every charged operation of every thread, so a deterministic, seeded
    plan (see [Dps_faults]) yields bit-identical chaos replays. *)

(** {1 Operations available inside a simulated thread} *)

val in_sim : unit -> bool
(** Whether the caller is executing inside a simulated thread. Library code
    uses this to run the same logic charged (in simulation) or cold (setup
    and verification outside the simulation). *)

val self_hw : unit -> int
(** Hardware thread the calling fiber is pinned to. *)

val self_id : unit -> int
(** Dense per-scheduler thread index, in spawn order. *)

val self_prng : unit -> Dps_simcore.Prng.t
(** Deterministic per-thread random stream. *)

val time : unit -> int

val work : int -> unit
(** Spend [n] compute cycles (dilated if the hyperthread sibling is active). *)

val read : int -> unit
(** Charged load of one cache line; a scheduling point. *)

val write : int -> unit
(** Charged store; a scheduling point. *)

val rmw : int -> unit
(** Charged atomic read-modify-write; a scheduling point. *)

val access_pipelined : factor:int -> kind:Dps_machine.Machine.kind -> int -> unit
(** Charged access whose latency is divided by [factor] (at least one
    cycle): models memory-level parallelism when a thread streams many
    independent accesses — e.g. the ffwd server sweeping its request lines,
    which the paper credits for ffwd's batching advantage. The coherence
    state transition is applied in full; only the charged latency shrinks. *)

val charge_read : int -> unit
(** Account a load without suspending — used by long read-only traversals to
    batch up to a handful of hops per scheduling point. Pair with {!flush}. *)

val flush : unit -> unit
(** Suspend for all cycles accumulated by {!charge_read} (no-op if none). *)

val yield : unit -> unit
(** Give up the processor for one cycle. *)

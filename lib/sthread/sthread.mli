(** Simulated threads on a deterministic discrete-event scheduler.

    Each simulated thread is an OCaml 5 fiber pinned to a hardware thread of
    the simulated {!Dps_machine.Machine.t}. Charged operations ({!work},
    {!read}, {!write}, {!rmw}) suspend the fiber and resume it once the
    simulated clock has advanced by the operation's cost, so fibers
    interleave at memory-access granularity — lock-free retry loops, CAS
    races and delegation hand-offs genuinely happen.

    The scheduler is driven by {!run}; all other functions in this interface
    must be called from inside a simulated thread. *)

type t

exception Killed
(** Raised inside a thread terminated by {!exit} or {!kill}. Escapes no
    further than the scheduler: the thread is retired (hardware thread
    deactivated, exit hooks run) and the simulation continues. *)

type op_tag = Work_op | Access_op of Dps_machine.Machine.kind * int | Yield_op
(** What a suspension is for — lets fault hooks target specific operation
    classes (e.g. delay only memory accesses to some address range). *)

type fault = Crash | Stall of int
(** A fault decision for one scheduling point: [Crash] kills the thread at
    its next resumption; [Stall n] delays the resumption by [n] extra
    cycles (thread stall, interrupt, frequency dip, delayed memory). *)

val create : Dps_machine.Machine.t -> t
val machine : t -> Dps_machine.Machine.t

val spawn : t -> hw:int -> (unit -> unit) -> unit
(** Create a thread pinned to hardware thread [hw], runnable at the current
    simulated time. May be called from outside or inside the simulation. *)

val run : ?until:int -> t -> unit
(** Execute events in time order until the queue drains (all threads
    finished) or the next event lies past [until]. Re-entrant calls are not
    allowed. Exceptions raised by threads propagate. *)

val now : t -> int
(** Current simulated time in cycles (last dispatched event). *)

val live_threads : t -> int

(** {1 Thread lifecycle and fault injection} *)

val kill : t -> tid:int -> bool
(** Mark thread [tid] for death. The thread is destroyed at its next
    scheduling point: its continuation is discarded (via {!Killed}, so
    [Fun.protect] finalizers still run), the hardware thread is
    deactivated and exit hooks fire. Returns [false] if no live thread
    has that id. May be called from inside or outside the simulation. *)

val exit : unit -> 'a
(** Terminate the calling simulated thread immediately (raises {!Killed},
    which the scheduler absorbs). *)

val on_exit : t -> (int -> unit) -> unit
(** Register a hook called with the thread id whenever a simulated thread
    retires — normal return, {!exit}, or {!kill}. Hooks run in
    registration order, inside the dying thread's context, and must not
    perform charged operations. Runtimes use this to detect crashed
    clients and reassign their duties. *)

val set_fault_hook :
  t -> (tid:int -> now:int -> tag:op_tag -> cycles:int -> fault option) option -> unit
(** Install (or clear) the fault hook consulted at every scheduling point,
    before the suspension is enqueued: [cycles] is the charge about to be
    paid and [tag] what it pays for. Returning [Some Crash] kills the
    thread at that point; [Some (Stall d)] adds [d] cycles. The hook sees
    every charged operation of every thread, so a deterministic, seeded
    plan (see [Dps_faults]) yields bit-identical chaos replays. *)

(** {1 Concurrency-checking hooks (lib/check)} *)

val set_sched_hook : t -> (tid:int -> now:int -> tag:op_tag -> cycles:int -> int) option -> unit
(** Install (or clear) the schedule-exploration hook. Like the fault hook
    it is consulted at every scheduling point, but it only perturbs timing:
    the returned value (clamped at 0) is added to the suspension's charge,
    forcing a preemption — other runnable threads proceed first. A seeded
    hook therefore drives one deterministic member of the schedule space;
    see [Dps_check.Schedule]. Composes with the fault hook (delays add). *)

type access_class = Load | Racy_load | Store | Release_store | Atomic
(** How a charged access participates in the happens-before model consumed
    by the race detector. Costs are identical to the plain kinds; only the
    emitted trace event differs. [Racy_load] marks a read that is racy by
    design (optimistic traversals that re-validate); [Release_store] is a
    publishing store (lock release, ring-slot hand-off); [Atomic] is every
    read-modify-write. *)

type trace_ev =
  | T_access of { tid : int; cls : access_class; addr : int }
  | T_sync of { tid : int; acquire : bool; token : int }
      (** explicit happens-before edge on an abstract token
          ({!sync_acquire} / {!sync_release}) *)
  | T_spawn of { parent : int option; child : int }
  | T_unpark of { src : int option; dst : int }
  | T_wake of { tid : int }  (** a {!park} returned *)
  | T_retire of { tid : int }

val set_tracer : t -> (trace_ev -> unit) option -> unit
(** Install (or clear) the event tracer. Access events are emitted after
    the charge is paid — i.e. at the point the mutation the access stands
    for actually lands — so event order equals effect order. *)

(** {1 Operations available inside a simulated thread} *)

val in_sim : unit -> bool
(** Whether the caller is executing inside a simulated thread. Library code
    uses this to run the same logic charged (in simulation) or cold (setup
    and verification outside the simulation). *)

val self_hw : unit -> int
(** Hardware thread the calling fiber is pinned to. *)

val self_id : unit -> int
(** Dense per-scheduler thread index, in spawn order. *)

val self_prng : unit -> Dps_simcore.Prng.t
(** Deterministic per-thread random stream. *)

val time : unit -> int

val obs_span : ?args:(string * Dps_obs.Obs.arg) list -> string -> (unit -> 'a) -> 'a
(** Run [f] inside an observability span named [name] on the calling
    simulated thread (see {!Dps_obs.Obs}). Pure host-side bookkeeping: no
    charged access, no scheduling point, a single branch when
    observability is disabled — enabling it never perturbs the
    simulation. The span is closed even when [f] is unwound by a kill. *)

val work : int -> unit
(** Spend [n] compute cycles (dilated if the hyperthread sibling is active). *)

val read : int -> unit
(** Charged load of one cache line; a scheduling point. *)

val read_racy : int -> unit
(** Charged load annotated as racy by design — an optimistic read whose
    value is re-validated before use (optik version reads, lazy-list
    traversals, RLU reads). Costs exactly like {!read}; the race detector
    excuses it instead of reporting. *)

val write : int -> unit
(** Charged store; a scheduling point. *)

val write_release : int -> unit
(** Charged store with release semantics: publishes the writer's
    happens-before clock on the line, picked up by later loads of the same
    line (lock release, ring-slot hand-off). Costs exactly like {!write}. *)

val rmw : int -> unit
(** Charged atomic read-modify-write; a scheduling point. Acquire+release
    on the line in the happens-before model. *)

val sync_acquire : int -> unit
(** Uncharged happens-before annotation: acquire the clock last released on
    abstract token [tok] (for edges that no single charged line carries). *)

val sync_release : int -> unit
(** Uncharged counterpart of {!sync_acquire}: release the caller's clock on
    the token. *)

val access_pipelined : factor:int -> kind:Dps_machine.Machine.kind -> int -> unit
(** Charged access whose latency is divided by [factor] (at least one
    cycle): models memory-level parallelism when a thread streams many
    independent accesses — e.g. the ffwd server sweeping its request lines,
    which the paper credits for ffwd's batching advantage. The coherence
    state transition is applied in full; only the charged latency shrinks. *)

val charge_read : int -> unit
(** Account a load without suspending — used by long read-only traversals to
    batch up to a handful of hops per scheduling point. Pair with {!flush}. *)

val charge_read_racy : int -> unit
(** {!charge_read} annotated as racy by design, like {!read_racy}. *)

val flush : unit -> unit
(** Suspend for all cycles accumulated by {!charge_read} (no-op if none). *)

val yield : unit -> unit
(** Give up the processor for one cycle. *)

(** {1 Blocking and wakeups}

    Blocking I/O for the simulated network front-end: a thread that has
    nothing to do parks (releasing its hardware thread, so the hyperthread
    sibling runs undilated) until another thread — or a timer/event callback
    — unparks it. A wakeup permit makes the pair race-free: an {!unpark}
    that arrives while the target is still running is remembered, and the
    target's next {!park} returns immediately — no lost wakeups. *)

val park : unit -> unit
(** Block the calling thread until {!unpark} targets it. Returns without
    blocking (after consuming the permit) if an unpark already arrived.
    Batched {!charge_read} costs are settled before blocking. A parked
    thread can still be {!kill}ed; it dies at the wakeup point. *)

val park_for : int -> bool
(** Like {!park} but with a timeout of [d > 0] cycles: returns [true] if
    the timeout fired first, [false] if an {!unpark} (or pending permit)
    woke the thread sooner. The epoll-with-timeout of the simulated world —
    event-loop pollers use it to alternate blocking with bounded background
    serving (e.g. draining DPS delegation rings). *)

val unpark : t -> tid:int -> bool
(** Wake thread [tid]: resume it at the current simulated time if it is
    parked, otherwise leave a wakeup permit for its next {!park}. Returns
    [false] if no live thread has that id. Callable from inside the
    simulation, from outside, or from an {!at} callback. *)

val at : t -> time:int -> (unit -> unit) -> unit
(** Schedule [f] to run at simulated time [time] as a bare event — not a
    thread: it must not perform charged operations, but may {!spawn},
    {!unpark}, schedule further events, and mutate model state. This is
    how the network model runs link/DMA completions and client fleets
    without occupying simulated cores. *)

type sched = t

(** FIFO wait queues over {!park}/{!unpark} — condition-variable style
    blocking with deterministic wakeup order (first waiter in, first woken).
    A thread should block on at most one queue at a time, and only via
    {!Waitq.wait} (mixing direct {!unpark} with queued waits can spend a
    signal on a spuriously-permitted waiter). *)
module Waitq : sig
  type t

  val create : unit -> t
  val waiters : t -> int

  val wait : t -> unit
  (** Enqueue the caller and park. FIFO: signals wake waiters in arrival
      order. *)

  val signal : sched -> t -> bool
  (** Wake the oldest live waiter; [false] if none was waiting. *)

  val broadcast : sched -> t -> int
  (** Wake every current waiter; returns how many were woken. *)
end

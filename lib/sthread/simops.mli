(** Cold-aware charged operations.

    Thin wrappers over {!Sthread} that become no-ops outside a simulated
    thread. Data-structure code uses these exclusively, so the same
    insert/lookup/remove paths serve both cold setup (population, test
    verification) and charged simulation.

    The annotated variants carry intent for the happens-before race
    detector in [lib/check] (see DESIGN.md for the policy):
    {!read_racy}/{!charge_read_racy} mark reads that are racy by design and
    re-validated before use; {!write_release} marks a publishing store
    (lock release, ring-slot hand-off); {!rmw} is always acquire+release on
    its line. Charged costs are identical to the plain variants. *)

val read : int -> unit
val read_racy : int -> unit
val write : int -> unit
val write_release : int -> unit
val rmw : int -> unit
val charge_read : int -> unit
val charge_read_racy : int -> unit
val flush : unit -> unit
val work : int -> unit

val sync_acquire : int -> unit
(** Uncharged happens-before edge: acquire the clock last released on an
    abstract token (for edges no single charged line carries). *)

val sync_release : int -> unit

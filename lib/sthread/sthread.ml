module Heap = Dps_simcore.Heap
module Prng = Dps_simcore.Prng
module Machine = Dps_machine.Machine
module Obs = Dps_obs.Obs

exception Killed

(* What a suspension is for — exposed to the fault hook so chaos plans can
   target memory accesses specifically (e.g. "delay remote reads"). *)
type op_tag = Work_op | Access_op of Machine.kind * int | Yield_op

type fault = Crash | Stall of int

(* How an access participates in the happens-before model (lib/check's race
   detector). The machine model charges [Racy_load] like [Load] and
   [Release_store] like [Store]; only the trace event differs. *)
type access_class = Load | Racy_load | Store | Release_store | Atomic

type trace_ev =
  | T_access of { tid : int; cls : access_class; addr : int }
  | T_sync of { tid : int; acquire : bool; token : int }
  | T_spawn of { parent : int option; child : int }
  | T_unpark of { src : int option; dst : int }
  | T_wake of { tid : int }
  | T_retire of { tid : int }

type tstate = {
  tid : int;
  hw : int;
  prng : Prng.t;
  mutable pending : int;
  mutable killed : bool;
  mutable parked : (unit, unit) Effect.Deep.continuation option;
  mutable permit : bool;
  mutable park_gen : int;  (* invalidates stale park_for timeouts *)
  mutable timed_out : bool;
}

(* The event queue's payload. The two hot cases — resuming a suspended
   thread, and waking a parked one — carry their state and continuation
   directly instead of capturing them in a fresh closure per scheduling
   point; [Thunk] covers the rare cases (spawn, timers via [at]). *)
type event =
  | Resume of tstate * (unit, unit) Effect.Deep.continuation
  | Wake of tstate * (unit, unit) Effect.Deep.continuation
  | Thunk of (unit -> unit)

type t = {
  m : Machine.t;
  events : event Heap.t;
  mutable time : int;
  mutable live : int;
  mutable next_tid : int;
  root_prng : Prng.t;
  states : (int, tstate) Hashtbl.t;  (* live threads, by tid *)
  mutable exit_hooks : (int -> unit) list;
  mutable fault_hook : (tid:int -> now:int -> tag:op_tag -> cycles:int -> fault option) option;
  mutable sched_hook : (tid:int -> now:int -> tag:op_tag -> cycles:int -> int) option;
  mutable tracer : (trace_ev -> unit) option;
}

(* "The thread currently executing" is a slot set before each resumption.
   Each scheduler runs on a single domain, but the parallel experiment
   runner (Dps_simcore.Par) runs independent schedulers on *different*
   domains concurrently, so the slot is domain-local state, not a plain
   module-level ref — that was the one piece of simulator state shared
   across experiment points. *)
let current_key : (t * tstate) option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let current () = Domain.DLS.get current_key

let ctx () =
  match !(current ()) with
  | Some c -> c
  | None -> failwith "Sthread: called from outside a simulated thread"

let create m =
  {
    m;
    events = Heap.create ();
    time = 0;
    live = 0;
    next_tid = 0;
    root_prng = Prng.create 7L;
    states = Hashtbl.create 64;
    exit_hooks = [];
    fault_hook = None;
    sched_hook = None;
    tracer = None;
  }

let machine t = t.m
let now t = t.time
let live_threads t = t.live

let on_exit t hook = t.exit_hooks <- t.exit_hooks @ [ hook ]
let set_fault_hook t hook = t.fault_hook <- hook
let set_sched_hook t hook = t.sched_hook <- hook
let set_tracer t tr = t.tracer <- tr
let emit t ev = match t.tracer with None -> () | Some f -> f ev

type _ Effect.t += Suspend : (int * op_tag) -> unit Effect.t
type _ Effect.t += Park : unit Effect.t

let suspend_tagged tag cycles = Effect.perform (Suspend (cycles, tag))
let suspend cycles = suspend_tagged Work_op cycles

let exit () =
  ignore (ctx ());
  raise Killed

(* Resume a parked thread: the hardware thread was released while blocked
   (the hyperthread pair is genuinely idle), so re-activate it first —
   [Wake] carries that extra [set_active] in the run loop. *)
let resume_parked t (state : tstate) k = Heap.push t.events ~time:t.time (Wake (state, k))

let kill t ~tid =
  match Hashtbl.find_opt t.states tid with
  | Some state ->
      state.killed <- true;
      (match state.parked with
      | Some k ->
          state.parked <- None;
          resume_parked t state k
      | None -> ());
      true
  | None -> false

let unpark t ~tid =
  match Hashtbl.find_opt t.states tid with
  | None -> false
  | Some state ->
      emit t
        (T_unpark
           {
             src = (match !(current ()) with Some (t', s) when t' == t -> Some s.tid | _ -> None);
             dst = tid;
           });
      (match state.parked with
      | Some k ->
          state.parked <- None;
          resume_parked t state k
      | None -> state.permit <- true);
      true

let at t ~time f =
  if time < t.time then invalid_arg "Sthread.at: time in the past";
  Heap.push t.events ~time
    (Thunk
       (fun () ->
         current () := None;
         f ()))

(* Retire a thread — normal return, voluntary [exit], or [kill]. Exit hooks
   run with [current] still pointing at the dying thread, but must not
   perform charged operations (the fiber is gone). *)
let retire t state =
  Machine.set_active t.m ~thread:state.hw false;
  t.live <- t.live - 1;
  Hashtbl.remove t.states state.tid;
  emit t (T_retire { tid = state.tid });
  List.iter (fun hook -> hook state.tid) t.exit_hooks

let rec exec t state f =
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> retire t state);
      exnc =
        (fun e ->
          match e with
          | Killed -> retire t state
          | e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend (n, tag) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let delay =
                    match t.fault_hook with
                    | None -> 0
                    | Some hook -> (
                        match hook ~tid:state.tid ~now:t.time ~tag ~cycles:n with
                        | None -> 0
                        | Some (Stall d) -> max 0 d
                        | Some Crash ->
                            state.killed <- true;
                            0)
                  in
                  (* schedule-exploration hook: extra cycles forced onto this
                     scheduling point (lib/check preemption schedules) *)
                  let delay =
                    delay
                    + (match t.sched_hook with
                      | None -> 0
                      | Some hook -> max 0 (hook ~tid:state.tid ~now:t.time ~tag ~cycles:n))
                  in
                  Heap.push t.events ~time:(t.time + max 0 n + delay) (Resume (state, k)))
          | Park ->
              Some
                (fun (k : (a, unit) continuation) ->
                  if state.permit || state.killed then begin
                    state.permit <- false;
                    Heap.push t.events ~time:t.time (Resume (state, k))
                  end
                  else begin
                    (* Blocked threads release the core: the hyperthread
                       sibling runs undilated until the wakeup. *)
                    Machine.set_active t.m ~thread:state.hw false;
                    state.parked <- Some k
                  end)
          | _ -> None);
    }

and spawn t ~hw f =
  let state =
    {
      tid = t.next_tid;
      hw;
      prng = Prng.split t.root_prng;
      pending = 0;
      killed = false;
      parked = None;
      permit = false;
      park_gen = 0;
      timed_out = false;
    }
  in
  t.next_tid <- t.next_tid + 1;
  t.live <- t.live + 1;
  Hashtbl.replace t.states state.tid state;
  emit t
    (T_spawn
       {
         parent = (match !(current ()) with Some (t', s) when t' == t -> Some s.tid | _ -> None);
         child = state.tid;
       });
  Machine.set_active t.m ~thread:hw true;
  Heap.push t.events ~time:t.time
    (Thunk
       (fun () ->
         current () := Some (t, state);
         if state.killed then retire t state else exec t state f))

let run ?until t =
  let cur = current () in
  let saved = !cur in
  let limit = match until with Some u -> u | None -> max_int in
  Fun.protect
    ~finally:(fun () -> cur := saved)
    (fun () ->
      let keep_going = ref true in
      while !keep_going do
        (* [next_time]/[take] instead of [min_time]/[pop]: the drain loop
           allocates nothing per event. *)
        let tm = Heap.next_time t.events in
        if tm = max_int || tm > limit then keep_going := false
        else begin
          t.time <- tm;
          match Heap.take t.events with
          | Resume (state, k) ->
              cur := Some (t, state);
              if state.killed then Effect.Deep.discontinue k Killed else Effect.Deep.continue k ()
          | Wake (state, k) ->
              Machine.set_active t.m ~thread:state.hw true;
              cur := Some (t, state);
              if state.killed then Effect.Deep.discontinue k Killed else Effect.Deep.continue k ()
          | Thunk f -> f ()
        end
      done)

let in_sim () = !(current ()) <> None
let self_hw () = (snd (ctx ())).hw
let self_id () = (snd (ctx ())).tid
let self_prng () = (snd (ctx ())).prng
let time () = (fst (ctx ())).time

(* Observability span around [f]: host-side only, balanced under kills
   (the scheduler discontinues with [Killed], so the finalizer runs). *)
let obs_span ?args name f =
  if Obs.on () then begin
    let t, state = ctx () in
    Obs.span_begin ~tid:state.tid ~now:t.time ?args name;
    Fun.protect
      ~finally:(fun () ->
        let t, state = ctx () in
        Obs.span_end ~tid:state.tid ~now:t.time)
      f
  end
  else f ()

(* Any suspending operation first drains charges accumulated by
   [charge_read], so batched traversal costs land before the operation. *)
let take_pending state =
  let p = state.pending in
  state.pending <- 0;
  p

let work n =
  let t, state = ctx () in
  let cost = Machine.work_cost t.m ~thread:state.hw n in
  if Obs.on () then Obs.charged ~tid:state.tid ~hw:state.hw ~cycles:cost ~cls:`Work;
  suspend (cost + take_pending state)

(* Trace-event timing must match when the operation's effect is visible to
   other threads. The codebase's convention is mutate-then-charge for plain
   stores (the store is visible from the moment the charge is issued) but
   charge-then-mutate for rmw (the compare-and-mutate happens atomically
   when the charge returns), and loads observe when the charge returns. So
   stores emit before the suspension, loads and rmw after — otherwise a
   spin-reader could observe an unlock and emit its load before the
   releaser's store event lands, losing the happens-before edge. *)
let access ~cls kind addr =
  let t, state = ctx () in
  let obs = Obs.on () in
  if obs then Obs.clear_stall ();
  let cost = Machine.access t.m ~now:t.time ~thread:state.hw ~addr ~kind in
  if obs then Obs.charged ~tid:state.tid ~hw:state.hw ~cycles:cost ~cls:`Mem;
  let store = match cls with Store | Release_store -> true | _ -> false in
  if store then emit t (T_access { tid = state.tid; cls; addr });
  suspend_tagged (Access_op (kind, addr)) (cost + take_pending state);
  if not store then emit t (T_access { tid = state.tid; cls; addr })

let read addr = access ~cls:Load Machine.Read addr
let read_racy addr = access ~cls:Racy_load Machine.Read addr
let write addr = access ~cls:Store Machine.Write addr
let write_release addr = access ~cls:Release_store Machine.Write addr
let rmw addr = access ~cls:Atomic Machine.Rmw addr

let access_pipelined ~factor ~kind addr =
  assert (factor >= 1);
  let t, state = ctx () in
  let obs = Obs.on () in
  if obs then Obs.clear_stall ();
  let cost = Machine.access_mlp t.m ~now:t.time ~thread:state.hw ~addr ~kind ~factor in
  if obs then Obs.charged ~tid:state.tid ~hw:state.hw ~cycles:cost ~cls:`Mem;
  let cls =
    match kind with Machine.Read -> Load | Machine.Write -> Store | Machine.Rmw -> Atomic
  in
  if cls = Store then emit t (T_access { tid = state.tid; cls; addr });
  suspend_tagged (Access_op (kind, addr)) (cost + take_pending state);
  if cls <> Store then emit t (T_access { tid = state.tid; cls; addr })

let charge_read_cls cls addr =
  let t, state = ctx () in
  let obs = Obs.on () in
  if obs then Obs.clear_stall ();
  let cost = Machine.access t.m ~now:t.time ~thread:state.hw ~addr ~kind:Machine.Read in
  if obs then Obs.charged ~tid:state.tid ~hw:state.hw ~cycles:cost ~cls:`Mem;
  state.pending <- state.pending + cost;
  emit t (T_access { tid = state.tid; cls; addr })

let charge_read addr = charge_read_cls Load addr
let charge_read_racy addr = charge_read_cls Racy_load addr

let sync_acquire token =
  let t, state = ctx () in
  emit t (T_sync { tid = state.tid; acquire = true; token })

let sync_release token =
  let t, state = ctx () in
  emit t (T_sync { tid = state.tid; acquire = false; token })

let flush () =
  let _, state = ctx () in
  if state.pending > 0 then begin
    let n = state.pending in
    state.pending <- 0;
    suspend n
  end

let yield () =
  let _, state = ctx () in
  suspend_tagged Yield_op (1 + take_pending state)

let park () =
  let t, state = ctx () in
  (* settle batched traversal charges before blocking *)
  let p = take_pending state in
  if p > 0 then suspend p;
  state.park_gen <- state.park_gen + 1;
  if Obs.on () then Obs.park_begin ~tid:state.tid ~now:t.time;
  Effect.perform Park;
  if Obs.on () then Obs.park_end ~tid:state.tid ~now:t.time;
  emit t (T_wake { tid = state.tid })

let park_for d =
  if d <= 0 then invalid_arg "Sthread.park_for";
  let t, state = ctx () in
  let p = take_pending state in
  if p > 0 then suspend p;
  let gen = state.park_gen + 1 in
  state.park_gen <- gen;
  state.timed_out <- false;
  at t
    ~time:(t.time + d)
    (fun () ->
      (* wake only the park this timeout belongs to *)
      if state.park_gen = gen && state.parked <> None then begin
        state.timed_out <- true;
        ignore (unpark t ~tid:state.tid)
      end);
  if Obs.on () then Obs.park_begin ~tid:state.tid ~now:t.time;
  Effect.perform Park;
  if Obs.on () then Obs.park_end ~tid:state.tid ~now:t.time;
  emit t (T_wake { tid = state.tid });
  state.timed_out

type sched = t

module Waitq = struct
  type t = int Queue.t

  let create () = Queue.create ()
  let waiters = Queue.length

  let wait q =
    let _, state = ctx () in
    Queue.push state.tid q;
    park ()

  let signal sched q =
    let rec go () =
      match Queue.take_opt q with
      | None -> false
      | Some tid -> if unpark sched ~tid then true else go () (* skip dead waiters *)
    in
    go ()

  let broadcast sched q =
    let n = ref 0 in
    while signal sched q do
      incr n
    done;
    !n
end

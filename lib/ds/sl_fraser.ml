(** Lock-free skip list — the paper's [lf-f] (Fraser's algorithm as shipped
    by ASCYLIB, via the Shavit-Lev-Herlihy wait-free-contains variant).

    Deletion marks the node (the real algorithm packs the mark into each
    next pointer; the node's line is the same atomicity domain here), then
    searches physically unlink marked nodes level by level. The bottom-level
    link is the linearization point of insertion; upper levels are
    best-effort index shortcuts, exactly as in the original. *)

module Simops = Dps_sthread.Simops
module Alloc = Dps_sthread.Alloc
module Prng = Dps_simcore.Prng
module Sthread = Dps_sthread.Sthread

let max_level = 16

type node = {
  key : int;
  mutable value : int;
  addr : int;
  level : int;
  mutable marked : bool;
  next : node option array;  (* length [level] *)
}

type t = { alloc : Alloc.t; head : node; tail : node; cold_prng : Prng.t }

let name = "lf-f"

let mk_node alloc key value level =
  { key; value; addr = Alloc.line alloc; level; marked = false; next = Array.make level None }

let create alloc =
  let tail = mk_node alloc max_int 0 max_level in
  let head = mk_node alloc min_int 0 max_level in
  Array.fill head.next 0 max_level (Some tail);
  { alloc; head; tail; cold_prng = Prng.create 0xBADC0FFEEL }

let random_level t =
  let p = if Sthread.in_sim () then Sthread.self_prng () else t.cold_prng in
  let rec go l = if l < max_level && Prng.bool p then go (l + 1) else l in
  go 1

let points_to pred lvl expect =
  match pred.next.(lvl) with Some c -> c == expect | None -> false

(* CAS of pred.next[lvl], refused if pred is marked (models the
   mark-in-pointer of the original: a marked predecessor's links are
   frozen). [expect] is the node currently linked. *)
let cas_next pred lvl ~expect ~next =
  Simops.rmw pred.addr;
  if (not pred.marked) && points_to pred lvl expect then begin
    pred.next.(lvl) <- next;
    true
  end
  else false

(* Allow self-unlinking from a marked predecessor (cleanup must be able to
   proceed through chains of marked nodes). *)
let cas_next_cleanup pred lvl ~expect ~next =
  Simops.rmw pred.addr;
  if points_to pred lvl expect then begin
    pred.next.(lvl) <- next;
    true
  end
  else false

exception Restart

(* Search with cleanup: fills preds/succs such that
   preds.(l).key < key <= succs.(l).key with all succs unmarked (at
   observation time). *)
let rec find t key preds succs =
  try
    Simops.charge_read t.head.addr;
    let pred = ref t.head in
    for lvl = max_level - 1 downto 0 do
      let continue_level = ref true in
      while !continue_level do
        let curr = Option.get !pred.next.(lvl) in
        Simops.charge_read curr.addr;
        if curr.marked && curr != t.tail then begin
          Simops.flush ();
          if not (cas_next_cleanup !pred lvl ~expect:curr ~next:curr.next.(lvl)) then
            raise Restart
        end
        else if curr.key < key then pred := curr
        else begin
          preds.(lvl) <- !pred;
          succs.(lvl) <- curr;
          continue_level := false
        end
      done
    done;
    Simops.flush ()
  with Restart -> find t key preds succs

let rec insert t ~key ~value =
  let preds = Array.make max_level t.head and succs = Array.make max_level t.tail in
  find t key preds succs;
  if succs.(0).key = key then false
  else begin
    let level = random_level t in
    let n = mk_node t.alloc key value level in
    for l = 0 to level - 1 do
      n.next.(l) <- Some succs.(l)
    done;
    Simops.write n.addr;
    if not (cas_next preds.(0) 0 ~expect:succs.(0) ~next:(Some n)) then insert t ~key ~value
    else begin
      (* link the index levels; abandon if the node gets deleted meanwhile *)
      let l = ref 1 in
      while !l < level && not n.marked do
        let lvl = !l in
        if cas_next preds.(lvl) lvl ~expect:succs.(lvl) ~next:(Some n) then incr l
        else begin
          find t key preds succs;
          if succs.(lvl) == n then incr l (* a helper linked it *)
          else begin
            Simops.rmw n.addr;
            if n.marked then l := level else n.next.(lvl) <- Some succs.(lvl)
          end
        end
      done;
      true
    end
  end

let remove t key =
  let preds = Array.make max_level t.head and succs = Array.make max_level t.tail in
  find t key preds succs;
  let victim = succs.(0) in
  if victim.key <> key then false
  else begin
    Simops.rmw victim.addr;
    if victim.marked then false
    else begin
      victim.marked <- true;
      (* physical cleanup *)
      find t key preds succs;
      true
    end
  end

(* Wait-free: plain traversal, no helping. *)
let lookup t key =
  Simops.charge_read t.head.addr;
  let pred = ref t.head in
  for lvl = max_level - 1 downto 0 do
    let continue_level = ref true in
    while !continue_level do
      let curr = Option.get !pred.next.(lvl) in
      Simops.charge_read curr.addr;
      if curr.key < key then pred := curr else continue_level := false
    done
  done;
  let curr = Option.get !pred.next.(0) in
  Simops.flush ();
  if curr.key = key && not curr.marked then Some curr.value else None

(* Priority-queue entry points (Shavit & Lotan build directly on this
   structure; see {!Pq_shavit}). *)

let peek_min t =
  Simops.charge_read t.head.addr;
  let rec go n =
    match n.next.(0) with
    | None -> None
    | Some c ->
        Simops.charge_read c.addr;
        if c == t.tail then begin
          Simops.flush ();
          None
        end
        else if c.marked then go c
        else begin
          Simops.flush ();
          Some (c.key, c.value)
        end
  in
  go t.head

let rec remove_min t =
  Simops.charge_read t.head.addr;
  let rec first_unmarked n =
    match n.next.(0) with
    | None -> None
    | Some c ->
        Simops.charge_read c.addr;
        if c == t.tail then None
        else if c.marked then first_unmarked c
        else Some c
  in
  match first_unmarked t.head with
  | None ->
      Simops.flush ();
      None
  | Some c ->
      Simops.rmw c.addr;
      if c.marked then remove_min t
      else begin
        c.marked <- true;
        let preds = Array.make max_level t.head and succs = Array.make max_level t.tail in
        find t c.key preds succs;
        Some (c.key, c.value)
      end

let to_list t =
  let rec go acc n =
    match n.next.(0) with
    | None -> List.rev acc
    | Some c ->
        if c.key = max_int then List.rev acc
        else go (if c.marked then acc else (c.key, c.value) :: acc) c
  in
  go [] t.head

let check_invariants t =
  (* Every level must be strictly sorted, and every unmarked node linked at
     an index level must be reachable at level 0. Marked nodes may linger at
     any level until a later search passes by — that is legal garbage. *)
  let level_keys ~include_marked lvl =
    let rec go acc n =
      match n.next.(lvl) with
      | None -> List.rev acc
      | Some c ->
          if c == t.tail then List.rev acc
          else go (if c.marked && not include_marked then acc else (c.key, c.marked) :: acc) c
    in
    go [] t.head
  in
  for lvl = 0 to max_level - 1 do
    let rec sorted = function
      | (a, _) :: ((b, _) :: _ as rest) ->
          if a >= b then failwith (Printf.sprintf "sl_fraser: level %d unsorted" lvl)
          else sorted rest
      | [ _ ] | [] -> ()
    in
    sorted (level_keys ~include_marked:true lvl)
  done;
  let set0 = Hashtbl.create 64 in
  List.iter (fun (k, _) -> Hashtbl.replace set0 k ()) (level_keys ~include_marked:false 0);
  for lvl = 1 to max_level - 1 do
    List.iter
      (fun (k, _) ->
        if not (Hashtbl.mem set0 k) then
          failwith "sl_fraser: live index key missing at level 0")
      (level_keys ~include_marked:false lvl)
  done

(* Offline maintenance hook (SET signature); nothing to do here. *)
let maintenance _ = ()

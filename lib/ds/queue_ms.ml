(** Michael & Scott's lock-free FIFO queue (the paper cites the x86
    descendant [37]). Two hot lines — head and tail — serialize cross-socket
    traffic; §3.4 positions queues, like stacks, as structures DPS handles
    with broadcast (see {!Dps_adapters.Queue}); this is the per-partition
    implementation and the shared baseline. *)

module Simops = Dps_sthread.Simops
module Alloc = Dps_sthread.Alloc

type node = { value : int; stamp : int; addr : int; mutable next : node option }

type t = {
  alloc : Alloc.t;
  head_addr : int;
  tail_addr : int;
  mutable head : node;  (* sentinel; head.next is the front *)
  mutable tail : node;
}

let now_stamp () = if Dps_sthread.Sthread.in_sim () then Dps_sthread.Sthread.time () else 0

let create alloc =
  let sentinel = { value = 0; stamp = 0; addr = Alloc.line alloc; next = None } in
  {
    alloc;
    head_addr = Alloc.line alloc;
    tail_addr = Alloc.line alloc;
    head = sentinel;
    tail = sentinel;
  }

let rec enqueue t value =
  let n = { value; stamp = now_stamp (); addr = Alloc.line t.alloc; next = None } in
  Simops.write n.addr;
  Simops.read t.tail_addr;
  let last = t.tail in
  Simops.charge_read last.addr;
  match last.next with
  | Some _ ->
      (* tail lagging: help swing it *)
      Simops.rmw t.tail_addr;
      (match (t.tail == last, last.next) with
      | true, Some nxt -> t.tail <- nxt
      | _, Some _ | _, None -> ());
      enqueue t value
  | None ->
      (* link at the end: CAS on last.next *)
      Simops.rmw last.addr;
      if last.next = None then begin
        last.next <- Some n;
        (* swing tail (may fail benignly) *)
        Simops.rmw t.tail_addr;
        if t.tail == last then t.tail <- n
      end
      else enqueue t value

let rec dequeue t =
  Simops.read t.head_addr;
  let first = t.head in
  Simops.charge_read first.addr;
  match first.next with
  | None ->
      Simops.flush ();
      None
  | Some candidate ->
      Simops.charge_read candidate.addr;
      (* CAS head from first to candidate *)
      Simops.rmw t.head_addr;
      if t.head == first then begin
        t.head <- candidate;
        (* keep tail ahead of head *)
        if t.tail == first then begin
          Simops.rmw t.tail_addr;
          if t.tail == first then t.tail <- candidate
        end;
        Some candidate.value
      end
      else dequeue t

let peek t =
  Simops.read t.head_addr;
  match t.head.next with
  | None -> None
  | Some n ->
      Simops.charge_read n.addr;
      Simops.flush ();
      Some n.value

(** Enqueue time of the current front (for the DPS broadcast dequeue). *)
let peek_stamp t =
  Simops.read t.head_addr;
  match t.head.next with
  | None -> None
  | Some n ->
      Simops.charge_read n.addr;
      Simops.flush ();
      Some n.stamp

let size t =
  let rec go acc = function None -> acc | Some n -> go (acc + 1) n.next in
  go 0 t.head.next

let to_list t =
  let rec go acc = function None -> List.rev acc | Some n -> go (n.value :: acc) n.next in
  go [] t.head.next

let check_invariants t =
  let rec go seen n =
    if List.memq n seen then failwith "queue_ms: cycle";
    match n.next with None -> n | Some nxt -> go (n :: seen) nxt
  in
  let last = go [] t.head in
  (* tail must be reachable and the last node must be tail or behind it *)
  ignore last

(** Optimistic lock-based internal BST in the style of Bronson et al.
    (PPoPP'10) — the paper's [lb-b].

    Faithful to the stand-in level documented in DESIGN.md: lookups are
    optimistic store-free traversals validated by per-node OPTIK versions;
    updates lock the affected node; removal is partially external (nodes
    tombstone in place, as Bronson does for two-child nodes). Bronson's
    relaxed-balance rotations are modelled rather than replayed: each
    structural insert additionally locks and rewrites the parent, matching
    the rotation store traffic that makes [lb-b] expensive under update
    load, while [rebalance] (cold) restores the balanced shape the
    algorithm maintains and that wins read-heavy workloads. *)

module Simops = Dps_sthread.Simops
module Alloc = Dps_sthread.Alloc
module Optik = Dps_sync.Optik

type node = {
  key : int;
  mutable value : int;
  addr : int;
  lock : Optik.t;
  mutable present : bool;
  mutable left : node option;
  mutable right : node option;
}

type t = { alloc : Alloc.t; mutable root : node }

let name = "lb-b"

let mk_node alloc key value present =
  let addr = Alloc.line alloc in
  { key; value; addr; lock = Optik.embed ~addr; present; left = None; right = None }

let create alloc = { alloc; root = mk_node alloc min_int 0 false }

(* racy by design: optimistic store-free traversal; updates re-validate
   via the per-node OPTIK version before committing *)
let rec descend_from n key =
  Simops.charge_read_racy n.addr;
  if key = n.key then begin
    Simops.flush ();
    `Found n
  end
  else
    let child = if key < n.key then n.left else n.right in
    match child with
    | Some c -> descend_from c key
    | None ->
        Simops.flush ();
        `Slot n

let rec insert t ~key ~value =
  match descend_from t.root key with
  | `Found n ->
      if n.present then false
      else begin
        Optik.lock n.lock;
        let r =
          if n.present then false
          else begin
            n.value <- value;
            n.present <- true;
            true
          end
        in
        Optik.unlock n.lock;
        r
      end
  | `Slot p ->
      let v = Optik.get_version p.lock in
      if Optik.is_locked v then insert t ~key ~value
      else begin
        let n = mk_node t.alloc key value true in
        (* releasing init publish: [n] is lockable as a parent slot the
           moment the link lands, before this writer unlocks [p] *)
        Simops.write_release n.addr;
        if Optik.try_lock_at p.lock v then begin
          let slot_free = if key < p.key then p.left = None else p.right = None in
          if slot_free then begin
            if key < p.key then p.left <- Some n else p.right <- Some n;
            (* model the relaxed-balance repair: a rotation rewrites the
               parent's links *)
            Simops.write p.addr;
            Optik.unlock p.lock;
            true
          end
          else begin
            Optik.unlock p.lock;
            insert t ~key ~value
          end
        end
        else insert t ~key ~value
      end

let remove t key =
  match descend_from t.root key with
  | `Slot _ -> false
  | `Found n ->
      if not n.present then false
      else begin
        Optik.lock n.lock;
        let r =
          if n.present then begin
            n.present <- false;
            true
          end
          else false
        in
        Optik.unlock n.lock;
        r
      end

let lookup t key =
  match descend_from t.root key with
  | `Slot _ -> None
  | `Found n -> if n.present then Some n.value else None

let to_list t =
  let rec go acc n =
    let acc = match n.left with Some l -> go acc l | None -> acc in
    let acc = if n.present then (n.key, n.value) :: acc else acc in
    match n.right with Some r -> go acc r | None -> acc
  in
  List.rev (go [] t.root)

(* Cold-only: rebuild the tree perfectly balanced, standing in for the
   continuous rebalancing the real algorithm performs. *)
let rebalance t =
  assert (not (Dps_sthread.Sthread.in_sim ()));
  let entries = Array.of_list (to_list t) in
  let root = mk_node t.alloc min_int 0 false in
  let rec build lo hi =
    if lo > hi then None
    else begin
      let mid = (lo + hi) / 2 in
      let k, v = entries.(mid) in
      let n = mk_node t.alloc k v true in
      n.left <- build lo (mid - 1);
      n.right <- build (mid + 1) hi;
      Some n
    end
  in
  root.right <- build 0 (Array.length entries - 1);
  t.root <- root

let check_invariants t =
  let rec go lo hi n =
    if not (n.key >= lo && n.key < hi) then failwith "bst_bronson: key out of range";
    (match n.left with Some l -> go lo n.key l | None -> ());
    match n.right with Some r -> go n.key hi r | None -> ()
  in
  (match t.root.left with Some l -> go min_int t.root.key l | None -> ());
  match t.root.right with Some r -> go t.root.key max_int r | None -> ()

(* Offline maintenance (SET signature): restore the balanced shape the
   real algorithm maintains continuously. *)
let maintenance = rebalance

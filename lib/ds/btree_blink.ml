(* B-link tree (Lehman & Yao [28 in the paper], the classic concurrent
   B+-tree): every node carries a high key and a right-sibling link, so
   readers descend without locks and recover from concurrent splits by
   following the link; writers lock one leaf (and parents bottom-up on
   splits). §3.3 uses B+-trees as the example of a range-optimised
   structure whose common API is still single-value insert/delete — which
   is what makes DPS applicable to it.

   Simplifications kept honest for the simulation: no node merging on
   underflow (deletes clear slots; standard for Lehman-Yao), parent splits
   take the same per-node locks. A node spans ceil(capacity/8) cache
   lines. *)

module Simops = Dps_sthread.Simops
module Alloc = Dps_sthread.Alloc
module Spinlock = Dps_sync.Spinlock

let order = 16 (* max keys per node *)

type node = {
  addr : int;
  lock : Spinlock.t;
  leaf : bool;
  mutable nkeys : int;
  keys : int array;  (* sorted; length order *)
  values : int array;  (* leaves only *)
  children : node option array;  (* internal only; length order + 1 *)
  mutable high : int;  (* exclusive upper bound of this node's range *)
  mutable right : node option;  (* B-link pointer *)
}

type t = {
  alloc : Alloc.t;
  grow_lock : Spinlock.t;  (* serializes root growth only *)
  mutable root : node;
  mutable height : int;
}

let name = "blink"

let node_lines = 1 + (order / 8)

let mk_node alloc ~leaf =
  let addr = Alloc.lines alloc node_lines in
  {
    addr;
    lock = Spinlock.embed ~addr;
    leaf;
    nkeys = 0;
    keys = Array.make order max_int;
    values = Array.make order 0;
    children = Array.make (order + 1) None;
    high = max_int;
    right = None;
  }

let create alloc =
  let leaf = mk_node alloc ~leaf:true in
  { alloc; grow_lock = Spinlock.create alloc; root = leaf; height = 1 }

(* racy by design: Lehman-Yao readers descend without locks and recover
   from concurrent splits via the high key and right link; writers
   re-validate ([chase], range checks) after locking *)
let touch n = Simops.charge_read_racy n.addr

(* index of the first key >= key *)
let lower_bound n key =
  let rec go i = if i < n.nkeys && n.keys.(i) < key then go (i + 1) else i in
  go 0

(* Move right along B-link pointers until [key] is within the node's range. *)
let rec chase n key =
  if key >= n.high then
    match n.right with
    | Some r ->
        touch r;
        chase r key
    | None -> n
  else n

(* Descend to the leaf that covers [key], without locks. *)
let descend t key =
  touch t.root;
  let rec go n =
    let n = chase n key in
    if n.leaf then n
    else begin
      let i = lower_bound n key in
      let i = if i < n.nkeys && n.keys.(i) = key then i + 1 else i in
      match n.children.(i) with
      | Some c ->
          touch c;
          go c
      | None -> n (* malformed only transiently; treated as leaf-level stop *)
    end
  in
  let leaf = go t.root in
  Simops.flush ();
  leaf

let lookup t key =
  let leaf = descend t key in
  let leaf = chase leaf key in
  Simops.flush ();
  let i = lower_bound leaf key in
  if i < leaf.nkeys && leaf.keys.(i) = key then Some leaf.values.(i) else None

(* Insert (key, value/child) into a locked node at position [i]. *)
let insert_slot n i key value child =
  for j = n.nkeys downto i + 1 do
    n.keys.(j) <- n.keys.(j - 1);
    n.values.(j) <- n.values.(j - 1)
  done;
  if not n.leaf then
    for j = n.nkeys + 1 downto i + 2 do
      n.children.(j) <- n.children.(j - 1)
    done;
  n.keys.(i) <- key;
  n.values.(i) <- value;
  if not n.leaf then n.children.(i + 1) <- child;
  n.nkeys <- n.nkeys + 1;
  Simops.write n.addr

(* Split a locked full node; returns (separator, new right node). *)
let split t n =
  let mid = order / 2 in
  let r = mk_node t.alloc ~leaf:n.leaf in
  let sep = n.keys.(mid) in
  if n.leaf then begin
    for j = mid to n.nkeys - 1 do
      r.keys.(j - mid) <- n.keys.(j);
      r.values.(j - mid) <- n.values.(j)
    done;
    r.nkeys <- n.nkeys - mid;
    n.nkeys <- mid
  end
  else begin
    (* separator moves up; right node gets keys after mid *)
    for j = mid + 1 to n.nkeys - 1 do
      r.keys.(j - mid - 1) <- n.keys.(j);
      r.values.(j - mid - 1) <- n.values.(j)
    done;
    for j = mid + 1 to n.nkeys do
      r.children.(j - mid - 1) <- n.children.(j);
      n.children.(j) <- None
    done;
    r.nkeys <- n.nkeys - mid - 1;
    n.nkeys <- mid
  end;
  r.high <- n.high;
  r.right <- n.right;
  n.high <- sep;
  n.right <- Some r;
  (* releasing publish: [r] is reachable (and lockable) the moment the
     right link lands, before this writer releases any lock *)
  Simops.write_release r.addr;
  Simops.write n.addr;
  (sep, r)

(* Find the parent of the node covering [sep] at level [lvl] (root = height). *)
let find_parent t sep lvl =
  let rec go n depth =
    let n = chase n sep in
    if depth = lvl + 1 then n
    else begin
      let i = lower_bound n sep in
      let i = if i < n.nkeys && n.keys.(i) = sep then i + 1 else i in
      match n.children.(i) with
      | Some c ->
          touch c;
          go c (depth - 1)
      | None -> n
    end
  in
  touch t.root;
  let p = go t.root t.height in
  Simops.flush ();
  p

(* Propagate a split upward: insert (sep, right) into the parent at [lvl],
   splitting recursively; grow the tree at the root. *)
let rec complete_split t ~lvl ~sep ~right ~from =
  if lvl >= t.height then begin
    (* split reached the root: grow (serialized; re-check under the lock) *)
    Spinlock.acquire t.grow_lock;
    if lvl >= t.height then begin
      let new_root = mk_node t.alloc ~leaf:false in
      new_root.nkeys <- 1;
      new_root.keys.(0) <- sep;
      new_root.children.(0) <- Some from;
      new_root.children.(1) <- Some right;
      (* releasing publish: the new root is reachable immediately *)
      Simops.write_release new_root.addr;
      t.root <- new_root;
      t.height <- t.height + 1;
      Spinlock.release t.grow_lock
    end
    else begin
      (* a concurrent grow created our level's parent; insert normally *)
      Spinlock.release t.grow_lock;
      complete_split t ~lvl ~sep ~right ~from
    end
  end
  else begin
    let p = find_parent t sep lvl in
    Spinlock.acquire p.lock;
    (* p may have split while we were acquiring; retry if sep moved right *)
    if sep >= p.high then begin
      Spinlock.release p.lock;
      complete_split t ~lvl ~sep ~right ~from
    end
    else begin
      let i = lower_bound p sep in
      insert_slot p i sep 0 (Some right);
      if p.nkeys = order then begin
        let sep', right' = split t p in
        Spinlock.release p.lock;
        complete_split t ~lvl:(lvl + 1) ~sep:sep' ~right:right' ~from:p
      end
      else Spinlock.release p.lock
    end
  end

let rec insert t ~key ~value =
  let leaf = descend t key in
  Spinlock.acquire leaf.lock;
  let leaf' = chase leaf key in
  if leaf' != leaf then begin
    Spinlock.release leaf.lock;
    insert t ~key ~value
  end
  else begin
    let i = lower_bound leaf key in
    if i < leaf.nkeys && leaf.keys.(i) = key then begin
      Spinlock.release leaf.lock;
      false
    end
    else begin
      insert_slot leaf i key value None;
      if leaf.nkeys = order then begin
        let sep, right = split t leaf in
        Spinlock.release leaf.lock;
        complete_split t ~lvl:1 ~sep ~right ~from:leaf
      end
      else Spinlock.release leaf.lock;
      true
    end
  end

let rec remove t key =
  let leaf = descend t key in
  Spinlock.acquire leaf.lock;
  let leaf' = chase leaf key in
  if leaf' != leaf then begin
    Spinlock.release leaf.lock;
    remove t key
  end
  else begin
    let i = lower_bound leaf key in
    if i < leaf.nkeys && leaf.keys.(i) = key then begin
      for j = i to leaf.nkeys - 2 do
        leaf.keys.(j) <- leaf.keys.(j + 1);
        leaf.values.(j) <- leaf.values.(j + 1)
      done;
      leaf.nkeys <- leaf.nkeys - 1;
      leaf.keys.(leaf.nkeys) <- max_int;
      Simops.write leaf.addr;
      Spinlock.release leaf.lock;
      true
    end
    else begin
      Spinlock.release leaf.lock;
      false
    end
  end

(* Leftmost leaf, then walk the leaf level through the B-link pointers. *)
let leftmost t =
  let rec go n = if n.leaf then n else match n.children.(0) with Some c -> go c | None -> n in
  go t.root

let to_list t =
  let out = ref [] in
  let rec walk n =
    for i = n.nkeys - 1 downto 0 do
      out := (n.keys.(i), n.values.(i)) :: !out
    done;
    match n.right with Some r -> walk_right r | None -> ()
  and walk_right n =
    for i = n.nkeys - 1 downto 0 do
      out := (n.keys.(i), n.values.(i)) :: !out
    done;
    match n.right with Some r -> walk_right r | None -> ()
  in
  walk (leftmost t);
  List.sort compare !out

let check_invariants t =
  (* leaf chain sorted and within high-key bounds; internal routing sane *)
  let rec chain n prev =
    for i = 0 to n.nkeys - 1 do
      if n.keys.(i) <= !prev then failwith "blink: leaf keys not increasing";
      if n.keys.(i) >= n.high then failwith "blink: key above high key";
      prev := n.keys.(i)
    done;
    match n.right with Some r -> chain r prev | None -> ()
  in
  chain (leftmost t) (ref min_int);
  let rec depth_check n =
    if n.leaf then 1
    else begin
      let d = ref 0 in
      for i = 0 to n.nkeys do
        match n.children.(i) with
        | Some c ->
            let dc = depth_check c in
            if !d = 0 then d := dc
            else if !d <> dc then failwith "blink: uneven depth"
        | None -> ()
      done;
      !d + 1
    end
  in
  ignore (depth_check t.root)

let maintenance _ = ()

(** Sorted linked list protected by the {!Rlu} runtime — the paper's [rlu]
    list. Reads traverse inside an RLU read section with no shared stores;
    updates try-lock the affected nodes (aborting and retrying on conflict,
    as rlu_abort does) and pay a full grace period before returning. *)

module Simops = Dps_sthread.Simops
module Alloc = Dps_sthread.Alloc
module Spinlock = Dps_sync.Spinlock

type node = {
  key : int;
  mutable value : int;
  addr : int;
  lock : Spinlock.t;
  mutable removed : bool;
  mutable next : node option;
}

type t = { alloc : Alloc.t; rlu : Rlu.t; head : node }

let name = "rlu"

let mk_node alloc key value next =
  let addr = Alloc.line alloc in
  { key; value; addr; lock = Spinlock.embed ~addr; removed = false; next }

let create alloc =
  let tail = mk_node alloc max_int 0 None in
  { alloc; rlu = Rlu.create alloc; head = mk_node alloc min_int 0 (Some tail) }

let search t key =
  (* racy by design: RLU read sections run concurrently with writers (the
     grace period, not ordering, protects readers); updaters re-validate
     after try-locking *)
  Simops.charge_read_racy t.head.addr;
  let rec go pred =
    let curr = Option.get pred.next in
    Simops.charge_read_racy curr.addr;
    if curr.key >= key then (pred, curr) else go curr
  in
  let r = go t.head in
  Simops.flush ();
  r

let lookup t key =
  Rlu.reader_lock t.rlu;
  let _, curr = search t key in
  let r = if curr.key = key && not curr.removed then Some curr.value else None in
  Rlu.reader_unlock t.rlu;
  r

let rec insert t ~key ~value =
  Rlu.reader_lock t.rlu;
  let pred, curr = search t key in
  if curr.key = key then begin
    Rlu.reader_unlock t.rlu;
    false
  end
  else if not (Spinlock.try_acquire pred.lock) then begin
    (* rlu_abort: end the section and retry *)
    Rlu.reader_unlock t.rlu;
    Simops.work 64;
    insert t ~key ~value
  end
  else if pred.removed || not (match pred.next with Some c -> c == curr | None -> false) then begin
    Spinlock.release pred.lock;
    Rlu.reader_unlock t.rlu;
    insert t ~key ~value
  end
  else begin
    let n = mk_node t.alloc key value (Some curr) in
    (* releasing init publish: [n] is try-lockable as a predecessor the
       moment the link lands, before this writer releases [pred.lock] *)
    Simops.write_release n.addr;
    pred.next <- Some n;
    Simops.write pred.addr;
    Rlu.writer_end_and_synchronize t.rlu;
    Spinlock.release pred.lock;
    true
  end

let rec remove t key =
  Rlu.reader_lock t.rlu;
  let pred, curr = search t key in
  if curr.key <> key || curr.removed then begin
    Rlu.reader_unlock t.rlu;
    false
  end
  else if not (Spinlock.try_acquire pred.lock) then begin
    Rlu.reader_unlock t.rlu;
    Simops.work 64;
    remove t key
  end
  else if not (Spinlock.try_acquire curr.lock) then begin
    Spinlock.release pred.lock;
    Rlu.reader_unlock t.rlu;
    Simops.work 64;
    remove t key
  end
  else if
    pred.removed || curr.removed
    || not (match pred.next with Some c -> c == curr | None -> false)
  then begin
    Spinlock.release curr.lock;
    Spinlock.release pred.lock;
    Rlu.reader_unlock t.rlu;
    remove t key
  end
  else begin
    curr.removed <- true;
    Simops.write curr.addr;
    pred.next <- curr.next;
    Simops.write pred.addr;
    (* grace period before the node may be reclaimed *)
    Rlu.writer_end_and_synchronize t.rlu;
    Spinlock.release curr.lock;
    Spinlock.release pred.lock;
    true
  end

let to_list t =
  let rec go acc n =
    match n.next with
    | None -> List.rev acc
    | Some c -> if c.key = max_int then List.rev acc else go ((c.key, c.value) :: acc) c
  in
  go [] t.head

let check_invariants t =
  let rec go prev n =
    match n.next with
    | None -> if n.key <> max_int then failwith "rlu_list: missing tail sentinel"
    | Some c ->
        if c.key <= prev then failwith "rlu_list: keys not strictly increasing";
        if c.removed then failwith "rlu_list: reachable removed node";
        go c.key c
  in
  go min_int t.head

(* Offline maintenance hook (SET signature); nothing to do here. *)
let maintenance _ = ()

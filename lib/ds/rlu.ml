(** Read-Log-Update runtime (Matveev et al., SOSP'15) — simplified to the
    level documented in DESIGN.md, keeping the cost profile the paper's
    comparison rests on: read sections are store-free on shared data (one
    global-clock read plus writes to the thread's own slot line), while
    writers bump the global clock and *block* in [synchronize] until every
    reader that started under the old clock has finished — the "blocked
    quiescence detection in rlu_synchronize" the paper blames for RLU's
    poor update scaling. Object copies are elided: OCaml's GC already makes
    deferred reclamation safe, so unlink-then-quiesce preserves reader
    safety exactly as RLU's log write-back does. *)

module Simops = Dps_sthread.Simops
module Alloc = Dps_sthread.Alloc
module Sthread = Dps_sthread.Sthread

type slot = { saddr : int; mutable active : bool; mutable local_clock : int }

type t = {
  alloc : Alloc.t;
  gaddr : int;
  mutable gclock : int;
  slots : (int, slot) Hashtbl.t;  (* logical tid -> slot *)
  mutable slot_list : slot list;
}

let create alloc =
  { alloc; gaddr = Alloc.line alloc; gclock = 0; slots = Hashtbl.create 128; slot_list = [] }

let my_slot t =
  let tid = if Sthread.in_sim () then Sthread.self_id () else -1 in
  match Hashtbl.find_opt t.slots tid with
  | Some s -> s
  | None ->
      let s = { saddr = Alloc.line t.alloc; active = false; local_clock = 0 } in
      Hashtbl.add t.slots tid s;
      t.slot_list <- s :: t.slot_list;
      s

let reader_lock t =
  let s = my_slot t in
  Simops.read t.gaddr;
  s.local_clock <- t.gclock;
  s.active <- true;
  (* releasing publish: [synchronize]'s quiescence poll reads this slot *)
  Simops.write_release s.saddr

let reader_unlock t =
  let s = my_slot t in
  s.active <- false;
  (* releasing publish: the grace-period waiter takes its HB edge from here *)
  Simops.write_release s.saddr

(** Writer-side grace period: advance the clock and wait until no reader is
    still running under the old clock. The caller must have ended its own
    read section (see {!writer_end}). *)
let synchronize t =
  Simops.rmw t.gaddr;
  t.gclock <- t.gclock + 1;
  let target = t.gclock in
  List.iter
    (fun s ->
      let b = Dps_sync.Backoff.create ~initial:32 ~cap:4096 () in
      let rec wait () =
        Simops.read s.saddr;
        if s.active && s.local_clock < target then begin
          Dps_sync.Backoff.once b;
          wait ()
        end
      in
      wait ())
    t.slot_list

(** End the calling writer's read section *before* quiescing, so two
    concurrent writers never wait on each other's sections. *)
let writer_end_and_synchronize t =
  reader_unlock t;
  synchronize t

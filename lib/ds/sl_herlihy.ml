(** Lazy lock-based skip list (Herlihy, Lev, Luchangco & Shavit,
    SIROCCO'07) — the paper's [lb-h]. Wait-free unsynchronized search;
    updates lock the predecessors at every affected level (in descending
    key order, which makes lock acquisition deadlock-free), validate, then
    link or unlink. *)

module Simops = Dps_sthread.Simops
module Alloc = Dps_sthread.Alloc
module Prng = Dps_simcore.Prng
module Sthread = Dps_sthread.Sthread
module Spinlock = Dps_sync.Spinlock

let max_level = 16

type node = {
  key : int;
  mutable value : int;
  addr : int;
  level : int;
  lock : Spinlock.t;
  mutable marked : bool;
  mutable fully_linked : bool;
  next : node option array;
}

type t = { alloc : Alloc.t; head : node; tail : node; cold_prng : Prng.t }

let name = "lb-h"

let mk_node alloc key value level =
  let addr = Alloc.line alloc in
  {
    key;
    value;
    addr;
    level;
    lock = Spinlock.embed ~addr;
    marked = false;
    fully_linked = false;
    next = Array.make level None;
  }

let create alloc =
  let tail = mk_node alloc max_int 0 max_level in
  let head = mk_node alloc min_int 0 max_level in
  Array.fill head.next 0 max_level (Some tail);
  head.fully_linked <- true;
  tail.fully_linked <- true;
  { alloc; head; tail; cold_prng = Prng.create 0x5EEDL }

let random_level t =
  let p = if Sthread.in_sim () then Sthread.self_prng () else t.cold_prng in
  let rec go l = if l < max_level && Prng.bool p then go (l + 1) else l in
  go 1

(* Wait-free search; returns the level where the key was found (-1 if not)
   and fills preds/succs. *)
let find t key preds succs =
  (* racy by design: wait-free search; updaters re-validate under locks *)
  Simops.charge_read_racy t.head.addr;
  let lfound = ref (-1) in
  let pred = ref t.head in
  for lvl = max_level - 1 downto 0 do
    let continue_level = ref true in
    while !continue_level do
      let curr = Option.get !pred.next.(lvl) in
      Simops.charge_read_racy curr.addr;
      if curr.key < key then pred := curr
      else begin
        if !lfound = -1 && curr.key = key then lfound := lvl;
        preds.(lvl) <- !pred;
        succs.(lvl) <- curr;
        continue_level := false
      end
    done
  done;
  Simops.flush ();
  !lfound

(* Lock preds.(0..level-1) bottom-up, skipping duplicates (identical preds
   are contiguous across levels). *)
let lock_preds preds level =
  let prev = ref None in
  for lvl = 0 to level - 1 do
    let p = preds.(lvl) in
    let dup = match !prev with Some q -> q == p | None -> false in
    if not dup then Spinlock.acquire p.lock;
    prev := Some p
  done

let unlock_preds preds level =
  let prev = ref None in
  for lvl = 0 to level - 1 do
    let p = preds.(lvl) in
    let dup = match !prev with Some q -> q == p | None -> false in
    if not dup then Spinlock.release p.lock;
    prev := Some p
  done

let rec insert t ~key ~value =
  let preds = Array.make max_level t.head and succs = Array.make max_level t.tail in
  let lfound = find t key preds succs in
  if lfound <> -1 then begin
    let found = succs.(lfound) in
    if not found.marked then begin
      (* wait for the concurrent inserter to finish linking; racy by
         design — the inserter's releasing fully_linked publish is the
         only thing being awaited *)
      while not found.fully_linked do
        Simops.read_racy found.addr
      done;
      false
    end
    else insert t ~key ~value
  end
  else begin
    let level = random_level t in
    lock_preds preds level;
    let valid = ref true in
    for lvl = 0 to level - 1 do
      let p = preds.(lvl) and s = succs.(lvl) in
      let linked = match p.next.(lvl) with Some c -> c == s | None -> false in
      if p.marked || s.marked || not linked then valid := false
    done;
    if not !valid then begin
      unlock_preds preds level;
      insert t ~key ~value
    end
    else begin
      let n = mk_node t.alloc key value level in
      for lvl = 0 to level - 1 do
        n.next.(lvl) <- Some succs.(lvl)
      done;
      (* releasing init publish: once the bottom link lands, other threads
         may lock [n] as a predecessor and write its line — their lock
         acquisition (an atomic on [n.addr]) must be ordered after this *)
      Simops.write_release n.addr;
      for lvl = 0 to level - 1 do
        preds.(lvl).next.(lvl) <- Some n;
        Simops.write preds.(lvl).addr
      done;
      (* fully_linked is set without holding [n]'s lock, exactly as the
         original's volatile fullyLinked field; model it as an atomic
         update so it coexists with lock-holders' writes to the line *)
      Simops.rmw n.addr;
      n.fully_linked <- true;
      unlock_preds preds level;
      true
    end
  end

let remove t key =
  let preds = Array.make max_level t.head and succs = Array.make max_level t.tail in
  let victim = ref None in
  let is_marked = ref false in
  let top_level = ref (-1) in
  let result = ref None in
  while !result = None do
    let lfound = find t key preds succs in
    let candidate =
      if lfound <> -1 then Some succs.(lfound) else None
    in
    let ok =
      !is_marked
      ||
      match candidate with
      | Some v -> v.fully_linked && v.level - 1 = lfound && not v.marked
      | None -> false
    in
    if not ok then result := Some false
    else begin
      (match candidate with Some v when not !is_marked -> victim := Some v | _ -> ());
      let v = Option.get !victim in
      if not !is_marked then begin
        top_level := v.level;
        Spinlock.acquire v.lock;
        if v.marked then begin
          Spinlock.release v.lock;
          result := Some false
        end
        else begin
          v.marked <- true;
          Simops.write v.addr;
          is_marked := true
        end
      end;
      if !result = None then begin
        lock_preds preds !top_level;
        let valid = ref true in
        for lvl = 0 to !top_level - 1 do
          let p = preds.(lvl) in
          let linked = match p.next.(lvl) with Some c -> c == v | None -> false in
          if p.marked || not linked then valid := false
        done;
        if !valid then begin
          for lvl = !top_level - 1 downto 0 do
            preds.(lvl).next.(lvl) <- v.next.(lvl);
            Simops.write preds.(lvl).addr
          done;
          Spinlock.release v.lock;
          unlock_preds preds !top_level;
          result := Some true
        end
        else unlock_preds preds !top_level
        (* keep victim locked and retry the unlink *)
      end
    end
  done;
  Option.get !result

let lookup t key =
  let preds = Array.make max_level t.head and succs = Array.make max_level t.tail in
  let lfound = find t key preds succs in
  if lfound = -1 then None
  else
    let n = succs.(lfound) in
    if n.fully_linked && not n.marked then Some n.value else None

let to_list t =
  let rec go acc n =
    match n.next.(0) with
    | None -> List.rev acc
    | Some c ->
        if c.key = max_int then List.rev acc
        else go (if c.marked || not c.fully_linked then acc else (c.key, c.value) :: acc) c
  in
  go [] t.head

let check_invariants t =
  for lvl = 0 to max_level - 1 do
    let rec go prev n =
      match n.next.(lvl) with
      | None -> ()
      | Some c ->
          if c != t.tail then begin
            if c.key <= prev then failwith (Printf.sprintf "sl_herlihy: level %d unsorted" lvl);
            if c.marked then failwith "sl_herlihy: reachable marked node at quiescence";
            if not c.fully_linked then failwith "sl_herlihy: reachable half-linked node";
            go c.key c
          end
    in
    go min_int t.head
  done

(* Offline maintenance hook (SET signature); nothing to do here. *)
let maintenance _ = ()

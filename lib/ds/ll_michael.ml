(** Michael's lock-free linked list (SPAA'02) — the paper's [lf-m].

    The published algorithm packs a mark bit into each node's next pointer;
    here the pair (next, marked) lives in the node record and every compare
    and swap on it is a charged atomic on the node's cache line, with the
    comparison and mutation performed at a single scheduling point. Searches
    physically unlink marked nodes they encounter, as in the original. *)

module Simops = Dps_sthread.Simops
module Alloc = Dps_sthread.Alloc

type node = {
  key : int;
  mutable value : int;
  addr : int;
  mutable marked : bool;
  mutable next : node option;
}

type t = { alloc : Alloc.t; head : node }

let name = "lf-m"

let mk_node alloc key value next =
  { key; value; addr = Alloc.line alloc; marked = false; next }

let create alloc =
  let tail = mk_node alloc max_int 0 None in
  { alloc; head = mk_node alloc min_int 0 (Some tail) }

(* Test-only mutation (lib/check self-test): when set, a failed insert CAS
   gives up instead of retrying, silently dropping the insert. *)
let failpoint_drop_cas_retry = ref false

(* CAS of [n]'s (next, marked) pair. [expect] is the node [n.next] is
   expected to point at (nodes are unique, options are compared unwrapped). *)
let cas_next n ~expect ~expect_marked ~next ~marked =
  Simops.rmw n.addr;
  let next_matches = match n.next with Some c -> c == expect | None -> false in
  if next_matches && n.marked = expect_marked then begin
    n.next <- next;
    n.marked <- marked;
    true
  end
  else false

exception Restart

(* Find (pred, curr) with pred.key < key <= curr.key, unlinking any marked
   nodes seen on the way. Restarts if an unlink CAS fails. *)
let rec search t key =
  try
    Simops.charge_read t.head.addr;
    let rec go pred =
      let curr = Option.get pred.next in
      Simops.charge_read curr.addr;
      if curr.marked then begin
        Simops.flush ();
        (* help unlink; pred must still be unmarked and point at curr *)
        if not (cas_next pred ~expect:curr ~expect_marked:false ~next:curr.next ~marked:false)
        then raise Restart;
        go pred
      end
      else if curr.key >= key then (pred, curr)
      else go curr
    in
    let r = go t.head in
    Simops.flush ();
    r
  with Restart -> search t key

let rec insert t ~key ~value =
  let pred, curr = search t key in
  if curr.key = key then false
  else begin
    let n = mk_node t.alloc key value (Some curr) in
    Simops.write n.addr;
    if cas_next pred ~expect:curr ~expect_marked:false ~next:(Some n) ~marked:false then true
    else if !failpoint_drop_cas_retry then false
    else insert t ~key ~value
  end

let rec remove t key =
  let _, curr = search t key in
  if curr.key <> key then false
  else begin
    (* logical delete: mark curr (linearization point) *)
    let succ = Option.get curr.next (* never tail, so a successor exists *) in
    if cas_next curr ~expect:succ ~expect_marked:false ~next:(Some succ) ~marked:true then begin
      (* physical unlink is best-effort; searches will finish the job *)
      ignore (search t key);
      true
    end
    else remove t key
  end

(* Wait-free in the original sense: a plain traversal with a final check. *)
let lookup t key =
  Simops.charge_read t.head.addr;
  let rec go n =
    let curr = Option.get n.next in
    Simops.charge_read curr.addr;
    if curr.key >= key then curr else go curr
  in
  let curr = go t.head in
  Simops.flush ();
  if curr.key = key && not curr.marked then Some curr.value else None

let to_list t =
  let rec go acc n =
    match n.next with
    | None -> List.rev acc
    | Some c ->
        if c.key = max_int then List.rev acc
        else go (if c.marked then acc else (c.key, c.value) :: acc) c
  in
  go [] t.head

let check_invariants t =
  let rec go prev n =
    match n.next with
    | None -> if n.key <> max_int then failwith "ll_michael: missing tail sentinel"
    | Some c ->
        if c.key <= prev then failwith "ll_michael: keys not strictly increasing";
        go c.key c
  in
  go min_int t.head

(* Offline maintenance hook (SET signature); nothing to do here. *)
let maintenance _ = ()

(** BST-TK-style external binary search tree (David, Guerraoui & Trigonakis,
    ASPLOS'15) — lock-based, with ticket locks on internal nodes.

    The tree is external: values live only in leaves; internal nodes route.
    Lookups are store-free traversals. Updates lock the affected internal
    node(s) and re-validate the links before mutating. This is also the
    structure DPS uses inside each locality for the bst experiments. *)

module Simops = Dps_sthread.Simops
module Alloc = Dps_sthread.Alloc
module Ticket = Dps_sync.Ticket

type tree = Leaf of leaf | Node of internal
and leaf = { lkey : int; mutable lvalue : int; laddr : int }

and internal = {
  key : int;
  addr : int;
  lock : Ticket.t;
  mutable removed : bool;
  mutable left : tree;
  mutable right : tree;
}

type t = { alloc : Alloc.t; super : internal }

let name = "bst-tk"

let mk_leaf alloc k v = { lkey = k; lvalue = v; laddr = Alloc.line alloc }

let mk_internal alloc key left right =
  let addr = Alloc.line alloc in
  { key; addr; lock = Ticket.embed ~addr; removed = false; left; right }

(* Super-root guarantees every real leaf has both a parent and a
   grandparent. Real keys are strictly below [max_int - 1]. *)
let create alloc =
  let l_min = Leaf (mk_leaf alloc min_int 0) in
  let l_inf = Leaf (mk_leaf alloc (max_int - 1) 0) in
  let root = mk_internal alloc (max_int - 1) l_min l_inf in
  { alloc; super = mk_internal alloc max_int (Node root) (Leaf (mk_leaf alloc max_int 0)) }

(* Route: key < node.key goes left. Returns (grandparent, parent, leaf). *)
let search t key =
  (* racy by design: store-free traversal; updaters re-validate the links
     under the node ticket locks before mutating *)
  Simops.charge_read_racy t.super.addr;
  let rec go gp p cur =
    match cur with
    | Leaf l ->
        Simops.charge_read_racy l.laddr;
        Simops.flush ();
        (gp, p, l)
    | Node n ->
        Simops.charge_read_racy n.addr;
        go p n (if key < n.key then n.left else n.right)
  in
  go t.super t.super t.super.left

let child_is p l = match (p.left, p.right) with
  | Leaf l', _ when l' == l -> true
  | _, Leaf l' when l' == l -> true
  | _ -> false

let replace_child p ~old_ ~new_ =
  match p.left with
  | Leaf l when l == old_ -> p.left <- new_
  | _ -> (
      match p.right with
      | Leaf l when l == old_ -> p.right <- new_
      | _ -> assert false)

let node_is p n = (match p.left with Node n' -> n' == n | Leaf _ -> false)
  || (match p.right with Node n' -> n' == n | Leaf _ -> false)

let rec insert t ~key ~value =
  let _, p, l = search t key in
  if l.lkey = key then false
  else begin
    Ticket.acquire p.lock;
    if p.removed || not (child_is p l) then begin
      Ticket.release p.lock;
      insert t ~key ~value
    end
    else begin
      let nl = mk_leaf t.alloc key value in
      Simops.write nl.laddr;
      let ni =
        if key < l.lkey then mk_internal t.alloc l.lkey (Leaf nl) (Leaf l)
        else mk_internal t.alloc key (Leaf l) (Leaf nl)
      in
      (* releasing init publish: [ni] is lockable as a parent the moment
         the link lands, before this writer releases [p.lock] *)
      Simops.write_release ni.addr;
      replace_child p ~old_:l ~new_:(Node ni);
      Simops.write p.addr;
      Ticket.release p.lock;
      true
    end
  end

let rec remove t key =
  let gp, p, l = search t key in
  if l.lkey <> key then false
  else begin
    Ticket.acquire gp.lock;
    Ticket.acquire p.lock;
    let valid = (not gp.removed) && (not p.removed) && node_is gp p && child_is p l in
    if not valid then begin
      Ticket.release p.lock;
      Ticket.release gp.lock;
      remove t key
    end
    else begin
      let sibling = match p.left with Leaf l' when l' == l -> p.right | _ -> p.left in
      p.removed <- true;
      Simops.write p.addr;
      (match gp.left with
      | Node n when n == p -> gp.left <- sibling
      | _ -> gp.right <- sibling);
      Simops.write gp.addr;
      Ticket.release p.lock;
      Ticket.release gp.lock;
      true
    end
  end

let lookup t key =
  let _, _, l = search t key in
  if l.lkey = key then Some l.lvalue else None

let sentinel k = k = min_int || k >= max_int - 1

let to_list t =
  let rec go acc = function
    | Leaf l -> if sentinel l.lkey then acc else (l.lkey, l.lvalue) :: acc
    | Node n -> go (go acc n.right) n.left
  in
  go [] (Node t.super)

let check_invariants t =
  (* External-tree ordering: every leaf under an internal respects routing. *)
  let rec go lo hi = function
    | Leaf l ->
        if not (sentinel l.lkey) && not (l.lkey >= lo && l.lkey < hi) then
          failwith "bst_tk: leaf out of routing range"
    | Node n ->
        if n.removed then failwith "bst_tk: reachable removed internal";
        go lo n.key n.left;
        go n.key hi n.right
  in
  go min_int max_int t.super.left

(* Offline maintenance hook (SET signature); nothing to do here. *)
let maintenance _ = ()

(** Non-blocking external binary search tree in the style of Ellen, Fatourou,
    Ruppert & van Breugel (PODC'10). Reproduction stand-in for the paper's
    [lf-n] (Natarajan & Mittal), which is an edge-based refinement of the
    same design: an external tree whose updates coordinate through
    flag/mark descriptors CAS'd into the internal nodes, with helping.

    Update words are fresh records per transition, so physical equality of
    the record doubles as the modification stamp the original uses to avoid
    ABA. *)

module Simops = Dps_sthread.Simops
module Alloc = Dps_sthread.Alloc

(* The [stamp] makes every update record a distinct heap block: an
   immutable constant like a bare Clean would be shared by the compiler,
   re-introducing exactly the ABA the original algorithm's modification
   stamps prevent. *)
type update = { state : state; stamp : int }

and state =
  | Clean
  | IFlag of iinfo
  | DFlag of dinfo
  | Mark of dinfo

and iinfo = { ip : internal; il : leaf; inew : internal }
and dinfo = { dgp : internal; dp : internal; dl : leaf; dpupdate : update }
and tree = Leaf of leaf | Node of internal
and leaf = { lkey : int; mutable lvalue : int; laddr : int }

and internal = {
  key : int;
  addr : int;
  mutable upd : update;
  mutable left : tree;
  mutable right : tree;
}

type t = { alloc : Alloc.t; root : internal }

let name = "lf-n"

(* Sentinels: inf2 = max_int, inf1 = max_int - 1; real keys < inf1. *)
let inf1 = max_int - 1
let inf2 = max_int

let mk_leaf alloc k v = { lkey = k; lvalue = v; laddr = Alloc.line alloc }

(* The stamp only defeats static sharing of constant records — update
   descriptors are compared by physical identity, never by stamp value —
   so it needs freshness, not global uniqueness. Domain-local state keeps
   concurrent experiment points (one simulation per domain) from racing on
   a shared counter; records from different simulations never meet. *)
let stamp_counter_key = Domain.DLS.new_key (fun () -> ref 0)

let mk_update state =
  let c = Domain.DLS.get stamp_counter_key in
  incr c;
  { state; stamp = !c }

let mk_internal alloc key left right =
  { key; addr = Alloc.line alloc; upd = mk_update Clean; left; right }

(* Root (key inf2) with sentinel leaves inf1/inf2: the first real insert
   replaces the inf1 leaf, so real leaves always sit at depth >= 2 and a
   delete always finds a grandparent. *)
let create alloc =
  {
    alloc;
    root = mk_internal alloc inf2 (Leaf (mk_leaf alloc inf1 0)) (Leaf (mk_leaf alloc inf2 0));
  }

(* All CASes: one charged atomic on the owner's line; the compare and the
   mutation happen together at the resume point. *)
let cas_upd n ~expect ~state' =
  Simops.rmw n.addr;
  if n.upd == expect then begin
    n.upd <- mk_update state';
    true
  end
  else false

(* Trees are compared by the identity of the leaf/internal record they wrap
   (never by the option-like constructor block, which is fresh per use). *)
let tree_is a b =
  match (a, b) with
  | Leaf x, Leaf y -> x == y
  | Node x, Node y -> x == y
  | Leaf _, Node _ | Node _, Leaf _ -> false

let cas_child p ~old_ ~new_ =
  Simops.rmw p.addr;
  if tree_is p.left old_ then begin
    p.left <- new_;
    true
  end
  else if tree_is p.right old_ then begin
    p.right <- new_;
    true
  end
  else false

type found = {
  gp : internal option;
  gpupd : update;
  p : internal;
  pupd : update;
  l : leaf;
}

let search t key =
  Simops.charge_read t.root.addr;
  let rec go gp gpupd p pupd cur =
    match cur with
    | Leaf l ->
        Simops.charge_read l.laddr;
        Simops.flush ();
        { gp; gpupd; p; pupd; l }
    | Node n ->
        Simops.charge_read n.addr;
        let u = n.upd in
        go (Some p) pupd n u (if key < n.key then n.left else n.right)
  in
  go None t.root.upd t.root t.root.upd (if key < t.root.key then t.root.left else t.root.right)

let help_insert op =
  ignore (cas_child op.ip ~old_:(Leaf op.il) ~new_:(Node op.inew));
  (* unflag *)
  Simops.rmw op.ip.addr;
  (match op.ip.upd.state with
  | IFlag op' when op' == op -> op.ip.upd <- mk_update Clean
  | Clean | IFlag _ | DFlag _ | Mark _ -> ())

let help_marked op =
  let other =
    match op.dp.left with Leaf l when l == op.dl -> op.dp.right | _ -> op.dp.left
  in
  ignore (cas_child op.dgp ~old_:(Node op.dp) ~new_:other);
  Simops.rmw op.dgp.addr;
  match op.dgp.upd.state with
  | DFlag op' when op' == op -> op.dgp.upd <- mk_update Clean
  | Clean | IFlag _ | DFlag _ | Mark _ -> ()

let help_delete op =
  if cas_upd op.dp ~expect:op.dpupdate ~state':(Mark op) then begin
    help_marked op;
    true
  end
  else begin
    Simops.read op.dp.addr;
    match op.dp.upd.state with
    | Mark op' when op' == op ->
        help_marked op;
        true
    | Clean | IFlag _ | DFlag _ | Mark _ ->
        (* backtrack: unflag the grandparent *)
        Simops.rmw op.dgp.addr;
        (match op.dgp.upd.state with
        | DFlag op' when op' == op -> op.dgp.upd <- mk_update Clean
        | Clean | IFlag _ | DFlag _ | Mark _ -> ());
        false
  end

let help u =
  match u.state with
  | IFlag op -> help_insert op
  | Mark op -> help_marked op
  | DFlag op -> ignore (help_delete op)
  | Clean -> ()

let rec insert t ~key ~value =
  let s = search t key in
  if s.l.lkey = key then false
  else if s.pupd.state <> Clean then begin
    help s.pupd;
    insert t ~key ~value
  end
  else begin
    let nl = mk_leaf t.alloc key value in
    Simops.write nl.laddr;
    let ni =
      if key < s.l.lkey then mk_internal t.alloc s.l.lkey (Leaf nl) (Leaf s.l)
      else mk_internal t.alloc key (Leaf s.l) (Leaf nl)
    in
    Simops.write ni.addr;
    let op = { ip = s.p; il = s.l; inew = ni } in
    if cas_upd s.p ~expect:s.pupd ~state':(IFlag op) then begin
      help_insert op;
      true
    end
    else begin
      Simops.read s.p.addr;
      help s.p.upd;
      insert t ~key ~value
    end
  end

let rec remove t key =
  let s = search t key in
  if s.l.lkey <> key then false
  else begin
    let gp = match s.gp with Some gp -> gp | None -> failwith "bst_ellen: delete at root" in
    if s.gpupd.state <> Clean then begin
      help s.gpupd;
      remove t key
    end
    else if s.pupd.state <> Clean then begin
      help s.pupd;
      remove t key
    end
    else begin
      let op = { dgp = gp; dp = s.p; dl = s.l; dpupdate = s.pupd } in
      if cas_upd gp ~expect:s.gpupd ~state':(DFlag op) then begin
        if help_delete op then true else remove t key
      end
      else begin
        Simops.read gp.addr;
        help gp.upd;
        remove t key
      end
    end
  end

let lookup t key =
  let s = search t key in
  if s.l.lkey = key then Some s.l.lvalue else None

let sentinel k = k >= inf1

let to_list t =
  let rec go acc = function
    | Leaf l -> if sentinel l.lkey then acc else (l.lkey, l.lvalue) :: acc
    | Node n -> go (go acc n.right) n.left
  in
  go [] (Node t.root)

let check_invariants t =
  let rec go lo hi = function
    | Leaf l ->
        if not (sentinel l.lkey) && not (l.lkey >= lo && l.lkey < hi) then
          failwith "bst_ellen: leaf out of routing range"
    | Node n ->
        (match n.upd.state with
        | Clean -> ()
        | IFlag _ | DFlag _ | Mark _ -> failwith "bst_ellen: pending operation at quiescence");
        go lo n.key n.left;
        go n.key hi n.right
  in
  go min_int max_int (Node t.root)

(* Offline maintenance hook (SET signature); nothing to do here. *)
let maintenance _ = ()

(** Lazy concurrent list-based set (Heller et al., OPODIS'05) — the paper's
    [lb-l]. Wait-free unsynchronized traversal, per-node spinlocks embedded
    in the node's cache line, logical marking before physical unlink,
    post-lock validation. *)

module Simops = Dps_sthread.Simops
module Alloc = Dps_sthread.Alloc
module Spinlock = Dps_sync.Spinlock

type node = {
  key : int;
  mutable value : int;
  addr : int;
  lock : Spinlock.t;
  mutable marked : bool;
  mutable next : node option;
}

type t = { alloc : Alloc.t; head : node }

let name = "lb-l"

let mk_node alloc key value next =
  let addr = Alloc.line alloc in
  { key; value; addr; lock = Spinlock.embed ~addr; marked = false; next }

let create alloc =
  let tail = mk_node alloc max_int 0 None in
  { alloc; head = mk_node alloc min_int 0 (Some tail) }

(* Unsynchronized traversal: returns (pred, curr) with
   pred.key < key <= curr.key. Both may be stale; callers validate. *)
let search t key =
  Simops.charge_read_racy t.head.addr;
  let rec go pred =
    let curr = Option.get pred.next in
    Simops.charge_read_racy curr.addr;
    if curr.key >= key then (pred, curr) else go curr
  in
  go t.head

let points_to pred curr = match pred.next with Some c -> c == curr | None -> false

let validate pred curr = (not pred.marked) && (not curr.marked) && points_to pred curr

let rec insert t ~key ~value =
  let pred, curr = search t key in
  Simops.flush ();
  Spinlock.acquire pred.lock;
  Spinlock.acquire curr.lock;
  if validate pred curr then begin
    let result =
      if curr.key = key then false
      else begin
        let n = mk_node t.alloc key value (Some curr) in
        (* releasing init publish: [n] is lockable as a predecessor the
           moment the link lands, before this writer releases its locks *)
        Simops.write_release n.addr;
        pred.next <- Some n;
        Simops.write pred.addr;
        true
      end
    in
    Spinlock.release curr.lock;
    Spinlock.release pred.lock;
    result
  end
  else begin
    Spinlock.release curr.lock;
    Spinlock.release pred.lock;
    insert t ~key ~value
  end

let rec remove t key =
  let pred, curr = search t key in
  Simops.flush ();
  if curr.key <> key then false
  else begin
    Spinlock.acquire pred.lock;
    Spinlock.acquire curr.lock;
    if validate pred curr then begin
      let result =
        if curr.key <> key then false
        else begin
          curr.marked <- true;
          Simops.write curr.addr;
          pred.next <- curr.next;
          Simops.write pred.addr;
          true
        end
      in
      Spinlock.release curr.lock;
      Spinlock.release pred.lock;
      result
    end
    else begin
      Spinlock.release curr.lock;
      Spinlock.release pred.lock;
      remove t key
    end
  end

(* Wait-free: no locks, no retries. *)
let lookup t key =
  let _, curr = search t key in
  Simops.flush ();
  if curr.key = key && not curr.marked then Some curr.value else None

let to_list t =
  let rec go acc n =
    match n.next with
    | None -> List.rev acc
    | Some c -> if c.key = max_int then List.rev acc else go ((c.key, c.value) :: acc) c
  in
  go [] t.head

let check_invariants t =
  let rec go prev n =
    match n.next with
    | None -> if n.key <> max_int then failwith "ll_lazy: missing tail sentinel"
    | Some c ->
        if c.key <= prev then failwith "ll_lazy: keys not strictly increasing";
        if c.marked then failwith "ll_lazy: reachable marked node";
        go c.key c
  in
  go min_int t.head

(* Offline maintenance hook (SET signature); nothing to do here. *)
let maintenance _ = ()

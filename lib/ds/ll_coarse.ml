(** Sorted singly-linked list under one global MCS lock — the paper's [gl-m]
    baseline. The simplest possible implementation: every operation holds
    the lock for its whole traversal. *)

module Simops = Dps_sthread.Simops
module Alloc = Dps_sthread.Alloc
module Mcs = Dps_sync.Mcs

type node = { key : int; mutable value : int; addr : int; mutable next : node option }

type t = { alloc : Alloc.t; lock : Mcs.t; head : node }

let name = "gl-m"

let create alloc =
  {
    alloc;
    lock = Mcs.create alloc;
    head = { key = min_int; value = 0; addr = Alloc.line alloc; next = None };
  }

(* Walk to the first node with key >= [key]; charges one read per hop. *)
let search t key =
  Simops.charge_read t.head.addr;
  let rec go pred =
    match pred.next with
    | None -> (pred, None)
    | Some curr ->
        Simops.charge_read curr.addr;
        if curr.key >= key then (pred, Some curr) else go curr
  in
  go t.head

let insert t ~key ~value =
  Mcs.acquire t.lock;
  let pred, curr = search t key in
  let result =
    match curr with
    | Some c when c.key = key -> false
    | _ ->
        let n = { key; value; addr = Alloc.line t.alloc; next = curr } in
        Simops.write n.addr;
        pred.next <- Some n;
        Simops.write pred.addr;
        true
  in
  Simops.flush ();
  Mcs.release t.lock;
  result

let remove t key =
  Mcs.acquire t.lock;
  let pred, curr = search t key in
  let result =
    match curr with
    | Some c when c.key = key ->
        pred.next <- c.next;
        Simops.write pred.addr;
        true
    | Some _ | None -> false
  in
  Simops.flush ();
  Mcs.release t.lock;
  result

let lookup t key =
  Mcs.acquire t.lock;
  let _, curr = search t key in
  let result = match curr with Some c when c.key = key -> Some c.value | Some _ | None -> None in
  Simops.flush ();
  Mcs.release t.lock;
  result

let to_list t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go ((n.key, n.value) :: acc) n.next
  in
  go [] t.head.next

let check_invariants t =
  let rec go prev = function
    | None -> ()
    | Some n ->
        if n.key <= prev then failwith "ll_coarse: keys not strictly increasing";
        go n.key n.next
  in
  go min_int t.head.next

(* Offline maintenance hook (SET signature); nothing to do here. *)
let maintenance _ = ()

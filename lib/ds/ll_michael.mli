(** Michael's lock-free linked list (SPAA'02) — the paper's [lf-m].

    Implements {!Set_intf.SET}. All operations are charged against the
    simulated machine when called from a simulated thread and are free
    (single-threaded) otherwise. *)

type t

val failpoint_drop_cas_retry : bool ref
(** Test-only mutation for the lib/check self-test: when set, a failed
    insert CAS gives up instead of retrying (a lost-update bug the
    linearizability oracle must catch). Default [false]. *)

val name : string
val create : Dps_sthread.Alloc.t -> t
val insert : t -> key:int -> value:int -> bool
val remove : t -> int -> bool
val lookup : t -> int -> int option
val to_list : t -> (int * int) list
val check_invariants : t -> unit
val maintenance : t -> unit

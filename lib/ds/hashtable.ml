(** Chained hash table with a spinlock per bucket — memcached's structure,
    and a natural fit for DPS partitions. The bucket array is one cache
    line per bucket; the lock shares the bucket's line, exactly as
    fine-grained-locked tables lay it out. *)

module Simops = Dps_sthread.Simops
module Alloc = Dps_sthread.Alloc
module Spinlock = Dps_sync.Spinlock

type node = { key : int; mutable value : int; addr : int; mutable next : node option }

type bucket = { baddr : int; lock : Spinlock.t; mutable chain : node option }

type t = { alloc : Alloc.t; buckets : bucket array; mask : int }

let name = "hashtable"

let rec pow2 n = if n <= 1 then 1 else 2 * pow2 ((n + 1) / 2)

let create_sized alloc ~buckets:n =
  let n = pow2 n in
  let base = Alloc.lines alloc n in
  let mk i =
    let baddr = base + i in
    { baddr; lock = Spinlock.embed ~addr:baddr; chain = None }
  in
  { alloc; buckets = Array.init n mk; mask = n - 1 }

let create alloc = create_sized alloc ~buckets:1024

(* Fibonacci hashing spreads adjacent keys across buckets. *)
let bucket_of t key = (key * 0x9E3779B1) lsr 7 land t.mask

let insert t ~key ~value =
  let b = t.buckets.(bucket_of t key) in
  Spinlock.acquire b.lock;
  let rec walk = function
    | None -> None
    | Some n ->
        Simops.charge_read n.addr;
        if n.key = key then Some n else walk n.next
  in
  let found = walk b.chain in
  Simops.flush ();
  let result =
    match found with
    | Some _ -> false
    | None ->
        let n = { key; value; addr = Alloc.line t.alloc; next = b.chain } in
        Simops.write n.addr;
        b.chain <- Some n;
        Simops.write b.baddr;
        true
  in
  Spinlock.release b.lock;
  result

let remove t key =
  let b = t.buckets.(bucket_of t key) in
  Spinlock.acquire b.lock;
  let rec unlink prev = function
    | None -> false
    | Some n ->
        Simops.charge_read n.addr;
        if n.key = key then begin
          Simops.flush ();
          (match prev with
          | None ->
              b.chain <- n.next;
              Simops.write b.baddr
          | Some p ->
              p.next <- n.next;
              Simops.write p.addr);
          true
        end
        else unlink (Some n) n.next
  in
  let result = unlink None b.chain in
  Simops.flush ();
  Spinlock.release b.lock;
  result

let lookup t key =
  (* racy by design: the read path takes no lock (memcached-style); it may
     observe a bucket mid-update, which chain walking tolerates *)
  let b = t.buckets.(bucket_of t key) in
  Simops.charge_read_racy b.baddr;
  let rec walk = function
    | None -> None
    | Some n ->
        Simops.charge_read_racy n.addr;
        if n.key = key then Some n.value else walk n.next
  in
  let r = walk b.chain in
  Simops.flush ();
  r

let update t ~key ~value =
  let b = t.buckets.(bucket_of t key) in
  Spinlock.acquire b.lock;
  let rec walk = function
    | None -> false
    | Some n ->
        Simops.charge_read n.addr;
        if n.key = key then begin
          n.value <- value;
          Simops.flush ();
          Simops.write n.addr;
          true
        end
        else walk n.next
  in
  let r = walk b.chain in
  Simops.flush ();
  Spinlock.release b.lock;
  r

let to_list t =
  let out = ref [] in
  Array.iter
    (fun b ->
      let rec go = function
        | None -> ()
        | Some n ->
            out := (n.key, n.value) :: !out;
            go n.next
      in
      go b.chain)
    t.buckets;
  List.sort compare !out

let check_invariants t =
  Array.iteri
    (fun i b ->
      let rec go = function
        | None -> ()
        | Some n ->
            if bucket_of t n.key <> i then failwith "hashtable: key in wrong bucket";
            go n.next
      in
      go b.chain)
    t.buckets

(* Offline maintenance hook (SET signature); nothing to do here. *)
let maintenance _ = ()

(** Minimal JSON values, parser and printer.

    The repository deliberately avoids external JSON dependencies; this
    module is just enough for the observability layer's needs: parsing
    [BENCH_*.json] bench output for {!Regress}, and validating the Chrome
    trace files {!Obs.write_chrome} emits. Numbers are [float]s (the only
    numeric type JSON has); object member order is preserved. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse a complete JSON document. Trailing garbage after the top-level
    value is an error. Error strings carry a byte offset. *)

val parse_exn : string -> t
(** @raise Failure on malformed input. *)

val to_string : t -> string
(** Compact (no-whitespace) serialization with full string escaping. *)

val member : string -> t -> t option
(** Object member lookup; [None] on missing key or non-object. *)

val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option

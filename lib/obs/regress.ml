type record = {
  section : string;
  series : string;
  x : string;
  metrics : (string * float) list;
}

let records_of_json j =
  match Json.to_list j with
  | None -> Error "expected a top-level JSON array of records"
  | Some items ->
      let bad = ref None in
      let recs =
        List.filter_map
          (fun item ->
            match item with
            | Json.Obj members ->
                let str k =
                  match List.assoc_opt k members with Some (Json.Str s) -> Some s | _ -> None
                in
                let section = Option.value ~default:"" (str "section") in
                let series =
                  match str "series" with
                  | Some s -> s
                  | None ->
                      if !bad = None then bad := Some "record missing \"series\"";
                      ""
                in
                let x =
                  match List.assoc_opt "x" members with
                  | Some (Json.Str s) -> s
                  | Some (Json.Num f) -> Printf.sprintf "%g" f
                  | _ -> ""
                in
                let metrics =
                  List.filter_map
                    (fun (k, v) ->
                      match v with
                      | Json.Num f when k <> "x" -> Some (k, f)
                      | _ -> None)
                    members
                in
                Some { section; series; x; metrics }
            | _ ->
                if !bad = None then bad := Some "non-object record in bench array";
                None)
          items
      in
      (match !bad with Some msg -> Error msg | None -> Ok recs)

let load_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> (
      match Json.parse contents with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok j -> (
          match records_of_json j with
          | Error e -> Error (Printf.sprintf "%s: %s" path e)
          | Ok r -> Ok r))
  | exception Sys_error e -> Error e

type verdict = { compared : int; failures : string list; warnings : string list }

let key r =
  Printf.sprintf "%s/%s@x=%s" r.section r.series (if r.x = "" then "-" else r.x)

let compare ~tolerance ~baseline ~fresh =
  let failures = ref [] and warnings = ref [] and compared = ref 0 in
  let fail msg = failures := msg :: !failures in
  let warn msg = warnings := msg :: !warnings in
  let index recs =
    let tbl = Hashtbl.create 64 in
    List.iter (fun r -> Hashtbl.replace tbl (key r) r) recs;
    tbl
  in
  let b_idx = index baseline and f_idx = index fresh in
  List.iter
    (fun b ->
      match Hashtbl.find_opt f_idx (key b) with
      | None -> fail (Printf.sprintf "determinism mismatch: %s missing from fresh run" (key b))
      | Some f ->
          incr compared;
          List.iter
            (fun (metric, bv) ->
              match List.assoc_opt metric f.metrics with
              | None ->
                  fail
                    (Printf.sprintf "determinism mismatch: %s lost metric %s" (key b) metric)
              | Some fv ->
                  let rel =
                    if bv = 0.0 then if fv = 0.0 then 0.0 else Float.infinity
                    else (fv -. bv) /. Float.abs bv
                  in
                  if metric = "throughput_mops" then begin
                    if rel < -.tolerance then
                      fail
                        (Printf.sprintf
                           "throughput regression: %s %s %.4f -> %.4f (%.1f%%)" (key b)
                           metric bv fv (100.0 *. rel))
                    else if rel > tolerance then
                      warn
                        (Printf.sprintf
                           "throughput improved: %s %.4f -> %.4f (%+.1f%%); refresh baseline"
                           (key b) bv fv (100.0 *. rel))
                  end
                  else if bv <> fv then
                    warn
                      (Printf.sprintf "drift: %s %s %.6g -> %.6g (%+.2f%%)" (key b) metric bv
                         fv (100.0 *. rel)))
            b.metrics)
    baseline;
  List.iter
    (fun f ->
      if not (Hashtbl.mem b_idx (key f)) then
        fail (Printf.sprintf "determinism mismatch: %s absent from baseline" (key f)))
    fresh;
  { compared = !compared; failures = List.rev !failures; warnings = List.rev !warnings }

(* One-line fresh-run digest for the job log: mean throughput over the
   file's points, and — when any point ran with a live front cache — the
   mean cache hit-rate alongside it, so the perf headline and the
   mechanism that produced it land on the same line. *)
let summary fresh =
  let mean = function
    | [] -> None
    | l -> Some (List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l), List.length l)
  in
  let pick name r = List.assoc_opt name r.metrics in
  let tput =
    List.filter_map
      (fun r ->
        match pick "throughput_mops" r with Some v -> Some v | None -> pick "goodput_mops" r)
      fresh
    |> mean
  in
  let hit =
    List.filter_map (fun r -> pick "fc_hit_rate" r) fresh
    |> List.filter (fun v -> v > 0.0)
    |> mean
  in
  match (tput, hit) with
  | None, _ -> None
  | Some (t, n), None -> Some (Printf.sprintf "throughput %.2f Mops (mean of %d points)" t n)
  | Some (t, n), Some (h, m) ->
      Some
        (Printf.sprintf
           "throughput %.2f Mops (mean of %d points); cache hit-rate %.1f%% (mean of %d cached points)"
           t n (100.0 *. h) m)

let report ppf ~name ~tolerance v =
  Format.fprintf ppf "## %s@." name;
  Format.fprintf ppf "- points compared: %d (tolerance %.0f%%)@." v.compared
    (100.0 *. tolerance);
  if v.failures = [] && v.warnings = [] then Format.fprintf ppf "- OK: bit-identical@."
  else begin
    List.iter (fun f -> Format.fprintf ppf "- FAIL: %s@." f) v.failures;
    List.iter (fun w -> Format.fprintf ppf "- warn: %s@." w) v.warnings
  end;
  Format.fprintf ppf "@."

(** Typed metrics registry.

    One registry unifies the stack's ad-hoc stats records
    ([Machine.stats], [Net.stats], [Server.stats], [Dps.health]) behind a
    single namespace: each subsystem exposes a [register_obs] that
    publishes its counters and gauges here under stable metric names with
    typed labels (for example [dps.pending_depth{partition=3,socket=1}]).

    Three instrument kinds:
    - {b counters}: monotonically increasing integers, owned by the
      registry ({!Counter.incr}/{!Counter.add});
    - {b gauges}: point-in-time floats, either set explicitly
      ({!Gauge.set}) or sampled on demand from a callback ({!gauge_fn}) —
      the idiom used to mirror existing mutable stats records without
      copying them;
    - {b histograms}: log-scale distributions built on
      {!Dps_simcore.Histogram} (same buckets as the latency figures).

    Registering the same metric name with the same label set twice raises
    [Invalid_argument]: collisions are bugs, not merges. Snapshots are
    sorted by (name, labels) so output is deterministic. *)

type t

val create : unit -> t

type labels = (string * string) list
(** Label pairs, e.g. [("partition", "3"); ("socket", "1")]. Order given
    at registration is normalized (sorted by key) for identity and
    printing. *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
end

module Histo : sig
  type t

  val observe : t -> int -> unit
end

val counter : t -> ?labels:labels -> ?help:string -> string -> Counter.t
val gauge : t -> ?labels:labels -> ?help:string -> string -> Gauge.t

val gauge_fn : t -> ?labels:labels -> ?help:string -> string -> (unit -> float) -> unit
(** A gauge whose value is sampled by calling the function at snapshot
    time. *)

val histo : t -> ?labels:labels -> ?help:string -> string -> Histo.t

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histo_v of { count : int; mean : float; p50 : int; p99 : int; p999 : int; max : int }

type sample = { name : string; labels : labels; value : value }

val snapshot : t -> sample list
(** Deterministic (sorted) point-in-time view; callback gauges are
    sampled here. *)

val pp : Format.formatter -> t -> unit
(** Human-readable table of {!snapshot}. *)

val to_json : t -> Json.t
(** [{"name":..., "labels":{...}, "kind":..., value fields...}] list. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Bad of string * int

let fail msg pos = raise (Bad (msg, pos))

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c) !pos
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word) !pos
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape" !pos;
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string" !pos;
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape" !pos;
           let c = s.[!pos] in
           advance ();
           match c with
           | '"' -> Buffer.add_char b '"'
           | '\\' -> Buffer.add_char b '\\'
           | '/' -> Buffer.add_char b '/'
           | 'b' -> Buffer.add_char b '\b'
           | 'f' -> Buffer.add_char b '\012'
           | 'n' -> Buffer.add_char b '\n'
           | 'r' -> Buffer.add_char b '\r'
           | 't' -> Buffer.add_char b '\t'
           | 'u' ->
               (* decode as UTF-8; surrogate pairs are rejoined *)
               let u = hex4 () in
               let u =
                 if u >= 0xD800 && u <= 0xDBFF then begin
                   if
                     !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                   then begin
                     pos := !pos + 2;
                     let lo = hex4 () in
                     if lo < 0xDC00 || lo > 0xDFFF then fail "bad surrogate pair" !pos;
                     0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00)
                   end
                   else fail "lone high surrogate" !pos
                 end
                 else u
               in
               if u < 0x80 then Buffer.add_char b (Char.chr u)
               else if u < 0x800 then begin
                 Buffer.add_char b (Char.chr (0xC0 lor (u lsr 6)));
                 Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
               end
               else if u < 0x10000 then begin
                 Buffer.add_char b (Char.chr (0xE0 lor (u lsr 12)));
                 Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
                 Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
               end
               else begin
                 Buffer.add_char b (Char.chr (0xF0 lor (u lsr 18)));
                 Buffer.add_char b (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
                 Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
                 Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
               end
           | _ -> fail "bad escape" (!pos - 1));
          go ()
      | c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numchar s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number" !pos;
    let text = String.sub s start (!pos - start) in
    (* strict JSON: no leading zeros ("01"), no bare "+", no leading "." —
       float_of_string accepts all three *)
    let digits =
      if String.length text > 0 && text.[0] = '-' then String.sub text 1 (String.length text - 1)
      else text
    in
    if String.length digits = 0 || not (digits.[0] >= '0' && digits.[0] <= '9') then
      fail "malformed number" start;
    if
      String.length digits > 1
      && digits.[0] = '0'
      && digits.[1] >= '0'
      && digits.[1] <= '9'
    then fail "malformed number" start;
    match float_of_string_opt text with
    | Some f -> f
    | None -> fail "malformed number" start
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input" !pos
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let members = ref [] in
          let rec go () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            members := (k, v) :: !members;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                go ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'" !pos
          in
          go ();
          Obj (List.rev !members)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec go () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                go ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'" !pos
          in
          go ();
          List (List.rev !items)
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage" !pos;
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Bad (msg, pos) -> Error (Printf.sprintf "%s at byte %d" msg pos)

let parse_exn s =
  match parse_exn s with
  | v -> v
  | exception Bad (msg, pos) -> failwith (Printf.sprintf "Json.parse: %s at byte %d" msg pos)

let escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let to_string v =
  let b = Buffer.create 256 in
  let rec go v =
    match v with
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string b (Printf.sprintf "%.0f" f)
        else Buffer.add_string b (Printf.sprintf "%.6g" f)
    | Str s ->
        Buffer.add_char b '"';
        escape_into b s;
        Buffer.add_char b '"'
    | List items ->
        Buffer.add_char b '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char b ',';
            go v)
          items;
        Buffer.add_char b ']'
    | Obj members ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            escape_into b k;
            Buffer.add_string b "\":";
            go v)
          members;
        Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

let member k v = match v with Obj ms -> List.assoc_opt k ms | _ -> None
let to_float v = match v with Num f -> Some f | _ -> None
let to_str v = match v with Str s -> Some s | _ -> None
let to_list v = match v with List l -> Some l | _ -> None

type arg = A_int of int | A_str of string | A_float of float

type ev =
  | E_b of { tid : int; ts : int; name : string; cat : string; args : (string * arg) list }
  | E_e of { tid : int; ts : int }
  | E_x of {
      tid : int;
      ts : int;
      dur : int;
      name : string;
      cat : string;
      args : (string * arg) list;
    }
  | E_i of { tid : int; ts : int; name : string; cat : string; args : (string * arg) list }
  | E_ab of { id : int; ts : int; name : string; cat : string; args : (string * arg) list }
  | E_an of { id : int; ts : int; name : string; cat : string }
  | E_ae of { id : int; ts : int; name : string; cat : string }
  | E_m of { tid : int; name : string }

type phase = {
  mutable ph_entries : int;
  mutable ph_self_work : int;
  mutable ph_self_mem : int;
  mutable ph_self_stall : int;
  mutable ph_self_bwstall : int;
  mutable ph_self_park : int;
  mutable ph_total : int;
}

let trc_on = ref false
let prf_on = ref false
let us_scale = ref 2000.0
let events : ev list ref = ref []
let nevents = ref 0
let id_counter = ref 0
let errors : string list ref = ref []
let stacks : (int, string list) Hashtbl.t = Hashtbl.create 64
let phases : (string, phase) Hashtbl.t = Hashtbl.create 32
let parked : (int, int) Hashtbl.t = Hashtbl.create 64
let cores : (int, int) Hashtbl.t = Hashtbl.create 64
let pending_stall = ref 0
let pending_bw_stall = ref 0
let failpoint_drop_span_close = ref false

let on () = !trc_on || !prf_on
let tracing_on () = !trc_on
let profiling_on () = !prf_on

let reset () =
  events := [];
  nevents := 0;
  id_counter := 0;
  errors := [];
  Hashtbl.reset stacks;
  Hashtbl.reset phases;
  Hashtbl.reset parked;
  Hashtbl.reset cores;
  pending_stall := 0;
  pending_bw_stall := 0;
  failpoint_drop_span_close := false

let start ?(tracing = true) ?(profiling = true) ?(cycles_per_us = 2000.0) () =
  reset ();
  trc_on := tracing;
  prf_on := profiling;
  us_scale := cycles_per_us

let stop () =
  trc_on := false;
  prf_on := false

let emit ev =
  events := ev :: !events;
  incr nevents

let phase_of name =
  match Hashtbl.find_opt phases name with
  | Some p -> p
  | None ->
      let p =
        {
          ph_entries = 0;
          ph_self_work = 0;
          ph_self_mem = 0;
          ph_self_stall = 0;
          ph_self_bwstall = 0;
          ph_self_park = 0;
          ph_total = 0;
        }
      in
      Hashtbl.add phases name p;
      p

let stack_of tid = match Hashtbl.find_opt stacks tid with Some s -> s | None -> []

let span_begin ~tid ~now ?(cat = "dps") ?(args = []) name =
  if on () then begin
    Hashtbl.replace stacks tid (name :: stack_of tid);
    if !prf_on then begin
      let p = phase_of name in
      p.ph_entries <- p.ph_entries + 1
    end;
    if !trc_on then emit (E_b { tid; ts = now; name; cat; args })
  end

let span_end ~tid ~now =
  if on () then begin
    if !failpoint_drop_span_close then failpoint_drop_span_close := false
    else
      match stack_of tid with
      | [] ->
          errors :=
            Printf.sprintf "span_end with no open span (tid %d, t=%d)" tid now :: !errors
      | _ :: rest ->
          Hashtbl.replace stacks tid rest;
          if !trc_on then emit (E_e { tid; ts = now })
  end

let instant ~tid ~now ?(cat = "dps") ?(args = []) name =
  if !trc_on then emit (E_i { tid; ts = now; name; cat; args })

let complete ~tid ~now ~dur ?(cat = "dps") ?(args = []) name =
  if !trc_on then emit (E_x { tid; ts = now; dur; name; cat; args })

let next_id () =
  if !trc_on then begin
    incr id_counter;
    !id_counter
  end
  else 0

let async_begin ~id ~now ?(cat = "dps") ?(args = []) name =
  if !trc_on && id <> 0 then emit (E_ab { id; ts = now; name; cat; args })

let async_step ~id ~now ?(cat = "dps") name =
  if !trc_on && id <> 0 then emit (E_an { id; ts = now; name; cat })

let async_end ~id ~now ?(cat = "dps") name =
  if !trc_on && id <> 0 then emit (E_ae { id; ts = now; name; cat })

let thread_name ~tid name = if !trc_on then emit (E_m { tid; name })
let pseudo_tid ~kind i = 1_000_000 + (kind * 10_000) + i

(* ---- profiler feed ---- *)

let clear_stall () =
  pending_stall := 0;
  pending_bw_stall := 0

let note_stall n = pending_stall := !pending_stall + n

(* Cycles lost to bandwidth queueing (token-bucket debt), kept separate
   from latency stalls so the profiler can say whether a phase is bound
   by how far memory is or by how wide the pipes are. *)
let note_bw_stall n = pending_bw_stall := !pending_bw_stall + n

let attribute ~tid ~cycles add_self =
  let stack = stack_of tid in
  let top = match stack with [] -> "(no span)" | s :: _ -> s in
  add_self (phase_of top);
  (match stack with
  | [] -> (phase_of "(no span)").ph_total <- (phase_of "(no span)").ph_total + cycles
  | _ ->
      List.iter
        (fun name ->
          let p = phase_of name in
          p.ph_total <- p.ph_total + cycles)
        stack)

let charged ~tid ~hw ~cycles ~cls =
  if !prf_on && cycles > 0 then begin
    (match Hashtbl.find_opt cores hw with
    | Some c -> Hashtbl.replace cores hw (c + cycles)
    | None -> Hashtbl.add cores hw cycles);
    let bwstall, stall =
      match cls with
      | `Mem ->
          let b = min !pending_bw_stall cycles in
          let s = min !pending_stall (cycles - b) in
          pending_bw_stall := 0;
          pending_stall := 0;
          (b, s)
      | `Work -> (0, 0)
    in
    attribute ~tid ~cycles (fun p ->
        match cls with
        | `Work -> p.ph_self_work <- p.ph_self_work + cycles
        | `Mem ->
            p.ph_self_mem <- p.ph_self_mem + (cycles - stall - bwstall);
            p.ph_self_stall <- p.ph_self_stall + stall;
            p.ph_self_bwstall <- p.ph_self_bwstall + bwstall)
  end

let park_begin ~tid ~now = if !prf_on then Hashtbl.replace parked tid now

let park_end ~tid ~now =
  if !prf_on then
    match Hashtbl.find_opt parked tid with
    | None -> ()
    | Some t0 ->
        Hashtbl.remove parked tid;
        let dur = now - t0 in
        if dur > 0 then
          attribute ~tid ~cycles:dur (fun p -> p.ph_self_park <- p.ph_self_park + dur)

(* ---- inspection and export ---- *)

let event_count () = !nevents

let validate () =
  if !errors <> [] then Error (List.hd (List.rev !errors))
  else begin
    let open_span = ref None in
    Hashtbl.iter
      (fun tid stack ->
        match stack with
        | [] -> ()
        | name :: _ -> if !open_span = None then open_span := Some (tid, name))
      stacks;
    match !open_span with
    | Some (tid, name) ->
        Error (Printf.sprintf "span %S left open on tid %d" name tid)
    | None ->
        (* per-thread timestamp monotonicity over sync/instant events *)
        let last : (int, int) Hashtbl.t = Hashtbl.create 64 in
        let bad = ref None in
        let check tid ts =
          (match Hashtbl.find_opt last tid with
          | Some t when ts < t && !bad = None ->
              bad := Some (Printf.sprintf "timestamps not monotone on tid %d (%d < %d)" tid ts t)
          | _ -> ());
          Hashtbl.replace last tid ts
        in
        List.iter
          (fun ev ->
            match ev with
            | E_b { tid; ts; _ } | E_e { tid; ts } | E_x { tid; ts; _ } | E_i { tid; ts; _ } ->
                check tid ts
            | E_ab _ | E_an _ | E_ae _ | E_m _ -> ())
          (List.rev !events);
        (match !bad with Some msg -> Error msg | None -> Ok ())
  end

let buf_ts b cycles =
  Buffer.add_string b (Printf.sprintf "%.3f" (float_of_int cycles /. !us_scale))

let buf_args b args =
  Buffer.add_string b "\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Json.to_string (Json.Str k));
      Buffer.add_char b ':';
      match v with
      | A_int n -> Buffer.add_string b (string_of_int n)
      | A_float f -> Buffer.add_string b (Printf.sprintf "%.6g" f)
      | A_str s -> Buffer.add_string b (Json.to_string (Json.Str s)))
    args;
  Buffer.add_char b '}'

let buf_common b ~name ~cat ~ph ~ts ~tid =
  Buffer.add_string b "{\"name\":";
  Buffer.add_string b (Json.to_string (Json.Str name));
  Buffer.add_string b ",\"cat\":\"";
  Buffer.add_string b cat;
  Buffer.add_string b "\",\"ph\":\"";
  Buffer.add_string b ph;
  Buffer.add_string b "\",\"ts\":";
  buf_ts b ts;
  Buffer.add_string b ",\"pid\":1,\"tid\":";
  Buffer.add_string b (string_of_int tid)

let chrome_json () =
  let b = Buffer.create (256 * (!nevents + 2)) in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  Buffer.add_string b
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"dps-sim\"}}";
  List.iter
    (fun ev ->
      Buffer.add_char b ',';
      (match ev with
      | E_b { tid; ts; name; cat; args } ->
          buf_common b ~name ~cat ~ph:"B" ~ts ~tid;
          if args <> [] then begin
            Buffer.add_char b ',';
            buf_args b args
          end
      | E_e { tid; ts } ->
          Buffer.add_string b "{\"ph\":\"E\",\"ts\":";
          buf_ts b ts;
          Buffer.add_string b ",\"pid\":1,\"tid\":";
          Buffer.add_string b (string_of_int tid)
      | E_x { tid; ts; dur; name; cat; args } ->
          buf_common b ~name ~cat ~ph:"X" ~ts ~tid;
          Buffer.add_string b ",\"dur\":";
          buf_ts b dur;
          if args <> [] then begin
            Buffer.add_char b ',';
            buf_args b args
          end
      | E_i { tid; ts; name; cat; args } ->
          buf_common b ~name ~cat ~ph:"i" ~ts ~tid;
          Buffer.add_string b ",\"s\":\"t\"";
          if args <> [] then begin
            Buffer.add_char b ',';
            buf_args b args
          end
      | E_ab { id; ts; name; cat; args } ->
          buf_common b ~name ~cat ~ph:"b" ~ts ~tid:0;
          Buffer.add_string b (Printf.sprintf ",\"id\":\"0x%x\"" id);
          if args <> [] then begin
            Buffer.add_char b ',';
            buf_args b args
          end
      | E_an { id; ts; name; cat } ->
          buf_common b ~name ~cat ~ph:"n" ~ts ~tid:0;
          Buffer.add_string b (Printf.sprintf ",\"id\":\"0x%x\"" id)
      | E_ae { id; ts; name; cat } ->
          buf_common b ~name ~cat ~ph:"e" ~ts ~tid:0;
          Buffer.add_string b (Printf.sprintf ",\"id\":\"0x%x\"" id)
      | E_m { tid; name } ->
          Buffer.add_string b "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
          Buffer.add_string b (string_of_int tid);
          Buffer.add_string b ",\"args\":{\"name\":";
          Buffer.add_string b (Json.to_string (Json.Str name));
          Buffer.add_char b '}');
      Buffer.add_char b '}')
    (List.rev !events);
  Buffer.add_string b "]}";
  Buffer.contents b

let write_chrome path =
  let oc = open_out path in
  output_string oc (chrome_json ());
  close_out oc

let trace_path_from_env () = Sys.getenv_opt "DPS_TRACE"

type prof_row = {
  phase : string;
  entries : int;
  self_work : int;
  self_mem : int;
  self_stall : int;
  self_bwstall : int;
  self_park : int;
  total : int;
}

let profile () =
  let rows =
    Hashtbl.fold
      (fun name p acc ->
        {
          phase = name;
          entries = p.ph_entries;
          self_work = p.ph_self_work;
          self_mem = p.ph_self_mem;
          self_stall = p.ph_self_stall;
          self_bwstall = p.ph_self_bwstall;
          self_park = p.ph_self_park;
          total = p.ph_total + p.ph_self_park;
        }
        :: acc)
      phases []
  in
  List.sort
    (fun a b ->
      match compare b.total a.total with 0 -> String.compare a.phase b.phase | c -> c)
    rows

let pp_profile ppf () =
  Fmt.pf ppf "%-16s %9s %12s %12s %12s %12s %12s %12s@." "phase" "entries" "total" "work"
    "mem" "stall" "bwstall" "park";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-16s %9d %12d %12d %12d %12d %12d %12d@." r.phase r.entries r.total
        r.self_work r.self_mem r.self_stall r.self_bwstall r.self_park)
    (profile ())

let core_cycles () =
  Hashtbl.fold (fun hw c acc -> (hw, c) :: acc) cores []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

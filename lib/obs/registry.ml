module Histogram = Dps_simcore.Histogram

type labels = (string * string) list

module Counter = struct
  type t = { mutable c : int }

  let incr t = t.c <- t.c + 1
  let add t n = t.c <- t.c + n
  let value t = t.c
end

module Gauge = struct
  type t = { mutable g : float }

  let set t v = t.g <- v
end

module Histo = struct
  type t = Histogram.t

  let observe t v = Histogram.add t v
end

type instrument =
  | I_counter of Counter.t
  | I_gauge of Gauge.t
  | I_gauge_fn of (unit -> float)
  | I_histo of Histo.t

type entry = { e_name : string; e_labels : labels; e_help : string; e_inst : instrument }
type t = { mutable entries : entry list }

let create () = { entries = [] }

let norm_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let register t ~labels ~help name inst =
  let labels = norm_labels labels in
  if
    List.exists (fun e -> e.e_name = name && e.e_labels = labels) t.entries
  then
    invalid_arg
      (Printf.sprintf "Registry: duplicate metric %s{%s}" name
         (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)));
  t.entries <-
    { e_name = name; e_labels = labels; e_help = help; e_inst = inst } :: t.entries

let counter t ?(labels = []) ?(help = "") name =
  let c = { Counter.c = 0 } in
  register t ~labels ~help name (I_counter c);
  c

let gauge t ?(labels = []) ?(help = "") name =
  let g = { Gauge.g = 0.0 } in
  register t ~labels ~help name (I_gauge g);
  g

let gauge_fn t ?(labels = []) ?(help = "") name f =
  register t ~labels ~help name (I_gauge_fn f)

let histo t ?(labels = []) ?(help = "") name =
  let h = Histogram.create () in
  register t ~labels ~help name (I_histo h);
  h

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histo_v of { count : int; mean : float; p50 : int; p99 : int; p999 : int; max : int }

type sample = { name : string; labels : labels; value : value }

let sample_of e =
  let value =
    match e.e_inst with
    | I_counter c -> Counter_v (Counter.value c)
    | I_gauge g -> Gauge_v g.Gauge.g
    | I_gauge_fn f -> Gauge_v (f ())
    | I_histo h ->
        Histo_v
          {
            count = Histogram.count h;
            mean = Histogram.mean h;
            p50 = Histogram.percentile h 0.5;
            p99 = Histogram.percentile h 0.99;
            p999 = Histogram.percentile h 0.999;
            max = Histogram.max_value h;
          }
  in
  { name = e.e_name; labels = e.e_labels; value }

let snapshot t =
  let samples = List.map sample_of t.entries in
  List.sort
    (fun a b ->
      match String.compare a.name b.name with
      | 0 -> compare a.labels b.labels
      | c -> c)
    samples

let pp_labels ppf labels =
  if labels <> [] then
    Fmt.pf ppf "{%a}"
      (Fmt.list ~sep:(Fmt.any ",") (fun ppf (k, v) -> Fmt.pf ppf "%s=%s" k v))
      labels

let pp ppf t =
  List.iter
    (fun s ->
      match s.value with
      | Counter_v c -> Fmt.pf ppf "%s%a %d@." s.name pp_labels s.labels c
      | Gauge_v g -> Fmt.pf ppf "%s%a %g@." s.name pp_labels s.labels g
      | Histo_v h ->
          Fmt.pf ppf "%s%a count=%d mean=%.1f p50=%d p99=%d p999=%d max=%d@." s.name
            pp_labels s.labels h.count h.mean h.p50 h.p99 h.p999 h.max)
    (snapshot t)

let to_json t =
  let sample_json s =
    let labels = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.labels) in
    let base = [ ("name", Json.Str s.name); ("labels", labels) ] in
    let rest =
      match s.value with
      | Counter_v c -> [ ("kind", Json.Str "counter"); ("value", Json.Num (float_of_int c)) ]
      | Gauge_v g -> [ ("kind", Json.Str "gauge"); ("value", Json.Num g) ]
      | Histo_v h ->
          [
            ("kind", Json.Str "histogram");
            ("count", Json.Num (float_of_int h.count));
            ("mean", Json.Num h.mean);
            ("p50", Json.Num (float_of_int h.p50));
            ("p99", Json.Num (float_of_int h.p99));
            ("p999", Json.Num (float_of_int h.p999));
            ("max", Json.Num (float_of_int h.max));
          ]
    in
    Json.Obj (base @ rest)
  in
  Json.List (List.map sample_json (snapshot t))

(** Bench perf-regression comparison: the policy behind [bin/bench_diff].

    Bench figures emit flat JSON record arrays ([BENCH_<name>.json]):
    each record an object with string fields [section], [series] and [x],
    and one or more numeric metrics ([throughput_mops], [p99], ...). The
    simulator is deterministic, so on an unchanged tree a fresh run
    reproduces the committed baseline {e exactly}; drift is always caused
    by a code change.

    Gating policy (per compared file):
    - a {b point-set mismatch} — a (section, series, x) present in the
      baseline but not fresh, or vice versa — is a determinism/coverage
      failure and hard-fails;
    - a [throughput_mops] {b drop} beyond [tolerance] (relative)
      hard-fails;
    - a throughput {b rise} beyond tolerance and any drift in other
      metrics are reported as warnings: intentional improvements must
      refresh the committed baseline to become the new gate. *)

type record = {
  section : string;
  series : string;
  x : string;  (** the plotted x value, verbatim; [""] when absent *)
  metrics : (string * float) list;
}

val records_of_json : Json.t -> (record list, string) result
(** Parse a bench JSON array. Records missing [section] or [series] are
    an error. *)

val load_file : string -> (record list, string) result

type verdict = {
  compared : int;  (** matched (section, series, x) points *)
  failures : string list;
  warnings : string list;
}

val compare : tolerance:float -> baseline:record list -> fresh:record list -> verdict

val summary : record list -> string option
(** One-line digest of a fresh run: mean throughput (from
    [throughput_mops], falling back to [goodput_mops]) and, when any
    point carries a nonzero [fc_hit_rate], the mean front-cache hit-rate
    alongside it. [None] when the records carry no throughput at all. *)

val report :
  Format.formatter -> name:string -> tolerance:float -> verdict -> unit
(** Markdown fragment for one compared bench file. *)

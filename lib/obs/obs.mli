(** Unified observability: span tracing and a simulated-cycle profiler.

    A single global collector (the simulator runs one scheduler at a time
    on one OS thread, so a singleton matches the execution model — the
    same pattern the scheduler itself uses for its current-thread slot).
    Instrumentation points throughout the stack call into this module
    {e only when enabled}, guarded by {!on}; when disabled every probe is
    a single load-and-branch and nothing is recorded.

    {b Invariant — observation never perturbs the simulation.} No call in
    this interface charges simulated cycles, performs a charged access, or
    touches scheduler state. Timestamps and cycle counts are read from the
    caller ([~now], [~cycles]); identifiers are drawn from a dedicated
    counter that advances only while tracing is enabled. Consequently a
    run produces bit-identical simulated results with observability
    disabled or enabled (enforced by [test/test_obs.ml]).

    {2 Span model}

    - {b Sync spans} ({!span_begin}/{!span_end}) nest per simulated thread
      and render as the classic flamegraph stack in Perfetto. They carry
      the profiler: charged cycles are attributed to the innermost open
      span of the charging thread ({i self}) and to every enclosing span
      ({i total}).
    - {b Async spans} ({!async_begin}/{!async_step}/{!async_end}) follow
      one logical operation across threads — a delegation from issue on
      the client, through ring residency, to dispatch on the executor and
      completion pickup.
    - {b Instants} ({!instant}) mark points (faults, takeovers, flushes,
      packet deliveries); {!complete} records a closed interval whose
      duration is known up front (e.g. an injected stall).

    {2 Cycle attribution}

    Every charged access reports its cost via {!charged}, split into
    classes: [`Work] (pure compute), [`Mem] (memory-system cycles). The
    portion of a memory access spent on {e coherence stalls} — write
    serialization against a line's publish window plus DRAM queueing — is
    reported separately by the machine model through {!note_stall} and
    subtracted out of [`Mem] into its own column. Park time (a thread
    blocked with no cycles charged) is measured wall-clock between
    {!park_begin}/{!park_end} and attributed to the span that parked. *)

type arg = A_int of int | A_str of string | A_float of float
(** Argument payload attached to trace events (rendered in the Perfetto
    "Arguments" pane). *)

(** {1 Enable / disable} *)

val start : ?tracing:bool -> ?profiling:bool -> ?cycles_per_us:float -> unit -> unit
(** Reset all collected state and enable collection. [tracing] records
    trace events; [profiling] aggregates cycle attribution; both default
    to [true]. [cycles_per_us] (default [2000.], a 2 GHz part) only scales
    exported Chrome timestamps, never the data. *)

val stop : unit -> unit
(** Disable collection. Collected data stays available for export. *)

val reset : unit -> unit
(** Drop all collected data and re-arm the id counter. *)

val on : unit -> bool
(** True when tracing or profiling is enabled — the cheap guard
    instrumentation points check before doing any work. *)

val tracing_on : unit -> bool
val profiling_on : unit -> bool

(** {1 Trace events}

    Emitters record events only when {!tracing_on}; {!span_begin} and
    {!span_end} additionally maintain the per-thread span stack whenever
    {!on}, because the profiler attributes cycles to the innermost open
    span. [~now] is the caller's simulated clock; [~tid] its simulated
    thread id (probes in event context that have no thread use a
    pseudo-tid, see {!pseudo_tid}). *)

val span_begin : tid:int -> now:int -> ?cat:string -> ?args:(string * arg) list -> string -> unit

val span_end : tid:int -> now:int -> unit
(** Close the innermost open span of [tid]. Closing with no span open is
    recorded as a validation error (see {!validate}). *)

val instant : tid:int -> now:int -> ?cat:string -> ?args:(string * arg) list -> string -> unit

val complete :
  tid:int -> now:int -> dur:int -> ?cat:string -> ?args:(string * arg) list -> string -> unit
(** A closed [now, now+dur) interval emitted as one event. *)

val next_id : unit -> int
(** Fresh async-span id (deterministic: a counter reset by {!reset}).
    Returns [0] when tracing is disabled; emitters ignore id [0], so
    callers may store and replay it unguarded. *)

val async_begin : id:int -> now:int -> ?cat:string -> ?args:(string * arg) list -> string -> unit
val async_step : id:int -> now:int -> ?cat:string -> string -> unit
val async_end : id:int -> now:int -> ?cat:string -> string -> unit

val thread_name : tid:int -> string -> unit
(** Name [tid]'s row in the Perfetto timeline (metadata event). *)

val pseudo_tid : kind:int -> int -> int
(** Stable synthetic tid for event-context probes with no simulated
    thread (e.g. NIC [kind] rows indexed by socket). Pseudo-tids live far
    above real tids so rows never collide. *)

(** {1 Profiler feed}

    Called by the scheduler and machine model; no-ops unless
    {!profiling_on} (except {!note_stall}, whose guard is the caller's —
    it is on the access path). *)

val clear_stall : unit -> unit
(** Forget any noted-but-unconsumed stall cycles. The scheduler calls
    this before a charged access so a stall noted by an unattributed
    machine access (e.g. a DMA agent) is not billed to the next thread. *)

val note_stall : int -> unit
(** Machine model: of the access being costed right now, this many cycles
    are coherence/memory stalls (write serialization, DRAM queueing).
    Accumulates until consumed by the next {!charged}. *)

val note_bw_stall : int -> unit
(** Machine model: of the access being costed right now, this many cycles
    are bandwidth queueing — token-bucket debt on a memory controller or
    interconnect link. Kept separate from {!note_stall} so the profiler
    distinguishes latency-bound from bandwidth-bound phases. Cleared
    together with latency stalls by {!clear_stall}. *)

val charged : tid:int -> hw:int -> cycles:int -> cls:[ `Work | `Mem ] -> unit
(** Attribute [cycles] just charged to [tid] (running on hardware thread
    [hw]) to its innermost open span; consumes pending {!note_stall} and
    {!note_bw_stall} cycles out of [`Mem]. *)

val park_begin : tid:int -> now:int -> unit
val park_end : tid:int -> now:int -> unit

(** {1 Failpoints} *)

val failpoint_drop_span_close : bool ref
(** Planted mutation for the self-test: when set, the next {!span_end}
    is silently dropped (the flag self-clears), leaving an unbalanced
    span stack that {!validate} and the trace well-formedness checks in
    [test/test_obs.ml] must catch. *)

(** {1 Inspection and export} *)

val event_count : unit -> int

val validate : unit -> (unit, string) result
(** Structural invariants over the collected trace: every span close had
    a matching open, all span stacks are empty (every open was closed),
    and per-thread timestamps are monotone. *)

val chrome_json : unit -> string
(** The collected trace in Chrome [trace_event] JSON format (an object
    with a [traceEvents] array), loadable in [chrome://tracing] and
    Perfetto. Timestamps are microseconds: cycles / [cycles_per_us]. *)

val write_chrome : string -> unit
(** Write {!chrome_json} to a file. *)

val trace_path_from_env : unit -> string option
(** [Some path] when the [DPS_TRACE] environment variable is set — the
    conventional "trace this run to [path]" switch. *)

type prof_row = {
  phase : string;  (** span name, or ["(no span)"] for unattributed cycles *)
  entries : int;  (** times the phase was entered *)
  self_work : int;
  self_mem : int;  (** memory cycles net of stalls *)
  self_stall : int;  (** coherence-stall portion (write serialization, DRAM queueing) *)
  self_bwstall : int;  (** bandwidth-queueing portion (token-bucket debt) *)
  self_park : int;  (** parked wall-cycles attributed to the phase *)
  total : int;  (** inclusive: self of this phase plus everything charged below it *)
}

val profile : unit -> prof_row list
(** Flamegraph-style aggregation, sorted by inclusive total (descending). *)

val pp_profile : Format.formatter -> unit -> unit

val core_cycles : unit -> (int * int) list
(** Charged cycles per hardware thread, sorted by hw id. *)

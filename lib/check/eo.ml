(** Exactly-once oracle for acked operations across cluster reroute.

    Cluster clients tag every set with a unique operation id (carried in
    the memcached [flags] field); the backend's apply hook records the
    (opid, node) pair at the moment the write actually lands on a
    partition, and the client records (opid, node) when the STORED ack
    parses. This module is the pure ledger over those two event streams,
    checked after the run against the set of nodes that died:

    - an op acked by a node that stayed alive must have been applied
      exactly once on a live node — anything else is a lost or
      double-applied acknowledged write;
    - an op acked by a node that later died is {e cache loss}, not a
      protocol violation (memcached makes no durability promise), but it
      still must not have more than one live apply;
    - no op — acked or not — may apply more than once across live nodes:
      the client retry policy only retransmits when the original cannot
      have been applied by a surviving node (refused connection, busy
      shed, or target already declared dead), so a live double-apply means
      that policy was violated. *)

type t = {
  acks : (int, int) Hashtbl.t;  (* opid -> acking node *)
  applies : (int, int list ref) Hashtbl.t;  (* opid -> applying nodes, latest first *)
  mutable n_acks : int;
  mutable n_applies : int;
}

let create () =
  { acks = Hashtbl.create 1024; applies = Hashtbl.create 1024; n_acks = 0; n_applies = 0 }

let ack t ~opid ~node =
  t.n_acks <- t.n_acks + 1;
  Hashtbl.replace t.acks opid node

let apply t ~opid ~node =
  t.n_applies <- t.n_applies + 1;
  match Hashtbl.find_opt t.applies opid with
  | Some l -> l := node :: !l
  | None -> Hashtbl.add t.applies opid (ref [ node ])

type verdict = {
  acked : int;
  applied : int;  (** apply events, including those on nodes that died *)
  cache_lost : int;  (** acked by a node that later died; exempt from the loss check *)
  lost_acked : int list;  (** opids acked by a live node but applied on none *)
  double_applied : int list;  (** opids applied more than once across live nodes *)
}

let ok v = v.lost_acked = [] && v.double_applied = []

let check t ~node_dead =
  let lost = ref [] and doubled = ref [] and cache_lost = ref 0 in
  let live_applies opid =
    match Hashtbl.find_opt t.applies opid with
    | None -> 0
    | Some l -> List.length (List.filter (fun n -> not (node_dead n)) !l)
  in
  Hashtbl.iter
    (fun opid acker ->
      let live = live_applies opid in
      if node_dead acker then begin
        if live = 0 then incr cache_lost
      end
      else if live = 0 then lost := opid :: !lost)
    t.acks;
  Hashtbl.iter
    (fun opid l ->
      if List.length (List.filter (fun n -> not (node_dead n)) !l) > 1 then
        doubled := opid :: !doubled)
    t.applies;
  {
    acked = Hashtbl.length t.acks;
    applied = t.n_applies;
    cache_lost = !cache_lost;
    lost_acked = List.sort compare !lost;
    double_applied = List.sort compare !doubled;
  }

let pp_verdict ppf v =
  Format.fprintf ppf "%d acked, %d applies, %d cache-lost, %d lost-acked, %d double-applied"
    v.acked v.applied v.cache_lost (List.length v.lost_acked) (List.length v.double_applied)

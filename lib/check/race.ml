(** FastTrack-style happens-before race detection over {!Sthread} traces.

    The detector consumes the scheduler's trace events and maintains one
    vector clock per simulated thread plus, per cache line, the clock of
    the last releasing store and the last plain read/write epoch of every
    thread. The policy (see DESIGN.md, "lib/check"):

    - every [rmw] and [write_release] is a synchronizing access: it
      acquires the line's release clock and publishes the thread's clock
      back onto it (lines that are only mutated this way never race — in
      this machine model a charged access is one coherent whole-line
      transaction, so atomically-maintained lines are exempt by
      construction);
    - a plain [read] acquires the line's release clock (the reads-from
      edge of atomic publication), then races with any plain write it is
      not ordered after;
    - a plain [write] races with any plain read or plain write it is not
      ordered after;
    - a [read_racy] acquires but neither checks nor records — the
      annotation for reads that are racy by design and re-validated
      before use;
    - spawn, park/unpark (and the [Waitq] built on them) and the explicit
      [sync_acquire]/[sync_release] tokens contribute the remaining
      edges. *)

module Sthread = Dps_sthread.Sthread

(* Dense, growable vector clocks: thread ids are dense per scheduler. *)
module Vc = struct
  type t = { mutable a : int array }

  let create () = { a = Array.make 8 0 }
  let get t i = if i < Array.length t.a then t.a.(i) else 0

  let ensure t i =
    if i >= Array.length t.a then begin
      let n = Array.make (max (i + 1) (2 * Array.length t.a)) 0 in
      Array.blit t.a 0 n 0 (Array.length t.a);
      t.a <- n
    end

  let set t i v =
    ensure t i;
    t.a.(i) <- v

  let merge dst src =
    Array.iteri (fun i v -> if v > get dst i then set dst i v) src.a

  let copy t = { a = Array.copy t.a }

  (* first thread [u <> tid] whose epoch in [epochs] is not covered by
     [clock], i.e. an access we are not ordered after *)
  let uncovered ~epochs ~clock ~tid =
    let n = Array.length epochs.a in
    let rec go u =
      if u >= n then None
      else if u <> tid && epochs.a.(u) > get clock u then Some u
      else go (u + 1)
    in
    go 0
end

type report = { addr : int; cls : string; tid : int; prior_cls : string; prior_tid : int }

let pp_report r =
  Printf.sprintf "race on line %d: %s by thread %d vs %s by thread %d" r.addr r.cls r.tid
    r.prior_cls r.prior_tid

type line = { mutable rel : Vc.t option; rd : Vc.t; wr : Vc.t }

type t = {
  clocks : (int, Vc.t) Hashtbl.t;
  lines : (int, line) Hashtbl.t;
  tokens : (int, Vc.t) Hashtbl.t;
  permits : (int, Vc.t) Hashtbl.t;
  mutable reports : report list;  (* newest first, capped *)
  mutable n_reports : int;
  mutable n_racy : int;
  max_reports : int;
}

let create ?(max_reports = 32) () =
  {
    clocks = Hashtbl.create 64;
    lines = Hashtbl.create 1024;
    tokens = Hashtbl.create 16;
    permits = Hashtbl.create 16;
    reports = [];
    n_reports = 0;
    n_racy = 0;
    max_reports;
  }

let clock t tid =
  match Hashtbl.find_opt t.clocks tid with
  | Some c -> c
  | None ->
      let c = Vc.create () in
      Vc.set c tid 1;
      Hashtbl.replace t.clocks tid c;
      c

let line t addr =
  match Hashtbl.find_opt t.lines addr with
  | Some l -> l
  | None ->
      let l = { rel = None; rd = Vc.create (); wr = Vc.create () } in
      Hashtbl.replace t.lines addr l;
      l

let tick c tid = Vc.set c tid (Vc.get c tid + 1)

let report t r =
  t.n_reports <- t.n_reports + 1;
  if List.length t.reports < t.max_reports then t.reports <- r :: t.reports

let acquire_rel c l = match l.rel with Some r -> Vc.merge c r | None -> ()

let release_rel c l =
  match l.rel with
  | Some r -> Vc.merge r c
  | None -> l.rel <- Some (Vc.copy c)

let on_event t ev =
  match ev with
  | Sthread.T_access { tid; cls; addr } -> (
      let c = clock t tid in
      let l = line t addr in
      match cls with
      | Sthread.Load ->
          acquire_rel c l;
          (match Vc.uncovered ~epochs:l.wr ~clock:c ~tid with
          | Some u -> report t { addr; cls = "read"; tid; prior_cls = "write"; prior_tid = u }
          | None -> ());
          Vc.set l.rd tid (Vc.get c tid);
          tick c tid
      | Sthread.Racy_load ->
          acquire_rel c l;
          t.n_racy <- t.n_racy + 1;
          tick c tid
      | Sthread.Store ->
          (match Vc.uncovered ~epochs:l.wr ~clock:c ~tid with
          | Some u -> report t { addr; cls = "write"; tid; prior_cls = "write"; prior_tid = u }
          | None -> (
              match Vc.uncovered ~epochs:l.rd ~clock:c ~tid with
              | Some u -> report t { addr; cls = "write"; tid; prior_cls = "read"; prior_tid = u }
              | None -> ()));
          Vc.set l.wr tid (Vc.get c tid);
          tick c tid
      | Sthread.Release_store ->
          acquire_rel c l;
          (match Vc.uncovered ~epochs:l.wr ~clock:c ~tid with
          | Some u ->
              report t { addr; cls = "release-write"; tid; prior_cls = "write"; prior_tid = u }
          | None -> ());
          release_rel c l;
          tick c tid
      | Sthread.Atomic ->
          acquire_rel c l;
          release_rel c l;
          tick c tid)
  | Sthread.T_sync { tid; acquire; token } -> (
      let c = clock t tid in
      if acquire then (
        (match Hashtbl.find_opt t.tokens token with Some r -> Vc.merge c r | None -> ());
        tick c tid)
      else
        match Hashtbl.find_opt t.tokens token with
        | Some r ->
            Vc.merge r c;
            tick c tid
        | None ->
            Hashtbl.replace t.tokens token (Vc.copy c);
            tick c tid)
  | Sthread.T_spawn { parent; child } -> (
      match parent with
      | None -> ignore (clock t child)
      | Some p ->
          let pc = clock t p in
          let cc = Vc.copy pc in
          Vc.set cc child (Vc.get cc child + 1);
          Hashtbl.replace t.clocks child cc;
          tick pc p)
  | Sthread.T_unpark { src; dst } -> (
      match src with
      | None -> ()
      | Some s ->
          let sc = clock t s in
          (match Hashtbl.find_opt t.permits dst with
          | Some p -> Vc.merge p sc
          | None -> Hashtbl.replace t.permits dst (Vc.copy sc));
          tick sc s)
  | Sthread.T_wake { tid } -> (
      match Hashtbl.find_opt t.permits tid with
      | Some p ->
          let c = clock t tid in
          Vc.merge c p;
          Hashtbl.remove t.permits tid;
          tick c tid
      | None -> ())
  | Sthread.T_retire _ -> ()

let install t sched = Sthread.set_tracer sched (Some (on_event t))
let races t = List.rev t.reports
let race_count t = t.n_reports
let racy_reads t = t.n_racy

let summary t =
  if t.n_reports = 0 then None
  else
    Some
      (Printf.sprintf "%d race(s): %s%s" t.n_reports
         (String.concat "; " (List.map pp_report (List.rev t.reports)))
         (if t.n_reports > List.length t.reports then " (truncated)" else ""))

(** History recording and a Wing–Gong (WGL) linearizability checker.

    A {!recorder} timestamps operation invocations and responses with a
    global monotone stamp (the scheduler is single-threaded, so recording
    order is real-time order: operation A precedes B iff A's response
    stamp is smaller than B's invocation stamp). The checker searches for
    a linearization — a total order of the operations that respects
    real-time precedence and a sequential specification — using the
    classic WGL recursion with memoization on (linearized-set, state).

    Set/map histories are partitioned per key before checking (operations
    on distinct keys commute in the sequential spec), which turns an
    exponential whole-history search into many trivial per-key ones. *)

module Sthread = Dps_sthread.Sthread

let absent = min_int
(** Result encoding for "not found / empty" (values in tests are small). *)

type 'op event = {
  id : int;
  tid : int;
  key : int;
  op : 'op;
  res : int;
  inv : int;  (** invocation stamp *)
  ret : int;  (** response stamp *)
}

type 'op recorder = { mutable stamp : int; mutable evs : 'op event list; mutable next_id : int }

let recorder () = { stamp = 0; evs = []; next_id = 0 }

let record r ?(key = 0) op f =
  let inv = r.stamp in
  r.stamp <- r.stamp + 1;
  let res = f () in
  let ret = r.stamp in
  r.stamp <- r.stamp + 1;
  let tid = if Sthread.in_sim () then Sthread.self_id () else -1 in
  r.evs <- { id = r.next_id; tid; key; op; res; inv; ret } :: r.evs;
  r.next_id <- r.next_id + 1;
  res

let events r = List.rev r.evs
let size r = r.next_id

(** A sequential specification. [step state op res] is [Some state'] iff
    the operation with the observed result is legal from [state]. [state]
    must be a structural (hashable, comparable) value. *)
module type SPEC = sig
  type state
  type op

  val name : string
  val init : state
  val step : state -> op -> int -> state option
  val show : op -> int -> string
end

type 'state verdict =
  | Linearizable of 'state  (** witness final state *)
  | Nonlinearizable of string
  | Exhausted

let show_history (type o) (module S : SPEC with type op = o) (evs : o event list) =
  String.concat "; "
    (List.map
       (fun e -> Printf.sprintf "t%d:[%d,%d] %s" e.tid e.inv e.ret (S.show e.op e.res))
       evs)

let check (type s o) (module S : SPEC with type state = s and type op = o) ?(budget = 500_000)
    (evs : o event list) : s verdict =
  let arr = Array.of_list (List.sort (fun a b -> compare a.inv b.inv) evs) in
  let n = Array.length arr in
  if n = 0 then Linearizable S.init
  else begin
    let linearized = Bytes.make n '\000' in
    let memo : (string * s, unit) Hashtbl.t = Hashtbl.create 1024 in
    let nodes = ref 0 in
    let exception Out_of_budget in
    let rec solve ndone state =
      if ndone = n then Some state
      else begin
        incr nodes;
        if !nodes > budget then raise Out_of_budget;
        let key = (Bytes.to_string linearized, state) in
        if Hashtbl.mem memo key then None
        else begin
          (* earliest response among unlinearized ops bounds the candidates:
             an op can linearize first iff no unlinearized op precedes it *)
          let min_ret = ref max_int in
          for i = 0 to n - 1 do
            if Bytes.get linearized i = '\000' && arr.(i).ret < !min_ret then min_ret := arr.(i).ret
          done;
          let rec try_cand i =
            if i >= n then begin
              Hashtbl.replace memo key ();
              None
            end
            else if Bytes.get linearized i = '\000' && arr.(i).inv < !min_ret then begin
              match S.step state arr.(i).op arr.(i).res with
              | Some state' -> (
                  Bytes.set linearized i '\001';
                  match solve (ndone + 1) state' with
                  | Some w -> Some w
                  | None ->
                      Bytes.set linearized i '\000';
                      try_cand (i + 1))
              | None -> try_cand (i + 1)
            end
            else try_cand (i + 1)
          in
          try_cand 0
        end
      end
    in
    match solve 0 S.init with
    | Some w -> Linearizable w
    | None ->
        Nonlinearizable
          (Printf.sprintf "%s history not linearizable: %s" S.name
             (show_history (module S) (Array.to_list arr)))
    | exception Out_of_budget -> Exhausted
  end

(* Partition a history by key and check each key against the spec. *)
let check_partitioned (type s o) (module S : SPEC with type state = s and type op = o)
    ?budget (evs : o event list) :
    [ `Ok of (int, s) Hashtbl.t | `Violation of string | `Exhausted of int ] =
  let by_key : (int, o event list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let cur = try Hashtbl.find by_key e.key with Not_found -> [] in
      Hashtbl.replace by_key e.key (e :: cur))
    evs;
  let witness = Hashtbl.create 64 in
  let result = ref `Done in
  Hashtbl.iter
    (fun key kevs ->
      match !result with
      | `Done -> (
          match check (module S) ?budget kevs with
          | Linearizable w -> Hashtbl.replace witness key w
          | Nonlinearizable msg -> result := `Bad (Printf.sprintf "key %d: %s" key msg)
          | Exhausted -> result := `Out key)
      | _ -> ())
    by_key;
  match !result with
  | `Done -> `Ok witness
  | `Bad msg -> `Violation msg
  | `Out key -> `Exhausted key

(** {1 Sequential reference specifications} *)

type set_op = Insert of int | Remove | Lookup

module Set_spec = struct
  type state = int option  (* value if the key is present *)
  type op = set_op

  let name = "set"
  let init = None

  let step st op res =
    match (op, st) with
    | Insert v, None -> if res = 1 then Some (Some v) else None
    | Insert _, Some _ -> if res = 0 then Some st else None
    | Remove, Some _ -> if res = 1 then Some None else None
    | Remove, None -> if res = 0 then Some None else None
    | Lookup, Some v -> if res = v then Some st else None
    | Lookup, None -> if res = absent then Some st else None

  let show op res =
    match op with
    | Insert v -> Printf.sprintf "insert(%d)=%b" v (res = 1)
    | Remove -> Printf.sprintf "remove=%b" (res = 1)
    | Lookup -> if res = absent then "lookup=None" else Printf.sprintf "lookup=%d" res
end

type seq_op = Push of int | Pop

module Queue_spec = struct
  type state = int list  (* front at head *)
  type op = seq_op

  let name = "fifo queue"
  let init = []

  let step st op res =
    match (op, st) with
    | Push v, _ -> if res = 0 then Some (st @ [ v ]) else None
    | Pop, [] -> if res = absent then Some [] else None
    | Pop, x :: rest -> if res = x then Some rest else None

  let show op res =
    match op with
    | Push v -> Printf.sprintf "enq(%d)" v
    | Pop -> if res = absent then "deq=None" else Printf.sprintf "deq=%d" res
end

module Stack_spec = struct
  type state = int list  (* top at head *)
  type op = seq_op

  let name = "lifo stack"
  let init = []

  let step st op res =
    match (op, st) with
    | Push v, _ -> if res = 0 then Some (v :: st) else None
    | Pop, [] -> if res = absent then Some [] else None
    | Pop, x :: rest -> if res = x then Some rest else None

  let show op res =
    match op with
    | Push v -> Printf.sprintf "push(%d)" v
    | Pop -> if res = absent then "pop=None" else Printf.sprintf "pop=%d" res
end

(* Unordered collection with exact element accounting: [Pop] may return any
   present element (no order constraint), [absent] only when empty. The
   spec for relaxed structures — what must still hold is no loss, no
   duplication, no invention. *)
module Bag_spec = struct
  type state = int list  (* sorted multiset *)
  type op = seq_op

  let name = "bag"
  let init = []

  let step st op res =
    match op with
    | Push v -> if res = 0 then Some (List.sort compare (v :: st)) else None
    | Pop ->
        if res = absent then if st = [] then Some [] else None
        else if List.mem res st then
          (* remove one occurrence *)
          let rec rm = function
            | [] -> []
            | x :: rest -> if x = res then rest else x :: rm rest
          in
          Some (rm st)
        else None

  let show op res =
    match op with
    | Push v -> Printf.sprintf "add(%d)" v
    | Pop -> if res = absent then "take=None" else Printf.sprintf "take=%d" res
end

(* As [Bag_spec], but [Pop] may also miss: returning [absent] is always
   legal. For the DPS broadcast adapters, whose peek-then-act pairs are
   documented non-linearizable: a pop racing a push may see every
   partition empty. Loss and duplication are still violations. *)
module Bag_relaxed_spec = struct
  include Bag_spec

  let name = "relaxed bag"

  let step st op res =
    match op with Pop when res = absent -> Some st | _ -> Bag_spec.step st op res
end

type pq_op = Pq_insert of int | Pq_remove_min | Pq_find_min

module Pq_spec = struct
  type state = int list  (* sorted keys *)
  type op = pq_op

  let name = "priority queue"
  let init = []

  let step st op res =
    match (op, st) with
    | Pq_insert k, _ ->
        if res = 1 && not (List.mem k st) then Some (List.sort compare (k :: st))
        else if res = 0 && List.mem k st then Some st
        else None
    | Pq_remove_min, [] -> if res = absent then Some [] else None
    | Pq_remove_min, x :: rest -> if res = x then Some rest else None
    | Pq_find_min, [] -> if res = absent then Some [] else None
    | Pq_find_min, x :: _ -> if res = x then Some st else None

  let show op res =
    match op with
    | Pq_insert k -> Printf.sprintf "insert(%d)=%b" k (res = 1)
    | Pq_remove_min ->
        if res = absent then "remove_min=None" else Printf.sprintf "remove_min=%d" res
    | Pq_find_min -> if res = absent then "find_min=None" else Printf.sprintf "find_min=%d" res
end

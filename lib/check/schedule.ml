(** Schedule exploration: seeded perturbation of the deterministic
    discrete-event schedule.

    Every charged operation is a scheduling point; the scheduler hook can
    force extra delay onto any of them, which reorders the thread
    interleaving while keeping the run fully deterministic. A [ctl] is one
    member of the schedule space: a strategy plus a seed. Whatever the
    strategy decides is also recorded as a trace of (point, delay) pairs —
    point being the global index of the scheduling point — so any run can
    be replayed bit-for-bit by [Replay]ing its trace, and a failing trace
    can be shrunk to a minimal set of forced preemptions. *)

module Prng = Dps_simcore.Prng
module Sthread = Dps_sthread.Sthread

type decision = { point : int; delay : int }
type trace = decision list

type strategy =
  | Baseline  (** the unperturbed seed schedule *)
  | Random_preempt of { prob : float; max_delay : int }
      (** independent coin per scheduling point: with probability [prob]
          stall the thread for 1..[max_delay] extra cycles *)
  | Pct of { changes : int; max_delay : int }
      (** PCT-style priority schedule, adapted to discrete-event form:
          every thread gets a random start offset (its priority), plus
          [changes] priority-change points where the currently running
          thread is forcibly preempted *)
  | Replay of trace  (** play back recorded decisions, ignore the seed *)

let strategy_name = function
  | Baseline -> "baseline"
  | Random_preempt { prob; _ } -> Printf.sprintf "random-preempt(p=%.3f)" prob
  | Pct { changes; _ } -> Printf.sprintf "pct(changes=%d)" changes
  | Replay _ -> "replay"

type ctl = {
  strategy : strategy;
  prng : Prng.t;
  mutable point : int;
  mutable recorded : decision list;  (* reverse order *)
  staggered : (int, unit) Hashtbl.t;  (* pct: threads already given a start offset *)
  mutable next_change : int;
  mutable changes_left : int;
  mutable replay : trace;  (* remaining, ascending by point *)
}

let make ~seed strategy =
  let prng = Prng.create seed in
  let next_change, changes_left =
    match strategy with Pct { changes; _ } -> (Prng.int prng 1_000, changes) | _ -> (max_int, 0)
  in
  {
    strategy;
    prng;
    point = 0;
    recorded = [];
    staggered = Hashtbl.create 32;
    next_change;
    changes_left;
    replay =
      (match strategy with
      | Replay tr -> List.sort (fun (a : decision) (b : decision) -> compare a.point b.point) tr
      | _ -> []);
  }

let hook ctl ~tid ~now:_ ~tag:_ ~cycles:_ =
  let d =
    match ctl.strategy with
    | Baseline -> 0
    | Random_preempt { prob; max_delay } ->
        if Prng.below ctl.prng prob then 1 + Prng.int ctl.prng max_delay else 0
    | Pct { max_delay; _ } ->
        let stagger =
          if Hashtbl.mem ctl.staggered tid then 0
          else begin
            Hashtbl.replace ctl.staggered tid ();
            Prng.int ctl.prng max_delay
          end
        in
        let change =
          if ctl.changes_left > 0 && ctl.point >= ctl.next_change then begin
            ctl.changes_left <- ctl.changes_left - 1;
            ctl.next_change <- ctl.point + 1 + Prng.int ctl.prng 2_000;
            1 + Prng.int ctl.prng max_delay
          end
          else 0
        in
        stagger + change
    | Replay _ -> (
        match ctl.replay with
        | { point; delay } :: rest when point = ctl.point ->
            ctl.replay <- rest;
            delay
        | _ -> 0)
  in
  if d > 0 then ctl.recorded <- { point = ctl.point; delay = d } :: ctl.recorded;
  ctl.point <- ctl.point + 1;
  d

let attach ctl sched = Sthread.set_sched_hook sched (Some (hook ctl))
let trace ctl = List.rev ctl.recorded
let points ctl = ctl.point

let trace_to_string tr =
  String.concat ","
    (List.map (fun (d : decision) -> Printf.sprintf "%d:%d" d.point d.delay) tr)

let trace_of_string s =
  if String.trim s = "" then []
  else
    String.split_on_char ',' s
    |> List.map (fun part ->
           match String.split_on_char ':' (String.trim part) with
           | [ p; d ] -> { point = int_of_string p; delay = int_of_string d }
           | _ -> invalid_arg ("Schedule.trace_of_string: bad decision " ^ part))

(* Minimize a failing trace: keep removing forced preemptions while the
   scenario still fails. Chunked passes first (drop half/quarter/...), then
   single-decision removal, bounded by [max_tries] replays. *)
let shrink ~max_tries ~still_fails tr =
  let tries = ref 0 in
  let fails tr =
    if !tries >= max_tries then false
    else begin
      incr tries;
      still_fails tr
    end
  in
  let drop_slice tr lo len =
    List.filteri (fun i _ -> i < lo || i >= lo + len) tr
  in
  let rec chunk_pass tr size =
    if size < 1 then tr
    else begin
      let rec go tr lo =
        if lo >= List.length tr then tr
        else begin
          let cand = drop_slice tr lo size in
          if List.length cand < List.length tr && fails cand then go cand lo
          else go tr (lo + size)
        end
      in
      let tr' = go tr 0 in
      chunk_pass tr' (if size > List.length tr' then List.length tr' / 2 else size / 2)
    end
  in
  let n = List.length tr in
  if n <= 1 then tr else chunk_pass tr (n / 2)

(** The exploration driver: run a scenario under many perturbed schedules,
    check it (linearizability, races, invariants), and on failure shrink
    the schedule and print a replay recipe.

    Replay ergonomics: every failure prints the base seed, the schedule
    index, and the minimized preemption trace. Setting [DPS_CHECK_TRACE]
    (and optionally [DPS_CHECK_SEED=<base>/<index>]) in the environment
    makes {!explore} run exactly that one schedule, deterministically.
    [DPS_CHECK_BUDGET] overrides every exploration budget (the CI
    check-smoke job sets it). *)

module Machine = Dps_machine.Machine
module Sthread = Dps_sthread.Sthread
module Alloc = Dps_sthread.Alloc
module Prng = Dps_simcore.Prng
module Par = Dps_simcore.Par

type failure = {
  name : string;
  seed : int64;  (** base seed of the exploration *)
  index : int;  (** which schedule failed *)
  strategy : string;
  full_trace : Schedule.trace;
  trace : Schedule.trace;  (** minimized *)
  message : string;
}

let pp_failure f =
  Printf.sprintf
    "[dps-check] FAILURE in %s (schedule %d, %s, %d->%d forced preemptions)\n\
     [dps-check]   %s\n\
     [dps-check]   replay: DPS_CHECK_SEED=%Ld/%d DPS_CHECK_TRACE=%s dune runtest" f.name f.index
    f.strategy (List.length f.full_trace) (List.length f.trace) f.message f.seed f.index
    (Schedule.trace_to_string f.trace)

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt (String.trim s) with Some v -> v | None -> default)
  | None -> default

let env_seed () =
  match Sys.getenv_opt "DPS_CHECK_SEED" with
  | None -> None
  | Some s -> (
      match String.split_on_char '/' (String.trim s) with
      | [ base; idx ] -> (
          match (Int64.of_string_opt base, int_of_string_opt idx) with
          | Some b, Some i -> Some (b, i)
          | _ -> None)
      | _ -> None)

let default_strategies =
  [
    Schedule.Random_preempt { prob = 0.02; max_delay = 4_000 };
    Schedule.Pct { changes = 8; max_delay = 8_000 };
    Schedule.Random_preempt { prob = 0.10; max_delay = 600 };
  ]

(* Derive the (strategy, seed) of schedule [i] of an exploration: schedule
   0 is the unperturbed baseline; the rest cycle through the strategy list
   with seeds drawn from one base stream. *)
let derive ~seed ~strategies i =
  let prng = Prng.create seed in
  let s = ref 0L in
  for _ = 0 to i do
    s := Prng.next64 prng
  done;
  let strategy =
    if i = 0 then Schedule.Baseline
    else List.nth strategies ((i - 1) mod List.length strategies)
  in
  (strategy, !s)

(* [DPS_CHECK_COUNT_FILE]: append "<name> <explored>" after each
   exploration, so the CI smoke job can total the schedules it covered. *)
let record_explored ~name n =
  match Sys.getenv_opt "DPS_CHECK_COUNT_FILE" with
  | None -> ()
  | Some path ->
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      Printf.fprintf oc "%s %d\n" name n;
      close_out oc

let explore ~name ?(budget = 50) ?(seed = 0x5eedL) ?(strategies = default_strategies)
    ?(shrink_tries = 80) run =
  let budget = env_int "DPS_CHECK_BUDGET" budget in
  let jobs = max 1 (env_int "DPS_CHECK_JOBS" 1) in
  let run_one ctl = try run ctl with e -> Some ("exception: " ^ Printexc.to_string e) in
  let fail ~index ~strategy ~msg ~full =
    let still_fails tr = run_one (Schedule.make ~seed:0L (Schedule.Replay tr)) <> None in
    let minimized = Schedule.shrink ~max_tries:shrink_tries ~still_fails full in
    (* only keep the shrunk trace if it still reproduces on its own *)
    let minimized = if still_fails minimized then minimized else full in
    let message =
      match run_one (Schedule.make ~seed:0L (Schedule.Replay minimized)) with
      | Some m -> m
      | None -> msg
    in
    let f =
      {
        name;
        seed;
        index;
        strategy = Schedule.strategy_name strategy;
        full_trace = full;
        trace = minimized;
        message;
      }
    in
    prerr_endline (pp_failure f);
    Error f
  in
  match Sys.getenv_opt "DPS_CHECK_TRACE" with
  | Some tr_s -> (
      (* replay exactly one schedule *)
      let tr = Schedule.trace_of_string tr_s in
      let ctl = Schedule.make ~seed:0L (Schedule.Replay tr) in
      match run_one ctl with
      | None -> Ok ()
      | Some msg ->
          let f =
            {
              name;
              seed;
              index = -1;
              strategy = "replay";
              full_trace = tr;
              trace = tr;
              message = msg;
            }
          in
          prerr_endline (pp_failure f);
          Error f)
  | None -> (
      match env_seed () with
      | Some (base, index) -> (
          let strategy, s = derive ~seed:base ~strategies index in
          let ctl = Schedule.make ~seed:s strategy in
          match run_one ctl with
          | None -> Ok ()
          | Some msg -> fail ~index ~strategy ~msg ~full:(Schedule.trace ctl))
      | None ->
          (* The scan over schedule indices. Each index is an independent
             simulation, so with DPS_CHECK_JOBS > 1 a window of them fans
             out across domains; the scan stops at the first window with a
             failure and reports its lowest failing index — the same
             schedule the sequential scan finds (later indices of that
             window were explored and discarded, never reported). Shrinking
             then runs on the main domain, exactly as at -j1. *)
          let run_index i =
            let strategy, s = derive ~seed ~strategies i in
            let ctl = Schedule.make ~seed:s strategy in
            match run_one ctl with
            | None -> None
            | Some msg -> Some (msg, strategy, Schedule.trace ctl)
          in
          let finish = function
            | None ->
                record_explored ~name budget;
                Ok ()
            | Some (i, (msg, strategy, full)) ->
                record_explored ~name (i + 1);
                fail ~index:i ~strategy ~msg ~full
          in
          if jobs <= 1 then begin
            let rec go i =
              if i >= budget then finish None
              else
                match run_index i with
                | None -> go (i + 1)
                | Some r -> finish (Some (i, r))
            in
            go 0
          end
          else begin
            let window = jobs * 4 in
            let rec go lo =
              if lo >= budget then finish None
              else begin
                let hi = min budget (lo + window) in
                let results =
                  Par.map ~jobs (Array.init (hi - lo) (fun k () -> run_index (lo + k)))
                in
                let first = ref None in
                Array.iteri
                  (fun k r ->
                    match (!first, r) with
                    | None, Some r -> first := Some (lo + k, r)
                    | _ -> ())
                  results;
                match !first with Some _ as f -> finish f | None -> go hi
              end
            in
            go 0
          end)

(** {1 Scenario harness} *)

type sim = { sched : Sthread.t; machine : Machine.t; alloc : Alloc.t; race : Race.t }

(* Build a fresh machine + scheduler wired to the schedule [ctl] and a race
   detector; run the scenario body (spawn threads, [Sthread.run], verify);
   then layer on the generic checks: threads that never finished
   (deadlock) and unannotated races. *)
let with_sim ?(machine_seed = 42L) ?(config = Machine.config_default) ?(max_reports = 8) ctl f =
  let machine = Machine.create ~seed:machine_seed config in
  let sched = Sthread.create machine in
  Schedule.attach ctl sched;
  let race = Race.create ~max_reports () in
  Race.install race sched;
  let alloc = Alloc.create machine ~cold:Alloc.Spread in
  match f { sched; machine; alloc; race } with
  | Some msg -> Some msg
  | None ->
      if Sthread.live_threads sched > 0 then
        Some
          (Printf.sprintf "deadlock: %d thread(s) still blocked at quiescence"
             (Sthread.live_threads sched))
      else Race.summary race

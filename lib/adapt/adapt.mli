(** Adaptive delegation controller.

    A controller thread that samples per-partition signals from a DPS
    instance created with [~adaptive:true] — ring queue depth, remote
    traffic, issue->done latency, and the profiler's coherence-stall
    share — once per epoch, applies a hysteresis policy, and migrates
    individual partitions between delegated mode (the DPS ring protocol)
    and direct mode (remote clients serialize on the partition's CNA
    lock) via [Dps.set_mode]'s online drain protocol. The trade the
    paper freezes at create time — delegation wins under contention,
    direct access wins when a partition is cool — made dynamic, as
    SmartPQ does for NUMA priority queues (see PAPERS.md). *)

type policy = {
  epoch : int;  (** cycles between controller samples *)
  warmup_epochs : int;  (** epochs observed before the first decision *)
  hot_ops : int;  (** remote ops/epoch at or above which an epoch votes hot *)
  cool_ops : int;  (** remote ops/epoch at or below which an epoch votes cool *)
  depth_hot : int;  (** ring backlog that makes an epoch hot outright *)
  lat_hot : int;
      (** direct-mode issue->done latency (cycles) that votes hot — a lock
          convoy direct mode cannot see in its op counts *)
  stall_hot : float;  (** coherence-stall share that votes hot under traffic *)
  hot_epochs : int;  (** consecutive hot epochs before direct -> delegated *)
  cool_epochs : int;  (** consecutive cool epochs before delegated -> direct *)
}

val default_policy : policy

val direct_stall_share : unit -> float
(** Stalled fraction of the direct path's self cycles, from the profiler
    ([dps.direct] phase); 0.0 when profiling is off. The default
    [stall_share] input of {!run}. *)

val run : ?policy:policy -> ?stall_share:(unit -> float) -> 'a Dps.t -> unit
(** Controller thread body: sample, decide, migrate, until the instance's
    clients are all done ([Dps.active] turns false). Spawn it on a spare
    hardware thread; it is the single [Dps.set_mode] writer. An epoch with
    traffic at or above [hot_ops] (or a backlog, latency, or stall signal
    crossing its threshold) votes hot, one at or below [cool_ops] votes
    cool, anything between holds the current mode; [hot_epochs] /
    [cool_epochs] consecutive votes flip the partition. *)

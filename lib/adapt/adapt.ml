module Sthread = Dps_sthread.Sthread
module Obs = Dps_obs.Obs

(* The controller's decision problem (SmartPQ's, transplanted onto DPS):
   delegation amortizes contention — it wins when a partition is hot — but
   pays protocol overhead a cool partition never earns back, where a
   plain NUMA-aware lock is cheaper. The signals below are sampled
   host-side (charging nothing), once per epoch, and diffed against the
   previous epoch; all flips go through Dps.set_mode's drain protocol. *)

type policy = {
  epoch : int;  (* cycles between controller samples *)
  warmup_epochs : int;  (* epochs observed before the first decision *)
  hot_ops : int;  (* remote ops/epoch at or above which an epoch votes hot *)
  cool_ops : int;  (* remote ops/epoch at or below which an epoch votes cool *)
  depth_hot : int;  (* ring backlog that makes an epoch hot outright *)
  lat_hot : int;  (* direct-mode issue->done latency that votes hot (lock convoy) *)
  stall_hot : float;  (* coherence-stall share that votes hot under traffic *)
  hot_epochs : int;  (* consecutive hot epochs before direct -> delegated *)
  cool_epochs : int;  (* consecutive cool epochs before delegated -> direct *)
}

let default_policy =
  {
    epoch = 4_000;
    warmup_epochs = 2;
    hot_ops = 48;
    cool_ops = 16;
    depth_hot = 12;
    lat_hot = 20_000;
    stall_hot = 0.4;
    hot_epochs = 2;
    cool_epochs = 3;
  }

(* Coherence-stall share of the direct path, read from the profiler: the
   stalled fraction of dps.direct's self cycles. 0.0 when profiling is off
   or the phase has never run — the signal degrades to neutral. *)
let direct_stall_share () =
  if not (Obs.profiling_on ()) then 0.0
  else
    match List.find_opt (fun r -> r.Obs.phase = "dps.direct") (Obs.profile ()) with
    | Some r ->
        let denom = r.Obs.self_work + r.Obs.self_mem + r.Obs.self_stall in
        if denom = 0 then 0.0 else float_of_int r.Obs.self_stall /. float_of_int denom
    | None -> 0.0

let run ?(policy = default_policy) ?stall_share dps =
  let n = Dps.npartitions dps in
  let prev = Array.init n (fun pid -> Dps.signals dps ~pid) in
  let hot = Array.make n 0 in
  let cool = Array.make n 0 in
  let epochs = ref 0 in
  if Obs.tracing_on () then Obs.thread_name ~tid:(Sthread.self_id ()) "dps-adapt";
  while Dps.active dps do
    ignore (Sthread.park_for policy.epoch);
    incr epochs;
    let stall = match stall_share with Some f -> f () | None -> direct_stall_share () in
    for pid = 0 to n - 1 do
      let s = Dps.signals dps ~pid in
      let p = prev.(pid) in
      prev.(pid) <- s;
      let d_ops = s.Dps.s_remote_ops - p.Dps.s_remote_ops in
      let d_lat_cnt = s.Dps.s_lat_cnt - p.Dps.s_lat_cnt in
      let avg_lat =
        if d_lat_cnt > 0 then (s.Dps.s_lat_sum - p.Dps.s_lat_sum) / d_lat_cnt else 0
      in
      let is_hot =
        d_ops >= policy.hot_ops
        || s.Dps.s_pending >= policy.depth_hot
        (* latency votes without an op-count qualifier in direct mode: a
           lock convoy throttles throughput below cool_ops, which would
           mask exactly the signal this clause exists to catch. It still
           needs two completions — one straggler is noise, a convoy
           serializes many clients and trickles several per epoch *)
        || (s.Dps.s_mode = Dps.Direct && d_lat_cnt >= 2 && avg_lat >= policy.lat_hot)
        || (d_ops > policy.cool_ops && stall >= policy.stall_hot)
      in
      let is_cool = d_ops <= policy.cool_ops && s.Dps.s_pending < policy.depth_hot in
      if is_hot then begin
        hot.(pid) <- hot.(pid) + 1;
        cool.(pid) <- 0
      end
      else if is_cool then begin
        cool.(pid) <- cool.(pid) + 1;
        hot.(pid) <- 0
      end
      else begin
        (* between the thresholds: hysteresis holds the current mode *)
        hot.(pid) <- 0;
        cool.(pid) <- 0
      end;
      if !epochs > policy.warmup_epochs then
        match Dps.mode dps ~pid with
        | Dps.Direct when hot.(pid) >= policy.hot_epochs ->
            Dps.set_mode dps ~pid `Delegated;
            hot.(pid) <- 0
        | Dps.Delegated when cool.(pid) >= policy.cool_epochs ->
            Dps.set_mode dps ~pid `Direct;
            cool.(pid) <- 0
        | _ -> ()
    done
  done

module Prng = Dps_simcore.Prng
module Bitset = Dps_simcore.Bitset
module Stats = Dps_simcore.Stats

type kind = Read | Write | Rmw
type policy = On_node of int | Interleave

type config = {
  topo : Topology.t;
  costs : Costs.t;
  priv_lines : int;
  llc_lines : int;
  tlb_entries : int;  (* pages per core; a page is 64 lines (4 KB) *)
}

let config_default =
  {
    topo = Topology.default;
    costs = Costs.default;
    priv_lines = 4096 (* 256 KB of 64 B lines *);
    llc_lines = 393216 (* 24 MB *);
    tlb_entries = 512 (* 2 MB of reach *);
  }

let config_scaled ?(factor = 16) () =
  {
    config_default with
    priv_lines = max 64 (config_default.priv_lines / factor);
    llc_lines = max 512 (config_default.llc_lines / factor);
    tlb_entries = max 16 (config_default.tlb_entries / factor);
  }

(* [wbusy]: the simulated time until which the line's ownership is in
   transit. Writes from different cores must acquire ownership serially —
   a single hot line is a global serialization point, which is precisely
   the contention collapse of §2 — while reads of a shared line replicate
   and serve in parallel. *)
type line = {
  home : int;
  mutable owner : int;
  sharers : Bitset.t;
  mutable wbusy : int;
  mutable dirty : bool;  (* modified relative to DRAM: an eviction writes back *)
}

type region = { base : int; nlines : int; pol : policy }

(* Placeholder for never-touched entries of the dense directory; compared
   physically, never read. *)
let no_line = { home = -1; owner = -1; sharers = Bitset.create 0; wbusy = 0; dirty = false }

(* Bandwidth state, present only when [costs.bw] enables modeling: one
   token bucket per socket memory controller and one per interconnect
   link direction. [last_delay] records the bucket component of the most
   recent access so [access_mlp] can exempt it from pipelining — latency
   hides behind memory-level parallelism, bandwidth does not. *)
type bwstate = {
  mc : Bwbucket.t array;  (* per socket *)
  link : Bwbucket.t array;  (* per ordered socket pair, Topology.link_index *)
  mutable last_delay : int;
}

type t = {
  cfg : config;
  priv : Cachebox.t array;  (* per physical core *)
  tlb : Cachebox.t array;  (* per physical core, in pages *)
  llc : Cachebox.t array;  (* per socket *)
  mutable lines : line array;
    (* The coherence directory, keyed directly by line index. [alloc] hands
       out addresses densely from 0, so the directory is a flat array grown
       alongside [next_addr] — one load per lookup where the previous
       [Hashtbl] hashed and chased buckets on every access. Entries
       materialize lazily on first touch, exactly as the hash table did. *)
  dram_busy : int array;  (* per NUMA node: memory-controller occupancy *)
  bw : bwstate option;  (* bandwidth buckets; None = modeling off (bw:0) *)
  mutable regions : region array;
  mutable nregions : int;
  mutable next_addr : int;
  stats : Stats.t;
  active : bool array;
}

let create ?(seed = 42L) cfg =
  let root = Prng.create seed in
  let topo = cfg.topo in
  {
    cfg;
    priv =
      Array.init (Topology.ncores topo) (fun _ ->
          Cachebox.create ~capacity:cfg.priv_lines (Prng.split root));
    tlb =
      Array.init (Topology.ncores topo) (fun _ ->
          Cachebox.create ~capacity:cfg.tlb_entries (Prng.split root));
    llc =
      Array.init topo.Topology.sockets (fun _ ->
          Cachebox.create ~capacity:cfg.llc_lines (Prng.split root));
    lines = Array.make 65536 no_line;
    dram_busy = Array.make topo.Topology.sockets 0;
    bw =
      (let b = cfg.costs.Costs.bw in
       if b.Costs.mc_bytes_per_cycle <= 0 then None
       else
         Some
           {
             mc =
               Array.init topo.Topology.sockets (fun _ ->
                   Bwbucket.create ~rate:b.Costs.mc_bytes_per_cycle ~burst:b.Costs.mc_burst);
             link =
               Array.init (Topology.nlinks topo) (fun _ ->
                   Bwbucket.create ~rate:b.Costs.link_bytes_per_cycle ~burst:b.Costs.link_burst);
             last_delay = 0;
           });
    regions = Array.make 16 { base = 0; nlines = 0; pol = Interleave };
    nregions = 0;
    next_addr = 0;
    stats = Stats.create ();
    active = Array.make (Topology.nthreads topo) false;
  }

let topology t = t.cfg.topo
let config t = t.cfg
let stats t = t.stats

let alloc t pol ~lines =
  assert (lines > 0);
  let base = t.next_addr in
  t.next_addr <- base + lines;
  if t.next_addr > Array.length t.lines then begin
    let cap = max t.next_addr (2 * Array.length t.lines) in
    let bigger = Array.make cap no_line in
    Array.blit t.lines 0 bigger 0 (Array.length t.lines);
    t.lines <- bigger
  end;
  if t.nregions = Array.length t.regions then begin
    let bigger = Array.make (2 * t.nregions) t.regions.(0) in
    Array.blit t.regions 0 bigger 0 t.nregions;
    t.regions <- bigger
  end;
  t.regions.(t.nregions) <- { base; nlines = lines; pol };
  t.nregions <- t.nregions + 1;
  base

let region_of t addr =
  (* Regions have strictly increasing bases: binary search. *)
  let lo = ref 0 and hi = ref (t.nregions - 1) in
  let found = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let r = t.regions.(mid) in
    if addr < r.base then hi := mid - 1
    else if addr >= r.base + r.nlines then lo := mid + 1
    else begin
      found := Some r;
      lo := !hi + 1
    end
  done;
  match !found with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Machine: access to unallocated address %d" addr)

let compute_home t addr =
  let r = region_of t addr in
  match r.pol with
  | On_node n ->
      assert (n >= 0 && n < t.cfg.topo.Topology.sockets);
      n
  | Interleave -> (addr - r.base) mod t.cfg.topo.Topology.sockets

let line_of t addr =
  if addr < 0 || addr >= t.next_addr then
    invalid_arg (Printf.sprintf "Machine: access to unallocated address %d" addr);
  let l = t.lines.(addr) in
  if l != no_line then l
  else begin
    let l =
      {
        home = compute_home t addr;
        owner = -1;
        sharers = Bitset.create (Topology.ncores t.cfg.topo);
        wbusy = 0;
        dirty = false;
      }
    in
    t.lines.(addr) <- l;
    l
  end

let home_of t addr = (line_of t addr).home

(* A line falling out of a private cache loses its coherence permissions:
   dirty data is considered written back to the socket LLC. *)
let priv_insert t core addr =
  match Cachebox.add t.priv.(core) addr with
  | None -> ()
  | Some victim ->
      let l = t.lines.(victim) in
      if l != no_line then begin
        Bitset.remove l.sharers core;
        if l.owner = core then l.owner <- -1
      end

let line_bytes = 64

(* An LLC eviction of a modified line streams it back to the DRAM of its
   home node — memory-controller bytes, plus interconnect bytes when the
   evicting socket is not the home. Write-backs are posted (they do not
   delay the access that caused the eviction) but they drain the same
   token buckets, so later fills queue behind them. Only exists when
   bandwidth modeling is on: with [bw:0] the eviction is free, as it
   always was. *)
let llc_insert t ~now sock addr =
  match Cachebox.add t.llc.(sock) addr with
  | None -> ()
  | Some victim -> (
      match t.bw with
      | None -> ()
      | Some st ->
          let l = t.lines.(victim) in
          if l != no_line && l.dirty then begin
            l.dirty <- false;
            Stats.incr t.stats "bw_writebacks";
            ignore (Bwbucket.charge st.mc.(l.home) ~now ~bytes:line_bytes);
            if l.home <> sock then
              ignore
                (Bwbucket.charge
                   st.link.(Topology.link_index t.cfg.topo ~src:sock ~dst:l.home)
                   ~now ~bytes:line_bytes)
          end)

(* First other socket whose LLC holds the line, or -1: the transfer
   source for a cross-socket LLC hit. *)
let llc_socket_elsewhere t sock addr =
  let found = ref (-1) in
  for s = 0 to Array.length t.llc - 1 do
    if s <> sock && !found < 0 && Cachebox.mem t.llc.(s) addr then found := s
  done;
  !found

let fetch_cost t line ~core ~sock ~addr =
  let c = t.cfg.costs in
  let topo = t.cfg.topo in
  if line.owner >= 0 && line.owner <> core then begin
    let owner_sock = Topology.socket_of_core topo line.owner in
    if owner_sock = sock then (c.Costs.llc_hit, `Local_transfer)
    else (c.Costs.llc_remote, `Remote owner_sock)
  end
  else if Cachebox.mem t.llc.(sock) addr then (c.Costs.llc_hit, `Llc)
  else begin
    let src = llc_socket_elsewhere t sock addr in
    if src >= 0 then (c.Costs.llc_remote, `Remote src)
    else if line.home = sock then (c.Costs.dram_local, `Dram)
    else (c.Costs.dram_remote, `Remote_dram)
  end

let count_fetch t = function
  | `Local_transfer | `Llc -> Stats.incr t.stats "llc_hits"
  | `Remote _ ->
      Stats.incr t.stats "llc_misses";
      Stats.incr t.stats "remote_misses"
  | `Dram -> Stats.incr t.stats "llc_misses"
  | `Remote_dram ->
      Stats.incr t.stats "llc_misses";
      Stats.incr t.stats "remote_misses"

(* Charge the bytes a fetch moves against the buckets they traverse:
   DRAM fills hit the home node's memory controller, cross-socket
   transfers hit the link from the source socket, remote DRAM fills hit
   both (overlapped, so the delay is the max). Returns the queueing delay
   and accumulates it in [last_delay] for {!access_mlp}. *)
let bw_fill t ~now ~sock line src =
  match t.bw with
  | None -> 0
  | Some st ->
      let topo = t.cfg.topo in
      let charge_mc node =
        let d = Bwbucket.charge st.mc.(node) ~now ~bytes:line_bytes in
        if d > 0 then Stats.incr t.stats "bw_mc_queueing";
        d
      in
      let charge_link ~src ~dst =
        let d =
          Bwbucket.charge st.link.(Topology.link_index topo ~src ~dst) ~now ~bytes:line_bytes
        in
        if d > 0 then Stats.incr t.stats "bw_link_queueing";
        d
      in
      let d =
        match src with
        | `Dram -> charge_mc line.home
        | `Remote_dram -> max (charge_mc line.home) (charge_link ~src:line.home ~dst:sock)
        | `Remote src_sock -> charge_link ~src:src_sock ~dst:sock
        | `Local_transfer | `Llc | `Upgrade -> 0
      in
      st.last_delay <- st.last_delay + d;
      d

let invalidation_cost t line ~core ~sock =
  let c = t.cfg.costs in
  let topo = t.cfg.topo in
  let remote = ref false and local = ref false in
  Bitset.iter
    (fun s ->
      if s <> core && s <> line.owner then
        if Topology.socket_of_core topo s = sock then local := true else remote := true)
    line.sharers;
  if !remote then c.Costs.inval_remote else if !local then c.Costs.inval_local else 0

let do_invalidate t line ~core ~sock ~addr =
  Bitset.iter (fun s -> if s <> core then Cachebox.remove t.priv.(s) addr) line.sharers;
  if line.owner >= 0 && line.owner <> core then Cachebox.remove t.priv.(line.owner) addr;
  for s = 0 to Array.length t.llc - 1 do
    if s <> sock then Cachebox.remove t.llc.(s) addr
  done;
  Bitset.clear line.sharers;
  Bitset.add line.sharers core;
  line.owner <- core;
  line.dirty <- true

(* A node's memory controller streams one line every few cycles; fetches
   that reach DRAM queue behind it. A working set homed on one node (the
   default "node local" policy of Table 2) therefore saturates that node,
   while interleaving spreads the load — exactly the paper's observation. *)
let dram_service_cycles = 6

let dram_queue t ~now node =
  let queue = max 0 (t.dram_busy.(node) - now) in
  t.dram_busy.(node) <- max now t.dram_busy.(node) + dram_service_cycles;
  if queue > 0 then Stats.incr t.stats "dram_queueing";
  queue

(* Address translation: the page walk reads page tables homed where the
   page lives, so pointer chases over big remote working sets pay remote
   walks — part of the NUMA penalty DPS's partitioning removes. *)
let tlb_cost t ~core ~sock line addr =
  let page = addr lsr 6 in
  if Cachebox.mem t.tlb.(core) page then 0
  else begin
    Stats.incr t.stats "tlb_misses";
    ignore (Cachebox.add t.tlb.(core) page);
    if line.home = sock then t.cfg.costs.Costs.walk_local else t.cfg.costs.Costs.walk_remote
  end

let access_slow t ~now ~core ~addr ~kind =
  let topo = t.cfg.topo in
  let sock = Topology.socket_of_core topo core in
  let line = line_of t addr in
  let c = t.cfg.costs in
  Stats.incr t.stats "accesses";
  let translation = tlb_cost t ~core ~sock line addr in
  let present = Cachebox.mem t.priv.(core) addr in
  match kind with
  | Read ->
      if present && (line.owner = core || Bitset.mem line.sharers core) then begin
        Stats.incr t.stats "priv_hits";
        translation + c.Costs.priv_hit
      end
      else begin
        let cost, src = fetch_cost t line ~core ~sock ~addr in
        count_fetch t src;
        let bw =
          match t.bw with
          | None -> (
              match src with `Dram | `Remote_dram -> dram_queue t ~now line.home | _ -> 0)
          | Some _ -> bw_fill t ~now ~sock line src
        in
        if line.owner >= 0 && line.owner <> core then begin
          (* Dirty remote copy becomes shared. *)
          Bitset.add line.sharers line.owner;
          line.owner <- -1
        end;
        Bitset.add line.sharers core;
        priv_insert t core addr;
        llc_insert t ~now sock addr;
        if bw > 0 && Dps_obs.Obs.profiling_on () then begin
          match t.bw with
          | None -> Dps_obs.Obs.note_stall bw
          | Some _ -> Dps_obs.Obs.note_bw_stall bw
        end;
        translation + bw + cost
      end
  | Write | Rmw ->
      let extra = if kind = Rmw then c.Costs.rmw_extra else 0 in
      if present && line.owner = core then begin
        Stats.incr t.stats "priv_hits";
        translation + c.Costs.priv_hit + extra
      end
      else begin
        let fetch, src =
          if present && Bitset.mem line.sharers core then (c.Costs.priv_hit, `Upgrade)
          else fetch_cost t line ~core ~sock ~addr
        in
        (match src with
        | `Upgrade -> Stats.incr t.stats "priv_hits"
        | (`Local_transfer | `Llc | `Remote _ | `Dram | `Remote_dram) as s -> count_fetch t s);
        let bw =
          match t.bw with
          | None -> (
              match src with `Dram | `Remote_dram -> dram_queue t ~now line.home | _ -> 0)
          | Some _ -> bw_fill t ~now ~sock line src
        in
        let inval = invalidation_cost t line ~core ~sock in
        if inval > 0 then Stats.incr t.stats "invalidations";
        do_invalidate t line ~core ~sock ~addr;
        priv_insert t core addr;
        llc_insert t ~now sock addr;
        (* Ownership transfers of one line serialize: queue behind any
           transfer still in flight. *)
        let transfer = fetch + inval + extra in
        let queue = max 0 (line.wbusy - now) in
        if queue > 0 then Stats.incr t.stats "write_queueing";
        line.wbusy <- max now line.wbusy + transfer;
        if Dps_obs.Obs.profiling_on () then begin
          match t.bw with
          | None -> if bw + queue > 0 then Dps_obs.Obs.note_stall (bw + queue)
          | Some _ ->
              if queue > 0 then Dps_obs.Obs.note_stall queue;
              if bw > 0 then Dps_obs.Obs.note_bw_stall bw
        end;
        translation + bw + queue + transfer
      end

let access t ~now ~thread ~addr ~kind =
  let core = Topology.core_of_thread t.cfg.topo thread in
  (* Host-speed fast path for the overwhelmingly common case: a read of a
     line already in this core's private cache with a warm TLB entry.
     Presence in the private box implies the core is a sharer or the owner
     (inserts always follow a share/invalidate that sets the bit; evictions
     and invalidations drop the box entry and the bit together), so the
     slow path would charge exactly [priv_hit] with translation 0 and
     mutate nothing. Both [Cachebox.mem] calls are pure, so stats, costs
     and the eviction PRNG stream are untouched — benchmark output is
     bit-identical, only host time changes. *)
  if kind = Read && Cachebox.mem t.priv.(core) addr && Cachebox.mem t.tlb.(core) (addr lsr 6)
  then begin
    Stats.incr t.stats "accesses";
    Stats.incr t.stats "priv_hits";
    t.cfg.costs.Costs.priv_hit
  end
  else access_slow t ~now ~core ~addr ~kind

(* Pipelined access for streaming code (memory-level parallelism): the
   latency portion divides by [factor], but the bandwidth-bucket portion
   does not — overlapping requests hides latency, it cannot create
   bytes-per-cycle. With bandwidth off this is exactly the historical
   [max 1 (cost / factor)]. *)
let access_mlp t ~now ~thread ~addr ~kind ~factor =
  match t.bw with
  | None -> max 1 (access t ~now ~thread ~addr ~kind / factor)
  | Some st ->
      st.last_delay <- 0;
      let cost = access t ~now ~thread ~addr ~kind in
      let bwd = min st.last_delay cost in
      max 1 ((cost - bwd) / factor) + bwd

(* NIC DDIO traffic: packet payload streamed by a DMA engine drains the
   socket's memory-controller bucket like any other memory traffic, so
   network and application bandwidth honestly contend. Returns the
   queueing delay; 0 (and no accounting) when bandwidth modeling is off. *)
let bw_charge_dma t ~now ~socket ~bytes =
  match t.bw with
  | None -> 0
  | Some st ->
      let d = Bwbucket.charge st.mc.(socket) ~now ~bytes in
      Stats.add t.stats "bw_dma_bytes" bytes;
      if d > 0 then Stats.incr t.stats "bw_mc_queueing";
      d

let bw_enabled t = t.bw <> None

type bw_snapshot = {
  mc_bytes : int array;  (* per socket *)
  mc_queue_cycles : int array;
  link_bytes : int array array;  (* [src].(dst); diagonal 0 *)
  link_queue_cycles : int array array;
  writebacks : int;
}

let bw_snapshot t =
  match t.bw with
  | None -> None
  | Some st ->
      let topo = t.cfg.topo in
      let n = topo.Topology.sockets in
      let link_bytes = Array.make_matrix n n 0 in
      let link_queue_cycles = Array.make_matrix n n 0 in
      Array.iteri
        (fun i b ->
          let src, dst = Topology.link_ends topo i in
          link_bytes.(src).(dst) <- Bwbucket.bytes b;
          link_queue_cycles.(src).(dst) <- Bwbucket.queue_cycles b)
        st.link;
      Some
        {
          mc_bytes = Array.map Bwbucket.bytes st.mc;
          mc_queue_cycles = Array.map Bwbucket.queue_cycles st.mc;
          link_bytes;
          link_queue_cycles;
          writebacks = Stats.get t.stats "bw_writebacks";
        }

let interconnect_bytes t =
  match t.bw with
  | None -> 0
  | Some st -> Array.fold_left (fun acc b -> acc + Bwbucket.bytes b) 0 st.link

let set_active t ~thread v = t.active.(thread) <- v

let work_cost t ~thread n =
  match Topology.sibling_of_thread t.cfg.topo thread with
  | Some sib when t.active.(sib) -> n * 8 / 5
  | Some _ | None -> n

let cycles_to_seconds t cycles = float_of_int cycles /. (t.cfg.topo.Topology.ghz *. 1e9)

let register_obs t reg =
  let counters =
    [
      "accesses";
      "priv_hits";
      "llc_hits";
      "llc_misses";
      "remote_misses";
      "invalidations";
      "tlb_misses";
      "dram_queueing";
      "write_queueing";
    ]
  in
  List.iter
    (fun name ->
      Dps_obs.Registry.gauge_fn reg ~help:("machine model counter " ^ name)
        ("machine." ^ name)
        (fun () -> float_of_int (Stats.get t.stats name)))
    counters;
  match t.bw with
  | None -> ()
  | Some st ->
      List.iter
        (fun name ->
          Dps_obs.Registry.gauge_fn reg ~help:("machine model counter " ^ name)
            ("machine." ^ name)
            (fun () -> float_of_int (Stats.get t.stats name)))
        [ "bw_mc_queueing"; "bw_link_queueing"; "bw_writebacks"; "bw_dma_bytes" ];
      Array.iteri
        (fun s b ->
          let labels = [ ("socket", string_of_int s) ] in
          Dps_obs.Registry.gauge_fn reg ~labels ~help:"memory-controller bytes charged"
            "machine.bw_mc_bytes"
            (fun () -> float_of_int (Bwbucket.bytes b));
          Dps_obs.Registry.gauge_fn reg ~labels ~help:"cycles spent queued on the memory controller"
            "machine.bw_mc_queue_cycles"
            (fun () -> float_of_int (Bwbucket.queue_cycles b));
          Dps_obs.Registry.gauge_fn reg ~labels
            ~help:"memory-controller occupancy, 0 (idle) to 1 (token debt)"
            "machine.bw_mc_occupancy"
            (fun () ->
              let tokens = float_of_int (Bwbucket.tokens b) in
              let burst = float_of_int (Bwbucket.burst b) in
              Float.max 0. (Float.min 1. (1. -. (tokens /. burst)))))
        st.mc;
      Array.iteri
        (fun i b ->
          let src, dst = Topology.link_ends t.cfg.topo i in
          let labels = [ ("src", string_of_int src); ("dst", string_of_int dst) ] in
          Dps_obs.Registry.gauge_fn reg ~labels ~help:"interconnect-link bytes charged"
            "machine.bw_link_bytes"
            (fun () -> float_of_int (Bwbucket.bytes b));
          Dps_obs.Registry.gauge_fn reg ~labels ~help:"cycles spent queued on the link"
            "machine.bw_link_queue_cycles"
            (fun () -> float_of_int (Bwbucket.queue_cycles b)))
        st.link

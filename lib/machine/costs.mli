(** Cycle costs of the memory system.

    The defaults approximate the paper's Xeon E7-4850: cheap private-cache
    hits, a local-LLC hit an order of magnitude dearer, and cross-socket
    transfers / remote DRAM several times dearer again. The relative order
    (priv < llc < dram_local < llc_remote ~ dram_remote) is what produces
    the paper's scalability shapes. *)

type bw = {
  mc_bytes_per_cycle : int;  (** per-socket memory-controller rate *)
  link_bytes_per_cycle : int;  (** per interconnect link direction *)
  mc_burst : int;  (** memory-controller token capacity, bytes *)
  link_burst : int;  (** link token capacity, bytes *)
}
(** Token-bucket bandwidth ceilings (see [Bwbucket]). A zero
    [mc_bytes_per_cycle] disables bandwidth modeling entirely: no buckets
    are created and every charge is exactly what it was before the model
    existed. *)

type t = {
  priv_hit : int;  (** L1/L2 blend *)
  llc_hit : int;  (** local-socket LLC hit *)
  llc_remote : int;  (** cache-to-cache transfer from a remote socket *)
  dram_local : int;
  dram_remote : int;
  inval_local : int;  (** invalidating sharers confined to this socket *)
  inval_remote : int;  (** invalidating at least one remote-socket sharer *)
  rmw_extra : int;  (** added by atomic read-modify-writes *)
  walk_local : int;  (** TLB-miss page walk, page homed locally *)
  walk_remote : int;  (** page walk against a remote node's page tables *)
  bw : bw;  (** bandwidth ceilings; [bw_off] in {!default} *)
}

val default : t
(** Latency costs of the paper's machine, bandwidth modeling off. *)

val bw_off : bw
(** Bandwidth modeling disabled ([bw:0]) — the default; charge-for-charge
    identical to the pre-bandwidth-model machine. *)

val bw_default : bw
(** Ceilings calibrated by [bench/fig_stream]: 28 B/cycle per socket
    memory controller (56 GB/s at 2 GHz), 6 B/cycle per interconnect link
    direction (12 GB/s), bursts of a few KB. *)

val bw_unlimited : bw
(** Buckets so large every charge sees zero queueing delay while the byte
    counters still run (the bytes-per-op A/B's configuration). Unlike
    {!bw_off} this still replaces the DRAM service-queue seam with the
    buckets, so charges are close to — not bit-identical to — the
    bandwidth-off machine. *)

type bw = {
  mc_bytes_per_cycle : int;
  link_bytes_per_cycle : int;
  mc_burst : int;
  link_burst : int;
}

type t = {
  priv_hit : int;
  llc_hit : int;
  llc_remote : int;
  dram_local : int;
  dram_remote : int;
  inval_local : int;
  inval_remote : int;
  rmw_extra : int;
  walk_local : int;
  walk_remote : int;
  bw : bw;
}

(* Bandwidth modeling disabled: the machine charges per-access latency
   only, exactly as before the bandwidth model existed ([bw:0]). *)
let bw_off = { mc_bytes_per_cycle = 0; link_bytes_per_cycle = 0; mc_burst = 0; link_burst = 0 }

(* Calibrated by the STREAM figure (bench/fig_stream.ml): at 2 GHz,
   28 B/cycle per socket is 56 GB/s of memory-controller bandwidth and
   6 B/cycle per link direction is 12 GB/s of interconnect. With the
   figure's factor-16 streaming kernels a single local core demands about
   a third of its memory controller while a remote core demands half its
   inbound link, so the remote sweep knees a core earlier and plateaus at
   roughly a third of the local ceiling — the classic STREAM/NUMA shape.
   Bursts of a few KB let short transfer trains through un-queued. *)
let bw_default =
  { mc_bytes_per_cycle = 28; link_bytes_per_cycle = 6; mc_burst = 8192; link_burst = 4096 }

(* Effectively infinite bandwidth: every transfer is admitted with zero
   queueing delay while the byte counters still run — the configuration
   of the bytes-per-op A/B in bench/fig_stream. Not charge-identical to
   [bw_off]: enabling buckets replaces the DRAM service-queue seam, so
   an access that would have queued behind a busy controller no longer
   does. *)
let bw_unlimited =
  {
    mc_bytes_per_cycle = 1 lsl 40;
    link_bytes_per_cycle = 1 lsl 40;
    mc_burst = 1 lsl 50;
    link_burst = 1 lsl 50;
  }

let default =
  {
    priv_hit = 6;
    llc_hit = 44;
    llc_remote = 220;
    dram_local = 150;
    dram_remote = 320;
    inval_local = 44;
    inval_remote = 180;
    rmw_extra = 18;
    walk_local = 90;
    walk_remote = 200;
    bw = bw_off;
  }

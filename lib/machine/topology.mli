(** Machine topology and the paper's thread-placement rule.

    Hardware threads are numbered so that the two hyperthreads of a physical
    core are adjacent: [hw = (socket * cores_per_socket + core) * 2 + ht].
    The evaluation machine in the paper is [default]: 4 sockets x 10 cores
    x 2 hyperthreads at 2 GHz. *)

type t = {
  sockets : int;
  cores_per_socket : int;
  threads_per_core : int;
  ghz : float;  (** clock, used only to convert cycles to seconds *)
}

val default : t
(** The paper's 4x10x2 Xeon E7-4850 box. *)

val small : t
(** A 2x4x2 machine for fast tests. *)

val nthreads : t -> int
val ncores : t -> int
val socket_of_thread : t -> int -> int
val core_of_thread : t -> int -> int
(** Physical core id in [0, ncores). *)

val sibling_of_thread : t -> int -> int option
(** The other hyperthread on the same physical core, if any. *)

val socket_of_core : t -> int -> int

val nlinks : t -> int
(** Number of interconnect link directions: [sockets * (sockets - 1)],
    one per ordered socket pair — each direction of each point-to-point
    link is its own bandwidth resource. *)

val link_index : t -> src:int -> dst:int -> int
(** Dense index of the [src -> dst] link direction in [0, nlinks);
    [src <> dst]. *)

val link_ends : t -> int -> int * int
(** Inverse of {!link_index}: [(src, dst)] of a link index. *)

val placement : t -> n:int -> int array
(** [placement t ~n] is the paper's allocation rule: a minimal number of
    sockets with a single hyperthread per core; once every core has one
    hyperthread, add second hyperthreads across a minimal number of sockets.
    Element [i] is the hardware-thread id of logical thread [i]. *)

val localities : t -> placed:int array -> size:int -> int array array
(** Group placed threads into consecutive localities of [size] hardware
    threads (the last may be smaller). With the paper's placement each
    locality lives within one socket. *)

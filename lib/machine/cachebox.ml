module Prng = Dps_simcore.Prng
module Itbl = Dps_simcore.Itbl

(* The slot array and index grow on demand: an LLC box is sized for hundreds
   of thousands of lines, but most simulations touch far fewer, and machines
   are created freely in tests. The addr -> slot index is an open-addressing
   int table (Itbl): membership tests dominate the simulator profile, and
   the stdlib Hashtbl paid a bucket allocation per insert plus polymorphic
   hashing per probe. Replacement decisions (slot order, PRNG draws) are
   bit-identical to the Hashtbl implementation — only lookup cost changed. *)
type t = {
  mutable slots : int array;
  index : Itbl.t;  (* addr -> slot *)
  capacity : int;
  mutable size : int;
  prng : Prng.t;
}

let create ~capacity prng =
  assert (capacity > 0);
  let initial = min capacity 256 in
  {
    slots = Array.make initial (-1);
    index = Itbl.create ~capacity:(2 * initial) ();
    capacity;
    size = 0;
    prng;
  }

let capacity t = t.capacity
let size t = t.size
let mem t addr = Itbl.mem t.index addr

let remove_slot t slot =
  let addr = t.slots.(slot) in
  Itbl.remove t.index addr;
  let last = t.size - 1 in
  if slot <> last then begin
    let moved = t.slots.(last) in
    t.slots.(slot) <- moved;
    Itbl.set t.index moved slot
  end;
  t.slots.(last) <- -1;
  t.size <- last

let remove t addr =
  match Itbl.find_opt t.index addr with
  | None -> ()
  | Some slot -> remove_slot t slot

let grow t =
  let bigger = Array.make (min t.capacity (2 * Array.length t.slots)) (-1) in
  Array.blit t.slots 0 bigger 0 t.size;
  t.slots <- bigger

let add t addr =
  if Itbl.mem t.index addr then None
  else begin
    let victim =
      if t.size = t.capacity then begin
        let slot = Prng.int t.prng t.size in
        let v = t.slots.(slot) in
        remove_slot t slot;
        Some v
      end
      else begin
        if t.size = Array.length t.slots then grow t;
        None
      end
    in
    t.slots.(t.size) <- addr;
    Itbl.set t.index addr t.size;
    t.size <- t.size + 1;
    victim
  end

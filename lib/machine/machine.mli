(** The simulated NUMA machine: cache hierarchy, coherence and cycle costs.

    Addresses are abstract cache-line numbers handed out by {!alloc}. Every
    simulated memory access goes through {!access}, which consults a
    MESI-style line directory plus per-core private caches and per-socket
    LLCs, charges a cycle cost, and updates the model. This is where all of
    the paper's mechanisms live: coherence invalidations caused by stores,
    capacity misses past LLC size, and the local/remote NUMA cost gap. *)

type kind = Read | Write | Rmw

type policy =
  | On_node of int  (** all lines homed on one NUMA node *)
  | Interleave  (** lines striped round-robin across nodes *)

type config = {
  topo : Topology.t;
  costs : Costs.t;
  priv_lines : int;  (** private (L1+L2) capacity per physical core, in lines *)
  llc_lines : int;  (** LLC capacity per socket, in lines *)
  tlb_entries : int;  (** TLB reach per core, in 4 KB (64-line) pages *)
}

val config_default : config
(** The paper's machine: 256 KB private per core, 24 MB LLC per socket,
    64 B lines — scaled only in the test topology. *)

val config_scaled : ?factor:int -> unit -> config
(** The default machine with both cache capacities divided by [factor]
    (default 16). Benchmarks shrink caches and working sets together so the
    capacity knees land at the same relative spot with less simulation work. *)

type t

val create : ?seed:int64 -> config -> t
val topology : t -> Topology.t
val config : t -> config

val alloc : t -> policy -> lines:int -> int
(** Allocate a region of [lines] cache lines; returns the base address.
    Line metadata is materialised lazily, so huge sparse regions are cheap. *)

val access : t -> now:int -> thread:int -> addr:int -> kind:kind -> int
(** [access t ~now ~thread ~addr ~kind] performs one access by hardware
    thread [thread] at simulated time [now] and returns its cost in cycles.
    Write/RMW misses to the same line serialize (ownership moves between
    caches one transfer at a time), so a second writer arriving while a
    transfer is in flight additionally pays the queueing delay — the hot
    cache-line collapse of §2. Reads of a shared line serve in parallel. *)

val access_mlp : t -> now:int -> thread:int -> addr:int -> kind:kind -> factor:int -> int
(** Pipelined access for streaming code: like {!access} but the latency
    portion of the cost divides by [factor] (memory-level parallelism
    hides latency behind outstanding requests) while any bandwidth
    queueing delay does not — overlap cannot create bytes-per-cycle.
    With bandwidth modeling off this is exactly
    [max 1 (access ... / factor)]. *)

val bw_charge_dma : t -> now:int -> socket:int -> bytes:int -> int
(** Charge NIC DDIO DMA traffic against [socket]'s memory-controller
    bucket; returns the queueing delay in cycles. 0, with no accounting,
    when bandwidth modeling is off. *)

val bw_enabled : t -> bool
(** Whether the config's {!Costs.bw} enabled the token buckets. *)

type bw_snapshot = {
  mc_bytes : int array;  (** bytes charged per socket memory controller *)
  mc_queue_cycles : int array;  (** queueing delay accumulated per socket *)
  link_bytes : int array array;  (** [link_bytes.(src).(dst)]; diagonal 0 *)
  link_queue_cycles : int array array;
  writebacks : int;  (** dirty LLC evictions streamed back to DRAM *)
}

val bw_snapshot : t -> bw_snapshot option
(** Point-in-time bandwidth accounting; [None] when modeling is off. *)

val interconnect_bytes : t -> int
(** Total bytes charged across every interconnect link direction — the
    delegation-vs-ffwd A/B's bytes/op numerator. 0 when modeling is off. *)

val work_cost : t -> thread:int -> int -> int
(** Compute-cycle cost adjusted for hyperthread sharing: if the sibling
    hardware thread is active the pipeline is shared and the cost dilates. *)

val set_active : t -> thread:int -> bool -> unit
val home_of : t -> int -> int
(** NUMA node a line is homed on (for tests). *)

val stats : t -> Dps_simcore.Stats.t
(** Counters: ["accesses"], ["priv_hits"], ["llc_hits"], ["llc_misses"]
    (served by DRAM or another socket), ["remote_misses"] (cross-socket
    only), ["invalidations"]; with bandwidth modeling on, also
    ["bw_mc_queueing"], ["bw_link_queueing"], ["bw_writebacks"] and
    ["bw_dma_bytes"]. *)

val cycles_to_seconds : t -> int -> float

val register_obs : t -> Dps_obs.Registry.t -> unit
(** Publish the {!stats} counters as sampled gauges named
    [machine.<counter>] in an observability registry. With bandwidth
    modeling on, also publishes per-socket memory-controller gauges
    ([machine.bw_mc_bytes{socket=s}], [machine.bw_mc_queue_cycles{socket=s}],
    [machine.bw_mc_occupancy{socket=s}]) and per-link gauges
    ([machine.bw_link_bytes{src=a,dst=b}],
    [machine.bw_link_queue_cycles{src=a,dst=b}]). *)

(* Deterministic token bucket for bandwidth accounting, in simulated
   cycles. [tokens] may go negative: a charge that overdraws the bucket is
   admitted immediately but reports the queueing delay until the refill
   stream would have paid the debt back — so back-to-back charges at the
   same instant see monotonically growing delays, which is exactly the
   queueing behaviour of a saturated memory controller or link. Refill is
   computed lazily from the elapsed simulated time (no periodic events),
   capped at [burst]. *)

type t = {
  rate : int;  (* bytes per cycle *)
  burst : int;  (* token capacity, bytes *)
  mutable tokens : int;
  mutable last : int;  (* simulated time of the last refill *)
  mutable bytes : int;  (* cumulative bytes charged *)
  mutable queue_cycles : int;  (* cumulative queueing delay handed out *)
  mutable queue_events : int;  (* charges that hit an empty bucket *)
}

let create ~rate ~burst =
  if rate <= 0 || burst <= 0 then invalid_arg "Bwbucket.create: rate and burst must be positive";
  { rate; burst; tokens = burst; last = 0; bytes = 0; queue_cycles = 0; queue_events = 0 }

let rate t = t.rate
let burst t = t.burst
let tokens t = t.tokens
let bytes t = t.bytes
let queue_cycles t = t.queue_cycles
let queue_events t = t.queue_events

let refill t ~now =
  if now > t.last then begin
    (* guard the refill product against overflow (huge idle gap x high
       rate) by saturating via division first *)
    let dt = now - t.last in
    let gain = if dt > max_int / t.rate then max_int else dt * t.rate in
    t.tokens <- (if gain >= t.burst - t.tokens then t.burst else t.tokens + gain);
    t.last <- now
  end

(* Charge [bytes] at simulated time [now]; returns the queueing delay in
   cycles (0 when the bucket still had tokens). *)
let charge t ~now ~bytes =
  refill t ~now;
  t.tokens <- t.tokens - bytes;
  t.bytes <- t.bytes + bytes;
  if t.tokens >= 0 then 0
  else begin
    let d = (-t.tokens + t.rate - 1) / t.rate in
    t.queue_cycles <- t.queue_cycles + d;
    t.queue_events <- t.queue_events + 1;
    d
  end

(** Deterministic token bucket for bandwidth ceilings, in simulated cycles.

    One bucket stands for one finite-bandwidth resource — a socket's
    memory controller or one direction of an interconnect link. Tokens are
    bytes; they refill lazily at [rate] bytes per simulated cycle (capped
    at [burst]) and every line transfer {!charge}s its bytes. A charge
    that overdraws the bucket is admitted but reports the queueing delay
    until the refill stream pays the debt back, so concurrent transfers
    through a saturated resource see monotonically growing delays — the
    saturation knee of the STREAM calibration figure ([bench/fig_stream]).

    Purely arithmetic and allocation-free after {!create}; determinism
    follows from the simulated clock being the only time source. *)

type t

val create : rate:int -> burst:int -> t
(** [create ~rate ~burst] starts full. Both must be positive; a zero rate
    means "bandwidth modeling off" and is represented by the {e absence}
    of buckets (see [Costs.bw_off]), never by a bucket. *)

val charge : t -> now:int -> bytes:int -> int
(** [charge t ~now ~bytes] consumes [bytes] tokens at simulated time
    [now] (monotone across calls) and returns the queueing delay in
    cycles: 0 while tokens last, otherwise the time until the bucket
    refills back to zero debt. *)

val rate : t -> int
val burst : t -> int

val tokens : t -> int
(** Current token balance; negative while in debt. *)

val bytes : t -> int
(** Cumulative bytes charged. *)

val queue_cycles : t -> int
(** Cumulative queueing delay handed out. *)

val queue_events : t -> int
(** Number of charges that found the bucket empty. *)

type t = {
  sockets : int;
  cores_per_socket : int;
  threads_per_core : int;
  ghz : float;
}

let default = { sockets = 4; cores_per_socket = 10; threads_per_core = 2; ghz = 2.0 }
let small = { sockets = 2; cores_per_socket = 4; threads_per_core = 2; ghz = 2.0 }

let ncores t = t.sockets * t.cores_per_socket
let nthreads t = ncores t * t.threads_per_core

let core_of_thread t hw = hw / t.threads_per_core
let socket_of_core t core = core / t.cores_per_socket
let socket_of_thread t hw = socket_of_core t (core_of_thread t hw)

let sibling_of_thread t hw =
  if t.threads_per_core < 2 then None
  else
    let ht = hw mod t.threads_per_core in
    if ht = 0 then Some (hw + 1) else Some (hw - 1)

(* Interconnect links are the ordered socket pairs (src <> dst): each
   direction of each point-to-point link is its own bandwidth resource. *)
let nlinks t = t.sockets * (t.sockets - 1)

let link_index t ~src ~dst =
  assert (src <> dst && src >= 0 && dst >= 0 && src < t.sockets && dst < t.sockets);
  (src * (t.sockets - 1)) + if dst > src then dst - 1 else dst

let link_ends t i =
  assert (i >= 0 && i < nlinks t);
  let src = i / (t.sockets - 1) in
  let d = i mod (t.sockets - 1) in
  let dst = if d >= src then d + 1 else d in
  (src, dst)

let hw_id t ~socket ~core ~ht =
  (((socket * t.cores_per_socket) + core) * t.threads_per_core) + ht

let placement t ~n =
  assert (n >= 1 && n <= nthreads t);
  let result = Array.make n 0 in
  let cores = ncores t in
  for i = 0 to n - 1 do
    let ht = i / cores in
    let flat = i mod cores in
    let socket = flat / t.cores_per_socket and core = flat mod t.cores_per_socket in
    result.(i) <- hw_id t ~socket ~core ~ht
  done;
  result

let localities _t ~placed ~size =
  assert (size >= 1);
  let n = Array.length placed in
  let groups = (n + size - 1) / size in
  Array.init groups (fun g ->
      let lo = g * size in
      let hi = min n (lo + size) in
      Array.sub placed lo (hi - lo))

module Sthread = Dps_sthread.Sthread
module Machine = Dps_machine.Machine
module Topology = Dps_machine.Topology
module Net = Dps_net.Net
module Server = Dps_server.Server
module Variants = Dps_memcached.Variants
module Netload = Dps_workload.Netload
module Faults = Dps_faults
module Obs = Dps_obs.Obs

type backend_kind = Dps_mc | Dps_parsec

type config = {
  nnodes : int;
  npollers : int;  (** per node; also the node's DPS client count *)
  locality_size : int;
  vnodes : int;
  buckets : int;  (** per node *)
  capacity : int;  (** per node *)
  batch : int;
  backend : backend_kind;
  probe_interval : int;
  server : Server.config;  (** template; npollers/acceptor placement overridden *)
  net : Net.config;  (** per-node network front-end template *)
}

let default_config =
  {
    nnodes = 4;
    npollers = 8;
    locality_size = 4;
    vnodes = 64;
    buckets = 4096;
    capacity = 1 lsl 16;
    batch = 4;
    backend = Dps_mc;
    probe_interval = 25_000;
    server = { Server.default_config with max_conns = 512; shed_threshold = 24 };
    net = Net.default_config;
  }

type node = {
  id : int;
  socket : int;
  net : Net.t;
  server : Server.t;
  backend : Variants.t;
  mutable up : bool;
  mutable died_at : int;  (** simulated time the probe declared it dead; -1 *)
}

type t = {
  sched : Sthread.t;
  cfg : config;
  ring : Ring.t;
  nodes : node array;
  mutable down_subs : (int -> unit) list;
  mutable stopped : bool;
  mutable failover_log : (int * int) list;  (** (node, declared-dead time), newest first *)
}

(* Per-node placement: node [id] owns a slice of one socket. Pollers take
   the first hyperthread of [npollers] consecutive cores (nodes stacked on
   the same socket take the next slice); the acceptor takes the second
   hyperthread of the node's last core, so co-hosted nodes never collide
   and the paper's placement invariant (delegation stays socket-local)
   holds per node. *)
let node_placement topo ~nnodes ~npollers id =
  let sockets = topo.Topology.sockets in
  let cps = topo.Topology.cores_per_socket in
  let tpc = topo.Topology.threads_per_core in
  let socket = id mod sockets in
  let layer = id / sockets in
  if npollers > cps then
    invalid_arg "Cluster: npollers per node exceeds cores per socket";
  if (layer + 1) * npollers > cps && nnodes > sockets then
    invalid_arg "Cluster: too many nodes for this topology";
  let core j = (layer * npollers) + j in
  let pollers = Array.init npollers (fun j -> ((socket * cps) + core j) * tpc) in
  let acceptor = ((((socket * cps) + core (npollers - 1)) * tpc) + min 1 (tpc - 1)) in
  (socket, pollers, acceptor)

let mk_backend sched (cfg : config) ~placement ~on_apply =
  let mk =
    match cfg.backend with
    | Dps_mc -> Variants.dps_mc
    | Dps_parsec -> Variants.dps_parsec
  in
  (* a front-cached server needs per-key versions to validate against; 4x
     the bucket count keeps version-slot aliasing (false invalidation
     only) rare without growing the table's line footprint much *)
  let versions = if cfg.server.Server.front_cache > 0 then 4 * cfg.buckets else 0 in
  mk sched ~self_healing:true ~batch:cfg.batch ~versions ~placement
    ~on_set_applied:on_apply ~nclients:cfg.npollers ~locality_size:cfg.locality_size
    ~buckets:cfg.buckets ~capacity:cfg.capacity ()

let create sched ?(on_set_applied = fun ~node:_ ~tag:_ -> ()) cfg =
  if cfg.nnodes < 2 then invalid_arg "Cluster.create: need at least 2 nodes";
  let topo = Machine.topology (Sthread.machine sched) in
  let nodes =
    Array.init cfg.nnodes (fun id ->
        let socket, pollers, acceptor_hw =
          node_placement topo ~nnodes:cfg.nnodes ~npollers:cfg.npollers id
        in
        let net = Net.create sched ~config:cfg.net () in
        let backend =
          mk_backend sched cfg ~placement:pollers
            ~on_apply:(fun tag -> on_set_applied ~node:id ~tag)
        in
        let server =
          Server.start sched net ~backend
            {
              cfg.server with
              npollers = cfg.npollers;
              acceptor_hw = Some acceptor_hw;
            }
        in
        { id; socket; net; server; backend; up = true; died_at = -1 })
  in
  {
    sched;
    cfg;
    ring = Ring.create ~nnodes:cfg.nnodes ~vnodes:cfg.vnodes ();
    nodes;
    down_subs = [];
    stopped = false;
    failover_log = [];
  }

let node t id = t.nodes.(id)
let node_count t = Array.length t.nodes
let nodes_up t = Array.fold_left (fun acc n -> if n.up then acc + 1 else acc) 0 t.nodes
let node_dead t id = not t.nodes.(id).up
let failover_log t = List.rev t.failover_log
let ring t = t.ring
let on_node_down t cb = t.down_subs <- cb :: t.down_subs

(* Gossip-free death detection: a node is dead when its own DPS watchdog
   says every poller (= DPS client) vanished without client_done — there
   is nobody left to serve or accept, so no heartbeat protocol is needed;
   the backend's crash accounting already is the heartbeat. *)
let node_is_dead t nd =
  match nd.backend.Variants.health with
  | None -> false
  | Some health ->
      let h = health () in
      h.Dps.crashes >= t.cfg.npollers
      || Array.for_all Fun.id h.Dps.dead_partitions

(* Declare [nd] dead: replay the hash ring (its keys remap onto the
   surviving nodes — the failover promotion), stop its server shell so
   pending and future connection attempts are refused instead of hanging,
   and tell subscribers (client fleets drain orphaned connections and
   reroute their inflight ops). *)
let mark_down t nd =
  if nd.up then begin
    nd.up <- false;
    nd.died_at <- Sthread.now t.sched;
    t.failover_log <- (nd.id, nd.died_at) :: t.failover_log;
    Ring.remove t.ring nd.id;
    Server.stop nd.server;
    if Obs.tracing_on () then
      Obs.instant
        ~tid:(Obs.pseudo_tid ~kind:3 nd.id)
        ~now:(Sthread.now t.sched) ~cat:"cluster"
        (Printf.sprintf "cluster.node_down %d" nd.id);
    List.iter (fun cb -> cb nd.id) t.down_subs
  end

let rec probe t =
  if not t.stopped then begin
    Array.iter (fun nd -> if nd.up && node_is_dead t nd then mark_down t nd) t.nodes;
    Sthread.at t.sched
      ~time:(Sthread.now t.sched + t.cfg.probe_interval)
      (fun () -> probe t)
  end

let start_probe t = Sthread.at t.sched ~time:(Sthread.now t.sched + 1) (fun () -> probe t)

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Array.iter (fun nd -> Server.stop nd.server) t.nodes
  end

(* Kill a whole node mid-run through the fault layer: every poller plus
   the acceptor crashes at [at]. Tids are resolved at fire time because
   pollers learn their tid only once they run. *)
let schedule_kill t faults ~node:id ~at =
  let nd = t.nodes.(id) in
  Faults.schedule_kill faults ~at ~tids:(fun () ->
      let tids = Server.poller_tids nd.server in
      let a = Server.acceptor_tid nd.server in
      if a >= 0 then a :: tids else tids)

let populate t ~keys ~val_lines =
  (* group keys by ring owner, one populate call per node *)
  let per = Array.make (Array.length t.nodes) [] in
  Array.iter
    (fun key ->
      let n = Ring.lookup t.ring key in
      per.(n) <- key :: per.(n))
    keys;
  Array.iteri
    (fun id ks ->
      if ks <> [] then
        t.nodes.(id).backend.Variants.populate ~keys:(Array.of_list (List.rev ks)) ~val_lines)
    per

let router t =
  {
    Netload.nnodes = Array.length t.nodes;
    net_of = (fun id -> t.nodes.(id).net);
    nic_of = (fun id -> t.nodes.(id).socket);
    node_of_key = (fun key -> Ring.lookup t.ring key);
    node_up = (fun id -> t.nodes.(id).up);
    failover_of = (fun id -> Ring.successor t.ring id);
    subscribe_down = on_node_down t;
  }

let register_obs t reg =
  let module R = Dps_obs.Registry in
  Array.iter
    (fun nd ->
      let labels = [ ("node", string_of_int nd.id) ] in
      R.gauge_fn reg ~labels ~help:"1 while the node serves, 0 after failover" "cluster.up"
        (fun () -> if nd.up then 1.0 else 0.0);
      R.gauge_fn reg ~labels ~help:"simulated time the probe declared the node dead"
        "cluster.died_at" (fun () -> float_of_int nd.died_at);
      Server.register_obs ~labels nd.server reg;
      Net.register_obs ~labels nd.net reg;
      match nd.backend.Variants.register_obs with
      | Some f -> f ~labels reg
      | None -> ())
    t.nodes;
  R.gauge_fn reg ~help:"live nodes" "cluster.nodes_up" (fun () ->
      float_of_int (nodes_up t))

(* Consistent-hash ring with virtual nodes.

   Every node contributes [vnodes] points on a 62-bit circle; a key is
   owned by the first point clockwise from its hash. Removing a node
   deletes only its points, so its keys remap onto the next surviving
   points — the failover promotion — while every other key keeps its
   owner. The hash is a fixed splitmix64-style mixer: deterministic, no
   seeds, the same layout on every run. *)

(* splitmix64's multipliers exceed OCaml's 63-bit int literals; wrapping
   them through Int64 keeps the low 63 bits, which is all a mixer needs. *)
let m1 = Int64.to_int 0xbf58476d1ce4e5b9L
let m2 = Int64.to_int 0x94d049bb133111ebL

let mix h =
  (* splitmix64 finalizer, truncated to OCaml's 63-bit int (kept positive) *)
  let h = ref h in
  h := !h lxor (!h lsr 30);
  h := !h * m1;
  h := !h lxor (!h lsr 27);
  h := !h * m2;
  h := !h lxor (!h lsr 31);
  !h land max_int

let point ~node ~replica = mix (((node + 1) * 0x9e3779b9) + (replica * 0x85ebca6b))
let hash_key key = mix (key + 0x165667b1)

type t = {
  vnodes : int;
  mutable live : int list;  (* ascending node ids *)
  mutable points : (int * int) array;  (* (position, node), sorted by position *)
}

let rebuild t =
  let pts =
    List.concat_map
      (fun node -> List.init t.vnodes (fun r -> (point ~node ~replica:r, node)))
      t.live
  in
  t.points <- Array.of_list pts;
  Array.sort compare t.points

let create ~nnodes ?(vnodes = 64) () =
  if nnodes <= 0 then invalid_arg "Ring.create: nnodes must be positive";
  let t = { vnodes; live = List.init nnodes Fun.id; points = [||] } in
  rebuild t;
  t

let nodes t = t.live
let size t = List.length t.live
let is_live t node = List.mem node t.live

(* First point at position >= h, wrapping — binary search over the sorted
   point array. *)
let owner_at t h =
  let pts = t.points in
  let n = Array.length pts in
  if n = 0 then invalid_arg "Ring.lookup: empty ring";
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst pts.(mid) < h then lo := mid + 1 else hi := mid
  done;
  snd pts.(if !lo = n then 0 else !lo)

let lookup t key = owner_at t (hash_key key)

(* The node that inherits [node]'s keys if it fails: the owner the ring
   would pick with [node]'s points deleted, probed at [node]'s first
   point. Distinct keys can fail over to distinct successors (that is the
   point of virtual nodes — a dead node's load spreads); this names one
   deterministic representative, used as the retry target before the ring
   has been replayed. *)
let successor t node =
  match List.filter (fun n -> n <> node) t.live with
  | [] -> node
  | [ only ] -> only
  | _ :: _ ->
      (* walk clockwise through the point array from node's first point;
         with at least two live nodes a foreign point exists *)
      let h = point ~node ~replica:0 in
      let pts = t.points in
      let n = Array.length pts in
      let start = ref 0 in
      while !start < n && fst pts.(!start) < h do incr start done;
      let rec scan i left =
        if left = 0 then node
        else
          let _, o = pts.(i mod n) in
          if o <> node then o else scan (i + 1) (left - 1)
      in
      scan !start n

let remove t node =
  if List.mem node t.live then begin
    t.live <- List.filter (fun n -> n <> node) t.live;
    if t.live = [] then invalid_arg "Ring.remove: removing the last node";
    rebuild t
  end

let add t node =
  if node < 0 then invalid_arg "Ring.add: negative node id";
  if not (List.mem node t.live) then begin
    t.live <- List.sort compare (node :: t.live);
    rebuild t
  end

(** Multi-node cluster serving with failover.

    Runs [nnodes] independent {!Dps_server.Server} instances on one
    simulated machine — each with its own network front-end, its own DPS
    backend, and a placement slice confined to one socket, so the paper's
    invariant (delegation stays socket-local) holds per node. Keys are
    sharded over the nodes by a consistent-hash {!Ring} with virtual
    nodes; routed client fleets ({!Dps_workload.Netload.run_routed}) hash
    each key to its shard and fail over with capped exponential backoff.

    Failure handling is gossip-free: a periodic probe samples each node's
    own DPS watchdog ({!Dps_memcached.Variants.health}); a node whose
    pollers have all crashed is declared dead — the ring is replayed (its
    keys remap onto survivors), its server shell is stopped so pending
    connection attempts are refused instead of hanging, and registered
    callbacks let client fleets drain orphaned connections promptly.
    Overload is handled before failure: each server sheds requests past
    its [shed_threshold] with [SERVER_ERROR busy], which routed clients
    absorb and retry after backoff. *)

module Sthread := Dps_sthread.Sthread
module Net := Dps_net.Net
module Server := Dps_server.Server
module Variants := Dps_memcached.Variants
module Netload := Dps_workload.Netload

type backend_kind = Dps_mc | Dps_parsec

type config = {
  nnodes : int;
  npollers : int;  (** per node; also the node's DPS client count *)
  locality_size : int;
  vnodes : int;  (** virtual nodes per node on the hash ring *)
  buckets : int;  (** per node *)
  capacity : int;  (** per node *)
  batch : int;  (** DPS delegation batch *)
  backend : backend_kind;
  probe_interval : int;  (** health-probe period, cycles *)
  server : Server.config;  (** template; npollers/acceptor placement overridden *)
  net : Net.config;
      (** per-node network front-end template. Fleet-scale runs shrink
          [ring_lines] here: per-connection ring footprint is what bounds
          a >=250k-connection stage's memory, not the payload. When the
          server template asks for a front cache ([front_cache] > 0) the
          node backends are built with [~versions] = 4x[buckets] so the
          cache has a version table to validate against. *)
}

val default_config : config
(** 4 nodes x 8 pollers, dps_mc backend, 64 vnodes, 25k-cycle probe,
    512-connection / shed-at-24 server template, default net config. *)

type node = {
  id : int;
  socket : int;
  net : Net.t;
  server : Server.t;
  backend : Variants.t;
  mutable up : bool;
  mutable died_at : int;  (** simulated time the probe declared it dead; -1 *)
}

type t

val create :
  Sthread.t -> ?on_set_applied:(node:int -> tag:int -> unit) -> config -> t
(** Build and start all nodes. [on_set_applied] fires inside the delegated
    closure each time a tagged set is applied by [node]'s backend — the
    server side of the exactly-once ledger ({!Dps_check.Eo}). Raises
    [Invalid_argument] when the topology cannot host the requested nodes
    ([npollers] consecutive cores per node, nodes stacked round-robin over
    sockets). *)

val node : t -> int -> node
val node_count : t -> int
val nodes_up : t -> int
val node_dead : t -> int -> bool

val failover_log : t -> (int * int) list
(** [(node, declared-dead time)] pairs, oldest first. *)

val ring : t -> Ring.t

val on_node_down : t -> (int -> unit) -> unit
(** Register a callback fired (once per node) when the probe declares a
    node dead, after the ring has been replayed. *)

val start_probe : t -> unit
(** Start the periodic health probe (first sample one cycle from now). *)

val stop : t -> unit
(** Stop the probe and every node's server. *)

val schedule_kill : t -> Dps_faults.t -> node:int -> at:int -> unit
(** Crash the whole node at time [at] through the fault layer: every
    poller plus the acceptor dies. Victim tids are resolved at fire time
    (pollers learn their tid only once they run). *)

val populate : t -> keys:int array -> val_lines:int -> unit
(** Preload each key into its ring owner's backend. *)

val router : t -> Netload.router
(** The routing view handed to {!Netload.run_routed}: ring lookup,
    liveness, failover targets and the node-down subscription. *)

val register_obs : t -> Dps_obs.Registry.t -> unit
(** Register per-node gauges (labelled [{node=<id>}]): cluster liveness,
    server counters, net counters and the backend's DPS health/watchdog
    gauges; plus a global [cluster.nodes_up]. *)

(** Consistent-hash ring with virtual nodes.

    Each node contributes [vnodes] points on a hash circle; a key belongs
    to the first point clockwise from its hash. Removing a dead node
    deletes only its points, so exactly its keys remap — spread over the
    survivors — while every other key keeps its owner. Hashing is a fixed
    avalanche mixer with no seed: the layout is identical on every run,
    which keeps cluster scenarios bit-for-bit replayable. *)

type t

val create : nnodes:int -> ?vnodes:int -> unit -> t
(** Nodes [0 .. nnodes-1], [vnodes] (default 64) points each. *)

val lookup : t -> int -> int
(** The live node owning this key. *)

val successor : t -> int -> int
(** A deterministic representative of the nodes that inherit [node]'s
    keys if it is removed — the retry target while the ring replay is
    still pending. Returns [node] itself only when it is the sole live
    node. *)

val remove : t -> int -> unit
(** Delete a node's points (idempotent). Raises [Invalid_argument] when
    asked to remove the last live node. *)

val add : t -> int -> unit
(** (Re-)insert a node's points (idempotent): exactly the keys hashing
    onto the new points move to [node]; every other key keeps its owner.
    [add] after [remove] of the same node restores the identical layout —
    point positions depend only on the node id. Raises [Invalid_argument]
    on a negative id. *)

val nodes : t -> int list
(** Live node ids, ascending. *)

val size : t -> int
val is_live : t -> int -> bool

val hash_key : int -> int
(** The key-side hash, exposed for tests. *)

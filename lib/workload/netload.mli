(** Simulated client fleets for the network front-end.

    Multiplexes [nclients] end-users over [nconns] connections — users per
    connection is unbounded, so thousands to millions of simulated clients
    cost only memory, not simulated cores: the whole fleet runs as bare
    scheduler events ({!Dps_sthread.Sthread.at} timers and connection rx
    callbacks), off-machine, exactly like the paper's stubbed network
    clients but speaking the real wire protocol.

    Two load models:
    - {e closed-loop}: each user issues one request, waits for its
      response, thinks for [think] cycles, repeats — throughput saturates
      at the server's capacity, latency stays civil;
    - {e open-loop}: requests arrive by a Poisson process at [rate_mops]
      regardless of completions — offered load can exceed capacity, and
      the tail latencies show it.

    Requests follow the memcached study's shape: Zipfian (or uniform) keys
    in [0, key_range), [set_pct]% sets of [val_lines]-line values, gets
    batched [mget] keys at a time. Responses are matched to requests in
    connection FIFO order (the ASCII protocol is in-order), each completion
    is a latency sample, and everything is seeded — the same spec replays
    bit-for-bit. *)

module Sthread := Dps_sthread.Sthread
module Net := Dps_net.Net

type mode =
  | Closed of { think : int }
  | Open of { rate_mops : float }  (** offered load, Mops per simulated second *)

type spec = {
  nclients : int;
  nconns : int;
  set_pct : int;  (** 0..100 *)
  mget : int;  (** keys per get request (1 = plain get) *)
  val_lines : int;  (** value size for sets, in cache lines *)
  key_range : int;
  zipfian : bool;
  mode : mode;
  seed : int64;
}

val spec :
  ?nclients:int ->
  ?nconns:int ->
  ?set_pct:int ->
  ?mget:int ->
  ?val_lines:int ->
  ?key_range:int ->
  ?zipfian:bool ->
  ?mode:mode ->
  ?seed:int64 ->
  unit ->
  spec
(** Defaults: 1000 clients, 64 connections, 10% sets, plain gets, 2-line
    values, 16384 keys, Zipfian, closed-loop with 4000-cycle think time,
    seed 42. *)

type result = {
  issued : int;
  completed : int;
  errors : int;  (** ERROR / CLIENT_ERROR / SERVER_ERROR responses *)
  hits : int;  (** values returned across all gets *)
  refused_conns : int;
  duration_cycles : int;
  throughput_mops : float;  (** completed requests per simulated second *)
  mean_latency : float;  (** cycles, request issue to response parse *)
  p50 : int;
  p99 : int;
  p999 : int;
}

val pp_result : Format.formatter -> result -> unit

val run :
  Sthread.t -> Net.t -> spec -> duration:int -> ?stop:(unit -> unit) -> unit -> result
(** Drive the fleet for [duration] cycles of issue window, then stop
    issuing, let in-flight requests complete, and invoke [stop] (typically
    [Server.stop]) once the issue window plus a drain grace has elapsed.
    Runs the scheduler to quiescence and reports fleet-side measurements.
    Connections are spread round-robin over the NICs. *)

(** Simulated client fleets for the network front-end.

    Multiplexes [nclients] end-users over [nconns] connections — users per
    connection is unbounded, so thousands to millions of simulated clients
    cost only memory, not simulated cores: the whole fleet runs as bare
    scheduler events ({!Dps_sthread.Sthread.at} timers and connection rx
    callbacks), off-machine, exactly like the paper's stubbed network
    clients but speaking the real wire protocol.

    Two load models:
    - {e closed-loop}: each user issues one request, waits for its
      response, thinks for [think] cycles, repeats — throughput saturates
      at the server's capacity, latency stays civil;
    - {e open-loop}: requests arrive by a Poisson process at [rate_mops]
      regardless of completions — offered load can exceed capacity, and
      the tail latencies show it.

    Requests follow the memcached study's shape: Zipfian (or uniform) keys
    in [0, key_range), [set_pct]% sets of [val_lines]-line values, gets
    batched [mget] keys at a time. Responses are matched to requests in
    connection FIFO order (the ASCII protocol is in-order), each completion
    is a latency sample, and everything is seeded — the same spec replays
    bit-for-bit. *)

module Sthread := Dps_sthread.Sthread
module Net := Dps_net.Net

type mode =
  | Closed of { think : int }
  | Open of { rate_mops : float }  (** offered load, Mops per simulated second *)

type spec = {
  nclients : int;
  nconns : int;
  set_pct : int;  (** 0..100 *)
  mget : int;  (** keys per get request (1 = plain get) *)
  val_lines : int;  (** value size for sets, in cache lines *)
  key_range : int;
  zipfian : bool;
  mode : mode;
  seed : int64;
}

val spec :
  ?nclients:int ->
  ?nconns:int ->
  ?set_pct:int ->
  ?mget:int ->
  ?val_lines:int ->
  ?key_range:int ->
  ?zipfian:bool ->
  ?mode:mode ->
  ?seed:int64 ->
  unit ->
  spec
(** Defaults: 1000 clients, 64 connections, 10% sets, plain gets, 2-line
    values, 16384 keys, Zipfian, closed-loop with 4000-cycle think time,
    seed 42. *)

type result = {
  issued : int;
  completed : int;
  errors : int;  (** ERROR / CLIENT_ERROR / SERVER_ERROR responses *)
  hits : int;  (** values returned across all gets *)
  refused_conns : int;
  duration_cycles : int;
  throughput_mops : float;  (** completed requests per simulated second *)
  mean_latency : float;  (** cycles, request issue to response parse *)
  p50 : int;
  p99 : int;
  p999 : int;
}

val pp_result : Format.formatter -> result -> unit

val run :
  Sthread.t -> Net.t -> spec -> duration:int -> ?stop:(unit -> unit) -> unit -> result
(** Drive the fleet for [duration] cycles of issue window, then stop
    issuing, let in-flight requests complete, and invoke [stop] (typically
    [Server.stop]) once the issue window plus a drain grace has elapsed.
    Runs the scheduler to quiescence and reports fleet-side measurements.
    Connections are spread round-robin over the NICs. *)

(** {1 Routed fleets (cluster mode)}

    A {!router} abstracts the cluster's sharding so this library needs no
    dependency on [lib/cluster]: clients hash each key to a shard node,
    keep a per-node connection pool, and recover from failure with capped
    exponential backoff + jitter. The retry policy only ever retransmits
    an operation when the original cannot have been applied by a
    surviving node — refused connection, [SERVER_ERROR busy] shed, or the
    target declared dead — never on a slow-but-live FIFO connection,
    where a blind retransmit would double-apply. *)

type router = {
  nnodes : int;
  net_of : int -> Net.t;  (** the node's network front-end *)
  nic_of : int -> int;  (** which NIC of that front-end to dial *)
  node_of_key : int -> int;  (** current ring owner of a key *)
  node_up : int -> bool;
  failover_of : int -> int;
      (** retry target for a down node whose ring replay is still pending *)
  subscribe_down : (int -> unit) -> unit;
      (** register a callback fired when the cluster declares a node dead;
          the fleet uses it to drain (close + reroute) orphaned
          connections promptly *)
}

type rspec = {
  base : spec;
      (** key/value mix, clients and seed; [nconns] is {e per node};
          [mode] must be closed-loop *)
  key_pool : int array option;  (** restrict keys to this pool (incast) *)
  req_timeout : int;  (** cycles before an outstanding request is suspect *)
  max_retries : int;  (** wire sends per logical op before giving up *)
  backoff_base : int;  (** first retry delay bound, cycles *)
  backoff_cap : int;  (** backoff ceiling, cycles *)
  churn_interval : int;
      (** when positive, close one drained connection every this many
          cycles (round-robin) and reconnect lazily on next use *)
  window : int;  (** goodput timeline bucket width; [0] = duration/32 *)
  on_acked : (opid:int -> node:int -> unit) option;
      (** exactly-once ledger hook: a set's STORED ack parsed, from
          [node]. The op id is also carried to the server in the
          memcached [flags] field. *)
}

val rspec :
  ?base:spec ->
  ?key_pool:int array ->
  ?req_timeout:int ->
  ?max_retries:int ->
  ?backoff_base:int ->
  ?backoff_cap:int ->
  ?churn_interval:int ->
  ?window:int ->
  ?on_acked:(opid:int -> node:int -> unit) ->
  unit ->
  rspec
(** Defaults: 60k-cycle timeout, 6 retries, backoff 2k doubling to 40k,
    no churn. *)

type routed_result = {
  agg : result;  (** [issued] counts logical ops; retries are separate *)
  retries : int;  (** extra wire sends (backoff path) *)
  rerouted : int;  (** retries that changed node *)
  busy : int;  (** [SERVER_ERROR busy] sheds absorbed and retried *)
  timeouts : int;  (** ops that outlived [req_timeout] at least once *)
  dropped : int;  (** ops given up after [max_retries] or at the deadline *)
  abandoned : int;  (** ops never resolved when the run ended *)
  churned : int;  (** connections recycled by the churn process *)
  conns_opened : int;
      (** [Net.connect] calls across the run (first opens plus reopens
          after churn/failover) — the fleet-scale gate's witness that a
          ≥250k-connection stage really dialed that many connections *)
  per_node_completed : int array;
  per_node_p99 : int array;
  goodput_timeline : int array;  (** completions per [window_cycles] bucket *)
  window_cycles : int;
}

val run_routed :
  Sthread.t -> router -> rspec -> duration:int -> ?stop:(unit -> unit) -> unit -> routed_result
(** Like {!run} but sharded through [router]. The drain grace is extended
    by [req_timeout] so reroutes still in backoff can land; [stop] should
    stop the whole cluster (servers and health probe). *)

module Sthread = Dps_sthread.Sthread
module Machine = Dps_machine.Machine
module Topology = Dps_machine.Topology
module Net = Dps_net.Net
module Wire = Dps_net.Wire
module Prng = Dps_simcore.Prng
module Histogram = Dps_simcore.Histogram

type mode = Closed of { think : int } | Open of { rate_mops : float }

type spec = {
  nclients : int;
  nconns : int;
  set_pct : int;
  mget : int;
  val_lines : int;
  key_range : int;
  zipfian : bool;
  mode : mode;
  seed : int64;
}

let spec ?(nclients = 1000) ?(nconns = 64) ?(set_pct = 10) ?(mget = 1) ?(val_lines = 2)
    ?(key_range = 16384) ?(zipfian = true) ?(mode = Closed { think = 4000 }) ?(seed = 42L) () =
  { nclients; nconns; set_pct; mget; val_lines; key_range; zipfian; mode; seed }

type result = {
  issued : int;
  completed : int;
  errors : int;
  hits : int;
  refused_conns : int;
  duration_cycles : int;
  throughput_mops : float;
  mean_latency : float;
  p50 : int;
  p99 : int;
  p999 : int;
}

let pp_result ppf r =
  Format.fprintf ppf
    "%8d completed (%d issued): %8.3f Mops/s  p50 %d p99 %d p99.9 %d  (%d errors, %d refused)"
    r.completed r.issued r.throughput_mops r.p50 r.p99 r.p999 r.errors r.refused_conns

(* Per-connection fleet state: the users multiplexed onto one connection
   share its PRNG stream, encoder and in-order completion FIFO. *)
type cstate = {
  mutable conn : Net.conn option;
  prng : Prng.t;
  dec : Wire.decoder;
  enc : Buffer.t;
  inflight : (int * [ `Get | `Set ]) Queue.t;
  mutable dead : bool;
}

type fleet = {
  sched : Sthread.t;
  net : Net.t;
  sp : spec;
  dist : Keydist.t;
  set_data : string;
  horizon : int;
  hist : Histogram.t;
  mutable issued : int;
  mutable completed : int;
  mutable errors : int;
  mutable hits : int;
  mutable refused : int;
}

let issue f cs =
  match cs.conn with
  | None -> ()
  | Some conn ->
      if (not cs.dead) && Sthread.now f.sched < f.horizon then begin
        let p = cs.prng in
        Buffer.clear cs.enc;
        let kind =
          if Prng.int p 100 < f.sp.set_pct then begin
            let key = string_of_int (Keydist.sample f.dist p) in
            Wire.encode_request cs.enc
              (Wire.Set { key; flags = 0; exptime = 0; data = f.set_data; noreply = false });
            `Set
          end
          else begin
            let keys =
              List.init f.sp.mget (fun _ -> string_of_int (Keydist.sample f.dist p))
            in
            Wire.encode_request cs.enc (Wire.Get keys);
            `Get
          end
        in
        Queue.push (Sthread.now f.sched, kind) cs.inflight;
        f.issued <- f.issued + 1;
        Net.send f.net conn (Buffer.contents cs.enc)
      end

(* A user finished a request/response cycle on [cs]; in closed-loop mode it
   thinks, then issues its next request. *)
let user_turnaround f cs =
  match f.sp.mode with
  | Open _ -> ()
  | Closed { think } ->
      let when_ = Sthread.now f.sched + think in
      if when_ < f.horizon then Sthread.at f.sched ~time:when_ (fun () -> issue f cs)

let on_rx f cs data =
  Wire.feed cs.dec data;
  let parsing = ref true in
  while !parsing do
    match Wire.next_response cs.dec with
    | Wire.Need_more -> parsing := false
    | Wire.Bad _ -> f.errors <- f.errors + 1
    | Wire.Item resp -> (
        match Queue.take_opt cs.inflight with
        | None -> f.errors <- f.errors + 1 (* response with no matching request *)
        | Some (t0, _kind) ->
            f.completed <- f.completed + 1;
            Histogram.add f.hist (Sthread.now f.sched - t0);
            (match resp with
            | Wire.Values vs -> f.hits <- f.hits + List.length vs
            | Wire.Error | Wire.Client_error _ | Wire.Server_error _ ->
                f.errors <- f.errors + 1
            | Wire.Stored | Wire.Not_stored | Wire.Deleted | Wire.Not_found -> ());
            user_turnaround f cs)
  done

(* Open-loop Poisson arrivals on one connection, mean inter-arrival
   [mean_gap] cycles, until the horizon. *)
let rec arrival_process f cs ~mean_gap =
  let u = 1.0 -. Prng.float cs.prng 1.0 in
  let gap = int_of_float (-.mean_gap *. log u) in
  let when_ = Sthread.now f.sched + max 1 gap in
  if when_ < f.horizon then
    Sthread.at f.sched ~time:when_ (fun () ->
        issue f cs;
        arrival_process f cs ~mean_gap)

let run sched net sp ~duration ?(stop = fun () -> ()) () =
  let start = Sthread.now sched in
  let horizon = start + duration in
  let topo = Machine.topology (Sthread.machine sched) in
  let master = Prng.create sp.seed in
  let f =
    {
      sched;
      net;
      sp;
      dist =
        (if sp.zipfian then Keydist.zipf ~range:sp.key_range ()
         else Keydist.uniform ~range:sp.key_range);
      set_data = String.make (sp.val_lines * 64) 'x';
      horizon;
      hist = Histogram.create ();
      issued = 0;
      completed = 0;
      errors = 0;
      hits = 0;
      refused = 0;
    }
  in
  let conns =
    Array.init sp.nconns (fun i ->
        let cs =
          {
            conn = None;
            prng = Prng.split master;
            dec = Wire.decoder ();
            enc = Buffer.create 256;
            inflight = Queue.create ();
            dead = false;
          }
        in
        let conn =
          Net.connect net ~nic:(i mod Net.nic_count net)
            ~rx:(fun data -> on_rx f cs data)
            ~on_refused:(fun () ->
              cs.dead <- true;
              f.refused <- f.refused + 1)
            ()
        in
        cs.conn <- Some conn;
        cs)
  in
  (* kick the fleet off: users staggered over one think/gap window *)
  (match sp.mode with
  | Closed { think } ->
      for u = 0 to sp.nclients - 1 do
        let cs = conns.(u mod sp.nconns) in
        let offset = if think > 0 then Prng.int cs.prng think else Prng.int cs.prng 64 in
        Sthread.at sched ~time:(start + 1 + offset) (fun () -> issue f cs)
      done
  | Open { rate_mops } ->
      let cycles_per_sec = topo.Topology.ghz *. 1e9 in
      let ops_per_cycle = rate_mops *. 1e6 /. cycles_per_sec in
      let mean_gap = float_of_int sp.nconns /. ops_per_cycle in
      Array.iter (fun cs -> arrival_process f cs ~mean_gap) conns);
  (* after the issue window plus a drain grace, shut the server down *)
  let grace = (10 * (Net.config net).Net.link_latency) + 10_000 in
  Sthread.at sched ~time:(horizon + grace) (fun () -> stop ());
  Sthread.run sched;
  let seconds =
    Machine.cycles_to_seconds (Sthread.machine sched) duration
  in
  {
    issued = f.issued;
    completed = f.completed;
    errors = f.errors;
    hits = f.hits;
    refused_conns = f.refused;
    duration_cycles = Sthread.now sched - start;
    throughput_mops =
      (if f.completed = 0 then 0.0 else float_of_int f.completed /. seconds /. 1e6);
    mean_latency = Histogram.mean f.hist;
    p50 = Histogram.percentile f.hist 0.50;
    p99 = Histogram.percentile f.hist 0.99;
    p999 = Histogram.percentile f.hist 0.999;
  }

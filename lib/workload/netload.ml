module Sthread = Dps_sthread.Sthread
module Machine = Dps_machine.Machine
module Topology = Dps_machine.Topology
module Net = Dps_net.Net
module Wire = Dps_net.Wire
module Prng = Dps_simcore.Prng
module Histogram = Dps_simcore.Histogram

type mode = Closed of { think : int } | Open of { rate_mops : float }

type spec = {
  nclients : int;
  nconns : int;
  set_pct : int;
  mget : int;
  val_lines : int;
  key_range : int;
  zipfian : bool;
  mode : mode;
  seed : int64;
}

let spec ?(nclients = 1000) ?(nconns = 64) ?(set_pct = 10) ?(mget = 1) ?(val_lines = 2)
    ?(key_range = 16384) ?(zipfian = true) ?(mode = Closed { think = 4000 }) ?(seed = 42L) () =
  { nclients; nconns; set_pct; mget; val_lines; key_range; zipfian; mode; seed }

type result = {
  issued : int;
  completed : int;
  errors : int;
  hits : int;
  refused_conns : int;
  duration_cycles : int;
  throughput_mops : float;
  mean_latency : float;
  p50 : int;
  p99 : int;
  p999 : int;
}

let pp_result ppf r =
  Format.fprintf ppf
    "%8d completed (%d issued): %8.3f Mops/s  p50 %d p99 %d p99.9 %d  (%d errors, %d refused)"
    r.completed r.issued r.throughput_mops r.p50 r.p99 r.p999 r.errors r.refused_conns

(* Per-connection fleet state: the users multiplexed onto one connection
   share its PRNG stream, encoder and in-order completion FIFO. *)
type cstate = {
  mutable conn : Net.conn option;
  prng : Prng.t;
  dec : Wire.decoder;
  enc : Buffer.t;
  inflight : (int * [ `Get | `Set ]) Queue.t;
  mutable dead : bool;
}

type fleet = {
  sched : Sthread.t;
  net : Net.t;
  sp : spec;
  dist : Keydist.t;
  set_data : string;
  horizon : int;
  hist : Histogram.t;
  mutable issued : int;
  mutable completed : int;
  mutable errors : int;
  mutable hits : int;
  mutable refused : int;
}

let issue f cs =
  match cs.conn with
  | None -> ()
  | Some conn ->
      if (not cs.dead) && Sthread.now f.sched < f.horizon then begin
        let p = cs.prng in
        Buffer.clear cs.enc;
        let kind =
          if Prng.int p 100 < f.sp.set_pct then begin
            let key = string_of_int (Keydist.sample f.dist p) in
            Wire.encode_request cs.enc
              (Wire.Set { key; flags = 0; exptime = 0; data = f.set_data; noreply = false });
            `Set
          end
          else begin
            let keys =
              List.init f.sp.mget (fun _ -> string_of_int (Keydist.sample f.dist p))
            in
            Wire.encode_request cs.enc (Wire.Get keys);
            `Get
          end
        in
        Queue.push (Sthread.now f.sched, kind) cs.inflight;
        f.issued <- f.issued + 1;
        Net.send f.net conn (Buffer.contents cs.enc)
      end

(* A user finished a request/response cycle on [cs]; in closed-loop mode it
   thinks, then issues its next request. *)
let user_turnaround f cs =
  match f.sp.mode with
  | Open _ -> ()
  | Closed { think } ->
      let when_ = Sthread.now f.sched + think in
      if when_ < f.horizon then Sthread.at f.sched ~time:when_ (fun () -> issue f cs)

let on_rx f cs data =
  Wire.feed cs.dec data;
  let parsing = ref true in
  while !parsing do
    match Wire.next_response cs.dec with
    | Wire.Need_more -> parsing := false
    | Wire.Bad _ -> f.errors <- f.errors + 1
    | Wire.Item resp -> (
        match Queue.take_opt cs.inflight with
        | None -> f.errors <- f.errors + 1 (* response with no matching request *)
        | Some (t0, _kind) ->
            f.completed <- f.completed + 1;
            Histogram.add f.hist (Sthread.now f.sched - t0);
            (match resp with
            | Wire.Values vs -> f.hits <- f.hits + List.length vs
            | Wire.Error | Wire.Client_error _ | Wire.Server_error _ ->
                f.errors <- f.errors + 1
            | Wire.Stored | Wire.Not_stored | Wire.Deleted | Wire.Not_found -> ());
            user_turnaround f cs)
  done

(* Open-loop Poisson arrivals on one connection, mean inter-arrival
   [mean_gap] cycles, until the horizon. *)
let rec arrival_process f cs ~mean_gap =
  let u = 1.0 -. Prng.float cs.prng 1.0 in
  let gap = int_of_float (-.mean_gap *. log u) in
  let when_ = Sthread.now f.sched + max 1 gap in
  if when_ < f.horizon then
    Sthread.at f.sched ~time:when_ (fun () ->
        issue f cs;
        arrival_process f cs ~mean_gap)

(* ------------------------------------------------------------------ *)
(* Routed fleets: clients hash keys to shard nodes through a router,   *)
(* retry refused/busy/orphaned requests with capped exponential        *)
(* backoff + jitter, and fail over to the shard's successor when the   *)
(* cluster declares a node dead.                                       *)
(* ------------------------------------------------------------------ *)

type router = {
  nnodes : int;
  net_of : int -> Net.t;
  nic_of : int -> int;
  node_of_key : int -> int;
  node_up : int -> bool;
  failover_of : int -> int;
  subscribe_down : (int -> unit) -> unit;
}

type rspec = {
  base : spec;  (** [nconns] is per node; [mode] must be closed-loop *)
  key_pool : int array option;
  req_timeout : int;
  max_retries : int;
  backoff_base : int;
  backoff_cap : int;
  churn_interval : int;
  window : int;
  on_acked : (opid:int -> node:int -> unit) option;
}

let rspec ?(base = spec ()) ?key_pool ?(req_timeout = 60_000) ?(max_retries = 6)
    ?(backoff_base = 2_000) ?(backoff_cap = 40_000) ?(churn_interval = 0) ?(window = 0)
    ?on_acked () =
  { base; key_pool; req_timeout; max_retries; backoff_base; backoff_cap; churn_interval;
    window; on_acked }

type routed_result = {
  agg : result;
  retries : int;
  rerouted : int;
  busy : int;
  timeouts : int;
  dropped : int;
  abandoned : int;
  churned : int;
  conns_opened : int;
  per_node_completed : int array;
  per_node_p99 : int array;
  goodput_timeline : int array;
  window_cycles : int;
}

type rop = {
  opid : int;
  rkind : [ `Get | `Set ];
  key : int;
  user : int;
  t0 : int;
  mutable attempts : int;  (** wire sends so far *)
  mutable resolved : bool;
  mutable timed_out : bool;
  mutable last_node : int;
  mutable on_cid : int;  (** connection-table index currently carrying it; -1 = none *)
}

(* Connection table in structure-of-arrays form: slot [s] of node [n] is
   row [cid = n * nconns + s]. Per-connection closures and buffers are
   what bound fleet size — a million-row table is a handful of flat
   arrays, and the per-row heap objects (decoder, inflight FIFO) are
   materialized only when a row actually dials, so slots that never carry
   traffic cost three words each. *)
type ctable = {
  cnconns : int;  (** rows per node *)
  cconn : Net.conn option array;
  cdec : Wire.decoder option array;  (** lazy; fresh on every (re)open *)
  cinflight : rop Queue.t option array;  (** lazy; survives reopens *)
  cdead : Bytes.t;  (** '\001' = unusable, reconnect before use *)
  mutable copened : int;  (** [Net.connect] calls: first opens + reopens *)
}

let ct_make ~nnodes ~nconns =
  let n = nnodes * nconns in
  {
    cnconns = nconns;
    cconn = Array.make n None;
    cdec = Array.make n None;
    cinflight = Array.make n None;
    cdead = Bytes.make n '\001';
    copened = 0;
  }

let ct_dead ct cid = Bytes.get ct.cdead cid = '\001'
let ct_node ct cid = cid / ct.cnconns

type rfleet = {
  rsched : Sthread.t;
  router : router;
  rs : rspec;
  rdist : Keydist.t;
  rset_data : string;
  rstart : int;
  rhorizon : int;
  rdeadline : int;  (** past this, nothing re-arms or retries *)
  rhist : Histogram.t;
  node_hist : Histogram.t array;
  table : ctable;
  renc : Buffer.t;  (** encode scratch, shared by every send *)
  key_prng : Prng.t;
  jitter_prng : Prng.t;
  timeline : int array;
  twindow : int;
  mutable next_opid : int;
  mutable rissued : int;
  mutable rcompleted : int;
  mutable rresolved : int;
  mutable rerrors : int;
  mutable rhits : int;
  mutable rrefused : int;
  mutable rretries : int;
  mutable rrerouted : int;
  mutable rbusy : int;
  mutable rtimeouts : int;
  mutable rdropped : int;
  mutable rchurned : int;
  node_completed : int array;
}

let ct_inflight f cid =
  match f.table.cinflight.(cid) with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      f.table.cinflight.(cid) <- Some q;
      q

let sample_key f =
  match f.rs.key_pool with
  | Some pool -> pool.(Keydist.sample f.rdist f.key_prng mod Array.length pool)
  | None -> Keydist.sample f.rdist f.key_prng

(* Route: ring owner if up, else its failover target, else the (possibly
   stale) owner — the refusal or timeout path will retry later. *)
let target_node f key =
  let n = f.router.node_of_key key in
  if f.router.node_up n then n
  else
    let s = f.router.failover_of n in
    if f.router.node_up s then s else n

let record_completion f node latency =
  f.rcompleted <- f.rcompleted + 1;
  f.rresolved <- f.rresolved + 1;
  Histogram.add f.rhist latency;
  Histogram.add f.node_hist.(node) latency;
  f.node_completed.(node) <- f.node_completed.(node) + 1;
  let w = (Sthread.now f.rsched - f.rstart) / f.twindow in
  if w >= 0 && w < Array.length f.timeline then
    f.timeline.(w) <- f.timeline.(w) + 1

let rec ensure_conn f cid =
  let ct = f.table in
  if ct_dead ct cid || ct.cconn.(cid) = None then begin
    Bytes.set ct.cdead cid '\000';
    ct.cdec.(cid) <- Some (Wire.decoder ());
    ignore (ct_inflight f cid);
    let node = ct_node ct cid in
    let conn =
      Net.connect (f.router.net_of node) ~nic:(f.router.nic_of node)
        ~rx:(fun data -> on_rx_routed f cid data)
        ~on_refused:(fun () ->
          f.rrefused <- f.rrefused + 1;
          fail_conn f cid ~close:false)
        ()
    in
    ct.copened <- ct.copened + 1;
    ct.cconn.(cid) <- Some conn
  end

(* The connection is unusable (refused, or its node was declared dead):
   close it so late responses cannot double-complete, and push every
   inflight operation onto the retry path. *)
and fail_conn f cid ~close =
  let ct = f.table in
  if not (ct_dead ct cid) then begin
    Bytes.set ct.cdead cid '\001';
    (match ct.cconn.(cid) with
    | Some c when close -> Net.close (f.router.net_of (ct_node ct cid)) c
    | _ -> ());
    ct.cconn.(cid) <- None;
    match ct.cinflight.(cid) with
    | None -> ()
    | Some q ->
        let orphans = Queue.fold (fun acc op -> op :: acc) [] q in
        Queue.clear q;
        List.iter
          (fun op ->
            op.on_cid <- -1;
            retry_op f op)
          (List.rev orphans)
  end

(* Capped exponential backoff with jitter: delay in [b/2, b) where
   b = min cap (base * 2^(attempts-1)). *)
and retry_op f op =
  if not op.resolved then begin
    if op.attempts > f.rs.max_retries then begin
      op.resolved <- true;
      f.rresolved <- f.rresolved + 1;
      f.rdropped <- f.rdropped + 1;
      f.rerrors <- f.rerrors + 1;
      user_next f op
    end
    else if Sthread.now f.rsched >= f.rdeadline then begin
      op.resolved <- true;
      f.rresolved <- f.rresolved + 1;
      f.rdropped <- f.rdropped + 1
    end
    else begin
      f.rretries <- f.rretries + 1;
      let b = min f.rs.backoff_cap (f.rs.backoff_base lsl min 16 (max 0 (op.attempts - 1))) in
      let delay = (b / 2) + 1 + Prng.int f.jitter_prng (max 1 (b / 2)) in
      Sthread.at f.rsched ~time:(Sthread.now f.rsched + delay) (fun () ->
          if not op.resolved then
            if Sthread.now f.rsched >= f.rdeadline then begin
              op.resolved <- true;
              f.rresolved <- f.rresolved + 1;
              f.rdropped <- f.rdropped + 1
            end
            else send_op f op)
    end
  end

and send_op f op =
  let node = target_node f op.key in
  let cid = (node * f.table.cnconns) + (op.user mod f.table.cnconns) in
  ensure_conn f cid;
  match f.table.cconn.(cid) with
  | None -> retry_op f op
  | Some conn ->
      if op.attempts > 0 && node <> op.last_node then f.rrerouted <- f.rrerouted + 1;
      op.last_node <- node;
      op.attempts <- op.attempts + 1;
      op.on_cid <- cid;
      Buffer.clear f.renc;
      (match op.rkind with
      | `Set ->
          Wire.encode_request f.renc
            (Wire.Set
               {
                 key = string_of_int op.key;
                 flags = op.opid;
                 exptime = 0;
                 data = f.rset_data;
                 noreply = false;
               })
      | `Get -> Wire.encode_request f.renc (Wire.Get [ string_of_int op.key ]));
      Queue.push op (ct_inflight f cid);
      Net.send (f.router.net_of node) conn (Buffer.contents f.renc);
      arm_timeout f op ~gen:op.attempts

and arm_timeout f op ~gen =
  Sthread.at f.rsched ~time:(Sthread.now f.rsched + f.rs.req_timeout) (fun () ->
      on_timeout f op ~gen)

and on_timeout f op ~gen =
  if (not op.resolved) && op.attempts = gen then begin
    let cid = op.on_cid in
    if cid < 0 then ()  (* already on the backoff path *)
    else if ct_dead f.table cid then ()
    else if not (f.router.node_up (ct_node f.table cid)) then
      (* target declared dead: the connection is orphaned — drain it,
         which reroutes every inflight op including this one *)
      fail_conn f cid ~close:true
    else begin
      (* live node, slow reply: never retransmit on a live FIFO
         connection (the response will still arrive and a blind
         retransmit would double-apply); just keep watching *)
      if not op.timed_out then begin
        op.timed_out <- true;
        f.rtimeouts <- f.rtimeouts + 1
      end;
      if Sthread.now f.rsched < f.rdeadline then arm_timeout f op ~gen
    end
  end

and on_rx_routed f cid data =
  let dec =
    match f.table.cdec.(cid) with
    | Some d -> d
    | None -> assert false  (* installed at connect, before rx can fire *)
  in
  let node = ct_node f.table cid in
  let inflight = ct_inflight f cid in
  Wire.feed dec data;
  let parsing = ref true in
  while !parsing do
    match Wire.next_response dec with
    | Wire.Need_more -> parsing := false
    | Wire.Bad _ -> f.rerrors <- f.rerrors + 1
    | Wire.Item resp -> (
        match Queue.take_opt inflight with
        | None -> f.rerrors <- f.rerrors + 1
        | Some op -> (
            op.on_cid <- -1;
            if not op.resolved then
              match resp with
              | Wire.Server_error m
                when String.length m >= 4 && String.sub m 0 4 = "busy" ->
                  (* shed under overload: the backend never saw it, so a
                     retransmit after backoff is safe *)
                  f.rbusy <- f.rbusy + 1;
                  retry_op f op
              | _ ->
                  op.resolved <- true;
                  record_completion f node (Sthread.now f.rsched - op.t0);
                  (match resp with
                  | Wire.Values vs -> f.rhits <- f.rhits + List.length vs
                  | Wire.Stored -> (
                      match (f.rs.on_acked, op.rkind) with
                      | Some cb, `Set -> cb ~opid:op.opid ~node
                      | _ -> ())
                  | Wire.Error | Wire.Client_error _ | Wire.Server_error _ ->
                      f.rerrors <- f.rerrors + 1
                  | Wire.Not_stored | Wire.Deleted | Wire.Not_found -> ());
                  user_next f op))
  done

and user_next f op =
  match f.rs.base.mode with
  | Open _ -> ()
  | Closed { think } ->
      let when_ = Sthread.now f.rsched + think in
      if when_ < f.rhorizon then
        Sthread.at f.rsched ~time:when_ (fun () -> new_op f op.user)

and new_op f user =
  if Sthread.now f.rsched < f.rhorizon then begin
    let kind = if Prng.int f.key_prng 100 < f.rs.base.set_pct then `Set else `Get in
    let op =
      {
        opid = f.next_opid;
        rkind = kind;
        key = sample_key f;
        user;
        t0 = Sthread.now f.rsched;
        attempts = 0;
        resolved = false;
        timed_out = false;
        last_node = -1;
        on_cid = -1;
      }
    in
    f.next_opid <- f.next_opid + 1;
    f.rissued <- f.rissued + 1;
    send_op f op
  end

(* Connection churn: every [churn_interval] cycles recycle one drained
   connection (close + lazy reconnect on next use), round-robin over the
   whole cluster — connection setup/teardown keeps running under load. *)
let rec churn_tick f ~cursor =
  if Sthread.now f.rsched < f.rhorizon then begin
    let ct = f.table in
    let total = f.router.nnodes * ct.cnconns in
    let usable cid =
      (not (ct_dead ct cid))
      && ct.cconn.(cid) <> None
      && (match ct.cinflight.(cid) with None -> true | Some q -> Queue.is_empty q)
      && f.router.node_up (ct_node ct cid)
    in
    let rec find i left =
      if left = 0 then None
      else
        let cid = i mod total in
        if usable cid then Some cid else find (i + 1) (left - 1)
    in
    (match find cursor total with
    | Some cid ->
        (match ct.cconn.(cid) with
        | Some c -> Net.close (f.router.net_of (ct_node ct cid)) c
        | None -> ());
        ct.cconn.(cid) <- None;
        Bytes.set ct.cdead cid '\001';
        f.rchurned <- f.rchurned + 1
    | None -> ());
    Sthread.at f.rsched
      ~time:(Sthread.now f.rsched + f.rs.churn_interval)
      (fun () -> churn_tick f ~cursor:(cursor + 1))
  end

let run_routed sched router rs ~duration ?(stop = fun () -> ()) () =
  (match rs.base.mode with
  | Closed _ -> ()
  | Open _ -> invalid_arg "Netload.run_routed: open-loop mode is not supported");
  let sp = rs.base in
  let start = Sthread.now sched in
  let horizon = start + duration in
  let link_latency = (Net.config (router.net_of 0)).Net.link_latency in
  let grace = (10 * link_latency) + rs.req_timeout + 20_000 in
  let master = Prng.create sp.seed in
  let twindow = if rs.window > 0 then rs.window else max 1 (duration / 32) in
  let f =
    {
      rsched = sched;
      router;
      rs;
      rdist =
        (if sp.zipfian then Keydist.zipf ~range:sp.key_range ()
         else Keydist.uniform ~range:sp.key_range);
      rset_data = String.make (sp.val_lines * 64) 'x';
      rstart = start;
      rhorizon = horizon;
      rdeadline = horizon + grace;
      rhist = Histogram.create ();
      node_hist = Array.init router.nnodes (fun _ -> Histogram.create ());
      table = ct_make ~nnodes:router.nnodes ~nconns:sp.nconns;
      renc = Buffer.create 256;
      key_prng = Prng.split master;
      jitter_prng = Prng.split master;
      timeline = Array.make ((duration / twindow) + 1) 0;
      twindow;
      next_opid = 1;
      rissued = 0;
      rcompleted = 0;
      rresolved = 0;
      rerrors = 0;
      rhits = 0;
      rrefused = 0;
      rretries = 0;
      rrerouted = 0;
      rbusy = 0;
      rtimeouts = 0;
      rdropped = 0;
      rchurned = 0;
      node_completed = Array.make router.nnodes 0;
    }
  in
  router.subscribe_down (fun node ->
      for s = 0 to f.table.cnconns - 1 do
        fail_conn f ((node * f.table.cnconns) + s) ~close:true
      done);
  (match sp.mode with
  | Closed { think } ->
      for u = 0 to sp.nclients - 1 do
        let offset =
          if think > 0 then Prng.int f.jitter_prng think else Prng.int f.jitter_prng 64
        in
        Sthread.at sched ~time:(start + 1 + offset) (fun () -> new_op f u)
      done
  | Open _ -> assert false);
  if rs.churn_interval > 0 then
    Sthread.at sched ~time:(start + rs.churn_interval) (fun () -> churn_tick f ~cursor:0);
  Sthread.at sched ~time:(horizon + grace) (fun () -> stop ());
  Sthread.run sched;
  let seconds = Machine.cycles_to_seconds (Sthread.machine sched) duration in
  {
    agg =
      {
        issued = f.rissued;
        completed = f.rcompleted;
        errors = f.rerrors;
        hits = f.rhits;
        refused_conns = f.rrefused;
        duration_cycles = Sthread.now sched - start;
        throughput_mops =
          (if f.rcompleted = 0 then 0.0 else float_of_int f.rcompleted /. seconds /. 1e6);
        mean_latency = Histogram.mean f.rhist;
        p50 = Histogram.percentile f.rhist 0.50;
        p99 = Histogram.percentile f.rhist 0.99;
        p999 = Histogram.percentile f.rhist 0.999;
      };
    retries = f.rretries;
    rerouted = f.rrerouted;
    busy = f.rbusy;
    timeouts = f.rtimeouts;
    dropped = f.rdropped;
    abandoned = f.rissued - f.rresolved;
    churned = f.rchurned;
    conns_opened = f.table.copened;
    per_node_completed = Array.copy f.node_completed;
    per_node_p99 = Array.map (fun h -> Histogram.percentile h 0.99) f.node_hist;
    goodput_timeline = f.timeline;
    window_cycles = twindow;
  }

let run sched net sp ~duration ?(stop = fun () -> ()) () =
  let start = Sthread.now sched in
  let horizon = start + duration in
  let topo = Machine.topology (Sthread.machine sched) in
  let master = Prng.create sp.seed in
  let f =
    {
      sched;
      net;
      sp;
      dist =
        (if sp.zipfian then Keydist.zipf ~range:sp.key_range ()
         else Keydist.uniform ~range:sp.key_range);
      set_data = String.make (sp.val_lines * 64) 'x';
      horizon;
      hist = Histogram.create ();
      issued = 0;
      completed = 0;
      errors = 0;
      hits = 0;
      refused = 0;
    }
  in
  let conns =
    Array.init sp.nconns (fun i ->
        let cs =
          {
            conn = None;
            prng = Prng.split master;
            dec = Wire.decoder ();
            enc = Buffer.create 256;
            inflight = Queue.create ();
            dead = false;
          }
        in
        let conn =
          Net.connect net ~nic:(i mod Net.nic_count net)
            ~rx:(fun data -> on_rx f cs data)
            ~on_refused:(fun () ->
              cs.dead <- true;
              f.refused <- f.refused + 1)
            ()
        in
        cs.conn <- Some conn;
        cs)
  in
  (* kick the fleet off: users staggered over one think/gap window *)
  (match sp.mode with
  | Closed { think } ->
      for u = 0 to sp.nclients - 1 do
        let cs = conns.(u mod sp.nconns) in
        let offset = if think > 0 then Prng.int cs.prng think else Prng.int cs.prng 64 in
        Sthread.at sched ~time:(start + 1 + offset) (fun () -> issue f cs)
      done
  | Open { rate_mops } ->
      let cycles_per_sec = topo.Topology.ghz *. 1e9 in
      let ops_per_cycle = rate_mops *. 1e6 /. cycles_per_sec in
      let mean_gap = float_of_int sp.nconns /. ops_per_cycle in
      Array.iter (fun cs -> arrival_process f cs ~mean_gap) conns);
  (* after the issue window plus a drain grace, shut the server down *)
  let grace = (10 * (Net.config net).Net.link_latency) + 10_000 in
  Sthread.at sched ~time:(horizon + grace) (fun () -> stop ());
  Sthread.run sched;
  let seconds =
    Machine.cycles_to_seconds (Sthread.machine sched) duration
  in
  {
    issued = f.issued;
    completed = f.completed;
    errors = f.errors;
    hits = f.hits;
    refused_conns = f.refused;
    duration_cycles = Sthread.now sched - start;
    throughput_mops =
      (if f.completed = 0 then 0.0 else float_of_int f.completed /. seconds /. 1e6);
    mean_latency = Histogram.mean f.hist;
    p50 = Histogram.percentile f.hist 0.50;
    p99 = Histogram.percentile f.hist 0.99;
    p999 = Histogram.percentile f.hist 0.999;
  }

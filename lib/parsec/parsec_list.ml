module Simops = Dps_sthread.Simops
module Alloc = Dps_sthread.Alloc
module Mcs = Dps_sync.Mcs

type node = { key : int; mutable value : int; addr : int; mutable next : node option }

type t = { alloc : Alloc.t; rt : Parsec.t; wlock : Mcs.t; head : node }

let name = "parsec-ll"

let mk_node alloc key value next = { key; value; addr = Alloc.line alloc; next }

let create alloc =
  let tail = mk_node alloc max_int 0 None in
  {
    alloc;
    rt = Parsec.create alloc;
    wlock = Mcs.create alloc;
    head = mk_node alloc min_int 0 (Some tail);
  }

(* Traversal is safe under quiescence: a concurrently unlinked node still
   points into the list, and it cannot be reclaimed until we exit. *)
(* racy by design: readers traverse inside a ParSec section concurrently
   with the serialized writer; quiescence (not ordering) keeps unlinked
   nodes alive until every reader exits *)
let search t key =
  Simops.charge_read_racy t.head.addr;
  let rec go pred =
    let curr = Option.get pred.next in
    Simops.charge_read_racy curr.addr;
    if curr.key >= key then (pred, curr) else go curr
  in
  let r = go t.head in
  Simops.flush ();
  r

let lookup t key =
  Parsec.enter t.rt;
  let _, curr = search t key in
  let r = if curr.key = key then Some curr.value else None in
  Parsec.exit t.rt;
  r

(* The single writer lock serializes updates (the paper names this as the
   reason the ParSec list degrades with update ratio in Figure 10(c)). *)
let insert t ~key ~value =
  Mcs.acquire t.wlock;
  let pred, curr = search t key in
  let result =
    if curr.key = key then false
    else begin
      let n = mk_node t.alloc key value (Some curr) in
      Simops.write n.addr;
      pred.next <- Some n;
      Simops.write pred.addr;
      true
    end
  in
  Mcs.release t.wlock;
  result

let remove t key =
  Mcs.acquire t.wlock;
  let pred, curr = search t key in
  let result =
    if curr.key <> key then false
    else begin
      pred.next <- curr.next;
      Simops.write pred.addr;
      (* grace period before the node's memory may be reused *)
      Parsec.quiesce t.rt;
      true
    end
  in
  Mcs.release t.wlock;
  result

let to_list t =
  let rec go acc n =
    match n.next with
    | None -> List.rev acc
    | Some c -> if c.key = max_int then List.rev acc else go ((c.key, c.value) :: acc) c
  in
  go [] t.head

let check_invariants t =
  let rec go prev n =
    match n.next with
    | None -> if n.key <> max_int then failwith "parsec_list: missing tail sentinel"
    | Some c ->
        if c.key <= prev then failwith "parsec_list: keys not strictly increasing";
        go c.key c
  in
  go min_int t.head

let maintenance _ = ()

module Sthread = Dps_sthread.Sthread
module Simops = Dps_sthread.Simops
module Alloc = Dps_sthread.Alloc

type slot = { addr : int; mutable entered_at : int (* -1 = quiescent *) }

type t = {
  alloc : Alloc.t;
  slots : (int, slot) Hashtbl.t;  (* logical thread id -> slot *)
  mutable slot_list : slot list;
}

let create alloc = { alloc; slots = Hashtbl.create 128; slot_list = [] }

let my_slot t =
  let tid = if Sthread.in_sim () then Sthread.self_id () else -1 in
  match Hashtbl.find_opt t.slots tid with
  | Some s -> s
  | None ->
      let s = { addr = Alloc.line t.alloc; entered_at = -1 } in
      Hashtbl.add t.slots tid s;
      t.slot_list <- s :: t.slot_list;
      s

let now () = if Sthread.in_sim () then Sthread.time () else 0

let enter t =
  let s = my_slot t in
  s.entered_at <- now ();
  (* releasing publish: [quiesce]'s poll reads this slot *)
  Simops.write_release s.addr

let exit t =
  let s = my_slot t in
  s.entered_at <- -1;
  (* releasing publish: the quiescence waiter takes its HB edge from here *)
  Simops.write_release s.addr

let quiesce t =
  let start = now () in
  List.iter
    (fun s ->
      let b = Dps_sync.Backoff.create ~initial:32 ~cap:4096 () in
      let rec wait () =
        Simops.read s.addr;
        (* a reader still inside a section it entered before [start] may
           still hold references from before our unlink *)
        if s.entered_at >= 0 && s.entered_at <= start then begin
          Dps_sync.Backoff.once b;
          wait ()
        end
      in
      wait ())
    t.slot_list

let active_readers t =
  List.fold_left (fun acc s -> if s.entered_at >= 0 then acc + 1 else acc) 0 t.slot_list

module Machine = Dps_machine.Machine
module Topology = Dps_machine.Topology
module Simops = Dps_sthread.Simops
module Sthread = Dps_sthread.Sthread
module Alloc = Dps_sthread.Alloc

(* Consecutive same-socket hand-offs before the holder must splice the
   secondary queue back in (the paper draws this threshold from a PRNG;
   a deterministic budget keeps simulation runs replayable). *)
let default_fairness = 32

type qnode = {
  qaddr : int;
  qtid : int;  (* owning thread, for crashed-holder recovery *)
  mutable locked : bool;
  mutable next : qnode option;
  mutable socket : int;  (* waiter's socket, sampled at enqueue *)
}

type t = {
  tail_addr : int;
  mutable tail : qnode option;
  (* Secondary queue of remote-socket waiters, detached from the main
     queue by releasing holders. Only the current holder touches these
     fields, so they need no charged line of their own — the hand-off
     edge orders them (same discipline as a DPS ring's recv_idx). *)
  mutable sec_head : qnode option;
  mutable sec_tail : qnode option;
  mutable owner_tid : int;  (* holder's thread id, -1 when free (host metadata) *)
  mutable local_streak : int;  (* consecutive same-socket hand-offs *)
  mutable remote_transfers : int;  (* hand-offs that crossed sockets *)
  mutable handoffs : int;  (* total hand-offs *)
  fairness : int;
  qnodes : (int, qnode) Hashtbl.t;  (* logical thread id -> qnode *)
  topo : Topology.t;
  alloc : Alloc.t;
}

let create ?(fairness = default_fairness) alloc m =
  {
    tail_addr = Alloc.line alloc;
    tail = None;
    sec_head = None;
    sec_tail = None;
    owner_tid = -1;
    local_streak = 0;
    remote_transfers = 0;
    handoffs = 0;
    fairness = max 1 fairness;
    qnodes = Hashtbl.create 64;
    topo = Machine.topology m;
    alloc;
  }

(* One queue node per (lock, thread), lazily allocated like MCS's. *)
let qnode_for t =
  let tid = if Sthread.in_sim () then Sthread.self_id () else -1 in
  match Hashtbl.find_opt t.qnodes tid with
  | Some q -> q
  | None ->
      let q = { qaddr = Alloc.line t.alloc; qtid = tid; locked = false; next = None; socket = 0 } in
      Hashtbl.add t.qnodes tid q;
      q

let my_socket t =
  if Sthread.in_sim () then Topology.socket_of_thread t.topo (Sthread.self_hw ()) else 0

let acquire t =
  let q = qnode_for t in
  q.locked <- true;
  q.next <- None;
  q.socket <- my_socket t;
  Simops.write q.qaddr;
  Simops.rmw t.tail_addr;
  (* atomic swap of the tail pointer *)
  let pred = t.tail in
  t.tail <- Some q;
  match pred with
  | None -> t.owner_tid <- q.qtid
  | Some p ->
      p.next <- Some q;
      Simops.write_release p.qaddr;
      let b = Backoff.create ~initial:16 ~cap:2048 () in
      let rec wait () =
        Simops.read q.qaddr;
        if q.locked then begin
          Backoff.once b;
          wait ()
        end
      in
      wait ()

(* Uncontended acquisition only: succeed iff the queue is empty, without
   ever joining it. A failed attempt leaves no trace to unlink, so callers
   can bound their patience and walk away — the property DPS's direct mode
   needs when a partition may change mode while the lock is busy. *)
let try_acquire t =
  if t.tail <> None then begin
    (* busy: pay the probe read, fail without touching the queue *)
    Simops.read t.tail_addr;
    false
  end
  else begin
    let q = qnode_for t in
    q.locked <- true;
    q.next <- None;
    q.socket <- my_socket t;
    Simops.write q.qaddr;
    Simops.rmw t.tail_addr;
    (* the swap is conditional this time: back off if a waiter beat us *)
    match t.tail with
    | Some _ -> false
    | None ->
        t.tail <- Some q;
        t.owner_tid <- q.qtid;
        true
  end

let hand_to t ~local n =
  t.handoffs <- t.handoffs + 1;
  if local then t.local_streak <- t.local_streak + 1
  else begin
    t.local_streak <- 0;
    t.remote_transfers <- t.remote_transfers + 1
  end;
  t.owner_tid <- n.qtid;
  n.locked <- false;
  Simops.write_release n.qaddr

(* Append the chain [h .. l] (already nil-terminated by the caller) to the
   secondary queue. *)
let stash t h l =
  (match t.sec_tail with
  | None -> t.sec_head <- Some h
  | Some st ->
      st.next <- Some h;
      Simops.write_release st.qaddr);
  t.sec_tail <- Some l

(* Splice the whole secondary queue in front of [rest] (the remainder of
   the main queue, or None when it is empty) and hand the lock to its
   head. Counts as a remote transfer: the next holder's socket is
   arbitrary. *)
let release_secondary t ~rest =
  let h = Option.get t.sec_head and l = Option.get t.sec_tail in
  l.next <- rest;
  Simops.write_release l.qaddr;
  t.sec_head <- None;
  t.sec_tail <- None;
  hand_to t ~local:(h.socket = my_socket t) h

(* The CNA pass: starting from successor [n], find the first waiter on the
   releaser's socket, detaching the prefix of remote waiters into the
   secondary queue. Every visited node costs a charged read — the scan is
   the price CNA pays, once per hand-off, to keep the lock on-socket. *)
let pass t my_sock n =
  if t.local_streak >= t.fairness && t.sec_head <> None then
    (* fairness epoch: starved remote waiters go first *)
    release_secondary t ~rest:(Some n)
  else begin
    Simops.read n.qaddr;
    if n.socket = my_sock then hand_to t ~local:true n
    else begin
      (* walk for a same-socket waiter; an unlinked arrival ends the scan *)
      let rec scan prev =
        match prev.next with
        | None -> None
        | Some c ->
            Simops.read c.qaddr;
            if c.socket = my_sock then Some (prev, c) else scan c
      in
      match scan n with
      | Some (prev, local) ->
          (* detach [n .. prev] into the secondary queue *)
          prev.next <- None;
          Simops.write_release prev.qaddr;
          stash t n prev;
          hand_to t ~local:true local
      | None ->
          if t.sec_head <> None then release_secondary t ~rest:(Some n)
          else hand_to t ~local:false n
    end
  end

let release t =
  let q = qnode_for t in
  Simops.read q.qaddr;
  match q.next with
  | Some n -> pass t q.socket n
  | None -> (
      (* no linked successor: either the queue is empty or an arrival is
         between its tail swap and the link write *)
      Simops.rmw t.tail_addr;
      match t.tail with
      | Some q' when q' == q -> (
          match t.sec_head with
          | None ->
              t.tail <- None;
              t.owner_tid <- -1
          | Some _ ->
              (* the main queue drains but remote waiters are parked on the
                 secondary queue: they become the new main queue *)
              t.tail <- t.sec_tail;
              release_secondary t ~rest:None)
      | Some _ | None ->
          let rec wait_link () =
            Simops.read q.qaddr;
            if q.next = None then wait_link ()
          in
          wait_link ();
          pass t q.socket (Option.get q.next))

let held t = t.tail <> None
let owner t = if t.tail = None then None else Some t.owner_tid

(* Recovery: reset the lock wholesale. Only sound when the holder is known
   dead AND no live thread can be blocked in {!acquire} — DPS's direct
   mode qualifies, since it takes this lock through {!try_acquire}
   exclusively, which never joins the queue. A dead holder's qnode (and
   any dead waiters stranded behind it) are simply abandoned. *)
let break_lock t =
  if t.tail <> None then begin
    Simops.rmw t.tail_addr;
    t.tail <- None;
    t.sec_head <- None;
    t.sec_tail <- None;
    t.local_streak <- 0;
    t.owner_tid <- -1
  end

let remote_transfers t = t.remote_transfers
let handoffs t = t.handoffs

module Simops = Dps_sthread.Simops
module Sthread = Dps_sthread.Sthread

type t = { addr : int; mutable locked : bool; mutable owner : int }

let create alloc = { addr = Dps_sthread.Alloc.line alloc; locked = false; owner = -1 }
let embed ~addr = { addr; locked = false; owner = -1 }

let try_acquire t =
  Simops.rmw t.addr;
  if t.locked then false
  else begin
    t.locked <- true;
    t.owner <- (if Sthread.in_sim () then Sthread.self_id () else -1);
    true
  end

let acquire t =
  let b = Backoff.create () in
  let rec loop () =
    (* racy by design: spinlocks embed in data lines (lazy lists), so the
       spin read may race the holder's field stores; the rmw re-checks *)
    Simops.read_racy t.addr;
    if t.locked then begin
      Backoff.once b;
      loop ()
    end
    else if not (try_acquire t) then begin
      Backoff.once b;
      loop ()
    end
  in
  loop ()

let acquire_for t ~budget =
  if not (Sthread.in_sim ()) then try_acquire t
  else begin
    let deadline = Sthread.time () + max 0 budget in
    let b = Backoff.create () in
    let rec loop () =
      if try_acquire t then true
      else if Sthread.time () >= deadline then false
      else begin
        Backoff.once b;
        loop ()
      end
    in
    loop ()
  end

let release t =
  assert t.locked;
  t.locked <- false;
  t.owner <- -1;
  Simops.write_release t.addr

let held t = t.locked
let owner t = if t.locked then Some t.owner else None

let break_lock t =
  if t.locked then begin
    t.locked <- false;
    t.owner <- -1;
    Simops.write_release t.addr
  end

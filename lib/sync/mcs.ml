module Simops = Dps_sthread.Simops
module Sthread = Dps_sthread.Sthread
module Alloc = Dps_sthread.Alloc

type qnode = { qaddr : int; mutable locked : bool; mutable next : qnode option }

type t = {
  tail_addr : int;
  mutable tail : qnode option;
  qnodes : (int, qnode) Hashtbl.t;  (* logical thread id -> this thread's qnode *)
  alloc : Alloc.t;
}

let create alloc = { tail_addr = Alloc.line alloc; tail = None; qnodes = Hashtbl.create 64; alloc }

(* One queue node per (lock, thread); allocated lazily on the thread's own
   NUMA node so the waiter's spinning is socket-local. *)
let qnode_for t =
  let tid = if Sthread.in_sim () then Sthread.self_id () else -1 in
  match Hashtbl.find_opt t.qnodes tid with
  | Some q -> q
  | None ->
      let q = { qaddr = Alloc.line t.alloc; locked = false; next = None } in
      Hashtbl.add t.qnodes tid q;
      q

let acquire t =
  let q = qnode_for t in
  q.locked <- true;
  q.next <- None;
  Simops.write q.qaddr;
  Simops.rmw t.tail_addr;
  (* atomic swap of the tail pointer *)
  let pred = t.tail in
  t.tail <- Some q;
  match pred with
  | None -> ()
  | Some p ->
      p.next <- Some q;
      Simops.write_release p.qaddr;
      (* every observation of the hand-off goes through a charged read: the
         read that sees locked=false is the acquire side of the releaser's
         releasing store *)
      let b = Backoff.create ~initial:16 ~cap:2048 () in
      let rec wait () =
        Simops.read q.qaddr;
        if q.locked then begin
          Backoff.once b;
          wait ()
        end
      in
      wait ()

let release t =
  let q = qnode_for t in
  Simops.read q.qaddr;
  match q.next with
  | Some n ->
      n.locked <- false;
      Simops.write_release n.qaddr
  | None -> (
      (* try to swing tail back to empty *)
      Simops.rmw t.tail_addr;
      match t.tail with
      | Some q' when q' == q -> t.tail <- None
      | Some _ | None ->
          (* a successor is between swap and link: wait for it to appear,
             observing the link through a charged (acquiring) read *)
          let rec wait_link () =
            Simops.read q.qaddr;
            if q.next = None then wait_link ()
          in
          wait_link ();
          let n = Option.get q.next in
          n.locked <- false;
          Simops.write_release n.qaddr)

let held t = t.tail <> None

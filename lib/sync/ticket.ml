module Simops = Dps_sthread.Simops

type t = { addr : int; mutable next : int; mutable owner : int }

let create alloc = { addr = Dps_sthread.Alloc.line alloc; next = 0; owner = 0 }
let embed ~addr = { addr; next = 0; owner = 0 }

let acquire t =
  Simops.rmw t.addr;
  let my = t.next in
  t.next <- my + 1;
  (* racy by design: ticket locks embed in data lines (e.g. bst-tk nodes),
     so the spin read races with the holder's plain writes to the line.
     Racy reads still acquire, so the read observing owner = my picks up
     the releaser's HB edge. *)
  let b = Backoff.create ~initial:16 ~cap:256 () in
  let rec wait () =
    Simops.read_racy t.addr;
    if t.owner <> my then begin
      Backoff.once b;
      wait ()
    end
  in
  if t.owner <> my then wait ()

let release t =
  t.owner <- t.owner + 1;
  Simops.write_release t.addr

let held t = t.owner < t.next

(** Test-and-test-and-set spinlock with exponential backoff.

    The lock word occupies (or is embedded in) a simulated cache line, so
    contended acquisition generates the coherence traffic the paper blames
    for shared-memory scalability collapse. *)

type t

val create : Dps_sthread.Alloc.t -> t
val embed : addr:int -> t
(** Share a cache line with other data (e.g. a list node's line). *)

val acquire : t -> unit
val try_acquire : t -> bool
val acquire_for : t -> budget:int -> bool
(** Spin (with {!Backoff}) until the lock is acquired or [budget]
    simulated cycles have elapsed; returns whether it was acquired.
    Self-healing paths use this so a lock abandoned by a crashed holder
    costs bounded time instead of a hang. Outside the simulation this
    degrades to a single {!try_acquire}. *)

val release : t -> unit
val held : t -> bool

val owner : t -> int option
(** Simulated thread id of the current holder ([Some (-1)] if acquired
    outside the simulation), or [None] when free. Recovery paths use this
    to recognise locks abandoned by crashed threads. *)

val break_lock : t -> unit
(** Force-release, regardless of holder — only sound once the holder is
    known dead (e.g. its thread was killed while serving). No-op when
    free. *)

module Simops = Dps_sthread.Simops

type t = { addr : int; parties : int; mutable count : int; mutable sense : bool }

let create alloc ~parties =
  assert (parties > 0);
  { addr = Dps_sthread.Alloc.line alloc; parties; count = 0; sense = false }

let await t =
  Simops.rmw t.addr;
  let my_sense = not t.sense in
  t.count <- t.count + 1;
  if t.count = t.parties then begin
    t.count <- 0;
    t.sense <- my_sense;
    Simops.write_release t.addr
  end
  else begin
    (* observe the sense flip only through charged (acquiring) reads *)
    let b = Backoff.create ~initial:32 ~cap:512 () in
    let rec wait () =
      Simops.read t.addr;
      if t.sense <> my_sense then begin
        Backoff.once b;
        wait ()
      end
    in
    wait ()
  end

(** CNA — compact NUMA-aware queue lock (Dice & Kogan, EuroSys'19).

    An MCS-style queue lock whose releaser scans the waiter queue for the
    first thread on its own socket and hands the lock over locally,
    detaching the skipped remote-socket waiters into a secondary queue.
    The lock's data line therefore migrates between sockets rarely — like
    a cohort lock — but with a single queue word and no per-socket lock
    instances. After [fairness] consecutive same-socket hand-offs the
    secondary queue is spliced back in front of the main queue, so remote
    waiters are delayed, never starved.

    This is the lock behind DPS's {e direct} partition mode: when the
    adaptive controller decides a partition is too cool to be worth
    delegation, remote clients bypass the message rings and serialize on
    the partition's CNA lock instead. *)

type t

val create : ?fairness:int -> Dps_sthread.Alloc.t -> Dps_machine.Machine.t -> t
(** [fairness] (default 32) is the consecutive-local-hand-off budget
    before the secondary queue must be spliced back (the paper draws the
    epoch from a PRNG; a deterministic budget keeps runs replayable). *)

val acquire : t -> unit

val try_acquire : t -> bool
(** Uncontended acquisition only: succeeds iff the waiter queue is empty,
    and never joins it on failure — so a caller can bound its patience and
    fall back to another path (DPS's direct mode falls back to the message
    rings) without the unlink problem an abandoned MCS node would pose.
    Release with {!release} as usual. *)

val release : t -> unit
val held : t -> bool

val owner : t -> int option
(** Simulated thread id of the current holder ([Some (-1)] if acquired
    outside the simulation), or [None] when free. Recovery paths use this
    to recognise locks abandoned by crashed threads. *)

val break_lock : t -> unit
(** Force-release, regardless of holder. Only sound when the holder is
    known dead and no live thread can be waiting in {!acquire} — the
    situation of DPS's direct mode, which acquires exclusively through
    {!try_acquire} (never enqueued, so a crashed holder leaves nothing
    worth preserving in the queue). No-op when free. *)

val remote_transfers : t -> int
(** Hand-offs that moved the lock to another socket (tests/ablation). *)

val handoffs : t -> int
(** Total hand-offs performed (local + remote). *)

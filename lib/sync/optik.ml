module Simops = Dps_sthread.Simops

type t = { addr : int; mutable version : int }

let create alloc = { addr = Dps_sthread.Alloc.line alloc; version = 0 }
let embed ~addr = { addr; version = 0 }

let get_version t =
  (* racy by design: optik locks embed in data lines, so the optimistic
     version read races the holder's field stores; callers re-validate *)
  Simops.read_racy t.addr;
  t.version

let is_locked v = v land 1 = 1

let try_lock_at t v =
  Simops.rmw t.addr;
  if t.version = v && not (is_locked v) then begin
    t.version <- v + 1;
    true
  end
  else false

let lock t =
  let b = Backoff.create () in
  let rec loop () =
    let v = get_version t in
    if is_locked v then begin
      Backoff.once b;
      loop ()
    end
    else if not (try_lock_at t v) then begin
      Backoff.once b;
      loop ()
    end
  in
  loop ()

let unlock t =
  assert (is_locked t.version);
  t.version <- t.version + 1;
  Simops.write_release t.addr

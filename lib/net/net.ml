module Sthread = Dps_sthread.Sthread
module Machine = Dps_machine.Machine
module Topology = Dps_machine.Topology
module Obs = Dps_obs.Obs

(* Trace row for a NIC: packets are event-context work with no simulated
   thread, so they render on a per-socket pseudo-thread. *)
let nic_tid socket = Obs.pseudo_tid ~kind:1 socket

type config = {
  link_latency : int;
  cycles_per_line : int;
  mtu_lines : int;
  ring_lines : int;
  rx_window : int;
  dma_charge : bool;
}

let default_config =
  {
    link_latency = 2_000;
    cycles_per_line = 10;
    mtu_lines = 24;
    ring_lines = 64;
    rx_window = 4096;
    dma_charge = true;
  }

type stats = {
  mutable pkts_rx : int;
  mutable pkts_tx : int;
  mutable bytes_rx : int;
  mutable bytes_tx : int;
  mutable dma_lines : int;
  mutable local_lines : int;
  mutable remote_lines : int;
  mutable backpressured : int;
  mutable refused : int;
  mutable accepted : int;
}

type nic = {
  socket : int;
  dma_hw : int;  (** per-socket DMA agent: coherence actor for NIC transfers *)
  mutable rx_free_at : int;  (** client->server link busy horizon *)
  mutable tx_free_at : int;  (** server->client link busy horizon *)
}

type conn_state = Connecting | Open | Refused | Closed

type conn = {
  id : int;
  nic : nic;
  mutable state : conn_state;
  rx : Byteq.t;  (** delivered, awaiting server recv *)
  mutable rx_pending : int;  (** bytes DMA'd but not yet delivered *)
  backlog : string Queue.t;  (** packets held at the NIC by the rx window *)
  rx_ring : int;
  tx_ring : int;
  mutable rx_wr : int;  (** ring write cursor, in lines *)
  mutable rx_rd : int;
  mutable tx_wr : int;
  mutable deliver_free : int;  (** FIFO horizon for post-DMA delivery *)
  mutable on_readable : (unit -> unit) option;
  rx_cb : string -> unit;
  on_refused : unit -> unit;
}

type t = {
  sched : Sthread.t;
  m : Machine.t;
  topo : Topology.t;
  cfg : config;
  nics : nic array;
  pending : conn Queue.t;
  accept_waitq : Sthread.Waitq.t;
  mutable listening : bool;
  mutable next_conn : int;
  st : stats;
}

let line_bytes = 64
let lines_of_bytes n = (n + line_bytes - 1) / line_bytes

let create sched ?(config = default_config) () =
  let m = Sthread.machine sched in
  let topo = Machine.topology m in
  let nics =
    Array.init topo.Topology.sockets (fun s ->
        {
          socket = s;
          (* second hyperthread of the socket's first core: a real coherence
             actor whose private cache stands in for the NIC's DDIO slice *)
          dma_hw =
            (s * topo.Topology.cores_per_socket * topo.Topology.threads_per_core)
            + min 1 (topo.Topology.threads_per_core - 1);
          rx_free_at = 0;
          tx_free_at = 0;
        })
  in
  {
    sched;
    m;
    topo;
    cfg = config;
    nics;
    pending = Queue.create ();
    accept_waitq = Sthread.Waitq.create ();
    listening = true;
    next_conn = 0;
    st =
      {
        pkts_rx = 0;
        pkts_tx = 0;
        bytes_rx = 0;
        bytes_tx = 0;
        dma_lines = 0;
        local_lines = 0;
        remote_lines = 0;
        backpressured = 0;
        refused = 0;
        accepted = 0;
      };
  }
  |> fun t ->
  if Obs.tracing_on () then
    Array.iter
      (fun nic -> Obs.thread_name ~tid:(nic_tid nic.socket) (Printf.sprintf "nic s%d" nic.socket))
      t.nics;
  t

let sched t = t.sched
let config t = t.cfg
let nic_count t = Array.length t.nics
let stats t = t.st
let socket_of_conn c = c.nic.socket
let conn_id c = c.id

let local_fraction t =
  let total = t.st.local_lines + t.st.remote_lines in
  if total = 0 then 1.0 else float_of_int t.st.local_lines /. float_of_int total

(* Reserve the link for [lines] of payload: serialization delays departure,
   propagation delays arrival. Returns the arrival time. *)
let reserve_link t ~free_at ~set_free ~lines =
  let now = Sthread.now t.sched in
  let depart = max now free_at + (lines * t.cfg.cycles_per_line) in
  set_free depart;
  depart + t.cfg.link_latency

let reserve_rx t nic ~lines =
  reserve_link t ~free_at:nic.rx_free_at ~set_free:(fun v -> nic.rx_free_at <- v) ~lines

let reserve_tx t nic ~lines =
  reserve_link t ~free_at:nic.tx_free_at ~set_free:(fun v -> nic.tx_free_at <- v) ~lines

(* DMA one packet's lines into the receive ring through the coherence
   directory, as the per-socket DMA agent. Returns the charged cycles. *)
let dma_in t c ~bytes =
  if not t.cfg.dma_charge then 0
  else begin
    let lines = lines_of_bytes bytes in
    let cost = ref 0 in
    for _ = 1 to lines do
      let addr = c.rx_ring + (c.rx_wr mod t.cfg.ring_lines) in
      c.rx_wr <- c.rx_wr + 1;
      cost :=
        !cost
        + Machine.access t.m ~now:(Sthread.now t.sched) ~thread:c.nic.dma_hw ~addr
            ~kind:Machine.Write
    done;
    t.st.dma_lines <- t.st.dma_lines + lines;
    (* DDIO payload bytes drain the socket's memory-controller bucket;
       queueing debt delays delivery (0 when bandwidth modeling is off) *)
    cost :=
      !cost
      + Machine.bw_charge_dma t.m ~now:(Sthread.now t.sched) ~socket:c.nic.socket ~bytes;
    !cost
  end

let notify_readable c = match c.on_readable with None -> () | Some f -> f ()

(* A packet has crossed the link: DMA it in (unless the window is full, in
   which case it waits at the NIC) and hand the bytes to the server side. *)
let rec deliver_pkt t c data =
  if c.state = Open then begin
    (* ring occupancy counts bytes mid-DMA too, not just delivered ones *)
    if Byteq.length c.rx + c.rx_pending >= t.cfg.rx_window then begin
      Queue.push data c.backlog;
      t.st.backpressured <- t.st.backpressured + 1
    end
    else begin
      let cost = dma_in t c ~bytes:(String.length data) in
      let now = Sthread.now t.sched in
      let when_ = max (now + cost) c.deliver_free in
      c.deliver_free <- when_;
      c.rx_pending <- c.rx_pending + String.length data;
      Sthread.at t.sched ~time:when_ (fun () ->
          c.rx_pending <- c.rx_pending - String.length data;
          if c.state = Open then begin
            (* edge-triggered: fire the readiness callback only on the
               empty-to-nonempty transition. Consumers that leave bytes
               behind re-arm themselves (the server re-enqueues while
               [recv_ready] > 0), so a level-triggered storm of wakeups
               per packet is pure overhead. *)
            let was_empty = Byteq.length c.rx = 0 in
            Byteq.push c.rx data;
            t.st.pkts_rx <- t.st.pkts_rx + 1;
            t.st.bytes_rx <- t.st.bytes_rx + String.length data;
            if Obs.tracing_on () then
              Obs.instant
                ~tid:(nic_tid c.nic.socket)
                ~now:(Sthread.now t.sched) ~cat:"net"
                ~args:[ ("conn", Obs.A_int c.id); ("bytes", Obs.A_int (String.length data)) ]
                "net.rx_pkt";
            if was_empty then notify_readable c
          end)
    end
  end

and release_backlog t c =
  while
    (not (Queue.is_empty c.backlog)) && Byteq.length c.rx + c.rx_pending < t.cfg.rx_window
  do
    deliver_pkt t c (Queue.pop c.backlog)
  done

let refuse_conn t c =
  if c.state <> Refused then begin
    c.state <- Refused;
    t.st.refused <- t.st.refused + 1;
    Byteq.clear c.rx;
    Queue.clear c.backlog;
    Sthread.at t.sched
      ~time:(Sthread.now t.sched + t.cfg.link_latency)
      (fun () -> c.on_refused ())
  end

let connect t ~nic ~rx ?(on_refused = fun () -> ()) () =
  let nic = t.nics.(nic) in
  let rings = Machine.alloc t.m (Machine.On_node nic.socket) ~lines:(2 * t.cfg.ring_lines) in
  let c =
    {
      id = t.next_conn;
      nic;
      state = Connecting;
      rx = Byteq.create ();
      rx_pending = 0;
      backlog = Queue.create ();
      (* both rings in ONE allocation: same addresses as the two
         back-to-back allocs this replaces, but half the region metadata —
         at fleet scale the region table, not the payload, is the memory
         bound. tx takes the base because record fields evaluate
         right-to-left, so the old tx alloc ran first; keeping the address
         map preserves bit-identical charge streams *)
      rx_ring = rings + t.cfg.ring_lines;
      tx_ring = rings;
      rx_wr = 0;
      rx_rd = 0;
      tx_wr = 0;
      deliver_free = 0;
      on_readable = None;
      rx_cb = rx;
      on_refused;
    }
  in
  t.next_conn <- t.next_conn + 1;
  let arrive = reserve_rx t nic ~lines:1 in
  Sthread.at t.sched ~time:arrive (fun () ->
      if c.state = Connecting then
        if t.listening then begin
          c.state <- Open;
          Queue.push c t.pending;
          ignore (Sthread.Waitq.signal t.sched t.accept_waitq)
        end
        else refuse_conn t c);
  c

let send t c data =
  if (c.state = Open || c.state = Connecting) && String.length data > 0 then begin
    let len = String.length data in
    let mtu = t.cfg.mtu_lines * line_bytes in
    let pos = ref 0 in
    while !pos < len do
      let n = min mtu (len - !pos) in
      (* single-packet payloads (the overwhelming case) ride as-is; only a
         multi-MTU response pays for substring copies *)
      let chunk = if n = len then data else String.sub data !pos n in
      pos := !pos + n;
      let arrive = reserve_rx t c.nic ~lines:(lines_of_bytes n) in
      Sthread.at t.sched ~time:arrive (fun () -> deliver_pkt t c chunk)
    done
  end

let rec accept t =
  match Queue.take_opt t.pending with
  | Some c ->
      t.st.accepted <- t.st.accepted + 1;
      Some c
  | None ->
      if not t.listening then None
      else begin
        Sthread.Waitq.wait t.accept_waitq;
        accept t
      end

let unlisten t =
  t.listening <- false;
  Queue.iter (fun c -> refuse_conn t c) t.pending;
  Queue.clear t.pending;
  ignore (Sthread.Waitq.broadcast t.sched t.accept_waitq)

let refuse t c = refuse_conn t c

let close _t c =
  if c.state = Open || c.state = Connecting then begin
    c.state <- Closed;
    Byteq.clear c.rx;
    Queue.clear c.backlog;
    (* nudge the serving side so it can observe the close and release the
       connection's slot — without this a churny client leaks server
       state on every disconnect *)
    match c.on_readable with Some f -> f () | None -> ()
  end

let is_closed c = c.state = Closed

let set_on_readable c f = c.on_readable <- Some f
let recv_ready c = Byteq.length c.rx

(* Tally a server-side touch of [lines] ring lines: socket-local iff the
   calling thread shares the NIC's socket. *)
let tally_locality t c ~lines =
  if Topology.socket_of_thread t.topo (Sthread.self_hw ()) = c.nic.socket then
    t.st.local_lines <- t.st.local_lines + lines
  else t.st.remote_lines <- t.st.remote_lines + lines

let recv t c ~max =
  let avail = min max (Byteq.length c.rx) in
  if avail = 0 then ""
  else begin
    let lines = lines_of_bytes avail in
    for _ = 1 to lines do
      Sthread.charge_read (c.rx_ring + (c.rx_rd mod t.cfg.ring_lines));
      c.rx_rd <- c.rx_rd + 1
    done;
    Sthread.flush ();
    tally_locality t c ~lines;
    let data = Byteq.take c.rx ~max:avail in
    release_backlog t c;
    data
  end

let reply t c data =
  let len = String.length data in
  if c.state = Open && len > 0 then begin
    (* the server thread streams the response into the transmit ring *)
    let lines = lines_of_bytes len in
    for _ = 1 to lines do
      let addr = c.tx_ring + (c.tx_wr mod t.cfg.ring_lines) in
      c.tx_wr <- c.tx_wr + 1;
      Sthread.access_pipelined ~factor:4 ~kind:Machine.Write addr
    done;
    tally_locality t c ~lines;
    (* NIC DMA-reads the ring (coherence only; the engine's own latency is
       folded into serialization) and the packets ride the tx link *)
    if t.cfg.dma_charge then begin
      for i = 0 to lines - 1 do
        ignore
          (Machine.access t.m ~now:(Sthread.now t.sched) ~thread:c.nic.dma_hw
             ~addr:(c.tx_ring + ((c.tx_wr - lines + i) mod t.cfg.ring_lines))
             ~kind:Machine.Read)
      done;
      (* tx DDIO is posted: the bytes drain the bucket but the engine does
         not block the serving thread (no-op when bandwidth is off) *)
      ignore (Machine.bw_charge_dma t.m ~now:(Sthread.now t.sched) ~socket:c.nic.socket ~bytes:len)
    end;
    let mtu = t.cfg.mtu_lines * line_bytes in
    let pos = ref 0 in
    while !pos < len do
      let n = min mtu (len - !pos) in
      let chunk = if n = len then data else String.sub data !pos n in
      pos := !pos + n;
      let arrive = reserve_tx t c.nic ~lines:(lines_of_bytes n) in
      t.st.pkts_tx <- t.st.pkts_tx + 1;
      t.st.bytes_tx <- t.st.bytes_tx + n;
      if Obs.tracing_on () then
        Obs.instant
          ~tid:(nic_tid c.nic.socket)
          ~now:(Sthread.now t.sched) ~cat:"net"
          ~args:[ ("conn", Obs.A_int c.id); ("bytes", Obs.A_int n) ]
          "net.tx_pkt";
      Sthread.at t.sched ~time:arrive (fun () -> if c.state = Open then c.rx_cb chunk)
    done
  end

let register_obs ?(labels = []) t reg =
  let module R = Dps_obs.Registry in
  let g name help f = R.gauge_fn reg ~labels ~help ("net." ^ name) f in
  g "pkts_rx" "packets delivered to the server side" (fun () -> float_of_int t.st.pkts_rx);
  g "pkts_tx" "response packets onto the tx links" (fun () -> float_of_int t.st.pkts_tx);
  g "bytes_rx" "request bytes delivered" (fun () -> float_of_int t.st.bytes_rx);
  g "bytes_tx" "response bytes sent" (fun () -> float_of_int t.st.bytes_tx);
  g "dma_lines" "lines DMA'd through the directory" (fun () -> float_of_int t.st.dma_lines);
  g "local_lines" "ring lines touched socket-locally" (fun () ->
      float_of_int t.st.local_lines);
  g "remote_lines" "ring lines touched cross-socket" (fun () ->
      float_of_int t.st.remote_lines);
  g "backpressured" "packets held at the NIC by the rx window" (fun () ->
      float_of_int t.st.backpressured);
  g "refused" "connections refused" (fun () -> float_of_int t.st.refused);
  g "accepted" "connections accepted" (fun () -> float_of_int t.st.accepted);
  g "local_fraction" "fraction of server ring traffic that stayed socket-local" (fun () ->
      local_fraction t)

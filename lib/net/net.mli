(** Deterministic network front-end model on the discrete-event clock.

    One NIC per socket of the simulated machine, each with a full-duplex
    link. Packets serialize onto a link (bandwidth: cycles per cache line),
    propagate (fixed latency), and are then DMA'd into a per-connection
    receive ring of cache lines homed on the NIC's socket — the DMA writes
    go through the machine's coherence directory via a per-socket DMA agent
    thread, so received data sits warm in the receiving socket's cache
    hierarchy (DDIO) and a poller on a *remote* socket pays the
    cross-socket gap the STREAM measurements quantify. Server reads of
    request bytes and writes of response bytes are charged to the calling
    simulated thread against the same rings, and tallied socket-local vs
    remote so placement quality is directly measurable.

    Clients live off-machine: they interact only through callbacks run as
    bare scheduler events ({!Sthread.at}), consuming no simulated cores.
    Everything is driven by the simulation heap, so a given seed replays
    bit-for-bit. *)

module Sthread := Dps_sthread.Sthread

type config = {
  link_latency : int;  (** propagation cycles per packet, one way *)
  cycles_per_line : int;  (** link serialization cost per 64 B line *)
  mtu_lines : int;  (** maximum payload lines per packet *)
  ring_lines : int;  (** per-connection rx/tx DMA ring size, in lines *)
  rx_window : int;  (** per-connection buffered-byte cap before backpressure *)
  dma_charge : bool;  (** model DMA traffic through the coherence directory *)
}

val default_config : config
(** 2 000-cycle (1 us at 2 GHz) one-way latency, 10 cycles/line
    (~100 Gb/s), 24-line (1536 B) MTU, 64-line rings, 4 KB rx window.
    Calibration table in DESIGN.md. *)

type t
type conn

val create : Sthread.t -> ?config:config -> unit -> t
(** Build one NIC per socket, listening. *)

val sched : t -> Sthread.t
val config : t -> config
val nic_count : t -> int

(** {1 Client side — callable from event callbacks, never charged} *)

val connect :
  t -> nic:int -> rx:(string -> unit) -> ?on_refused:(unit -> unit) -> unit -> conn
(** Open a connection to NIC [nic]. The SYN rides the link like any packet;
    once it lands the connection is queued for {!accept}. [rx] receives
    response bytes (per delivered packet); [on_refused] fires if the server
    refuses the connection (listener down or {!refuse}). *)

val send : t -> conn -> string -> unit
(** Client-to-server bytes: split into MTU-sized packets, serialized onto
    the NIC's rx link in FIFO order, DMA'd into the connection's receive
    ring on arrival, then delivered to the server side (waking its poller).
    Packets beyond the receive window are held at the NIC and delivered as
    the server drains ({!recv}) — backpressure, not loss. Bytes sent to a
    refused or closed connection are dropped. *)

(** {1 Server side — called from simulated threads} *)

val accept : t -> conn option
(** Block (park) until a connection arrives; [None] once {!unlisten} has
    been called and the pending queue is empty. FIFO across all NICs. *)

val unlisten : t -> unit
(** Stop accepting: pending and future connection attempts are refused and
    blocked {!accept} callers are woken. Callable from any context. *)

val refuse : t -> conn -> unit
(** Server-side rejection of an accepted connection (e.g. over the
    connection limit): the client's [on_refused] fires one link latency
    later. *)

val close : t -> conn -> unit
(** Close from either endpoint: pending receive bytes are dropped and the
    serving side's readiness callback fires once more so it can observe
    {!is_closed} and release the connection (slot, queue entry, decoder).
    Idempotent; safe in any connection state. *)

val is_closed : conn -> bool

val set_on_readable : conn -> (unit -> unit) -> unit
(** Install the server-side readiness callback, fired (as a bare event)
    edge-triggered: only when delivered bytes turn an *empty* receive
    buffer readable. A consumer that leaves bytes buffered must re-arm
    itself (re-queue the connection while {!recv_ready} is positive) — it
    will not be notified again for packets landing on a non-empty buffer.
    Use it to queue the connection and {!Sthread.unpark} its poller. *)

val recv : t -> conn -> max:int -> string
(** Consume up to [max] buffered request bytes, charging the calling
    thread one read per cache line against the connection's receive ring
    (socket-local iff the caller sits on the NIC's socket). Returns [""]
    when nothing is buffered. Draining may release backpressured packets. *)

val recv_ready : conn -> int
(** Buffered request bytes available to {!recv}. *)

val reply : t -> conn -> string -> unit
(** Server-to-client bytes: the calling thread writes the response into
    the connection's transmit ring (charged per line), the NIC DMA-reads
    it, and the packets ride the tx link back; the client's [rx] callback
    fires on arrival. *)

val socket_of_conn : conn -> int
(** The NIC's socket — where this connection's rings live. *)

val conn_id : conn -> int

(** {1 Statistics} *)

type stats = {
  mutable pkts_rx : int;
  mutable pkts_tx : int;
  mutable bytes_rx : int;
  mutable bytes_tx : int;
  mutable dma_lines : int;  (** lines DMA'd through the directory *)
  mutable local_lines : int;  (** ring lines touched socket-locally by servers *)
  mutable remote_lines : int;  (** ring lines touched cross-socket by servers *)
  mutable backpressured : int;  (** packets held at the NIC by the rx window *)
  mutable refused : int;  (** connections refused *)
  mutable accepted : int;
}

val stats : t -> stats

val local_fraction : t -> float
(** Fraction of server-side ring traffic that stayed socket-local; [1.0]
    when there has been none. *)

val register_obs : ?labels:(string * string) list -> t -> Dps_obs.Registry.t -> unit
(** Publish the {!stats} counters (and {!local_fraction}) as sampled
    gauges named [net.<counter>] in an observability registry. *)

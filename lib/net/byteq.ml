type t = { mutable buf : Bytes.t; mutable start : int; mutable stop : int }

let create () = { buf = Bytes.create 256; start = 0; stop = 0 }
let length q = q.stop - q.start

let ensure q extra =
  let len = length q in
  if q.stop + extra > Bytes.length q.buf then begin
    (* compact; grow only if the live window plus the new chunk needs it *)
    let cap = ref (Bytes.length q.buf) in
    while len + extra > !cap do
      cap := !cap * 2
    done;
    let nbuf = if !cap = Bytes.length q.buf then q.buf else Bytes.create !cap in
    Bytes.blit q.buf q.start nbuf 0 len;
    q.buf <- nbuf;
    q.start <- 0;
    q.stop <- len
  end

let push q s =
  let n = String.length s in
  if n > 0 then begin
    ensure q n;
    Bytes.blit_string s 0 q.buf q.stop n;
    q.stop <- q.stop + n
  end

let get q i =
  if i < 0 || i >= length q then invalid_arg "Byteq.get";
  Bytes.get q.buf (q.start + i)

let sub q ~pos ~len =
  if pos < 0 || len < 0 || pos + len > length q then invalid_arg "Byteq.sub";
  Bytes.sub_string q.buf (q.start + pos) len

let drop q n =
  if n < 0 || n > length q then invalid_arg "Byteq.drop";
  q.start <- q.start + n;
  if q.start = q.stop then begin
    q.start <- 0;
    q.stop <- 0
  end

let take q ~max =
  let n = min max (length q) in
  let s = sub q ~pos:0 ~len:n in
  drop q n;
  s

let clear q =
  q.start <- 0;
  q.stop <- 0

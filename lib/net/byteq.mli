(** Growable FIFO byte queue with O(1) amortized append/consume.

    Backs both connection receive buffers and the incremental wire-protocol
    decoder: bytes are appended at the tail as packets arrive and consumed
    from the head as frames parse, with random access into the unconsumed
    window for scanning. *)

type t

val create : unit -> t

val length : t -> int
(** Unconsumed bytes. *)

val push : t -> string -> unit
(** Append a chunk at the tail. *)

val get : t -> int -> char
(** [get q i] is the [i]th unconsumed byte; [i] must be in [0, length). *)

val sub : t -> pos:int -> len:int -> string
(** Copy of unconsumed bytes [pos, pos+len). *)

val drop : t -> int -> unit
(** Consume [n] bytes from the head. *)

val take : t -> max:int -> string
(** Consume and return up to [max] bytes from the head. *)

val clear : t -> unit

type request =
  | Get of string list
  | Set of { key : string; flags : int; exptime : int; data : string; noreply : bool }
  | Delete of { key : string; noreply : bool }

type value = { vkey : string; vflags : int; vdata : string }

type response =
  | Values of value list
  | Stored
  | Not_stored
  | Deleted
  | Not_found
  | Error
  | Client_error of string
  | Server_error of string

let crlf = "\r\n"

(* Decimal append without the Printf machinery: the encoders run once per
   request per wire send and once per response per service round, so the
   format-interpretation and intermediate-string cost of [sprintf] was the
   bulk of the encode path. Digits go most-significant first. *)
let rec add_uint b n =
  if n >= 10 then add_uint b (n / 10);
  Buffer.add_char b (Char.unsafe_chr (Char.code '0' + (n mod 10)))

let add_int b n =
  if n < 0 then Buffer.add_string b (string_of_int n) (* cold: never on the hot path *)
  else add_uint b n

let encode_request b = function
  | Get keys ->
      if keys = [] then invalid_arg "Wire.encode_request: get with no keys";
      Buffer.add_string b "get";
      List.iter
        (fun k ->
          Buffer.add_char b ' ';
          Buffer.add_string b k)
        keys;
      Buffer.add_string b crlf
  | Set { key; flags; exptime; data; noreply } ->
      Buffer.add_string b "set ";
      Buffer.add_string b key;
      Buffer.add_char b ' ';
      add_int b flags;
      Buffer.add_char b ' ';
      add_int b exptime;
      Buffer.add_char b ' ';
      add_int b (String.length data);
      if noreply then Buffer.add_string b " noreply";
      Buffer.add_string b crlf;
      Buffer.add_string b data;
      Buffer.add_string b crlf
  | Delete { key; noreply } ->
      Buffer.add_string b "delete ";
      Buffer.add_string b key;
      if noreply then Buffer.add_string b " noreply";
      Buffer.add_string b crlf

let encode_response b = function
  | Values vs ->
      List.iter
        (fun { vkey; vflags; vdata } ->
          Buffer.add_string b "VALUE ";
          Buffer.add_string b vkey;
          Buffer.add_char b ' ';
          add_int b vflags;
          Buffer.add_char b ' ';
          add_int b (String.length vdata);
          Buffer.add_string b crlf;
          Buffer.add_string b vdata;
          Buffer.add_string b crlf)
        vs;
      Buffer.add_string b "END\r\n"
  | Stored -> Buffer.add_string b "STORED\r\n"
  | Not_stored -> Buffer.add_string b "NOT_STORED\r\n"
  | Deleted -> Buffer.add_string b "DELETED\r\n"
  | Not_found -> Buffer.add_string b "NOT_FOUND\r\n"
  | Error -> Buffer.add_string b "ERROR\r\n"
  | Client_error m ->
      Buffer.add_string b "CLIENT_ERROR ";
      Buffer.add_string b m;
      Buffer.add_string b crlf
  | Server_error m ->
      Buffer.add_string b "SERVER_ERROR ";
      Buffer.add_string b m;
      Buffer.add_string b crlf

type 'a parse = Item of 'a | Need_more | Bad of { msg : string; reply : response }

type decoder = { q : Byteq.t; max_line : int; mutable skip : int }

let decoder ?(max_line = 8192) () = { q = Byteq.create (); max_line; skip = 0 }
let feed d s = Byteq.push d.q s
let buffered d = Byteq.length d.q

(* Burn off an announced-but-rejected data block (oversized set payload):
   the command line was consumed and answered, but the client will still
   transmit the [skip] payload bytes, which must not be parsed as commands. *)
let drain_skip d =
  if d.skip > 0 then begin
    let n = min d.skip (Byteq.length d.q) in
    Byteq.drop d.q n;
    d.skip <- d.skip - n
  end

(* A protocol line starting at [pos]: [`Line (content, end_pos)] with
   [end_pos] just past the CRLF, [`Need_more] if the CRLF has not arrived,
   [`Too_long] if [max_line] bytes arrived without one. *)
let read_line d ~pos =
  let len = Byteq.length d.q in
  let limit = min len (pos + d.max_line + 2) in
  let rec scan i =
    if i + 1 >= limit then if len - pos > d.max_line then `Too_long else `Need_more
    else if Byteq.get d.q i = '\r' && Byteq.get d.q (i + 1) = '\n' then
      `Line (Byteq.sub d.q ~pos ~len:(i - pos), i + 2)
    else scan (i + 1)
  in
  scan pos

let tokens line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let max_data_len = 1 lsl 20

let data_len_of s =
  match int_of_string_opt s with
  | Some n when n >= 0 && n <= max_data_len -> Some n
  | _ -> None

(* Drop everything we have buffered — used for over-long garbage lines
   whose frame boundary cannot be found. *)
let drop_all d msg =
  Byteq.clear d.q;
  Bad { msg; reply = Client_error msg }

(* A data block of [n] bytes expected at [pos], CRLF-terminated:
   [`Data (bytes, end_pos)], [`Need_more], or [`Bad_term end_pos]. *)
let read_data d ~pos ~n =
  if Byteq.length d.q < pos + n + 2 then `Need_more
  else if Byteq.get d.q (pos + n) = '\r' && Byteq.get d.q (pos + n + 1) = '\n' then
    `Data (Byteq.sub d.q ~pos ~len:n, pos + n + 2)
  else `Bad_term (pos + n + 2)

let next_request d =
  drain_skip d;
  if d.skip > 0 then Need_more
  else
    match read_line d ~pos:0 with
    | `Need_more -> Need_more
    | `Too_long -> drop_all d "line too long"
    | `Line (line, e) -> (
        let bad msg =
          Byteq.drop d.q e;
          Bad { msg; reply = Client_error msg }
        in
        match tokens line with
        | "get" :: (_ :: _ as keys) ->
            Byteq.drop d.q e;
            Item (Get keys)
        | [ "get" ] -> bad "get: missing keys"
        | "set" :: key :: flags :: exptime :: bytes :: rest -> (
            let noreply =
              match rest with [] -> Some false | [ "noreply" ] -> Some true | _ -> None
            in
            match
              (int_of_string_opt flags, int_of_string_opt exptime, int_of_string_opt bytes,
               noreply)
            with
            | Some _, Some _, Some n, Some _ when n > max_data_len ->
                (* The client announced a payload we refuse to buffer.  Answer
                   now, and resynchronize by skipping the n+2 bytes (data +
                   CRLF) it will transmit anyway, so the stream stays framed. *)
                Byteq.drop d.q e;
                d.skip <- n + 2;
                drain_skip d;
                Bad
                  {
                    msg = "set: object too large";
                    reply = Server_error "object too large for cache";
                  }
            | Some flags, Some exptime, Some n, Some noreply when n >= 0 -> (
                match read_data d ~pos:e ~n with
                | `Need_more -> Need_more
                | `Bad_term e' ->
                    Byteq.drop d.q e';
                    let msg = "set: data block not CRLF-terminated" in
                    Bad { msg; reply = Client_error msg }
                | `Data (data, e') ->
                    Byteq.drop d.q e';
                    Item (Set { key; flags; exptime; data; noreply }))
            | _ -> bad "set: bad argument")
        | "set" :: _ -> bad "set: wrong number of arguments"
        | [ "delete"; key ] ->
            Byteq.drop d.q e;
            Item (Delete { key; noreply = false })
        | [ "delete"; key; "noreply" ] ->
            Byteq.drop d.q e;
            Item (Delete { key; noreply = true })
        | "delete" :: _ -> bad "delete: wrong number of arguments"
        | [] -> bad "empty command line"
        | verb :: _ ->
            Byteq.drop d.q e;
            Bad { msg = Printf.sprintf "unknown command %S" verb; reply = Error })

(* "CLIENT_ERROR <msg>" -> "<msg>" (both verbs are 12 characters) *)
let error_message line =
  if String.length line > 13 then String.sub line 13 (String.length line - 13) |> String.trim
  else ""

let next_response d =
  (* Scan a whole END-framed values reply (or a one-line status) before
     consuming anything, so a truncated reply is [Need_more], never [Bad]. *)
  let rec values acc pos =
    match read_line d ~pos with
    | `Need_more -> Need_more
    | `Too_long -> drop_all d "line too long"
    | `Line (line, e) -> (
        let bad msg =
          Byteq.drop d.q e;
          Bad { msg; reply = Client_error msg }
        in
        match tokens line with
        | [ "END" ] ->
            Byteq.drop d.q e;
            Item (Values (List.rev acc))
        | [ "VALUE"; vkey; vflags; bytes ] -> (
            match (int_of_string_opt vflags, data_len_of bytes) with
            | Some vflags, Some n -> (
                match read_data d ~pos:e ~n with
                | `Need_more -> Need_more
                | `Bad_term e' ->
                    Byteq.drop d.q e';
                    let msg = "VALUE: data block not CRLF-terminated" in
                    Bad { msg; reply = Client_error msg }
                | `Data (vdata, e') -> values ({ vkey; vflags; vdata } :: acc) e')
            | _ -> bad "VALUE: bad argument")
        | _ when acc <> [] -> bad "values reply: expected VALUE or END"
        | _ -> status line e)
  and status line e =
    let bad msg =
      Byteq.drop d.q e;
      Bad { msg; reply = Client_error msg }
    in
    let item r =
      Byteq.drop d.q e;
      Item r
    in
    match tokens line with
    | [ "STORED" ] -> item Stored
    | [ "NOT_STORED" ] -> item Not_stored
    | [ "DELETED" ] -> item Deleted
    | [ "NOT_FOUND" ] -> item Not_found
    | [ "ERROR" ] -> item Error
    | "CLIENT_ERROR" :: _ -> item (Client_error (error_message line))
    | "SERVER_ERROR" :: _ -> item (Server_error (error_message line))
    | [] -> bad "empty response line"
    | verb :: _ -> bad (Printf.sprintf "unknown response %S" verb)
  in
  values [] 0

(** Memcached ASCII wire protocol: get (multi-key), set, delete.

    The encoder writes the textual protocol exactly as memcached speaks it
    (CRLF line endings, [set] data blocks framed by a byte count). The
    decoder is incremental and truncation-safe: bytes are fed in arbitrary
    chunks (packet boundaries never matter), a frame is consumed only once
    it is complete, and a prefix of a valid stream can only ever produce
    [Item]s followed by [Need_more] — never a spurious [Bad].

    Malformed input (unknown verbs, wrong arity, non-numeric counts,
    over-long lines, data blocks missing their CRLF terminator) yields
    [Bad] carrying the canonical protocol answer — [ERROR] for unknown
    commands, [CLIENT_ERROR] for bad arguments, [SERVER_ERROR object too
    large for cache] for over-limit set payloads — and consumes the
    offending frame, so a server replies and keeps parsing the connection.
    An over-limit set additionally arms a skip counter for the announced
    data block, so the payload the client transmits anyway is discarded
    instead of being misparsed as a cascade of garbage commands. *)

type request =
  | Get of string list  (** one or more keys *)
  | Set of { key : string; flags : int; exptime : int; data : string; noreply : bool }
  | Delete of { key : string; noreply : bool }

type value = { vkey : string; vflags : int; vdata : string }

type response =
  | Values of value list  (** get result: one entry per hit, [END] framed *)
  | Stored
  | Not_stored
  | Deleted
  | Not_found
  | Error  (** unknown command *)
  | Client_error of string
  | Server_error of string

val encode_request : Buffer.t -> request -> unit
val encode_response : Buffer.t -> response -> unit

type 'a parse =
  | Item of 'a
  | Need_more  (** the buffered bytes end mid-frame; feed more *)
  | Bad of { msg : string; reply : response }
      (** malformed frame, consumed; [reply] is the canonical wire answer
          ([Error] / [Client_error] / [Server_error]) and parsing may
          continue from the next frame boundary *)

type decoder

val decoder : ?max_line:int -> unit -> decoder
(** [max_line] (default 8192) bounds a single protocol line; longer lines
    are rejected as [Bad] without waiting for their CRLF. *)

val feed : decoder -> string -> unit
(** Append raw connection bytes. *)

val buffered : decoder -> int
(** Bytes fed but not yet consumed by a parse. *)

val next_request : decoder -> request parse
val next_response : decoder -> response parse

module Simops = Dps_sthread.Simops

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable stale : int;
  mutable admits : int;
  mutable invals : int;
}

(* Direct-mapped table in structure-of-arrays form. One conceptual entry is
   key + version + presence + frequency counters: four entries per cache
   line for charging purposes. [cand_key]/[cand_freq] are the LFU-lite
   admission filter: a miss key must out-count the resident's hit counter
   (which decays by one per competing miss) before it may evict. *)
type t = {
  keys : int array;  (* empty_key = vacant slot *)
  vers : int array;  (* backend version the cached presence was read under *)
  present : bool array;
  freq : int array;
  cand_key : int array;
  cand_freq : int array;
  base : int;  (* charged base line; the table occupies [nlines] from here *)
  version_of : int -> int;
  st : stats;
}

let empty_key = min_int
let max_freq = 255

let entries t = Array.length t.keys
let lines_for entries = (entries + 3) / 4
let line t s = t.base + (s / 4)

let create ?(entries = 128) ~alloc ~version_of () =
  let n = max 1 entries in
  {
    keys = Array.make n empty_key;
    vers = Array.make n 0;
    present = Array.make n false;
    freq = Array.make n 0;
    cand_key = Array.make n empty_key;
    cand_freq = Array.make n 0;
    base = alloc ~lines:(lines_for n);
    version_of;
    st = { hits = 0; misses = 0; stale = 0; admits = 0; invals = 0 };
  }

let slot t key =
  let h = key * 0x9E3779B1 in
  let h = h lxor (h lsr 15) in
  (h land max_int) mod Array.length t.keys

let install t s ~key ~ver ~present =
  t.keys.(s) <- key;
  t.vers.(s) <- ver;
  t.present.(s) <- present;
  t.freq.(s) <- 1;
  t.cand_key.(s) <- empty_key;
  t.cand_freq.(s) <- 0;
  Simops.write (line t s)

(* The coherence protocol lives here: the key's backend version is read
   BEFORE the backend fetch, and the entry is installed under that earlier
   version. If a write lands between the version read and the fetch, the
   entry carries a version older than the value it holds — the next lookup
   sees a mismatch and refetches needlessly, which is the safe direction.
   Reading the version after the fetch would allow the opposite: an old
   value installed under a new version, served as fresh forever. *)
let lookup t key ~fetch =
  let s = slot t key in
  Simops.read (line t s);
  if t.keys.(s) = key then begin
    let v_now = t.version_of key in
    if v_now = t.vers.(s) then begin
      t.st.hits <- t.st.hits + 1;
      if t.freq.(s) < max_freq then begin
        t.freq.(s) <- t.freq.(s) + 1;
        Simops.write (line t s)
      end;
      t.present.(s)
    end
    else begin
      (* resident but stale: refetch and reinstall under [v_now], which was
         read before the fetch, preserving the invariant above *)
      t.st.stale <- t.st.stale + 1;
      let present = fetch () in
      t.vers.(s) <- v_now;
      t.present.(s) <- present;
      Simops.write (line t s);
      present
    end
  end
  else begin
    t.st.misses <- t.st.misses + 1;
    let v_before = t.version_of key in
    let present = fetch () in
    if t.keys.(s) = empty_key then begin
      t.st.admits <- t.st.admits + 1;
      install t s ~key ~ver:v_before ~present
    end
    else begin
      (* occupied by another key: LFU-lite admission duel *)
      if t.cand_key.(s) = key then t.cand_freq.(s) <- t.cand_freq.(s) + 1
      else begin
        t.cand_key.(s) <- key;
        t.cand_freq.(s) <- 1
      end;
      if t.freq.(s) > 0 then t.freq.(s) <- t.freq.(s) - 1;
      if t.cand_freq.(s) > t.freq.(s) then begin
        t.st.admits <- t.st.admits + 1;
        install t s ~key ~ver:v_before ~present
      end
      else Simops.write (line t s)
    end;
    present
  end

let invalidate t key =
  let s = slot t key in
  Simops.read (line t s);
  if t.keys.(s) = key then begin
    t.keys.(s) <- empty_key;
    t.st.invals <- t.st.invals + 1;
    Simops.write (line t s)
  end

let stats t = t.st

let add_stats ~into st =
  into.hits <- into.hits + st.hits;
  into.misses <- into.misses + st.misses;
  into.stale <- into.stale + st.stale;
  into.admits <- into.admits + st.admits;
  into.invals <- into.invals + st.invals

let zero_stats () = { hits = 0; misses = 0; stale = 0; admits = 0; invals = 0 }

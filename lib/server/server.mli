(** Memcached server event loop over the simulated network front-end.

    One acceptor thread plus [npollers] per-core poller threads. The
    acceptor places each incoming connection on a poller of the NIC's own
    socket (round-robin within the socket), so a connection's request
    bytes, response bytes and — under a DPS backend — most of its keys'
    partition traffic stay socket-local; it refuses connections beyond
    [max_conns] (the connection-limit half of the backpressure policy; the
    per-connection receive window in {!Dps_net.Net} is the other half).

    Pollers do blocking I/O: each parks until one of its connections turns
    readable, then drains it — charged ring reads, incremental wire
    parsing, request routing into the backend (a {!Dps_memcached.Variants}
    record: shared-memory, ffwd or DPS; under DPS a poller is a DPS client
    and serves its peers while awaiting its own delegations), and one
    batched response write per service round (at most [batch_limit]
    requests), so response packets amortize link serialization.

    Pollers are pinned by the backend's own placement rule, so under DPS
    the poller set *is* the client set of the paper's runtime. *)

module Sthread := Dps_sthread.Sthread
module Net := Dps_net.Net

type config = {
  npollers : int;
  max_conns : int;  (** connections beyond this are refused *)
  batch_limit : int;  (** max requests served per poller service round *)
  recv_chunk : int;  (** max bytes drained per {!Net.recv} call *)
  val_lines : int;  (** cache lines per value payload served on a hit *)
  poll_interval : int;
      (** base timed-park interval for backends with an [idle] duty (DPS):
          an idle poller drains its delegation ring, parks for at most this
          many cycles, and repeats — a blocked poller must not starve
          peers delegating into its partition *)
  spin_rounds : int;
      (** adaptive polling: a poller whose idle duty served nothing spins
          this many brief rounds (cheap wake-up when traffic resumes
          immediately) before it starts parking *)
  park_max : int;
      (** ceiling on the park timeout: past the spin rounds the timeout
          doubles from [poll_interval] each consecutive empty round, capped
          here, so a long-idle poller neither burns cycles nor sleeps
          through a ring that fills up *)
  acceptor_hw : int option;
      (** hardware thread for the acceptor; [None] (the default) uses the
          machine's last thread. Cluster mode pins each node's acceptor
          inside the node's own socket so co-hosted servers don't collide. *)
  shed_threshold : int;
      (** bounded-queue load shedding: when a poller's ready-connection
          backlog reaches this many entries, further parsed requests are
          answered [SERVER_ERROR busy] without touching the backend, so an
          overloaded shard degrades into fast rejections (which routed
          clients retry after backoff) instead of unbounded queueing delay.
          [0] (the default) disables shedding. *)
  front_cache : int;
      (** per-poller front-cache entries ({!Frontcache}, DESIGN.md §10):
          each poller screens its GET path through a tiny version-validated
          presence cache, turning hot-key reads into a local probe instead
          of a delegation round-trip into the owning partition. Requires a
          backend built with [~versions] > 0 (otherwise silently off). [0]
          (the default) disables the cache entirely — the charge stream is
          bit-identical to a build without the feature. *)
}

val default_config : config
(** 40 pollers, 1024 connections, 16-request batches, 2 KB recv chunks,
    2-line (128 B) values; adaptive polling spins 4 rounds then parks
    2000 cycles doubling up to 16000. *)

type stats = {
  mutable conns : int;
  mutable requests : int;  (** well-formed requests served *)
  mutable gets : int;  (** get requests (a multi-get counts once) *)
  mutable lookups : int;  (** individual keys looked up *)
  mutable hits : int;
  mutable sets : int;
  mutable dels : int;
  mutable bad_requests : int;
      (** malformed frames answered ERROR / CLIENT_ERROR / SERVER_ERROR *)
  mutable batches : int;  (** batched response writes *)
  mutable parks : int;  (** poller blocking episodes (spin rounds excluded) *)
  mutable shed : int;  (** requests answered [SERVER_ERROR busy] under overload *)
  mutable closed : int;
      (** peer-closed connections observed and released; the acceptor
          admits against [conns - closed], so churny clients cannot
          exhaust the connection limit *)
}

type t

val start : Sthread.t -> Net.t -> backend:Dps_memcached.Variants.t -> config -> t
(** Spawn the acceptor and pollers (pinned by [backend.client_hw]). Call
    before [Sthread.run]; the server serves until {!stop}. *)

val stop : t -> unit
(** Initiate shutdown from any context (typically an {!Sthread.at} event at
    the measurement horizon): stops accepting, wakes every parked thread;
    pollers finish their current round, run the backend's [finish] (for DPS
    this drains in-flight delegations), and exit. *)

val stats : t -> stats

val fc_stats : t -> Frontcache.stats
(** Front-cache counters summed across this server's pollers; all zero
    when the cache is off. *)

val front_cache_on : t -> bool
(** Whether any poller actually runs a front cache (config asked for one
    {e and} the backend publishes per-key versions). *)

val poller_tids : t -> int list
(** Simulated thread ids of the pollers that have started running — the
    kill set for fault injection against this server instance. *)

val acceptor_tid : t -> int
(** The acceptor's simulated thread id, or [-1] before it first runs. *)

val pending_conns : t -> int
(** Connections currently queued ready across all pollers; [0] once the
    server is fully drained (leak check for churn soak tests). *)

val register_obs : ?labels:(string * string) list -> t -> Dps_obs.Registry.t -> unit
(** Publish the server's stats record as [srv.<counter>] callback gauges
    in an observability registry; [labels] (e.g. [("node", "2")]) scope
    the metrics when several server instances share one registry. *)

(** Per-poller top-k front cache with delegation-coherent invalidation
    (DESIGN.md §10).

    Delegation concentrates every operation on a hot key onto the one
    partition that owns it, so under Zipf skew the owning poller becomes
    the throughput ceiling. This module puts a tiny (O(100) entries)
    direct-mapped presence cache in front of the backend GET path of each
    server poller: a hit costs one local probe plus one racy read of the
    key's backend version, instead of a full delegation round-trip into
    the hot partition.

    Coherence contract — {e monotonic reads per connection}: every applied
    write at the owning partition bumps a per-key version
    ({!Dps.bump_version}); a cached entry is served only while its recorded
    version still matches. The version is read {e before} the backend
    fetch on every fill, so a write racing the fill can only make the entry
    look older than it is (a spurious refetch), never newer (a stale value
    served as fresh). The poller additionally drops its own entry on every
    SET/DELETE it forwards, so a set→get on the same connection never
    returns the pre-set value even before the delegated write lands.

    Admission is LFU-lite: a miss key duels the resident entry of its slot
    via a candidate counter, and evicts only once it has out-counted the
    resident's (decaying) hit count — one-shot keys cannot flush the hot
    set. All probe/update traffic is charged to the slot's cache line via
    {!Dps_sthread.Simops}, so simulated cost tracks the host data layout
    (four entries per line). *)

type stats = {
  mutable hits : int;  (** served from cache, version verified fresh *)
  mutable misses : int;  (** key not resident; went to the backend *)
  mutable stale : int;  (** resident but version mismatch; refetched *)
  mutable admits : int;  (** installs (fills of vacant slots + evictions) *)
  mutable invals : int;  (** entries dropped by {!invalidate} *)
}

type t

val create : ?entries:int -> alloc:(lines:int -> int) -> version_of:(int -> int) -> unit -> t
(** [create ~alloc ~version_of ()] builds a cache of [entries] slots
    (default 128, clamped to ≥ 1). [alloc ~lines] must return the base
    line address of a fresh charged allocation — pollers pass a socket-
    local allocator so probes stay NUMA-local. [version_of] is the
    backend's charged per-key version read ({!Variants.t.version_of}). *)

val lookup : t -> int -> fetch:(unit -> bool) -> bool
(** [lookup t key ~fetch] returns the key's presence, serving from the
    cache when the resident entry's version still matches and calling
    [fetch] (the backend GET) otherwise. The fill protocol reads the
    version before [fetch] runs; see the module header for why that
    ordering is load-bearing. *)

val invalidate : t -> int -> unit
(** Drop the entry for [key] if resident. Called by the owning poller on
    every SET/DELETE it forwards, closing the same-connection
    read-your-writes window. *)

val stats : t -> stats
(** Live counters (not a snapshot). *)

val entries : t -> int

val zero_stats : unit -> stats

val add_stats : into:stats -> stats -> unit
(** Accumulate [st] into [into] — aggregation across a server's pollers. *)

module Sthread = Dps_sthread.Sthread
module Simops = Dps_sthread.Simops
module Machine = Dps_machine.Machine
module Topology = Dps_machine.Topology
module Net = Dps_net.Net
module Wire = Dps_net.Wire
module Variants = Dps_memcached.Variants
module Obs = Dps_obs.Obs

let obs_span = Sthread.obs_span

type config = {
  npollers : int;
  max_conns : int;
  batch_limit : int;
  recv_chunk : int;
  val_lines : int;
  poll_interval : int;
  spin_rounds : int;
  park_max : int;
  acceptor_hw : int option;
  shed_threshold : int;
  front_cache : int;
}

let default_config =
  {
    npollers = 40;
    max_conns = 1024;
    batch_limit = 16;
    recv_chunk = 2048;
    val_lines = 2;
    poll_interval = 2000;
    spin_rounds = 4;
    park_max = 16_000;
    acceptor_hw = None;
    shed_threshold = 0;
    front_cache = 0;
  }

type stats = {
  mutable conns : int;
  mutable requests : int;
  mutable gets : int;
  mutable lookups : int;
  mutable hits : int;
  mutable sets : int;
  mutable dels : int;
  mutable bad_requests : int;
  mutable batches : int;
  mutable parks : int;
  mutable shed : int;
  mutable closed : int;
}

type sconn = {
  c : Net.conn;
  dec : Wire.decoder;
  mutable queued : bool;
  mutable dead : bool;  (* close observed and slot released; count once *)
}

type poller = {
  idx : int;
  hw : int;
  socket : int;
  mutable tid : int;  (** simulated thread id, known once the poller runs *)
  ready : sconn Queue.t;
  out : Buffer.t;
      (* response scratch, shared by every connection this poller serves: a
         service round drains it before returning, and rounds never
         interleave within a poller, so one buffer replaces one-per-conn —
         the difference between 40 buffers and 250k at fleet scale *)
  fc : Frontcache.t option;  (* per-poller front cache; None when disabled *)
}

type t = {
  sched : Sthread.t;
  net : Net.t;
  backend : Variants.t;
  cfg : config;
  pollers : poller array;
  by_socket : poller list array;
  rr : int array;  (** per-socket round-robin cursor *)
  mutable acceptor_tid : int;
  mutable stopping : bool;
  st : stats;
  payload : string;  (** value bytes served on a hit *)
}

let stats t = t.st

let fc_stats t =
  let acc = Frontcache.zero_stats () in
  Array.iter
    (fun p ->
      match p.fc with
      | Some fc -> Frontcache.add_stats ~into:acc (Frontcache.stats fc)
      | None -> ())
    t.pollers;
  acc

let front_cache_on t = Array.exists (fun p -> p.fc <> None) t.pollers

let wake_poller t p = if p.tid >= 0 then ignore (Sthread.unpark t.sched ~tid:p.tid)

let enqueue t p sc =
  if (not sc.queued) && not sc.dead then begin
    sc.queued <- true;
    Queue.push sc p.ready;
    wake_poller t p
  end

(* Route one parsed request into the backend and append its response. *)
let handle t p req =
  let out r = Wire.encode_response p.out r in
  t.st.requests <- t.st.requests + 1;
  match req with
  | Wire.Get keys ->
      t.st.gets <- t.st.gets + 1;
      let vs =
        List.filter_map
          (fun k ->
            match int_of_string_opt k with
            | None -> None
            | Some key ->
                t.st.lookups <- t.st.lookups + 1;
                let found =
                  match p.fc with
                  | Some fc ->
                      Frontcache.lookup fc key ~fetch:(fun () -> t.backend.Variants.get key)
                  | None -> t.backend.Variants.get key
                in
                if found then begin
                  t.st.hits <- t.st.hits + 1;
                  Some { Wire.vkey = k; vflags = 0; vdata = t.payload }
                end
                else None)
          keys
      in
      out (Wire.Values vs)
  | Wire.Set { key; data; noreply; flags; _ } -> (
      match int_of_string_opt key with
      | Some key ->
          t.st.sets <- t.st.sets + 1;
          let val_lines = max 1 ((String.length data + 63) / 64) in
          (* drop our own cached entry before forwarding: the delegated
             write lands asynchronously, but a get on this same poller must
             already miss and go through the (FIFO-ordered) backend path *)
          (match p.fc with Some fc -> Frontcache.invalidate fc key | None -> ());
          (* the flags field doubles as a client-chosen operation tag for
             apply-tracking backends (exactly-once ledger in cluster mode) *)
          (match t.backend.Variants.set_tagged with
          | Some set_tagged -> set_tagged ~key ~val_lines ~tag:flags
          | None -> t.backend.Variants.set ~key ~val_lines);
          if not noreply then out Wire.Stored
      | None ->
          t.st.bad_requests <- t.st.bad_requests + 1;
          if not noreply then out (Wire.Client_error "bad key"))
  | Wire.Delete { key; noreply } -> (
      match int_of_string_opt key with
      | Some key ->
          t.st.dels <- t.st.dels + 1;
          (match p.fc with Some fc -> Frontcache.invalidate fc key | None -> ());
          let found = t.backend.Variants.del key in
          if not noreply then out (if found then Wire.Deleted else Wire.Not_found)
      | None ->
          t.st.bad_requests <- t.st.bad_requests + 1;
          if not noreply then out (Wire.Client_error "bad key"))

(* One service round for a readable connection: drain bytes, serve up to
   [batch_limit] requests, write the batched response. *)
(* The peer closed: count it once and release the connection's slot (the
   acceptor admits against live = accepted - closed). The sconn simply
   stops being re-enqueued; its decoder and buffers go with it. *)
let release t sc =
  if not sc.dead then begin
    sc.dead <- true;
    t.st.closed <- t.st.closed + 1
  end

let service t p sc =
  if Net.is_closed sc.c then release t sc
  else
  obs_span ~args:[ ("conn", Obs.A_int (Net.conn_id sc.c)) ] "srv.service" @@ fun () ->
  let data = obs_span "srv.rx" (fun () -> Net.recv t.net sc.c ~max:t.cfg.recv_chunk) in
  Wire.feed sc.dec data;
  (* bounded-queue load shedding: when this poller's ready backlog exceeds
     the threshold, answer SERVER_ERROR busy without touching the backend —
     clients back off and retry instead of queueing into unbounded latency *)
  let overloaded =
    t.cfg.shed_threshold > 0 && Queue.length p.ready >= t.cfg.shed_threshold
  in
  let served = ref 0 in
  let parsing = ref true in
  while !parsing && !served < t.cfg.batch_limit do
    match obs_span "srv.parse" (fun () -> Wire.next_request sc.dec) with
    | Wire.Need_more -> parsing := false
    | Wire.Bad { msg = _; reply } ->
        t.st.bad_requests <- t.st.bad_requests + 1;
        Wire.encode_response p.out reply;
        incr served
    | Wire.Item req when overloaded ->
        t.st.shed <- t.st.shed + 1;
        let noreply =
          match req with
          | Wire.Set { noreply; _ } | Wire.Delete { noreply; _ } -> noreply
          | Wire.Get _ -> false
        in
        if not noreply then Wire.encode_response p.out (Wire.Server_error "busy");
        incr served
    | Wire.Item req ->
        obs_span "srv.serve" (fun () -> handle t p req);
        incr served
  done;
  if Buffer.length p.out > 0 then begin
    t.st.batches <- t.st.batches + 1;
    obs_span
      ~args:[ ("bytes", Obs.A_int (Buffer.length p.out)) ]
      "srv.tx"
      (fun () -> Net.reply t.net sc.c (Buffer.contents p.out));
    Buffer.clear p.out
  end;
  (* More buffered bytes, or a full batch with frames still in the decoder:
     take another round (after peers get their turn). A partial frame alone
     parks until more bytes arrive. *)
  if Net.recv_ready sc.c > 0 || (!served >= t.cfg.batch_limit && Wire.buffered sc.dec > 0)
  then enqueue t p sc

let poller_body t p () =
  p.tid <- Sthread.self_id ();
  if Obs.tracing_on () then
    Obs.thread_name ~tid:p.tid (Printf.sprintf "srv-poller %d (s%d)" p.idx p.socket);
  t.backend.Variants.attach p.idx;
  (* consecutive empty idle rounds; reset by any served request or any
     background serving the backend's idle duty reports *)
  let streak = ref 0 in
  while not t.stopping do
    match Queue.take_opt p.ready with
    | Some sc ->
        sc.queued <- false;
        streak := 0;
        service t p sc
    | None -> (
        (* A DPS poller cannot block unconditionally: peers' delegated
           operations queue on its partition ring whether or not it has
           connections of its own, so it adapts — spin (brief charged
           work) while traffic was recent, then park with a timeout that
           backs off while everything stays quiet, serving the ring
           around each park. *)
        match t.backend.Variants.idle with
        | None ->
            t.st.parks <- t.st.parks + 1;
            Sthread.park ()
        | Some idle ->
            let served = obs_span "srv.poll" idle in
            if served > 0 then streak := 0
            else begin
              incr streak;
              if !streak <= t.cfg.spin_rounds then Simops.work 256
              else begin
                t.st.parks <- t.st.parks + 1;
                let backoff =
                  t.cfg.poll_interval lsl min 3 (!streak - t.cfg.spin_rounds - 1)
                in
                ignore (Sthread.park_for (min t.cfg.park_max backoff));
                (* serve the ring immediately on wake-up, before the
                   connection queue gets its turn: peers' delegations
                   aged a full park interval already *)
                if obs_span "srv.poll" idle > 0 then streak := 0
              end
            end)
  done;
  t.backend.Variants.finish ()

let acceptor_body t () =
  t.acceptor_tid <- Sthread.self_id ();
  if Obs.tracing_on () then Obs.thread_name ~tid:t.acceptor_tid "srv-acceptor";
  let continue = ref true in
  while !continue do
    match Net.accept t.net with
    | None -> continue := false
    | Some c ->
        if t.stopping || t.st.conns - t.st.closed >= t.cfg.max_conns then
          Net.refuse t.net c
        else begin
          t.st.conns <- t.st.conns + 1;
          let socket = Net.socket_of_conn c in
          (* place on the NIC's socket so ring and partition traffic stay
             local; fall back to global round-robin if that socket has no
             poller *)
          let candidates =
            match t.by_socket.(socket) with [] -> Array.to_list t.pollers | ps -> ps
          in
          let n = List.length candidates in
          let p = List.nth candidates (t.rr.(socket) mod n) in
          t.rr.(socket) <- t.rr.(socket) + 1;
          let sc = { c; dec = Wire.decoder (); queued = false; dead = false } in
          Net.set_on_readable c (fun () -> enqueue t p sc);
          if Net.recv_ready c > 0 then enqueue t p sc
        end
  done

let start sched net ~backend cfg =
  let m = Sthread.machine sched in
  let topo = Machine.topology m in
  let pollers =
    Array.init cfg.npollers (fun i ->
        let hw = backend.Variants.client_hw i in
        let socket = Topology.socket_of_thread topo hw in
        (* the front cache needs a versioned backend to validate against;
           without one (or with front_cache = 0) the fast path stays off
           and the charge stream is untouched — the allocate-last rule *)
        let fc =
          match (cfg.front_cache > 0, backend.Variants.version_of) with
          | true, Some version_of ->
              Some
                (Frontcache.create ~entries:cfg.front_cache
                   ~alloc:(fun ~lines -> Machine.alloc m (Machine.On_node socket) ~lines)
                   ~version_of ())
          | _ -> None
        in
        { idx = i; hw; socket; tid = -1; ready = Queue.create (); out = Buffer.create 256; fc })
  in
  let by_socket = Array.make topo.Topology.sockets [] in
  Array.iter (fun p -> by_socket.(p.socket) <- by_socket.(p.socket) @ [ p ]) pollers;
  let t =
    {
      sched;
      net;
      backend;
      cfg;
      pollers;
      by_socket;
      rr = Array.make topo.Topology.sockets 0;
      acceptor_tid = -1;
      stopping = false;
      st =
        {
          conns = 0;
          requests = 0;
          gets = 0;
          lookups = 0;
          hits = 0;
          sets = 0;
          dels = 0;
          bad_requests = 0;
          batches = 0;
          parks = 0;
          shed = 0;
          closed = 0;
        };
      payload = String.make (cfg.val_lines * 64) 'v';
    }
  in
  Array.iter (fun p -> Sthread.spawn sched ~hw:p.hw (poller_body t p)) pollers;
  (* acceptor on the machine's last hardware thread by default: a second
     hyperthread the placement rule leaves free below full occupancy, and it
     parks (releasing the core) whenever no connection is pending. Cluster
     mode overrides the placement so co-hosted nodes don't collide. *)
  let acceptor_hw =
    match cfg.acceptor_hw with Some hw -> hw | None -> Topology.nthreads topo - 1
  in
  Sthread.spawn sched ~hw:acceptor_hw (acceptor_body t);
  t

let poller_tids t =
  Array.to_list t.pollers |> List.map (fun p -> p.tid) |> List.filter (fun tid -> tid >= 0)

let acceptor_tid t = t.acceptor_tid

let pending_conns t =
  Array.fold_left (fun acc p -> acc + Queue.length p.ready) 0 t.pollers

let stop t =
  if not t.stopping then begin
    t.stopping <- true;
    Net.unlisten t.net;
    Array.iter (fun p -> wake_poller t p) t.pollers
  end

let register_obs ?(labels = []) t reg =
  let module R = Dps_obs.Registry in
  let g name f = R.gauge_fn reg name ~labels (fun () -> float_of_int (f t.st)) in
  g "srv.conns" (fun s -> s.conns);
  g "srv.requests" (fun s -> s.requests);
  g "srv.gets" (fun s -> s.gets);
  g "srv.lookups" (fun s -> s.lookups);
  g "srv.hits" (fun s -> s.hits);
  g "srv.sets" (fun s -> s.sets);
  g "srv.dels" (fun s -> s.dels);
  g "srv.bad_requests" (fun s -> s.bad_requests);
  g "srv.batches" (fun s -> s.batches);
  g "srv.parks" (fun s -> s.parks);
  g "srv.shed" (fun s -> s.shed);
  g "srv.closed" (fun s -> s.closed);
  if front_cache_on t then begin
    let fg name help f =
      R.gauge_fn reg name ~labels ~help (fun () -> float_of_int (f (fc_stats t)))
    in
    fg "srv.fc_hits" "front-cache hits" (fun s -> s.Frontcache.hits);
    fg "srv.fc_misses" "front-cache misses" (fun s -> s.Frontcache.misses);
    fg "srv.fc_stale" "version-mismatch refetches" (fun s -> s.Frontcache.stale);
    fg "srv.fc_admits" "front-cache installs" (fun s -> s.Frontcache.admits);
    fg "srv.fc_invals" "poller self-invalidations" (fun s -> s.Frontcache.invals)
  end

(* Simulated network front-end: memcached over NICs, links and DMA.

   Three short acts:
   1. the wire protocol on a raw connection — multi-get, set, delete, and a
      malformed request answered CLIENT_ERROR without killing the connection;
   2. a closed-loop client fleet against a DPS-backed server — thousands of
      simulated users multiplexed over a few dozen connections, with the
      connection limit refusing the overflow;
   3. the same fleet replayed from the same seed, bit-for-bit.

   Run with: dune exec examples/net_demo.exe *)

module Machine = Dps_machine.Machine
module Sthread = Dps_sthread.Sthread
module Net = Dps_net.Net
module Wire = Dps_net.Wire
module Server = Dps_server.Server
module Netload = Dps_workload.Netload
module Variants = Dps_memcached.Variants

let items = 4096

(* --- Act 1: one raw connection, scripted by hand ------------------------ *)

let raw_connection () =
  print_endline "--- raw connection: the ASCII protocol over the link ---";
  let m = Machine.create (Machine.config_scaled ()) in
  let sched = Sthread.create m in
  let net = Net.create sched () in
  let backend = Variants.stock sched ~nclients:4 ~buckets:256 ~capacity:512 in
  backend.Variants.populate ~keys:[| 1; 2; 3 |] ~val_lines:1;
  let srv = Server.start sched net ~backend { Server.default_config with npollers = 4 } in
  let dec = Wire.decoder () in
  let c =
    Net.connect net ~nic:0
      ~rx:(fun data ->
        Wire.feed dec data;
        let rec drain () =
          match Wire.next_response dec with
          | Wire.Need_more -> ()
          | Wire.Bad { msg; _ } -> Printf.printf "  client: unparsable response (%s)\n" msg
          | Wire.Item r ->
              (match r with
              | Wire.Values vs ->
                  Printf.printf "  server: %d value(s) [%s]\n" (List.length vs)
                    (String.concat "; "
                       (List.map
                          (fun v ->
                            Printf.sprintf "%s=%dB" v.Wire.vkey (String.length v.Wire.vdata))
                          vs))
              | Wire.Stored -> print_endline "  server: STORED"
              | Wire.Deleted -> print_endline "  server: DELETED"
              | Wire.Not_found -> print_endline "  server: NOT_FOUND"
              | Wire.Client_error msg -> Printf.printf "  server: CLIENT_ERROR %s\n" msg
              | Wire.Not_stored | Wire.Error | Wire.Server_error _ ->
                  print_endline "  server: (other)");
              drain ()
        in
        drain ())
      ()
  in
  let say what req =
    Printf.printf "  client: %s\n" what;
    let b = Buffer.create 64 in
    Wire.encode_request b req;
    Net.send net c (Buffer.contents b)
  in
  say "get 1 2 99 (multi-get, one miss)" (Wire.Get [ "1"; "2"; "99" ]);
  say "set 99 (128 B)"
    (Wire.Set { key = "99"; flags = 0; exptime = 0; data = String.make 128 'x'; noreply = false });
  say "get 99" (Wire.Get [ "99" ]);
  say "delete 2" (Wire.Delete { key = "2"; noreply = false });
  say "delete 2 (again)" (Wire.Delete { key = "2"; noreply = false });
  (* a malformed line goes out raw, straight past the encoder *)
  print_endline "  client: bogus 1 2 3 (malformed)";
  Net.send net c "bogus 1 2 3\r\n";
  say "get 1 (connection survives)" (Wire.Get [ "1" ]);
  Sthread.at sched ~time:100_000 (fun () -> Server.stop srv);
  Sthread.run sched;
  Printf.printf "  %d requests served, %d malformed\n\n" (Server.stats srv).Server.requests
    (Server.stats srv).Server.bad_requests

(* --- Acts 2 and 3: a closed-loop fleet, then its replay ----------------- *)

type signature = {
  completed : int;
  issued : int;
  hits : int;
  refused : int;
  p50 : int;
  p99 : int;
  end_time : int;
  requests : int;
  local_pct : float;
}

let fleet ~seed =
  let m = Machine.create (Machine.config_scaled ()) in
  let sched = Sthread.create m in
  let net = Net.create sched () in
  let backend =
    Variants.dps_parsec sched ~self_healing:true ~nclients:40 ~locality_size:10 ~buckets:items
      ~capacity:(2 * items) ()
  in
  backend.Variants.populate ~keys:(Array.init items Fun.id) ~val_lines:2;
  let srv =
    Server.start sched net ~backend { Server.default_config with npollers = 40; max_conns = 48 }
  in
  let sp =
    Netload.spec ~nclients:2000 ~nconns:64 ~set_pct:10 ~mget:2 ~key_range:items ~seed ()
  in
  let r = Netload.run sched net sp ~duration:150_000 ~stop:(fun () -> Server.stop srv) () in
  let st = Server.stats srv in
  ( r,
    {
      completed = r.Netload.completed;
      issued = r.Netload.issued;
      hits = r.Netload.hits;
      refused = r.Netload.refused_conns;
      p50 = r.Netload.p50;
      p99 = r.Netload.p99;
      end_time = Sthread.now sched;
      requests = st.Server.requests;
      local_pct = Net.local_fraction net *. 100.0;
    } )

let () =
  raw_connection ();
  print_endline "--- closed-loop fleet: 2000 users over 64 connections ---";
  let r, s1 = fleet ~seed:42L in
  Format.printf "  %a@." Netload.pp_result r;
  Printf.printf "  64 connections attempted, limit 48: %d refused\n" s1.refused;
  Printf.printf "  server ring traffic %.1f%% socket-local\n\n" s1.local_pct;
  print_endline "--- replay: same seed, same world ---";
  let _, s2 = fleet ~seed:42L in
  if s1 = s2 then
    Printf.printf "  identical: %d completed, p99 %d, final clock %d\n" s2.completed s2.p99
      s2.end_time
  else print_endline "  MISMATCH: the simulation is not deterministic!"

(* A memcached-style key/value cache, stock vs DPS — the paper's §5.3
   scenario as a runnable example.

   Both variants serve the same YCSB-like Zipfian workload (1% sets,
   128-byte values) from 40 simulated threads. The stock cache is one
   shared hash table + locked LRU; the DPS cache partitions the hash
   table, LRU *and* slab allocator per locality, delegating sets
   asynchronously.

   Run with: dune exec examples/kv_cache.exe *)

module Machine = Dps_machine.Machine
module Sthread = Dps_sthread.Sthread
module Prng = Dps_simcore.Prng
module Keydist = Dps_workload.Keydist
module Driver = Dps_workload.Driver
module Variants = Dps_memcached.Variants

let items = 20_000
let threads = 40

let run_variant make =
  let machine = Machine.create (Machine.config_scaled ()) in
  let sched = Sthread.create machine in
  let v : Variants.t = make sched in
  v.Variants.populate ~keys:(Array.init items Fun.id) ~val_lines:2;
  let dist = Keydist.zipf ~range:items () in
  let r =
    Driver.measure ~sched ~threads
      ~placement:(Array.init threads v.Variants.client_hw)
      ~duration:200_000
      ~prologue:(fun ~tid -> v.Variants.attach tid)
      ~epilogue:(fun ~tid:_ -> v.Variants.finish ())
      ~op:(fun ~tid:_ ~step:_ ->
        let p = Sthread.self_prng () in
        let key = Keydist.sample dist p in
        if Prng.int p 100 < 1 then v.Variants.set ~key ~val_lines:2
        else ignore (v.Variants.get key))
      ()
  in
  (v.Variants.name, r)

let () =
  print_endline "key/value cache, zipfian workload, 40 threads, 1% sets:";
  let results =
    [
      run_variant (fun sched ->
          Variants.stock sched ~nclients:threads ~buckets:items ~capacity:(2 * items));
      run_variant (fun sched ->
          Variants.dps_mc sched ~nclients:threads ~locality_size:10 ~buckets:items
            ~capacity:(2 * items) ());
      run_variant (fun sched ->
          Variants.dps_parsec sched ~nclients:threads ~locality_size:10 ~buckets:items
            ~capacity:(2 * items) ());
    ]
  in
  Printf.printf "%-12s %12s %10s %10s %14s\n" "variant" "Mops/s" "p50 (cyc)" "p99 (cyc)"
    "LLC miss/op";
  List.iter
    (fun (name, r) ->
      Printf.printf "%-12s %12.3f %10d %10d %14.2f\n" name r.Driver.throughput_mops r.Driver.p50
        r.Driver.p99 r.Driver.llc_misses_per_op)
    results;
  let tp name = List.assoc name (List.map (fun (n, r) -> (n, r.Driver.throughput_mops)) results) in
  Printf.printf "\nDPS speedup over stock: %.2fx (throughput)\n" (tp "dps" /. tp "stock")

(* Chaos demo: crash clients mid-run and watch the runtime heal.

   Twenty clients hammer a partitioned counter table. A deterministic
   fault plan (Dps_faults) kills one client of each locality mid-run and
   stalls the rest at random. The self-healing runtime detects the stuck
   delegations, takes over the dead peers' serving shares, re-issues lost
   operations, and every surviving client still finishes with nothing
   acknowledged lost. Run it twice: the seed makes the whole crash-and-
   recover drama replay bit for bit.

   Run with: dune exec examples/chaos_demo.exe *)

module Machine = Dps_machine.Machine
module Sthread = Dps_sthread.Sthread
module Faults = Dps_faults

type counters = { cells : int array }

let () =
  let machine = Machine.create Machine.config_default in
  let sched = Sthread.create machine in

  (* Self-healing DPS: ring timeouts, takeover serving, re-issue. *)
  let dps =
    Dps.create sched ~nclients:20 ~locality_size:10
      ~hash:(fun key -> key)
      ~self_healing:true ~await_timeout:15_000
      ~mk_data:(fun (_ : Dps.partition_info) -> { cells = Array.make 64 0 })
      ()
  in

  (* The fault plan: background stalls everywhere, plus one scheduled
     kill per locality. Same seed, same chaos, same recovery. *)
  let plan =
    Faults.install sched ~seed:2026L (Faults.spec ~stall_prob:0.001 ~stall_cycles:2_000 ())
  in
  Faults.schedule_crash plan ~tid:3 ~at:20_000;
  Faults.schedule_crash plan ~tid:17 ~at:35_000;

  let acked = Array.make 20 0 in
  for client = 0 to 19 do
    Sthread.spawn sched ~hw:(Dps.client_hw dps client) (fun () ->
        Dps.attach dps ~client;
        for i = 1 to 50 do
          let key = i mod 8 in
          ignore
            (Dps.call dps ~key (fun d ->
                 d.cells.(key) <- d.cells.(key) + 1;
                 d.cells.(key)));
          acked.(client) <- acked.(client) + 1
        done;
        Dps.client_done dps;
        Dps.drain dps)
  done;

  Sthread.run sched;

  let acked_total = Array.fold_left ( + ) 0 acked in
  let applied =
    let t = ref 0 in
    for p = 0 to Dps.npartitions dps - 1 do
      t := !t + Array.fold_left ( + ) 0 (Dps.partition_data dps p).cells
    done;
    !t
  in
  let h = Dps.health dps in
  Printf.printf "clients crashed mid-run: %s\n"
    (String.concat ", " (List.map string_of_int (Faults.crashed plan)));
  Printf.printf "stalls injected: %d\n" (Faults.stalls_injected plan);
  Printf.printf "ops acknowledged: %d, ops applied: %d (crashed clients may each leave\n"
    acked_total applied;
  Printf.printf "  one unacknowledged op in flight — applied-acked here: %d)\n"
    (applied - acked_total);
  Printf.printf "healing: takeovers=%d adoptions=%d retries=%d lock_breaks=%d crashes=%d\n"
    h.Dps.takeovers h.Dps.adoptions h.Dps.retries h.Dps.lock_breaks h.Dps.crashes;
  Printf.printf "simulated time: %d cycles; surviving threads all finished: %b\n"
    (Sthread.now sched)
    (Sthread.live_threads sched = 0)

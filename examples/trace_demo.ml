(* Unified observability: span tracing, the metrics registry and the
   simulated-cycle profiler.

   Two acts:
   1. the profiler over a DPS-partitioned hash table — where do the cycles
      of a delegated workload actually go (dispatch, await spin, memory,
      coherence stalls, parking), plus the metrics registry unifying
      [Machine.stats] and [Dps.health] behind one namespace;
   2. a traced memcached fleet — network rx/parse/serve/tx and delegation
      issue/ring/dispatch/completion as Chrome trace events, exported to
      the path named by DPS_TRACE and loadable in Perfetto or
      chrome://tracing.

   Run with: DPS_TRACE=out.json dune exec examples/trace_demo.exe *)

module Machine = Dps_machine.Machine
module Sthread = Dps_sthread.Sthread
module Hashtable = Dps_ds.Hashtable
module Net = Dps_net.Net
module Server = Dps_server.Server
module Netload = Dps_workload.Netload
module Variants = Dps_memcached.Variants
module Obs = Dps_obs.Obs
module Registry = Dps_obs.Registry

(* --- Act 1: the profiler on a delegated hash-table workload ------------- *)

let profiled_hashtable () =
  print_endline "--- profile: 20 clients, 2 localities, delegated inserts ---";
  Obs.start ~tracing:false ~profiling:true ();
  let machine = Machine.create Machine.config_default in
  let sched = Sthread.create machine in
  let dps =
    Dps.create sched ~nclients:20 ~locality_size:10
      ~hash:(fun key -> key)
      ~mk_data:(fun (info : Dps.partition_info) -> Hashtable.create info.Dps.alloc)
      ()
  in
  for client = 0 to 19 do
    Sthread.spawn sched ~hw:(Dps.client_hw dps client) (fun () ->
        Dps.attach dps ~client;
        for i = 0 to 49 do
          let key = (client * 50) + i in
          ignore
            (Dps.call dps ~key (fun ht ->
                 if Hashtable.insert ht ~key ~value:(7 * key) then 1 else 0))
        done;
        Dps.client_done dps;
        Dps.drain dps)
  done;
  Sthread.run sched;
  Obs.stop ();
  (* the flamegraph: self cycles by class, inclusive totals per phase *)
  Format.printf "%a@." Obs.pp_profile ();
  (* one registry unifies the machine's coherence counters and the DPS
     runtime's health gauges under stable metric names *)
  let reg = Registry.create () in
  Machine.register_obs machine reg;
  Dps.register_obs dps reg;
  let interesting = [ "dps.delegated_ops"; "dps.local_ops"; "machine.remote_misses" ] in
  List.iter
    (fun s ->
      if List.mem s.Registry.name interesting then
        match s.Registry.value with
        | Registry.Gauge_v v -> Printf.printf "  %-20s %.0f\n" s.Registry.name v
        | _ -> ())
    (Registry.snapshot reg);
  print_newline ()

(* --- Act 2: a traced memcached fleet ------------------------------------ *)

let traced_fleet () =
  print_endline "--- trace: memcached fleet over the simulated network ---";
  Obs.start ~tracing:true ~profiling:true ();
  let items = 1024 in
  let m = Machine.create (Machine.config_scaled ()) in
  let sched = Sthread.create m in
  let net = Net.create sched () in
  (* dps_mc delegates gets synchronously, so the trace carries the full
     async lifecycle of each delegation: issue -> sent -> dispatch -> done *)
  let backend =
    Variants.dps_mc sched ~nclients:20 ~locality_size:10 ~buckets:items ~capacity:(2 * items) ()
  in
  backend.Variants.populate ~keys:(Array.init items Fun.id) ~val_lines:2;
  let srv = Server.start sched net ~backend { Server.default_config with npollers = 20 } in
  let sp = Netload.spec ~nclients:200 ~nconns:16 ~set_pct:10 ~mget:2 ~key_range:items ~seed:7L () in
  let r = Netload.run sched net sp ~duration:100_000 ~stop:(fun () -> Server.stop srv) () in
  Obs.stop ();
  Printf.printf "  %d requests completed, %d trace events collected\n" r.Netload.completed
    (Obs.event_count ());
  (match Obs.validate () with
  | Ok () -> print_endline "  trace well-formed: spans balanced, timestamps monotone"
  | Error e -> Printf.printf "  TRACE INVALID: %s\n" e);
  (* per-core charged cycles and the server-side flamegraph *)
  Format.printf "%a@." Obs.pp_profile ();
  let reg = Registry.create () in
  Net.register_obs net reg;
  Server.register_obs srv reg;
  Format.printf "%a@." Registry.pp reg;
  match Obs.trace_path_from_env () with
  | Some path ->
      Obs.write_chrome path;
      Printf.printf "  trace written to %s — load it in Perfetto (ui.perfetto.dev)\n" path
  | None ->
      print_endline "  set DPS_TRACE=out.json to export this trace for Perfetto"

let () =
  profiled_hashtable ();
  traced_fleet ()

(* Quickstart: a DPS-partitioned hash table on the simulated 4-socket
   machine.

   Twenty simulated client threads (two localities of ten hyperthreads,
   sockets 0 and 1) insert and look up keys. Keys hash to a partition;
   local keys run as plain calls, remote keys are delegated over
   cache-line message rings — and every client doubles as a server for its
   own locality while it waits.

   Run with: dune exec examples/quickstart.exe *)

module Machine = Dps_machine.Machine
module Sthread = Dps_sthread.Sthread
module Hashtable = Dps_ds.Hashtable

let () =
  (* 1. A simulated machine and its event scheduler. *)
  let machine = Machine.create Machine.config_default in
  let sched = Sthread.create machine in

  (* 2. A DPS instance: 20 clients in localities of 10; one hash-table
        partition per locality, allocated on that locality's NUMA node. *)
  let dps =
    Dps.create sched ~nclients:20 ~locality_size:10
      ~hash:(fun key -> key)
      ~mk_data:(fun (info : Dps.partition_info) ->
        Printf.printf "partition %d lives on NUMA node %d\n" info.Dps.pid info.Dps.node;
        Hashtable.create info.Dps.alloc)
      ()
  in

  (* 3. Client threads: insert a few keys, read them back. *)
  let hits = ref 0 in
  for client = 0 to 19 do
    Sthread.spawn sched ~hw:(Dps.client_hw dps client) (fun () ->
        Dps.attach dps ~client;
        for i = 0 to 9 do
          let key = (client * 10) + i in
          (* execute/await are the paper's two-phase API; [call] wraps them *)
          ignore
            (Dps.call dps ~key (fun ht ->
                 if Hashtable.insert ht ~key ~value:(7 * key) then 1 else 0))
        done;
        for i = 0 to 9 do
          let key = (client * 10) + i in
          let v = Dps.call dps ~key (fun ht ->
              match Hashtable.lookup ht key with Some v -> v | None -> -1)
          in
          if v = 7 * key then incr hits
        done;
        Dps.client_done dps;
        Dps.drain dps)
  done;

  (* 4. Run the simulation to completion. *)
  Sthread.run sched;
  Printf.printf "lookups that found their value: %d/200\n" !hits;
  Printf.printf "operations delegated across sockets: %d, executed locally: %d\n"
    (Dps.delegated_ops dps) (Dps.local_ops dps);
  Printf.printf "simulated time: %d cycles (%.1f us at 2 GHz)\n" (Sthread.now sched)
    (1e6 *. Machine.cycles_to_seconds machine (Sthread.now sched))

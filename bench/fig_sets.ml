(** Data-structure figures: Figure 2 (shared-memory motivation), Figure 9
    (DPS improvement bars at 80 cores) and Figures 10–12 (linked list, BST
    and skip list sweeps). Working-set sizes above the cache knee run on
    the /16-scaled machine with sizes scaled identically, so the knee sits
    at the same relative x position (see EXPERIMENTS.md). *)

open Bench_common
module Driver = Dps_workload.Driver

module type SET = Dps_ds.Set_intf.SET

(* Sizes quoted from the paper, divided by the machine scale factor. *)
let scaled n = max 128 (n / scale_factor)

let lists : (module SET) list =
  [
    (module Dps_ds.Ll_michael);
    (module Dps_ds.Ll_lazy);
    (module Dps_ds.Ll_optik);
    (module Dps_ds.Rlu_list);
  ]

let bsts : (module SET) list =
  [ (module Dps_ds.Bst_bronson); (module Dps_ds.Bst_ellen); (module Dps_ds.Bst_tk) ]

let sls : (module SET) list = [ (module Dps_ds.Sl_herlihy); (module Dps_ds.Sl_fraser) ]

(* --- Figure 2 --- *)

let fig2 () =
  print_header "Figure 2 (left): shared bst & skiplist vs update ratio (4K nodes, skewed, 80c)";
  let ratios = if quick then [ 0; 50; 100 ] else [ 0; 20; 40; 60; 80; 100 ] in
  let impls : (module SET) list =
    [
      (module Dps_ds.Bst_tk);
      (module Dps_ds.Bst_ellen);
      (module Dps_ds.Sl_herlihy);
      (module Dps_ds.Sl_fraser);
    ]
  in
  Printf.printf "x = update ratio (%%)\n";
  List.iter
    (fun (label, pts) ->
      print_series ~label pts;
      print_misses ~label pts)
    (run_series
       (List.map
          (fun (module S : SET) ->
            ( S.name,
              List.map
                (fun u ->
                  ( string_of_int u,
                    fun () ->
                      run_shared (module S) ~config:full_config
                        (workload ~threads:80 ~size:4096 ~update_pct:u ~skewed:true ()) ))
                ratios ))
          impls));
  print_header "Figure 2 (right): shared bst & skiplist vs size (5% update, uniform, 80c)";
  let sizes = if quick then [ 8192; 262144 ] else [ 8192; 32768; 131072; 524288 ] in
  Printf.printf "x = nodes (scaled machine; aggregate-LLC knee near %d lines)\n"
    (4 * scaled_config.Dps_machine.Machine.llc_lines);
  List.iter
    (fun (label, pts) ->
      print_series ~label pts;
      print_misses ~label pts)
    (run_series
       (List.map
          (fun (module S : SET) ->
            ( S.name,
              List.map
                (fun size ->
                  ( string_of_int size,
                    fun () ->
                      run_shared (module S) ~config:scaled_config
                        (workload ~threads:80 ~size ~update_pct:5 ~skewed:false ()) ))
                sizes ))
          impls))

(* --- Figure 9 --- *)

let fig9_structures : (string * (module SET)) list =
  [
    ("ll/gl-m", (module Dps_ds.Ll_coarse));
    ("ll/lb-l", (module Dps_ds.Ll_lazy));
    ("ll/lf-m", (module Dps_ds.Ll_michael));
    ("bst/lb-b", (module Dps_ds.Bst_bronson));
    ("bst/lf-n", (module Dps_ds.Bst_ellen));
    ("bst/lf-h", (module Dps_ds.Bst_internal_lf));
    ("sl/lb-h", (module Dps_ds.Sl_herlihy));
    ("sl/lf-f", (module Dps_ds.Sl_fraser));
  ]

let fig9_panel ~title w_of =
  print_header title;
  Printf.printf "%-10s %12s %12s %8s\n" "structure" "orig Mops/s" "DPS Mops/s" "speedup";
  (* one thunk per (structure, harness) pair, merged back per structure *)
  let rows =
    map_points
      (fun ((module S : SET), config, w, harness) ->
        match harness with
        | `Orig -> run_shared (module S) ~config w
        | `Dps -> run_dps (module S) ~config w)
      (List.concat_map
         (fun (label, (module S : SET)) ->
           let family = List.hd (String.split_on_char '/' label) in
           let w : workload = w_of family in
           let config = if w.size > 16384 then scaled_config else full_config in
           [ ((module S : SET), config, w, `Orig); ((module S : SET), config, w, `Dps) ])
         fig9_structures)
  in
  let rec print2 labels = function
    | orig :: dps :: rest ->
        let label = List.hd labels in
        Printf.printf "%-10s %12.3f %12.3f %7.1fx\n%!" label orig.Driver.throughput_mops
          dps.Driver.throughput_mops
          (dps.Driver.throughput_mops /. max 1e-9 orig.Driver.throughput_mops);
        print2 (List.tl labels) rest
    | _ -> ()
  in
  print2 (List.map fst fig9_structures) rows

let fig9 () =
  fig9_panel ~title:"Figure 9(a): skewed, 4K nodes, 50% update, 80 cores (lists scaled to 1K)"
    (fun family ->
      let size = if family = "ll" then 1024 else 4096 in
      workload ~threads:80 ~size ~update_pct:50 ~skewed:true ());
  fig9_panel
    ~title:"Figure 9(b): uniform, 32K (lists) / 2M-scaled (trees) nodes, 5% update, 80 cores"
    (fun family ->
      (* trees/skiplists: scale the paper's 2M down by 4 (not 16) so the
         working set sits as far past the scaled cache knee as the paper's
         sits past the real one *)
      let size = if family = "ll" then scaled 32768 else 524288 in
      workload ~threads:80 ~size ~update_pct:5 ~skewed:false
        ?min_ops:(if family = "ll" then Some 2 else None)
        ())

(* --- Figures 10-12: four standard panels per structure family --- *)

let four_panels ~figure ~family ~impls ~small_size ~big_size ~size_sweep () =
  (* panel a: cores sweep, high contention *)
  print_header
    (Printf.sprintf "Figure %s(a): %s, skewed %d nodes, 50%% update, vs cores" figure family
       small_size);
  (* DPS's per-partition structures, as in the paper: the ParSec list for
     linked lists (§5.2), BST-TK for trees, the lazy skip list. *)
  let dps_internal : (module SET) =
    match family with
    | "linked list" -> (module Dps_parsec.Parsec_list)
    | "bst" -> (module Dps_ds.Bst_tk)
    | _ -> (module Dps_ds.Sl_herlihy)
  in
  let ffwd_servers = if family = "bst" then 4 else 1 in
  let sweep_panel ~config ~xs w_of =
    (* every series of the panel (impls + ffwd + DPS) in one fan-out *)
    let mk label runner = (label, List.map (fun x -> (string_of_int x, fun () -> runner x)) xs) in
    List.iter
      (fun (label, pts) -> print_series ~label pts)
      (run_series
         (List.map
            (fun (module S : SET) ->
              mk S.name (fun x -> run_shared (module S) ~config (w_of x)))
            impls
         @ [
             mk "ffwd" (fun x -> run_ffwd dps_internal ~config ~servers:ffwd_servers (w_of x));
             mk "DPS" (fun x -> run_dps dps_internal ~config (w_of x));
           ]))
  in
  let cores_panel ~config w_of = sweep_panel ~config ~xs:core_counts w_of in
  cores_panel ~config:full_config (fun n ->
      workload ~threads:n ~size:small_size ~update_pct:50 ~skewed:true ());
  (* panel b: cores sweep, large working set *)
  print_header
    (Printf.sprintf "Figure %s(b): %s, uniform %d nodes, 5%% update, vs cores" figure family
       big_size);
  cores_panel ~config:scaled_config (fun n ->
      workload ~threads:n ~size:big_size ~update_pct:5 ~skewed:false
        ?min_ops:(if family = "linked list" then Some 2 else None)
        ());
  (* panel c: update-ratio sweep at 80 cores *)
  print_header
    (Printf.sprintf "Figure %s(c): %s, skewed %d nodes, vs update ratio (80c)" figure family
       small_size);
  let ratios = if quick then [ 0; 50; 100 ] else [ 0; 20; 40; 60; 80; 100 ] in
  sweep_panel ~config:full_config ~xs:ratios (fun u ->
      workload ~threads:80 ~size:small_size ~update_pct:u ~skewed:true ());
  (* panel d: size sweep at 80 cores *)
  print_header (Printf.sprintf "Figure %s(d): %s, uniform 5%% update, vs size (80c)" figure family);
  sweep_panel ~config:scaled_config ~xs:size_sweep (fun size ->
      workload ~threads:80 ~size ~update_pct:5 ~skewed:false
        ?min_ops:(if family = "linked list" then Some 2 else None)
        ~duration:(if family = "linked list" then 150_000 else default_duration)
        ())

let fig10 () =
  four_panels ~figure:"10" ~family:"linked list" ~impls:lists ~small_size:1024
    ~big_size:(scaled 32768)
    ~size_sweep:(if quick then [ 128; 2048 ] else [ 128; 512; 2048; 8192; 32768 ]) ()

let fig11 () =
  four_panels ~figure:"11" ~family:"bst" ~impls:bsts ~small_size:4096 ~big_size:524288
    ~size_sweep:(if quick then [ 2048; 131072 ] else [ 2048; 16384; 131072; 524288 ]) ()

let fig12 () =
  four_panels ~figure:"12" ~family:"skip list" ~impls:sls ~small_size:4096 ~big_size:524288
    ~size_sweep:(if quick then [ 2048; 131072 ] else [ 2048; 16384; 131072; 524288 ]) ()

let all () =
  fig2 ();
  fig9 ();
  fig10 ();
  fig11 ();
  fig12 ()

(** Delegation microbenchmarks: Figure 3 (throughput vs operation length),
    Figure 6(a) (throughput vs cores, empty and 500-cycle operations) and
    Figure 6(b) (responsiveness vs inter-operation delay, with the
    asynchronous DPS optimisation). The "data structure operation" is a
    pure spin of the given length, as in §5.1. *)

open Bench_common
module Sthread = Dps_sthread.Sthread
module Simops = Dps_sthread.Simops
module Prng = Dps_simcore.Prng
module Driver = Dps_workload.Driver
module Topology = Dps_machine.Topology
module Ffwd = Dps_ffwd.Ffwd

type mode = Dps_sync | Dps_async | Ffwd_servers of int

(* One run: [threads] clients issue spin-operations of [op_len] cycles on
   uniformly random keys, pausing [delay] cycles between operations.
   [config] overrides the machine (the bandwidth A/B runs with token
   buckets on); [on_machine] observes the machine after the measurement
   (e.g. to read bandwidth byte counters). *)
let run ?(config = full_config) ?(on_machine = fun (_ : Dps_machine.Machine.t) -> ()) ~mode
    ~threads ~op_len ~delay ~duration () =
  let m = Dps_machine.Machine.create config in
  let sched = Sthread.create m in
  let result =
    match mode with
    | Dps_sync | Dps_async ->
        let dps =
          Dps.create sched ~nclients:threads ~locality_size:10
            ~hash:(fun k -> k)
            ~mk_data:(fun _ -> ())
            ()
        in
        let nparts = Dps.npartitions dps in
        let op ~tid:_ ~step:_ =
          let p = Sthread.self_prng () in
          let key = Prng.int p (64 * nparts) in
          let spin () =
            if op_len > 0 then Simops.work op_len;
            0
          in
          (match mode with
          | Dps_sync -> ignore (Dps.call dps ~key (fun () -> spin ()))
          | Dps_async | Ffwd_servers _ -> Dps.execute_async dps ~key (fun () -> spin ()));
          if delay > 0 then Simops.work delay
        in
        let placement = Array.init threads (Dps.client_hw dps) in
        Driver.measure ~sched ~threads ~placement ~duration
          ~prologue:(fun ~tid -> Dps.attach dps ~client:tid)
          ~epilogue:(fun ~tid:_ ->
            Dps.client_done dps;
            Dps.drain dps)
          ~op ()
    | Ffwd_servers servers ->
        let topo = Dps_machine.Machine.topology m in
        let server_hw =
          Array.init servers (fun i ->
              i * topo.Topology.cores_per_socket * topo.Topology.threads_per_core)
        in
        let f = Ffwd.create sched ~server_hw ~clients:threads in
        let all = Topology.placement topo ~n:(min (Topology.nthreads topo) (threads + servers)) in
        let server_set = Array.to_list server_hw in
        let client_hws =
          Array.of_list (List.filter (fun hw -> not (List.mem hw server_set)) (Array.to_list all))
        in
        let placement = Array.init threads (fun i -> client_hws.(i mod Array.length client_hws)) in
        let op ~tid:_ ~step:_ =
          let p = Sthread.self_prng () in
          let server = Prng.int p servers in
          ignore
            (Ffwd.call f ~server (fun () ->
                 if op_len > 0 then Simops.work op_len;
                 0));
          if delay > 0 then Simops.work delay
        in
        Driver.measure ~sched ~threads ~placement ~duration
          ~prologue:(fun ~tid -> Ffwd.attach f ~client:tid)
          ~epilogue:(fun ~tid:_ -> Ffwd.client_done f)
          ~op ()
  in
  on_machine m;
  result

let fig3 () =
  print_header "Figure 3: throughput vs data-structure operation length (80 threads)";
  let lengths = if quick then [ 0; 500; 2000 ] else [ 0; 400; 800; 1200; 1600; 2000 ] in
  let series name mode =
    ( name,
      List.map
        (fun len ->
          ( string_of_int len,
            fun () -> run ~mode ~threads:80 ~op_len:len ~delay:0 ~duration:default_duration () ))
        lengths )
  in
  Printf.printf "x = operation length (cycles)\n";
  List.iter
    (fun (label, pts) -> print_series ~label pts)
    (run_series
       [
         series "DPS" Dps_sync;
         series "ffwd-s1" (Ffwd_servers 1);
         series "ffwd-s4" (Ffwd_servers 4);
       ])

let fig6a () =
  print_header "Figure 6(a): delegation throughput vs cores (empty / 500-cycle ops)";
  let series name mode op_len =
    ( name,
      List.map
        (fun n ->
          ( string_of_int n,
            fun () -> run ~mode ~threads:n ~op_len ~delay:0 ~duration:default_duration () ))
        core_counts )
  in
  Printf.printf "x = cores\n";
  List.iter
    (fun (label, pts) -> print_series ~label pts)
    (run_series
       [
         series "DPS" Dps_sync 0;
         series "ffwd-s1" (Ffwd_servers 1) 0;
         series "ffwd-s4" (Ffwd_servers 4) 0;
         series "DPS-500" Dps_sync 500;
         series "ffwd-s1-500" (Ffwd_servers 1) 500;
         series "ffwd-s4-500" (Ffwd_servers 4) 500;
       ])

let fig6b () =
  print_header "Figure 6(b): throughput vs inter-operation delay (80 threads, empty ops)";
  let delays = if quick then [ 0; 4000; 10000 ] else [ 0; 2000; 4000; 6000; 8000; 10000 ] in
  let series name mode =
    ( name,
      List.map
        (fun d ->
          ( string_of_int d,
            fun () -> run ~mode ~threads:80 ~op_len:0 ~delay:d ~duration:default_duration () ))
        delays )
  in
  Printf.printf "x = delay between operations (cycles)\n";
  List.iter
    (fun (label, pts) -> print_series ~label pts)
    (run_series
       [ series "DPS" Dps_sync; series "DPS-a" Dps_async; series "ffwd-s4" (Ffwd_servers 4) ])

let all () =
  fig3 ();
  fig6a ();
  fig6b ()

(** Bechamel microbenchmarks: one [Test.make] per paper table/figure,
    measuring a scaled-down kernel of that experiment's hot path (real
    wall-clock of the simulator, not simulated cycles — these quantify the
    harness itself). Deliberately sequential: bechamel measures host
    wall-clock, which concurrent domains would corrupt. *)

open Bechamel
open Toolkit
module Machine = Dps_machine.Machine
module Sthread = Dps_sthread.Sthread
module Alloc = Dps_sthread.Alloc
module Prng = Dps_simcore.Prng

let set_kernel name (module S : Dps_ds.Set_intf.SET) =
  let m = Machine.create (Machine.config_scaled ()) in
  let alloc = Alloc.create m ~cold:Alloc.Spread in
  let s = S.create alloc in
  for i = 1 to 1024 do
    ignore (S.insert s ~key:(((i * 2654435761) land 0xFFFFFF) + 1) ~value:i)
  done;
  let p = Prng.create 77L in
  Test.make ~name
    (Staged.stage (fun () ->
         let key = 1 + Prng.int p 4096 in
         match Prng.int p 3 with
         | 0 -> ignore (S.insert s ~key ~value:key)
         | 1 -> ignore (S.remove s key)
         | _ -> ignore (S.lookup s key)))

let dps_kernel () =
  Test.make ~name:"fig3/6: DPS delegated call (mini sim)"
    (Staged.stage (fun () ->
         let m = Machine.create (Machine.config_scaled ()) in
         let sched = Sthread.create m in
         let dps =
           Dps.create sched ~nclients:20 ~locality_size:10 ~hash:Fun.id ~mk_data:(fun _ -> ()) ()
         in
         for c = 0 to 19 do
           Sthread.spawn sched ~hw:(Dps.client_hw dps c) (fun () ->
               Dps.attach dps ~client:c;
               for k = 0 to 4 do
                 ignore (Dps.call dps ~key:k (fun () -> 0))
               done;
               Dps.client_done dps;
               Dps.drain dps)
         done;
         Sthread.run sched))

let rw_kernel () =
  let m = Machine.create (Machine.config_scaled ()) in
  let o = Dps_ds.Rw_object.create m Machine.Interleave ~objects:64 ~lines:4 ~write_lines:4 in
  let sched = Sthread.create m in
  let i = ref 0 in
  Test.make ~name:"fig7/8/table2: rw-object op (1-thread sim)"
    (Staged.stage (fun () ->
         incr i;
         let idx = !i mod 64 in
         Sthread.spawn sched ~hw:0 (fun () -> Dps_ds.Rw_object.operate o idx);
         Sthread.run sched))

let machine_kernel () =
  let m = Machine.create Machine.config_default in
  let a = Machine.alloc m Machine.Interleave ~lines:4096 in
  let i = ref 0 in
  Test.make ~name:"machine: coherent access model"
    (Staged.stage (fun () ->
         incr i;
         let thread = !i * 7 mod 80 and addr = a + (!i * 13 mod 4096) in
         let kind = if !i land 1 = 0 then Machine.Read else Machine.Write in
         ignore (Machine.access m ~now:!i ~thread ~addr ~kind)))

let mc_kernel () =
  let m = Machine.create (Machine.config_scaled ()) in
  let alloc = Alloc.create m ~cold:Alloc.Spread in
  let c =
    Dps_memcached.Mc_core.create alloc ~buckets:1024 ~capacity:4096
      ~recency:Dps_memcached.Mc_core.Lru_list
  in
  for k = 0 to 2047 do
    Dps_memcached.Mc_core.set c ~key:k ~val_lines:2
  done;
  let p = Prng.create 99L in
  Test.make ~name:"fig13: memcached get/set"
    (Staged.stage (fun () ->
         let key = Prng.int p 2048 in
         if Prng.int p 100 = 0 then Dps_memcached.Mc_core.set c ~key ~val_lines:2
         else ignore (Dps_memcached.Mc_core.get c key)))

let hist_kernel () =
  let h = Dps_simcore.Histogram.create () in
  let p = Prng.create 5L in
  Test.make ~name:"latency: histogram add+percentile"
    (Staged.stage (fun () ->
         Dps_simcore.Histogram.add h (Prng.int p 1_000_000);
         ignore (Dps_simcore.Histogram.percentile h 0.99)))

let tests () =
  Test.make_grouped ~name:"dps-repro" ~fmt:"%s %s"
    [
      set_kernel "fig2: bst-tk op" (module Dps_ds.Bst_tk);
      dps_kernel ();
      rw_kernel ();
      machine_kernel ();
      set_kernel "fig9/10: lf-m list op" (module Dps_ds.Ll_michael);
      set_kernel "fig11: lf-n bst op" (module Dps_ds.Bst_ellen);
      set_kernel "fig12: lf-f skiplist op" (module Dps_ds.Sl_fraser);
      mc_kernel ();
      hist_kernel ();
    ]

let run () =
  print_endline "\n=== Bechamel kernels (real time per run) ===";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let quick = Bench_common.quick in
  let cfg =
    Benchmark.cfg
      ~limit:(if quick then 500 else 2000)
      ~quota:(Time.second (if quick then 0.05 else 0.25))
      ~stabilize:false ()
  in
  let raw_results = Benchmark.all cfg instances (tests ()) in
  let results = List.map (fun instance -> Analyze.all ols instance raw_results) instances in
  let results = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure tbl ->
      if measure = Measure.label Instance.monotonic_clock then
        Hashtbl.iter
          (fun name ols_result ->
            match Analyze.OLS.estimates ols_result with
            | Some [ est ] -> Printf.printf "%-45s %12.1f ns/run\n" name est
            | Some _ | None -> Printf.printf "%-45s (no estimate)\n" name)
          tbl)
    results;
  print_newline ()

(** Profiler figure: cycle attribution on the delegation hot path, and the
    observability layer's zero-perturbation guarantee.

    One DPS run of the Figure 6(a) microbenchmark (80 threads, 500-cycle
    operations) is repeated three times from the same seed: observability
    off, profiling on, tracing+profiling on. The profiled runs print the
    flamegraph-style phase table (spin in await, dispatch, coherence
    stalls, parking) and land its rows in BENCH_profile.json; the run
    triple must produce bit-identical simulation results — the same
    invariant test/test_obs.ml enforces — and the verdict lands in the
    JSON too, so the CI regression gate re-checks it on every push.

    Deliberately sequential: the experiment toggles the global {!Obs}
    tracer/profiler state, which the parallel runner cannot isolate per
    domain (Bench_common.run_all falls back to one job whenever Obs is
    on for the same reason). *)

open Bench_common
module Sthread = Dps_sthread.Sthread
module Simops = Dps_sthread.Simops
module Prng = Dps_simcore.Prng
module Driver = Dps_workload.Driver
module Obs = Dps_obs.Obs

let run ~threads ~op_len ~duration =
  let m = Dps_machine.Machine.create full_config in
  let sched = Sthread.create m in
  let dps =
    Dps.create sched ~nclients:threads ~locality_size:10
      ~hash:(fun k -> k)
      ~mk_data:(fun _ -> ())
      ()
  in
  let nparts = Dps.npartitions dps in
  let op ~tid:_ ~step:_ =
    let p = Sthread.self_prng () in
    let key = Prng.int p (64 * nparts) in
    ignore
      (Dps.call dps ~key (fun () ->
           if op_len > 0 then Simops.work op_len;
           0))
  in
  let placement = Array.init threads (Dps.client_hw dps) in
  Driver.measure ~sched ~threads ~placement ~duration
    ~prologue:(fun ~tid -> Dps.attach dps ~client:tid)
    ~epilogue:(fun ~tid:_ ->
      Dps.client_done dps;
      Dps.drain dps)
    ~op ()

let all () =
  print_header "Profile: cycle attribution on the delegation hot path";
  let threads = if quick then 40 else 80 in
  let duration = default_duration in
  let op_len = 500 in
  (* baseline: observability fully off *)
  Obs.stop ();
  Obs.reset ();
  let r_off = run ~threads ~op_len ~duration in
  (* profiling only *)
  Obs.start ~tracing:false ~profiling:true ();
  let r_prof = run ~threads ~op_len ~duration in
  Obs.stop ();
  let rows = Obs.profile () in
  let profile_table = Format.asprintf "%a" Obs.pp_profile () in
  (* tracing + profiling *)
  Obs.start ~tracing:true ~profiling:true ();
  let r_trace = run ~threads ~op_len ~duration in
  Obs.stop ();
  let events = Obs.event_count () in
  Obs.reset ();
  Printf.printf "%d threads, %d-cycle operations, %.3f Mops/s\n\n" threads op_len
    r_prof.Driver.throughput_mops;
  List.iter
    (fun (p : Obs.prof_row) ->
      json_record ~series:("phase/" ^ p.phase) ~x:(string_of_int threads)
        [
          ("self_work", float_of_int p.self_work);
          ("self_mem", float_of_int p.self_mem);
          ("self_stall", float_of_int p.self_stall);
          ("self_park", float_of_int p.self_park);
          ("total", float_of_int p.total);
        ])
    rows;
  print_string profile_table;
  print_newline ();
  let identical = r_off = r_prof && r_off = r_trace in
  json_record ~series:"identity" ~x:"off-vs-on"
    [
      ("identical", if identical then 1.0 else 0.0);
      ("throughput_mops", r_off.Driver.throughput_mops);
    ];
  if identical then
    Printf.printf
      "zero perturbation: off / profiled / traced runs bit-identical (%d ops, %d trace events)\n"
      r_off.Driver.ops events
  else
    Printf.printf "PERTURBED: off %.6f, profiled %.6f, traced %.6f Mops/s\n"
      r_off.Driver.throughput_mops r_prof.Driver.throughput_mops r_trace.Driver.throughput_mops

(** STREAM-like bandwidth calibration and the delegation bytes A/B.

    The sweep runs copy/triad streaming kernels (factor-16 memory-level
    parallelism, disjoint per-thread arrays) on 1..N cores of socket 0
    against local, remote and interleaved placements, with the token
    buckets of {!Dps_machine.Costs.bw_default} enabled. Per-socket
    throughput rises linearly until a bucket saturates, then flattens: the
    saturation knee. Remote placement knees earlier and lower (the
    inbound link is narrower than a memory controller) — the shape that
    pins the bucket parameters.

    The A/B runs the coalescible delegation workload under
    {!Dps_machine.Costs.bw_unlimited} — zero queueing delay, only the
    byte counters run — and reports interconnect bytes per operation for
    DPS vs ffwd.
    DPS's socket-local client-to-leader rings move fewer cross-socket
    bytes per op than ffwd's all-sockets-to-server rings. *)

open Bench_common
module Machine = Dps_machine.Machine
module Topology = Dps_machine.Topology
module Costs = Dps_machine.Costs
module Sthread = Dps_sthread.Sthread
module Driver = Dps_workload.Driver
module Simops = Dps_sthread.Simops
module Prng = Dps_simcore.Prng
module Ffwd = Dps_ffwd.Ffwd

let mlp_factor = 16
let chunk = 64 (* lines per measured op *)
let array_lines = 16384 (* per array: well past the scaled LLC *)

type kernel = Copy | Triad
type place = Local | Remote | Interleaved

let kernel_name = function Copy -> "copy" | Triad -> "triad"
let place_name = function Local -> "local" | Remote -> "remote" | Interleaved -> "interleave"

(* Lines the kernel touches per element: one read + one write (copy),
   two reads + one write (triad). *)
let lines_per_elem = function Copy -> 2 | Triad -> 3

let policy_of = function
  | Local -> Machine.On_node 0
  | Remote -> Machine.On_node 1
  | Interleaved -> Machine.Interleave

(* Scaled caches (so the arrays stream past the LLC) with the calibrated
   bandwidth ceilings switched on. *)
let bw_config = { scaled_config with Machine.costs = { Costs.default with Costs.bw = Costs.bw_default } }

(* One point: [cores] threads, one per physical core of socket 0, each
   streaming its own arrays. Returns kernel bytes moved per cycle (reads
   plus writes at 64 B per line, the STREAM convention — write-allocate
   and write-back traffic is the machine's business, not the kernel's). *)
let run_stream ~kernel ~place ~cores ~duration =
  let m = Machine.create bw_config in
  let topo = Machine.topology m in
  let sched = Sthread.create m in
  let pol = policy_of place in
  let arrays =
    Array.init cores (fun _ ->
        Array.init (lines_per_elem kernel) (fun _ -> Machine.alloc m pol ~lines:array_lines))
  in
  let cursors = Array.make cores 0 in
  let placement = Array.init cores (fun i -> i * topo.Topology.threads_per_core) in
  let op ~tid ~step:_ =
    let arr = arrays.(tid) in
    let cur = cursors.(tid) in
    (match kernel with
    | Copy ->
        for i = 0 to chunk - 1 do
          let off = (cur + i) mod array_lines in
          Sthread.access_pipelined ~factor:mlp_factor ~kind:Machine.Read (arr.(0) + off);
          Sthread.access_pipelined ~factor:mlp_factor ~kind:Machine.Write (arr.(1) + off)
        done
    | Triad ->
        for i = 0 to chunk - 1 do
          let off = (cur + i) mod array_lines in
          Sthread.access_pipelined ~factor:mlp_factor ~kind:Machine.Read (arr.(0) + off);
          Sthread.access_pipelined ~factor:mlp_factor ~kind:Machine.Read (arr.(1) + off);
          Sthread.access_pipelined ~factor:mlp_factor ~kind:Machine.Write (arr.(2) + off)
        done);
    cursors.(tid) <- (cur + chunk) mod array_lines
  in
  let r = Driver.measure ~sched ~threads:cores ~placement ~duration ~op () in
  let bytes = r.Driver.ops * chunk * lines_per_elem kernel * 64 in
  float_of_int bytes /. float_of_int r.Driver.duration_cycles

(* The saturation knee: the first core count reaching 85% of the sweep's
   plateau (its maximum). Below the knee throughput scales with cores;
   past it the bucket is the limit. *)
let knee_of points =
  let plateau = List.fold_left (fun acc (_, bpc) -> Float.max acc bpc) 0. points in
  let rec find = function
    | [] -> (0, plateau)
    | (c, bpc) :: rest -> if bpc >= 0.85 *. plateau then (c, plateau) else find rest
  in
  find points

let stream_cores = if quick then [ 1; 2; 4; 8 ] else [ 1; 2; 3; 4; 6; 8; 10 ]

let sweep () =
  print_header "STREAM: per-socket throughput vs streaming cores (B/cycle)";
  Printf.printf "x = cores on socket 0 (placement: array home)\n";
  let series =
    List.concat_map
      (fun kernel ->
        List.map
          (fun place ->
            ( Printf.sprintf "%s/%s" (kernel_name kernel) (place_name place),
              List.map
                (fun cores ->
                  ( string_of_int cores,
                    fun () -> run_stream ~kernel ~place ~cores ~duration:default_duration ))
                stream_cores ))
          [ Local; Remote; Interleaved ])
      [ Copy; Triad ]
  in
  let results = run_series series in
  List.iter
    (fun (label, pts) ->
      List.iter (fun (x, bpc) -> json_record ~series:label ~x [ ("bytes_per_cycle", bpc) ]) pts;
      Printf.printf "%-16s %s\n" label
        (String.concat "  " (List.map (fun (x, _) -> Printf.sprintf "%8s" x) pts));
      Printf.printf "%-16s %s\n%!" ""
        (String.concat "  " (List.map (fun (_, bpc) -> Printf.sprintf "%8.2f" bpc) pts)))
    results;
  (* knees from the same points: greppable one-liners *)
  List.iter
    (fun (label, pts) ->
      let points = List.map (fun (x, bpc) -> (int_of_string x, bpc)) pts in
      let kn, plateau = knee_of points in
      json_record ~series:(label ^ "/knee") ~x:(string_of_int kn)
        [ ("plateau_bytes_per_cycle", plateau) ];
      Printf.printf "STREAM %s knee=%d cores plateau=%.2f B/cycle\n%!" label kn plateau)
    results

(* Interconnect bytes per delegated operation, DPS vs ffwd, on the
   coalescible window workload of bench/fig_batch (each step issues a
   window of small operations against one partition/shard, then awaits
   them). DPS runs with sender-side coalescing on — up to 7 descriptors
   cross the interconnect as one message line — while ffwd's protocol
   inherently posts one request line per operation. Buckets are
   [bw_unlimited]: zero queueing delay, the byte counters just run. *)
let ab_threads = 80
let ab_window = 7
let ab_op_len = 50

let ab_config =
  { full_config with Machine.costs = { Costs.default with Costs.bw = Costs.bw_unlimited } }

let run_ab_dps () =
  let m = Machine.create ab_config in
  let sched = Sthread.create m in
  let dps =
    Dps.create sched ~nclients:ab_threads ~locality_size:10 ~batch:7 ~batch_age:1500
      ~hash:(fun k -> k)
      ~mk_data:(fun _ -> ())
      ()
  in
  let nparts = Dps.npartitions dps in
  let op ~tid:_ ~step:_ =
    let p = Sthread.self_prng () in
    let base = Prng.int p nparts in
    let pending =
      Array.init ab_window (fun _ ->
          let key = base + (nparts * Prng.int p 64) in
          Dps.execute dps ~key (fun () ->
              Simops.work ab_op_len;
              0))
    in
    Array.iter (fun c -> ignore (Dps.await dps c)) pending
  in
  let placement = Array.init ab_threads (Dps.client_hw dps) in
  let r =
    Driver.measure ~sched ~threads:ab_threads ~placement ~duration:default_duration
      ~prologue:(fun ~tid -> Dps.attach dps ~client:tid)
      ~epilogue:(fun ~tid:_ ->
        Dps.client_done dps;
        Dps.drain dps)
      ~op ()
  in
  (r, float_of_int (Machine.interconnect_bytes m) /. float_of_int (r.Driver.ops * ab_window))

let run_ab_ffwd ~servers =
  let m = Machine.create ab_config in
  let topo = Machine.topology m in
  let sched = Sthread.create m in
  let server_hw =
    Array.init servers (fun i ->
        i * topo.Topology.cores_per_socket * topo.Topology.threads_per_core)
  in
  let f = Ffwd.create sched ~server_hw ~clients:ab_threads in
  let all =
    Topology.placement topo ~n:(min (Topology.nthreads topo) (ab_threads + servers))
  in
  let server_set = Array.to_list server_hw in
  let client_hws =
    Array.of_list (List.filter (fun hw -> not (List.mem hw server_set)) (Array.to_list all))
  in
  let placement =
    Array.init ab_threads (fun i -> client_hws.(i mod Array.length client_hws))
  in
  let op ~tid:_ ~step:_ =
    let p = Sthread.self_prng () in
    let server = Prng.int p servers in
    for _ = 1 to ab_window do
      ignore
        (Ffwd.call f ~server (fun () ->
             Simops.work ab_op_len;
             0))
    done
  in
  let r =
    Driver.measure ~sched ~threads:ab_threads ~placement ~duration:default_duration
      ~prologue:(fun ~tid -> Ffwd.attach f ~client:tid)
      ~epilogue:(fun ~tid:_ -> Ffwd.client_done f)
      ~op ()
  in
  (r, float_of_int (Machine.interconnect_bytes m) /. float_of_int (r.Driver.ops * ab_window))

let deleg_ab () =
  print_header
    (Printf.sprintf
       "STREAM A/B: interconnect bytes per delegated op (windows of %d, %d-cycle ops, %d \
        threads)"
       ab_window ab_op_len ab_threads);
  match map_points (fun f -> f ()) [ run_ab_dps; (fun () -> run_ab_ffwd ~servers:4) ] with
  | [ (dps_r, dps_bpo); (ffwd_r, ffwd_bpo) ] ->
      json_record ~series:"bytes_per_op" ~x:"DPS"
        [ ("bytes_per_op", dps_bpo); ("throughput_mops", dps_r.Driver.throughput_mops) ];
      json_record ~series:"bytes_per_op" ~x:"ffwd-s4"
        [ ("bytes_per_op", ffwd_bpo); ("throughput_mops", ffwd_r.Driver.throughput_mops) ];
      Printf.printf "STREAM deleg-bytes DPS=%.2f B/op ffwd-s4=%.2f B/op ratio=%.2fx\n%!" dps_bpo
        ffwd_bpo
        (if dps_bpo > 0. then ffwd_bpo /. dps_bpo else Float.infinity)
  | _ -> assert false

let all () =
  sweep ();
  deleg_ab ()

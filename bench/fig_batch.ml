(** Batch figure: cache-line request coalescing on the DPS hot path.

    Not from the paper — the paper's protocol posts one operation per
    message line. These experiments measure what sender-side coalescing
    ({!Dps.create}'s [batch] knob) buys and costs:

    - (a) throughput and latency vs batch size, with clients issuing
      windows of small operations to one partition (the shape that
      coalesces — a multi-get against co-located keys). Expected shape:
      throughput rises with batch size and flattens as the per-line
      header/claim amortization saturates; window latency falls with it.
    - (b) delegation latency vs the age-based flush bound, under sparse
      asynchronous traffic with think time. Expected shape: p50 rises
      with [batch_age] — a staged operation waits out the bound before
      the line is published — which is exactly the latency the bound
      caps.
    - (c) end-to-end: the memcached-over-network figure's DPS-ParSec
      point at 4096 clients, batched vs unbatched sets. *)

open Bench_common
module Machine = Dps_machine.Machine
module Sthread = Dps_sthread.Sthread
module Simops = Dps_sthread.Simops
module Prng = Dps_simcore.Prng
module Histogram = Dps_simcore.Histogram
module Driver = Dps_workload.Driver
module Net = Dps_net.Net
module Server = Dps_server.Server
module Netload = Dps_workload.Netload
module Variants = Dps_memcached.Variants

let threads = 80
let op_len = 50
let window = 7

let mk_dps sched ~batch ~batch_age =
  Dps.create sched ~nclients:threads ~locality_size:10 ~batch ~batch_age
    ~hash:(fun k -> k)
    ~mk_data:(fun _ -> ())
    ()

let ops_per_flush dps =
  let flushes = Dps.batch_flushes dps in
  if flushes = 0 then 1.0 else float_of_int (Dps.delegated_ops dps) /. float_of_int flushes

(* (a): each step issues a window of small operations against one
   partition's keys, then awaits them — the coalescible pattern. *)
let run_window ~batch =
  let m = Machine.create full_config in
  let sched = Sthread.create m in
  let dps = mk_dps sched ~batch ~batch_age:1500 in
  let nparts = Dps.npartitions dps in
  let op ~tid:_ ~step:_ =
    let p = Sthread.self_prng () in
    let base = Prng.int p nparts in
    let pending =
      Array.init window (fun _ ->
          let key = base + (nparts * Prng.int p 64) in
          Dps.execute dps ~key (fun () ->
              Simops.work op_len;
              0))
    in
    Array.iter (fun c -> ignore (Dps.await dps c)) pending
  in
  let placement = Array.init threads (Dps.client_hw dps) in
  let r =
    Driver.measure ~sched ~threads ~placement ~duration:default_duration
      ~prologue:(fun ~tid -> Dps.attach dps ~client:tid)
      ~epilogue:(fun ~tid:_ ->
        Dps.client_done dps;
        Dps.drain dps)
      ~op ()
  in
  (r, ops_per_flush dps)

let fig_sizes () =
  print_header
    (Printf.sprintf
       "Batch (a): throughput/latency vs batch size (%d threads, %d-cycle ops, windows of %d)"
       threads op_len window);
  let batches = [ 1; 2; 4; 7 ] in
  let pts = map_points (fun b -> (b, run_window ~batch:b)) batches in
  List.iter
    (fun (b, (r, opf)) ->
      json_record ~series:"DPS" ~x:(string_of_int b)
        [
          ("throughput_mops", r.Driver.throughput_mops *. float_of_int window);
          ("p50", float_of_int r.Driver.p50);
          ("p99", float_of_int r.Driver.p99);
          ("ops_per_flush", opf);
        ])
    pts;
  Printf.printf "%-14s %s\n" "batch"
    (String.concat "  " (List.map (fun (b, _) -> Printf.sprintf "%10d" b) pts));
  Printf.printf "%-14s %s  (Mops/s)\n" "DPS"
    (String.concat "  "
       (List.map
          (fun (_, (r, _)) ->
            Printf.sprintf "%10.3f" (r.Driver.throughput_mops *. float_of_int window))
          pts));
  Printf.printf "%-14s %s  (p50 cyc/window)\n" ""
    (String.concat "  " (List.map (fun (_, (r, _)) -> Printf.sprintf "%10d" r.Driver.p50) pts));
  Printf.printf "%-14s %s  (p99 cyc/window)\n" ""
    (String.concat "  " (List.map (fun (_, (r, _)) -> Printf.sprintf "%10d" r.Driver.p99) pts));
  Printf.printf "%-14s %s  (ops/flush)\n%!" ""
    (String.concat "  " (List.map (fun (_, (_, opf)) -> Printf.sprintf "%10.2f" opf) pts))

(* (b): sparse asynchronous traffic with think time; a staged operation's
   latency (issue to server-side execution) is bounded by the age flush. *)
let run_aged ~batch_age =
  let m = Machine.create full_config in
  let sched = Sthread.create m in
  let dps = mk_dps sched ~batch:7 ~batch_age in
  let nparts = Dps.npartitions dps in
  let lat = Histogram.create () in
  let op ~tid:_ ~step:_ =
    let p = Sthread.self_prng () in
    let key = Prng.int p (64 * nparts) in
    let t0 = Sthread.time () in
    Dps.execute_async dps ~key (fun () ->
        Histogram.add lat (Sthread.time () - t0);
        Simops.work op_len;
        0);
    (* think time between submissions keeps every stage below the full
       batch, so only the age bound publishes it *)
    Simops.work 2000;
    ignore (Dps.serve dps ~max:4)
  in
  let placement = Array.init threads (Dps.client_hw dps) in
  let (_ : Driver.result) =
    Driver.measure ~sched ~threads ~placement ~duration:default_duration
      ~prologue:(fun ~tid -> Dps.attach dps ~client:tid)
      ~epilogue:(fun ~tid:_ ->
        Dps.client_done dps;
        Dps.drain dps)
      ~op ()
  in
  (lat, ops_per_flush dps)

let fig_age () =
  print_header
    "Batch (b): async delegation latency vs age-based flush bound (batch 7, 2000-cycle think)";
  let ages = [ 250; 1000; 4000; 16_000 ] in
  let pts = map_points (fun a -> (a, run_aged ~batch_age:a)) ages in
  List.iter
    (fun (a, (lat, opf)) ->
      json_record ~series:"DPS" ~x:(string_of_int a)
        [
          ("p50", float_of_int (Histogram.percentile lat 0.50));
          ("p99", float_of_int (Histogram.percentile lat 0.99));
          ("ops_per_flush", opf);
        ])
    pts;
  Printf.printf "%-14s %s\n" "batch_age"
    (String.concat "  " (List.map (fun (a, _) -> Printf.sprintf "%10d" a) pts));
  Printf.printf "%-14s %s  (p50 cyc)\n" "DPS"
    (String.concat "  "
       (List.map
          (fun (_, (lat, _)) -> Printf.sprintf "%10d" (Histogram.percentile lat 0.50))
          pts));
  Printf.printf "%-14s %s  (p99 cyc)\n" ""
    (String.concat "  "
       (List.map
          (fun (_, (lat, _)) -> Printf.sprintf "%10d" (Histogram.percentile lat 0.99))
          pts));
  Printf.printf "%-14s %s  (ops/flush)\n%!" ""
    (String.concat "  " (List.map (fun (_, (_, opf)) -> Printf.sprintf "%10.2f" opf) pts))

(* (c): the network figure's DPS-ParSec point, batched vs unbatched. *)
let run_net ~batch =
  let m = Machine.create scaled_config in
  let sched = Sthread.create m in
  let net = Net.create sched () in
  let npollers = 40 in
  let items = if quick then 4096 else 16384 in
  let backend =
    Variants.dps_parsec sched ~self_healing:true ~batch ~nclients:npollers ~locality_size:10
      ~buckets:items ~capacity:(2 * items) ()
  in
  backend.Variants.populate ~keys:(Array.init items Fun.id) ~val_lines:2;
  let srv = Server.start sched net ~backend { Server.default_config with npollers } in
  let nclients = 4096 in
  let sp =
    Netload.spec ~nclients ~nconns:(max 32 (min 256 (nclients / 16))) ~set_pct:10 ~mget:1
      ~key_range:items ()
  in
  Netload.run sched net sp ~duration:default_duration ~stop:(fun () -> Server.stop srv) ()

let fig_net () =
  print_header "Batch (c): memcached/net DPS-ParSec at 4096 clients, batched vs unbatched sets";
  let pts = map_points (fun b -> (b, run_net ~batch:b)) [ 1; 4 ] in
  List.iter
    (fun (b, r) ->
      json_record ~series:"DPS-ParSec" ~x:(string_of_int b)
        [
          ("throughput_mops", r.Netload.throughput_mops);
          ("p50", float_of_int r.Netload.p50);
          ("p99", float_of_int r.Netload.p99);
        ])
    pts;
  Printf.printf "%-14s %s\n" "batch"
    (String.concat "  " (List.map (fun (b, _) -> Printf.sprintf "%10d" b) pts));
  Printf.printf "%-14s %s  (Mops/s)\n" "DPS-ParSec"
    (String.concat "  "
       (List.map (fun (_, r) -> Printf.sprintf "%10.3f" r.Netload.throughput_mops) pts));
  Printf.printf "%-14s %s  (p99 cyc)\n%!" ""
    (String.concat "  " (List.map (fun (_, r) -> Printf.sprintf "%10d" r.Netload.p99) pts))

let all () =
  fig_sizes ();
  fig_age ();
  fig_net ()

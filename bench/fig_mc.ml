(** The memcached study of §5.3: Figure 13(a–d) and the tail-latency
    comparison. Five variants (stock, ffwd, ParSec, DPS, DPS-ParSec) driven
    by a YCSB-style Zipfian trace; the cache is pre-populated and never
    evicts (the paper's 1 M items fit memory), so sets are updates. The
    1 M-item store runs /16-scaled with the scaled machine. *)

open Bench_common
module Sthread = Dps_sthread.Sthread
module Prng = Dps_simcore.Prng
module Driver = Dps_workload.Driver
module Keydist = Dps_workload.Keydist
module Variants = Dps_memcached.Variants

let items = if quick then 16384 else 65536 (* 1 M items / 16 *)

type which = Stock | Parsec | Ffwd_mc | Dps_mc | Dps_parsec

let name_of = function
  | Stock -> "stock"
  | Parsec -> "ParSec"
  | Ffwd_mc -> "ffwd"
  | Dps_mc -> "DPS-stock"
  | Dps_parsec -> "DPS-ParSec"

let variants = [ Dps_parsec; Parsec; Dps_mc; Stock; Ffwd_mc ]

let make which sched ~threads =
  let buckets = items and capacity = 2 * items in
  match which with
  | Stock -> Variants.stock sched ~nclients:threads ~buckets ~capacity
  | Parsec -> Variants.parsec sched ~nclients:threads ~buckets ~capacity
  | Ffwd_mc -> Variants.ffwd_mc sched ~nclients:threads ~buckets ~capacity
  | Dps_mc -> Variants.dps_mc sched ~nclients:threads ~locality_size:10 ~buckets ~capacity ()
  | Dps_parsec ->
      Variants.dps_parsec sched ~nclients:threads ~locality_size:10 ~buckets ~capacity ()

let run which ~threads ~set_pct ~val_lines ~duration =
  let m = Dps_machine.Machine.create scaled_config in
  let sched = Sthread.create m in
  let v = make which sched ~threads in
  v.Variants.populate ~keys:(Array.init items Fun.id) ~val_lines;
  let dist = Keydist.zipf ~range:items () in
  Driver.measure ~sched ~threads
    ~placement:(Array.init threads v.Variants.client_hw)
    ~duration
    ~prologue:(fun ~tid -> v.Variants.attach tid)
    ~epilogue:(fun ~tid:_ -> v.Variants.finish ())
    ~op:(fun ~tid:_ ~step:_ ->
      let p = Sthread.self_prng () in
      let key = Keydist.sample dist p in
      if Prng.int p 100 < set_pct then v.Variants.set ~key ~val_lines
      else ignore (v.Variants.get key))
    ()

(* One panel: every (variant x point) simulation in one fan-out. *)
let panel ~xs run_of =
  List.iter
    (fun (label, pts) -> print_series ~label pts)
    (run_series
       (List.map
          (fun which ->
            (name_of which, List.map (fun x -> (string_of_int x, fun () -> run_of which x)) xs))
          variants))

let fig13a () =
  print_header "Figure 13(a): memcached, 128 B values, 1% set, vs cores";
  panel ~xs:core_counts (fun which n ->
      run which ~threads:n ~set_pct:1 ~val_lines:2 ~duration:default_duration)

let fig13b () =
  print_header "Figure 13(b): memcached, 1 KB values, 20% set, vs cores";
  panel ~xs:core_counts (fun which n ->
      run which ~threads:n ~set_pct:20 ~val_lines:16 ~duration:default_duration)

let fig13c () =
  print_header "Figure 13(c): memcached, 128 B values, 80 cores, vs set ratio";
  let ratios = if quick then [ 1; 50; 99 ] else [ 1; 20; 40; 60; 80; 99 ] in
  panel ~xs:ratios (fun which s ->
      run which ~threads:80 ~set_pct:s ~val_lines:2 ~duration:default_duration)

let fig13d () =
  print_header "Figure 13(d): memcached, 1% set, 80 cores, vs value size (lines)";
  let sizes = if quick then [ 1; 8; 32 ] else [ 1; 2; 8; 16; 32 ] in
  panel ~xs:sizes (fun which l ->
      run which ~threads:80 ~set_pct:1 ~val_lines:l ~duration:default_duration)

let latency () =
  print_header "Memcached tail latency, 128 B values, 1% set, 80 cores (§5.3)";
  Printf.printf "%-12s %10s %10s %10s %12s\n" "variant" "p50" "p99" "p99.9" "mean (cyc)";
  let rows =
    map_points
      (fun which ->
        (which, run which ~threads:80 ~set_pct:1 ~val_lines:2 ~duration:default_duration))
      variants
  in
  List.iter
    (fun (which, r) ->
      json_record ~series:(name_of which) ~x:"80"
        [
          ("p50", float_of_int r.Driver.p50);
          ("p99", float_of_int r.Driver.p99);
          ("p999", float_of_int r.Driver.p999);
          ("mean_latency", r.Driver.mean_latency);
        ];
      Printf.printf "%-12s %10d %10d %10d %12.1f\n%!" (name_of which) r.Driver.p50 r.Driver.p99
        r.Driver.p999 r.Driver.mean_latency)
    rows

let all () =
  fig13a ();
  fig13b ();
  fig13c ();
  fig13d ();
  latency ()

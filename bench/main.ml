(** Regenerates every table and figure of the paper's evaluation (§2, §5).
    Run all experiments with [dune exec bench/main.exe], or a subset with
    e.g. [dune exec bench/main.exe -- fig6a fig13]. Set [BENCH_QUICK=1] for
    a fast smoke pass with fewer points.

    [-jN] (or [--jobs N], or the [BENCH_JOBS] env var) fans independent
    experiment points out over N OCaml domains; output is byte-identical
    to [-j1] — see DESIGN.md §9 for the determinism contract. *)

open Dps_bench_figures

let table1 () =
  Bench_common.print_header "Table 1: comparison of data-structure implementations (qualitative)";
  print_string
    "implementation | complexity | coherence | locality | parallelism\n\
     lock-based     | easy       | large     | poor     | low\n\
     non-blocking   | hard       | medium    | poor     | high\n\
     delegation     | easy       | none      | good     | low\n\
     DPS            | easy       | none      | good     | highest\n"

let experiments : (string * string * (unit -> unit)) list =
  [
    ("table1", "qualitative comparison table", table1);
    ("fig2", "shared-memory bst/skiplist motivation", Fig_sets.fig2);
    ("fig3", "delegation throughput vs op length", Fig_deleg.fig3);
    ("fig6a", "delegation throughput vs cores", Fig_deleg.fig6a);
    ("fig6b", "responsiveness vs inter-op delay", Fig_deleg.fig6b);
    ("fig7", "rw-object throughput vs cores (4 panels)", Fig_rw.fig7);
    ("fig8", "rw-object sweeps at 80 cores (+ misses)", Fig_rw.fig8);
    ("table2", "5 GB working set", Fig_rw.table2);
    ("fig9", "DPS improvement bars over 8 structures", Fig_sets.fig9);
    ("fig10", "linked-list panels", Fig_sets.fig10);
    ("fig11", "bst panels", Fig_sets.fig11);
    ("fig12", "skip-list panels", Fig_sets.fig12);
    ("fig13", "memcached panels + tail latency", Fig_mc.all);
    ("net", "memcached over the simulated network front-end", Fig_net.all);
    ("ablations", "DPS design-knob ablations", Fig_ablation.all);
    ("faults", "throughput under injected crashes/stalls", Fig_faults.all);
    ("batch", "request batching and adaptive polling on the DPS hot path", Fig_batch.all);
    ("adapt", "adaptive delegation: drifting-skew phases + mode-flip exactly-once", Fig_adapt.all);
    ("cluster", "sharded multi-node serving with failover (stress matrix)", Fig_cluster.all);
    ("stream", "STREAM bandwidth calibration + delegation bytes A/B", Fig_stream.all);
    ("profile", "cycle attribution and observability zero-perturbation", Fig_profile.all);
    ("bechamel", "Bechamel kernels (one per figure)", Bechamel_suite.run);
  ]

(* Every experiment's table rows also land in BENCH_<name>.json. *)
let with_json name f () =
  Bench_common.json_begin ();
  Fun.protect ~finally:(fun () -> Bench_common.json_end ~name) f

let usage () =
  print_endline "usage: main.exe [-jN] [experiment ...]   (default: all)";
  List.iter (fun (n, d, _) -> Printf.printf "  %-9s %s\n" n d) experiments;
  print_endline "  -jN / --jobs N   run experiment points on N domains (default: BENCH_JOBS or 1)"

(* Extract -jN / --jobs N anywhere in the argument list; the rest are
   experiment names. *)
let parse_jobs args =
  let rec go acc = function
    | [] -> List.rev acc
    | "--jobs" :: n :: rest | "-j" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 ->
            Bench_common.set_jobs j;
            go acc rest
        | _ ->
            Printf.printf "invalid job count %S\n" n;
            exit 1)
    | arg :: rest when String.length arg > 2 && String.sub arg 0 2 = "-j" -> (
        match int_of_string_opt (String.sub arg 2 (String.length arg - 2)) with
        | Some j when j >= 1 ->
            Bench_common.set_jobs j;
            go acc rest
        | _ ->
            Printf.printf "invalid job count %S\n" arg;
            exit 1)
    | arg :: rest -> go (arg :: acc) rest
  in
  go [] args

let run_named name =
  let _, _, f = List.find (fun (n, _, _) -> n = name) experiments in
  let t = Unix.gettimeofday () in
  with_json name f ();
  Printf.printf "[%s done in %.1fs]\n%!" name (Unix.gettimeofday () -. t)

let () =
  let args = parse_jobs (List.tl (Array.to_list Sys.argv)) in
  match args with
  | [ "--help" ] | [ "-h" ] -> usage ()
  | [] ->
      let t0 = Unix.gettimeofday () in
      List.iter (fun (name, _, _) -> run_named name) experiments;
      Printf.printf "\nAll experiments done in %.1fs\n" (Unix.gettimeofday () -. t0)
  | names ->
      (* validate the whole selection up front: one typo in a long list
         should not cost the experiments queued before it *)
      (match
         List.filter (fun n -> not (List.exists (fun (n', _, _) -> n' = n) experiments)) names
       with
      | [] -> ()
      | unknown ->
          Printf.printf "unknown experiment%s: %s\n"
            (if List.length unknown > 1 then "s" else "")
            (String.concat ", " (List.map (Printf.sprintf "%S") unknown));
          usage ();
          exit 1);
      List.iter run_named names

(** Adaptive-delegation figure: the per-partition mode controller under
    drifting skew.

    Not from the paper — the paper freezes the delegation-vs-direct trade
    at create time. These experiments measure what {!Dps_adapt.Adapt}'s
    runtime controller buys over either static choice, and that the
    online transition protocol keeps the delegation guarantees:

    - (a) a phased workload alternating hot (90% of traffic on one
      drifting partition, no think time — delegation's home turf) and
      cool (uniform keys with think time — a plain lock's home turf)
      epochs. Gate: the adaptive run's throughput tracks the better
      static variant within 10% at every phase.
    - (b) exactly-once accounting across mode flips on a self-healing
      instance, with a dedicated poller killed mid-transition (while the
      controller drains the flipping partition's rings). Gate: every
      acked increment applied exactly once, and both flip directions
      actually exercised. *)

open Bench_common
module Machine = Dps_machine.Machine
module Topology = Dps_machine.Topology
module Sthread = Dps_sthread.Sthread
module Simops = Dps_sthread.Simops
module Alloc = Dps_sthread.Alloc
module Prng = Dps_simcore.Prng
module Driver = Dps_workload.Driver
module Adapt = Dps_adapt.Adapt
module Faults = Dps_faults

let threads = 80
let locality_size = 10
let op_len = 80
let think = 4_000
let hot_pct = 90
let nphases = 6

(* asymmetric phases: short hot bursts (every client active, 90% of the
   traffic flooding one partition) separated by long sparse periods (one
   client in five issuing, the rest on event-loop duty) — the burst is
   delegation's regime, the lull is where a lock's lower protocol cost
   can show *)
let hot_len = if quick then 30_000 else 60_000
let cool_len = 2 * hot_len
let period = hot_len + cool_len
let duration = nphases / 2 * period
let phase_of_time t = (t / period * 2) + if t mod period < hot_len then 0 else 1
let phase_cycles ph = if ph land 1 = 0 then hot_len else cool_len

(* even phases are hot, odd phases cool; the hot partition drifts across
   sockets from one hot phase to the next *)
let hot_pid ~nparts ph = ph / 2 * 3 mod nparts

(* reaction tuned to the figure's phase length: decide every 800 cycles,
   flip to delegation after one hot epoch (the onset signal in direct
   mode is the issue-rate spike — every flooder bumps the partition's
   remote-op counter before it ever touches the lock), back after three
   cool ones *)
let fast_policy =
  {
    Adapt.default_policy with
    Adapt.epoch = 600;
    warmup_epochs = 1;
    hot_ops = 8;
    cool_ops = 3;
    depth_hot = 10;
    lat_hot = 8_000;
    hot_epochs = 1;
    cool_epochs = 4;
  }

type run = {
  label : string;
  agg : Driver.result;
  phase_mops : float array;
  to_direct : int;
  to_delegated : int;
  paths : int * int * int;  (* local, delegated, direct op counts *)
}

let mk_dps ?(adaptive = false) ?(direct = false) sched =
  Dps.create sched ~nclients:threads ~locality_size ~adaptive ~direct
    ~hash:(fun k -> k)
    ~mk_data:(fun (info : Dps.partition_info) -> Alloc.line info.Dps.alloc)
    ()

let run_one ~label ~mk =
  let m = Machine.create full_config in
  let sched = Sthread.create m in
  let dps = mk sched in
  let nparts = Dps.npartitions dps in
  let ops = Array.make nphases 0 in
  let op ~tid ~step:_ =
    let p = Sthread.self_prng () in
    let ph = min (phase_of_time (Sthread.time ())) (nphases - 1) in
    let hot = ph land 1 = 0 in
    if (not hot) && tid mod 5 <> 0 then begin
      (* cool phases idle four clients in five: they keep their event-loop
         duty (drain their own partition's rings) but issue nothing *)
      Simops.work 400;
      ignore (Dps.serve dps ~max:4)
    end
    else begin
      let hp = hot_pid ~nparts ph in
      (* the hot partition's own locality stays on uniform traffic: the
         hotspot is a remote flood, the regime where the delegated-vs-direct
         choice actually matters (local ops never cross a mode) *)
      let key =
        if hot && tid / locality_size <> hp && Prng.int p 100 < hot_pct then
          hp + (nparts * Prng.int p 64)
        else Prng.int p (64 * nparts)
      in
      ignore
        (Dps.call dps ~key (fun addr ->
             Simops.rmw addr;
             Simops.work op_len;
             0));
      (* attribute the op to the phase that retired it: a backlogged mode
         drags its unfinished ops into the next phase's ledger, which is
         exactly the cost the figure should show *)
      ops.(min (phase_of_time (Sthread.time ())) (nphases - 1)) <-
        ops.(min (phase_of_time (Sthread.time ())) (nphases - 1)) + 1;
      (* event-loop duty: clients double as servers (§4.1). An op that ran
         synchronously through a direct-mode lock never waited, so unlike
         the delegated path it served nothing on the way — without this
         drain an all-direct client would starve its share of the home
         partition's rings *)
      while Dps.serve dps ~max:8 > 0 do
        ()
      done;
      (* jittered think decorrelates the issue times — a fixed quantum
         synchronizes every client into burst arrivals at the locks *)
      if hot then Simops.work (1_000 + Prng.int p 1_000)
      else Simops.work (think - 1_000 + Prng.int p 2_000)
    end
  in
  let placement = Array.init threads (Dps.client_hw dps) in
  let agg =
    Driver.measure ~sched ~threads ~placement ~duration
      ~prologue:(fun ~tid -> Dps.attach dps ~client:tid)
      ~epilogue:(fun ~tid:_ ->
        Dps.client_done dps;
        Dps.drain dps)
      ~op ()
  in
  let to_direct, to_delegated = Dps.mode_flips dps in
  {
    label;
    agg;
    phase_mops =
      Array.mapi
        (fun ph n ->
          float_of_int n /. Machine.cycles_to_seconds m (phase_cycles ph) /. 1e6)
        ops;
    to_direct;
    to_delegated;
    paths = (Dps.local_ops dps, Dps.delegated_ops dps, Dps.direct_ops dps);
  }

let mk_adaptive sched =
  let dps = mk_dps ~adaptive:true sched in
  let topo = Machine.topology (Sthread.machine sched) in
  (* the controller shares the last hardware thread with its client; it
     parks through most of each epoch *)
  Sthread.spawn sched
    ~hw:(Topology.nthreads topo - 1)
    (fun () -> Adapt.run ~policy:fast_policy dps);
  if Sys.getenv_opt "ADAPT_PROBE" <> None then
    (* diagnostic: sample each partition's mode every 2k cycles *)
    Sthread.spawn sched
      ~hw:(Topology.nthreads topo - 2)
      (fun () ->
        let nparts = Dps.npartitions dps in
        while Sthread.time () < duration do
          ignore (Sthread.park_for 2_000);
          let map =
            String.init nparts (fun pid ->
                match Dps.mode dps ~pid with
                | Dps.Delegated -> 'G'
                | Dps.Draining -> 'R'
                | Dps.Direct -> 'D')
          in
          Printf.eprintf "t=%-7d ph=%d modes=%s\n%!" (Sthread.time ())
            (min (phase_of_time (Sthread.time ())) (nphases - 1))
            map
        done);
  dps

(* throwaway diagnostic: per-op latency of each mode under the cool-phase
   regime (set ADAPT_PROBE=1) *)
let probe () =
  let one ~label ~mk =
    let m = Machine.create full_config in
    let sched = Sthread.create m in
    let dps = mk sched in
    let nparts = Dps.npartitions dps in
    let lat = ref 0 and n = ref 0 in
    for tid = 0 to threads - 1 do
      Sthread.spawn sched ~hw:(Dps.client_hw dps tid) (fun () ->
          Dps.attach dps ~client:tid;
          let p = Sthread.self_prng () in
          if tid mod 5 = 0 then
            for _ = 1 to 40 do
              let key = Prng.int p (64 * nparts) in
              let t0 = Sthread.time () in
              ignore
                (Dps.call dps ~key (fun addr ->
                     Simops.rmw addr;
                     Simops.work op_len;
                     0));
              lat := !lat + (Sthread.time () - t0);
              incr n;
              Simops.work (think - 1_000 + Prng.int p 2_000)
            done
          else
            for _ = 1 to 300 do
              Simops.work 400;
              ignore (Dps.serve dps ~max:4)
            done;
          Dps.client_done dps;
          Dps.drain dps)
    done;
    Sthread.run sched;
    Printf.printf "%-10s avg_lat=%d cycles over %d ops (end %d)\n%!" label
      (!lat / max 1 !n) !n (Sthread.now sched);
    ignore m
  in
  one ~label:"delegated" ~mk:(fun s -> mk_dps s);
  one ~label:"direct" ~mk:(fun s -> mk_dps ~direct:true s)

let fig_drift () =
  print_header
    (Printf.sprintf
       "Adaptive (a): drifting skew, %d phases (hot %d / cool %d cycles, %d threads; hot = \
        %d%%/1 partition, cool = 1-in-5 clients uniform + %d-cycle think)"
       nphases hot_len cool_len threads hot_pct think);
  let runs =
    map_points
      (fun (label, mk) -> run_one ~label ~mk)
      [
        ("delegated", fun sched -> mk_dps ~direct:false sched);
        ("direct-cna", fun sched -> mk_dps ~direct:true sched);
        ("adaptive", mk_adaptive);
      ]
  in
  List.iter
    (fun r ->
      let local, delegated, direct = r.paths in
      Printf.printf "%-12s paths: local=%d delegated=%d direct=%d\n%!" r.label local delegated
        direct)
    runs;
  List.iter
    (fun r ->
      Array.iteri
        (fun ph mops -> json_record ~series:r.label ~x:(string_of_int ph) [ ("mops", mops) ])
        r.phase_mops;
      json_record ~series:r.label ~x:"all"
        [
          ("throughput_mops", r.agg.Driver.throughput_mops);
          ("p50", float_of_int r.agg.Driver.p50);
          ("p99", float_of_int r.agg.Driver.p99);
          ("to_direct", float_of_int r.to_direct);
          ("to_delegated", float_of_int r.to_delegated);
        ])
    runs;
  Printf.printf "%-12s %s %10s\n" "phase"
    (String.concat "  "
       (List.init nphases (fun ph ->
            Printf.sprintf "%9s"
              (if ph land 1 = 0 then Printf.sprintf "hot[p%d]" (hot_pid ~nparts:8 ph)
               else "cool"))))
    "overall";
  List.iter
    (fun r ->
      Printf.printf "%-12s %s %10.3f  (Mops/s)\n" r.label
        (String.concat "  "
           (Array.to_list (Array.map (fun m -> Printf.sprintf "%9.3f" m) r.phase_mops)))
        r.agg.Driver.throughput_mops)
    runs;
  let find l = List.find (fun r -> r.label = l) runs in
  let deleg = find "delegated" and direct = find "direct-cna" and adapt = find "adaptive" in
  Printf.printf "%-12s to_direct=%d to_delegated=%d\n%!" "flips" adapt.to_direct
    adapt.to_delegated;
  let failures = ref [] in
  for ph = 0 to nphases - 1 do
    let best = Float.max deleg.phase_mops.(ph) direct.phase_mops.(ph) in
    if adapt.phase_mops.(ph) < 0.9 *. best then
      failures :=
        Printf.sprintf "phase %d: adaptive %.3f < 90%% of best static %.3f" ph
          adapt.phase_mops.(ph) best
        :: !failures
  done;
  if adapt.to_direct = 0 || adapt.to_delegated = 0 then
    failures :=
      Printf.sprintf "controller never flipped both ways (to_direct=%d to_delegated=%d)"
        adapt.to_direct adapt.to_delegated
      :: !failures;
  List.rev !failures

(* (b): counter increments under a flip storm; partition 0's dedicated
   poller is killed while the controller is draining partition 0's rings
   for its first delegated -> direct transition. *)
let fig_flip_kill () =
  print_header
    "Adaptive (b): exactly-once across mode flips, poller killed mid-transition (16 clients, \
     self-healing)";
  let m = Machine.create full_config in
  let sched = Sthread.create m in
  let nclients = 16 in
  let dps =
    Dps.create sched ~nclients ~locality_size:4 ~self_healing:true ~adaptive:true
      ~await_timeout:20_000
      ~hash:(fun k -> k)
      ~mk_data:(fun (_ : Dps.partition_info) -> Array.make nclients 0)
      ()
  in
  let nparts = Dps.npartitions dps in
  let per = if quick then 150 else 500 in
  let acked = Array.make nclients 0 in
  (* clients first so sthread tid = client id for the fault plan *)
  for c = 0 to nclients - 1 do
    Sthread.spawn sched ~hw:(Dps.client_hw dps c) (fun () ->
        Dps.attach dps ~client:c;
        for i = 1 to per do
          ignore
            (Dps.call dps
               ~key:((c + i) mod (8 * nparts))
               (fun d ->
                 d.(c) <- d.(c) + 1;
                 d.(c)));
          acked.(c) <- acked.(c) + 1;
          Simops.work 200
        done;
        Dps.client_done dps;
        Dps.drain dps)
  done;
  let topo = Machine.topology m in
  let nhw = Topology.nthreads topo in
  let poller_tid = nclients in
  Sthread.spawn sched ~hw:(nhw - 2) (fun () -> Dps.run_poller dps ~pid:0);
  let flip_period = 4_000 in
  Sthread.spawn sched ~hw:(nhw - 1) (fun () ->
      (* the figure's single set_mode writer: walk the partitions, flipping
         one every period, each back again on its next visit *)
      let i = ref 0 in
      while Dps.active dps do
        ignore (Sthread.park_for flip_period);
        if Dps.active dps then begin
          let pid = !i mod nparts in
          (match Dps.mode dps ~pid with
          | Dps.Direct -> Dps.set_mode dps ~pid `Delegated
          | Dps.Delegated | Dps.Draining -> Dps.set_mode dps ~pid `Direct);
          incr i
        end
      done);
  (* partition 0 flips delegated -> direct just after t = flip_period; kill
     its poller inside that drain window *)
  let plan = Faults.install sched ~seed:7L (Faults.spec ()) in
  Faults.schedule_crash plan ~tid:poller_tid ~at:(flip_period + 60);
  Sthread.run sched;
  let h = Dps.health dps in
  let to_direct, to_delegated = Dps.mode_flips dps in
  let sent = Array.fold_left ( + ) 0 acked in
  let applied = ref 0 in
  let failures = ref [] in
  for c = 0 to nclients - 1 do
    let a = ref 0 in
    for pid = 0 to nparts - 1 do
      a := !a + (Dps.partition_data dps pid).(c)
    done;
    applied := !applied + !a;
    if !a <> acked.(c) then
      failures := Printf.sprintf "client %d: %d acked but %d applied" c acked.(c) !a :: !failures
  done;
  if to_direct = 0 || to_delegated = 0 then
    failures :=
      Printf.sprintf "flip storm too tame (to_direct=%d to_delegated=%d)" to_direct to_delegated
      :: !failures;
  json_record ~series:"flip-kill" ~x:"eo"
    [
      ("sent", float_of_int sent);
      ("applied", float_of_int !applied);
      ("to_direct", float_of_int to_direct);
      ("to_delegated", float_of_int to_delegated);
      ("direct_ops", float_of_int (Dps.direct_ops dps));
    ];
  Printf.printf
    "sent %d applied %d  flips to_direct=%d to_delegated=%d  direct_ops=%d\n" sent !applied
    to_direct to_delegated (Dps.direct_ops dps);
  Printf.printf
    "heal: crashes=%d takeovers=%d retries=%d lock_breaks=%d\n%!" h.Dps.crashes h.Dps.takeovers
    h.Dps.retries h.Dps.lock_breaks;
  List.rev !failures

let all () =
  if Sys.getenv_opt "ADAPT_PROBE" <> None then probe ();
  let failures = fig_drift () @ fig_flip_kill () in
  if failures = [] then Printf.printf "ADAPT: ALL GATES PASS\n%!"
  else begin
    List.iter (fun msg -> Printf.printf "GATE: %s\n" msg) failures;
    Printf.printf "ADAPT: %d GATE(S) FAILED\n%!" (List.length failures)
  end

(** Atomic read/write-object microbenchmarks: Figures 7(a–d) and 8(a–d)
    plus Table 2 (the 5 GB working set). Compared techniques, as in §5.1:
    one MCS lock per object ([mcs]), ffwd with four servers and a static
    sharding ([ffwd-s4]), and DPS with the same MCS locking inside each
    locality ([DPS]). *)

open Bench_common
module Machine = Dps_machine.Machine
module Topology = Dps_machine.Topology
module Sthread = Dps_sthread.Sthread
module Alloc = Dps_sthread.Alloc
module Prng = Dps_simcore.Prng
module Driver = Dps_workload.Driver
module Rw = Dps_ds.Rw_object
module Mcs = Dps_sync.Mcs
module Ffwd = Dps_ffwd.Ffwd

type technique = Mcs_locks | Ffwd_s4 | Dps_rw

(* Scale big line counts down with the machine (factor 16) for the Table 2
   case only; Figures 7/8 fit the full-size machine. [window]: Table 2
   operations touch a random slice of each huge object rather than all of
   it. *)
let run ~config ~technique ~threads ~objects ~lines ~write_lines ?window
    ?(policy = Machine.Interleave) ?min_ops ~duration () =
  let op_on o i = match window with
    | None -> Rw.operate o i
    | Some w -> Rw.operate_window o i ~window:w
  in
  let m = Machine.create config in
  let topo = Machine.topology m in
  let sched = Sthread.create m in
  match technique with
  | Mcs_locks ->
      let o = Rw.create m policy ~objects ~lines ~write_lines in
      let alloc = Alloc.create m ~cold:Alloc.Spread in
      let locks = Array.init objects (fun _ -> Mcs.create alloc) in
      Driver.measure ~sched ~threads ~duration ?min_ops
        ~op:(fun ~tid:_ ~step:_ ->
          let p = Sthread.self_prng () in
          let i = Prng.int p objects in
          Mcs.acquire locks.(i);
          op_on o i;
          Mcs.release locks.(i))
        ()
  | Ffwd_s4 ->
      let servers = 4 in
      let server_hw =
        Array.init servers (fun i ->
            i * topo.Topology.cores_per_socket * topo.Topology.threads_per_core)
      in
      (* shard i belongs to server (i mod 4); memory homed on that socket *)
      let o =
        Rw.create_partitioned m ~node_of:(fun i -> i mod servers) ~objects ~lines ~write_lines
      in
      let f = Ffwd.create sched ~server_hw ~clients:threads in
      let all = Topology.placement topo ~n:(min (Topology.nthreads topo) (threads + servers)) in
      let server_set = Array.to_list server_hw in
      let client_hws =
        Array.of_list (List.filter (fun hw -> not (List.mem hw server_set)) (Array.to_list all))
      in
      let placement = Array.init threads (fun i -> client_hws.(i mod Array.length client_hws)) in
      Driver.measure ~sched ~threads ~placement ~duration ?min_ops
        ~prologue:(fun ~tid -> Ffwd.attach f ~client:tid)
        ~epilogue:(fun ~tid:_ -> Ffwd.client_done f)
        ~op:(fun ~tid:_ ~step:_ ->
          let p = Sthread.self_prng () in
          let i = Prng.int p objects in
          ignore
            (Ffwd.call f ~server:(i mod servers) (fun () ->
                 op_on o i;
                 0)))
        ()
  | Dps_rw ->
      let dps =
        Dps.create sched ~nclients:threads ~locality_size:10
          ~hash:(fun k -> k)
          ~mk_data:(fun (info : Dps.partition_info) ->
            Mcs.create info.Dps.alloc (* per-object locks created below *))
          ()
      in
      let nparts = Dps.npartitions dps in
      (* object i -> partition (i mod nparts); homed on that partition *)
      let node_of i =
        let pid = i mod nparts in
        let placed = Topology.placement topo ~n:threads in
        Topology.socket_of_thread topo placed.(pid * 10)
      in
      let o = Rw.create_partitioned m ~node_of ~objects ~lines ~write_lines in
      let alloc = Alloc.create m ~cold:Alloc.Spread in
      let locks = Array.init objects (fun _ -> Mcs.create alloc) in
      let placement = Array.init threads (Dps.client_hw dps) in
      Driver.measure ~sched ~threads ~placement ~duration ?min_ops
        ~prologue:(fun ~tid -> Dps.attach dps ~client:tid)
        ~epilogue:(fun ~tid:_ ->
          Dps.client_done dps;
          Dps.drain dps)
        ~op:(fun ~tid:_ ~step:_ ->
          let p = Sthread.self_prng () in
          let i = Prng.int p objects in
          ignore
            (Dps.call dps ~key:i (fun _ ->
                 Mcs.acquire locks.(i);
                 op_on o i;
                 Mcs.release locks.(i);
                 0)))
        ()

let techniques = [ ("mcs", Mcs_locks); ("ffwd-s4", Ffwd_s4); ("DPS", Dps_rw) ]

let panel ~title ~objects ~lines =
  print_header title;
  Printf.printf "x = cores (%d objects, %d modified lines each)\n" objects lines;
  List.iter
    (fun (label, pts) -> print_series ~label pts)
    (run_series
       (List.map
          (fun (name, technique) ->
            ( name,
              List.map
                (fun n ->
                  ( string_of_int n,
                    fun () ->
                      run ~config:full_config ~technique ~threads:n ~objects ~lines
                        ~write_lines:lines ~duration:default_duration () ))
                core_counts ))
          techniques))

let fig7 () =
  panel ~title:"Figure 7(a): 64 objects x 4 cache lines" ~objects:64 ~lines:4;
  panel ~title:"Figure 7(b): 64 objects x 64 cache lines" ~objects:64 ~lines:64;
  panel ~title:"Figure 7(c): 512 objects x 64 cache lines" ~objects:512 ~lines:64;
  panel ~title:"Figure 7(d): 512 objects x 4 cache lines" ~objects:512 ~lines:4

let fig8 () =
  print_header "Figure 8(a)/(c): 80 cores, 32-line objects, sweep #objects";
  let object_counts = if quick then [ 16; 256; 2048 ] else [ 16; 64; 256; 1024; 2048 ] in
  List.iter
    (fun (label, pts) ->
      print_series ~label pts;
      print_misses ~label pts)
    (run_series
       (List.map
          (fun (name, technique) ->
            ( name,
              List.map
                (fun objects ->
                  ( string_of_int objects,
                    fun () ->
                      run ~config:full_config ~technique ~threads:80 ~objects ~lines:32
                        ~write_lines:32 ~duration:default_duration () ))
                object_counts ))
          techniques));
  print_header "Figure 8(b)/(d): 80 cores, 128 objects, sweep modified lines";
  let line_counts = if quick then [ 4; 24; 64 ] else [ 4; 14; 24; 34; 44; 54; 64 ] in
  List.iter
    (fun (label, pts) ->
      print_series ~label pts;
      print_misses ~label pts)
    (run_series
       (List.map
          (fun (name, technique) ->
            ( name,
              List.map
                (fun lines ->
                  (* the modified working set IS the operation: objects sized
                     to the modified line count, all of it written *)
                  ( string_of_int lines,
                    fun () ->
                      run ~config:full_config ~technique ~threads:80 ~objects:128 ~lines
                        ~write_lines:lines ~duration:default_duration () ))
                line_counts ))
          techniques))

let table2 () =
  print_header "Table 2: 5 GB working set (512 x 10 MB objects; scaled /16), ops/s";
  (* 10 MB = 163840 lines; scaled by 16 -> 10240 lines per object. Each
     operation reads and writes a random 64-line slice of one object. *)
  let lines = 10240 in
  let objects = 512 in
  let rows =
    map_points
      (fun (label, technique, policy) ->
        let r =
          run ~config:scaled_config ~technique ~threads:80 ~objects ~lines ~write_lines:16
            ~window:64 ~policy ~duration:300_000 ()
        in
        (label, r.Driver.throughput_mops *. 1e6))
      [
        ("MCS (local)", Mcs_locks, Machine.On_node 0);
        ("MCS (interleave)", Mcs_locks, Machine.Interleave);
        ("ffwd-s4", Ffwd_s4, Machine.Interleave);
        ("DPS", Dps_rw, Machine.Interleave);
      ]
  in
  Printf.printf "%-18s %12s\n" "technique" "ops/s";
  List.iter (fun (label, ops) -> Printf.printf "%-18s %12.0f\n%!" label ops) rows

let all () =
  fig7 ();
  fig8 ();
  table2 ()

(** Ablations over DPS's design knobs, as called out in DESIGN.md:

    - locality size (§4.1: "choose the locality size smaller than the
      scalability knee"; §5.2 notes bst localities "might benefit from
      being larger");
    - check budget (§4.3's local/remote latency trade);
    - ring slots (§4.4 asynchronous execution backpressure);
    - dedicated pollers (§4.4 liveness) under busy clients. *)

open Bench_common
module Sthread = Dps_sthread.Sthread
module Simops = Dps_sthread.Simops
module Prng = Dps_simcore.Prng
module Driver = Dps_workload.Driver

let locality_size () =
  print_header "Ablation: DPS locality size (bst-tk, skewed 4K, 50% update, 80 threads)";
  let sizes = if quick then [ 5; 10; 40 ] else [ 5; 10; 20; 40 ] in
  let pts =
    map_points
      (fun ls ->
        ( string_of_int ls,
          run_dps
            (module Dps_ds.Bst_tk)
            ~config:full_config ~locality_size:ls
            (workload ~threads:80 ~size:4096 ~update_pct:50 ~skewed:true ()) ))
      sizes
  in
  Printf.printf "x = hyperthreads per locality (partitions = 80/x)\n";
  print_series ~label:"DPS/bst-tk" pts

let run_deleg ?(ring_slots = 16) ?(check_budget = 4) ?(async = false) ?(delay = 0) ~op_len () =
  let m = Dps_machine.Machine.create full_config in
  let sched = Sthread.create m in
  let dps =
    Dps.create sched ~nclients:80 ~locality_size:10 ~hash:Fun.id ~ring_slots ~check_budget
      ~mk_data:(fun _ -> ())
      ()
  in
  let placement = Array.init 80 (Dps.client_hw dps) in
  Driver.measure ~sched ~threads:80 ~placement ~duration:default_duration
    ~prologue:(fun ~tid -> Dps.attach dps ~client:tid)
    ~epilogue:(fun ~tid:_ ->
      Dps.client_done dps;
      Dps.drain dps)
    ~op:(fun ~tid:_ ~step:_ ->
      let p = Sthread.self_prng () in
      let key = Prng.int p 512 in
      let spin () =
        if op_len > 0 then Simops.work op_len;
        0
      in
      if async then Dps.execute_async dps ~key (fun () -> spin ())
      else ignore (Dps.call dps ~key (fun () -> spin ()));
      if delay > 0 then Simops.work delay)
    ()

let check_budget () =
  print_header
    "Ablation: check budget (serves per own-completion check; 500-cycle ops, 80 threads)";
  Printf.printf "%-8s %12s %10s %10s\n" "budget" "Mops/s" "p50" "p99";
  List.iter
    (fun (b, r) ->
      Printf.printf "%-8d %12.3f %10d %10d\n%!" b r.Driver.throughput_mops r.Driver.p50
        r.Driver.p99)
    (map_points
       (fun b -> (b, run_deleg ~check_budget:b ~op_len:500 ()))
       (if quick then [ 1; 4; 32 ] else [ 1; 2; 4; 8; 16; 32 ]))

let ring_slots () =
  print_header "Ablation: ring slots (asynchronous flood, 500-cycle ops + 1000-cycle delay)";
  Printf.printf "%-8s %12s\n" "slots" "Mops/s";
  List.iter
    (fun (n, r) -> Printf.printf "%-8d %12.3f\n%!" n r.Driver.throughput_mops)
    (map_points
       (fun n -> (n, run_deleg ~ring_slots:n ~async:true ~op_len:500 ~delay:1000 ()))
       (if quick then [ 2; 16 ] else [ 2; 4; 16; 64 ]))

let pollers () =
  print_header "Ablation: dedicated pollers under busy localities (§4.4 liveness)";
  let run ~poller =
    let m = Dps_machine.Machine.create full_config in
    let sched = Sthread.create m in
    let dps =
      Dps.create sched ~nclients:20 ~locality_size:10 ~hash:Fun.id ~dedicated_pollers:poller
        ~mk_data:(fun _ -> ())
        ()
    in
    if poller then Sthread.spawn sched ~hw:21 (fun () -> Dps.run_poller dps ~pid:1);
    let hist = Dps_simcore.Histogram.create () in
    for c = 0 to 19 do
      Sthread.spawn sched ~hw:(Dps.client_hw dps c) (fun () ->
          Dps.attach dps ~client:c;
          if c < 10 then
            (* locality 0: delegate to locality 1 and measure latency *)
            for _ = 1 to 20 do
              let t0 = Sthread.time () in
              ignore (Dps.call dps ~key:1 (fun () -> 0));
              Dps_simcore.Histogram.add hist (Sthread.time () - t0)
            done
          else begin
            (* locality 1: mostly busy outside DPS *)
            for _ = 1 to 10 do
              Sthread.work 20_000;
              ignore (Dps.serve dps ~max:4)
            done
          end;
          Dps.client_done dps;
          Dps.drain dps)
    done;
    Sthread.run sched;
    hist
  in
  let no_poller, with_poller =
    match map_points (fun poller -> run ~poller) [ false; true ] with
    | [ a; b ] -> (a, b)
    | _ -> assert false
  in
  Printf.printf "%-12s %10s %10s\n" "mode" "p50" "p99";
  Printf.printf "%-12s %10d %10d\n" "no poller"
    (Dps_simcore.Histogram.percentile no_poller 0.5)
    (Dps_simcore.Histogram.percentile no_poller 0.99);
  Printf.printf "%-12s %10d %10d\n%!" "poller"
    (Dps_simcore.Histogram.percentile with_poller 0.5)
    (Dps_simcore.Histogram.percentile with_poller 0.99)

(* The lock family on the contended r/w-object workload — the
   related-work alternatives (Dice et al.) to DPS's restructuring, now
   including CNA, the lock behind adaptive delegation's direct mode. Two
   regimes bracket the adaptive controller's decision: [objects = 64]
   keeps every lock contended (delegation's home turf), [objects = 4096]
   makes collisions rare (where direct locking must hold its own). *)
let lock_family () =
  let run_lock ~objects mk_lock =
    let m = Dps_machine.Machine.create full_config in
    let sched = Sthread.create m in
    let alloc = Dps_sthread.Alloc.create m ~cold:Dps_sthread.Alloc.Spread in
    let o =
      Dps_ds.Rw_object.create m Dps_machine.Machine.Interleave ~objects ~lines:8 ~write_lines:8
    in
    let locks = Array.init objects (fun _ -> mk_lock alloc m) in
    Driver.measure ~sched ~threads:80 ~duration:default_duration
      ~op:(fun ~tid:_ ~step:_ ->
        let p = Sthread.self_prng () in
        let i = Prng.int p objects in
        let acquire, release = locks.(i) in
        acquire ();
        Dps_ds.Rw_object.operate o i;
        release ())
      ()
  in
  let family =
    [
      ( "mcs",
        fun alloc _ ->
          let l = Dps_sync.Mcs.create alloc in
          ((fun () -> Dps_sync.Mcs.acquire l), fun () -> Dps_sync.Mcs.release l) );
      ( "ticket",
        fun alloc _ ->
          let l = Dps_sync.Ticket.create alloc in
          ((fun () -> Dps_sync.Ticket.acquire l), fun () -> Dps_sync.Ticket.release l) );
      ( "cohort",
        fun alloc m ->
          let l = Dps_sync.Cohort.create alloc m in
          ((fun () -> Dps_sync.Cohort.acquire l), fun () -> Dps_sync.Cohort.release l) );
      ( "cna",
        fun alloc m ->
          let l = Dps_sync.Cna.create alloc m in
          ((fun () -> Dps_sync.Cna.acquire l), fun () -> Dps_sync.Cna.release l) );
    ]
  in
  let regime ~objects ~tag =
    print_header
      (Printf.sprintf "Ablation: lock family, %s (%d objects x 8 lines, 80 threads)" tag objects);
    Printf.printf "%-8s %12s %10s\n" "lock" "Mops/s" "p99";
    List.iter
      (fun (name, r) ->
        Printf.printf "%-8s %12.3f %10d\n%!" name r.Driver.throughput_mops r.Driver.p99;
        json_record ~series:("locks/" ^ tag) ~x:name
          [ ("throughput_mops", r.Driver.throughput_mops); ("p99", float_of_int r.Driver.p99) ])
      (map_points (fun (name, mk) -> (name, run_lock ~objects mk)) family)
  in
  regime ~objects:64 ~tag:"contended";
  regime ~objects:4096 ~tag:"sparse"

let all () =
  locality_size ();
  lock_family ();
  check_budget ();
  ring_slots ();
  pollers ()

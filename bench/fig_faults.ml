(** Fault figure (chaos harness): DPS throughput under injected faults.

    Not from the paper — the paper assumes fail-free execution (§6 lists
    fault tolerance as future work). This experiment measures what the
    self-healing runtime pays and recovers: throughput at 40 threads while
    a seeded {!Dps_faults} plan crashes clients mid-run or stalls/delays
    them, plus the {!Dps.health} counters that show the recovery machinery
    (takeovers, adoptions, re-issues, failovers) actually firing. The
    expected shape is graceful degradation — throughput tracks the number
    of surviving clients, with no collapse when victims take their serving
    shares and in-flight delegations with them. *)

open Bench_common
module Sthread = Dps_sthread.Sthread
module Simops = Dps_sthread.Simops
module Prng = Dps_simcore.Prng
module Driver = Dps_workload.Driver
module Faults = Dps_faults

let threads = 40
let op_len = 200

(* Crash victims spread round-robin across localities, so no locality is
   emptied (whole-locality death is the separate failover row). *)
let spread_victims ~n =
  List.init n (fun i -> ((i mod 4) * 10) + (i / 4))

type chaos = {
  crash_tids : int list;
  stall_prob : float;
  delay_prob : float;
}

let no_chaos = { crash_tids = []; stall_prob = 0.0; delay_prob = 0.0 }

let run ~chaos ~duration =
  let m = Dps_machine.Machine.create full_config in
  let sched = Sthread.create m in
  let dps =
    Dps.create sched ~nclients:threads ~locality_size:10
      ~hash:(fun k -> k)
      ~self_healing:true ~await_timeout:20_000
      ~mk_data:(fun _ -> ())
      ()
  in
  let plan =
    Faults.install sched ~seed:99L
      (Faults.spec ~stall_prob:chaos.stall_prob ~stall_cycles:2_000 ~delay_prob:chaos.delay_prob
         ~delay_cycles:400 ~after:(duration / 8) ())
  in
  (* crashes staggered through the middle half of the run *)
  let n = List.length chaos.crash_tids in
  List.iteri
    (fun i tid ->
      Faults.schedule_crash plan ~tid ~at:((duration / 4) + (i * duration / (2 * max 1 n))))
    chaos.crash_tids;
  let nparts = Dps.npartitions dps in
  let op ~tid:_ ~step:_ =
    let p = Sthread.self_prng () in
    let key = Prng.int p (64 * nparts) in
    ignore
      (Dps.call dps ~key (fun () ->
           Simops.work op_len;
           0))
  in
  let placement = Array.init threads (Dps.client_hw dps) in
  let r =
    Driver.measure ~sched ~threads ~placement ~duration
      ~prologue:(fun ~tid -> Dps.attach dps ~client:tid)
      ~epilogue:(fun ~tid:_ ->
        Dps.client_done dps;
        Dps.drain dps)
      ~op ()
  in
  (r, Dps.health dps)

let print_health ~label (h : Dps.health) =
  Printf.printf "%-14s crashes=%d takeovers=%d adoptions=%d retries=%d failovers=%d breaks=%d\n%!"
    (label ^ " heal") h.Dps.crashes h.Dps.takeovers h.Dps.adoptions h.Dps.retries h.Dps.failovers
    h.Dps.lock_breaks

let fig_crashes () =
  print_header
    "Fault figure (a): throughput vs clients crashed mid-run (40 threads, 200-cycle ops)";
  let counts = if quick then [ 0; 8 ] else [ 0; 2; 4; 8; 12 ] in
  Printf.printf "x = crashed clients (spread across localities)\n";
  let pts =
    map_points
      (fun n ->
        ( string_of_int n,
          run ~chaos:{ no_chaos with crash_tids = spread_victims ~n } ~duration:default_duration ))
      counts
  in
  print_series ~label:"DPS-heal" (List.map (fun (x, (r, _)) -> (x, r)) pts);
  List.iter (fun (x, (_, h)) -> print_health ~label:("  n=" ^ x) h) pts

let fig_stalls () =
  print_header "Fault figure (b): throughput vs stall/delay rate (40 threads, no crashes)";
  let rates = if quick then [ 0.0; 0.02 ] else [ 0.0; 0.001; 0.005; 0.01; 0.02 ] in
  Printf.printf "x = P(stall <=2000cy) per scheduling point; delay rate = 2x on memory accesses\n";
  let pts =
    map_points
      (fun p ->
        ( Printf.sprintf "%g" p,
          run
            ~chaos:{ no_chaos with stall_prob = p; delay_prob = 2.0 *. p }
            ~duration:default_duration ))
      rates
  in
  print_series ~label:"DPS-heal" (List.map (fun (x, (r, _)) -> (x, r)) pts);
  List.iter (fun (x, (_, h)) -> print_health ~label:("  p=" ^ x) h) pts

let fig_failover () =
  print_header "Fault figure (c): whole-locality crash and partition failover (40 threads)";
  let victims = List.init 10 (fun i -> 30 + i) in
  let r, h = run ~chaos:{ no_chaos with crash_tids = victims } ~duration:default_duration in
  Printf.printf "locality 3 (10 clients) killed mid-run; its namespace buckets retarget\n";
  print_series ~label:"DPS-heal" [ ("loc-crash", r) ];
  print_health ~label:"" h;
  let dead =
    Array.to_list h.Dps.dead_partitions
    |> List.mapi (fun i d -> (i, d))
    |> List.filter_map (fun (i, d) -> if d then Some (Printf.sprintf "p%d" i) else None)
  in
  Printf.printf "dead partitions: %s\n%!" (String.concat "," dead)

let all () =
  fig_crashes ();
  fig_stalls ();
  fig_failover ()
